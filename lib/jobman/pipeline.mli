(** Dependency-aware campaign pipeline: contractions consume
    propagators; co-scheduling them on busy nodes' CPUs removes their
    allocation cost entirely (Sec. VI: "their cost is brought to
    zero"). *)

type task = {
  id : int;
  nodes : int;
  duration : float;
  deps : int list;
  cpu_only : bool;
}

val campaign :
  ?batch:int -> n_props:int -> prop_nodes:int -> duration:float -> Util.Rng.t -> task list
(** One contraction (3% of the batch's propagator node-seconds) per
    [batch] propagators, depending on them. *)

type outcome = {
  mode : string;
  makespan : float;
  gpu_work : float;
  billed : float;  (** node-seconds of allocation consumed *)
  contraction_overhead : float;  (** billed − gpu_work *)
  completed : int;
  stuck : int;
      (** tasks that never started — a dependency cycle, dangling dep,
          or a task wider than the allocation (deadlock indicator). *)
}

val run :
  mode:[ `Coscheduled | `Separate ] -> n_nodes:int -> tasks:task list -> outcome

val compare_modes : n_nodes:int -> tasks:task list -> outcome * outcome
(** (separate, co-scheduled). *)
