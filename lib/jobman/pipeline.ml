(* Dependency-aware campaign pipeline: contractions consume propagators
   (Fig 2's dataflow). Two execution modes quantify the co-scheduling
   claim of Sec. VI ("by interleaving them on the CPUs of nodes that
   have GPUs running propagators, their cost is brought to zero"):

   - [`Separate]: contractions allocate nodes of their own once their
     propagators are done (the pre-mpi_jm world);
   - [`Coscheduled]: contractions run on the CPUs of already-busy
     nodes; only their dependencies gate them. *)

type task = {
  id : int;
  nodes : int;
  duration : float;
  deps : int list;  (* task ids that must complete first *)
  cpu_only : bool;
}

(* A campaign: [n_props] propagators (GPU, [prop_nodes] each) and one
   contraction (CPU, 1 node, 3% of the propagator time x batch) per
   [batch] propagators, depending on that batch. *)
let campaign ?(batch = 4) ~n_props ~prop_nodes ~duration rng =
  let tasks = ref [] in
  let id = ref 0 in
  let pending_batch = ref [] in
  for _ = 1 to n_props do
    let d = duration *. Util.Rng.uniform rng ~lo:0.85 ~hi:1.15 in
    tasks := { id = !id; nodes = prop_nodes; duration = d; deps = []; cpu_only = false } :: !tasks;
    pending_batch := !id :: !pending_batch;
    incr id;
    if List.length !pending_batch = batch then begin
      tasks :=
        {
          id = !id;
          nodes = 1;
          (* contractions are ~3% of the propagator node-seconds
             (Sec. VI), concentrated on one node *)
          duration = duration *. 0.03 *. float_of_int (batch * prop_nodes);
          deps = !pending_batch;
          cpu_only = true;
        }
        :: !tasks;
      incr id;
      pending_batch := []
    end
  done;
  List.rev !tasks

type outcome = {
  mode : string;
  makespan : float;
  gpu_work : float;  (* node-seconds of propagator work *)
  billed : float;  (* node-seconds of allocation actually consumed *)
  contraction_overhead : float;  (* extra allocation attributable to contractions *)
  completed : int;
  stuck : int;  (* tasks that never started: cycle, dangling dep, or too wide *)
}

let run ~mode ~n_nodes ~tasks =
  let des = Des.create () in
  let free = ref n_nodes in
  let done_set = Hashtbl.create 64 in
  let queue = ref tasks in
  let completed = ref 0 in
  let gpu_work = ref 0. in
  let billed = ref 0. in
  let ready t = List.for_all (Hashtbl.mem done_set) t.deps in
  let rec try_start () =
    let startable, rest =
      List.partition
        (fun t ->
          ready t
          &&
          match mode with
          | `Coscheduled -> t.cpu_only || t.nodes <= !free
          | `Separate -> t.nodes <= !free)
        !queue
    in
    match startable with
    | [] -> ()
    | t :: more ->
      queue := more @ rest;
      let uses_nodes =
        match mode with `Coscheduled -> not t.cpu_only | `Separate -> true
      in
      if uses_nodes then begin
        free := !free - t.nodes;
        billed := !billed +. (t.duration *. float_of_int t.nodes)
      end;
      if not t.cpu_only then
        gpu_work := !gpu_work +. (t.duration *. float_of_int t.nodes);
      Des.schedule des ~delay:t.duration (fun () ->
          Hashtbl.replace done_set t.id ();
          incr completed;
          if uses_nodes then free := !free + t.nodes;
          try_start ());
      try_start ()
  in
  try_start ();
  Des.run des;
  (* anything left is a dependency cycle or capacity issue *)
  let makespan = Des.now des in
  {
    mode = (match mode with `Coscheduled -> "co-scheduled" | `Separate -> "separate");
    makespan;
    gpu_work = !gpu_work;
    billed = !billed;
    contraction_overhead = !billed -. !gpu_work;
    completed = !completed;
    stuck = List.length tasks - !completed;
  }

(* Paired comparison: the co-scheduled mode consumes no allocation for
   contractions, the separate mode bills their node-seconds (and may
   also stretch the makespan when capacity is tight). *)
let compare_modes ~n_nodes ~tasks =
  let sep = run ~mode:`Separate ~n_nodes ~tasks in
  let cos = run ~mode:`Coscheduled ~n_nodes ~tasks in
  (sep, cos)
