(* Hadron contractions: the CPU-only 3% of the workflow that mpi_jm
   co-schedules. Meson two-point functions and the proton (nucleon)
   two-point function via explicit Wick contraction.

   The proton interpolator is chi = eps_abc (u_a^T Cg5 d_b) u_c with
   the diquark matrix A = C gamma5 = gamma_t gamma_y gamma5 (DeGrand-
   Rossi). Wick-contracting <chi chibar> with two identical u legs:

     C(t) = sum_x A_{ab} A*_{a'b'} P_{gg'} eps eps' G_d[bβ,b'β'] x
            ( G_u[aα,a'α'] G_u[cγ,c'γ'] - G_u[aα,c'γ'] G_u[cγ,a'α'] )

   (schematically; indices written out in code). The parity projector
   P = (1 + gamma_t)/2 selects the forward-propagating nucleon. *)

module Cplx = Linalg.Cplx
module Geometry = Lattice.Geometry
module Gamma = Dirac.Gamma

(* epsilon tensor as the 6 permutations of (0,1,2) with signs *)
let epsilon = [| (0, 1, 2, 1.); (1, 2, 0, 1.); (2, 0, 1, 1.); (0, 2, 1, -1.); (2, 1, 0, -1.); (1, 0, 2, -1.) |]

(* C gamma5 in DeGrand-Rossi: C = gamma_t gamma_y. *)
let c_gamma5 =
  Gamma.mat_mul (Gamma.mat_mul (Gamma.matrix 3) (Gamma.matrix 1)) Gamma.gamma5_matrix

(* sparse form: list of (row, col, phase) with nonzero entries *)
let sparse m =
  let entries = ref [] in
  for r = 0 to 3 do
    for c = 0 to 3 do
      if Cplx.abs m.(r).(c) > 1e-14 then entries := (r, c, m.(r).(c)) :: !entries
    done
  done;
  List.rev !entries

let cg5_sparse = sparse c_gamma5

(* positive-parity projector (1 + gamma_t)/2 *)
let parity_projector =
  Array.init 4 (fun r ->
      Array.init 4 (fun c ->
          let g = (Gamma.matrix 3).(r).(c) in
          let id = if r = c then Cplx.one else Cplx.zero in
          Cplx.scale 0.5 (Cplx.add id g)))

(* polarized projector (1 + gamma_t)/2 (1 - i gamma_x gamma_y)/2 for
   the axial-charge measurement *)
let polarized_projector =
  let gxgy = Gamma.mat_mul (Gamma.matrix 0) (Gamma.matrix 1) in
  let sz =
    Array.init 4 (fun r ->
        Array.init 4 (fun c ->
            let id = if r = c then Cplx.one else Cplx.zero in
            Cplx.scale 0.5 (Cplx.sub id (Cplx.mul Cplx.i gxgy.(r).(c)))))
  in
  Gamma.mat_mul parity_projector sz

(* ---- pooled time-slice execution ----
   Site order is x-fastest / t-slowest (Geometry.coords_of_site), so
   the sites of time slice t are exactly [t·sv, (t+1)·sv) with sv the
   spatial volume: each slice is contiguous, accumulates into its own
   corr.(t) slot in ascending site order on every path, and
   slice-partitioned pooled execution is race-free and bit-identical
   to the serial loop. Chunk is one slice (a slice is a full Wick
   contraction sweep — plenty of work). *)
let run_time_slices geom slice =
  let nt = Geometry.time_extent geom in
  let pool = Util.Pool.get_default () in
  if Util.Pool.size pool > 1 && nt > 1 then
    Util.Pool.parallel_for pool ~chunk:1 ~n:nt (fun lo hi ->
        for t = lo to hi - 1 do
          slice t
        done)
  else
    for t = 0 to nt - 1 do
      slice t
    done

(* ---- mesons ---- *)

(* Pion (gamma5 - gamma5) correlator from a point source:
   C(t) = sum_{x vec} sum |G(x)|^2 by gamma5-hermiticity. *)
let pion (prop : Propagator.t) : float array =
  let geom = prop.Propagator.geom in
  let nt = Geometry.time_extent geom in
  let sv = Geometry.spatial_volume geom in
  let c = Array.make nt 0. in
  run_time_slices geom (fun t ->
      for site = t * sv to ((t + 1) * sv) - 1 do
        let acc = ref 0. in
        for spin = 0 to 3 do
          for color = 0 to 2 do
            for src_spin = 0 to 3 do
              for src_color = 0 to 2 do
                let g =
                  Propagator.get prop ~site ~spin ~color ~src_spin ~src_color
                in
                acc := !acc +. Cplx.norm2 g
              done
            done
          done
        done;
        c.(t) <- c.(t) +. !acc
      done);
  c

(* ---- proton two-point ----
   [u1], [u2] are the two up-quark legs (identical for the plain
   correlator; a Feynman-Hellmann leg replaces one of them), [d] the
   down leg. [projector] is a 4x4 spin matrix. *)
let proton_general ~(projector : Cplx.t array array) ~(u1 : Propagator.t)
    ~(u2 : Propagator.t) ~(d : Propagator.t) : Cplx.t array =
  let geom = u1.Propagator.geom in
  let nt = Geometry.time_extent geom in
  let sv = Geometry.spatial_volume geom in
  let proj = sparse projector in
  let corr = Array.make nt Cplx.zero in
  let do_site site t =
      let acc = ref Cplx.zero in
      (* color permutations at sink (a,b,c) and source (a',b',c') *)
      Array.iter
        (fun (ca, cb, cc, sgn) ->
          Array.iter
            (fun (ca', cb', cc', sgn') ->
              let sign = sgn *. sgn' in
              (* diquark spin structures *)
              List.iter
                (fun (al, be, wa) ->
                  List.iter
                    (fun (al', be', wa') ->
                      (* d-quark leg *)
                      let gd =
                        Propagator.get d ~site ~spin:be ~color:cb ~src_spin:be'
                          ~src_color:cb'
                      in
                      if Cplx.norm2 gd > 0. then
                        List.iter
                          (fun (ga, ga', wp) ->
                            (* direct term *)
                            let g1 =
                              Propagator.get u1 ~site ~spin:al ~color:ca
                                ~src_spin:al' ~src_color:ca'
                            in
                            let g2 =
                              Propagator.get u2 ~site ~spin:ga ~color:cc
                                ~src_spin:ga' ~src_color:cc'
                            in
                            (* exchange term *)
                            let g3 =
                              Propagator.get u1 ~site ~spin:al ~color:ca
                                ~src_spin:ga' ~src_color:cc'
                            in
                            let g4 =
                              Propagator.get u2 ~site ~spin:ga ~color:cc
                                ~src_spin:al' ~src_color:ca'
                            in
                            let pair =
                              Cplx.sub (Cplx.mul g1 g2) (Cplx.mul g3 g4)
                            in
                            let weight =
                              Cplx.mul wp (Cplx.mul wa (Cplx.conj wa'))
                            in
                            acc :=
                              Cplx.add !acc
                                (Cplx.scale sign
                                   (Cplx.mul weight (Cplx.mul pair gd))))
                          proj)
                    cg5_sparse)
                cg5_sparse)
            epsilon)
        epsilon;
      corr.(t) <- Cplx.add corr.(t) !acc
  in
  run_time_slices geom (fun t ->
      for site = t * sv to ((t + 1) * sv) - 1 do
        do_site site t
      done);
  corr

let proton ?(projector = parity_projector) ~(up : Propagator.t)
    ~(down : Propagator.t) () : float array =
  let c = proton_general ~projector ~u1:up ~u2:up ~d:down in
  Array.map Cplx.re c
