(* Fused BLAS-1 solver kernels — the QUDA move for a memory-bound CG
   tail: fold the reduction into the update so each iteration streams
   the vectors once instead of once per kernel. Every kernel here is
   defined by an unfused sequence it must match bit-for-bit:

     axpy_norm2  a x y   ==  Field.axpy a x y;  Field.norm2 y
     xpay_dot    x b p q ==  Field.xpay x b p;  Field.dot_re p q
     cg_update a p ap x r == Field.axpy a p x; Field.axpy (-a) ap r;
                             Field.norm2 r     (QUDA tripleCGUpdate)
     caxpy_norm2 a x y   ==  Field.caxpy a x y; Field.norm2 y

   The identity holds to the bit for any pool geometry because each
   kernel runs through [Field.block_fold]: the update is element-wise
   (independent per element, so interleaving it with the reduction
   changes nothing) and the reduction accumulates each canonical
   [Field.reduce_block]-float block in index order, with the block
   partials folded in block-index order on the calling domain — the
   exact association of the standalone [Field.norm2]/[dot_re].

   The fused contract is stricter than the unfused kernels about
   aliasing: an output buffer sharing data with a distinct-role input
   is rejected ([Invalid_argument]) — the guard probes the underlying
   storage, so distinct Bigarray handles over the same data are caught
   too. Element-local updates make most aliasings accidentally agree
   here, but the contract is what a vectorized or accelerator
   implementation needs, and it is what [Check.Fuse_check] FUSE002
   verifies statically. *)

open Bigarray

type t = Field.t

(* How a solver's BLAS-1 tail is fused per iteration — the launch axis
   Autotune.Variants tunes and Check.Plan_check lints. [Fused] keeps
   the p·Ap reduction a separate host kernel (the fallback when the
   operator cannot carry a tail); [Tail_fused] rides it on the stencil
   through the [tail] closure below, the 2-sweep plan the performance
   model prices. *)
type mode = Unfused | Fused | Tail_fused

let mode_name = function
  | Unfused -> "unfused"
  | Fused -> "fused"
  | Tail_fused -> "tailfused"

let check2 name a b =
  if Field.length a <> Field.length b then
    invalid_arg (name ^ ": length mismatch")

(* Aliasing probe: do two fields share their underlying data? Physical
   equality catches the direct misuse; for distinct Bigarray handles
   over the same storage (Array1.sub, a re-wrapped pointer) we write a
   bit-distinguishable marker through [a.{0}] and watch whether
   [b.{0}] observes it, restoring [a.{0}] afterwards. The marker
   differs from [b.{0}]'s current bits by construction (lowest
   mantissa bit flipped), so a non-aliasing pair can never test
   positive. Overlaps that do not cover both elements 0 (staggered
   sub-windows) still escape — FUSE002 models the full hazard
   statically. *)
let same_data (a : t) (b : t) =
  a == b
  || Field.length a > 0
     && Field.length b > 0
     &&
     let va = Array1.unsafe_get a 0 in
     let vb = Array1.unsafe_get b 0 in
     let marker =
       Int64.float_of_bits (Int64.logxor (Int64.bits_of_float vb) 1L)
     in
     Array1.unsafe_set a 0 marker;
     let aliased =
       Int64.bits_of_float (Array1.unsafe_get b 0) = Int64.bits_of_float marker
     in
     Array1.unsafe_set a 0 va;
     aliased

(* Aliasing guard: [outs] must not share data with any of [ins]. *)
let no_alias name outs ins =
  List.iter
    (fun (o : t) ->
      List.iter
        (fun (i : t) ->
          if same_data o i then
            invalid_arg (name ^ ": output aliases an input of a different role"))
        ins)
    outs

(* ---- fused range terms: update the block, reduce it, in one pass.
   Accumulation visits elements in index order, one float at a time —
   the same association as Field.norm2_term/dot_re_term. ---- *)

let axpy_norm2_term alpha (x : t) (y : t) lo hi =
  let acc = ref 0. in
  for i = lo to hi - 1 do
    let yi = Array1.unsafe_get y i +. (alpha *. Array1.unsafe_get x i) in
    Array1.unsafe_set y i yi;
    acc := !acc +. (yi *. yi)
  done;
  !acc

let xpay_dot_term (x : t) beta (p : t) (q : t) lo hi =
  let acc = ref 0. in
  for i = lo to hi - 1 do
    let pi = Array1.unsafe_get x i +. (beta *. Array1.unsafe_get p i) in
    Array1.unsafe_set p i pi;
    acc := !acc +. (pi *. Array1.unsafe_get q i)
  done;
  !acc

let cg_update_term alpha (p : t) (ap : t) (x : t) (r : t) lo hi =
  let nalpha = -.alpha in
  let acc = ref 0. in
  for i = lo to hi - 1 do
    Array1.unsafe_set x i
      (Array1.unsafe_get x i +. (alpha *. Array1.unsafe_get p i));
    let ri = Array1.unsafe_get r i +. (nalpha *. Array1.unsafe_get ap i) in
    Array1.unsafe_set r i ri;
    acc := !acc +. (ri *. ri)
  done;
  !acc

(* Complex pairs inside [lo, hi) of floats. Block bounds from
   block_fold are even (reduce_block is), except a final odd [hi] on
   an odd-length vector: that dangling float is exactly the one
   Field.caxpy never updates, so it enters the norm read-only. The
   norm accumulates re then im separately to keep Field.norm2's
   one-float-at-a-time association. *)
let caxpy_norm2_term (ar, ai) (x : t) (y : t) lo hi =
  let acc = ref 0. in
  for k = lo / 2 to (hi / 2) - 1 do
    let xr = Array1.unsafe_get x (2 * k)
    and xi = Array1.unsafe_get x ((2 * k) + 1) in
    let yr = Array1.unsafe_get y (2 * k) +. ((ar *. xr) -. (ai *. xi)) in
    let yi = Array1.unsafe_get y ((2 * k) + 1) +. ((ar *. xi) +. (ai *. xr)) in
    Array1.unsafe_set y (2 * k) yr;
    Array1.unsafe_set y ((2 * k) + 1) yi;
    acc := !acc +. (yr *. yr);
    acc := !acc +. (yi *. yi)
  done;
  if hi land 1 = 1 then begin
    let v = Array1.unsafe_get y (hi - 1) in
    acc := !acc +. (v *. v)
  end;
  !acc

(* ---- dispatch: implicit (default pool above the cutoff) and
   explicit [_with] paths, both through the canonical engine ---- *)

let fold pool chunk ~n term =
  Field.block_fold pool chunk ~n ~block:Field.reduce_block term

let finish kernel (v : t) s =
  Field.Sanitize.check_vec kernel v;
  Field.Sanitize.check_scalar kernel s

(* y <- y + alpha x; returns |y|^2 *)
let axpy_norm2 alpha (x : t) (y : t) =
  check2 "Fused.axpy_norm2" x y;
  no_alias "Fused.axpy_norm2" [ y ] [ x ];
  let n = Field.length x in
  finish "Fused.axpy_norm2" y
    (fold (Field.implicit_pool n) None ~n (axpy_norm2_term alpha x y))

let axpy_norm2_with pool ?chunk alpha (x : t) (y : t) =
  check2 "Fused.axpy_norm2" x y;
  no_alias "Fused.axpy_norm2" [ y ] [ x ];
  finish "Fused.axpy_norm2" y
    (fold (Some pool) chunk ~n:(Field.length x) (axpy_norm2_term alpha x y))

(* p <- x + beta p; returns p.q *)
let xpay_dot (x : t) beta (p : t) (q : t) =
  check2 "Fused.xpay_dot" x p;
  check2 "Fused.xpay_dot" x q;
  no_alias "Fused.xpay_dot" [ p ] [ x ];
  let n = Field.length x in
  finish "Fused.xpay_dot" p
    (fold (Field.implicit_pool n) None ~n (xpay_dot_term x beta p q))

let xpay_dot_with pool ?chunk (x : t) beta (p : t) (q : t) =
  check2 "Fused.xpay_dot" x p;
  check2 "Fused.xpay_dot" x q;
  no_alias "Fused.xpay_dot" [ p ] [ x ];
  finish "Fused.xpay_dot" p
    (fold (Some pool) chunk ~n:(Field.length x) (xpay_dot_term x beta p q))

(* x <- x + alpha p; r <- r - alpha ap; returns |r|^2 *)
let cg_update alpha (p : t) (ap : t) (x : t) (r : t) =
  check2 "Fused.cg_update" p ap;
  check2 "Fused.cg_update" p x;
  check2 "Fused.cg_update" p r;
  no_alias "Fused.cg_update" [ x; r ] [ p; ap ];
  if same_data x r then
    invalid_arg "Fused.cg_update: output aliases an input of a different role";
  let n = Field.length p in
  let s = fold (Field.implicit_pool n) None ~n (cg_update_term alpha p ap x r) in
  Field.Sanitize.check_vec "Fused.cg_update" x;
  finish "Fused.cg_update" r s

let cg_update_with pool ?chunk alpha (p : t) (ap : t) (x : t) (r : t) =
  check2 "Fused.cg_update" p ap;
  check2 "Fused.cg_update" p x;
  check2 "Fused.cg_update" p r;
  no_alias "Fused.cg_update" [ x; r ] [ p; ap ];
  if same_data x r then
    invalid_arg "Fused.cg_update: output aliases an input of a different role";
  let s =
    fold (Some pool) chunk ~n:(Field.length p) (cg_update_term alpha p ap x r)
  in
  Field.Sanitize.check_vec "Fused.cg_update" x;
  finish "Fused.cg_update" r s

(* y <- y + alpha x (complex alpha, interleaved); returns |y|^2 *)
let caxpy_norm2 alpha (x : t) (y : t) =
  check2 "Fused.caxpy_norm2" x y;
  no_alias "Fused.caxpy_norm2" [ y ] [ x ];
  let n = Field.length x in
  finish "Fused.caxpy_norm2" y
    (fold (Field.implicit_pool n) None ~n (caxpy_norm2_term alpha x y))

let caxpy_norm2_with pool ?chunk alpha (x : t) (y : t) =
  check2 "Fused.caxpy_norm2" x y;
  no_alias "Fused.caxpy_norm2" [ y ] [ x ];
  finish "Fused.caxpy_norm2" y
    (fold (Some pool) chunk ~n:(Field.length x) (caxpy_norm2_term alpha x y))

(* ---- stencil output tail ----
   The closure a hop kernel applies per site-block right after the
   stencil result lands, while the block is still hot: an optional
   xpay into a separate output ([out <- dst + beta*out]) followed by a
   dot accumulation against [q]. Defined, like every kernel here, by
   the unfused sequence it must match bit-for-bit:

     hop ~tail:{xpay = Some (out, beta); dot = q}
       ==  hop; xpay_dot dst beta out q
     hop ~tail:{xpay = None; dot = q}
       ==  hop; Field.dot_re q dst

   The dot pairs [q] with the tail result (out when the xpay runs, the
   raw stencil output otherwise). Bit-identity holds for any pool
   geometry because the stencil callers tile the tail at whole
   [Field.reduce_block]s and fold the block partials in index order —
   [Field.block_fold]'s canonical association. *)
type tail = {
  t_xpay : (t * float) option;  (* (out, beta): out <- dst + beta*out *)
  t_dot : t;  (* q: the reduction operand *)
}

let tail ?xpay ~dot () = { t_xpay = xpay; t_dot = dot }

(* Guard + shape check, called by the stencil front-ends before the
   launch: every tail operand spans the stencil output, and the xpay
   output must not alias the stencil's dst — the fused pass reads dst
   as the xpay x-operand while writing out, the FUSE002 hazard the
   probing [same_data] rejects even across distinct handles. [q]
   aliasing dst or out is legal (read-only role — the monitor-dot
   idiom). *)
let tail_check name ~n ~(dst : t) tl =
  let len what (v : t) =
    if Field.length v <> n then
      invalid_arg (Printf.sprintf "%s: tail %s length mismatch" name what)
  in
  len "dot" tl.t_dot;
  match tl.t_xpay with
  | None -> ()
  | Some (out, _) ->
    len "xpay output" out;
    if same_data out dst then
      invalid_arg (name ^ ": tail output aliases the stencil dst")

(* The serial per-block term: callers hand it canonical-block [lo, hi)
   float ranges of dst in index order and fold the results in block
   order. Accumulation is one float at a time — Field.dot_re_term's
   association; the xpay matches Fused.xpay_dot_term element-wise. *)
let tail_term tl ~(dst : t) lo hi =
  let q = tl.t_dot in
  let acc = ref 0. in
  (match tl.t_xpay with
  | Some (out, beta) ->
    for i = lo to hi - 1 do
      let oi = Array1.unsafe_get dst i +. (beta *. Array1.unsafe_get out i) in
      Array1.unsafe_set out i oi;
      acc := !acc +. (oi *. Array1.unsafe_get q i)
    done
  | None ->
    for i = lo to hi - 1 do
      acc := !acc +. (Array1.unsafe_get q i *. Array1.unsafe_get dst i)
    done);
  !acc

(* Operand-role table, in call order: (formal name, is_output). The
   ground truth Check.Plan_extract builds fused-launch effects from,
   and the static mirror of the no_alias guards above — a plan whose
   output operand shares a buffer with any other position is the
   FUSE002/PLAN002 hazard. Read/Read repetition (xpay_dot's q = x
   monitor) is legal and expected. *)
let operand_roles = function
  | "axpy_norm2" -> Some [ ("x", false); ("y", true) ]
  | "xpay_dot" -> Some [ ("x", false); ("p", true); ("q", false) ]
  | "cg_update" ->
    Some [ ("p", false); ("ap", false); ("x", true); ("r", true) ]
  | "caxpy_norm2" -> Some [ ("x", false); ("y", true) ]
  | _ -> None
