(* SU(3) gauge-link compression codecs — the QUDA QudaReconstructType
   trade (Clark et al.): a unitary link is fully determined by fewer
   than 18 reals, so store 12 (drop the third row) or 8 (minimal
   parameterization) and rebuild the rest in registers at the point of
   use. On a bandwidth-bound stencil this converts link bytes into
   reconstruction flops — the currency the performance model prices.

   Layout convention matches Su3.t / gauge storage: row-major,
   interleaved re/im, so row r column c real part sits at 2*(3r+c).

   Sign plane: reconstruction assumes det U = +1, but the fermion
   boundary condition multiplies time links by −1
   (Gauge.with_antiperiodic_time), giving det = −1. Both codecs store
   one sign s = sign(Re det U) per link: Recon12 keeps rows 0,1 as
   exact bit-copies of U and applies s only to the reconstructed third
   row (U2 = s·conj(U0 × U1), and (−u)×(−v) = u×v so the stored rows
   need no correction); Recon8 parameterizes V = s·U ∈ SU(3) and
   scales the decoded V by s. The sign is one bit per link, excluded
   from the 1152/768/512 bytes-per-site model as negligible metadata.

   Recon8 parameterization of V with rows a=(a1,a2,a3), b=(b1,b2,b3),
   c=(c1,c2,c3): store [θ1 = arg a1; Re a2; Im a2; Re a3; Im a3;
   Re b1; Im b1; θ2 = arg c1]. Decode: |a1| = sqrt(1−|a2|²−|a3|²);
   |c1|² = 1−|a1|²−|b1|²; then with N = |a2|²+|a3|² solve the 2×2
   system {conj(a2)b2 + conj(a3)b3 = −conj(a1)b1 (row orthogonality);
   −a3·b2 + a2·b3 = conj(c1) (c = conj(a×b))} by Cramer (determinant
   N), and close with c2 = conj(a3b1 − a1b3), c3 = conj(a1b2 − a2b1).
   The division by N makes links whose first row is concentrated on
   the first color (N → 0, e.g. the unit gauge field) undecodable —
   encode raises below [recon8_min_n]; Haar-distributed links have
   N = O(1). Round-trip error amplifies like 1/N: ≲1e-13 for Recon12
   and ≲1e-9 for Recon8 on Haar links (the documented bounds the
   qcheck properties assert). *)

type codec = Full18 | Recon12 | Recon8

let all = [ Full18; Recon12; Recon8 ]

let name = function
  | Full18 -> "full18"
  | Recon12 -> "recon12"
  | Recon8 -> "recon8"

let of_name = function
  | "full18" -> Some Full18
  | "recon12" -> Some Recon12
  | "recon8" -> Some Recon8
  | _ -> None

let reals = function Full18 -> 18 | Recon12 -> 12 | Recon8 -> 8

(* Reconstruction tolerance on the source link's unitarity violation
   (Frobenius norm of U·U† − I): beyond it the decoded link diverges
   from the stored one by more than rounding — Check.Recon_check
   RECON001. Full18 is exact for any matrix. *)
let tolerance = function Full18 -> infinity | Recon12 | Recon8 -> 1e-8

(* Documented encode∘decode round-trip bound on links within
   [tolerance] of SU(3) (Frobenius distance; Recon8's carries the 1/N
   amplification headroom). *)
let round_trip_bound = function
  | Full18 -> 0.
  | Recon12 -> 1e-12
  | Recon8 -> 1e-8

let recon8_min_n = 1e-15

(* Re Tr is not enough — we need Re det. Su3.determinant allocates a
   Cplx; fine off the hot path (encode runs once per field). *)
let det_sign (u : Su3.t) =
  if (Su3.determinant u).Cplx.re < 0. then -1. else 1.

exception Degenerate of string

let encode_into codec (u : Su3.t) (dst : float array) ~off =
  match codec with
  | Full18 ->
    Array.blit u 0 dst off 18;
    1.
  | Recon12 ->
    Array.blit u 0 dst off 12;
    det_sign u
  | Recon8 ->
    let s = det_sign u in
    (* V = s·U: every element of the sign-normalized link *)
    let v i = s *. u.(i) in
    let a2r = v 2 and a2i = v 3 and a3r = v 4 and a3i = v 5 in
    let n = (a2r *. a2r) +. (a2i *. a2i) +. (a3r *. a3r) +. (a3i *. a3i) in
    if n < recon8_min_n then
      raise
        (Degenerate
           (Printf.sprintf
              "Su3_codec.encode: recon8 cannot parameterize a link with \
               |a2|^2+|a3|^2 = %g < %g (first row concentrated on color 0, \
               e.g. a unit link)"
              n recon8_min_n));
    dst.(off) <- atan2 (v 1) (v 0);            (* θ1 = arg a1 *)
    dst.(off + 1) <- a2r;
    dst.(off + 2) <- a2i;
    dst.(off + 3) <- a3r;
    dst.(off + 4) <- a3i;
    dst.(off + 5) <- v 6;                      (* Re b1 *)
    dst.(off + 6) <- v 7;                      (* Im b1 *)
    dst.(off + 7) <- atan2 (v 13) (v 12);      (* θ2 = arg c1 *)
    s

let decode_into codec (src : float array) ~off ~sign (u : float array) =
  match codec with
  | Full18 -> Array.blit src off u 0 18
  | Recon12 ->
    Array.blit src off u 0 12;
    (* U2 = s·conj(U0 × U1) *)
    let u0r = src.(off) and u0i = src.(off + 1) in
    let u1r = src.(off + 2) and u1i = src.(off + 3) in
    let u2r = src.(off + 4) and u2i = src.(off + 5) in
    let v0r = src.(off + 6) and v0i = src.(off + 7) in
    let v1r = src.(off + 8) and v1i = src.(off + 9) in
    let v2r = src.(off + 10) and v2i = src.(off + 11) in
    (* c0 = u1·v2 − u2·v1 *)
    let c0r = (u1r *. v2r) -. (u1i *. v2i) -. ((u2r *. v1r) -. (u2i *. v1i)) in
    let c0i = (u1r *. v2i) +. (u1i *. v2r) -. ((u2r *. v1i) +. (u2i *. v1r)) in
    (* c1 = u2·v0 − u0·v2 *)
    let c1r = (u2r *. v0r) -. (u2i *. v0i) -. ((u0r *. v2r) -. (u0i *. v2i)) in
    let c1i = (u2r *. v0i) +. (u2i *. v0r) -. ((u0r *. v2i) +. (u0i *. v2r)) in
    (* c2 = u0·v1 − u1·v0 *)
    let c2r = (u0r *. v1r) -. (u0i *. v1i) -. ((u1r *. v0r) -. (u1i *. v0i)) in
    let c2i = (u0r *. v1i) +. (u0i *. v1r) -. ((u1r *. v0i) +. (u1i *. v0r)) in
    u.(12) <- sign *. c0r;
    u.(13) <- -.sign *. c0i;
    u.(14) <- sign *. c1r;
    u.(15) <- -.sign *. c1i;
    u.(16) <- sign *. c2r;
    u.(17) <- -.sign *. c2i
  | Recon8 ->
    let th1 = src.(off) in
    let a2r = src.(off + 1) and a2i = src.(off + 2) in
    let a3r = src.(off + 3) and a3i = src.(off + 4) in
    let b1r = src.(off + 5) and b1i = src.(off + 6) in
    let th2 = src.(off + 7) in
    let n = (a2r *. a2r) +. (a2i *. a2i) +. (a3r *. a3r) +. (a3i *. a3i) in
    let a1m = sqrt (Float.max 0. (1. -. n)) in
    let a1r = a1m *. cos th1 and a1i = a1m *. sin th1 in
    let c1m =
      sqrt
        (Float.max 0.
           (1. -. (a1m *. a1m) -. ((b1r *. b1r) +. (b1i *. b1i))))
    in
    let c1r = c1m *. cos th2 and c1i = c1m *. sin th2 in
    (* rhs1 = −conj(a1)·b1, rhs2 = conj(c1) *)
    let r1r = -.((a1r *. b1r) +. (a1i *. b1i)) in
    let r1i = -.((a1r *. b1i) -. (a1i *. b1r)) in
    let r2r = c1r and r2i = -.c1i in
    let inv_n = 1. /. n in
    (* b2 = (rhs1·a2 − conj(a3)·rhs2) / N *)
    let b2r =
      ((r1r *. a2r) -. (r1i *. a2i) -. ((a3r *. r2r) +. (a3i *. r2i))) *. inv_n
    in
    let b2i =
      ((r1r *. a2i) +. (r1i *. a2r) -. ((a3r *. r2i) -. (a3i *. r2r))) *. inv_n
    in
    (* b3 = (conj(a2)·rhs2 + a3·rhs1) / N — Cramer with A21 = −a3 *)
    let b3r =
      ((a2r *. r2r) +. (a2i *. r2i) +. ((a3r *. r1r) -. (a3i *. r1i))) *. inv_n
    in
    let b3i =
      ((a2r *. r2i) -. (a2i *. r2r) +. ((a3r *. r1i) +. (a3i *. r1r))) *. inv_n
    in
    (* c2 = conj(a3·b1 − a1·b3), c3 = conj(a1·b2 − a2·b1) *)
    let c2r = (a3r *. b1r) -. (a3i *. b1i) -. ((a1r *. b3r) -. (a1i *. b3i)) in
    let c2i = (a3r *. b1i) +. (a3i *. b1r) -. ((a1r *. b3i) +. (a1i *. b3r)) in
    let c3r = (a1r *. b2r) -. (a1i *. b2i) -. ((a2r *. b1r) -. (a2i *. b1i)) in
    let c3i = (a1r *. b2i) +. (a1i *. b2r) -. ((a2r *. b1i) +. (a2i *. b1r)) in
    u.(0) <- sign *. a1r;
    u.(1) <- sign *. a1i;
    u.(2) <- sign *. a2r;
    u.(3) <- sign *. a2i;
    u.(4) <- sign *. a3r;
    u.(5) <- sign *. a3i;
    u.(6) <- sign *. b1r;
    u.(7) <- sign *. b1i;
    u.(8) <- sign *. b2r;
    u.(9) <- sign *. b2i;
    u.(10) <- sign *. b3r;
    u.(11) <- sign *. b3i;
    u.(12) <- sign *. c1r;
    u.(13) <- sign *. c1i;
    u.(14) <- sign *. c2r;
    u.(15) <- -.sign *. c2i;
    u.(16) <- sign *. c3r;
    u.(17) <- -.sign *. c3i

let round_trip codec (u : Su3.t) : Su3.t =
  let packed = Array.make (reals codec) 0. in
  let sign = encode_into codec u packed ~off:0 in
  let w = Array.make 18 0. in
  decode_into codec packed ~off:0 ~sign w;
  w

let round_trip_error codec u = Su3.frobenius_dist u (round_trip codec u)

(* Fixed-point wire format of the packed reals — the gauge-side user
   of the shared Quantize scaling (one norm per packed link). Recon8's
   θ entries span (−π, π] and its amplitudes [−1, 1], all one int16
   block: the range fits max_q comfortably. Used by the compressed
   halo pricing and tests; the hop decode path stays float64. *)
let pack_fixed codec (u : Su3.t) =
  let packed = Array.make (reals codec) 0. in
  let sign = encode_into codec u packed ~off:0 in
  let data = Array.make (reals codec) 0 in
  let norm = Quantize.encode_array packed data in
  (data, norm, sign)

let unpack_fixed codec (data, norm, sign) =
  let packed = Array.make (reals codec) 0. in
  Quantize.decode_array data ~norm packed;
  let u = Array.make 18 0. in
  decode_into codec packed ~off:0 ~sign u;
  u
