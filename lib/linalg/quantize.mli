(** Shared block range-scaling fixed-point codec — the one
    implementation of the 16-bit storage trick behind [Field.Half]
    (spinors), the compressed halo face payloads ([Vrank.Comm]) and
    the fixed-point gauge wire format ([Su3_codec]). A block shares
    one float32 norm; values store as [round(v·max_q/norm)] in int16.
    The stored norm is re-read before scaling so its float32 rounding
    is absorbed identically by every user. No validation: callers
    check lengths and sanitize non-finite inputs. *)

type i16 = (int, Bigarray.int16_signed_elt, Bigarray.c_layout) Bigarray.Array1.t
type f32 = (float, Bigarray.float32_elt, Bigarray.c_layout) Bigarray.Array1.t
type f64 = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

val max_q : float
(** 32767 — the int16 quantization ceiling. *)

val block_norm : f64 -> off:int -> len:int -> float
(** Largest magnitude in [src[off, off+len)]. *)

val scale_of_norm : float -> float
(** [max_q / stored_norm], 0 on an all-zero (or negative) norm. *)

val quantize : float -> float -> int
(** [quantize inv v]: rounded, clamped int16 code of [v]. *)

val encode_block : f64 -> off:int -> len:int -> i16 -> f32 -> block_idx:int -> unit
val decode_block : i16 -> f32 -> block_idx:int -> f64 -> off:int -> len:int -> unit

val encode_blocks : f64 -> i16 -> f32 -> block:int -> unit
(** Whole-array encode: block [b] covers [[b·block, (b+1)·block)];
    [dim norms] blocks. The sequence per block — store the norm as
    float32, re-read it, quantize against the stored value — is
    exactly [Field.Half.encode]'s, bit for bit. *)

val decode_blocks : i16 -> f32 -> f64 -> block:int -> unit

val encode_array : float array -> int array -> float
(** One-norm variant for small per-object buffers (a packed gauge
    link); returns the float32-rounded norm the decoder needs. *)

val decode_array : int array -> norm:float -> float array -> unit

val wire_bytes : n:int -> block:int -> float
(** Bytes the format moves for [n] values: 2n payload + 4 per block. *)
