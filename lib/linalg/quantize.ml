(* Shared block range-scaling fixed-point codec: the one implementation
   of the paper's 16-bit storage trick. A block of values shares one
   float32 norm (the block's max magnitude); each value is stored as
   round(v * max_q / norm) in an int16. Field.Half (the spinor codec),
   the compressed halo face payloads (Vrank.Comm) and the fixed-point
   gauge wire format (Su3_codec.pack_fixed) all call these helpers, so
   the scaling math — including the deliberate re-read of the stored
   float32 norm to absorb its rounding before computing the scale —
   exists exactly once.

   No validation here: callers check lengths and sanitize their inputs
   (NaN comparisons against a norm are all false, silently laundering
   non-finite values into 0 — Field.Half traps at its boundary). *)

open Bigarray

type i16 = (int, int16_signed_elt, c_layout) Array1.t
type f32 = (float, float32_elt, c_layout) Array1.t
type f64 = (float, float64_elt, c_layout) Array1.t

let max_q = 32767.

(* Largest magnitude of src[off, off+len). *)
let block_norm (src : f64) ~off ~len =
  let norm = ref 0. in
  for i = off to off + len - 1 do
    let a = abs_float (Array1.unsafe_get src i) in
    if a > !norm then norm := a
  done;
  !norm

let scale_of_norm stored = if stored > 0. then max_q /. stored else 0.

let quantize inv v =
  let q = Float.round (v *. inv) in
  let q = if q > max_q then max_q else if q < -.max_q then -.max_q else q in
  int_of_float q

(* Encode one block: store its norm (float32), re-read it to absorb
   the storage rounding, then quantize every element against the
   stored value — the exact sequence Field.Half has always run, so the
   refactor is bit-identical. *)
let encode_block (src : f64) ~off ~len (data : i16) (norms : f32) ~block_idx =
  Array1.unsafe_set norms block_idx (block_norm src ~off ~len);
  let inv = scale_of_norm (Array1.unsafe_get norms block_idx) in
  for i = 0 to len - 1 do
    Array1.unsafe_set data (off + i) (quantize inv (Array1.unsafe_get src (off + i)))
  done

let decode_block (data : i16) (norms : f32) ~block_idx (dst : f64) ~off ~len =
  let s = Array1.unsafe_get norms block_idx /. max_q in
  for i = 0 to len - 1 do
    Array1.unsafe_set dst (off + i)
      (float_of_int (Array1.unsafe_get data (off + i)) *. s)
  done

let encode_blocks (src : f64) (data : i16) (norms : f32) ~block =
  let n_blocks = Array1.dim norms in
  for b = 0 to n_blocks - 1 do
    encode_block src ~off:(b * block) ~len:block data norms ~block_idx:b
  done

let decode_blocks (data : i16) (norms : f32) (dst : f64) ~block =
  let n_blocks = Array1.dim norms in
  for b = 0 to n_blocks - 1 do
    decode_block data norms ~block_idx:b dst ~off:(b * block) ~len:block
  done

(* Float-array variant for small per-object buffers (a packed gauge
   link): one norm for the whole array, returned as the float32-rounded
   value the decoder must use. *)
let encode_array (src : float array) (data : int array) =
  let norm = ref 0. in
  Array.iter (fun v -> let a = abs_float v in if a > !norm then norm := a) src;
  let stored = Int32.float_of_bits (Int32.bits_of_float !norm) in
  let inv = scale_of_norm stored in
  Array.iteri (fun i v -> data.(i) <- quantize inv v) src;
  stored

let decode_array (data : int array) ~norm (dst : float array) =
  let s = norm /. max_q in
  Array.iteri (fun i q -> dst.(i) <- float_of_int q *. s) data

(* Wire-byte pricing of the format: int16 payload + one float32 norm
   per block — what a compressed halo message actually moves. *)
let wire_bytes ~n ~block = float_of_int ((n * 2) + (n / block * 4))
