(** Multi-vector fused BLAS-1 over vector *sets* — QUDA's multi-blas
    idiom on the host. One launch streams a batch of k vectors,
    interleaving the per-vector block passes so the working set stays
    hot, while each RHS keeps the canonical
    [Field.reduce_block]-blocked, index-ordered reduction of its
    single-vector [Linalg.Fused] twin. Consequence (the invariant the
    batched solver leans on): result [i] of every kernel here is
    bit-identical to the independent fused call on vector [i], serial
    or pooled, for any pool geometry.

    Aliasing contract, set-wide: an output sharing storage with an
    input of a different role, or with another output, raises
    [Invalid_argument] (probed through [Fused.same_data]). Read-only
    repetition — e.g. [qs.(i) == ps.(i)], the monitor-dot idiom — is
    legal. All vectors in a call must have one common length; batches
    must be non-empty. *)

type t = Field.t

val block_axpy : float array array -> t array -> t array -> unit
(** [block_axpy a xs ys]: the multi-blas tile
    [ys.(i) <- ys.(i) + sum_j a.(i).(j)·xs.(j)], with [a] an
    [Array.length ys × Array.length xs] coefficient matrix. Per output
    element the j-accumulation runs in index order, so output [i]
    matches the sequential [Field.axpy a.(i).(j) xs.(j) ys.(i)] sweeps
    (j ascending) bit-for-bit — with one pass over memory instead of
    [Array.length xs]. *)

val axpy_norm2 : float array -> t array -> t array -> float array
(** [axpy_norm2 alphas xs ys]: per RHS,
    [ys.(i) <- ys.(i) + alphas.(i)·xs.(i)]; returns the per-RHS |y|².
    Slot [i] ≡ [Fused.axpy_norm2 alphas.(i) xs.(i) ys.(i)] to the
    bit. *)

val xpay_dot : t array -> float array -> t array -> t array -> float array
(** [xpay_dot xs betas ps qs]: per RHS,
    [ps.(i) <- xs.(i) + betas.(i)·ps.(i)]; returns the per-RHS p·q.
    Slot [i] ≡ [Fused.xpay_dot xs.(i) betas.(i) ps.(i) qs.(i)]. *)

val cg_update :
  float array -> t array -> t array -> t array -> t array -> float array
(** [cg_update alphas ps aps xs rs]: per RHS, the whole CG vector tail
    [xs.(i) += alphas.(i)·ps.(i); rs.(i) -= alphas.(i)·aps.(i)];
    returns the per-RHS |r|². Slot [i] ≡
    [Fused.cg_update alphas.(i) ps.(i) aps.(i) xs.(i) rs.(i)]. *)

(** Explicit pooled variants on a caller-chosen pool and chunk (in
    floats, applied to each RHS's block space) — the batched
    autotuner candidates. Same per-RHS results as above. *)

val block_axpy_with :
  Util.Pool.t -> ?chunk:int -> float array array -> t array -> t array -> unit

val axpy_norm2_with :
  Util.Pool.t -> ?chunk:int -> float array -> t array -> t array -> float array

val xpay_dot_with :
  Util.Pool.t ->
  ?chunk:int ->
  t array ->
  float array ->
  t array ->
  t array ->
  float array

val cg_update_with :
  Util.Pool.t ->
  ?chunk:int ->
  float array ->
  t array ->
  t array ->
  t array ->
  t array ->
  float array

val operand_roles : string -> (string * bool) list option
(** Operand-role table of a batched kernel by plan-IR name
    ([multi_cg_update], [multi_xpay_dot], [multi_axpy_norm2],
    [block_axpy]): [(formal, is_output)] per vector *set* in call
    order. [None] for unknown kernels. [Check.Plan_extract] expands
    sets to per-RHS buffers when building batched launch effects. *)
