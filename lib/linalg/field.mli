(** Flat float64 Bigarray vectors (fermion-field storage) and the
    BLAS-1 kernels of the CG solver. Interleaved complex layout:
    element [2k] is the real part and [2k+1] the imaginary part of
    component k. *)

type t = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

val create : int -> t
(** Zero-initialized vector of [n] floats. *)

val length : t -> int
val copy : t -> t
val blit : t -> t -> unit
val fill : t -> float -> unit
val of_array : float array -> t
val to_array : t -> float array

val parallel_cutoff : int
(** Vectors shorter than this stay serial on the implicit pooled
    paths: the fork/join costs more than it hides.
    [Check.Pool_check] DET003 warns about pooled launches under it. *)

val reduce_block : int
(** Canonical reduction block (in floats). [norm2]/[dot_re]/[cdot] sum
    each block serially and combine block partials in index order on
    every path — serial and pooled results are bit-identical for any
    pool geometry. *)

val block_fold :
  Util.Pool.t option ->
  int option ->
  n:int ->
  block:int ->
  (int -> int -> float) ->
  float
(** The canonical blocked-reduction engine behind [norm2]/[dot_re]:
    cuts [0, n) into [block]-sized blocks, evaluates [term lo hi] per
    block (in parallel when a pool is given — the slots are disjoint)
    and folds the partials in block-index order on the calling domain.
    Exported so the fused solver kernels ([Fused]) share the exact
    association of the unfused reductions: any [term] that updates a
    block element-wise and then accumulates it in index order is
    bit-identical to running the update kernel followed by the
    standalone reduction, for every pool geometry. *)

val implicit_pool : int -> Util.Pool.t option
(** The pool the implicit kernels dispatch on: [Util.Pool.get_default]
    when it has more than one lane and [n] is at least
    [parallel_cutoff], else [None] (serial). *)

val axpy : float -> t -> t -> unit
(** [axpy a x y]: y <- y + a·x. *)

val xpay : t -> float -> t -> unit
(** [xpay x a y]: y <- x + a·y. *)

val scale : float -> t -> unit

val sub : t -> t -> t -> unit
(** [sub x y z]: z <- x − y. *)

val caxpy : float * float -> t -> t -> unit
(** [caxpy (re, im) x y]: y <- y + a·x with complex a. *)

val norm2 : t -> float
val norm : t -> float

val dot_re : t -> t -> float
(** Real part of the complex inner product. *)

val cdot : t -> t -> Cplx.t
(** Complex inner product sum conj(x_k)·y_k. *)

(** Explicit pooled variants — same kernels run on a caller-chosen
    pool and chunk (in floats; the complex kernels halve it to pairs).
    These are the autotuner's pooled candidates; the plain kernels
    above dispatch implicitly on [Util.Pool.get_default] for vectors
    of at least [parallel_cutoff] floats. All are bit-identical to
    their serial counterparts for any geometry, and the [Sanitize]
    hooks run on these paths too. *)

val axpy_with : Util.Pool.t -> ?chunk:int -> float -> t -> t -> unit
val xpay_with : Util.Pool.t -> ?chunk:int -> t -> float -> t -> unit
val scale_with : Util.Pool.t -> ?chunk:int -> float -> t -> unit
val sub_with : Util.Pool.t -> ?chunk:int -> t -> t -> t -> unit
val caxpy_with : Util.Pool.t -> ?chunk:int -> float * float -> t -> t -> unit
val norm2_with : Util.Pool.t -> ?chunk:int -> t -> float
val dot_re_with : Util.Pool.t -> ?chunk:int -> t -> t -> float
val cdot_with : Util.Pool.t -> ?chunk:int -> t -> t -> Cplx.t

val gaussian : Util.Rng.t -> t -> unit
(** Fill with unit-variance Gaussian noise. *)

(** Opt-in NaN/Inf sanitizer for the BLAS-1 hot paths. When [enabled],
    [axpy]/[xpay]/[scale]/[sub]/[caxpy] scan their output vector and
    [norm2]/[dot_re]/[cdot] check their result, naming the first kernel
    that produces a non-finite value. Off by default (one ref read per
    kernel call). *)
module Sanitize : sig
  exception Non_finite of string * int * float
  (** [(kernel, index, value)]; [index] is [-1] for reduction results. *)

  val enabled : bool ref

  val raising : bool ref
  (** [true] (default): raise [Non_finite] at the first trap.
      [false]: record traps and keep going. *)

  val trap_count : int ref
  val max_recorded : int

  val recorded : (string * int * float) list ref
  (** Most recent first; capped at [max_recorded] entries. *)

  val reset : unit -> unit

  val check_scalar : string -> float -> float
  val check_vec : string -> t -> unit

  val scoped : ?raise_on_trap:bool -> (unit -> 'a) -> 'a
  (** Run with the sanitizer on (trap log cleared), restoring the
      previous sanitizer state afterwards. The trap log survives the
      call for inspection. *)
end

val map2 : (float -> float -> float) -> t -> t -> t -> unit
val max_abs_diff : t -> t -> float

(** 16-bit fixed-point storage with per-block float32 norms — the
    paper's half-precision format for the inner CG. *)
module Half : sig
  type h = {
    data : (int, Bigarray.int16_signed_elt, Bigarray.c_layout) Bigarray.Array1.t;
    norms : (float, Bigarray.float32_elt, Bigarray.c_layout) Bigarray.Array1.t;
    block : int;
  }

  val max_q : float

  val create : block:int -> int -> h
  (** [create ~block n]: [block] floats share one norm; block ∣ n. *)

  val length : h -> int
  val encode : t -> h -> unit
  val decode : h -> t -> unit

  val round_trip : t -> block:int -> t
  (** Encode then decode — the quantization the inner solver sees. *)
end
