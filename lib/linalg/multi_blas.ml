(* Multi-vector fused BLAS-1 — QUDA's multi-blas idiom on the host:
   one launch streams a whole *set* of vectors, tiling the work so the
   per-vector updates and reductions interleave block-by-block instead
   of vector-by-vector. Two families:

   - [block_axpy a xs ys]: the tiled y[i] <- y[i] + sum_j a[i][j] x[j]
     (QUDA's multi_blas_quda caxpy tile). Element-wise, so for each
     output i it matches the sequential
       Field.axpy a.(i).(0) xs.(0) ys.(i); ...; axpy a.(i).(m-1) ...
     bit-for-bit (the j-accumulation order is the same per element).

   - batched reduction kernels [axpy_norm2]/[xpay_dot]/[cg_update]:
     the Fused kernels over vector sets. Each RHS i runs the *same*
     canonical [Field.reduce_block]-float blocked, index-ordered
     reduction as its single-vector [Linalg.Fused] twin — the batch
     merely interleaves the block passes across RHS — so result i is
     bit-identical to the independent fused call, serial or pooled,
     for any pool geometry. That is the invariant [Cg.solve_multi]
     leans on for per-RHS trajectory identity.

   Aliasing contract: like [Fused] but across the whole set — an
   output vector sharing storage with any input of a different role,
   or with another output, raises [Invalid_argument] (probed via
   [Fused.same_data]; see Check.Mrhs_check for the static mirror). *)

open Bigarray

type t = Field.t

let check_batch name (vs : t array) =
  if Array.length vs = 0 then invalid_arg (name ^ ": empty batch");
  let n = Field.length vs.(0) in
  Array.iter
    (fun v ->
      if Field.length v <> n then invalid_arg (name ^ ": length mismatch"))
    vs;
  n

let check_width name k (vs : t array) =
  if Array.length vs <> k then invalid_arg (name ^ ": batch width mismatch")

let check_scalars name k (a : float array) =
  if Array.length a <> k then invalid_arg (name ^ ": coefficient count mismatch")

(* Outputs must be pairwise distinct and must not share data with any
   input of a different role. k is small (a batch width), so the
   quadratic probe is cheap. *)
let no_alias_sets name (outs : t array) (ins : t array) =
  Array.iteri
    (fun i o ->
      Array.iteri
        (fun j o' ->
          if i < j && Fused.same_data o o' then
            invalid_arg (name ^ ": two outputs share storage"))
        outs;
      Array.iter
        (fun inp ->
          if Fused.same_data o inp then
            invalid_arg (name ^ ": output aliases an input of a different role"))
        ins)
    outs

(* ---- the batched reduction engine ----
   Per-RHS [Field.block_fold] semantics, with the block loop hoisted
   outside the RHS loop so one pass over block [b] touches every
   vector's slice while it is hot. The single-block shortcut and the
   block-index-order fold are replicated exactly (including the
   [term i 0 n] direct return — no [0. +.] normalisation of a -0.
   partial), so result i is bit-identical to
   [Field.block_fold pool chunk ~n ~block:reduce_block (term i)]. *)
let batch_fold pool chunk ~n ~k term =
  let block = Field.reduce_block in
  let n_blocks = (n + block - 1) / block in
  if n_blocks <= 1 then
    Array.init k (fun i -> if n <= 0 then 0. else term i 0 n)
  else begin
    let partials = Array.make_matrix k n_blocks 0. in
    let fill blo bhi =
      for b = blo to bhi - 1 do
        let lo = b * block and hi = min n ((b + 1) * block) in
        for i = 0 to k - 1 do
          partials.(i).(b) <- term i lo hi
        done
      done
    in
    (match pool with
    | Some p ->
      let chunk_blocks = Option.map (fun c -> max 1 (c / block)) chunk in
      Util.Pool.parallel_for p ?chunk:chunk_blocks ~n:n_blocks fill
    | None -> fill 0 n_blocks);
    Array.init k (fun i ->
        let acc = ref 0. in
        for b = 0 to n_blocks - 1 do
          acc := !acc +. partials.(i).(b)
        done;
        !acc)
  end

let finish kernel (vs : t array) (ss : float array) =
  Array.iter (Field.Sanitize.check_vec kernel) vs;
  Array.iter (fun s -> ignore (Field.Sanitize.check_scalar kernel s : float)) ss;
  ss

(* ---- per-RHS range terms: exactly the Fused terms, per set slot ---- *)

let axpy_norm2_term alphas (xs : t array) (ys : t array) i lo hi =
  let alpha = alphas.(i) and x = xs.(i) and y = ys.(i) in
  let acc = ref 0. in
  for e = lo to hi - 1 do
    let ye = Array1.unsafe_get y e +. (alpha *. Array1.unsafe_get x e) in
    Array1.unsafe_set y e ye;
    acc := !acc +. (ye *. ye)
  done;
  !acc

let xpay_dot_term (xs : t array) betas (ps : t array) (qs : t array) i lo hi =
  let x = xs.(i) and beta = betas.(i) and p = ps.(i) and q = qs.(i) in
  let acc = ref 0. in
  for e = lo to hi - 1 do
    let pe = Array1.unsafe_get x e +. (beta *. Array1.unsafe_get p e) in
    Array1.unsafe_set p e pe;
    acc := !acc +. (pe *. Array1.unsafe_get q e)
  done;
  !acc

let cg_update_term alphas (ps : t array) (aps : t array) (xs : t array)
    (rs : t array) i lo hi =
  let alpha = alphas.(i) in
  let nalpha = -.alpha in
  let p = ps.(i) and ap = aps.(i) and x = xs.(i) and r = rs.(i) in
  let acc = ref 0. in
  for e = lo to hi - 1 do
    Array1.unsafe_set x e
      (Array1.unsafe_get x e +. (alpha *. Array1.unsafe_get p e));
    let re = Array1.unsafe_get r e +. (nalpha *. Array1.unsafe_get ap e) in
    Array1.unsafe_set r e re;
    acc := !acc +. (re *. re)
  done;
  !acc

(* ---- batched axpy_norm2: ys.(i) <- ys.(i) + alphas.(i) xs.(i);
   returns per-RHS |y|^2 ---- *)

let axpy_norm2_checked name alphas (xs : t array) (ys : t array) =
  let k = Array.length ys in
  let n = check_batch name ys in
  check_width name k xs;
  ignore (check_batch name xs : int);
  if Field.length xs.(0) <> n then invalid_arg (name ^ ": length mismatch");
  check_scalars name k alphas;
  no_alias_sets name ys xs;
  (n, k)

let axpy_norm2 alphas (xs : t array) (ys : t array) =
  let n, k = axpy_norm2_checked "Multi_blas.axpy_norm2" alphas xs ys in
  finish "Multi_blas.axpy_norm2" ys
    (batch_fold (Field.implicit_pool n) None ~n ~k
       (axpy_norm2_term alphas xs ys))

let axpy_norm2_with pool ?chunk alphas (xs : t array) (ys : t array) =
  let n, k = axpy_norm2_checked "Multi_blas.axpy_norm2" alphas xs ys in
  finish "Multi_blas.axpy_norm2" ys
    (batch_fold (Some pool) chunk ~n ~k (axpy_norm2_term alphas xs ys))

(* ---- batched xpay_dot: ps.(i) <- xs.(i) + betas.(i) ps.(i);
   returns per-RHS p.q ---- *)

let xpay_dot_checked name (xs : t array) betas (ps : t array) (qs : t array) =
  let k = Array.length ps in
  let n = check_batch name ps in
  check_width name k xs;
  check_width name k qs;
  Array.iter
    (fun (v : t) ->
      if Field.length v <> n then invalid_arg (name ^ ": length mismatch"))
    xs;
  Array.iter
    (fun (v : t) ->
      if Field.length v <> n then invalid_arg (name ^ ": length mismatch"))
    qs;
  check_scalars name k betas;
  (* q is a read-only role: q = p (the monitor idiom) stays legal, so
     only the x inputs are in the alias cross-check *)
  no_alias_sets name ps xs;
  (n, k)

let xpay_dot (xs : t array) betas (ps : t array) (qs : t array) =
  let n, k = xpay_dot_checked "Multi_blas.xpay_dot" xs betas ps qs in
  finish "Multi_blas.xpay_dot" ps
    (batch_fold (Field.implicit_pool n) None ~n ~k
       (xpay_dot_term xs betas ps qs))

let xpay_dot_with pool ?chunk (xs : t array) betas (ps : t array) (qs : t array)
    =
  let n, k = xpay_dot_checked "Multi_blas.xpay_dot" xs betas ps qs in
  finish "Multi_blas.xpay_dot" ps
    (batch_fold (Some pool) chunk ~n ~k (xpay_dot_term xs betas ps qs))

(* ---- batched cg_update: xs.(i) += alphas.(i) ps.(i);
   rs.(i) -= alphas.(i) aps.(i); returns per-RHS |r|^2 ---- *)

let cg_update_checked name alphas (ps : t array) (aps : t array) (xs : t array)
    (rs : t array) =
  let k = Array.length ps in
  let n = check_batch name ps in
  List.iter
    (fun vs ->
      check_width name k vs;
      Array.iter
        (fun (v : t) ->
          if Field.length v <> n then invalid_arg (name ^ ": length mismatch"))
        vs)
    [ aps; xs; rs ];
  check_scalars name k alphas;
  no_alias_sets name (Array.append xs rs) (Array.append ps aps);
  (n, k)

let cg_update alphas (ps : t array) (aps : t array) (xs : t array)
    (rs : t array) =
  let n, k = cg_update_checked "Multi_blas.cg_update" alphas ps aps xs rs in
  let ss =
    batch_fold (Field.implicit_pool n) None ~n ~k
      (cg_update_term alphas ps aps xs rs)
  in
  Array.iter (Field.Sanitize.check_vec "Multi_blas.cg_update") xs;
  finish "Multi_blas.cg_update" rs ss

let cg_update_with pool ?chunk alphas (ps : t array) (aps : t array)
    (xs : t array) (rs : t array) =
  let n, k = cg_update_checked "Multi_blas.cg_update" alphas ps aps xs rs in
  let ss =
    batch_fold (Some pool) chunk ~n ~k (cg_update_term alphas ps aps xs rs)
  in
  Array.iter (Field.Sanitize.check_vec "Multi_blas.cg_update") xs;
  finish "Multi_blas.cg_update" rs ss

(* ---- the multi-blas tile: ys.(i) <- ys.(i) + sum_j a.(i).(j) xs.(j)
   No reduction, so the pooled path is race-free by element
   partitioning alone; per element the j-accumulation runs in index
   order, matching the sequential per-j Field.axpy sweeps to the
   bit. ---- *)

let block_axpy_range (a : float array array) (xs : t array) (ys : t array) lo
    hi =
  let m = Array.length xs in
  Array.iteri
    (fun i (y : t) ->
      let ai = a.(i) in
      for e = lo to hi - 1 do
        let acc = ref (Array1.unsafe_get y e) in
        for j = 0 to m - 1 do
          acc := !acc +. (ai.(j) *. Array1.unsafe_get xs.(j) e)
        done;
        Array1.unsafe_set y e !acc
      done)
    ys

let block_axpy_checked name (a : float array array) (xs : t array)
    (ys : t array) =
  let n = check_batch name ys in
  ignore (check_batch name xs : int);
  if Field.length xs.(0) <> n then invalid_arg (name ^ ": length mismatch");
  if Array.length a <> Array.length ys then
    invalid_arg (name ^ ": coefficient rows must match outputs");
  Array.iter
    (fun row ->
      if Array.length row <> Array.length xs then
        invalid_arg (name ^ ": coefficient columns must match inputs"))
    a;
  no_alias_sets name ys xs;
  n

let block_axpy (a : float array array) (xs : t array) (ys : t array) =
  let n = block_axpy_checked "Multi_blas.block_axpy" a xs ys in
  (match Field.implicit_pool n with
  | Some pool -> Util.Pool.parallel_for pool ~n (block_axpy_range a xs ys)
  | None -> block_axpy_range a xs ys 0 n);
  Array.iter (Field.Sanitize.check_vec "Multi_blas.block_axpy") ys

let block_axpy_with pool ?chunk (a : float array array) (xs : t array)
    (ys : t array) =
  let n = block_axpy_checked "Multi_blas.block_axpy" a xs ys in
  Util.Pool.parallel_for pool ?chunk ~n (block_axpy_range a xs ys);
  Array.iter (Field.Sanitize.check_vec "Multi_blas.block_axpy") ys

(* Operand-role table for the batched kernels, by plan-IR kernel name:
   (formal, is_output) in call order, one formal per *set*. The static
   analyzer expands sets to per-RHS buffers (src0.., dst0..) itself. *)
let operand_roles = function
  | "multi_axpy_norm2" -> Some [ ("x", false); ("y", true) ]
  | "multi_xpay_dot" -> Some [ ("x", false); ("p", true); ("q", false) ]
  | "multi_cg_update" ->
    Some [ ("p", false); ("ap", false); ("x", true); ("r", true) ]
  | "block_axpy" -> Some [ ("x", false); ("y", true) ]
  | _ -> None
