(* Flat float64 Bigarray vectors: the storage for all fermion fields.
   The BLAS-1 level of the CG solver lives here. Reductions accumulate
   in double precision (they already are double — matching the paper's
   statement that all reductions are done in double even in the
   mixed-precision solver). Hot loops use unsafe accesses; lengths are
   validated once at entry.

   Multicore: every kernel has a pooled path over disjoint Bigarray
   slices (Util.Pool). Element-wise kernels are bit-identical to the
   serial loop for any pool geometry because each element's arithmetic
   is independent. Reductions (norm2/dot_re/cdot) always sum in
   canonical blocks of [reduce_block] floats whose partials are
   combined in block-index order on the calling domain — serial and
   pooled paths share that order, so the result is bit-identical
   across all pool geometries and bit-stable run to run (FP addition
   is not associative; fixing the association is what buys
   reproducibility). The implicit paths dispatch on
   [Util.Pool.get_default] above [parallel_cutoff]; the [_with]
   variants take an explicit pool + chunk for the autotuner. *)

open Bigarray

type t = (float, float64_elt, c_layout) Array1.t

let create n : t =
  let v = Array1.create float64 c_layout n in
  Array1.fill v 0.;
  v

let length (v : t) = Array1.dim v

let copy (v : t) : t =
  let w = Array1.create float64 c_layout (length v) in
  Array1.blit v w;
  w

let blit (src : t) (dst : t) = Array1.blit src dst
let fill (v : t) x = Array1.fill v x

let of_array a : t =
  let v = Array1.create float64 c_layout (Array.length a) in
  Array.iteri (fun i x -> Array1.unsafe_set v i x) a;
  v

let to_array (v : t) = Array.init (length v) (Array1.unsafe_get v)

let check2 name a b =
  if length a <> length b then invalid_arg (name ^ ": length mismatch")

(* ---- opt-in numeric sanitizer ----
   When [enabled], every BLAS-1 kernel scans its output (vectors) or
   checks its result (reductions) for NaN/Inf the moment it is
   produced, so the first kernel that manufactures a non-finite value
   is named — instead of a NaN surfacing iterations later in a
   residual norm. Off by default: the only cost then is one ref read
   per kernel call. *)

module Sanitize = struct
  exception Non_finite of string * int * float

  let enabled = ref false
  let raising = ref true
  let trap_count = ref 0
  let max_recorded = 64
  let recorded : (string * int * float) list ref = ref []

  let reset () =
    trap_count := 0;
    recorded := []

  let trap kernel index value =
    incr trap_count;
    if List.length !recorded < max_recorded then
      recorded := (kernel, index, value) :: !recorded;
    if !raising then raise (Non_finite (kernel, index, value))

  let check_scalar kernel x =
    if !enabled && not (Float.is_finite x) then trap kernel (-1) x;
    x

  let check_vec kernel (v : t) =
    if !enabled then
      for i = 0 to length v - 1 do
        let x = Array1.unsafe_get v i in
        if not (Float.is_finite x) then trap kernel i x
      done

  (* Run [f] with the sanitizer on (trap log cleared first), restoring
     the previous sanitizer state afterwards. *)
  let scoped ?(raise_on_trap = true) f =
    let e = !enabled and r = !raising in
    enabled := true;
    raising := raise_on_trap;
    reset ();
    Fun.protect
      ~finally:(fun () ->
        enabled := e;
        raising := r)
      f
end

(* ---- pooled execution ----
   [parallel_cutoff]: below this many floats a fork/join costs more
   than it hides — the implicit kernels stay serial and
   Check.Pool_check DET003 warns about pooled launches under it. *)

let parallel_cutoff = 32_768

(* Canonical reduction block: reductions sum [reduce_block] floats
   serially per block and combine the block partials in index order,
   on every path — the association is fixed, so the result does not
   depend on the pool geometry. *)
let reduce_block = 2048

let implicit_pool n =
  let pool = Util.Pool.get_default () in
  if Util.Pool.size pool > 1 && n >= parallel_cutoff then Some pool else None

(* ---- element-wise kernels: range bodies + dispatch ---- *)

let axpy_range alpha (x : t) (y : t) lo hi =
  for i = lo to hi - 1 do
    Array1.unsafe_set y i
      (Array1.unsafe_get y i +. (alpha *. Array1.unsafe_get x i))
  done

let xpay_range (x : t) alpha (y : t) lo hi =
  for i = lo to hi - 1 do
    Array1.unsafe_set y i
      (Array1.unsafe_get x i +. (alpha *. Array1.unsafe_get y i))
  done

let scale_range alpha (v : t) lo hi =
  for i = lo to hi - 1 do
    Array1.unsafe_set v i (alpha *. Array1.unsafe_get v i)
  done

let sub_range (x : t) (y : t) (z : t) lo hi =
  for i = lo to hi - 1 do
    Array1.unsafe_set z i (Array1.unsafe_get x i -. Array1.unsafe_get y i)
  done

(* [lo, hi) in complex pairs: chunks never split a re/im pair. *)
let caxpy_range (ar, ai) (x : t) (y : t) lo hi =
  for k = lo to hi - 1 do
    let xr = Array1.unsafe_get x (2 * k) and xi = Array1.unsafe_get x ((2 * k) + 1) in
    Array1.unsafe_set y (2 * k)
      (Array1.unsafe_get y (2 * k) +. ((ar *. xr) -. (ai *. xi)));
    Array1.unsafe_set y ((2 * k) + 1)
      (Array1.unsafe_get y ((2 * k) + 1) +. ((ar *. xi) +. (ai *. xr)))
  done

let run_pooled pool chunk ~n f =
  match pool with
  | Some p -> Util.Pool.parallel_for p ?chunk ~n f
  | None -> f 0 n

(* y <- y + alpha x *)
let axpy alpha (x : t) (y : t) =
  check2 "Field.axpy" x y;
  let n = length x in
  run_pooled (implicit_pool n) None ~n (axpy_range alpha x y);
  Sanitize.check_vec "Field.axpy" y

let axpy_with pool ?chunk alpha (x : t) (y : t) =
  check2 "Field.axpy" x y;
  Util.Pool.parallel_for pool ?chunk ~n:(length x) (axpy_range alpha x y);
  Sanitize.check_vec "Field.axpy" y

(* y <- x + alpha y *)
let xpay (x : t) alpha (y : t) =
  check2 "Field.xpay" x y;
  let n = length x in
  run_pooled (implicit_pool n) None ~n (xpay_range x alpha y);
  Sanitize.check_vec "Field.xpay" y

let xpay_with pool ?chunk (x : t) alpha (y : t) =
  check2 "Field.xpay" x y;
  Util.Pool.parallel_for pool ?chunk ~n:(length x) (xpay_range x alpha y);
  Sanitize.check_vec "Field.xpay" y

let scale alpha (v : t) =
  let n = length v in
  run_pooled (implicit_pool n) None ~n (scale_range alpha v);
  Sanitize.check_vec "Field.scale" v

let scale_with pool ?chunk alpha (v : t) =
  Util.Pool.parallel_for pool ?chunk ~n:(length v) (scale_range alpha v);
  Sanitize.check_vec "Field.scale" v

(* z <- x - y *)
let sub (x : t) (y : t) (z : t) =
  check2 "Field.sub" x y;
  check2 "Field.sub" x z;
  let n = length x in
  run_pooled (implicit_pool n) None ~n (sub_range x y z);
  Sanitize.check_vec "Field.sub" z

let sub_with pool ?chunk (x : t) (y : t) (z : t) =
  check2 "Field.sub" x y;
  check2 "Field.sub" x z;
  Util.Pool.parallel_for pool ?chunk ~n:(length x) (sub_range x y z);
  Sanitize.check_vec "Field.sub" z

(* A chunk given in floats is halved to pairs for the complex kernels
   (and floored at one pair) so one tuned chunk axis serves both. *)
let pair_chunk = Option.map (fun c -> max 1 (c / 2))

(* y <- y + alpha x with complex alpha; vectors are interleaved re/im. *)
let caxpy alpha (x : t) (y : t) =
  check2 "Field.caxpy" x y;
  let n = length x / 2 in
  run_pooled (implicit_pool (length x)) None ~n (caxpy_range alpha x y);
  Sanitize.check_vec "Field.caxpy" y

let caxpy_with pool ?chunk alpha (x : t) (y : t) =
  check2 "Field.caxpy" x y;
  Util.Pool.parallel_for pool ?chunk:(pair_chunk chunk) ~n:(length x / 2)
    (caxpy_range alpha x y);
  Sanitize.check_vec "Field.caxpy" y

(* ---- reductions: canonical blocked summation ----
   [term lo hi] is the serial partial over elements [lo, hi);
   [block_fold] cuts [0, n) into [reduce_block]-sized blocks, computes
   each block's partial (possibly in parallel — slots are disjoint)
   and folds the partials in block-index order on the calling domain.
   The association is identical on every path, so serial and pooled
   results agree to the bit. *)

let block_fold pool chunk ~n ~block term =
  let n_blocks = (n + block - 1) / block in
  if n_blocks <= 1 then (if n <= 0 then 0. else term 0 n)
  else begin
    let partials = Array.make n_blocks 0. in
    let fill blo bhi =
      for b = blo to bhi - 1 do
        partials.(b) <- term (b * block) (min n ((b + 1) * block))
      done
    in
    (match pool with
    | Some p ->
      let chunk_blocks = Option.map (fun c -> max 1 (c / block)) chunk in
      Util.Pool.parallel_for p ?chunk:chunk_blocks ~n:n_blocks fill
    | None -> fill 0 n_blocks);
    let acc = ref 0. in
    for b = 0 to n_blocks - 1 do
      acc := !acc +. partials.(b)
    done;
    !acc
  end

let norm2_term (v : t) lo hi =
  let acc = ref 0. in
  for i = lo to hi - 1 do
    let x = Array1.unsafe_get v i in
    acc := !acc +. (x *. x)
  done;
  !acc

let norm2 (v : t) =
  let n = length v in
  Sanitize.check_scalar "Field.norm2"
    (block_fold (implicit_pool n) None ~n ~block:reduce_block (norm2_term v))

let norm2_with pool ?chunk (v : t) =
  Sanitize.check_scalar "Field.norm2"
    (block_fold (Some pool) chunk ~n:(length v) ~block:reduce_block (norm2_term v))

let norm v = sqrt (norm2 v)

let dot_re_term (x : t) (y : t) lo hi =
  let acc = ref 0. in
  for i = lo to hi - 1 do
    acc := !acc +. (Array1.unsafe_get x i *. Array1.unsafe_get y i)
  done;
  !acc

(* Real part of <x|y> — for interleaved complex this equals the plain
   euclidean dot product. *)
let dot_re (x : t) (y : t) =
  check2 "Field.dot_re" x y;
  let n = length x in
  Sanitize.check_scalar "Field.dot_re"
    (block_fold (implicit_pool n) None ~n ~block:reduce_block (dot_re_term x y))

let dot_re_with pool ?chunk (x : t) (y : t) =
  check2 "Field.dot_re" x y;
  Sanitize.check_scalar "Field.dot_re"
    (block_fold (Some pool) chunk ~n:(length x) ~block:reduce_block
       (dot_re_term x y))

(* cdot needs two accumulators per block; blocks are counted in pairs
   ([reduce_block / 2] pairs = [reduce_block] floats, same canonical
   boundaries as the real reductions). *)
let cdot_blocked pool chunk (x : t) (y : t) =
  let np = length x / 2 in
  let block = reduce_block / 2 in
  let term lo hi =
    let re = ref 0. and im = ref 0. in
    for k = lo to hi - 1 do
      let xr = Array1.unsafe_get x (2 * k) and xi = Array1.unsafe_get x ((2 * k) + 1) in
      let yr = Array1.unsafe_get y (2 * k) and yi = Array1.unsafe_get y ((2 * k) + 1) in
      re := !re +. ((xr *. yr) +. (xi *. yi));
      im := !im +. ((xr *. yi) -. (xi *. yr))
    done;
    (!re, !im)
  in
  let n_blocks = if np = 0 then 0 else (np + block - 1) / block in
  if n_blocks <= 1 then (if np = 0 then (0., 0.) else term 0 np)
  else begin
    let pre = Array.make n_blocks 0. and pim = Array.make n_blocks 0. in
    let fill blo bhi =
      for b = blo to bhi - 1 do
        let re, im = term (b * block) (min np ((b + 1) * block)) in
        pre.(b) <- re;
        pim.(b) <- im
      done
    in
    (match pool with
    | Some p ->
      let chunk_blocks = Option.map (fun c -> max 1 (c / reduce_block)) chunk in
      Util.Pool.parallel_for p ?chunk:chunk_blocks ~n:n_blocks fill
    | None -> fill 0 n_blocks);
    let re = ref 0. and im = ref 0. in
    for b = 0 to n_blocks - 1 do
      re := !re +. pre.(b);
      im := !im +. pim.(b)
    done;
    (!re, !im)
  end

(* Full complex <x|y> = sum conj(x_k) y_k over interleaved pairs. *)
let cdot (x : t) (y : t) =
  check2 "Field.cdot" x y;
  let re, im = cdot_blocked (implicit_pool (length x)) None x y in
  Cplx.make (Sanitize.check_scalar "Field.cdot" re) (Sanitize.check_scalar "Field.cdot" im)

let cdot_with pool ?chunk (x : t) (y : t) =
  check2 "Field.cdot" x y;
  let re, im = cdot_blocked (Some pool) chunk x y in
  Cplx.make (Sanitize.check_scalar "Field.cdot" re) (Sanitize.check_scalar "Field.cdot" im)

let gaussian rng (v : t) =
  for i = 0 to length v - 1 do
    Array1.unsafe_set v i (Util.Rng.gaussian rng)
  done

let map2 f (x : t) (y : t) (z : t) =
  check2 "Field.map2" x y;
  check2 "Field.map2" x z;
  for i = 0 to length x - 1 do
    Array1.unsafe_set z i (f (Array1.unsafe_get x i) (Array1.unsafe_get y i))
  done

let max_abs_diff (x : t) (y : t) =
  check2 "Field.max_abs_diff" x y;
  let acc = ref 0. in
  for i = 0 to length x - 1 do
    let d = abs_float (Array1.unsafe_get x i -. Array1.unsafe_get y i) in
    if d > !acc then acc := d
  done;
  !acc

(* ---- Half precision: 16-bit fixed point with per-block norms ----
   This is QUDA's storage scheme for the inner solver of the
   double-half CG: each block (one lattice site's 24 reals, say) stores
   a single float32 max-norm and int16 mantissas v/norm * 32767. *)

module Half = struct
  type h = {
    data : (int, int16_signed_elt, c_layout) Array1.t;
    norms : (float, float32_elt, c_layout) Array1.t;
    block : int;
  }

  let max_q = Quantize.max_q

  let create ~block n =
    if n mod block <> 0 then invalid_arg "Field.Half.create: block must divide n";
    let data = Array1.create int16_signed c_layout n in
    Array1.fill data 0;
    let norms = Array1.create float32 c_layout (n / block) in
    Array1.fill norms 0.;
    { data; norms; block }

  let length h = Array1.dim h.data

  (* The scaling math lives in Quantize (shared with the gauge codec
     and the compressed halo payloads); encode/decode here only add
     the length checks and the boundary sanitize. Bit-identical to the
     historical inline loops: Quantize runs the same store-the-norm /
     re-read-it / quantize-against-the-stored-value sequence. *)
  let encode (v : t) (h : h) =
    if length h <> Array1.dim v then invalid_arg "Field.Half.encode: length";
    (* the codec silently launders NaN/Inf into 0 (comparisons against
       a NaN norm are all false) — trap at the boundary instead *)
    Sanitize.check_vec "Field.Half.encode" v;
    Quantize.encode_blocks v h.data h.norms ~block:h.block

  let decode (h : h) (v : t) =
    if length h <> Array1.dim v then invalid_arg "Field.Half.decode: length";
    Quantize.decode_blocks h.data h.norms v ~block:h.block

  let round_trip (v : t) ~block =
    let h = create ~block (Array1.dim v) in
    encode v h;
    let w = Array1.create float64 c_layout (Array1.dim v) in
    decode h w;
    w
end
