(** SU(3) gauge-link compression codecs — QUDA's reconstruct trade:
    store a unitary link as 18, 12 or 8 reals and rebuild the rest in
    registers at the point of use, converting link bytes into flops on
    the bandwidth-bound stencil.

    Both packed codecs carry one sign [s = sign(Re det U)] per link so
    the antiperiodic-time boundary phase (det = −1 links) survives:
    [Recon12] stores rows 0,1 as exact bit-copies and reconstructs
    [U2 = s·conj(U0 × U1)]; [Recon8] parameterizes [V = s·U ∈ SU(3)]
    by [θ1 = arg a1, a2, a3, b1, θ2 = arg c1] and rescales the decoded
    [V] by [s]. *)

type codec = Full18 | Recon12 | Recon8

val all : codec list
val name : codec -> string
(** ["full18"] / ["recon12"] / ["recon8"] — the label fragment the
    autotuner caches winners under. *)

val of_name : string -> codec option

val reals : codec -> int
(** Stored reals per link: 18 / 12 / 8. *)

val tolerance : codec -> float
(** Largest source-link unitarity violation (Frobenius norm of
    U·U† − I) the codec reconstructs faithfully — beyond it
    [Check.Recon_check] RECON001 fires. [infinity] for [Full18]. *)

val round_trip_bound : codec -> float
(** Documented encode∘decode Frobenius error bound on links within
    [tolerance] of SU(3): 0 / 1e-12 / 1e-8 (Recon8's includes the 1/N
    Cramer amplification headroom; the qcheck properties assert it on
    Haar-random links). *)

exception Degenerate of string
(** [Recon8] cannot parameterize a link whose first row is
    concentrated on color 0 (|a2|²+|a3|² below [recon8_min_n] — e.g.
    any unit link): the Cramer determinant vanishes. *)

val recon8_min_n : float

val det_sign : Su3.t -> float
(** +1. / −1. with the sign of Re det. *)

val encode_into : codec -> Su3.t -> float array -> off:int -> float
(** Pack the link into [dst[off, off + reals codec)]; returns the sign
    the decoder must be given. Raises {!Degenerate} ([Recon8] only). *)

val decode_into : codec -> float array -> off:int -> sign:float -> float array -> unit
(** Rebuild all 18 reals into the destination scratch. For [Full18]
    and the stored rows of [Recon12] this is an exact copy — decoding
    a [Full18] stream is bit-identical to reading the original. *)

val round_trip : codec -> Su3.t -> Su3.t
val round_trip_error : codec -> Su3.t -> float
(** Frobenius distance of encode∘decode from the source link. *)

val pack_fixed : codec -> Su3.t -> int array * float * float
(** [(int16 codes, float32-rounded norm, sign)]: the packed reals
    through the shared {!Quantize} block scaling — the fixed-point
    wire format of the compressed halo pricing. *)

val unpack_fixed : codec -> int array * float * float -> Su3.t
