(** Fused BLAS-1 solver kernels: the update and its reduction in one
    memory sweep (QUDA-style). Each kernel is bit-identical — for any
    pool geometry, serial or pooled — to the unfused sequence it
    replaces, because all of them run the canonical
    [Field.reduce_block]-float blocked, index-ordered reduction
    ([Field.block_fold]) with the element-wise update folded into the
    block pass.

    Stricter aliasing contract than the unfused kernels: an output
    vector that is physically the same buffer as an input of a
    different role raises [Invalid_argument] (a real fused kernel
    caches in registers; see [Check.Fuse_check] FUSE002). Passing the
    same vector where the *spec* says so — e.g. [xpay_dot r beta p r],
    the CG orthogonality monitor — is fine: [q] and [x] are read-only
    roles. *)

type t = Field.t

val axpy_norm2 : float -> t -> t -> float
(** [axpy_norm2 a x y]: y <- y + a·x; returns |y|².
    ≡ [Field.axpy a x y; Field.norm2 y] bit-for-bit. *)

val xpay_dot : t -> float -> t -> t -> float
(** [xpay_dot x beta p q]: p <- x + β·p; returns p·q (real part under
    the flat-float view, i.e. [Field.dot_re]).
    ≡ [Field.xpay x beta p; Field.dot_re p q] bit-for-bit. *)

val cg_update : float -> t -> t -> t -> t -> float
(** [cg_update alpha p ap x r]: x <- x + α·p; r <- r − α·Ap; returns
    |r|² — QUDA's tripleCGUpdate, the whole CG vector tail in one
    sweep. ≡ [Field.axpy alpha p x; Field.axpy (−alpha) ap r;
    Field.norm2 r] bit-for-bit (IEEE negation is exact). *)

val caxpy_norm2 : float * float -> t -> t -> float
(** [caxpy_norm2 (re, im) x y]: y <- y + a·x with complex [a] over the
    interleaved layout; returns |y|².
    ≡ [Field.caxpy (re, im) x y; Field.norm2 y] bit-for-bit. *)

(** Explicit pooled variants, mirroring [Field]'s [_with] kernels:
    same results on a caller-chosen pool and chunk (in floats). These
    are the autotuner's fused candidates ([Autotune.Variants.fusion]). *)

val axpy_norm2_with : Util.Pool.t -> ?chunk:int -> float -> t -> t -> float
val xpay_dot_with : Util.Pool.t -> ?chunk:int -> t -> float -> t -> t -> float

val cg_update_with :
  Util.Pool.t -> ?chunk:int -> float -> t -> t -> t -> t -> float

val caxpy_norm2_with :
  Util.Pool.t -> ?chunk:int -> float * float -> t -> t -> float

val operand_roles : string -> (string * bool) list option
(** Operand-role table of a fused kernel by name, in call order:
    [(formal, is_output)]. [None] for unknown kernels. The static
    mirror of the runtime aliasing guards — [Check.Plan_extract]
    builds fused-launch effects from it, and a plan whose output
    operand shares a buffer with any other position is the
    FUSE002/PLAN002 hazard. *)
