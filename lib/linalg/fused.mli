(** Fused BLAS-1 solver kernels: the update and its reduction in one
    memory sweep (QUDA-style). Each kernel is bit-identical — for any
    pool geometry, serial or pooled — to the unfused sequence it
    replaces, because all of them run the canonical
    [Field.reduce_block]-float blocked, index-ordered reduction
    ([Field.block_fold]) with the element-wise update folded into the
    block pass.

    Stricter aliasing contract than the unfused kernels: an output
    vector sharing storage with an input of a different role raises
    [Invalid_argument] (a real fused kernel caches in registers; see
    [Check.Fuse_check] FUSE002). The guard probes the underlying data
    through element 0, so distinct Bigarray handles over the same
    buffer are rejected too — not just physical equality. Passing the
    same vector where the *spec* says so — e.g. [xpay_dot r beta p r],
    the CG orthogonality monitor — is fine: [q] and [x] are read-only
    roles. *)

type t = Field.t

type mode = Unfused | Fused | Tail_fused
(** How a solver's BLAS-1 tail runs per iteration — the launch axis
    [Autotune.Variants] tunes and [Check.Plan_check] lints. [Fused]
    keeps the p·Ap reduction a separate host kernel (3 sweeps, the
    fallback when the operator cannot carry a tail); [Tail_fused]
    rides it on the stencil through {!tail} — the 2-sweep plan
    [Machine.Perf_model.blas1_sweeps] prices. *)

val mode_name : mode -> string
(** ["unfused"] / ["fused"] / ["tailfused"] — the label prefixes the
    autotuner caches winners under. *)

val same_data : t -> t -> bool
(** Do the two fields share their underlying storage? Physical
    equality, or a write-probe through element 0 that catches distinct
    Bigarray handles over the same data. Staggered overlaps that cover
    neither element 0 escape (modeled statically by FUSE002). *)

(** {2 Stencil output tail}

    The closure a hop kernel applies per site-block right after the
    stencil result lands: an optional xpay into a separate output
    ([out <- dst + beta·out]) followed by a dot accumulation against a
    read-only [q] — [Wilson.hop_tail] and the Möbius Schur chain
    execute it through the canonical blocked reduction, so
    [hop_tail ~tail:(tail ~xpay:(out, beta) ~dot:q ())] is
    bit-identical to [hop; xpay_dot dst beta out q] and the dot-only
    form to [hop; Field.dot_re q dst], for any pool geometry. *)

type tail = {
  t_xpay : (t * float) option;  (** (out, beta): out <- dst + beta·out *)
  t_dot : t;  (** q: the reduction operand *)
}

val tail : ?xpay:t * float -> dot:t -> unit -> tail

val tail_check : string -> n:int -> dst:t -> tail -> unit
(** Shape and aliasing guard, run by the stencil front-ends before the
    launch: every tail operand must span the [n]-float stencil output,
    and the xpay output must not alias the stencil [dst] (probed via
    {!same_data}; raises [Invalid_argument] — the runtime counterpart
    of the FUSE002/PLAN002 tail-alias hazard). *)

val tail_term : tail -> dst:t -> int -> int -> float
(** [tail_term tl ~dst lo hi]: the serial per-block pass over floats
    [lo, hi) of the written stencil output — xpay (if any) then the
    dot partial, one element at a time in index order. Callers hand it
    canonical [Field.reduce_block] ranges and fold the partials in
    block order ([Field.block_fold]'s association). *)

val axpy_norm2 : float -> t -> t -> float
(** [axpy_norm2 a x y]: y <- y + a·x; returns |y|².
    ≡ [Field.axpy a x y; Field.norm2 y] bit-for-bit. *)

val xpay_dot : t -> float -> t -> t -> float
(** [xpay_dot x beta p q]: p <- x + β·p; returns p·q (real part under
    the flat-float view, i.e. [Field.dot_re]).
    ≡ [Field.xpay x beta p; Field.dot_re p q] bit-for-bit. *)

val cg_update : float -> t -> t -> t -> t -> float
(** [cg_update alpha p ap x r]: x <- x + α·p; r <- r − α·Ap; returns
    |r|² — QUDA's tripleCGUpdate, the whole CG vector tail in one
    sweep. ≡ [Field.axpy alpha p x; Field.axpy (−alpha) ap r;
    Field.norm2 r] bit-for-bit (IEEE negation is exact). *)

val caxpy_norm2 : float * float -> t -> t -> float
(** [caxpy_norm2 (re, im) x y]: y <- y + a·x with complex [a] over the
    interleaved layout; returns |y|².
    ≡ [Field.caxpy (re, im) x y; Field.norm2 y] bit-for-bit. *)

(** Explicit pooled variants, mirroring [Field]'s [_with] kernels:
    same results on a caller-chosen pool and chunk (in floats). These
    are the autotuner's fused candidates ([Autotune.Variants.fusion]). *)

val axpy_norm2_with : Util.Pool.t -> ?chunk:int -> float -> t -> t -> float
val xpay_dot_with : Util.Pool.t -> ?chunk:int -> t -> float -> t -> t -> float

val cg_update_with :
  Util.Pool.t -> ?chunk:int -> float -> t -> t -> t -> t -> float

val caxpy_norm2_with :
  Util.Pool.t -> ?chunk:int -> float * float -> t -> t -> float

val operand_roles : string -> (string * bool) list option
(** Operand-role table of a fused kernel by name, in call order:
    [(formal, is_output)]. [None] for unknown kernels. The static
    mirror of the runtime aliasing guards — [Check.Plan_extract]
    builds fused-launch effects from it, and a plan whose output
    operand shares a buffer with any other position is the
    FUSE002/PLAN002 hazard. *)
