(* Virtual-rank message passing: N ranks executed sequentially with
   real buffers. This runs the same pack / post / complete / unpack
   pattern an MPI nonblocking halo exchange performs — message counts
   and byte volumes are recorded so the machine model can cost them —
   while staying deterministic and testable in one process.

   A rank's field covers the extended volume (local sites then ghost
   slots). The exchange fills every rank's ghost slots from its
   neighbors' boundary sites. The nonblocking protocol splits that
   into [post] (pack + send each face, leaving the messages in flight)
   and [complete] (deliver one ghost face on every rank), so overlapped
   stencils can interleave interior compute and per-face boundary
   compute with the communication schedule. *)

module Domain = Lattice.Domain
module Field = Linalg.Field

type stats = {
  mutable full_exchanges : int;  (* all-8-face halo exchanges posted *)
  mutable partial_exchanges : int;  (* ?faces-subset exchanges posted *)
  mutable messages : int;  (* per-face sends *)
  mutable bytes : float;  (* total payload *)
  mutable send_buffer_races : int;  (* local writes seen between post and complete *)
}

type t = {
  dom : Domain.t;
  dof : int;  (* floats per site *)
  stats : stats;
  write_epoch : int array;  (* per rank: bumped when local sites change *)
  ghost_epoch : int array array;  (* rank × face: filler's epoch at completion *)
}

(* A ghost region is fresh when it was filled from the current data of
   the rank that owns those sites. [write_epoch] counts local-site
   mutations per rank (scatter, or an explicit [mark_written]);
   [ghost_epoch.(r).(f)] remembers the filler's write epoch at the
   moment face [f] of rank [r] was last completed. Stale ghosts are
   exactly ghost_epoch < filler's write_epoch — the data race the halo
   checker hunts. *)

let strict = ref false

let create dom ~dof =
  let n = Domain.n_ranks dom in
  {
    dom;
    dof;
    stats =
      {
        full_exchanges = 0;
        partial_exchanges = 0;
        messages = 0;
        bytes = 0.;
        send_buffer_races = 0;
      };
    write_epoch = Array.make n 0;
    ghost_epoch = Array.init n (fun _ -> Array.make 8 (-1));
  }

let stats t = t.stats

let n_ranks t = Domain.n_ranks t.dom

let mark_written t r = t.write_epoch.(r) <- t.write_epoch.(r) + 1

let write_epoch t r = t.write_epoch.(r)

let ghost_epoch t ~rank ~face = t.ghost_epoch.(rank).(face)

(* The rank whose boundary sites fill ghost face [face] of [rank] is
   that face's exchange partner (symmetric on the periodic grid). *)
let ghost_filler t ~rank ~face =
  let rg = Domain.rank_geometry t.dom rank in
  rg.Domain.faces.(face).Domain.neighbor

let ghost_fresh t ~rank ~face =
  let filler = ghost_filler t ~rank ~face in
  (* nothing was ever written: zero-initialized ghosts match zero data *)
  t.write_epoch.(filler) = 0
  || t.ghost_epoch.(rank).(face) >= t.write_epoch.(filler)

let stale_faces t rank =
  List.filter
    (fun face -> not (ghost_fresh t ~rank ~face))
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]

(* Rank-local extended field (local + ghosts), zero ghosts. *)
let create_fields t : Field.t array =
  Array.init (n_ranks t) (fun r ->
      let rg = Domain.rank_geometry t.dom r in
      Field.create (rg.Domain.ext_volume * t.dof))

(* Distribute a global field (volume * dof) into per-rank extended
   fields; ghosts left stale (a halo exchange must follow). *)
let scatter t (global : Field.t) (fields : Field.t array) =
  Array.iteri
    (fun r (local : Field.t) ->
      let rg = Domain.rank_geometry t.dom r in
      for s = 0 to rg.Domain.local_volume - 1 do
        let g = rg.Domain.local_to_global.(s) in
        for d = 0 to t.dof - 1 do
          Bigarray.Array1.unsafe_set local ((s * t.dof) + d)
            (Bigarray.Array1.unsafe_get global ((g * t.dof) + d))
        done
      done;
      mark_written t r)
    fields

let gather t (fields : Field.t array) : Field.t =
  let global = Field.create (Lattice.Geometry.volume (Domain.global t.dom) * t.dof) in
  Array.iteri
    (fun r (local : Field.t) ->
      let rg = Domain.rank_geometry t.dom r in
      for s = 0 to rg.Domain.local_volume - 1 do
        let g = rg.Domain.local_to_global.(s) in
        for d = 0 to t.dof - 1 do
          Bigarray.Array1.unsafe_set global ((g * t.dof) + d)
            (Bigarray.Array1.unsafe_get local ((s * t.dof) + d))
        done
      done)
    fields;
  global

(* ---- nonblocking per-face protocol ---- *)

(* One in-flight message: the payload was packed from the sender's
   boundary sites at post time, exactly like an MPI staging buffer.
   [post_epoch] is the sender's write epoch at that moment — it is the
   epoch of the data actually carried, so a ghost face completed from
   this message is stamped with it (at completion time, not post
   time). *)
type message = {
  msg_src : int;
  msg_dst : int;
  msg_face : int;  (* recv-side ghost face id on [msg_dst] *)
  payload : Field.t;
  post_epoch : int;
}

type handle = {
  owner : t;
  target : Field.t array;
  mutable in_flight : message list;
}

let all_face_ids = [| 0; 1; 2; 3; 4; 5; 6; 7 |]

let face_label fid =
  Printf.sprintf "%c%c" "xyzt".[fid / 2] (if fid mod 2 = 0 then '+' else '-')

(* Pack and "send" every listed face of every rank. Ghost slots are
   untouched until the matching [complete]. *)
let post ?faces t (fields : Field.t array) : handle =
  let face_ids = match faces with None -> all_face_ids | Some f -> f in
  let distinct = List.sort_uniq compare (Array.to_list face_ids) in
  if List.length distinct = 8 then
    t.stats.full_exchanges <- t.stats.full_exchanges + 1
  else t.stats.partial_exchanges <- t.stats.partial_exchanges + 1;
  let in_flight = ref [] in
  for r = 0 to n_ranks t - 1 do
    let rg = Domain.rank_geometry t.dom r in
    Array.iter
      (fun fid ->
        let face = rg.Domain.faces.(fid) in
        let n_sites = Array.length face.Domain.send_sites in
        let payload = Field.create (n_sites * t.dof) in
        Array.iteri
          (fun i s ->
            let sb = s * t.dof in
            let pb = i * t.dof in
            for d = 0 to t.dof - 1 do
              Bigarray.Array1.unsafe_set payload (pb + d)
                (Bigarray.Array1.unsafe_get fields.(r) (sb + d))
            done)
          face.Domain.send_sites;
        (* data leaving face (mu, dir) lands in the neighbor's ghost
           region of the opposite face (mu, 1-dir) *)
        in_flight :=
          {
            msg_src = r;
            msg_dst = face.Domain.neighbor;
            msg_face = (2 * face.Domain.mu) + (1 - face.Domain.dir);
            payload;
            post_epoch = t.write_epoch.(r);
          }
          :: !in_flight;
        t.stats.messages <- t.stats.messages + 1;
        t.stats.bytes <- t.stats.bytes +. float_of_int (n_sites * t.dof * 8))
      face_ids
  done;
  { owner = t; target = fields; in_flight = List.rev !in_flight }

let pending_faces h =
  List.sort_uniq compare (List.map (fun m -> m.msg_face) h.in_flight)

let finished h = h.in_flight = []

(* Deliver every in-flight message landing in ghost face [face]: unpack
   into the receivers' ghost slots and stamp [ghost_epoch] with the
   epoch of the data carried. Detects the classic nonblocking-send race
   — the sender's local sites changed while the message was in flight,
   which a zero-copy transport would have shipped corrupted. *)
let complete h ~face =
  let t = h.owner in
  let mine, rest = List.partition (fun m -> m.msg_face = face) h.in_flight in
  if mine = [] then
    invalid_arg
      (Printf.sprintf "Comm.complete: face %s is not in flight" (face_label face));
  h.in_flight <- rest;
  List.iter
    (fun m ->
      if t.write_epoch.(m.msg_src) > m.post_epoch then begin
        t.stats.send_buffer_races <- t.stats.send_buffer_races + 1;
        if !strict then
          invalid_arg
            (Printf.sprintf
               "Comm.complete: rank %d wrote its local sites while face %s was \
                in flight (send-buffer race)"
               m.msg_src (face_label face))
      end;
      let rg = Domain.rank_geometry t.dom m.msg_dst in
      let ghost_base = rg.Domain.faces.(face).Domain.ghost_base in
      let n = Field.length m.payload in
      let db = ghost_base * t.dof in
      for i = 0 to n - 1 do
        Bigarray.Array1.unsafe_set h.target.(m.msg_dst) (db + i)
          (Bigarray.Array1.unsafe_get m.payload i)
      done;
      t.ghost_epoch.(m.msg_dst).(face) <- m.post_epoch)
    mine

let complete_all h = List.iter (fun face -> complete h ~face) (pending_faces h)

(* Blocking exchange of [faces] (default: all 8): post then complete
   everything before returning. *)
let halo_exchange ?faces t (fields : Field.t array) =
  complete_all (post ?faces t fields)

(* Bytes one full halo exchange moves for a single rank (both
   directions, all four dimensions), for the performance model. *)
let halo_bytes_per_rank t r =
  let rg = Domain.rank_geometry t.dom r in
  float_of_int (Domain.halo_sites rg * t.dof * 8)
