(* Virtual-rank message passing: N ranks executed sequentially with
   real buffers. This runs the same pack / exchange / unpack pattern an
   MPI halo exchange performs — message counts and byte volumes are
   recorded so the machine model can cost them — while staying
   deterministic and testable in one process.

   A rank's field covers the extended volume (local sites then ghost
   slots). The exchange fills every rank's ghost slots from its
   neighbors' boundary sites. *)

module Domain = Lattice.Domain
module Field = Linalg.Field

type stats = {
  mutable exchanges : int;  (* halo exchanges performed *)
  mutable messages : int;  (* per-face sends *)
  mutable bytes : float;  (* total payload *)
}

type t = {
  dom : Domain.t;
  dof : int;  (* floats per site *)
  stats : stats;
  write_epoch : int array;  (* per rank: bumped when local sites change *)
  ghost_epoch : int array array;  (* rank × face: filler's epoch at exchange *)
}

(* A ghost region is fresh when it was filled from the current data of
   the rank that owns those sites. [write_epoch] counts local-site
   mutations per rank (scatter, or an explicit [mark_written]);
   [ghost_epoch.(r).(f)] remembers the filler's write epoch at the
   moment face [f] of rank [r] was last exchanged. Stale ghosts are
   exactly ghost_epoch < filler's write_epoch — the data race the halo
   checker hunts. *)

let strict = ref false

let create dom ~dof =
  let n = Domain.n_ranks dom in
  {
    dom;
    dof;
    stats = { exchanges = 0; messages = 0; bytes = 0. };
    write_epoch = Array.make n 0;
    ghost_epoch = Array.init n (fun _ -> Array.make 8 (-1));
  }

let stats t = t.stats

let n_ranks t = Domain.n_ranks t.dom

let mark_written t r = t.write_epoch.(r) <- t.write_epoch.(r) + 1

let write_epoch t r = t.write_epoch.(r)

let ghost_epoch t ~rank ~face = t.ghost_epoch.(rank).(face)

(* The rank whose boundary sites fill ghost face [face] of [rank] is
   that face's exchange partner (symmetric on the periodic grid). *)
let ghost_filler t ~rank ~face =
  let rg = Domain.rank_geometry t.dom rank in
  rg.Domain.faces.(face).Domain.neighbor

let ghost_fresh t ~rank ~face =
  let filler = ghost_filler t ~rank ~face in
  (* nothing was ever written: zero-initialized ghosts match zero data *)
  t.write_epoch.(filler) = 0
  || t.ghost_epoch.(rank).(face) >= t.write_epoch.(filler)

let stale_faces t rank =
  List.filter
    (fun face -> not (ghost_fresh t ~rank ~face))
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]

(* Rank-local extended field (local + ghosts), zero ghosts. *)
let create_fields t : Field.t array =
  Array.init (n_ranks t) (fun r ->
      let rg = Domain.rank_geometry t.dom r in
      Field.create (rg.Domain.ext_volume * t.dof))

(* Distribute a global field (volume * dof) into per-rank extended
   fields; ghosts left stale (a halo exchange must follow). *)
let scatter t (global : Field.t) (fields : Field.t array) =
  Array.iteri
    (fun r (local : Field.t) ->
      let rg = Domain.rank_geometry t.dom r in
      for s = 0 to rg.Domain.local_volume - 1 do
        let g = rg.Domain.local_to_global.(s) in
        for d = 0 to t.dof - 1 do
          Bigarray.Array1.unsafe_set local ((s * t.dof) + d)
            (Bigarray.Array1.unsafe_get global ((g * t.dof) + d))
        done
      done;
      mark_written t r)
    fields

let gather t (fields : Field.t array) : Field.t =
  let global = Field.create (Lattice.Geometry.volume (Domain.global t.dom) * t.dof) in
  Array.iteri
    (fun r (local : Field.t) ->
      let rg = Domain.rank_geometry t.dom r in
      for s = 0 to rg.Domain.local_volume - 1 do
        let g = rg.Domain.local_to_global.(s) in
        for d = 0 to t.dof - 1 do
          Bigarray.Array1.unsafe_set global ((g * t.dof) + d)
            (Bigarray.Array1.unsafe_get local ((s * t.dof) + d))
        done
      done)
    fields;
  global

(* Fill the ghost region of face [recv_face] on [dst] from the
   boundary sites of [src_face] on [src]. The two faces agree on the
   transverse ordering by construction. *)
let copy_face t (src : Field.t) (src_face : Domain.face) (dst : Field.t)
    (recv_face : Domain.face) =
  let dof = t.dof in
  Array.iteri
    (fun i s ->
      let sb = s * dof in
      let db = (recv_face.Domain.ghost_base + i) * dof in
      for d = 0 to dof - 1 do
        Bigarray.Array1.unsafe_set dst (db + d)
          (Bigarray.Array1.unsafe_get src (sb + d))
      done)
    src_face.Domain.send_sites

(* Exchange the halos of [faces] (default: all 8). Sequential loop over
   ranks; sends read local sites and writes land in ghost slots, so the
   order is immaterial. *)
let halo_exchange ?faces t (fields : Field.t array) =
  t.stats.exchanges <- t.stats.exchanges + 1;
  for r = 0 to n_ranks t - 1 do
    let rg = Domain.rank_geometry t.dom r in
    let face_ids =
      match faces with None -> Array.init 8 Fun.id | Some f -> f
    in
    Array.iter
      (fun fid ->
        let face = rg.Domain.faces.(fid) in
        (* data leaving face (mu, dir) lands in the neighbor's ghost
           region of the opposite face (mu, 1-dir) *)
        let nb = face.Domain.neighbor in
        let nrg = Domain.rank_geometry t.dom nb in
        let mirror =
          nrg.Domain.faces.((2 * face.Domain.mu) + (1 - face.Domain.dir))
        in
        copy_face t fields.(r) face fields.(nb) mirror;
        t.ghost_epoch.(nb).((2 * face.Domain.mu) + (1 - face.Domain.dir)) <-
          t.write_epoch.(r);
        t.stats.messages <- t.stats.messages + 1;
        t.stats.bytes <-
          t.stats.bytes
          +. float_of_int (Array.length face.Domain.send_sites * t.dof * 8))
      face_ids
  done

(* Bytes one full halo exchange moves for a single rank (both
   directions, all four dimensions), for the performance model. *)
let halo_bytes_per_rank t r =
  let rg = Domain.rank_geometry t.dom r in
  float_of_int (Domain.halo_sites rg * t.dof * 8)
