(* Virtual-rank message passing: N ranks executed sequentially with
   real buffers. This runs the same pack / post / complete / unpack
   pattern an MPI nonblocking halo exchange performs — message counts
   and byte volumes are recorded so the machine model can cost them —
   while staying deterministic and testable in one process.

   A rank's field covers the extended volume (local sites then ghost
   slots). The exchange fills every rank's ghost slots from its
   neighbors' boundary sites. The nonblocking protocol splits that
   into [post] (pack + send each face, leaving the messages in flight)
   and [complete] (deliver one ghost face on every rank), so overlapped
   stencils can interleave interior compute and per-face boundary
   compute with the communication schedule.

   The [transport] dimension (Machine.Transport) decides what "pack +
   send" means for the buffer in flight:

   - Staged packs a fresh buffer at post time: a write-after-post is
     flagged as a race (the pattern is wrong) but the delivered data
     is the post-time data.
   - Zero_copy leaves the payload aliasing the sender's field and only
     reads it at completion time: a write-after-post genuinely
     corrupts the delivered ghosts, witnessed by an order-sensitive
     checksum stamped at post and re-taken at delivery
     ([stats.corruptions]).
   - Double_buffered packs into one of two rotating per-face staging
     buffers: write-after-post is safe by construction (at most one
     buffer per face is ever in flight, and the next post rotates to
     the other), at one extra copy per message ([stats.extra_copies],
     priced by Machine.Perf_model).

   Orthogonally, [~compress:true] runs each staged payload through the
   half-precision block codec ([Field.Half], one float32 norm per
   site) at pack time and decodes at delivery — the compressed halo
   face traffic of the paper's fine-grained comms: wire bytes drop to
   2 per float plus 4 per site ([Linalg.Quantize.wire_bytes]) at the
   cost of codec passes over the face, which Machine.Perf_model prices
   and Autotune.Comm_tune surveys as a transport dimension. Zero_copy
   has no staging buffer to compress, so the combination is rejected. *)

module Domain = Lattice.Domain
module Field = Linalg.Field

type transport = Machine.Transport.t = Staged | Zero_copy | Double_buffered

type stats = {
  mutable full_exchanges : int;  (* all-8-face halo exchanges posted *)
  mutable partial_exchanges : int;  (* ?faces-subset exchanges posted *)
  mutable messages : int;  (* per-face sends *)
  mutable bytes : float;  (* total payload *)
  mutable send_buffer_races : int;  (* local writes seen between post and complete *)
  mutable corruptions : int;
      (* zero-copy deliveries whose payload changed in flight *)
  mutable extra_copies : int;  (* double-buffer rotation copies paid *)
  mutable compressed_messages : int;  (* messages carried half-precision *)
}

type t = {
  dom : Domain.t;
  dof : int;  (* floats per site *)
  transport : transport;
  compress : bool;  (* half-precision face payloads on the wire *)
  stats : stats;
  write_epoch : int array;  (* per rank: bumped when local sites change *)
  ghost_epoch : int array array;  (* rank × face: filler's epoch at completion *)
  db_pool : Field.t array array array;
      (* Double_buffered only: rank × face × 2 rotating staging
         buffers; [||] for the other transports *)
  db_next : int array array;  (* rank × face: which buffer the next post takes *)
}

(* A ghost region is fresh when it was filled from the current data of
   the rank that owns those sites. [write_epoch] counts local-site
   mutations per rank (scatter, or an explicit [mark_written]);
   [ghost_epoch.(r).(f)] remembers the filler's write epoch at the
   moment face [f] of rank [r] was last completed. Stale ghosts are
   exactly ghost_epoch < filler's write_epoch — the data race the halo
   checker hunts. *)

let strict = ref false

let create ?(transport = Staged) ?(compress = false) dom ~dof =
  if compress && transport = Zero_copy then
    invalid_arg
      "Comm.create: compress requires a staging buffer (Staged or \
       Double_buffered) — Zero_copy payloads alias the sender's field";
  let n = Domain.n_ranks dom in
  let db_pool =
    match transport with
    | Double_buffered ->
      Array.init n (fun r ->
          let rg = Domain.rank_geometry dom r in
          Array.init 8 (fun fid ->
              let n_sites =
                Array.length rg.Domain.faces.(fid).Domain.send_sites
              in
              Array.init 2 (fun _ -> Field.create (n_sites * dof))))
    | Staged | Zero_copy -> [||]
  in
  {
    dom;
    dof;
    transport;
    compress;
    stats =
      {
        full_exchanges = 0;
        partial_exchanges = 0;
        messages = 0;
        bytes = 0.;
        send_buffer_races = 0;
        corruptions = 0;
        extra_copies = 0;
        compressed_messages = 0;
      };
    write_epoch = Array.make n 0;
    ghost_epoch = Array.init n (fun _ -> Array.make 8 (-1));
    db_pool;
    db_next = Array.init n (fun _ -> Array.make 8 0);
  }

let stats t = t.stats

let transport t = t.transport

let compress t = t.compress

let n_ranks t = Domain.n_ranks t.dom

let mark_written t r = t.write_epoch.(r) <- t.write_epoch.(r) + 1

let write_epoch t r = t.write_epoch.(r)

let ghost_epoch t ~rank ~face = t.ghost_epoch.(rank).(face)

(* The rank whose boundary sites fill ghost face [face] of [rank] is
   that face's exchange partner (symmetric on the periodic grid). *)
let ghost_filler t ~rank ~face =
  let rg = Domain.rank_geometry t.dom rank in
  rg.Domain.faces.(face).Domain.neighbor

let ghost_fresh t ~rank ~face =
  let filler = ghost_filler t ~rank ~face in
  (* nothing was ever written: zero-initialized ghosts match zero data *)
  t.write_epoch.(filler) = 0
  || t.ghost_epoch.(rank).(face) >= t.write_epoch.(filler)

let stale_faces t rank =
  List.filter
    (fun face -> not (ghost_fresh t ~rank ~face))
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]

(* Rank-local extended field (local + ghosts), zero ghosts. *)
let create_fields t : Field.t array =
  Array.init (n_ranks t) (fun r ->
      let rg = Domain.rank_geometry t.dom r in
      Field.create (rg.Domain.ext_volume * t.dof))

(* Distribute a global field (volume * dof) into per-rank extended
   fields; ghosts left stale (a halo exchange must follow). *)
let scatter t (global : Field.t) (fields : Field.t array) =
  Array.iteri
    (fun r (local : Field.t) ->
      let rg = Domain.rank_geometry t.dom r in
      for s = 0 to rg.Domain.local_volume - 1 do
        let g = rg.Domain.local_to_global.(s) in
        for d = 0 to t.dof - 1 do
          Bigarray.Array1.unsafe_set local ((s * t.dof) + d)
            (Bigarray.Array1.unsafe_get global ((g * t.dof) + d))
        done
      done;
      mark_written t r)
    fields

let gather t (fields : Field.t array) : Field.t =
  let global = Field.create (Lattice.Geometry.volume (Domain.global t.dom) * t.dof) in
  Array.iteri
    (fun r (local : Field.t) ->
      let rg = Domain.rank_geometry t.dom r in
      for s = 0 to rg.Domain.local_volume - 1 do
        let g = rg.Domain.local_to_global.(s) in
        for d = 0 to t.dof - 1 do
          Bigarray.Array1.unsafe_set global ((g * t.dof) + d)
            (Bigarray.Array1.unsafe_get local ((s * t.dof) + d))
        done
      done)
    fields;
  global

(* ---- nonblocking per-face protocol ---- *)

(* One in-flight message. Under Staged/Double_buffered the payload was
   packed from the sender's boundary sites at post time, exactly like
   an MPI staging buffer; under Zero_copy the payload is empty and the
   bytes are read from the sender's live field at completion time.
   [post_epoch] is the sender's write epoch at the post — the epoch of
   the data meant to be carried, so a ghost face completed from this
   message is stamped with it (at completion time, not post time).
   [checksum] is only meaningful under Zero_copy: the order-sensitive
   checksum of the aliased face taken at post, compared against the
   same sum at delivery to witness in-flight corruption.

   A [Packed] payload is the staged face run through the half-precision
   block codec at pack time (one norm per site, [block = dof]); the
   wire carries 2 bytes per float plus the 4-byte norm per site, and
   delivery decodes straight into the ghost slots. *)
type payload = Raw of Field.t | Packed of Field.Half.h

type message = {
  msg_src : int;
  msg_dst : int;
  msg_face : int;  (* recv-side ghost face id on [msg_dst] *)
  payload : payload;
  post_epoch : int;
  checksum : float;
}

type handle = {
  owner : t;
  target : Field.t array;
  mutable in_flight : message list;
}

let all_face_ids = [| 0; 1; 2; 3; 4; 5; 6; 7 |]

let face_label fid =
  Printf.sprintf "%c%c" "xyzt".[fid / 2] (if fid mod 2 = 0 then '+' else '-')

(* Order-sensitive weighted checksum of a face's send sites in [field]:
   a change to any single value moves the sum, and the per-slot weights
   make value swaps between slots visible too. *)
let face_checksum (field : Field.t) (face : Domain.face) ~dof =
  let acc = ref 0. in
  Array.iteri
    (fun i s ->
      let sb = s * dof in
      for d = 0 to dof - 1 do
        let w =
          float_of_int ((((i * dof) + d + 1) * 2654435761) land 0xFFFFF) +. 1.
        in
        acc := !acc +. (w *. Bigarray.Array1.unsafe_get field (sb + d))
      done)
    face.Domain.send_sites;
  !acc

let pack_face (src : Field.t) (face : Domain.face) ~dof (payload : Field.t) =
  Array.iteri
    (fun i s ->
      let sb = s * dof in
      let pb = i * dof in
      for d = 0 to dof - 1 do
        Bigarray.Array1.unsafe_set payload (pb + d)
          (Bigarray.Array1.unsafe_get src (sb + d))
      done)
    face.Domain.send_sites

let empty_payload = Field.create 0

(* Wrap a staged face buffer for the wire: under [compress] run it
   through the half codec (one norm per site) so the in-flight copy is
   the 16-bit stream, exactly what a real compressed send would put on
   the fabric. *)
let seal t (p : Field.t) =
  if t.compress then begin
    let h = Field.Half.create ~block:t.dof (Field.length p) in
    Field.Half.encode p h;
    t.stats.compressed_messages <- t.stats.compressed_messages + 1;
    Packed h
  end
  else Raw p

let wire_bytes t ~n_sites =
  if t.compress then
    Linalg.Quantize.wire_bytes ~n:(n_sites * t.dof) ~block:t.dof
  else float_of_int (n_sites * t.dof * 8)

(* Pack (transport permitting) and "send" every listed face of every
   rank. Ghost slots are untouched until the matching [complete]. *)
let post ?faces t (fields : Field.t array) : handle =
  let face_ids = match faces with None -> all_face_ids | Some f -> f in
  let distinct = List.sort_uniq compare (Array.to_list face_ids) in
  if List.length distinct = 8 then
    t.stats.full_exchanges <- t.stats.full_exchanges + 1
  else t.stats.partial_exchanges <- t.stats.partial_exchanges + 1;
  let in_flight = ref [] in
  for r = 0 to n_ranks t - 1 do
    let rg = Domain.rank_geometry t.dom r in
    Array.iter
      (fun fid ->
        let face = rg.Domain.faces.(fid) in
        let n_sites = Array.length face.Domain.send_sites in
        let payload, checksum =
          match t.transport with
          | Staged ->
            let p = Field.create (n_sites * t.dof) in
            pack_face fields.(r) face ~dof:t.dof p;
            (seal t p, 0.)
          | Double_buffered ->
            (* rotate: the buffer not (possibly) in flight from the
               previous post of this face *)
            let slot = t.db_next.(r).(fid) in
            t.db_next.(r).(fid) <- 1 - slot;
            let p = t.db_pool.(r).(fid).(slot) in
            pack_face fields.(r) face ~dof:t.dof p;
            t.stats.extra_copies <- t.stats.extra_copies + 1;
            (seal t p, 0.)
          | Zero_copy ->
            (* no pack: the message aliases the sender's field; stamp
               the checksum of what should be delivered *)
            (Raw empty_payload, face_checksum fields.(r) face ~dof:t.dof)
        in
        (* data leaving face (mu, dir) lands in the neighbor's ghost
           region of the opposite face (mu, 1-dir) *)
        in_flight :=
          {
            msg_src = r;
            msg_dst = face.Domain.neighbor;
            msg_face = (2 * face.Domain.mu) + (1 - face.Domain.dir);
            payload;
            post_epoch = t.write_epoch.(r);
            checksum;
          }
          :: !in_flight;
        t.stats.messages <- t.stats.messages + 1;
        t.stats.bytes <- t.stats.bytes +. wire_bytes t ~n_sites)
      face_ids
  done;
  { owner = t; target = fields; in_flight = List.rev !in_flight }

let pending_faces h =
  List.sort_uniq compare (List.map (fun m -> m.msg_face) h.in_flight)

let finished h = h.in_flight = []

(* The send-side face id that produced a message landing in recv face
   [fid]: the opposite direction of the same dimension. *)
let send_face_of_recv fid = (2 * (fid / 2)) + (1 - (fid mod 2))

(* Deliver every in-flight message landing in ghost face [face]: unpack
   into the receivers' ghost slots and stamp [ghost_epoch] with the
   epoch of the data meant to be carried. The write-after-post race is
   transport-dependent: Staged flags it (the pattern is wrong even
   though the staging copy saved the data); Zero_copy additionally
   re-checksums the aliased face and counts a corruption when the
   delivered bytes really differ from the posted ones; Double_buffered
   is immune — the writer never touches a buffer in flight. *)
let complete h ~face =
  let t = h.owner in
  let mine, rest = List.partition (fun m -> m.msg_face = face) h.in_flight in
  if mine = [] then
    invalid_arg
      (Printf.sprintf "Comm.complete: face %s is not in flight" (face_label face));
  h.in_flight <- rest;
  List.iter
    (fun m ->
      let raced = t.write_epoch.(m.msg_src) > m.post_epoch in
      (match t.transport with
      | Double_buffered -> ()
      | Staged | Zero_copy ->
        if raced then begin
          t.stats.send_buffer_races <- t.stats.send_buffer_races + 1;
          if !strict then
            invalid_arg
              (Printf.sprintf
                 "Comm.complete: rank %d wrote its local sites while face %s \
                  was in flight (send-buffer race%s)"
                 m.msg_src (face_label face)
                 (match t.transport with
                 | Zero_copy -> ": zero-copy ghosts deliver corrupt"
                 | _ -> ""))
        end);
      let rg = Domain.rank_geometry t.dom m.msg_dst in
      let ghost_base = rg.Domain.faces.(face).Domain.ghost_base in
      let db = ghost_base * t.dof in
      (match m.payload with
      | Raw p when t.transport <> Zero_copy ->
        let n = Field.length p in
        for i = 0 to n - 1 do
          Bigarray.Array1.unsafe_set h.target.(m.msg_dst) (db + i)
            (Bigarray.Array1.unsafe_get p i)
        done
      | Packed half ->
        (* decode the wire stream straight into the ghost slots *)
        let n = Field.Half.length half in
        let ghost = Bigarray.Array1.sub h.target.(m.msg_dst) db n in
        Field.Half.decode half ghost
      | Raw _ (* Zero_copy *) ->
        (* read the sender's field NOW — whatever it holds is what the
           wire delivers. The post-time checksum witnesses whether that
           is still the posted data. *)
        let src_rg = Domain.rank_geometry t.dom m.msg_src in
        let sface = src_rg.Domain.faces.(send_face_of_recv face) in
        let now = face_checksum h.target.(m.msg_src) sface ~dof:t.dof in
        if now <> m.checksum then t.stats.corruptions <- t.stats.corruptions + 1;
        Array.iteri
          (fun i s ->
            let sb = s * t.dof in
            let pb = db + (i * t.dof) in
            for d = 0 to t.dof - 1 do
              Bigarray.Array1.unsafe_set h.target.(m.msg_dst) (pb + d)
                (Bigarray.Array1.unsafe_get h.target.(m.msg_src) (sb + d))
            done)
          sface.Domain.send_sites);
      t.ghost_epoch.(m.msg_dst).(face) <- m.post_epoch)
    mine

let complete_all h = List.iter (fun face -> complete h ~face) (pending_faces h)

(* Blocking exchange of [faces] (default: all 8): post then complete
   everything before returning. *)
let halo_exchange ?faces t (fields : Field.t array) =
  complete_all (post ?faces t fields)

(* Bytes one full halo exchange moves for a single rank (both
   directions, all four dimensions), for the performance model. *)
let halo_bytes_per_rank t r =
  let rg = Domain.rank_geometry t.dom r in
  float_of_int (Domain.halo_sites rg * t.dof * 8)
