(* Conjugate gradient on the domain-decomposed Wilson normal operator:
   the complete distributed solver code path. Every operator
   application performs a halo exchange (counted by Comm.stats); every
   inner product is a per-rank partial sum combined across ranks — the
   "allreduce" whose latency the machine model charges. Ranks execute
   sequentially, so the result is bit-identical run to run and can be
   checked against the single-domain solver. *)

module Domain = Lattice.Domain
module Field = Linalg.Field
module Wilson = Dirac.Wilson

type fields = Field.t array  (* one per rank *)

let fps = Wilson.floats_per_site

type t = {
  dd : Dd_wilson.t;
  dom : Domain.t;
  mass : float;
  granularity : Machine.Policy.granularity;
      (* fine: per-face boundary compute as halos land; coarse: one
         boundary sweep after all faces complete (Sec. V policy axis) *)
  mutable allreduces : int;
}

(* The halo transport (Staged / Zero_copy / Double_buffered) rides in
   on the Dd_wilson operator's Comm: every exchange this solver posts
   uses it. CG never writes a source field while its exchange is in
   flight, so all three transports solve bit-identically — which the
   transport test suite asserts. *)
let create ?(granularity = Machine.Policy.Fine) dd ~mass =
  { dd; dom = dd.Dd_wilson.dom; mass; granularity; allreduces = 0 }

let transport t = Comm.transport (Dd_wilson.comm t.dd)

let n_ranks t = Domain.n_ranks t.dom

let local_len t r =
  (Domain.rank_geometry t.dom r).Domain.local_volume * fps

let ext_len t r = (Domain.rank_geometry t.dom r).Domain.ext_volume * fps

let create_local t : fields = Array.init (n_ranks t) (fun r -> Field.create (local_len t r))
let create_ext t : fields = Array.init (n_ranks t) (fun r -> Field.create (ext_len t r))

(* distributed BLAS over the local (non-ghost) portions *)
let dot t (a : fields) (b : fields) =
  t.allreduces <- t.allreduces + 1;
  let acc = ref 0. in
  for r = 0 to n_ranks t - 1 do
    let n = local_len t r in
    for i = 0 to n - 1 do
      acc :=
        !acc
        +. (Bigarray.Array1.unsafe_get a.(r) i *. Bigarray.Array1.unsafe_get b.(r) i)
    done
  done;
  !acc

let axpy t alpha (x : fields) (y : fields) =
  for r = 0 to n_ranks t - 1 do
    let n = local_len t r in
    for i = 0 to n - 1 do
      Bigarray.Array1.unsafe_set y.(r) i
        (Bigarray.Array1.unsafe_get y.(r) i
        +. (alpha *. Bigarray.Array1.unsafe_get x.(r) i))
    done
  done

let xpay t (x : fields) alpha (y : fields) =
  for r = 0 to n_ranks t - 1 do
    let n = local_len t r in
    for i = 0 to n - 1 do
      Bigarray.Array1.unsafe_set y.(r) i
        (Bigarray.Array1.unsafe_get x.(r) i
        +. (alpha *. Bigarray.Array1.unsafe_get y.(r) i))
    done
  done

let copy_local_into_ext t (src : fields) (dst : fields) =
  for r = 0 to n_ranks t - 1 do
    let n = local_len t r in
    for i = 0 to n - 1 do
      Bigarray.Array1.unsafe_set dst.(r) i (Bigarray.Array1.unsafe_get src.(r) i)
    done
  done

(* gamma5 on local portions (pointwise in sites). *)
let apply_gamma5_local t (v : fields) =
  for r = 0 to n_ranks t - 1 do
    let rg = Domain.rank_geometry t.dom r in
    let sites = rg.Domain.local_volume in
    for site = 0 to sites - 1 do
      let base = site * fps in
      for k = 12 to 23 do
        Bigarray.Array1.unsafe_set v.(r) (base + k)
          (-.Bigarray.Array1.unsafe_get v.(r) (base + k))
      done
    done
  done

(* dst(local) <- M src where src is given in local layout; scratch_ext
   holds the exchanged extended copy. M = (4+m) - H/2. *)
let apply_wilson t ~(scratch_ext : fields) (src : fields) (dst : fields) =
  copy_local_into_ext t src scratch_ext;
  Dd_wilson.hop_overlapped ~granularity:t.granularity t.dd ~fields:scratch_ext
    ~dsts:dst;
  let d = 4. +. t.mass in
  for r = 0 to n_ranks t - 1 do
    let n = local_len t r in
    for i = 0 to n - 1 do
      Bigarray.Array1.unsafe_set dst.(r) i
        ((d *. Bigarray.Array1.unsafe_get src.(r) i)
        -. (0.5 *. Bigarray.Array1.unsafe_get dst.(r) i))
    done
  done

(* normal operator M^dag M using gamma5-hermiticity *)
let apply_normal t ~scratch_ext ~scratch_local (src : fields) (dst : fields) =
  apply_wilson t ~scratch_ext src scratch_local;
  apply_gamma5_local t scratch_local;
  apply_wilson t ~scratch_ext scratch_local dst;
  apply_gamma5_local t dst
(* note: M^dag v = g5 M g5 v; composing, M^dag M = g5 M g5 M. The two
   gamma5s around the middle cancel into the form above:
   g5 M (g5 (M src)) — implemented as M, g5, M, g5. *)

(* Distributed CG on M^dag M x = M^dag b, with b and x in GLOBAL layout
   for convenience. Returns the global solution and solver stats. *)
let solve_normal ?(tol = 1e-10) ?(max_iter = 5000) t ~(b_global : Field.t) =
  let t_start = Unix.gettimeofday () in
  let comm = Dd_wilson.comm t.dd in
  let scatter (g : Field.t) : fields =
    Array.init (n_ranks t) (fun r -> Domain.scatter_field t.dom ~dof:fps g r)
  in
  let scratch_ext = create_ext t in
  let scratch_local = create_local t in
  let b = scatter b_global in
  (* rhs = M^dag b = g5 M g5 b *)
  let rhs = create_local t in
  apply_gamma5_local t b;
  apply_wilson t ~scratch_ext b rhs;
  apply_gamma5_local t rhs;
  apply_gamma5_local t b;
  (* restore b *)
  let x = create_local t in
  let r = create_local t in
  for rk = 0 to n_ranks t - 1 do
    Field.blit rhs.(rk) r.(rk)
  done;
  let p = create_local t in
  for rk = 0 to n_ranks t - 1 do
    Field.blit r.(rk) p.(rk)
  done;
  let ap = create_local t in
  let b2 = dot t rhs rhs in
  let target = tol *. tol *. b2 in
  let r2 = ref (dot t r r) in
  let iters = ref 0 in
  while !r2 > target && !iters < max_iter do
    incr iters;
    apply_normal t ~scratch_ext ~scratch_local p ap;
    let pap = dot t p ap in
    let alpha = !r2 /. pap in
    axpy t alpha p x;
    axpy t (-.alpha) ap r;
    let r2' = dot t r r in
    let beta = r2' /. !r2 in
    r2 := r2';
    xpay t r beta p
  done;
  let x_global = Domain.gather_field t.dom ~dof:fps x in
  (* full-halo exchanges only: the count that is comparable with
     [Comm.halo_bytes_per_rank]-based byte estimates (partial-face
     exchanges are tallied separately in [Comm.stats]) *)
  let exchanges = (Comm.stats comm).Comm.full_exchanges in
  ( x_global,
    {
      Solver.Cg.iterations = !iters;
      converged = !r2 <= target;
      relative_residual = sqrt (!r2 /. b2);
      true_relative_residual = None;
      flops = 0.;
      seconds = Unix.gettimeofday () -. t_start;
      reliable_updates = 0;
    },
    `Exchanges exchanges,
    `Allreduces t.allreduces )
