(** Distributed CG on the domain-decomposed Wilson normal operator:
    halo exchange inside every application, per-rank partial sums
    combined for every inner product (the all-reduce the machine model
    charges). Deterministic; checked against the single-domain CGNE. *)

type t

val create :
  ?granularity:Machine.Policy.granularity -> Dd_wilson.t -> mass:float -> t
(** [granularity] selects fine-grained (default; per-face boundary
    compute as each halo lands) or coarse-grained (one boundary sweep
    after all faces complete) halo completion inside every operator
    application — one axis [Autotune.Comm_tune] tunes. The other, the
    halo transport, rides in on the [Dd_wilson] operator (see
    [Dd_wilson.create ?transport]); all three transports solve
    bit-identically because CG never writes a source while its
    exchange is in flight. *)

val transport : t -> Comm.transport
(** The halo transport every exchange of this solver uses. *)

val solve_normal :
  ?tol:float ->
  ?max_iter:int ->
  t ->
  b_global:Linalg.Field.t ->
  Linalg.Field.t
  * Solver.Cg.stats
  * [ `Exchanges of int ]
  * [ `Allreduces of int ]
(** Solve M†M x = M†b with b given in global layout; returns the
    gathered global solution plus communication counts. [`Exchanges]
    counts full-halo exchanges only, so it is comparable with
    [Comm.halo_bytes_per_rank] estimates. *)
