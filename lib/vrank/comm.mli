(** Virtual-rank message passing: N ranks executed sequentially with
    real buffers, running the pack/exchange/unpack pattern of an MPI
    halo exchange with message and byte accounting. *)

type stats = {
  mutable exchanges : int;
  mutable messages : int;
  mutable bytes : float;
}

type t

val create : Lattice.Domain.t -> dof:int -> t
(** [dof] = floats per site. *)

val stats : t -> stats
val n_ranks : t -> int

val create_fields : t -> Linalg.Field.t array
(** One extended-volume (local + ghosts) field per rank, zeroed. *)

val scatter : t -> Linalg.Field.t -> Linalg.Field.t array -> unit
(** Global field → per-rank local portions (ghosts left stale). *)

val gather : t -> Linalg.Field.t array -> Linalg.Field.t

val halo_exchange : ?faces:int array -> t -> Linalg.Field.t array -> unit
(** Fill every rank's ghost slots from its neighbors' boundary sites
    (all 8 faces by default). *)

(** {2 Ghost-freshness (epoch) tracking}

    [scatter] and [mark_written] bump a per-rank write epoch;
    [halo_exchange] stamps each refreshed ghost face with its filler's
    epoch. A ghost face whose stamp lags the filler's epoch is stale —
    reading it is the halo data race [Check.Halo_check] detects. *)

val strict : bool ref
(** When set, ghost consumers ([Dd_wilson] stencils) raise
    [Invalid_argument] on a stale ghost read instead of computing with
    outdated data. Off by default. *)

val mark_written : t -> int -> unit
(** Declare that rank's local sites changed (its neighbors' ghosts of
    it are now stale until the next exchange). *)

val write_epoch : t -> int -> int
val ghost_epoch : t -> rank:int -> face:int -> int
(** [-1] until the face is first exchanged. *)

val ghost_fresh : t -> rank:int -> face:int -> bool
val stale_faces : t -> int -> int list
(** Face ids (0–7) of this rank whose ghosts lag their filler. *)

val halo_bytes_per_rank : t -> int -> float
