(** Virtual-rank message passing: N ranks executed sequentially with
    real buffers, running the pack/post/complete/unpack pattern of an
    MPI nonblocking halo exchange with message and byte accounting. *)

type transport = Machine.Transport.t = Staged | Zero_copy | Double_buffered
(** How the send side treats face data between post and complete:
    [Staged] packs a fresh buffer at post (write-after-post flagged but
    the delivered data is the post-time data); [Zero_copy] aliases the
    sender's field so a write-after-post genuinely corrupts the
    delivered ghosts (witnessed by a post-time checksum); and
    [Double_buffered] packs into two rotating per-face buffers so
    write-after-post is safe by construction, at one counted (and
    [Machine.Perf_model]-priced) extra copy per message. *)

type stats = {
  mutable full_exchanges : int;
      (** all-8-face exchanges posted — the unit [halo_bytes_per_rank]
          estimates *)
  mutable partial_exchanges : int;  (** [?faces]-subset exchanges posted *)
  mutable messages : int;
  mutable bytes : float;
  mutable send_buffer_races : int;
      (** completions that observed a local write after the post
          ([Staged]/[Zero_copy]; [Double_buffered] is immune) *)
  mutable corruptions : int;
      (** [Zero_copy] deliveries whose aliased payload changed in
          flight — the post-time checksum no longer matches what the
          wire delivered *)
  mutable extra_copies : int;
      (** [Double_buffered] rotation copies paid (one per message
          posted) *)
  mutable compressed_messages : int;
      (** messages whose payload went on the wire half-precision
          ([~compress:true]) *)
}

type t

val create :
  ?transport:transport -> ?compress:bool -> Lattice.Domain.t -> dof:int -> t
(** [dof] = floats per site; [transport] defaults to [Staged].
    [compress] (default false) runs every staged face payload through
    the half-precision block codec ([Linalg.Field.Half], one float32
    norm per site) at pack time and decodes at delivery, so the wire
    carries [Linalg.Quantize.wire_bytes] instead of 8 bytes per float
    — the compressed halo traffic [Machine.Perf_model] prices (codec
    passes traded against wire bytes) and [Autotune.Comm_tune]
    surveys. Raises [Invalid_argument] with [Zero_copy]: there is no
    staging buffer to compress. *)

val stats : t -> stats
val transport : t -> transport

val compress : t -> bool
(** Whether face payloads ride the wire half-precision. *)


val n_ranks : t -> int

val create_fields : t -> Linalg.Field.t array
(** One extended-volume (local + ghosts) field per rank, zeroed. *)

val scatter : t -> Linalg.Field.t -> Linalg.Field.t array -> unit
(** Global field → per-rank local portions (ghosts left stale). *)

val gather : t -> Linalg.Field.t array -> Linalg.Field.t

(** {2 Nonblocking per-face protocol}

    [post] records each listed face of every rank as in flight —
    packing it into a staging buffer ([Staged]), into one of two
    rotating buffers ([Double_buffered]), or leaving the payload
    aliasing the sender's field ([Zero_copy]); ghost slots are
    untouched. [complete ~face] delivers every in-flight message
    landing in that ghost face and stamps [ghost_epoch] {e at
    completion time} with the epoch of the data meant to be carried.
    Overlapped stencils interleave interior/boundary compute between
    the two. *)

type handle

val post : ?faces:int array -> t -> Linalg.Field.t array -> handle
(** Pack (transport permitting) + send the listed faces (default all 8)
    on every rank. Counts one full (8 distinct faces) or partial
    exchange. *)

val complete : handle -> face:int -> unit
(** Deliver ghost face [face] (recv-side id) on every rank. Raises
    [Invalid_argument] if the face is not in flight (never posted, or
    completed twice). A sender writing its local sites between post and
    complete is counted as a send-buffer race under [Staged] and
    [Zero_copy] (and raises in strict mode); under [Zero_copy] the
    delivered ghosts additionally come from the sender's {e live} field
    and a real change is counted in [stats.corruptions].
    [Double_buffered] delivers the post-time data silently — the race
    cannot happen. *)

val complete_all : handle -> unit
(** Complete every pending face, in ascending face id. *)

val pending_faces : handle -> int list
(** Recv-side face ids still in flight, sorted. *)

val finished : handle -> bool

val halo_exchange : ?faces:int array -> t -> Linalg.Field.t array -> unit
(** Blocking convenience: [post] then [complete_all]. *)

val face_label : int -> string
(** Face id 0–7 → ["x+"], ["x-"], …, ["t-"]. *)

val send_face_of_recv : int -> int
(** The send-side face id whose message lands in this recv face: the
    opposite direction of the same dimension. *)

(** {2 Ghost-freshness (epoch) tracking}

    [scatter] and [mark_written] bump a per-rank write epoch;
    completing a face stamps it with its filler's epoch as of the post.
    A ghost face whose stamp lags the filler's epoch is stale — reading
    it is the halo data race [Check.Halo_check] detects. *)

val strict : bool ref
(** When set, ghost consumers ([Dd_wilson] stencils) raise
    [Invalid_argument] on a stale ghost read instead of computing with
    outdated data, and [complete] raises on a send-buffer race. Off by
    default. *)

val mark_written : t -> int -> unit
(** Declare that rank's local sites changed (its neighbors' ghosts of
    it are now stale until the next exchange; any in-flight message it
    posted is now racing — and, under [Zero_copy], corrupt). *)

val write_epoch : t -> int -> int
val ghost_epoch : t -> rank:int -> face:int -> int
(** [-1] until the face is first completed. *)

val ghost_fresh : t -> rank:int -> face:int -> bool
val stale_faces : t -> int -> int list
(** Face ids (0–7) of this rank whose ghosts lag their filler. *)

val halo_bytes_per_rank : t -> int -> float
