(** Virtual-rank message passing: N ranks executed sequentially with
    real buffers, running the pack/post/complete/unpack pattern of an
    MPI nonblocking halo exchange with message and byte accounting. *)

type stats = {
  mutable full_exchanges : int;
      (** all-8-face exchanges posted — the unit [halo_bytes_per_rank]
          estimates *)
  mutable partial_exchanges : int;  (** [?faces]-subset exchanges posted *)
  mutable messages : int;
  mutable bytes : float;
  mutable send_buffer_races : int;
      (** completions that observed a local write after the post *)
}

type t

val create : Lattice.Domain.t -> dof:int -> t
(** [dof] = floats per site. *)

val stats : t -> stats
val n_ranks : t -> int

val create_fields : t -> Linalg.Field.t array
(** One extended-volume (local + ghosts) field per rank, zeroed. *)

val scatter : t -> Linalg.Field.t -> Linalg.Field.t array -> unit
(** Global field → per-rank local portions (ghosts left stale). *)

val gather : t -> Linalg.Field.t array -> Linalg.Field.t

(** {2 Nonblocking per-face protocol}

    [post] packs each listed face of every rank into a staging buffer
    and records the message as in flight; ghost slots are untouched.
    [complete ~face] delivers every in-flight message landing in that
    ghost face and stamps [ghost_epoch] {e at completion time} with the
    epoch of the data actually carried. Overlapped stencils interleave
    interior/boundary compute between the two. *)

type handle

val post : ?faces:int array -> t -> Linalg.Field.t array -> handle
(** Pack + send the listed faces (default all 8) on every rank. Counts
    one full (8 distinct faces) or partial exchange. *)

val complete : handle -> face:int -> unit
(** Deliver ghost face [face] (recv-side id) on every rank. Raises
    [Invalid_argument] if the face is not in flight (never posted, or
    completed twice). In strict mode also raises when the sender wrote
    its local sites between post and complete — the classic
    send-buffer race; otherwise the race is only counted in stats. *)

val complete_all : handle -> unit
(** Complete every pending face, in ascending face id. *)

val pending_faces : handle -> int list
(** Recv-side face ids still in flight, sorted. *)

val finished : handle -> bool

val halo_exchange : ?faces:int array -> t -> Linalg.Field.t array -> unit
(** Blocking convenience: [post] then [complete_all]. *)

val face_label : int -> string
(** Face id 0–7 → ["x+"], ["x-"], …, ["t-"]. *)

(** {2 Ghost-freshness (epoch) tracking}

    [scatter] and [mark_written] bump a per-rank write epoch;
    completing a face stamps it with its filler's epoch as of the post.
    A ghost face whose stamp lags the filler's epoch is stale — reading
    it is the halo data race [Check.Halo_check] detects. *)

val strict : bool ref
(** When set, ghost consumers ([Dd_wilson] stencils) raise
    [Invalid_argument] on a stale ghost read instead of computing with
    outdated data, and [complete] raises on a send-buffer race. Off by
    default. *)

val mark_written : t -> int -> unit
(** Declare that rank's local sites changed (its neighbors' ghosts of
    it are now stale until the next exchange; any in-flight message it
    posted is now racing). *)

val write_epoch : t -> int -> int
val ghost_epoch : t -> rank:int -> face:int -> int
(** [-1] until the face is first completed. *)

val ghost_fresh : t -> rank:int -> face:int -> bool
val stale_faces : t -> int -> int list
(** Face ids (0–7) of this rank whose ghosts lag their filler. *)

val halo_bytes_per_rank : t -> int -> float
