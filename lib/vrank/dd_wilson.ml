(* Domain-decomposed Wilson operator over virtual ranks: the stencil
   communication pattern of the paper executed functionally. The
   overlapped application follows the canonical recipe from Sec. IV:

     1. pack the halo into contiguous buffers (inside halo_exchange)
     2. communicate halos to neighbors
     3. compute the interior stencil
     4. complete the boundary stencil once halos have arrived

   Ranks run sequentially, so "overlap" here is exercised structurally
   (interior computed from pre-exchange data is verified identical);
   the timing benefit is what Machine.Perf_model costs out. *)

module Domain = Lattice.Domain
module Field = Linalg.Field
module Wilson = Dirac.Wilson

type t = {
  dom : Domain.t;
  comm : Comm.t;
  kernels : Wilson.t array;  (* one per rank *)
  gauges : Field.t array;  (* extended-volume gauge copies *)
}

let create dom gauge =
  let comm = Comm.create dom ~dof:Wilson.floats_per_site in
  let gauges =
    Array.init (Domain.n_ranks dom) (fun r -> Domain.gather_gauge dom gauge r)
  in
  let kernels =
    Array.init (Domain.n_ranks dom) (fun r ->
        Wilson.of_domain_rank (Domain.rank_geometry dom r) gauges.(r))
  in
  { dom; comm; kernels; gauges }

let comm t = t.comm

(* Strict-mode gate: a stencil about to read ghost zones refuses to
   run on stale ones (Comm.strict), naming rank and faces — the
   runtime arm of the halo race detector. *)
let assert_ghosts_fresh t ~what =
  if !Comm.strict then
    for r = 0 to Domain.n_ranks t.dom - 1 do
      match Comm.stale_faces t.comm r with
      | [] -> ()
      | fs ->
        invalid_arg
          (Printf.sprintf "%s: stale ghost faces on rank %d: %s" what r
             (String.concat "," (List.map string_of_int fs)))
    done

(* Simple application: exchange halos, then run the full stencil on
   every rank. [fields] are extended source fields; [dsts] receive
   local_volume sites each. *)
let hop t ~(fields : Field.t array) ~(dsts : Field.t array) =
  Comm.halo_exchange t.comm fields;
  assert_ghosts_fresh t ~what:"Dd_wilson.hop";
  Array.iteri
    (fun r kernel -> Wilson.hop kernel ~src:fields.(r) ~dst:dsts.(r))
    t.kernels

(* Overlapped application: interior stencil runs between the exchange
   "post" and "wait" (sequentially the exchange completes first, but
   the interior uses no ghost data — asserted by construction of
   interior_sites — so the split is faithful). *)
let hop_overlapped t ~(fields : Field.t array) ~(dsts : Field.t array) =
  (* interior first, from pre-exchange data *)
  Array.iteri
    (fun r kernel ->
      let rg = Domain.rank_geometry t.dom r in
      Wilson.hop_sites kernel ~sites:rg.Domain.interior_sites ~src:fields.(r)
        ~dst:dsts.(r) ())
    t.kernels;
  Comm.halo_exchange t.comm fields;
  assert_ghosts_fresh t ~what:"Dd_wilson.hop_overlapped";
  Array.iteri
    (fun r kernel ->
      let rg = Domain.rank_geometry t.dom r in
      Wilson.hop_sites kernel ~sites:rg.Domain.boundary_sites ~src:fields.(r)
        ~dst:dsts.(r) ())
    t.kernels

(* Global-field convenience interface (tests, small workloads):
   dst = H src computed across all ranks. *)
let hop_global ?(overlapped = false) t (src : Field.t) : Field.t =
  let fields = Comm.create_fields t.comm in
  Comm.scatter t.comm src fields;
  let dsts =
    Array.init (Domain.n_ranks t.dom) (fun r ->
        let rg = Domain.rank_geometry t.dom r in
        Field.create (rg.Domain.local_volume * Wilson.floats_per_site))
  in
  if overlapped then hop_overlapped t ~fields ~dsts else hop t ~fields ~dsts;
  Domain.gather_field t.dom ~dof:Wilson.floats_per_site dsts

let apply_global ?(overlapped = false) t ~mass (src : Field.t) : Field.t =
  let h = hop_global ~overlapped t src in
  let out = Field.copy src in
  Field.scale (4. +. mass) out;
  Field.axpy (-0.5) h out;
  out
