(* Domain-decomposed Wilson operator over virtual ranks: the stencil
   communication pattern of the paper executed functionally. The
   overlapped application follows the canonical recipe from Sec. IV:

     1. pack the halo and post every face (Comm.post)
     2. compute the interior stencil while messages are in flight
     3. complete faces and run boundary compute — per face as each
        halo lands (fine-grained), or all at once after every face
        completed (coarse-grained), per Machine.Policy.granularity

   Ranks run sequentially, so "overlap" here is exercised structurally
   (interior computed from pre-exchange data, boundary sub-stencils
   gated on the exact faces they read — verified identical to the
   blocking path); the timing benefit is what Machine.Perf_model costs
   out. *)

module Domain = Lattice.Domain
module Field = Linalg.Field
module Wilson = Dirac.Wilson
module Policy = Machine.Policy

type t = {
  dom : Domain.t;
  comm : Comm.t;
  kernels : Wilson.t array;  (* one per rank *)
  gauges : Field.t array;  (* extended-volume gauge copies *)
  face_needs : (int * int) array array;
      (* per rank: (boundary site, bitmask of ghost faces its stencil
         reads) — the gating data for fine-grained completion *)
}

(* Which ghost faces does the stencil at a boundary site read? A hop
   landing at ext index >= local_volume lands in exactly one face's
   ghost region; collect the face ids as a bitmask. *)
let site_face_needs (rg : Domain.rank_geometry) =
  let ghost_len = rg.Domain.ext_volume - rg.Domain.local_volume in
  let face_of_ghost = Array.make ghost_len (-1) in
  Array.iteri
    (fun fid (face : Domain.face) ->
      Array.iteri
        (fun i _ ->
          face_of_ghost.(face.Domain.ghost_base + i - rg.Domain.local_volume) <-
            fid)
        face.Domain.send_sites)
    rg.Domain.faces;
  let need s =
    let mask = ref 0 in
    for mu = 0 to 3 do
      let f = Domain.fwd rg s mu and b = Domain.bwd rg s mu in
      if f >= rg.Domain.local_volume then
        mask := !mask lor (1 lsl face_of_ghost.(f - rg.Domain.local_volume));
      if b >= rg.Domain.local_volume then
        mask := !mask lor (1 lsl face_of_ghost.(b - rg.Domain.local_volume))
    done;
    !mask
  in
  Array.map (fun s -> (s, need s)) rg.Domain.boundary_sites

let create ?transport dom gauge =
  let comm = Comm.create ?transport dom ~dof:Wilson.floats_per_site in
  let gauges =
    Array.init (Domain.n_ranks dom) (fun r -> Domain.gather_gauge dom gauge r)
  in
  let kernels =
    Array.init (Domain.n_ranks dom) (fun r ->
        Wilson.of_domain_rank (Domain.rank_geometry dom r) gauges.(r))
  in
  let face_needs =
    Array.init (Domain.n_ranks dom) (fun r ->
        site_face_needs (Domain.rank_geometry dom r))
  in
  { dom; comm; kernels; gauges; face_needs }

let comm t = t.comm

(* Strict-mode gate: a stencil about to read ghost zones refuses to
   run on stale ones (Comm.strict), naming rank and faces — the
   runtime arm of the halo race detector. *)
let assert_ghosts_fresh t ~what =
  if !Comm.strict then
    for r = 0 to Domain.n_ranks t.dom - 1 do
      match Comm.stale_faces t.comm r with
      | [] -> ()
      | fs ->
        invalid_arg
          (Printf.sprintf "%s: stale ghost faces on rank %d: %s" what r
             (String.concat "," (List.map Comm.face_label fs)))
    done

(* Per-face form of the same gate, applied at the point a boundary
   sub-stencil reads its ghosts: only the faces in [mask] matter for
   the sites about to run. *)
let assert_faces_fresh t ~what ~rank ~mask =
  if !Comm.strict then
    for f = 0 to 7 do
      if
        mask land (1 lsl f) <> 0
        && not (Comm.ghost_fresh t.comm ~rank ~face:f)
      then
        invalid_arg
          (Printf.sprintf "%s: rank %d boundary stencil reads stale ghost face %s"
             what rank (Comm.face_label f))
    done

(* Simple application: exchange halos, then run the full stencil on
   every rank. [fields] are extended source fields; [dsts] receive
   local_volume sites each. *)
let hop t ~(fields : Field.t array) ~(dsts : Field.t array) =
  Comm.halo_exchange t.comm fields;
  assert_ghosts_fresh t ~what:"Dd_wilson.hop";
  Array.iteri
    (fun r kernel -> Wilson.hop kernel ~src:fields.(r) ~dst:dsts.(r))
    t.kernels

let default_order = [| 0; 1; 2; 3; 4; 5; 6; 7 |]

let check_order order =
  if Array.length order <> 8 then
    invalid_arg "Dd_wilson.hop_overlapped: order must list all 8 faces";
  let seen = Array.make 8 false in
  Array.iter
    (fun f ->
      if f < 0 || f > 7 || seen.(f) then
        invalid_arg "Dd_wilson.hop_overlapped: order must permute 0..7";
      seen.(f) <- true)
    order

(* Overlapped application: post every face, run the interior stencil on
   pre-exchange data while the messages are in flight, then complete
   faces in [order]. Fine-grained runs each boundary site's sub-stencil
   as soon as the last ghost face it reads has landed; coarse-grained
   completes every face first and runs the whole boundary in one
   sweep. The freshness assertion runs at the point each sub-stencil
   reads its ghosts — not after a fused exchange, where it could never
   fire. *)
let hop_overlapped ?(granularity = Policy.Fine) ?(order = default_order) t
    ~(fields : Field.t array) ~(dsts : Field.t array) =
  check_order order;
  let h = Comm.post t.comm fields in
  (* interior first, from pre-exchange data: no ghost slot is read *)
  Array.iteri
    (fun r kernel ->
      let rg = Domain.rank_geometry t.dom r in
      Wilson.hop_sites kernel ~sites:rg.Domain.interior_sites ~src:fields.(r)
        ~dst:dsts.(r) ())
    t.kernels;
  match granularity with
  | Policy.Coarse ->
    Array.iter (fun face -> Comm.complete h ~face) order;
    Array.iteri
      (fun r kernel ->
        let rg = Domain.rank_geometry t.dom r in
        assert_faces_fresh t ~what:"Dd_wilson.hop_overlapped(coarse)" ~rank:r
          ~mask:(Array.fold_left (fun m (_, mask) -> m lor mask) 0 t.face_needs.(r));
        Wilson.hop_sites kernel ~sites:rg.Domain.boundary_sites ~src:fields.(r)
          ~dst:dsts.(r) ())
      t.kernels
  | Policy.Fine ->
    let completed = ref 0 in
    Array.iter
      (fun face ->
        Comm.complete h ~face;
        completed := !completed lor (1 lsl face);
        let now = !completed in
        Array.iteri
          (fun r kernel ->
            (* boundary sites whose last missing face just landed *)
            let ready = ref [] and group_mask = ref 0 in
            Array.iter
              (fun (s, mask) ->
                if mask land (1 lsl face) <> 0 && mask land now = mask then begin
                  ready := s :: !ready;
                  group_mask := !group_mask lor mask
                end)
              t.face_needs.(r);
            if !ready <> [] then begin
              assert_faces_fresh t ~what:"Dd_wilson.hop_overlapped(fine)"
                ~rank:r ~mask:!group_mask;
              Wilson.hop_sites kernel
                ~sites:(Array.of_list (List.rev !ready))
                ~src:fields.(r) ~dst:dsts.(r) ()
            end)
          t.kernels)
      order

(* Global-field convenience interface (tests, small workloads):
   dst = H src computed across all ranks. *)
let hop_global ?(overlapped = false) ?granularity ?order t (src : Field.t) :
    Field.t =
  let fields = Comm.create_fields t.comm in
  Comm.scatter t.comm src fields;
  let dsts =
    Array.init (Domain.n_ranks t.dom) (fun r ->
        let rg = Domain.rank_geometry t.dom r in
        Field.create (rg.Domain.local_volume * Wilson.floats_per_site))
  in
  if overlapped then hop_overlapped ?granularity ?order t ~fields ~dsts
  else hop t ~fields ~dsts;
  Domain.gather_field t.dom ~dof:Wilson.floats_per_site dsts

let apply_global ?(overlapped = false) t ~mass (src : Field.t) : Field.t =
  let h = hop_global ~overlapped t src in
  let out = Field.copy src in
  Field.scale (4. +. mass) out;
  Field.axpy (-0.5) h out;
  out
