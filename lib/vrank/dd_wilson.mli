(** Domain-decomposed Wilson operator over virtual ranks: the paper's
    stencil communication recipe (pack → post → interior → per-face
    complete + boundary), verified against the single-domain oracle. *)

type t = {
  dom : Lattice.Domain.t;
  comm : Comm.t;
  kernels : Dirac.Wilson.t array;
  gauges : Linalg.Field.t array;
  face_needs : (int * int) array array;
      (** per rank: (boundary site, bitmask of ghost faces its stencil
          reads) *)
}

val create : ?transport:Comm.transport -> Lattice.Domain.t -> Lattice.Gauge.t -> t
(** [transport] (default [Staged]) selects the halo buffer management
    every exchange of this operator uses — including the posts inside
    [hop_overlapped] and the solves [Dd_solve] runs on top of it. All
    three transports produce bit-identical results when nothing writes
    the source between post and complete; [Zero_copy] delivers corrupt
    ghosts (and counts them) when something does. *)

val comm : t -> Comm.t

val hop : t -> fields:Linalg.Field.t array -> dsts:Linalg.Field.t array -> unit
(** Blocking exchange, then the full stencil on every rank. *)

val default_order : int array
(** Face completion order 0..7. *)

val hop_overlapped :
  ?granularity:Machine.Policy.granularity ->
  ?order:int array ->
  t ->
  fields:Linalg.Field.t array ->
  dsts:Linalg.Field.t array ->
  unit
(** Post every face, run the interior stencil while the messages are in
    flight, then complete faces in [order] (default 0..7). [Fine]
    (default) runs each boundary site's sub-stencil as soon as the last
    ghost face it reads lands; [Coarse] completes everything first and
    runs one boundary sweep — the two halves of the paper's
    communication-granularity policy axis. In strict mode every
    sub-stencil asserts the freshness of exactly the faces it reads, at
    the point it reads them. *)

val hop_global :
  ?overlapped:bool ->
  ?granularity:Machine.Policy.granularity ->
  ?order:int array ->
  t ->
  Linalg.Field.t ->
  Linalg.Field.t
(** Convenience: scatter a global field, apply, gather. *)

val apply_global : ?overlapped:bool -> t -> mass:float -> Linalg.Field.t -> Linalg.Field.t
(** Full Wilson operator (4 + m) − H/2 across ranks. *)
