(* Stout link smearing (Morningstar-Peardon): the production workflow
   applies the domain-wall operator to smoothed gauge fields. One step:

     C_mu(x)   = rho * (sum of the 6 staples of U_mu(x))
     Omega     = C_mu(x) U_mu(x)^dag
     Q         = (i/2) [ (Omega^dag - Omega)
                         - (1/3) tr(Omega^dag - Omega) ]
     U'_mu(x)  = exp(i Q) U_mu(x)

   Q is hermitian and traceless, so exp(iQ) is SU(3); the exponential
   is evaluated by its (rapidly convergent, |rho|<<1) power series and
   snapped back to the group to absorb truncation. *)

module Su3 = Linalg.Su3
module Cplx = Linalg.Cplx

(* exp(i Q) via the power series sum (iQ)^k / k!. *)
let exp_i_herm ?(terms = 24) (q : Su3.t) : Su3.t =
  let iq = Su3.cscale Cplx.i q in
  let acc = ref (Su3.id ()) in
  let term = ref (Su3.id ()) in
  for k = 1 to terms do
    term := Su3.scale (1. /. float_of_int k) (Su3.mul !term iq);
    acc := Su3.add !acc !term
  done;
  Su3.reunitarize !acc

(* The stout Q matrix for one link given its staple sum. *)
let stout_q ~rho (u : Su3.t) (staple : Su3.t) : Su3.t =
  let omega = Su3.mul (Su3.scale rho staple) (Su3.adj u) in
  let diff = Su3.sub (Su3.adj omega) omega in
  (* remove the trace to stay in su(3) *)
  let tr = Su3.trace diff in
  let traceless = Su3.copy diff in
  let third = Cplx.scale (1. /. 3.) tr in
  for d = 0 to 2 do
    traceless.(Su3.idx d d) <- traceless.(Su3.idx d d) -. third.Cplx.re;
    traceless.(Su3.idx d d + 1) <- traceless.(Su3.idx d d + 1) -. third.Cplx.im
  done;
  (* (i/2) * traceless: hermitian *)
  Su3.cscale (Cplx.make 0. 0.5) traceless

(* One stout step over the whole field (returns a fresh field; all
   staples read the input). Site-partitioned pooled execution is
   race-free: every staple reads the input field, site x writes only
   out's four links at x, and each site's update is a pure function of
   the input — pooled and serial results are bit-identical. *)
let step ?(rho = 0.1) (field : Gauge.t) : Gauge.t =
  let geom = Gauge.geom field in
  let out = Gauge.copy field in
  let do_site site =
    for mu = 0 to Geometry.n_dim - 1 do
      let u = Gauge.get field site mu in
      let staple = Gauge.staple field site mu in
      (* Gauge.staple returns A with Re tr(U A); the stout C is the
         adjoint convention: C = rho * A^dag *)
      let q = stout_q ~rho u (Su3.adj staple) in
      Gauge.set out site mu (Su3.mul (exp_i_herm q) u)
    done
  in
  let vol = Geometry.volume geom in
  let pool = Util.Pool.get_default () in
  if Util.Pool.size pool > 1 && vol >= 256 then
    Util.Pool.parallel_for pool ~chunk:(max 16 (vol / (4 * Util.Pool.size pool)))
      ~n:vol (fun lo hi ->
        for site = lo to hi - 1 do
          do_site site
        done)
  else Geometry.iter_sites geom do_site;
  out

let smear ?(rho = 0.1) ~steps (field : Gauge.t) : Gauge.t =
  let rec loop n f = if n = 0 then f else loop (n - 1) (step ~rho f) in
  loop steps field
