(* Packed gauge-link stream: a whole gauge field (or any raw
   18-reals-per-link stream, e.g. the extended gauge of a
   domain-decomposed rank) through one Su3_codec. The stencil kernels
   keep only this stream and decode each link into an 18-float scratch
   at the point of use — the memory the hop actually reads per site
   drops from 8×18×8 bytes to 8×12×8 / 8×8×8
   (Machine.Perf_model.link_bytes_per_site_recon).

   The sign plane (one byte per link, the det sign the codecs need for
   antiperiodic-time links) is stored alongside; at one byte per
   144/96/64 payload bytes it is the negligible metadata the byte
   model documents away. Encoding runs once per field at operator
   construction; decode_into is the hot-path entry. *)

module F = Linalg.Field
module C = Linalg.Su3_codec

type t = {
  codec : C.codec;
  n_links : int;
  reals : F.t;  (* n_links × C.reals codec, link-major *)
  signs : Bytes.t;  (* 0 => +1, 1 => −1 *)
}

let codec t = t.codec
let n_links t = t.n_links

let pack_field codec (g : F.t) =
  let nf = F.length g in
  if nf mod 18 <> 0 then invalid_arg "Recon.pack_field: not a link stream";
  let n_links = nf / 18 in
  let rpl = C.reals codec in
  let reals = F.create (n_links * rpl) in
  let signs = Bytes.make n_links '\000' in
  let u = Array.make 18 0. in
  let packed = Array.make rpl 0. in
  for l = 0 to n_links - 1 do
    let base = l * 18 in
    for j = 0 to 17 do
      u.(j) <- Bigarray.Array1.unsafe_get g (base + j)
    done;
    let sign = C.encode_into codec u packed ~off:0 in
    if sign < 0. then Bytes.unsafe_set signs l '\001';
    let pb = l * rpl in
    for j = 0 to rpl - 1 do
      Bigarray.Array1.unsafe_set reals (pb + j) packed.(j)
    done
  done;
  { codec; n_links; reals; signs }

let pack codec (gauge : Gauge.t) = pack_field codec (Gauge.data gauge)

(* Hot path: rebuild link [link] into the caller's 18-float scratch.
   [packed] is caller-provided scratch of [C.reals codec] floats (the
   stencil closures each own one — fresh per pooled range, so no
   shared mutable state). Pure per-link (reads only the packed
   stream), so pooled stencil ranges decoding the same link always
   produce the same bits — codec-fixed results are bit-identical
   across pool geometries. *)
let decode_sub t ~link ~(packed : float array) (u : float array) =
  let rpl = C.reals t.codec in
  let pb = link * rpl in
  match t.codec with
  | C.Full18 ->
    for j = 0 to 17 do
      u.(j) <- Bigarray.Array1.unsafe_get t.reals (pb + j)
    done
  | C.Recon12 | C.Recon8 ->
    for j = 0 to rpl - 1 do
      packed.(j) <- Bigarray.Array1.unsafe_get t.reals (pb + j)
    done;
    let sign =
      if Bytes.unsafe_get t.signs link = '\000' then 1. else -1.
    in
    C.decode_into t.codec packed ~off:0 ~sign u

let decode_into t ~link (u : float array) =
  decode_sub t ~link ~packed:(Array.make (C.reals t.codec) 0.) u

let unpack t =
  let out = F.create (t.n_links * 18) in
  let u = Array.make 18 0. in
  for l = 0 to t.n_links - 1 do
    decode_into t ~link:l u;
    let base = l * 18 in
    for j = 0 to 17 do
      Bigarray.Array1.unsafe_set out (base + j) u.(j)
    done
  done;
  out

let bytes t =
  float_of_int ((t.n_links * C.reals t.codec * 8) + t.n_links)

let max_round_trip_error codec (gauge : Gauge.t) =
  let g = Gauge.geom gauge in
  let worst = ref 0. in
  for site = 0 to Geometry.volume g - 1 do
    for mu = 0 to 3 do
      let e = C.round_trip_error codec (Gauge.get gauge site mu) in
      if e > !worst then worst := e
    done
  done;
  !worst
