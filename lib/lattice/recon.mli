(** Packed gauge-link stream: a gauge field through one
    [Linalg.Su3_codec], decoded link-by-link into registers at the
    stencil's point of use. Carries the per-link det-sign plane the
    codecs need for antiperiodic-time links (one byte per link —
    negligible metadata, excluded from the bytes-per-site model). *)

type t

val codec : t -> Linalg.Su3_codec.codec
val n_links : t -> int

val pack : Linalg.Su3_codec.codec -> Gauge.t -> t
(** Encode every link of the field. Raises [Linalg.Su3_codec.Degenerate]
    if [Recon8] meets an unparameterizable link (e.g. a unit field). *)

val pack_field : Linalg.Su3_codec.codec -> Linalg.Field.t -> t
(** Same on a raw 18-reals-per-link stream (the extended gauge of a
    domain-decomposed rank). *)

val decode_sub : t -> link:int -> packed:float array -> float array -> unit
(** Hot path: rebuild one link into an 18-float scratch; [packed] is
    caller scratch of [Su3_codec.reals (codec t)] floats (own one per
    stencil closure — fresh per pooled range). Pure per-link, so
    results for a fixed codec are bit-identical across pool
    geometries; [Full18] decode is an exact copy of the source. *)

val decode_into : t -> link:int -> float array -> unit
(** Allocating convenience wrapper of {!decode_sub}. *)

val unpack : t -> Linalg.Field.t
(** Decode the whole stream back to 18 reals per link. *)

val bytes : t -> float
(** Stored bytes including the sign plane. *)

val max_round_trip_error : Linalg.Su3_codec.codec -> Gauge.t -> float
(** Worst per-link Frobenius round-trip error over the field. *)
