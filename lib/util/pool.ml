(* Persistent domain pool: the shared-memory analogue of the paper's
   SM grid. Workers are spawned once (Domain.spawn is ~30us, far too
   slow to pay per kernel call) and parked on a Condition; each kernel
   launch hands the workers one job — a (lo, hi) range function over a
   chunked index space — via a generation counter, and joins by
   waiting for the active-worker count to drain.

   Determinism contract:
   - [parallel_for] partitions [0, n) into fixed-size chunks
     [i*chunk, min n ((i+1)*chunk)). Which domain runs which chunk is
     scheduling noise (an Atomic counter), but chunk boundaries are a
     pure function of (n, chunk), so any kernel whose writes depend
     only on the element index is bit-identical to the serial loop.
   - [parallel_reduce ~ordered:true] (the default) stores each chunk's
     partial in a slot indexed by chunk id and combines the partials
     in index order on the calling domain — bit-stable run to run for
     a fixed (n, chunk). [~ordered:false] combines in completion
     order under a mutex: faster (no partials array) but
     nondeterministic; Check.Pool_check rule DET001 exists to flag
     plans that rely on it.
   - A pool of size 1 has no workers: jobs run inline on the caller,
     chunk by chunk in index order — today's serial code by
     construction.

   Nested calls (a pooled kernel invoked from inside a worker, or from
   the owner while a job is live) degrade to the inline serial path
   instead of deadlocking, so e.g. the Mobius 5d hop can parallelize
   over s-slices while the Wilson kernel it calls per slice stays
   serial within each slice. *)

type t = {
  n_workers : int;  (* domains - 1; the caller is the last lane *)
  mutable workers : unit Domain.t array;
  m : Mutex.t;
  cv_new : Condition.t;  (* a new job generation is available *)
  cv_done : Condition.t;  (* all workers drained the current job *)
  mutable gen : int;
  mutable job : (int -> int -> unit) option;
  mutable job_n : int;
  mutable job_chunk : int;
  next : int Atomic.t;  (* next chunk index of the current job *)
  mutable active : int;  (* workers still draining *)
  mutable stop : bool;
  mutable failed : exn option;  (* first exception raised by a chunk *)
  mutable busy : bool;  (* owner is inside a job (re-entrancy guard) *)
  owner : Domain.id;
}

let size t = t.n_workers + 1

let max_domains = 64

(* ---- chunk geometry (pure, shared with Check.Pool_check) ---- *)

let chunks ~n ~chunk =
  if n <= 0 then [||]
  else begin
    if chunk <= 0 then invalid_arg "Pool.chunks: chunk must be positive";
    let n_chunks = (n + chunk - 1) / chunk in
    Array.init n_chunks (fun i -> (i * chunk, min n ((i + 1) * chunk)))
  end

(* Default chunk: ~4 chunks per lane so the atomic counter can balance
   uneven progress, but never below a floor that keeps the per-chunk
   dispatch cost ignorable. *)
let default_chunk t n = max 1024 (n / (4 * size t) + 1)

(* ---- worker protocol ---- *)

let record_failure t e =
  Mutex.lock t.m;
  if t.failed = None then t.failed <- Some e;
  Mutex.unlock t.m

let drain t f n chunk =
  let n_chunks = (n + chunk - 1) / chunk in
  let continue_ = ref true in
  while !continue_ do
    let i = Atomic.fetch_and_add t.next 1 in
    if i >= n_chunks then continue_ := false
    else begin
      let lo = i * chunk and hi = min n ((i + 1) * chunk) in
      try f lo hi with e -> record_failure t e
    end
  done

let rec worker_loop t last_gen =
  Mutex.lock t.m;
  while t.gen = last_gen && not t.stop do
    Condition.wait t.cv_new t.m
  done;
  if t.stop then Mutex.unlock t.m
  else begin
    let gen = t.gen in
    let f = Option.get t.job and n = t.job_n and chunk = t.job_chunk in
    Mutex.unlock t.m;
    drain t f n chunk;
    Mutex.lock t.m;
    t.active <- t.active - 1;
    if t.active = 0 then Condition.broadcast t.cv_done;
    Mutex.unlock t.m;
    worker_loop t gen
  end

let create ?domains () =
  let domains =
    match domains with Some d -> d | None -> Domain.recommended_domain_count ()
  in
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let domains = min domains max_domains in
  let t =
    {
      n_workers = domains - 1;
      workers = [||];
      m = Mutex.create ();
      cv_new = Condition.create ();
      cv_done = Condition.create ();
      gen = 0;
      job = None;
      job_n = 0;
      job_chunk = 1;
      next = Atomic.make 0;
      active = 0;
      stop = false;
      failed = None;
      busy = false;
      owner = Domain.self ();
    }
  in
  t.workers <- Array.init t.n_workers (fun _ -> Domain.spawn (fun () -> worker_loop t 0));
  t

let shutdown t =
  if not t.stop then begin
    Mutex.lock t.m;
    t.stop <- true;
    Condition.broadcast t.cv_new;
    Mutex.unlock t.m;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

(* ---- launch ---- *)

let serial_chunks n chunk f =
  Array.iter (fun (lo, hi) -> f lo hi) (chunks ~n ~chunk)

let parallel_for t ?chunk ~n f =
  if n > 0 then begin
    let chunk =
      match chunk with
      | Some c when c > 0 -> c
      | Some _ -> invalid_arg "Pool.parallel_for: chunk must be positive"
      | None -> default_chunk t n
    in
    if t.n_workers = 0 || t.stop || t.busy || not (Domain.self () = t.owner) then
      serial_chunks n chunk f
    else begin
      Mutex.lock t.m;
      t.busy <- true;
      t.job <- Some f;
      t.job_n <- n;
      t.job_chunk <- chunk;
      t.failed <- None;
      Atomic.set t.next 0;
      t.active <- t.n_workers;
      t.gen <- t.gen + 1;
      Condition.broadcast t.cv_new;
      Mutex.unlock t.m;
      drain t f n chunk;
      Mutex.lock t.m;
      while t.active > 0 do
        Condition.wait t.cv_done t.m
      done;
      t.job <- None;
      t.busy <- false;
      let failed = t.failed in
      t.failed <- None;
      Mutex.unlock t.m;
      match failed with Some e -> raise e | None -> ()
    end
  end

let parallel_reduce t ?chunk ?(ordered = true) ~n ~init ~f ~combine () =
  if n <= 0 then init
  else begin
    let chunk =
      match chunk with
      | Some c when c > 0 -> c
      | Some _ -> invalid_arg "Pool.parallel_reduce: chunk must be positive"
      | None -> default_chunk t n
    in
    if ordered then begin
      (* fixed-order combination: slot per chunk, folded in index
         order by the calling domain — deterministic for a fixed
         (n, chunk) whatever the scheduling *)
      let n_chunks = (n + chunk - 1) / chunk in
      let partials = Array.make n_chunks init in
      parallel_for t ~chunk ~n (fun lo hi -> partials.(lo / chunk) <- f lo hi);
      Array.fold_left combine init partials
    end
    else begin
      (* completion-order combination: cheaper, nondeterministic —
         what Check.Pool_check's DET001 exists to flag *)
      let acc = ref init in
      let am = Mutex.create () in
      parallel_for t ~chunk ~n (fun lo hi ->
          let p = f lo hi in
          Mutex.lock am;
          acc := combine !acc p;
          Mutex.unlock am);
      !acc
    end
  end

(* ---- default pool and shared registry ---- *)

let parse_domains s =
  match int_of_string_opt (String.trim s) with
  | Some d when d >= 1 -> Ok (min d max_domains)
  | Some d ->
    Error
      (Printf.sprintf
         "NEUTRON_DOMAINS must be a positive integer, got %d (use 1 for \
          serial execution)"
         d)
  | None ->
    Error
      (Printf.sprintf
         "NEUTRON_DOMAINS must be a positive integer, got %S" (String.trim s))

let default_pool : t option ref = ref None

let set_default p = default_pool := Some p

let get_default () =
  match !default_pool with
  | Some p -> p
  | None ->
    let domains =
      match Sys.getenv_opt "NEUTRON_DOMAINS" with
      | Some s -> (
        (* a malformed setting must not silently run serial: the user
           asked for a width and would read parallel timings that are
           nothing of the sort *)
        match parse_domains s with
        | Ok d -> d
        | Error msg -> invalid_arg ("Pool.get_default: " ^ msg))
      | None -> 1
    in
    let p = create ~domains () in
    default_pool := Some p;
    p

(* Spawn-once registry keyed by domain count: the autotuner's pooled
   candidates and the tests draw pools from here so a tuning sweep
   over geometries never spawns the same pool twice. *)
let shared_tbl : (int, t) Hashtbl.t = Hashtbl.create 8
let shared_m = Mutex.create ()

let shared ~domains =
  if domains < 1 then invalid_arg "Pool.shared: domains must be >= 1";
  let domains = min domains max_domains in
  Mutex.lock shared_m;
  let p =
    match Hashtbl.find_opt shared_tbl domains with
    | Some p -> p
    | None ->
      let p = create ~domains () in
      Hashtbl.add shared_tbl domains p;
      p
  in
  Mutex.unlock shared_m;
  p

(* Idle workers are parked on a Condition but still participate in
   every stop-the-world GC section, so a registry left populated taxes
   allocation-heavy code for the rest of the process — quiesce after a
   sweep; the next [shared] call respawns on demand. *)
let shutdown_shared () =
  Mutex.lock shared_m;
  let pools = Hashtbl.fold (fun _ p acc -> p :: acc) shared_tbl [] in
  Hashtbl.reset shared_tbl;
  Mutex.unlock shared_m;
  List.iter shutdown pools;
  match !default_pool with
  | Some p when p.stop -> default_pool := None
  | _ -> ()
