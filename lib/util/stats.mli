(** Statistical estimators and resampling used by the analysis chain. *)

val mean : float array -> float
val variance : ?ddof:int -> float array -> float
(** Sample variance; [ddof] defaults to 1 (unbiased). *)

val std : ?ddof:int -> float array -> float
val standard_error : float array -> float
val covariance : float array -> float array -> float
val correlation : float array -> float array -> float
(** Pearson correlation coefficient. Raises [Invalid_argument] when
    either input has zero variance — the coefficient is undefined there
    and would otherwise propagate as a silent NaN. *)

val min_max : float array -> float * float
val percentile : float array -> float -> float
(** [percentile a p] with [p] in [0,100], linear interpolation. *)

val median : float array -> float

val jackknife_samples : float array -> float array
(** Leave-one-out means. *)

val jackknife : estimator:(float array -> float) -> float array -> float * float
(** [(estimate, jackknife error)] for an arbitrary estimator. *)

val bootstrap :
  rng:Rng.t ->
  n_boot:int ->
  estimator:(float array -> float) ->
  float array ->
  float * float * float array
(** [(mean of resampled estimates, bootstrap error, all estimates)]. *)

val autocorrelation_time : ?c:float -> float array -> float
(** Integrated autocorrelation time via the Madras–Sokal windowing rule;
    0.5 means uncorrelated. *)

type histogram = {
  lo : float;
  hi : float;
  counts : int array;
  n_total : int;
}

val histogram : ?bins:int -> float array -> histogram
val histogram_bin_centers : histogram -> float array

val weighted_mean : (float * float) array -> float * float
(** Inverse-variance weighted mean of [(value, sigma)] pairs. *)
