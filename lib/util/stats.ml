(* Estimators used throughout the analysis pipeline. Resampling
   (jackknife / bootstrap) is the workhorse for correlator errors, as in
   the paper's gA analysis chain. *)

let mean a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0. a /. float_of_int n

let variance ?(ddof = 1) a =
  let n = Array.length a in
  if n <= ddof then invalid_arg "Stats.variance: too few samples";
  let m = mean a in
  let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. a in
  acc /. float_of_int (n - ddof)

let std ?ddof a = sqrt (variance ?ddof a)

let standard_error a = std a /. sqrt (float_of_int (Array.length a))

let covariance a b =
  let n = Array.length a in
  if n <> Array.length b then invalid_arg "Stats.covariance: length mismatch";
  if n < 2 then invalid_arg "Stats.covariance: too few samples";
  let ma = mean a and mb = mean b in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. ((a.(i) -. ma) *. (b.(i) -. mb))
  done;
  !acc /. float_of_int (n - 1)

let correlation a b =
  let sa = std a and sb = std b in
  if sa = 0. || sb = 0. then
    invalid_arg "Stats.correlation: zero variance (undefined, would be NaN)";
  covariance a b /. (sa *. sb)

let min_max a =
  if Array.length a = 0 then invalid_arg "Stats.min_max: empty";
  Array.fold_left
    (fun (lo, hi) x -> ((if x < lo then x else lo), if x > hi then x else hi))
    (a.(0), a.(0))
    a

let percentile a p =
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
  let frac = rank -. floor rank in
  ((1. -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))

let median a = percentile a 50.

(* ---- Resampling ---- *)

let jackknife_samples a =
  let n = Array.length a in
  if n < 2 then invalid_arg "Stats.jackknife_samples: need >= 2";
  let total = Array.fold_left ( +. ) 0. a in
  Array.init n (fun i -> (total -. a.(i)) /. float_of_int (n - 1))

let jackknife ~estimator a =
  let n = Array.length a in
  if n < 2 then invalid_arg "Stats.jackknife: need >= 2";
  let drop i = Array.init (n - 1) (fun j -> if j < i then a.(j) else a.(j + 1)) in
  let thetas = Array.init n (fun i -> estimator (drop i)) in
  let theta_bar = mean thetas in
  let var =
    Array.fold_left
      (fun acc th -> acc +. ((th -. theta_bar) *. (th -. theta_bar)))
      0. thetas
    *. (float_of_int (n - 1) /. float_of_int n)
  in
  (estimator a, sqrt var)

let bootstrap ~rng ~n_boot ~estimator a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.bootstrap: empty";
  let resample () = Array.init n (fun _ -> a.(Rng.int rng n)) in
  let thetas = Array.init n_boot (fun _ -> estimator (resample ())) in
  (mean thetas, std thetas, thetas)

(* Integrated autocorrelation time with a self-consistent window
   (Madras-Sokal): sum rho(t) until t >= c * tau_int. *)
let autocorrelation_time ?(c = 5.) a =
  let n = Array.length a in
  if n < 8 then 0.5
  else begin
    let m = mean a in
    let var0 = ref 0. in
    for i = 0 to n - 1 do
      var0 := !var0 +. ((a.(i) -. m) *. (a.(i) -. m))
    done;
    if !var0 = 0. then 0.5
    else begin
      let rho t =
        let acc = ref 0. in
        for i = 0 to n - 1 - t do
          acc := !acc +. ((a.(i) -. m) *. (a.(i + t) -. m))
        done;
        !acc /. !var0
      in
      let rec loop t tau =
        if t >= n / 2 then tau
        else
          let tau' = tau +. rho t in
          if float_of_int t >= c *. tau' then tau' else loop (t + 1) tau'
      in
      loop 1 0.5
    end
  end

(* ---- Histograms ---- *)

type histogram = {
  lo : float;
  hi : float;
  counts : int array;
  n_total : int;
}

let histogram ?(bins = 20) a =
  if Array.length a = 0 then invalid_arg "Stats.histogram: empty";
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  let lo, hi = min_max a in
  let hi = if hi = lo then lo +. 1. else hi in
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. lo) /. width) in
      let b = if b >= bins then bins - 1 else if b < 0 then 0 else b in
      counts.(b) <- counts.(b) + 1)
    a;
  { lo; hi; counts; n_total = Array.length a }

let histogram_bin_centers h =
  let bins = Array.length h.counts in
  let width = (h.hi -. h.lo) /. float_of_int bins in
  Array.init bins (fun i -> h.lo +. ((float_of_int i +. 0.5) *. width))

(* Weighted mean of (value, sigma) pairs; returns (mean, sigma). *)
let weighted_mean pairs =
  if Array.length pairs = 0 then invalid_arg "Stats.weighted_mean: empty";
  let wsum = ref 0. and xsum = ref 0. in
  Array.iter
    (fun (x, s) ->
      if s <= 0. then invalid_arg "Stats.weighted_mean: sigma <= 0";
      let w = 1. /. (s *. s) in
      wsum := !wsum +. w;
      xsum := !xsum +. (w *. x))
    pairs;
  (!xsum /. !wsum, sqrt (1. /. !wsum))
