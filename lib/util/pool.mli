(** Persistent domain pool for the multicore kernel engine: workers
    spawned once and parked on a Condition, one fork/join per kernel
    launch, deterministic fixed-order reductions.

    Determinism contract: chunk boundaries are a pure function of
    (n, chunk); [parallel_reduce] (ordered, the default) combines
    per-chunk partials in chunk-index order on the calling domain, so
    results are bit-stable run to run for a fixed geometry. A pool of
    size 1 runs jobs inline, chunk by chunk in index order. Nested
    launches (from a worker, or from the owner while a job is live)
    degrade to the inline serial path instead of deadlocking. *)

type t

val max_domains : int
(** Hard cap on pool width (well under the runtime's domain limit). *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] worker domains (the
    caller is the last lane). Default: [Domain.recommended_domain_count].
    Raises [Invalid_argument] when [domains < 1]; capped at
    [max_domains]. *)

val size : t -> int
(** Total lanes, workers + caller; 1 means fully serial. *)

val shutdown : t -> unit
(** Stop and join the workers. Idempotent. Jobs launched after
    shutdown run inline serially. *)

val chunks : n:int -> chunk:int -> (int * int) array
(** The exact partition of [0, n) a launch with this geometry uses:
    [(i·chunk, min n ((i+1)·chunk))]. Pure; shared with
    [Check.Pool_check] so the verifier audits the real geometry. *)

val default_chunk : t -> int -> int
(** Chunk chosen when the caller does not pin one: ~4 chunks per lane
    with a floor of 1024 elements. Deterministic in (pool size, n). *)

val parallel_for : t -> ?chunk:int -> n:int -> (int -> int -> unit) -> unit
(** [parallel_for t ~n f] runs [f lo hi] over the chunk partition of
    [0, n). Which lane runs which chunk is unspecified; any [f] whose
    writes depend only on the element index is bit-identical to the
    serial loop. Exceptions from chunks are re-raised (first one) on
    the calling domain after the join. *)

val parallel_reduce :
  t ->
  ?chunk:int ->
  ?ordered:bool ->
  n:int ->
  init:'a ->
  f:(int -> int -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  unit ->
  'a
(** [parallel_reduce t ~n ~init ~f ~combine ()]: each chunk is reduced
    serially by [f lo hi]; with [ordered] (default [true]) the
    partials land in a slot per chunk and are combined in chunk-index
    order on the calling domain — deterministic for a fixed (n, chunk).
    [~ordered:false] combines in completion order under a mutex:
    nondeterministic, exists as the defect class DET001 catches. *)

val set_default : t -> unit

val get_default : unit -> t
(** The process-wide pool the [Field]/[Dirac] kernels dispatch on.
    Created on first use honoring [NEUTRON_DOMAINS] (default 1, i.e.
    serial — parallel execution is strictly opt-in). Raises
    [Invalid_argument] when [NEUTRON_DOMAINS] is set but malformed: a
    requested width must never silently degrade to serial. *)

val parse_domains : string -> (int, string) result
(** [NEUTRON_DOMAINS] syntax: a positive integer, capped at
    [max_domains]. Malformed or non-positive values are [Error] with a
    message naming the variable and the offending value. *)

val shared : domains:int -> t
(** Spawn-once registry keyed by domain count — the autotuner's pooled
    candidates draw from here so geometry sweeps never respawn. *)

val shutdown_shared : unit -> unit
(** Shut down and clear every [shared] pool (resetting the default if
    it was one of them). Idle workers still join every stop-the-world
    GC section, so quiesce the registry after a tuning sweep or test
    suite; later [shared] calls respawn on demand. *)
