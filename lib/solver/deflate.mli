(** Low-mode deflation spaces: a rank-r orthonormal basis of the
    operator's lowest modes (from {!Lanczos}) with its Ritz values and
    the source-configuration hash, deflated out of every subsequent
    solve on that configuration via [?deflate] on [Cg.solve],
    [Cg.solve_multi] and [Mixed.solve]. The kernels are batched
    through [Multi_blas.block_axpy] (one sweep for the whole rank-r
    combination) and reduce through the canonical blocked [dot_re] —
    bit-identical for any pool geometry. *)

type t

val create :
  ?bound:float ->
  basis:Linalg.Field.t array ->
  values:float array ->
  config_hash:int ->
  unit ->
  t
(** Copies the basis. Raises [Invalid_argument] on an empty basis,
    rank/length mismatches, or non-positive Ritz values ([bound],
    default 1e-6, is the residual/drift bound the space claims —
    audited by [Check.Deflate_check] DEF002). *)

val of_lanczos :
  ?bound:float ->
  config_hash:int ->
  float array * Linalg.Field.t array * Lanczos.stats ->
  t
(** Wrap a [Lanczos.lowest] result as a deflation space. *)

val rank : t -> int
val values : t -> float array
val basis : t -> Linalg.Field.t array
val config_hash : t -> int
val bound : t -> float

val field_hash : Linalg.Field.t -> int
(** Deterministic FNV-1a over the raw float64 bits (stable across
    runs and processes; nonnegative). *)

val gauge_hash : Lattice.Gauge.t -> int
(** [field_hash] of the gauge configuration's raw link storage — the
    [config_hash] a space should be created with. *)

val augment : t -> r:Linalg.Field.t -> Linalg.Field.t -> unit
(** [augment t ~r x]: x += Σᵢ vᵢ (vᵢ·r)/λᵢ — the Galerkin low-mode
    correction of the guess [x] given its residual [r]. One batched
    [block_axpy] launch after the rank dots. *)

val augment_with :
  Util.Pool.t -> ?chunk:int -> t -> r:Linalg.Field.t -> Linalg.Field.t -> unit
(** Explicit-pool variant, bit-identical to [augment] for any
    geometry (the qcheck property). *)

val augment_multi :
  t -> rs:Linalg.Field.t array -> Linalg.Field.t array -> unit
(** Batched over k residuals: one k×r coefficient tile, one
    [block_axpy] launch; row i bit-identical to [augment] on
    [(rs.(i), xs.(i))]. *)

val deflated_guess : t -> b:Linalg.Field.t -> Linalg.Field.t
(** Fresh initial guess Σᵢ vᵢ (vᵢ·b)/λᵢ (i.e. [augment] of zero). *)

val project : t -> Linalg.Field.t -> unit
(** Remove the deflated span: r −= Σᵢ vᵢ (vᵢ·r). *)

val ortho_drift : t -> float
(** max |vᵢ·vⱼ − δᵢⱼ| over the basis — the orthonormality audit. *)

val max_residual :
  t -> apply:(Linalg.Field.t -> Linalg.Field.t -> unit) -> float
(** Worst |A vᵢ − λᵢ vᵢ| over the basis against a live operator. *)

val combined_guess :
  ?deflate:t ->
  ?forecast:Forecast.t ->
  apply:(Linalg.Field.t -> Linalg.Field.t -> unit) ->
  b:Linalg.Field.t ->
  unit ->
  Linalg.Field.t option
(** Chained-solve composition: the chronological [Forecast.guess]
    first (smooth correlation between consecutive sources), then the
    low-mode correction of that guess's residual (the part the
    history misses). [None] when neither contributes. *)
