(** Mixed-precision CG with reliable updates — the paper's double-half
    solver. Inner iterations run on 16-bit fixed-point storage
    ([Linalg.Field.Half]); the residual is recomputed exactly in double
    precision at each reliable update. All reductions are double
    precision. *)

type config = {
  tol : float;
  max_iter : int;
  delta : float;  (** reliable-update trigger: residual drop factor *)
  block : int;  (** floats sharing one half-precision norm (24 = site) *)
}

val default_config : config

val validate_config : n:int -> config -> (unit, string) result
(** Structural validity against a vector of [n] floats: positive
    [block] dividing [n], finite positive [tol], positive [max_iter],
    [delta] strictly inside (0,1). [solve] checks this at entry and
    raises [Invalid_argument] on failure. *)

val quantize : block:int -> Linalg.Field.t -> unit
(** Round-trip a vector through the half codec in place — the storage
    precision the inner solve sees. *)

val inner_quantizes : string list
(** The half-stored buffers the inner loop quantizes every iteration,
    in codec-pass order: [["p"; "ap"; "rs"]]. [Check.Plan_extract]
    lifts these into the plan IR's [Quantize] steps; the precision-flow
    pass verifies every half-read is preceded by one. *)

val reliable_update_kernels : fused:bool -> (string * int) list
(** The reliable-update phase (promote the sloppy solution, recompute
    the residual exactly) as (kernel, full-vector sweeps) rows in
    launch order. *)

val solve :
  ?config:config ->
  ?deflate:Deflate.t ->
  ?fused:bool ->
  ?trace:(float -> unit) ->
  apply:(Linalg.Field.t -> Linalg.Field.t -> unit) ->
  b:Linalg.Field.t ->
  flops_per_apply:float ->
  unit ->
  Linalg.Field.t * Cg.stats
(** Requires [config.block] to divide the vector length. If the
    half-precision noise floor is reached before [config.tol], returns
    with [converged = false]; callers can polish in double precision
    (see [Dwf_solve.solve]).

    [fused] (default [false]) runs both the inner sloppy loop and the
    outer reliable-update residual through the single-pass
    [Linalg.Fused] kernels — bit-identical trajectory, iteration count
    and reliable-update count vs the unfused path for any pool
    geometry. [trace] receives the inner |r|² once per inner iteration
    (post-quantization, the value the recurrence uses).

    [deflate] lives entirely in the outer double-precision world: the
    low-mode guess is folded into x at entry and the deflated span is
    cleaned out of the exact residual at every reliable update (one
    extra double-precision apply each), while the half-precision inner
    loop runs unmodified. Absent, the solve is bit-identical to
    before. *)

val solve_multi :
  ?config:config ->
  ?deflate:Deflate.t ->
  ?fused:bool ->
  ?trace:(int -> float -> unit) ->
  apply:(Linalg.Field.t array -> Linalg.Field.t array -> unit) ->
  bs:Linalg.Field.t array ->
  flops_per_apply:float ->
  unit ->
  Linalg.Field.t array * Cg.stats array
(** Batched hook mirroring [Cg.solve_multi]'s surface for the
    mixed-precision solver. The half-precision inner loop's
    quantization state is per-vector, so the current implementation
    advances the k systems as independent [solve]s over width-1
    batches of [apply] — per RHS bit-identical by construction.
    [trace i r2] receives the inner residual of system [i]. *)
