(* Conjugate gradient on the normal equations — the paper's solver
   family. The operator is a closure so the same CG drives the plain
   Wilson normal operator, the full Mobius normal operator and the
   red-black preconditioned Schur normal operator. *)

module Field = Linalg.Field

type stats = {
  iterations : int;
  converged : bool;
  relative_residual : float;  (* |r| / |b| from the recurrence *)
  true_relative_residual : float option;  (* recomputed |b - Ax| / |b| *)
  flops : float;
  seconds : float;
  reliable_updates : int;
}

let pp_stats ppf s =
  Format.fprintf ppf "iters=%d conv=%b rel_res=%.2e%s flops=%s time=%s"
    s.iterations s.converged s.relative_residual
    (match s.true_relative_residual with
    | None -> ""
    | Some r -> Printf.sprintf " true_res=%.2e" r)
    (Util.Ascii.si_float s.flops)
    (Util.Ascii.seconds s.seconds)

(* Flops of the BLAS-1 work per CG iteration on vectors of n floats.
   Unfused: dot_re p·Ap (2n) + axpy x (2n) + axpy r (2n) + norm2 r
   (2n) + xpay p (2n) = 10n. Fused: dot_re (2n) + cg_update
   (3 ops × 2n) + xpay_dot (2n update + 2n monitor dot) = 12n — the
   fused path spends two extra flops per float on the free p·r
   orthogonality monitor while moving fewer bytes. *)
let blas1_flops ?(fused = false) n =
  float_of_int ((if fused then 12 else 10) * n)

(* The BLAS-1 tail of one CG iteration as (kernel, full-vector sweeps)
   rows, in launch order — the ground truth Check.Plan_extract lifts
   into the plan IR and Plan_check's PLAN005 pass diffs against
   Machine.Perf_model.blas1_sweeps. Unfused, the p·Ap reduction is the
   leading host kernel. Fused, it is NOT a tail kernel at all: it
   rides the stencil's closing sweep ([apply_dot] below, built on
   Wilson.hop_tail / Mobius.apply_schur_normal_tail), so the fused
   tail is exactly cg_update + xpay_dot — the 2-sweep plan the model
   prices, with no whitelisted gap left. *)
let tail_kernels ~fused =
  if fused then [ ("cg_update", 1); ("xpay_dot", 1) ]
  else [ ("dot_re", 1); ("axpy", 1); ("axpy", 1); ("norm2", 1); ("xpay", 1) ]

(* The batched solve's per-iteration BLAS-1 tail over the active set,
   same convention: (kernel, per-RHS full-vector sweeps) rows in
   launch order. The batched kernels run each RHS's canonical blocked
   reduction, so the sweep counts per RHS equal the single-RHS tail's
   — which is exactly why the multi-RHS catalog plans price to a zero
   PLAN005 gap. *)
let multi_tail_kernels ~fused =
  if fused then [ ("multi_cg_update", 1); ("multi_xpay_dot", 1) ]
  else
    [ ("dot_re", 1); ("axpy", 1); ("axpy", 1); ("norm2", 1); ("xpay", 1) ]

let solve ?(x0 : Field.t option) ?deflate ?(fused = false) ?apply_dot ?trace
    ~apply ~(b : Field.t) ~tol ~max_iter ~flops_per_apply () =
  let n = Field.length b in
  let t_start = Unix.gettimeofday () in
  let x = match x0 with Some x -> Field.copy x | None -> Field.create n in
  let r = Field.create n in
  let ap = Field.create n in
  let pre_applies = ref 0 in
  (* r = b - A x *)
  (match x0 with
  | None -> Field.blit b r
  | Some _ ->
    apply x ap;
    incr pre_applies;
    Field.sub b ap r);
  (* the low-mode guess rides the entry: fold the deflated correction
     of the current residual into x, then recompute r exactly. The
     [deflate = None] path above is untouched (bit-identical). *)
  (match deflate with
  | None -> ()
  | Some d ->
    Deflate.augment d ~r x;
    apply x ap;
    incr pre_applies;
    Field.sub b ap r);
  let p = Field.copy r in
  let b2 = Field.norm2 b in
  if b2 = 0. then begin
    Field.fill x 0.;
    ( x,
      {
        iterations = 0;
        converged = true;
        relative_residual = 0.;
        true_relative_residual = Some 0.;
        flops = 0.;
        seconds = Unix.gettimeofday () -. t_start;
        reliable_updates = 0;
      } )
  end
  else begin
    let target = tol *. tol *. b2 in
    let r2 = ref (Field.norm2 r) in
    let iters = ref 0 in
    let applies = ref !pre_applies in
    while !r2 > target && !iters < max_iter do
      incr iters;
      (* ap = A p and pap = p·Ap. With a tail-capable operator the
         fused path computes the dot inside the stencil's closing
         sweep (no separate full-vector reduction — the 2-sweep plan
         Perf_model prices); the canonical blocked reduction makes it
         bit-identical to the dot_re below. *)
      let pap =
        match apply_dot with
        | Some f when fused ->
          incr applies;
          (f p ap : float)
        | _ ->
          apply p ap;
          incr applies;
          Field.dot_re p ap
      in
      if pap <= 0. then
        (* Operator not positive along p: bail out (caller sees
           converged=false). Normal equations should not hit this. *)
        iters := max_iter
      else begin
        let alpha = !r2 /. pap in
        let r2_new =
          if fused then Linalg.Fused.cg_update alpha p ap x r
          else begin
            Field.axpy alpha p x;
            Field.axpy (-.alpha) ap r;
            Field.norm2 r
          end
        in
        let beta = r2_new /. !r2 in
        r2 := r2_new;
        (* p = r + beta p. The fused kernel also returns p·r — in
           exact arithmetic |r|², a free orthogonality monitor riding
           the sweep; the recurrence doesn't consume it. *)
        if fused then ignore (Linalg.Fused.xpay_dot r beta p r : float)
        else Field.xpay r beta p;
        match trace with Some f -> f r2_new | None -> ()
      end
    done;
    (* true residual *)
    apply x ap;
    incr applies;
    Field.sub b ap ap;
    let true_res = sqrt (Field.norm2 ap /. b2) in
    let flops =
      (float_of_int !applies *. flops_per_apply)
      +. (float_of_int !iters *. blas1_flops ~fused n)
    in
    ( x,
      {
        iterations = !iters;
        converged = !r2 <= target;
        relative_residual = sqrt (!r2 /. b2);
        true_relative_residual = Some true_res;
        flops;
        seconds = Unix.gettimeofday () -. t_start;
        reliable_updates = 0;
      } )
  end

(* ---- batched multi-RHS front end ----
   k systems against one operator, advanced in lockstep with per-RHS
   convergence masking: a converged (or bailed-out) RHS leaves the
   active set, runs its true-residual finalization, and never touches
   the batched kernels again, while every surviving RHS executes
   *exactly* the scalar recurrence and vector kernels of its
   independent [solve] — per-RHS alpha/beta from that RHS's own
   canonical blocked reductions, batched updates through
   [Linalg.Multi_blas] whose slot i is bit-identical to the
   single-vector fused kernel. Consequence: for an operator whose
   batched application is per-RHS bit-identical to its single-RHS form
   (Wilson.hop_multi / Mobius.apply_schur_normal_multi, or any
   per-RHS loop), the returned xs.(i) and trajectory are bit-identical
   to [solve] on (bs.(i), x0s.(i)) — the property the @multirhs qcheck
   suite pins down. *)
let solve_multi ?(x0s : Field.t array option) ?deflate ?(fused = false) ?trace
    ~apply ~(bs : Field.t array) ~tol ~max_iter ~flops_per_apply () =
  let k = Array.length bs in
  if k = 0 then invalid_arg "Cg.solve_multi: empty batch";
  let n = Field.length bs.(0) in
  Array.iter
    (fun (b : Field.t) ->
      if Field.length b <> n then invalid_arg "Cg.solve_multi: length mismatch")
    bs;
  (match x0s with
  | Some xs when Array.length xs <> k ->
    invalid_arg "Cg.solve_multi: x0s width mismatch"
  | _ -> ());
  let t_start = Unix.gettimeofday () in
  let xs =
    Array.init k (fun i ->
        match x0s with Some x0 -> Field.copy x0.(i) | None -> Field.create n)
  in
  let rs = Array.init k (fun _ -> Field.create n) in
  let aps = Array.init k (fun _ -> Field.create n) in
  let applies = Array.make k 0 in
  (* r = b - A x; the guess-seeded residual uses one batched apply *)
  (match x0s with
  | None -> Array.iteri (fun i b -> Field.blit b rs.(i)) bs
  | Some _ ->
    apply xs aps;
    Array.iteri
      (fun i (b : Field.t) ->
        applies.(i) <- applies.(i) + 1;
        Field.sub b aps.(i) rs.(i))
      bs);
  (* the batched low-mode guess: one k×r coefficient tile and one
     block_axpy launch fold the deflated correction into every guess,
     then one batched apply recomputes the residuals exactly. Row i is
     bit-identical to the single-RHS [solve ?deflate] entry. *)
  (match deflate with
  | None -> ()
  | Some d ->
    Deflate.augment_multi d ~rs xs;
    apply xs aps;
    Array.iteri
      (fun i (b : Field.t) ->
        applies.(i) <- applies.(i) + 1;
        Field.sub b aps.(i) rs.(i))
      bs);
  let ps = Array.init k (fun i -> Field.copy rs.(i)) in
  let b2s = Array.map Field.norm2 bs in
  let targets = Array.map (fun b2 -> tol *. tol *. b2) b2s in
  let r2s = Array.map Field.norm2 rs in
  let iters = Array.make k 0 in
  let out = Array.make k None in
  let finalize i =
    (* the independent solve's closing true-residual pass, one RHS *)
    apply [| xs.(i) |] [| aps.(i) |];
    applies.(i) <- applies.(i) + 1;
    Field.sub bs.(i) aps.(i) aps.(i);
    let true_res = sqrt (Field.norm2 aps.(i) /. b2s.(i)) in
    let flops =
      (float_of_int applies.(i) *. flops_per_apply)
      +. (float_of_int iters.(i) *. blas1_flops ~fused n)
    in
    out.(i) <-
      Some
        {
          iterations = iters.(i);
          converged = r2s.(i) <= targets.(i);
          relative_residual = sqrt (r2s.(i) /. b2s.(i));
          true_relative_residual = Some true_res;
          flops;
          seconds = Unix.gettimeofday () -. t_start;
          reliable_updates = 0;
        }
  in
  let active = Array.make k false in
  Array.iteri
    (fun i b2 ->
      if b2 = 0. then begin
        (* the zero-source early return, per RHS *)
        Field.fill xs.(i) 0.;
        out.(i) <-
          Some
            {
              iterations = 0;
              converged = true;
              relative_residual = 0.;
              true_relative_residual = Some 0.;
              flops = 0.;
              seconds = Unix.gettimeofday () -. t_start;
              reliable_updates = 0;
            }
      end
      else if r2s.(i) <= targets.(i) || max_iter <= 0 then finalize i
      else active.(i) <- true)
    b2s;
  let any_active () = Array.exists (fun a -> a) active in
  let sub (vs : Field.t array) (idx : int array) =
    Array.map (fun i -> vs.(i)) idx
  in
  while any_active () do
    let act =
      Array.of_list
        (List.filter (fun i -> active.(i)) (List.init k (fun i -> i)))
    in
    (* one batched operator sweep over the active set *)
    apply (sub ps act) (sub aps act);
    Array.iter
      (fun i ->
        iters.(i) <- iters.(i) + 1;
        applies.(i) <- applies.(i) + 1)
      act;
    let paps = Array.map (fun i -> Field.dot_re ps.(i) aps.(i)) act in
    (* a non-positive p·Ap bails that RHS out exactly as [solve] does *)
    Array.iteri
      (fun j i ->
        if paps.(j) <= 0. then begin
          iters.(i) <- max_iter;
          active.(i) <- false;
          finalize i
        end)
      act;
    let upd = Array.of_list (List.filter (fun i -> active.(i)) (Array.to_list act)) in
    if Array.length upd > 0 then begin
      (* per-RHS alpha from that RHS's own reduction *)
      let pap_of =
        let tbl = Hashtbl.create (Array.length act) in
        Array.iteri (fun j i -> Hashtbl.replace tbl i paps.(j)) act;
        fun i -> Hashtbl.find tbl i
      in
      let alphas = Array.map (fun i -> r2s.(i) /. pap_of i) upd in
      let r2_news =
        if fused then
          Linalg.Multi_blas.cg_update alphas (sub ps upd) (sub aps upd)
            (sub xs upd) (sub rs upd)
        else
          Array.map
            (fun i ->
              let alpha = r2s.(i) /. pap_of i in
              Field.axpy alpha ps.(i) xs.(i);
              Field.axpy (-.alpha) aps.(i) rs.(i);
              Field.norm2 rs.(i))
            upd
      in
      let betas =
        Array.mapi (fun j i -> r2_news.(j) /. r2s.(i)) upd
      in
      Array.iteri (fun j i -> r2s.(i) <- r2_news.(j)) upd;
      (* p = r + beta p (the fused path's p·r monitor rides the sweep) *)
      if fused then
        ignore
          (Linalg.Multi_blas.xpay_dot (sub rs upd) betas (sub ps upd)
             (sub rs upd)
            : float array)
      else Array.iteri (fun j i -> Field.xpay rs.(i) betas.(j) ps.(i)) upd;
      (match trace with
      | Some f -> Array.iteri (fun j i -> f i r2_news.(j)) upd
      | None -> ());
      (* masking: converged or exhausted RHS leave the batch *)
      Array.iter
        (fun i ->
          if r2s.(i) <= targets.(i) || iters.(i) >= max_iter then begin
            active.(i) <- false;
            finalize i
          end)
        upd
    end
  done;
  (xs, Array.map Option.get out)
