(* Conjugate gradient on the normal equations — the paper's solver
   family. The operator is a closure so the same CG drives the plain
   Wilson normal operator, the full Mobius normal operator and the
   red-black preconditioned Schur normal operator. *)

module Field = Linalg.Field

type stats = {
  iterations : int;
  converged : bool;
  relative_residual : float;  (* |r| / |b| from the recurrence *)
  true_relative_residual : float option;  (* recomputed |b - Ax| / |b| *)
  flops : float;
  seconds : float;
  reliable_updates : int;
}

let pp_stats ppf s =
  Format.fprintf ppf "iters=%d conv=%b rel_res=%.2e%s flops=%s time=%s"
    s.iterations s.converged s.relative_residual
    (match s.true_relative_residual with
    | None -> ""
    | Some r -> Printf.sprintf " true_res=%.2e" r)
    (Util.Ascii.si_float s.flops)
    (Util.Ascii.seconds s.seconds)

(* Flops of the BLAS-1 work per CG iteration on vectors of n floats.
   Unfused: dot_re p·Ap (2n) + axpy x (2n) + axpy r (2n) + norm2 r
   (2n) + xpay p (2n) = 10n. Fused: dot_re (2n) + cg_update
   (3 ops × 2n) + xpay_dot (2n update + 2n monitor dot) = 12n — the
   fused path spends two extra flops per float on the free p·r
   orthogonality monitor while moving fewer bytes. *)
let blas1_flops ?(fused = false) n =
  float_of_int ((if fused then 12 else 10) * n)

(* The BLAS-1 tail of one CG iteration as (kernel, full-vector sweeps)
   rows, in launch order — the ground truth Check.Plan_extract lifts
   into the plan IR and Plan_check's PLAN005 pass diffs against
   Machine.Perf_model.blas1_sweeps. Unfused, the p·Ap reduction is the
   leading host kernel. Fused, it is NOT a tail kernel at all: it
   rides the stencil's closing sweep ([apply_dot] below, built on
   Wilson.hop_tail / Mobius.apply_schur_normal_tail), so the fused
   tail is exactly cg_update + xpay_dot — the 2-sweep plan the model
   prices, with no whitelisted gap left. *)
let tail_kernels ~fused =
  if fused then [ ("cg_update", 1); ("xpay_dot", 1) ]
  else [ ("dot_re", 1); ("axpy", 1); ("axpy", 1); ("norm2", 1); ("xpay", 1) ]

let solve ?(x0 : Field.t option) ?(fused = false) ?apply_dot ?trace ~apply
    ~(b : Field.t) ~tol ~max_iter ~flops_per_apply () =
  let n = Field.length b in
  let t_start = Unix.gettimeofday () in
  let x = match x0 with Some x -> Field.copy x | None -> Field.create n in
  let r = Field.create n in
  let ap = Field.create n in
  (* r = b - A x *)
  (match x0 with
  | None -> Field.blit b r
  | Some _ ->
    apply x ap;
    Field.sub b ap r);
  let p = Field.copy r in
  let b2 = Field.norm2 b in
  if b2 = 0. then begin
    Field.fill x 0.;
    ( x,
      {
        iterations = 0;
        converged = true;
        relative_residual = 0.;
        true_relative_residual = Some 0.;
        flops = 0.;
        seconds = Unix.gettimeofday () -. t_start;
        reliable_updates = 0;
      } )
  end
  else begin
    let target = tol *. tol *. b2 in
    let r2 = ref (Field.norm2 r) in
    let iters = ref 0 in
    let applies = ref (match x0 with None -> 0 | Some _ -> 1) in
    while !r2 > target && !iters < max_iter do
      incr iters;
      (* ap = A p and pap = p·Ap. With a tail-capable operator the
         fused path computes the dot inside the stencil's closing
         sweep (no separate full-vector reduction — the 2-sweep plan
         Perf_model prices); the canonical blocked reduction makes it
         bit-identical to the dot_re below. *)
      let pap =
        match apply_dot with
        | Some f when fused ->
          incr applies;
          (f p ap : float)
        | _ ->
          apply p ap;
          incr applies;
          Field.dot_re p ap
      in
      if pap <= 0. then
        (* Operator not positive along p: bail out (caller sees
           converged=false). Normal equations should not hit this. *)
        iters := max_iter
      else begin
        let alpha = !r2 /. pap in
        let r2_new =
          if fused then Linalg.Fused.cg_update alpha p ap x r
          else begin
            Field.axpy alpha p x;
            Field.axpy (-.alpha) ap r;
            Field.norm2 r
          end
        in
        let beta = r2_new /. !r2 in
        r2 := r2_new;
        (* p = r + beta p. The fused kernel also returns p·r — in
           exact arithmetic |r|², a free orthogonality monitor riding
           the sweep; the recurrence doesn't consume it. *)
        if fused then ignore (Linalg.Fused.xpay_dot r beta p r : float)
        else Field.xpay r beta p;
        match trace with Some f -> f r2_new | None -> ()
      end
    done;
    (* true residual *)
    apply x ap;
    incr applies;
    Field.sub b ap ap;
    let true_res = sqrt (Field.norm2 ap /. b2) in
    let flops =
      (float_of_int !applies *. flops_per_apply)
      +. (float_of_int !iters *. blas1_flops ~fused n)
    in
    ( x,
      {
        iterations = !iters;
        converged = !r2 <= target;
        relative_residual = sqrt (!r2 /. b2);
        true_relative_residual = Some true_res;
        flops;
        seconds = Unix.gettimeofday () -. t_start;
        reliable_updates = 0;
      } )
  end
