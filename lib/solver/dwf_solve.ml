(* End-to-end Mobius domain-wall solves: the propagator kernel of the
   paper's workflow (Fig 2). Wires the red-black preconditioned Schur
   operator into CG (double or mixed double-half), with the
   unpreconditioned normal-equation path kept as the oracle. *)

module Field = Linalg.Field
module Mobius = Dirac.Mobius

type precision = Double | Mixed of Mixed.config

type t = {
  params : Mobius.params;
  geom : Lattice.Geometry.t;
  full : Mobius.t;
  eo : Mobius.eo;
}

(* [gauge] must already carry the fermion boundary phases
   (Lattice.Gauge.with_antiperiodic_time). *)
let create params geom gauge =
  {
    params;
    geom;
    full = Mobius.of_geometry params geom gauge;
    eo = Mobius.of_geometry_eo params geom gauge;
  }

let field_length t = Mobius.field_length t.full
let geom_of t = t.geom
let params_of t = t.params

(* Solve D x = rhs through the even/odd Schur complement:
     1. y'_o = y_o - Hop_oe M5inv y_e
     2. CG on S^dag S x_o = S^dag y'_o
     3. x_e = M5inv (y_e - Hop_eo x_o)  *)
let solve ?(precision = Double) ?(fused = false) ?(tol = 1e-10)
    ?(max_iter = 10_000) t ~(rhs : Field.t) =
  let l5 = t.params.Mobius.l5 in
  let rhs_even, rhs_odd = Mobius.split_eo t.geom ~l5 rhs in
  let y' = Mobius.prepare_rhs t.eo ~rhs_even ~rhs_odd in
  (* normal-equation right-hand side: S^dag y' *)
  let b = Mobius.create_eo_field t.eo in
  Mobius.apply_schur_dagger t.eo ~src:y' ~dst:b;
  let apply src dst = Mobius.apply_schur_normal t.eo ~src ~dst in
  (* Tail-capable operator for the fused path: the p·Ap reduction of
     the CG iteration rides the Schur chain's closing sweep
     (Mobius.apply_schur_normal_tail) instead of a separate dot_re —
     the 2-sweep BLAS-1 plan. Bit-identical to apply + dot_re. *)
  let apply_dot src dst =
    Mobius.apply_schur_normal_tail t.eo ~src ~dst
      ~tail:(Linalg.Fused.tail ~dot:src ())
  in
  let n5_half =
    float_of_int (l5 * Lattice.Geometry.half_volume t.geom)
  in
  let flops_per_apply = n5_half *. float_of_int Dirac.Flops.schur_normal_per_5d_site in
  let x_odd, stats =
    match precision with
    | Double -> Cg.solve ~fused ~apply ~apply_dot ~b ~tol ~max_iter ~flops_per_apply ()
    | Mixed config ->
      let x, st =
        Mixed.solve ~config:{ config with tol; max_iter } ~fused ~apply ~b
          ~flops_per_apply ()
      in
      if st.Cg.converged then (x, st)
      else
        (* Half-precision noise floor reached: polish in double from
           the mixed solution, counting both phases. *)
        let x2, st2 =
          Cg.solve ~x0:x ~fused ~apply ~apply_dot ~b ~tol ~max_iter
            ~flops_per_apply ()
        in
        ( x2,
          {
            st2 with
            Cg.iterations = st.Cg.iterations + st2.Cg.iterations;
            flops = st.Cg.flops +. st2.Cg.flops;
            seconds = st.Cg.seconds +. st2.Cg.seconds;
            reliable_updates = st.Cg.reliable_updates;
          } )
  in
  let x_even = Mobius.reconstruct_even t.eo ~rhs_even ~x_odd in
  let x = Mobius.merge_eo t.geom ~l5 ~even:x_even ~odd:x_odd in
  (x, stats)

(* Oracle path: CG on the unpreconditioned D^dag D. *)
let solve_full ?(tol = 1e-10) ?(max_iter = 20_000) t ~(rhs : Field.t) =
  let b = Mobius.create_field t.full in
  Mobius.apply_dagger t.full ~src:rhs ~dst:b;
  let apply src dst = Mobius.apply_normal t.full ~src ~dst in
  let n5 = float_of_int (t.params.Mobius.l5 * Lattice.Geometry.volume t.geom) in
  let flops_per_apply =
    n5 *. 2. *. float_of_int (Dirac.Flops.hop5_per_5d_site + Dirac.Flops.m5_per_5d_site)
  in
  Cg.solve ~apply ~b ~tol ~max_iter ~flops_per_apply ()

(* Residual check in the full 5D space: |D x - rhs| / |rhs|. *)
let residual t ~x ~rhs =
  let dx = Mobius.create_field t.full in
  Mobius.apply t.full ~src:x ~dst:dx;
  let diff = Field.create (Field.length rhs) in
  Field.sub dx rhs diff;
  sqrt (Field.norm2 diff /. Field.norm2 rhs)
