(* Spectral estimates for hermitian positive operators (the CG normal
   operators): power iteration for the largest eigenvalue, CG-based
   inverse iteration for the smallest, and the condition number that
   controls CG's convergence rate — the quantity behind lattice QCD's
   "critical slowing down" as the quark mass approaches zero. *)

module Field = Linalg.Field

type estimate = {
  lambda_max : float;
  lambda_min : float;
  condition_number : float;
  iterations_max : int;
  iterations_min : int;
}

(* Largest eigenvalue by power iteration. *)
let power_max ?(tol = 1e-6) ?(max_iter = 500) ~apply ~n ~rng () =
  let v = Field.create n in
  Field.gaussian rng v;
  Field.scale (1. /. Field.norm v) v;
  let av = Field.create n in
  let lambda = ref 0. in
  let iters = ref 0 in
  let converged = ref false in
  while (not !converged) && !iters < max_iter do
    incr iters;
    apply v av;
    let l = Field.dot_re v av in
    if abs_float (l -. !lambda) <= tol *. Float.max 1. (abs_float l) then
      converged := true;
    lambda := l;
    let nrm = Field.norm av in
    if nrm = 0. then converged := true
    else begin
      Field.blit av v;
      Field.scale (1. /. nrm) v
    end
  done;
  (!lambda, !iters)

(* Smallest eigenvalue by inverse power iteration; each step solves
   A w = v with CG. [x0] warm-starts the iteration vector (e.g. the
   previous gauge configuration's lowest mode, for deflation setup
   reuse); absent, the start is the same gaussian draw as always —
   the default path is bit-identical to before. *)
let power_min ?(tol = 1e-6) ?(max_iter = 50) ?(cg_tol = 1e-8) ?x0 ~apply ~n
    ~rng () =
  let v = Field.create n in
  (match x0 with
  | Some (w : Field.t) ->
    if Field.length w <> n then invalid_arg "Eigen.power_min: x0 length";
    Field.blit w v
  | None -> Field.gaussian rng v);
  Field.scale (1. /. Field.norm v) v;
  let lambda = ref infinity in
  let iters = ref 0 in
  let converged = ref false in
  let av = Field.create n in
  while (not !converged) && !iters < max_iter do
    incr iters;
    let w, st =
      Cg.solve ~apply ~b:v ~tol:cg_tol ~max_iter:20_000 ~flops_per_apply:1. ()
    in
    if not st.Cg.converged then converged := true
    else begin
      let nrm = Field.norm w in
      Field.blit w v;
      Field.scale (1. /. nrm) v;
      apply v av;
      let l = Field.dot_re v av in
      if abs_float (l -. !lambda) <= tol *. Float.max 1e-30 (abs_float l) then
        converged := true;
      lambda := l
    end
  done;
  (!lambda, !iters)

let condition_number ?(rng = Util.Rng.create 1) ~apply ~n () =
  let lambda_max, it_max = power_max ~apply ~n ~rng () in
  let lambda_min, it_min = power_min ~apply ~n ~rng () in
  {
    lambda_max;
    lambda_min;
    condition_number = lambda_max /. Float.max 1e-300 lambda_min;
    iterations_max = it_max;
    iterations_min = it_min;
  }

(* CG's classical iteration bound: iters ~ (1/2) sqrt(kappa) ln(2/tol). *)
let cg_iteration_bound ~condition_number ~tol =
  0.5 *. sqrt condition_number *. log (2. /. tol)
