(** Thick-restart Lanczos for the lowest eigenpairs of a hermitian
    positive operator — the builder behind {!Deflate}. The complex
    operator is iterated as a real-symmetric operator (same spectrum,
    doubled multiplicity), so every reduction is a canonical blocked
    [Field.dot_re]/[Field.norm] and every basis combination a
    [Multi_blas.block_axpy]: the returned basis and Ritz values are
    bit-identical for any pool geometry at a fixed rank. *)

type stats = {
  applies : int;  (** operator applications spent *)
  restarts : int;  (** thick-restart cycles after the first *)
  residuals : float array;  (** per kept pair, |A v − λ v| *)
  converged : bool;
}

val pp_stats : Format.formatter -> stats -> unit

val sym_eig : float array array -> float array * float array array
(** Dense symmetric eigensolver (deterministic cyclic Jacobi):
    [(vals, vecs)] with eigenvalues ascending and [vecs.(k)] the
    eigenvector of [vals.(k)]. Exposed for the projected-matrix
    property tests. *)

val lowest :
  ?tol:float ->
  ?max_restarts:int ->
  ?basis_size:int ->
  ?v0:Linalg.Field.t ->
  rank:int ->
  apply:(Linalg.Field.t -> Linalg.Field.t -> unit) ->
  n:int ->
  rng:Util.Rng.t ->
  unit ->
  float array * Linalg.Field.t array * stats
(** [lowest ~rank ~apply ~n ~rng ()] returns the [rank] lowest Ritz
    values (ascending), their orthonormal Ritz vectors, and the run
    stats. Convergence: every kept pair's residual |A v − λ v| falls
    under [tol]·(largest Ritz value). [basis_size] (default
    [max (2·rank) (rank+6)], must exceed [rank]) is the working basis
    per cycle; [v0] warm-starts the first direction (e.g. the previous
    config's lowest mode via [Eigen.power_min]); [max_restarts]
    (default 60) bounds the thick-restart cycles. *)
