(** Spectral estimates for hermitian positive operators: the condition
    number behind CG's convergence rate and lattice QCD's critical
    slowing down toward light quark masses. *)

type estimate = {
  lambda_max : float;
  lambda_min : float;
  condition_number : float;
  iterations_max : int;  (** power iterations used *)
  iterations_min : int;  (** inverse iterations used *)
}

val power_max :
  ?tol:float ->
  ?max_iter:int ->
  apply:(Linalg.Field.t -> Linalg.Field.t -> unit) ->
  n:int ->
  rng:Util.Rng.t ->
  unit ->
  float * int
(** Largest eigenvalue by power iteration; returns (λ, iterations). *)

val power_min :
  ?tol:float ->
  ?max_iter:int ->
  ?cg_tol:float ->
  ?x0:Linalg.Field.t ->
  apply:(Linalg.Field.t -> Linalg.Field.t -> unit) ->
  n:int ->
  rng:Util.Rng.t ->
  unit ->
  float * int
(** Smallest eigenvalue by CG-based inverse iteration. [x0]
    warm-starts the iteration vector (normalized copy) — e.g. the
    previous configuration's lowest mode when rebuilding a deflation
    space across a stream of configs; absent, the gaussian start is
    bit-identical to before. *)

val condition_number :
  ?rng:Util.Rng.t ->
  apply:(Linalg.Field.t -> Linalg.Field.t -> unit) ->
  n:int ->
  unit ->
  estimate

val cg_iteration_bound : condition_number:float -> tol:float -> float
(** Classical bound: ~(1/2)·sqrt(κ)·ln(2/tol) iterations. *)
