(* Thick-restart Lanczos for the lowest eigenpairs of a hermitian
   positive operator — the deflation-space builder. The complex
   operator on C^(n/2) is symmetric on R^n with the same spectrum
   (each eigenvalue twice), so the whole iteration runs on the real
   kernels: every inner product is [Field.dot_re]/[Field.norm] (the
   canonical blocked reductions) and every basis combination is
   [Multi_blas.block_axpy], which makes the computed basis and Ritz
   values bit-identical for any pool geometry — the same determinism
   contract every kernel since PR 4 has carried.

   Shape of one cycle: grow the orthonormal basis to [basis_size]
   vectors with full (two-pass classical Gram-Schmidt)
   reorthogonalization, each new direction seeded by A·(previous
   vector); project A onto the basis (the operator images are kept, so
   the projection costs dots, not applies); diagonalize the small
   matrix with a deterministic cyclic Jacobi sweep; keep the lowest
   [rank] Ritz pairs. On restart the kept Ritz vectors *and their
   operator images* become the new leading basis — the thick restart —
   so each later cycle spends only (basis_size − rank) applies. *)

module Field = Linalg.Field

type stats = {
  applies : int;
  restarts : int;
  residuals : float array;  (* per kept pair, |A v − λ v| *)
  converged : bool;
}

let pp_stats ppf s =
  Format.fprintf ppf "applies=%d restarts=%d conv=%b max_res=%.2e" s.applies
    s.restarts s.converged
    (Array.fold_left Float.max 0. s.residuals)

(* ---- dense symmetric eigensolver (cyclic Jacobi) ----
   Deterministic: fixed sweep order, fixed rotation formulas, fixed
   ascending sort with index tie-break. Plenty for the m ≤ a few dozen
   projected matrices Lanczos produces. *)
let sym_eig (a : float array array) =
  let m = Array.length a in
  let h = Array.map Array.copy a in
  let v =
    Array.init m (fun i -> Array.init m (fun j -> if i = j then 1. else 0.))
  in
  let off_norm2 () =
    let s = ref 0. in
    for i = 0 to m - 1 do
      for j = 0 to m - 1 do
        if i <> j then s := !s +. (h.(i).(j) *. h.(i).(j))
      done
    done;
    !s
  in
  let frob2 =
    let s = ref 0. in
    Array.iter (Array.iter (fun x -> s := !s +. (x *. x))) h;
    Float.max !s 1e-300
  in
  let sweeps = ref 0 in
  while off_norm2 () > 1e-30 *. frob2 && !sweeps < 64 do
    incr sweeps;
    for p = 0 to m - 2 do
      for q = p + 1 to m - 1 do
        let apq = h.(p).(q) in
        if apq <> 0. then begin
          let theta = (h.(q).(q) -. h.(p).(p)) /. (2. *. apq) in
          let t =
            (if theta >= 0. then 1. else -1.)
            /. (abs_float theta +. sqrt ((theta *. theta) +. 1.))
          in
          let c = 1. /. sqrt ((t *. t) +. 1.) in
          let s = t *. c in
          for i = 0 to m - 1 do
            let hip = h.(i).(p) and hiq = h.(i).(q) in
            h.(i).(p) <- (c *. hip) -. (s *. hiq);
            h.(i).(q) <- (s *. hip) +. (c *. hiq)
          done;
          for i = 0 to m - 1 do
            let hpi = h.(p).(i) and hqi = h.(q).(i) in
            h.(p).(i) <- (c *. hpi) -. (s *. hqi);
            h.(q).(i) <- (s *. hpi) +. (c *. hqi)
          done;
          for i = 0 to m - 1 do
            let vip = v.(i).(p) and viq = v.(i).(q) in
            v.(i).(p) <- (c *. vip) -. (s *. viq);
            v.(i).(q) <- (s *. vip) +. (c *. viq)
          done
        end
      done
    done
  done;
  let order = Array.init m (fun i -> i) in
  Array.sort
    (fun i j ->
      let c = compare h.(i).(i) h.(j).(j) in
      if c <> 0 then c else compare i j)
    order;
  let vals = Array.map (fun i -> h.(i).(i)) order in
  (* eigenvector k is column order.(k) of the accumulated rotations *)
  let vecs =
    Array.map (fun k -> Array.init m (fun i -> v.(i).(k))) order
  in
  (vals, vecs)

(* Two-pass classical Gram-Schmidt against basis[0..sz-1], then
   normalize; false when the candidate collapses into the span. *)
let orthonormalize basis sz (w : Field.t) =
  for _pass = 0 to 1 do
    for j = 0 to sz - 1 do
      let c = Field.dot_re basis.(j) w in
      Field.axpy (-.c) basis.(j) w
    done
  done;
  let nrm = Field.norm w in
  if nrm > 1e-140 then begin
    Field.scale (1. /. nrm) w;
    true
  end
  else false

let lowest ?(tol = 1e-8) ?(max_restarts = 60) ?basis_size ?v0 ~rank ~apply ~n
    ~rng () =
  if rank < 1 then invalid_arg "Lanczos.lowest: rank >= 1";
  let m = match basis_size with Some m -> m | None -> max (2 * rank) (rank + 6) in
  if m <= rank then invalid_arg "Lanczos.lowest: basis_size must exceed rank";
  if m > n then invalid_arg "Lanczos.lowest: basis_size exceeds the dimension";
  let vs = Array.init m (fun _ -> Field.create n) in
  let avs = Array.init m (fun _ -> Field.create n) in
  let ritz = Array.init rank (fun _ -> Field.create n) in
  let aritz = Array.init rank (fun _ -> Field.create n) in
  let tmp = Field.create n in
  let residuals = Array.make rank infinity in
  let values = Array.make rank 0. in
  let applies = ref 0 in
  let restarts = ref 0 in
  let converged = ref false in
  let sz = ref 0 in
  (* first expansion direction: the warm start or fresh noise *)
  (match v0 with
  | Some v ->
    if Field.length v <> n then invalid_arg "Lanczos.lowest: v0 length";
    Field.blit v vs.(0)
  | None -> Field.gaussian rng vs.(0));
  let place_candidate slot =
    (* candidate already sits in vs.(slot); replace with fresh noise if
       it collapsed into the span (degenerate warm starts, breakdown) *)
    let attempts = ref 0 in
    while (not (orthonormalize vs !sz vs.(slot))) && !attempts < 8 do
      incr attempts;
      Field.gaussian rng vs.(slot)
    done
  in
  let expand () =
    while !sz < m do
      let slot = !sz in
      place_candidate slot;
      apply vs.(slot) avs.(slot);
      incr applies;
      sz := slot + 1;
      (* the Lanczos direction for the next slot: A·(this vector); the
         full reorthogonalization above reduces it to the three-term
         recurrence in exact arithmetic and repairs it in floats *)
      if !sz < m then Field.blit avs.(slot) vs.(!sz)
    done
  in
  let finished = ref false in
  while not !finished do
    expand ();
    (* Rayleigh–Ritz on the full basis: H = Vᵀ A V from the stored
       operator images (dots only), symmetrized deterministically *)
    let h = Array.make_matrix m m 0. in
    for i = 0 to m - 1 do
      for j = 0 to m - 1 do
        h.(i).(j) <- Field.dot_re vs.(i) avs.(j)
      done
    done;
    for i = 0 to m - 1 do
      for j = i + 1 to m - 1 do
        let s = 0.5 *. (h.(i).(j) +. h.(j).(i)) in
        h.(i).(j) <- s;
        h.(j).(i) <- s
      done
    done;
    let vals, y = sym_eig h in
    (* lowest-[rank] Ritz vectors and their operator images, one
       batched multi-blas launch each *)
    let coeff = Array.init rank (fun i -> y.(i)) in
    Array.iter (fun v -> Field.fill v 0.) ritz;
    Array.iter (fun v -> Field.fill v 0.) aritz;
    Linalg.Multi_blas.block_axpy coeff vs ritz;
    Linalg.Multi_blas.block_axpy coeff avs aritz;
    let scale = Float.max (abs_float vals.(m - 1)) 1e-30 in
    for i = 0 to rank - 1 do
      values.(i) <- vals.(i);
      Field.blit aritz.(i) tmp;
      Field.axpy (-.vals.(i)) ritz.(i) tmp;
      residuals.(i) <- Field.norm tmp
    done;
    converged :=
      Array.for_all (fun r -> r <= tol *. scale) residuals;
    if !converged || !restarts >= max_restarts then finished := true
    else begin
      (* thick restart: kept Ritz pairs lead the next basis *)
      incr restarts;
      for i = 0 to rank - 1 do
        Field.blit ritz.(i) vs.(i);
        Field.blit aritz.(i) avs.(i)
      done;
      sz := rank;
      (* next expansion direction: the worst unconverged pair's
         residual (A v − λ v), the classical restart vector *)
      let j = ref 0 in
      for i = rank - 1 downto 0 do
        if residuals.(i) > tol *. scale then j := i
      done;
      Field.blit aritz.(!j) vs.(rank);
      Field.axpy (-.values.(!j)) ritz.(!j) vs.(rank)
    end
  done;
  ( Array.sub values 0 rank,
    ritz,
    {
      applies = !applies;
      restarts = !restarts;
      residuals = Array.copy residuals;
      converged = !converged;
    } )
