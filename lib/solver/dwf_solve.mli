(** End-to-end Möbius domain-wall solves: the propagator kernel of the
    paper's workflow. Wires the red-black Schur operator into CG
    (double or mixed double-half); keeps the unpreconditioned path as
    the oracle. *)

type precision = Double | Mixed of Mixed.config

type t = {
  params : Dirac.Mobius.params;
  geom : Lattice.Geometry.t;
  full : Dirac.Mobius.t;
  eo : Dirac.Mobius.eo;
}

val create : Dirac.Mobius.params -> Lattice.Geometry.t -> Lattice.Gauge.t -> t
(** The gauge field must already carry the fermion boundary phases
    ([Lattice.Gauge.with_antiperiodic_time]). *)

val field_length : t -> int
(** Floats in a full 5D field. *)

val geom_of : t -> Lattice.Geometry.t
val params_of : t -> Dirac.Mobius.params

val solve :
  ?precision:precision ->
  ?fused:bool ->
  ?tol:float ->
  ?max_iter:int ->
  t ->
  rhs:Linalg.Field.t ->
  Linalg.Field.t * Cg.stats
(** Solve D x = rhs through the even/odd Schur complement. A mixed
    solve that hits the half-precision floor is polished in double;
    the returned stats aggregate both phases. [fused] (default
    [false]) threads the single-pass [Linalg.Fused] BLAS-1 kernels
    through every solve phase (inner mixed, outer reliable updates,
    double polish), and in the double phases additionally rides the
    p·Ap reduction on the Schur chain's closing sweep
    ([Dirac.Mobius.apply_schur_normal_tail] via [Cg.solve]'s
    [apply_dot]) — the 2-sweep BLAS-1 plan — with bit-identical
    results. *)

val solve_full :
  ?tol:float -> ?max_iter:int -> t -> rhs:Linalg.Field.t -> Linalg.Field.t * Cg.stats
(** Oracle: CG on the unpreconditioned D†D. *)

val residual : t -> x:Linalg.Field.t -> rhs:Linalg.Field.t -> float
(** |D x − rhs| / |rhs| in the full 5D space. *)
