(* BiCGStab on the (non-hermitian) operator itself — the standard
   alternative to CG on the normal equations for Wilson-like systems.
   Included as a baseline: for domain-wall fermions the paper's
   production choice is CGNE ("the state-of-the-art technique is to
   utilize conjugate gradient on the normal equations"); the bench
   ablation shows BiCGStab struggling on the 5D operator, which is why.
   Complex arithmetic on interleaved fields, double-precision
   reductions. *)

module Field = Linalg.Field
module Cplx = Linalg.Cplx

let cadd (ar, ai) (br, bi) = (ar +. br, ai +. bi)
let cmul (ar, ai) (br, bi) = ((ar *. br) -. (ai *. bi), (ar *. bi) +. (ai *. br))

let cdiv (ar, ai) (br, bi) =
  let d = (br *. br) +. (bi *. bi) in
  (((ar *. br) +. (ai *. bi)) /. d, ((ai *. br) -. (ar *. bi)) /. d)

let cnorm2 (ar, ai) = (ar *. ar) +. (ai *. ai)
let cneg (ar, ai) = (-.ar, -.ai)
let of_cplx (c : Cplx.t) = (c.Cplx.re, c.Cplx.im)

(* p <- r + beta * p (complex beta, interleaved layout). *)
let xpby (r : Field.t) (br, bi) (p : Field.t) =
  let half = Field.length r / 2 in
  for k = 0 to half - 1 do
    let pr = Bigarray.Array1.unsafe_get p (2 * k) in
    let pi = Bigarray.Array1.unsafe_get p ((2 * k) + 1) in
    Bigarray.Array1.unsafe_set p (2 * k)
      (Bigarray.Array1.unsafe_get r (2 * k) +. ((br *. pr) -. (bi *. pi)));
    Bigarray.Array1.unsafe_set p ((2 * k) + 1)
      (Bigarray.Array1.unsafe_get r ((2 * k) + 1) +. ((br *. pi) +. (bi *. pr)))
  done

(* One full BiCGStab iteration's BLAS-1 sequence as (kernel, sweeps)
   rows in launch order, both stabilizer halves included — the ground
   truth Check.Plan_extract lifts into the plan IR. The fused columns
   replace each caxpy-then-norm2 pair with the single-pass
   caxpy_norm2. *)
let tail_kernels ~fused =
  let update = if fused then [ ("caxpy_norm2", 1) ] else [ ("caxpy", 1); ("norm2", 1) ] in
  [ ("cdot", 1); ("blit", 1) ]
  @ update
  @ [ ("norm2", 1); ("cdot", 1); ("caxpy", 1); ("caxpy", 1); ("blit", 1) ]
  @ update
  @ [ ("cdot", 1); ("caxpy", 1); ("xpby", 1) ]

let stats ~iterations ~converged ~rel ~true_rel ~flops ~t_start =
  {
    Cg.iterations;
    converged;
    relative_residual = rel;
    true_relative_residual = Some true_rel;
    flops;
    seconds = Unix.gettimeofday () -. t_start;
    reliable_updates = 0;
  }

let solve ?(x0 : Field.t option) ?(fused = false) ?trace ~apply ~(b : Field.t)
    ~tol ~max_iter ~flops_per_apply () =
  let emit v = match trace with Some f -> f v | None -> () in
  let n = Field.length b in
  let t_start = Unix.gettimeofday () in
  let x = match x0 with Some x -> Field.copy x | None -> Field.create n in
  let r = Field.create n in
  let tmp = Field.create n in
  let applies = ref 0 in
  (match x0 with
  | None -> Field.blit b r
  | Some _ ->
    apply x tmp;
    incr applies;
    Field.sub b tmp r);
  let b2 = Field.norm2 b in
  if b2 = 0. then begin
    Field.fill x 0.;
    (x, stats ~iterations:0 ~converged:true ~rel:0. ~true_rel:0. ~flops:0. ~t_start)
  end
  else begin
    let target = tol *. tol *. b2 in
    let r_hat = Field.copy r in
    let p = Field.copy r in
    let v = Field.create n in
    let s = Field.create n in
    let t = Field.create n in
    let rho = ref (of_cplx (Field.cdot r_hat r)) in
    let iters = ref 0 in
    let converged = ref (Field.norm2 r <= target) in
    let broken = ref false in
    while (not !converged) && (not !broken) && !iters < max_iter do
      incr iters;
      apply p v;
      incr applies;
      let rhv = of_cplx (Field.cdot r_hat v) in
      if cnorm2 rhv < 1e-120 then broken := true
      else begin
        let alpha = cdiv !rho rhv in
        (* s = r - alpha v, with |s|² riding the same sweep when
           fused (caxpy_norm2 ≡ caxpy; norm2 bit-for-bit). *)
        Field.blit r s;
        let s2 =
          if fused then Linalg.Fused.caxpy_norm2 (cneg alpha) v s
          else begin
            Field.caxpy (cneg alpha) v s;
            Field.norm2 s
          end
        in
        emit s2;
        if s2 <= target then begin
          Field.caxpy alpha p x;
          converged := true
        end
        else begin
          apply s t;
          incr applies;
          let tt = Field.norm2 t in
          if tt < 1e-120 then broken := true
          else begin
            let ts = of_cplx (Field.cdot t s) in
            let omega = (fst ts /. tt, snd ts /. tt) in
            Field.caxpy alpha p x;
            Field.caxpy omega s x;
            (* r = s - omega t *)
            Field.blit s r;
            let r2 =
              if fused then Linalg.Fused.caxpy_norm2 (cneg omega) t r
              else begin
                Field.caxpy (cneg omega) t r;
                Field.norm2 r
              end
            in
            emit r2;
            if r2 <= target then converged := true
            else begin
              let rho' = of_cplx (Field.cdot r_hat r) in
              if cnorm2 rho' < 1e-120 || cnorm2 omega < 1e-120 then
                broken := true
              else begin
                let beta = cmul (cdiv rho' !rho) (cdiv alpha omega) in
                rho := rho';
                (* p = r + beta (p - omega v) *)
                Field.caxpy (cneg omega) v p;
                xpby r beta p
              end
            end
          end
        end
      end
    done;
    apply x tmp;
    incr applies;
    Field.sub b tmp tmp;
    let true_rel = sqrt (Field.norm2 tmp /. b2) in
    let flops =
      (float_of_int !applies *. flops_per_apply)
      +. (float_of_int !iters *. 2. *. Cg.blas1_flops ~fused n)
    in
    ( x,
      stats ~iterations:!iters ~converged:!converged
        ~rel:(sqrt (Field.norm2 r /. b2))
        ~true_rel ~flops ~t_start )
  end

let _ = cadd
