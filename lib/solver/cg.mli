(** Conjugate gradient on the normal equations — the paper's solver
    family. The operator is a closure: the same CG drives the Wilson
    normal operator, the full Möbius normal operator and the red-black
    Schur normal operator. *)

type stats = {
  iterations : int;
  converged : bool;
  relative_residual : float;  (** |r|/|b| from the CG recurrence *)
  true_relative_residual : float option;  (** recomputed |b − Ax|/|b| *)
  flops : float;
  seconds : float;
  reliable_updates : int;  (** mixed-precision solves only *)
}

val pp_stats : Format.formatter -> stats -> unit

val blas1_flops : ?fused:bool -> int -> float
(** BLAS-1 flops of one CG iteration on vectors of [n] floats: 10n
    unfused, 12n fused (the single-pass kernels spend 2n extra flops
    on the free p·r orthogonality monitor while streaming fewer
    bytes — see [Dirac.Flops] for the bytes side). *)

val tail_kernels : fused:bool -> (string * int) list
(** The BLAS-1 tail of one CG iteration as (kernel, full-vector
    sweeps) rows in launch order — the ground truth
    [Check.Plan_extract] lifts into the plan IR. Unfused: dot_re +
    axpy + axpy + norm2 + xpay (5 sweeps). Fused: cg_update + xpay_dot
    (2 sweeps) — the p·Ap reduction rides the stencil's closing sweep
    via [apply_dot], so the fused column matches
    [Machine.Perf_model.blas1_sweeps] exactly and
    [Check.Plan_check]'s PLAN005 pass errors on any drift. *)

val multi_tail_kernels : fused:bool -> (string * int) list
(** The per-iteration BLAS-1 tail of the batched solver as (kernel,
    full-vector sweeps) rows in launch order, the multi-RHS analogue
    of [tail_kernels] — the ground truth behind
    [Check.Plan_extract.cg_tail_multi]. Unfused the batch runs the
    scalar kernels per RHS (5 sweeps per vector); fused it runs the
    two [Linalg.Multi_blas] batch kernels (multi_cg_update +
    multi_xpay_dot, 2 sweeps per vector), matching
    [Machine.Perf_model.blas1_sweeps ~fused:true]. *)

val solve :
  ?x0:Linalg.Field.t ->
  ?deflate:Deflate.t ->
  ?fused:bool ->
  ?apply_dot:(Linalg.Field.t -> Linalg.Field.t -> float) ->
  ?trace:(float -> unit) ->
  apply:(Linalg.Field.t -> Linalg.Field.t -> unit) ->
  b:Linalg.Field.t ->
  tol:float ->
  max_iter:int ->
  flops_per_apply:float ->
  unit ->
  Linalg.Field.t * stats
(** [solve ~apply ~b ~tol ~max_iter ~flops_per_apply ()] solves A x = b
    for a hermitian positive-definite [apply]. Convergence criterion:
    |r| ≤ tol·|b|. The true residual is recomputed at the end.

    [fused] (default [false]) runs the BLAS-1 tail through the
    single-pass [Linalg.Fused] kernels; the iterate, residual
    trajectory and iteration count are bit-identical to the unfused
    path for any pool geometry.

    [apply_dot src dst] is the tail-capable operator: dst = A src AND
    the return of src·dst, computed inside the operator's closing
    sweep through the canonical blocked reduction
    ([Dirac.Wilson.hop_tail], [Dirac.Mobius.apply_schur_normal_tail])
    so it is bit-identical to [apply src dst; Field.dot_re src dst].
    Consumed only when [fused] — together they execute the 2-sweep
    BLAS-1 plan [Machine.Perf_model.blas1_sweeps] prices; a fused
    solve without [apply_dot] keeps the dot as a separate monitor
    sweep (same bits, one more sweep, not model-priced).

    [trace] is called with |r|² once per iteration (after the residual
    update) — the hook the fused≡unfused trajectory tests compare
    on.

    [deflate] folds the low-mode correction Σᵢ vᵢ(vᵢ·r₀)/λᵢ of the
    entry residual into the initial guess (one extra apply recomputes
    r exactly), cutting the iteration count on small-eigenvalue
    configurations; the CG recurrence itself is unchanged, and the
    [deflate]-absent path is bit-identical to before. *)

val solve_multi :
  ?x0s:Linalg.Field.t array ->
  ?deflate:Deflate.t ->
  ?fused:bool ->
  ?trace:(int -> float -> unit) ->
  apply:(Linalg.Field.t array -> Linalg.Field.t array -> unit) ->
  bs:Linalg.Field.t array ->
  tol:float ->
  max_iter:int ->
  flops_per_apply:float ->
  unit ->
  Linalg.Field.t array * stats array
(** Batched CG over k right-hand sides sharing one operator. [apply]
    receives the sub-batch of still-active systems each iteration, so
    a batched operator ([Dirac.Wilson.apply_multi],
    [Dirac.Mobius.apply_schur_normal_multi]) streams the gauge links
    once for the whole surviving batch. Per-RHS convergence masking:
    a system that converges (or exhausts [max_iter], or hits a
    non-positive p·Ap breakdown) leaves the active set and stops
    contributing updates, while each surviving trajectory — iterate,
    residual sequence, iteration count, flop count — stays
    bit-identical to the independent [solve] of that RHS, because the
    per-RHS float operations (reductions through the canonical
    blocked association, updates in the scalar kernels' element
    order) are exactly [solve]'s whether batch-mates remain or not.

    [fused] routes the tail through [Linalg.Multi_blas] (per-RHS
    bit-identical to the [Linalg.Fused] path, hence to the unfused
    scalar path). [trace i r2] fires once per iteration per active
    RHS [i]. [x0s], when given, must match [bs] in width. Batch must
    be non-empty; all fields the same length.

    [deflate] seeds every guess with the batched low-mode correction
    (one k×r coefficient tile, one [Multi_blas.block_axpy] launch,
    one batched apply for the exact residuals); per RHS the entry is
    bit-identical to [solve ?deflate] on that RHS, preserving the
    trajectory-equality property. *)
