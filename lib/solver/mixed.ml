(* Mixed-precision CG with reliable updates — the paper's double-half
   solver. The inner iteration runs with vectors stored in 16-bit
   fixed point (per-site norms, Linalg.Field.Half); the iterated
   residual therefore drifts from the true one, and whenever it has
   dropped by [delta] relative to the last checkpoint the solution is
   promoted to the double-precision accumulator and the residual is
   recomputed exactly (a "reliable update"). All reductions are in
   double precision throughout, as in the paper. *)

module Field = Linalg.Field

type config = {
  tol : float;
  max_iter : int;
  delta : float;  (* reliable-update trigger: residual drop factor *)
  block : int;  (* floats sharing one half-precision norm (24 = site) *)
}

let default_config = { tol = 1e-8; max_iter = 2000; delta = 0.1; block = 24 }

(* Structural validity of a configuration against a vector length —
   the invariants the half codec and the reliable-update loop assume.
   Checked here at solve entry and statically by Check.Spec_check. *)
let validate_config ~n (c : config) =
  if c.block <= 0 then Error (Printf.sprintf "block must be positive (got %d)" c.block)
  else if n > 0 && n mod c.block <> 0 then
    Error
      (Printf.sprintf "block %d does not divide the vector length %d" c.block n)
  else if not (c.tol > 0. && Float.is_finite c.tol) then
    Error (Printf.sprintf "tol must be positive and finite (got %g)" c.tol)
  else if c.max_iter <= 0 then
    Error (Printf.sprintf "max_iter must be positive (got %d)" c.max_iter)
  else if not (c.delta > 0. && c.delta < 1.) then
    Error
      (Printf.sprintf "delta must lie strictly inside (0,1) (got %g)" c.delta)
  else Ok ()

(* Quantize a vector in place through the half codec: this is the
   storage-precision loss the inner solve sees. *)
let quantize ~block v =
  let h = Field.Half.create ~block (Field.length v) in
  Field.Half.encode v h;
  Field.Half.decode h v

(* The half-stored buffers the inner loop forces through the codec on
   every iteration, in quantize order: the search direction before the
   stencil, the stencil result after it, the sloppy residual after the
   update. Check.Plan_extract lifts these into Quantize steps; the
   precision-flow pass (PREC rules) verifies every half-read is
   preceded by one of them. *)
let inner_quantizes = [ "p"; "ap"; "rs" ]

(* The reliable-update kernels (promote + exact residual), as
   (kernel, full-vector sweeps) rows in launch order. *)
let reliable_update_kernels ~fused =
  if fused then [ ("axpy", 1); ("blit", 1); ("axpy_norm2", 1) ]
  else [ ("axpy", 1); ("sub", 1); ("norm2", 1) ]

let solve ?(config = default_config) ?deflate ?(fused = false) ?trace ~apply
    ~(b : Field.t) ~flops_per_apply () =
  let n = Field.length b in
  (match validate_config ~n config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Mixed.solve: " ^ msg));
  let t_start = Unix.gettimeofday () in
  let block = config.block in
  let x = Field.create n in
  (* double-precision residual *)
  let r = Field.create n in
  Field.blit b r;
  let b2 = Field.norm2 b in
  let target = config.tol *. config.tol *. b2 in
  let ap = Field.create n in
  let applies = ref 0 in
  let iters = ref 0 in
  let reliable = ref 0 in
  if b2 > 0. then begin
    (* Deflation lives entirely in the outer double-precision world:
       the low-mode guess is folded into x at entry (and refreshed at
       each reliable update below); the half-precision inner loop is
       untouched. *)
    (match deflate with
    | None -> ()
    | Some d ->
      Deflate.augment d ~r x;
      apply x ap;
      incr applies;
      Field.sub b ap r);
    let r2 = ref (Field.norm2 r) in
    let continue_outer = ref true in
    while !continue_outer && !r2 > target && !iters < config.max_iter do
      (* ---- inner half-precision CG cycle against current r ---- *)
      let rs = Field.copy r in
      quantize ~block rs;
      let p = Field.copy rs in
      let xs = Field.create n in
      let rs2 = ref (Field.norm2 rs) in
      let checkpoint = !rs2 in
      let inner_target = Float.max target (config.delta *. config.delta *. checkpoint) in
      let stalled = ref false in
      while (not !stalled) && !rs2 > inner_target && !iters < config.max_iter do
        incr iters;
        (* the stencil consumes and produces half-stored data *)
        quantize ~block p;
        apply p ap;
        incr applies;
        quantize ~block ap;
        let pap = Field.dot_re p ap in
        if pap <= 0. then stalled := true
        else begin
          let alpha = !rs2 /. pap in
          (if fused then
             (* cg_update's fused |rs|² is the PRE-quantization norm;
                the recurrence needs the post-quantization one, so it
                is discarded and recomputed after the codec pass —
                the price of keeping bit-identity with the unfused
                path. The xpay_dot monitor still saves a sweep. *)
             ignore (Linalg.Fused.cg_update alpha p ap xs rs : float)
           else begin
             Field.axpy alpha p xs;
             Field.axpy (-.alpha) ap rs
           end);
          quantize ~block rs;
          let rs2_new = Field.norm2 rs in
          let beta = rs2_new /. !rs2 in
          rs2 := rs2_new;
          if fused then ignore (Linalg.Fused.xpay_dot rs beta p rs : float)
          else Field.xpay rs beta p;
          match trace with Some f -> f rs2_new | None -> ()
        end
      done;
      (* ---- reliable update: promote and recompute exactly ---- *)
      incr reliable;
      Field.axpy 1. xs x;
      apply x ap;
      incr applies;
      let r2_new =
        if fused then begin
          (* r <- b − Ax and |r|² in one sweep: blit then
             axpy_norm2 (−1). Bitwise b +. (−1·ap) ≡ b −. ap. *)
          Field.blit b r;
          Linalg.Fused.axpy_norm2 (-1.) ap r
        end
        else begin
          Field.sub b ap r;
          Field.norm2 r
        end
      in
      (* Re-deflate the exact residual: the half codec reintroduces
         low-mode error the inner loop contracts slowly, so each
         reliable update cleans the deflated span out of x again —
         one extra (double-precision) apply per update. *)
      let r2_new =
        match deflate with
        | None -> r2_new
        | Some d ->
          let g = Deflate.deflated_guess d ~b:r in
          Field.axpy 1. g x;
          apply g ap;
          incr applies;
          Field.axpy (-1.) ap r;
          Field.norm2 r
      in
      (* If quantization noise floors out before the target, stop:
         the caller can fall back to a pure double solve. *)
      if !stalled || r2_new >= !r2 *. 0.9999 then continue_outer := false;
      r2 := r2_new
    done;
    let flops =
      (float_of_int !applies *. flops_per_apply)
      +. (float_of_int !iters *. Cg.blas1_flops ~fused n)
    in
    let rel = sqrt (Field.norm2 r /. b2) in
    ( x,
      {
        Cg.iterations = !iters;
        converged = Field.norm2 r <= target;
        relative_residual = rel;
        true_relative_residual = Some rel;
        flops;
        seconds = Unix.gettimeofday () -. t_start;
        reliable_updates = !reliable;
      } )
  end
  else
    ( x,
      {
        Cg.iterations = 0;
        converged = true;
        relative_residual = 0.;
        true_relative_residual = Some 0.;
        flops = 0.;
        seconds = Unix.gettimeofday () -. t_start;
        reliable_updates = 0;
      } )

(* Batched front end: the half-precision inner loop's quantization
   state is inherently per-vector, so the Mixed hook of
   [Cg.solve_multi] runs the k systems through independent mixed
   solves against a width-1 view of the batched operator — trivially
   bit-identical per RHS, and the seam where a future half-precision
   multi-RHS inner loop slots in. *)
let solve_multi ?config ?deflate ?fused ?trace ~apply ~(bs : Field.t array)
    ~flops_per_apply () =
  let k = Array.length bs in
  if k = 0 then invalid_arg "Mixed.solve_multi: empty batch";
  let results =
    Array.mapi
      (fun i b ->
        let apply1 src dst = apply [| src |] [| dst |] in
        let trace1 = Option.map (fun f -> f i) trace in
        solve ?config ?deflate ?fused ?trace:trace1 ~apply:apply1 ~b
          ~flops_per_apply ())
      bs
  in
  (Array.map fst results, Array.map snd results)
