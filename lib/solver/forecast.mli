(** Chronological initial-guess forecasting: minimal-residual
    extrapolation from previous solutions of the same operator
    (Brower et al.). Cuts iteration counts across the 12 spin-color
    columns and source positions of a production stream. *)

type t

val create : ?depth:int -> unit -> t
(** Keep the last [depth] (default 4) solutions. *)

val record : t -> Linalg.Field.t -> unit
(** Push a converged solution (copied) into the history. A non-finite
    vector (a diverged solve) is refused — it would poison every later
    Gram system — and counted in [rejected] instead. *)

val size : t -> int

val rejected : t -> int
(** How many non-finite solutions [record] has refused. *)

val guess :
  t ->
  apply:(Linalg.Field.t -> Linalg.Field.t -> unit) ->
  b:Linalg.Field.t ->
  Linalg.Field.t option
(** Minimizer of |b − A x|² over the (real) span of the history; [None]
    when the history is empty or the Gram system is singular. *)
