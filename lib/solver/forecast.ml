(* Chronological initial-guess forecasting: production campaigns solve
   the same operator against a stream of related right-hand sides (12
   spin-color columns, many sources); extrapolating an initial guess
   from previous solutions cuts the iteration count. This implements
   the minimal-residual projection onto the span of the last [depth]
   solutions (Brower et al., "chronological inversion"). *)

module Field = Linalg.Field

type t = {
  depth : int;
  mutable history : Field.t list;  (* most recent first *)
  mutable rejected : int;  (* non-finite solutions refused entry *)
}

let create ?(depth = 4) () =
  if depth < 1 then invalid_arg "Forecast.create: depth >= 1";
  { depth; history = []; rejected = 0 }

(* Same scan as Field.Sanitize.check_vec, but always on and
   non-raising: the forecast must refuse a poisoned vector whether or
   not the global sanitizer is armed. *)
let all_finite (x : Field.t) =
  let n = Field.length x in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < n do
    if not (Float.is_finite x.{!i}) then ok := false;
    incr i
  done;
  !ok

let record t (x : Field.t) =
  (* A diverged solve (NaN/Inf iterate) would poison every later
     Gram system — guess would return None or garbage forever. Drop
     it at the door instead. *)
  if not (all_finite x) then t.rejected <- t.rejected + 1
  else begin
    let keep = Field.copy x in
    t.history <-
      keep :: (if List.length t.history >= t.depth then
                 List.filteri (fun i _ -> i < t.depth - 1) t.history
               else t.history)
  end

let size t = List.length t.history
let rejected t = t.rejected

(* Guess minimizing |b - A x|^2 over x in span(history): solve the
   small Gram system (A v_i, A v_j) c_j = (A v_i, b). [apply] is A. *)
let guess t ~apply ~(b : Field.t) : Field.t option =
  match t.history with
  | [] -> None
  | vs ->
    let m = List.length vs in
    let n = Field.length b in
    let avs =
      List.map
        (fun v ->
          let av = Field.create n in
          apply v av;
          av)
        vs
    in
    let avs = Array.of_list avs in
    let vs = Array.of_list vs in
    (* real-valued Gram formulation (adequate: the minimizer over the
       real span; complex span would halve the residual a bit more) *)
    let gram = Array.make (m * m) 0. in
    let rhs = Array.make m 0. in
    for i = 0 to m - 1 do
      rhs.(i) <- Field.dot_re avs.(i) b;
      for j = 0 to m - 1 do
        gram.((i * m) + j) <- Field.dot_re avs.(i) avs.(j)
      done
    done;
    (match Util.Fit.solve_linear_system gram rhs with
    | c ->
      let x = Field.create n in
      Array.iteri (fun i v -> Field.axpy c.(i) v x) vs;
      Some x
    | exception Util.Fit.Singular -> None)
