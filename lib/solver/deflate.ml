(* Low-mode deflation spaces — computed once per gauge configuration
   (Lanczos), reused across the campaign's correlated solves. The
   space is a rank-r orthonormal basis with its Ritz values and the
   hash of the configuration it was computed from: a stale space
   silently degrades to a bad (but convergent) initial guess, which is
   exactly why Check.Deflate_check's DEF001 compares the hashes.

   The two kernels are batched through Multi_blas.block_axpy so the
   whole rank-r combination is one sweep over memory, and every
   reduction is the canonical blocked dot_re — deterministic for any
   pool geometry, like every kernel before it. *)

module Field = Linalg.Field

type t = {
  basis : Field.t array;  (* rank orthonormal fields *)
  values : float array;  (* Ritz values, ascending, > 0 *)
  config_hash : int;  (* hash of the source gauge configuration *)
  bound : float;  (* residual/drift bound the space was built to *)
}

let rank t = Array.length t.basis
let values t = t.values
let basis t = t.basis
let config_hash t = t.config_hash
let bound t = t.bound

let create ?(bound = 1e-6) ~basis ~values ~config_hash () =
  let r = Array.length basis in
  if r = 0 then invalid_arg "Deflate.create: empty basis";
  if Array.length values <> r then
    invalid_arg "Deflate.create: rank mismatch between basis and values";
  let n = Field.length basis.(0) in
  Array.iter
    (fun v ->
      if Field.length v <> n then invalid_arg "Deflate.create: length mismatch")
    basis;
  Array.iter
    (fun l ->
      if not (Float.is_finite l && l > 0.) then
        invalid_arg "Deflate.create: Ritz values must be finite and positive")
    values;
  if not (bound > 0.) then invalid_arg "Deflate.create: bound must be positive";
  { basis = Array.map Field.copy basis; values = Array.copy values;
    config_hash; bound }

let of_lanczos ?bound ~config_hash (values, basis, (_ : Lanczos.stats)) =
  create ?bound ~basis ~values ~config_hash ()

(* ---- configuration hashing ----
   FNV-1a over the raw float64 bits: deterministic across runs and
   processes (unlike Hashtbl.hash on bigarrays, which sees only the
   header). Collisions are irrelevant here — the hash only has to
   *change* when the gauge field does. *)
let field_hash (v : Field.t) =
  let h = ref 0x3b97a9c184f22325 in
  for i = 0 to Field.length v - 1 do
    let bits = Int64.to_int (Int64.bits_of_float v.{i}) in
    h := (!h lxor (bits land 0xffffffff)) * 0x100000001b3;
    h := (!h lxor ((bits lsr 32) land 0xffffffff)) * 0x100000001b3
  done;
  !h land max_int

let gauge_hash (u : Lattice.Gauge.t) = field_hash (Lattice.Gauge.data u)

(* ---- the deflation kernels ---- *)

(* x += sum_i v_i (v_i·r)/λ_i — the Galerkin low-mode correction of
   the guess x given the residual r at x. One batched combination. *)
let augment t ~(r : Field.t) (x : Field.t) =
  let g =
    Array.mapi (fun i v -> Field.dot_re v r /. t.values.(i)) t.basis
  in
  Linalg.Multi_blas.block_axpy [| g |] t.basis [| x |]

let augment_with pool ?chunk t ~(r : Field.t) (x : Field.t) =
  let g =
    Array.mapi
      (fun i v -> Field.dot_re_with pool ?chunk v r /. t.values.(i))
      t.basis
  in
  Linalg.Multi_blas.block_axpy_with pool ?chunk [| g |] t.basis [| x |]

let deflated_guess t ~(b : Field.t) =
  let x = Field.create (Field.length b) in
  augment t ~r:b x;
  x

(* Batched form over k residuals: one k×r coefficient tile, one
   block_axpy launch. Row i is bit-identical to [augment] on
   (rs.(i), xs.(i)) — the property the multi-RHS deflation test
   pins. *)
let augment_multi t ~(rs : Field.t array) (xs : Field.t array) =
  let k = Array.length rs in
  if Array.length xs <> k then invalid_arg "Deflate.augment_multi: width";
  if k = 0 then ()
  else begin
    let g =
      Array.map
        (fun r ->
          Array.mapi (fun j v -> Field.dot_re v r /. t.values.(j)) t.basis)
        rs
    in
    Linalg.Multi_blas.block_axpy g t.basis xs
  end

(* r -= sum_i v_i (v_i·r): remove the deflated span from a vector. *)
let project t (r : Field.t) =
  let c = Array.map (fun v -> -.Field.dot_re v r) t.basis in
  Linalg.Multi_blas.block_axpy [| c |] t.basis [| r |]

(* ---- audit quantities (consumed by Check.Deflate_check) ---- *)

let ortho_drift t =
  let r = rank t in
  let worst = ref 0. in
  for i = 0 to r - 1 do
    for j = i to r - 1 do
      let d = Field.dot_re t.basis.(i) t.basis.(j) in
      let target = if i = j then 1. else 0. in
      worst := Float.max !worst (abs_float (d -. target))
    done
  done;
  !worst

let max_residual t ~apply =
  let n = Field.length t.basis.(0) in
  let av = Field.create n in
  let worst = ref 0. in
  Array.iteri
    (fun i v ->
      apply v av;
      Field.axpy (-.t.values.(i)) v av;
      worst := Float.max !worst (Field.norm av))
    t.basis;
  !worst

(* ---- Forecast composition (chained FH solves) ----
   The chronological guess captures the smooth correlation between
   consecutive right-hand sides; the low modes it misses are exactly
   what the deflation space holds. Compose: forecast first, then
   deflate the *residual* of the forecast guess. *)
let combined_guess ?deflate ?forecast ~apply ~(b : Field.t) () =
  let xf =
    match forecast with None -> None | Some f -> Forecast.guess f ~apply ~b
  in
  match (deflate, xf) with
  | None, g -> g
  | Some d, None -> Some (deflated_guess d ~b)
  | Some d, Some x ->
    let n = Field.length b in
    let ax = Field.create n in
    apply x ax;
    Field.sub b ax ax;
    augment d ~r:ax x;
    Some x
