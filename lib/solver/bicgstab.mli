(** BiCGStab on a (non-hermitian) complex-linear operator — the
    baseline alternative to CG on the normal equations. The operator
    must be complex-linear over the interleaved re/im layout (Dirac
    operators are; componentwise-real test matrices are not). *)

val solve :
  ?x0:Linalg.Field.t ->
  ?fused:bool ->
  ?trace:(float -> unit) ->
  apply:(Linalg.Field.t -> Linalg.Field.t -> unit) ->
  b:Linalg.Field.t ->
  tol:float ->
  max_iter:int ->
  flops_per_apply:float ->
  unit ->
  Linalg.Field.t * Cg.stats
(** Converges when |r| ≤ tol·|b|; [converged = false] on breakdown
    (vanishing ρ or ω) or max_iter.

    [fused] (default [false]) computes the two residual updates
    (s = r − α·v and r = s − ω·t) with [Linalg.Fused.caxpy_norm2],
    folding the convergence-check norm into the update sweep —
    bit-identical trajectory for any pool geometry. [trace] receives
    each residual norm² as it is computed (|s|², then |r|² when the
    iteration reaches it). *)
