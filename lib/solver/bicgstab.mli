(** BiCGStab on a (non-hermitian) complex-linear operator — the
    baseline alternative to CG on the normal equations. The operator
    must be complex-linear over the interleaved re/im layout (Dirac
    operators are; componentwise-real test matrices are not). *)

val tail_kernels : fused:bool -> (string * int) list
(** One full iteration's BLAS-1 sequence as (kernel, full-vector
    sweeps) rows in launch order, both stabilizer halves included —
    the ground truth [Check.Plan_extract] lifts into the plan IR. The
    fused column replaces each caxpy-then-norm2 pair with the
    single-pass [Linalg.Fused.caxpy_norm2]. *)

val solve :
  ?x0:Linalg.Field.t ->
  ?fused:bool ->
  ?trace:(float -> unit) ->
  apply:(Linalg.Field.t -> Linalg.Field.t -> unit) ->
  b:Linalg.Field.t ->
  tol:float ->
  max_iter:int ->
  flops_per_apply:float ->
  unit ->
  Linalg.Field.t * Cg.stats
(** Converges when |r| ≤ tol·|b|; [converged = false] on breakdown
    (vanishing ρ or ω) or max_iter.

    [fused] (default [false]) computes the two residual updates
    (s = r − α·v and r = s − ω·t) with [Linalg.Fused.caxpy_norm2],
    folding the convergence-check norm into the update sweep —
    bit-identical trajectory for any pool geometry. [trace] receives
    each residual norm² as it is computed (|s|², then |r|² when the
    iteration reaches it). *)
