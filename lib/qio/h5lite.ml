(* HDF5-lite: a hierarchical binary container with groups implied by
   slash-separated dataset paths, CRC-checked payloads, and 64-bit
   sizes — the role HDF5 plays in the paper's I/O layer [19], scoped
   to what the workflow needs (propagators, correlators, metadata).

   File layout:
     magic "NFH5" | u32 version | u32 record count
     repeat: u16 path_len | path bytes | u8 tag | u64 payload bytes
             | payload | u32 crc32(payload)
   All integers little-endian. *)

type value =
  | Float_array of float array
  | Int_array of int array
  | Str of string

type t = { entries : (string, value) Hashtbl.t; mutable order : string list }

let magic = "NFH5"
let version = 1

let create () = { entries = Hashtbl.create 32; order = [] }

let valid_path path =
  String.length path > 0
  && path.[0] <> '/'
  && String.for_all (fun c -> c <> '\n' && c <> '\t') path

let write t ~path value =
  if not (valid_path path) then invalid_arg "H5lite.write: bad path";
  if not (Hashtbl.mem t.entries path) then t.order <- path :: t.order;
  Hashtbl.replace t.entries path value

let read t ~path = Hashtbl.find_opt t.entries path

let read_exn t ~path =
  match read t ~path with
  | Some v -> v
  | None -> raise Not_found

let paths t = List.rev t.order

let mem t ~path = Hashtbl.mem t.entries path

(* Datasets under a group prefix (group/... convention). *)
let list_group t ~group =
  let prefix = group ^ "/" in
  List.filter (fun p -> String.starts_with ~prefix p) (paths t)

(* ---- CRC32 (IEEE 802.3) ---- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 (s : string) =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl) in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* ---- serialization ---- *)

let buf_add_u16 b v =
  Buffer.add_char b (Char.chr (v land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF))

let buf_add_u32 b v =
  for i = 0 to 3 do
    Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let buf_add_u64 b (v : int64) =
  for i = 0 to 7 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))
  done

let payload_of_value = function
  | Float_array a ->
    let b = Buffer.create (Array.length a * 8) in
    Array.iter (fun x -> buf_add_u64 b (Int64.bits_of_float x)) a;
    (0, Buffer.contents b)
  | Int_array a ->
    let b = Buffer.create (Array.length a * 8) in
    Array.iter (fun x -> buf_add_u64 b (Int64.of_int x)) a;
    (1, Buffer.contents b)
  | Str s -> (2, s)

exception Corrupt of string

let read_u16 s pos = Char.code s.[pos] lor (Char.code s.[pos + 1] lsl 8)

let read_u32 s pos =
  let v = ref 0 in
  for i = 3 downto 0 do
    v := (!v lsl 8) lor Char.code s.[pos + i]
  done;
  !v

let read_u64 s pos =
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[pos + i]))
  done;
  !v

let value_of_payload tag payload =
  match tag with
  | 0 ->
    let n = String.length payload / 8 in
    Float_array (Array.init n (fun i -> Int64.float_of_bits (read_u64 payload (8 * i))))
  | 1 ->
    let n = String.length payload / 8 in
    Int_array (Array.init n (fun i -> Int64.to_int (read_u64 payload (8 * i))))
  | 2 -> Str payload
  | _ -> raise (Corrupt "unknown tag")

let save t filename =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  buf_add_u32 b version;
  let ps = paths t in
  buf_add_u32 b (List.length ps);
  List.iter
    (fun path ->
      let tag, payload = payload_of_value (Hashtbl.find t.entries path) in
      buf_add_u16 b (String.length path);
      Buffer.add_string b path;
      Buffer.add_char b (Char.chr tag);
      buf_add_u64 b (Int64.of_int (String.length payload));
      Buffer.add_string b payload;
      buf_add_u32 b (Int32.to_int (Int32.logand (crc32 payload) 0xFFFFFFFFl) land 0xFFFFFFFF))
    ps;
  let oc = open_out_bin filename in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc b)

let load filename =
  let ic = open_in_bin filename in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  if String.length s < 12 || String.sub s 0 4 <> magic then
    raise (Corrupt "bad magic");
  let ver = read_u32 s 4 in
  if ver <> version then raise (Corrupt "unsupported version");
  let count = read_u32 s 8 in
  let t = create () in
  let pos = ref 12 in
  (* every field read is bounds-checked so a file cut off mid-record
     reports Corrupt, not a String.sub Invalid_argument *)
  let need n =
    if n < 0 || !pos + n > String.length s then raise (Corrupt "truncated record")
  in
  for _ = 1 to count do
    need 2;
    let plen = read_u16 s !pos in
    pos := !pos + 2;
    need plen;
    let path = String.sub s !pos plen in
    pos := !pos + plen;
    need 9;
    let tag = Char.code s.[!pos] in
    incr pos;
    let nbytes = Int64.to_int (read_u64 s !pos) in
    pos := !pos + 8;
    need nbytes;
    let payload = String.sub s !pos nbytes in
    pos := !pos + nbytes;
    need 4;
    let crc_stored = read_u32 s !pos in
    pos := !pos + 4;
    let crc_actual = Int32.to_int (Int32.logand (crc32 payload) 0xFFFFFFFFl) land 0xFFFFFFFF in
    if crc_stored <> crc_actual then raise (Corrupt ("crc mismatch at " ^ path));
    write t ~path (value_of_payload tag payload)
  done;
  t

(* ---- field / correlator convenience ---- *)

let write_field t ~path (f : Linalg.Field.t) =
  write t ~path (Float_array (Linalg.Field.to_array f))

let read_field t ~path =
  match read t ~path with
  | Some (Float_array a) -> Some (Linalg.Field.of_array a)
  | _ -> None

let write_correlator t ~path (c : float array) = write t ~path (Float_array c)

let read_correlator t ~path =
  match read t ~path with Some (Float_array a) -> Some a | _ -> None
