(** Communication policies for the multi-GPU stencil — the option space
    the paper's communication autotuner searches (Sec. V). *)

type transfer = Staged_mpi | Zero_copy | Gdr
type granularity = Coarse | Fine
type t = { transfer : transfer; granularity : granularity }

val all_transfers : transfer list
val all_granularities : granularity list

val all : t list
(** Ordered best-path-first so ties resolve toward the more direct
    transfer. *)

val transfer_name : transfer -> string
val granularity_name : granularity -> string
val name : t -> string

val available : t -> Spec.t -> bool
(** GDR requires machine support (absent on Sierra/Summit at
    submission time). *)

val internode_bw_per_gpu : t -> Spec.t -> float
(** Effective inter-node bytes/s per GPU before network contention. *)

val messages : t -> decomposed_dims:int -> int
val halo_kernel_launches : t -> decomposed_dims:int -> int
val overlaps : t -> bool
(** Fine-grained policies overlap communication with interior compute. *)

val transport_ok : t -> Transport.t -> bool
(** Is a [Vrank.Comm] transport model honest for this policy's transfer
    path? [Staged_mpi] must not be modeled [Zero_copy] (invents a race
    the staging copy prevents); [Zero_copy]/[Gdr] must not be modeled
    [Staged] (hides the race the wire really has). The mismatch is rule
    HALO013 in [Check.Halo_check]. *)
