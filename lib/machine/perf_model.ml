(* Analytic performance model for the mixed-precision red-black CG on
   a GPU machine. Reproduces the scaling studies of Figs. 3-7.

   Calibration policy (see DESIGN.md): inputs are Table II specs plus
   the paper's own achieved-bandwidth statement (139/516/975 GB/s per
   GPU at the point of peak efficiency) and its flop conventions
   (10-12 kflop per 5D site, arithmetic intensity 1.9, 1.675x
   percent-of-peak scaling). The scaling curves themselves are model
   OUTPUT, checked against the figures in EXPERIMENTS.md.

   Model components per stencil application:
     t_stencil  local 5D sites x bytes/site / bw(local volume)
                with bw saturating at small volumes (GPU occupancy)
     t_comm     halo bytes split intra-node (NVLink) / inter-node
                (policy path x network contention) + message latency
     t_overhead kernel launches + allreduce latency (log2 tree)
   combined with or without communication/compute overlap according to
   the communication policy's granularity. *)

type problem = { dims : int array; l5 : int }

let problem ~dims ~l5 = { dims; l5 }
let sites_4d p = Array.fold_left ( * ) 1 p.dims
let sites_5d p = sites_4d p * p.l5

(* The paper's conventional units. *)
let flops_per_site = Dirac.Flops.paper_stencil_per_5d_site
let bytes_per_site = Dirac.Flops.paper_bytes_per_5d_site
let peak_scaling = Dirac.Flops.paper_peak_scaling
let arithmetic_intensity = Dirac.Flops.paper_arithmetic_intensity

(* Halo payload per 5D face site: a spin-projected half spinor in half
   precision (12 reals x 2 bytes) — the paper's compressed wire, baked
   into the calibration. *)
let halo_bytes_per_face_site = 24.

(* The same face site shipped uncompressed: 12 double-precision reals.
   What a halo exchange pays when the compression knob is explicitly
   off (Vrank.Comm without [~compress]). *)
let halo_bytes_per_face_site_double = 96.

(* Codec passes the compressed wire costs at GPU memory bandwidth:
   encode on the send side + decode on the receive side, each
   streaming the double-precision face once. *)
let compress_codec_passes = 2.

(* Reference local volume at which the calibration bandwidths were
   measured: 48^3 x 64 x 20 on 16 GPUs (the paper's production group). *)
let reference_local_sites = 48. *. 48. *. 48. *. 64. *. 20. /. 16.

(* Occupancy saturation: solver bandwidth scales with local volume as
   v / (v + sat), normalized to the calibration point. *)
let solver_bw m ~local_sites =
  let gpu = m.Spec.gpu in
  let sat = gpu.Spec.sat_sites in
  let shape v = v /. (v +. sat) in
  gpu.Spec.solver_bw_gbs *. 1e9 *. shape local_sites /. shape reference_local_sites

(* ---- process-grid selection ---- *)

let divisors n =
  let rec loop d acc = if d > n then acc else if n mod d = 0 then loop (d + 1) (d :: acc) else loop (d + 1) acc in
  loop 1 []

(* All ways to factor n into 4 ordered factors with each factor
   dividing the corresponding lattice extent. *)
let grids p n_gpus =
  let fits mu g = p.dims.(mu) mod g = 0 && g <= p.dims.(mu) in
  List.concat_map
    (fun g0 ->
      if not (fits 0 g0) then []
      else
        List.concat_map
          (fun g1 ->
            if not (fits 1 g1) || n_gpus mod (g0 * g1) <> 0 then []
            else
              List.concat_map
                (fun g2 ->
                  if not (fits 2 g2) || n_gpus mod (g0 * g1 * g2) <> 0 then []
                  else
                    let g3 = n_gpus / (g0 * g1 * g2) in
                    if fits 3 g3 then [ [| g0; g1; g2; g3 |] ] else [])
                (divisors (n_gpus / (g0 * g1))))
          (divisors (n_gpus / g0)))
    (divisors n_gpus)

(* Surface (4D face sites, both directions, decomposed dims only). *)
let surface_sites p grid =
  let local = Array.init 4 (fun mu -> p.dims.(mu) / grid.(mu)) in
  let v = Array.fold_left ( * ) 1 local in
  let acc = ref 0 in
  for mu = 0 to 3 do
    if grid.(mu) > 1 then acc := !acc + (2 * v / local.(mu))
  done;
  !acc

let best_grid p n_gpus =
  match grids p n_gpus with
  | [] -> None
  | gs ->
    Some
      (List.fold_left
         (fun best g -> if surface_sites p g < surface_sites p best then g else best)
         (List.hd gs) gs)

(* Node-internal subgrid: absorb gpus_per_node into the dims with the
   largest faces so the most traffic stays on NVLink. Greedy by factors
   of 2 (node GPU counts are 1, 4 or 6 — treat 6 as 2x3). *)
let node_subgrid (m : Spec.t) p grid =
  let local = Array.init 4 (fun mu -> p.dims.(mu) / grid.(mu)) in
  let v = Array.fold_left ( * ) 1 local in
  let nsub = Array.make 4 1 in
  let remaining = ref m.Spec.gpus_per_node in
  let factors = ref [] in
  let n = ref !remaining in
  let d = ref 2 in
  while !n > 1 do
    if !n mod !d = 0 then begin
      factors := !d :: !factors;
      n := !n / !d
    end
    else incr d
  done;
  List.iter
    (fun f ->
      (* dim with the largest face still having room in the grid *)
      let best = ref (-1) in
      for mu = 0 to 3 do
        if grid.(mu) / nsub.(mu) >= f then
          if !best < 0 || v / local.(mu) > v / local.(!best) then best := mu
      done;
      if !best >= 0 then nsub.(!best) <- nsub.(!best) * f)
    (List.sort compare !factors);
  ignore !remaining;
  nsub

(* Host-side pool fork/join pricing, for the shared-memory kernel
   engine (Util.Pool): one generation hand-off per launch plus a
   per-chunk dispatch through the atomic counter. Calibrated from the
   pool's own microbenchmarks, coarse on purpose — the term exists so
   the model can price fork/join overhead against chunk size, the same
   trade the pool autotuner measures for real. *)
let fork_join_s = 5e-6
let chunk_dispatch_s = 2e-7

(* Half-precision storage bytes of one full vector sweep per 5D site:
   24 reals x 2 bytes (the inner solver's working precision, where the
   BLAS-1 tail lives). *)
let blas1_bytes_per_site_sweep = 48.

(* Full-vector memory sweeps of the CG BLAS-1 tail per iteration.
   Unfused: axpy x, axpy r, norm2 r, xpay p, dot_re p.Ap = 5.
   Fused: cg_update (x,r,|r|2 in one pass) + xpay_dot = 2 — the p.Ap
   reduction rides the stencil tail (QUDA fuses the slash with its
   dot), so its sweep is accounted to the stencil, not here, in both
   columns. *)
let blas1_sweeps ~fused = if fused then 2. else 5.

(* What the host actually executes — since the stencil tail fusion
   (Dirac.Wilson.hop_tail / Mobius.apply_schur_normal_tail, threaded
   through Solver.Cg's apply_dot) this matches blas1_sweeps: the fused
   p.Ap is computed inside the stencil's closing sweep, bit-identical
   to the standalone dot_re. The function survives as the host-side
   cross-check Check.Plan_check's PLAN005 pass keeps honest: any drift
   between an extracted plan's sweep total and blas1_sweeps is now an
   error, not a whitelisted gap. (An operator that cannot carry the
   tail — Mixed's inner half-precision loop, a bare closure without
   apply_dot — falls back to a separate monitor dot at 3 sweeps; those
   plans are not model-priced.) *)
let blas1_host_sweeps ~fused = if fused then 2. else 5.

(* ---- multi-RHS stencil traffic ----
   One double-precision Wilson hop moves, per site: the 8 neighbour
   gauge links (8 x 18 reals) and the spinor stream (8 projected
   neighbour spinors re-counted as the 9-spinor read side plus the
   result write, 9x24 + 24 reals) — together the per-hop half of
   Dirac.Flops.actual_bytes_per_5d_site_double. Batching k right-hand
   sides through Wilson.hop_multi loads each gauge element once for
   the whole batch while the spinor stream stays per-vector, so the
   per-site-per-RHS bytes drop by link/k — the amortization the
   multi-RHS plans in Check.Plan_extract declare and the @multirhs
   exact-formula tests pin. *)
let link_bytes_per_site = float_of_int (8 * 18 * 8)
let spinor_bytes_per_site = float_of_int (((9 * 24) + 24) * 8)

(* Compressed gauge links (Linalg.Su3_codec / Lattice.Recon): the hop
   streams [reals] floats per link instead of 18 and reconstructs the
   rest in registers — 1152 drops to 768 (Recon12) / 512 (Recon8)
   bytes per site, at reconstruction flops the bandwidth-bound stencil
   hides. The per-link sign byte is negligible and excluded, matching
   Lattice.Recon's own accounting. *)
let link_bytes_per_site_recon ~recon =
  float_of_int (8 * Linalg.Su3_codec.reals recon * 8)

let mrhs_bytes_per_site ~k =
  if k < 1 then invalid_arg "Perf_model.mrhs_bytes_per_site: k must be >= 1";
  spinor_bytes_per_site +. (link_bytes_per_site /. float_of_int k)

let mrhs_traffic_ratio ~k =
  mrhs_bytes_per_site ~k /. mrhs_bytes_per_site ~k:1

(* The codec axis composed with the batch-width axis: a width-k hop on
   a recon-[r] store streams [spinor + link(r)/k] bytes per site per
   RHS. [recon = Full18, k = 1] recovers mrhs_bytes_per_site ~k:1. *)
let mrhs_bytes_per_site_recon ~recon ~k =
  if k < 1 then
    invalid_arg "Perf_model.mrhs_bytes_per_site_recon: k must be >= 1";
  spinor_bytes_per_site +. (link_bytes_per_site_recon ~recon /. float_of_int k)

let recon_traffic_ratio ~recon ~k =
  mrhs_bytes_per_site_recon ~recon ~k /. mrhs_bytes_per_site ~k:1

(* ---- low-mode deflation pricing (Solver.Lanczos / Solver.Deflate) ----
   The deflation axis trades a one-off eigenspace setup per gauge
   configuration against a per-solve iteration reduction on every one
   of the campaign's correlated solves (24 = 12 spin-color columns × 2
   sources in the paper's workflow). The functions price the three
   legs separately — setup cost, amortization, predicted reduction —
   so `bench deflate` and the tuner can report the break-even solve
   count honestly. *)

(* Operator applications of a thick-restart Lanczos build: the first
   cycle fills the whole working basis of [basis] vectors; each of the
   [restarts] later cycles keeps the [rank] Ritz vectors (and their
   stored operator images — the thick restart) and refills only the
   remaining basis − rank slots. *)
let deflation_setup_applies ~rank ~basis ~restarts =
  if rank < 1 then invalid_arg "Perf_model.deflation_setup_applies: rank >= 1";
  if basis <= rank then
    invalid_arg "Perf_model.deflation_setup_applies: basis must exceed rank";
  if restarts < 0 then
    invalid_arg "Perf_model.deflation_setup_applies: restarts >= 0";
  basis + (restarts * (basis - rank))

(* Setup flops over vectors of [n] floats: the stencil applications
   (priced by the caller's flops_per_apply), full reorthogonalization
   (two classical Gram-Schmidt passes of dot + axpy, 2n flops each,
   against up to [basis] vectors per filled slot), and the basis²
   projection dots (2n each) of the Rayleigh–Ritz step per cycle. *)
let deflation_setup_flops ~rank ~basis ~restarts ~n ~flops_per_apply =
  let applies =
    float_of_int (deflation_setup_applies ~rank ~basis ~restarts)
  in
  let nf = float_of_int n in
  (applies *. flops_per_apply)
  +. (applies *. 8. *. nf *. float_of_int basis)
  +. (float_of_int (restarts + 1) *. float_of_int (basis * basis) *. 2. *. nf)

(* Setup bytes of the BLAS-1 side, double precision: each dot or axpy
   streams two vectors (16 bytes per float pair element); the CGS2
   passes run 4 such sweeps per (slot, basis vector) and the
   projection 1 per (basis, basis) pair per cycle. The stencil traffic
   of the applies is the operator's own business (link/spinor bytes
   above), exactly as the blas1/stencil split everywhere else. *)
let deflation_setup_bytes ~rank ~basis ~restarts ~n =
  let applies =
    float_of_int (deflation_setup_applies ~rank ~basis ~restarts)
  in
  let sweep = 16. *. float_of_int n in
  (applies *. 4. *. float_of_int basis *. sweep)
  +. (float_of_int (restarts + 1) *. float_of_int (basis * basis) *. sweep)

(* Per-application cost of the deflated guess itself: rank dots (2n
   each) plus the single rank-wide Multi_blas.block_axpy combination
   (2n per basis vector, one sweep over memory). *)
let deflation_guess_flops ~rank ~n =
  if rank < 1 then invalid_arg "Perf_model.deflation_guess_flops: rank >= 1";
  4. *. float_of_int rank *. float_of_int n

let deflation_amortized_flops ~setup_flops ~solves =
  if solves < 1 then
    invalid_arg "Perf_model.deflation_amortized_flops: solves >= 1";
  setup_flops /. float_of_int solves

(* Condition number after deflating every mode below [lambda_cut]
   (the (rank+1)-th eigenvalue): the Ritz-compressed spectrum CG
   actually sees. *)
let deflated_condition ~lambda_max ~lambda_cut =
  if not (lambda_max > 0. && lambda_cut > 0.) then
    invalid_arg "Perf_model.deflated_condition: eigenvalues must be positive";
  lambda_max /. lambda_cut

(* Predicted iteration fraction from the classical CG bound
   ~ sqrt(κ)·ln(2/tol)/2 (Solver.Eigen.cg_iteration_bound): the tol
   factor cancels in the ratio, leaving sqrt(κ_deflated/κ). *)
let deflation_iteration_ratio ~kappa ~kappa_deflated =
  if not (kappa > 0. && kappa_deflated > 0.) then
    invalid_arg "Perf_model.deflation_iteration_ratio: kappa must be positive";
  sqrt (kappa_deflated /. kappa)

(* Solves needed before the setup pays for itself: setup time over the
   per-solve saving; infinite when deflation does not reduce the
   per-solve cost (the tuner's rank-0 fallback). *)
let deflation_break_even_solves ~setup_s ~t_undeflated_s ~t_deflated_s =
  if t_undeflated_s <= t_deflated_s then infinity
  else setup_s /. (t_undeflated_s -. t_deflated_s)

type breakdown = {
  grid : int array;
  local_sites : float;  (* 5D sites per GPU *)
  t_stencil : float;
  t_comm_intra : float;
  t_comm_inter : float;
  t_latency : float;
  t_overhead : float;
  t_sync : float;
      (* host pool fork/join + per-chunk dispatch for the (domains,
         chunk) geometry passed as ?pool; zero when no pool is priced *)
  t_copy : float;
      (* transport extra-copy time: Double_buffered pays one rotation
         copy of the halo payload against GPU memory bandwidth; zero
         for Staged/Zero_copy *)
  blas1_sweeps_per_iter : float;
      (* full-vector memory sweeps of the CG BLAS-1 tail per iteration
         under the priced fusion mode: 5. unfused, 2. fused; 0. when
         ?fusion is not passed *)
  blas1_bytes : float;
      (* bytes those sweeps move per iteration (half-precision
         storage); 0. when ?fusion is not passed *)
  t_blas1 : float;
      (* blas1_bytes at solver bandwidth + one launch per sweep; added
         to t_total only when ?fusion is passed *)
  t_total : float;  (* per stencil application *)
  halo_bytes_intra : float;
  halo_bytes_inter : float;
  face_times : (int * float) list;
      (* per posted face (id 0–7, decomposed dims only): message time
         incl. per-message latency — the completion schedule the
         fine-grained policy pipelines against *)
}

type result = {
  machine : Spec.t;
  n_gpus : int;
  policy : Policy.t;
  transport : Transport.t;
  tflops_total : float;
  tflops_per_gpu : float;
  percent_peak : float;
  bw_per_gpu_gbs : float;
  breakdown : breakdown;
}

(* Time components for one stencil application on [n_gpus].
   [transport] prices the halo buffer management: Double_buffered pays
   one extra copy of the full halo payload against GPU memory
   bandwidth; Staged (default) and Zero_copy pay none, keeping the
   calibrated numbers unchanged. [fusion] (when passed) additionally
   prices the CG iteration's BLAS-1 tail into t_blas1/t_total —
   [Some true] at the fused sweep count, [Some false] unfused; omitted
   (the default), the BLAS-1 fields are zero and t_total is the bare
   stencil time as before.

   [compress] prices the halo wire format the same tri-state way:
   omitted keeps the calibrated numbers (whose achieved bandwidths
   already absorb the paper's compressed wire); [Some true] keeps the
   compressed bytes but charges the codec explicitly — encode + decode
   passes over the double-precision face stream at GPU memory
   bandwidth, pack-side serial work accounted into t_copy like the
   rotation copy; [Some false] ships the faces uncompressed
   (double-precision reals, 4x the wire bytes, no codec cost).
   Zero_copy has no staging buffer to compress, so [Some true] with it
   is rejected — the same constraint Vrank.Comm enforces. *)
let stencil_breakdown ?(transport = Transport.Staged) ?pool ?fusion ?compress
    (m : Spec.t) (policy : Policy.t) p ~n_gpus =
  if compress = Some true && transport = Transport.Zero_copy then
    invalid_arg
      "Perf_model.stencil_breakdown: compress requires a staging buffer \
       (Staged or Double_buffered)";
  let face_site_bytes =
    match compress with
    | None | Some true -> halo_bytes_per_face_site
    | Some false -> halo_bytes_per_face_site_double
  in
  match best_grid p n_gpus with
  | None -> None
  | Some grid ->
    let local = Array.init 4 (fun mu -> p.dims.(mu) / grid.(mu)) in
    let v4 = Array.fold_left ( * ) 1 local in
    let local_sites = float_of_int (v4 * p.l5) in
    let bw = solver_bw m ~local_sites in
    let t_stencil = local_sites *. bytes_per_site /. bw in
    (* halo *)
    let nsub = node_subgrid m p grid in
    let decomposed = ref 0 in
    let bytes_intra = ref 0. and bytes_inter = ref 0. in
    for mu = 0 to 3 do
      if grid.(mu) > 1 then begin
        incr decomposed;
        let face_sites = float_of_int (2 * v4 / local.(mu) * p.l5) in
        let bytes = face_sites *. face_site_bytes in
        (* a GPU's +-mu neighbors cross the node block with
           probability 1/nsub_mu *)
        let inter_frac = 1. /. float_of_int nsub.(mu) in
        bytes_inter := !bytes_inter +. (bytes *. inter_frac);
        bytes_intra := !bytes_intra +. (bytes *. (1. -. inter_frac))
      end
    done;
    let n_nodes = float_of_int n_gpus /. float_of_int m.Spec.gpus_per_node in
    let contention = 1. /. (1. +. (n_nodes /. m.Spec.contention_nodes)) in
    let bw_inter = Policy.internode_bw_per_gpu policy m *. contention in
    let bw_intra =
      if m.Spec.nvlink_gbs > 0. then m.Spec.nvlink_gbs *. 1e9
      else m.Spec.cpu_gpu_gbs *. 1e9 /. float_of_int m.Spec.gpus_per_node
    in
    let t_comm_inter = if !bytes_inter > 0. then !bytes_inter /. bw_inter else 0. in
    let t_comm_intra = if !bytes_intra > 0. then !bytes_intra /. bw_intra else 0. in
    let n_msgs = if !decomposed > 0 then Policy.messages policy ~decomposed_dims:!decomposed else 0 in
    let t_latency = float_of_int n_msgs *. m.Spec.msg_latency_s in
    (* Per-face message time for the nonblocking protocol: each
       decomposed dimension sends two faces, each carrying half the
       dimension's bytes (same intra/inter split) plus one message
       latency. Sums back to t_comm_inter + t_comm_intra + 2d·latency —
       the fine-grained aggregate. *)
    let face_times =
      List.concat
        (List.init 4 (fun mu ->
             if grid.(mu) <= 1 then []
             else begin
               let face_sites = float_of_int (v4 / local.(mu) * p.l5) in
               let bytes = face_sites *. face_site_bytes in
               let inter_frac = 1. /. float_of_int nsub.(mu) in
               let tf =
                 (bytes *. inter_frac /. bw_inter)
                 +. (bytes *. (1. -. inter_frac) /. bw_intra)
                 +. m.Spec.msg_latency_s
               in
               [ (2 * mu, tf); ((2 * mu) + 1, tf) ]
             end))
    in
    let launches =
      1 + (if !decomposed > 0 then Policy.halo_kernel_launches policy ~decomposed_dims:!decomposed else 0)
    in
    let t_allreduce =
      (* two double-precision reductions per iteration, tree-combined *)
      2. *. m.Spec.allreduce_base_s *. log (float_of_int (max 2 n_gpus)) /. log 2.
    in
    let t_overhead =
      (float_of_int launches *. m.Spec.launch_overhead_s) +. t_allreduce
    in
    let t_copy =
      float_of_int (Transport.extra_copies transport)
      *. (!bytes_intra +. !bytes_inter)
      /. (m.Spec.gpu.Spec.mem_bw_gbs *. 1e9)
    in
    (* explicit codec pricing: encode + decode each stream the
       double-precision face payload once at GPU memory bandwidth;
       pack-side serial work, accounted like the rotation copy *)
    let t_copy =
      if compress = Some true then
        let double_bytes =
          (!bytes_intra +. !bytes_inter)
          *. (halo_bytes_per_face_site_double /. halo_bytes_per_face_site)
        in
        t_copy
        +. compress_codec_passes *. double_bytes
           /. (m.Spec.gpu.Spec.mem_bw_gbs *. 1e9)
      else t_copy
    in
    let t_sync =
      match pool with
      | Some (domains, chunk) when domains > 1 && chunk > 0 ->
        let n_chunks = ceil (local_sites /. float_of_int chunk) in
        fork_join_s +. (n_chunks *. chunk_dispatch_s)
      | _ -> 0.
    in
    let sweeps, blas1_bytes, t_blas1 =
      match fusion with
      | None -> (0., 0., 0.)
      | Some fused ->
        let sweeps = blas1_sweeps ~fused in
        let bytes = sweeps *. local_sites *. blas1_bytes_per_site_sweep in
        ( sweeps,
          bytes,
          (bytes /. bw) +. (sweeps *. m.Spec.launch_overhead_s) )
    in
    let t_comm = t_comm_inter +. t_comm_intra +. t_latency in
    let t_total =
      if Policy.overlaps policy && !decomposed > 0 then begin
        (* fine-grained: interior compute hides communication, and each
           face's boundary sub-stencil runs as soon as that face lands.
           Messages serialize on the NIC (arrivals are the running sum
           of face times); boundary work per face is its share of the
           surface. *)
        let surf = float_of_int (surface_sites p grid) in
        let boundary_frac = Float.min 0.9 (surf /. float_of_int v4) in
        let t_interior = t_stencil *. (1. -. boundary_frac) in
        let t_boundary = t_stencil *. boundary_frac in
        let busy = ref t_interior and arrival = ref 0. in
        List.iter
          (fun (fid, tf) ->
            arrival := !arrival +. tf;
            let share = float_of_int (v4 / local.(fid / 2)) /. surf in
            busy := Float.max !busy !arrival +. (t_boundary *. share))
          face_times;
        (* the rotation copy is pack-side serial work: not hidden;
           the BLAS-1 tail is serial stream work after the stencil *)
        !busy +. t_copy +. t_sync +. t_overhead +. t_blas1
      end
      else t_stencil +. t_comm +. t_copy +. t_sync +. t_overhead +. t_blas1
    in
    Some
      {
        grid;
        local_sites;
        t_stencil;
        t_comm_intra;
        t_comm_inter;
        t_latency;
        t_overhead;
        t_sync;
        t_copy;
        blas1_sweeps_per_iter = sweeps;
        blas1_bytes;
        t_blas1;
        t_total;
        halo_bytes_intra = !bytes_intra;
        halo_bytes_inter = !bytes_inter;
        face_times;
      }

let solver_performance ?(transport = Transport.Staged) ?pool ?fusion ?compress
    (m : Spec.t) (policy : Policy.t) p ~n_gpus =
  match stencil_breakdown ~transport ?pool ?fusion ?compress m policy p ~n_gpus with
  | None -> None
  | Some b ->
    let flops_app = b.local_sites *. flops_per_site in
    let per_gpu = flops_app /. b.t_total in
    let total = per_gpu *. float_of_int n_gpus in
    Some
      {
        machine = m;
        n_gpus;
        policy;
        transport;
        tflops_total = total /. 1e12;
        tflops_per_gpu = per_gpu /. 1e12;
        percent_peak = per_gpu *. peak_scaling /. (m.Spec.gpu.Spec.fp32_tflops *. 1e12) *. 100.;
        bw_per_gpu_gbs = per_gpu /. arithmetic_intensity /. 1e9;
        breakdown = b;
      }

(* Best policy at a configuration — what the communication autotuner
   would pick (Autotune.Comm_tune drives this via its cache). *)
let best_policy ?transport ?compress (m : Spec.t) p ~n_gpus =
  let candidates = List.filter (fun pol -> Policy.available pol m) Policy.all in
  let results =
    List.filter_map
      (fun pol -> solver_performance ?transport ?compress m pol p ~n_gpus)
      candidates
  in
  match results with
  | [] -> None
  | r :: rest ->
    Some (List.fold_left (fun best r -> if r.tflops_total > best.tflops_total then r else best) r rest)

(* ---- production (whole-application) sustained performance ----
   Weak scaling runs many independent solves in fixed GPU groups; the
   job-level efficiency factors live here. *)

type mpi_stack = Spectrum | Open_mpi | Mvapich2 | Metaq_jsrun

let stack_name = function
  | Spectrum -> "SpectrumMPI"
  | Open_mpi -> "openMPI: mpi_jm"
  | Mvapich2 -> "MVAPICH2: mpi_jm"
  | Metaq_jsrun -> "SpectrumMPI: METAQ"

(* Whole-application factor: propagators are 96.5% of the work;
   contractions are hidden on the CPUs by mpi_jm; I/O is 0.5%. The
   residual covers setup/teardown per solve. *)
let application_efficiency = 0.85

(* Relative solver throughput under each MPI stack (Sec. VII: MVAPICH2
   needed for DPM was not yet tuned for Sierra). *)
let stack_factor = function
  | Spectrum -> 1.0
  | Open_mpi -> 0.95
  | Mvapich2 -> 0.80
  | Metaq_jsrun -> 0.78

let group_performance (m : Spec.t) p ~group_gpus ~stack =
  match best_policy m p ~n_gpus:group_gpus with
  | None -> None
  | Some r ->
    Some (r.tflops_total *. application_efficiency *. stack_factor stack)

(* Aggregate weak-scaling point: [n_gpus] total across independent
   groups. Near-perfect scaling by construction — the paper's point is
   that group independence makes it so; deviations come only from the
   stack factor. *)
let weak_scaling_point (m : Spec.t) p ~group_gpus ~stack ~n_gpus =
  match group_performance m p ~group_gpus ~stack with
  | None -> None
  | Some g ->
    let groups = float_of_int n_gpus /. float_of_int group_gpus in
    Some (g *. groups)
