(** Machine descriptions for the systems of Table II (Titan, Ray,
    Sierra, Summit) plus the solver calibration constants the
    performance model needs. The achieved solver bandwidths are the
    paper's own Sec. VII measurements, used as calibration inputs. *)

type gpu = {
  gpu_name : string;
  fp32_tflops : float;  (** per GPU *)
  mem_bw_gbs : float;  (** per GPU, STREAM-like peak *)
  solver_bw_gbs : float;  (** achieved CG bandwidth at large local volume *)
  sat_sites : float;  (** 5D sites/GPU at which the solver bandwidth halves *)
}

type t = {
  name : string;
  nodes : int;
  gpus_per_node : int;
  gpu : gpu;
  cpu : string;
  cpu_gpu_gbs : float;  (** host link bandwidth per node *)
  nic_gbs : float;  (** injection bandwidth per node *)
  nvlink_gbs : float;  (** GPU–GPU intra-node, per GPU (0 = via PCIe) *)
  interconnect : string;
  has_gdr : bool;  (** GPU Direct RDMA usable *)
  launch_overhead_s : float;  (** fixed kernel-launch cost per stencil call *)
  msg_latency_s : float;  (** per halo message *)
  allreduce_base_s : float;  (** reduction latency per tree level *)
  contention_nodes : float;  (** nodes at which internode bw halves *)
  node_jitter : float;  (** relative sigma of per-node speed *)
}

val k20x : gpu
val p100 : gpu
val v100 : gpu

val titan : t
val ray : t
val sierra : t
val summit : t
val all : t list

val total_gpus : t -> int
val fp32_tflops_per_node : t -> float
val gpu_bw_per_node : t -> float
val nic_gbs_per_gpu : t -> float

val table_ii : unit -> string list list
(** Table II rows for the bench harness. *)

val table_ii_header : string list
