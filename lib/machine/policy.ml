(* Communication policies for the multi-GPU stencil — the options the
   paper's communication autotuner searches over (Sec. V):

   - staging halo buffers through CPU memory and using plain MPI,
   - zero-copy reads/writes over the host link,
   - GPU Direct RDMA straight to the NIC (when the system supports it),

   each either coarse-grained (one halo-update kernel after all
   communication, fewer launches, no overlap) or fine-grained
   (per-dimension messages that overlap with interior compute). *)

type transfer = Staged_mpi | Zero_copy | Gdr

type granularity = Coarse | Fine

type t = { transfer : transfer; granularity : granularity }

let all_transfers = [ Staged_mpi; Zero_copy; Gdr ]
let all_granularities = [ Coarse; Fine ]

(* Ordered best-path-first so that performance ties resolve toward the
   more direct transfer (as a measuring autotuner would, within noise). *)
let all =
  List.concat_map
    (fun transfer ->
      List.map (fun granularity -> { transfer; granularity }) all_granularities)
    [ Gdr; Zero_copy; Staged_mpi ]

let transfer_name = function
  | Staged_mpi -> "staged-mpi"
  | Zero_copy -> "zero-copy"
  | Gdr -> "gdr"

let granularity_name = function Coarse -> "coarse" | Fine -> "fine"

let name t =
  Printf.sprintf "%s/%s" (transfer_name t.transfer) (granularity_name t.granularity)

let available t (m : Spec.t) =
  match t.transfer with Gdr -> m.Spec.has_gdr | Staged_mpi | Zero_copy -> true

(* Effective inter-node bandwidth per GPU (bytes/s) for a transfer
   path, before network contention. Staging pays for the extra
   GPU->CPU->NIC copies; zero-copy avoids one copy but reads across
   the host link at reduced efficiency; GDR gets the NIC directly. *)
let internode_bw_per_gpu t (m : Spec.t) =
  let nic = Spec.nic_gbs_per_gpu m *. 1e9 in
  let host_link = m.Spec.cpu_gpu_gbs *. 1e9 /. float_of_int m.Spec.gpus_per_node in
  match t.transfer with
  | Gdr -> nic
  | Staged_mpi -> 0.55 *. Float.min nic host_link
  | Zero_copy -> 0.7 *. Float.min nic host_link

(* Messages per stencil application per GPU for [d] decomposed
   dimensions. Fine-grained sends each direction separately (and eats
   the latency per message); coarse batches per dimension pair. *)
let messages t ~decomposed_dims =
  match t.granularity with
  | Fine -> 2 * decomposed_dims
  | Coarse -> decomposed_dims

(* Extra kernel launches the halo-update strategy costs. *)
let halo_kernel_launches t ~decomposed_dims =
  match t.granularity with Fine -> 2 * decomposed_dims | Coarse -> 1

(* Can communication overlap the interior stencil? Fine-grained yes;
   coarse waits for all halos then runs one update kernel. *)
let overlaps t = match t.granularity with Fine -> true | Coarse -> false

(* Is a Comm transport model honest for this policy's transfer path?
   A staged transport under a zero-copy/GDR wire hides the real
   send-buffer race (optimistic); a zero-copy transport under the
   staged-MPI wire invents one that the staging copy prevents
   (pessimistic). Either mismatch is what HALO013 flags; the tuner
   only surveys honest combinations. *)
let transport_ok t (tr : Transport.t) =
  match t.transfer with
  | Staged_mpi -> tr <> Transport.Zero_copy
  | Zero_copy | Gdr -> tr <> Transport.Staged
