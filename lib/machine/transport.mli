(** Halo transport modes: how the send side of a nonblocking halo
    exchange treats face data between post and complete — the
    buffer-management axis of the communication-policy space,
    orthogonal to [Policy.transfer] (which wire) and
    [Policy.granularity] (when completions are consumed). *)

type t =
  | Staged  (** pack into a fresh staging buffer at post time *)
  | Zero_copy
      (** the in-flight payload aliases the sender's field; a write
          between post and complete corrupts the delivered ghosts *)
  | Double_buffered
      (** two rotating staging buffers per face: write-after-post is
          safe by construction, at one extra copy per message *)

val all : t list
val name : t -> string

val extra_copies : t -> int
(** Copies per message beyond the staged baseline (0, 0, 1). *)

val write_after_post_safe : t -> bool
(** Whether a local write between post and complete can never corrupt
    the delivered ghosts ([false] only for [Zero_copy]). *)
