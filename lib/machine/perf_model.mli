(** Analytic performance model for the mixed-precision red-black CG on
    a GPU machine — regenerates the scaling studies of Figs. 3–7.
    Calibrated only from Table II specs and the paper's stated achieved
    bandwidths (139/516/975 GB/s per GPU), never from the figures it
    predicts. *)

type problem = { dims : int array; l5 : int }

val problem : dims:int array -> l5:int -> problem
val sites_4d : problem -> int
val sites_5d : problem -> int

val flops_per_site : float
val bytes_per_site : float
val peak_scaling : float
val arithmetic_intensity : float
val halo_bytes_per_face_site : float

val halo_bytes_per_face_site_double : float
(** The same face site shipped uncompressed (12 double-precision
    reals, 96 bytes) — the wire an unCompressed [Vrank.Comm] pays,
    priced by the [?compress:(Some false)] knob of
    {!stencil_breakdown}. *)

val compress_codec_passes : float
(** Memory passes over the double-precision face stream the explicit
    halo codec costs (encode send-side + decode recv-side). *)

val reference_local_sites : float

val solver_bw : Spec.t -> local_sites:float -> float
(** Occupancy-saturated solver bandwidth (bytes/s per GPU). *)

val grids : problem -> int -> int array list
(** All 4-factor process grids dividing the lattice dims. *)

val surface_sites : problem -> int array -> int
val best_grid : problem -> int -> int array option
(** Minimal-surface grid, or [None] if the count admits none. *)

val node_subgrid : Spec.t -> problem -> int array -> int array
(** Node-internal subgrid keeping the largest faces on NVLink. *)

val fork_join_s : float
(** One pool generation hand-off (host-side fork/join). *)

val chunk_dispatch_s : float
(** Per-chunk dispatch through the pool's atomic counter. *)

val blas1_bytes_per_site_sweep : float
(** Bytes one full-vector BLAS-1 sweep moves per 5D site in the inner
    solver's half-precision storage (24 reals × 2 bytes). *)

val blas1_sweeps : fused:bool -> float
(** Full-vector memory sweeps of the CG BLAS-1 tail per iteration:
    5 unfused (axpy x, axpy r, norm2 r, xpay p, p·Ap), 2 fused
    (cg_update + xpay_dot; the model assumes the p·Ap reduction rides
    the stencil tail as in QUDA, so its sweep is accounted to the
    stencil in both columns). *)

val blas1_host_sweeps : fused:bool -> float
(** What the host implementation actually executes: 5 unfused, 2
    fused — equal to {!blas1_sweeps} since the stencil-tail fusion
    ([Dirac.Wilson.hop_tail], [Solver.Cg]'s [apply_dot]) moved the
    p·Ap reduction into the stencil's closing sweep. Kept as the
    host-side cross-check behind [Check.Plan_check]'s PLAN005 pass,
    which now errors on any nonzero gap between an extracted plan and
    {!blas1_sweeps}. *)

val link_bytes_per_site : float
(** Gauge-link bytes one double-precision Wilson hop reads per site:
    8 neighbour links × 18 reals × 8 bytes = 1152. *)

val spinor_bytes_per_site : float
(** Spinor-stream bytes of the same hop per site per right-hand side:
    (9 × 24 + 24) reals × 8 bytes = 1920 — together with
    {!link_bytes_per_site} the per-hop half of
    [Dirac.Flops.actual_bytes_per_5d_site_double]. *)

val mrhs_bytes_per_site : k:int -> float
(** Modeled bytes per site per right-hand side of a batched
    [Dirac.Wilson.hop_multi] at batch width [k]: the spinor stream
    stays per-vector while the gauge links are loaded once for the
    batch, so this is [spinor + link/k]. [k = 1] recovers the
    single-RHS figure. Raises [Invalid_argument] on [k < 1]. *)

val mrhs_traffic_ratio : k:int -> float
(** [mrhs_bytes_per_site ~k / mrhs_bytes_per_site ~k:1] — the modeled
    traffic fraction a width-[k] batch moves per RHS. *)

val link_bytes_per_site_recon : recon:Linalg.Su3_codec.codec -> float
(** Gauge-link bytes per site when the hop streams a compressed link
    store ([Lattice.Recon]): 8 links × [Su3_codec.reals] × 8 bytes —
    1152 ([Full18]), 768 ([Recon12]), 512 ([Recon8]). The per-link
    sign byte is negligible metadata and excluded. *)

val mrhs_bytes_per_site_recon :
  recon:Linalg.Su3_codec.codec -> k:int -> float
(** The codec axis composed with the batch-width axis: bytes per site
    per RHS of a width-[k] [Dirac.Wilson.hop_multi] on a
    recon-compressed link store — [spinor + link(recon)/k].
    [~recon:Full18 ~k:1] recovers [mrhs_bytes_per_site ~k:1]. Raises
    [Invalid_argument] on [k < 1]. *)

val recon_traffic_ratio : recon:Linalg.Su3_codec.codec -> k:int -> float
(** [mrhs_bytes_per_site_recon ~recon ~k / mrhs_bytes_per_site ~k:1]
    — the modeled traffic fraction against the uncompressed
    single-RHS hop. *)

val deflation_setup_applies : rank:int -> basis:int -> restarts:int -> int
(** Operator applications of a thick-restart Lanczos build
    ([Solver.Lanczos.lowest]): [basis + restarts·(basis − rank)] —
    the first cycle fills the working basis, each later cycle keeps
    the [rank] Ritz pairs and refills the rest. Raises
    [Invalid_argument] unless [1 ≤ rank < basis] and [restarts ≥ 0]. *)

val deflation_setup_flops :
  rank:int ->
  basis:int ->
  restarts:int ->
  n:int ->
  flops_per_apply:float ->
  float
(** Setup flops over vectors of [n] floats: applies·[flops_per_apply]
    + applies·8n·basis (two CGS reorthogonalization passes of
    dot + axpy per filled slot) + (restarts+1)·basis²·2n (the
    Rayleigh–Ritz projection dots per cycle). *)

val deflation_setup_bytes :
  rank:int -> basis:int -> restarts:int -> n:int -> float
(** Double-precision BLAS-1 bytes of the same build (two 8-byte
    vectors streamed per dot/axpy sweep); the applies' stencil
    traffic is priced by the link/spinor figures above, exactly the
    blas1/stencil split used everywhere else. *)

val deflation_guess_flops : rank:int -> n:int -> float
(** Per-solve cost of the deflated guess: rank dots + one rank-wide
    [Multi_blas.block_axpy] combination = 4·rank·n flops. *)

val deflation_amortized_flops : setup_flops:float -> solves:int -> float
(** Setup flops charged to each of the campaign's [solves] solves.
    Raises [Invalid_argument] on [solves < 1]. *)

val deflated_condition : lambda_max:float -> lambda_cut:float -> float
(** Condition number after deflating every mode below [lambda_cut]
    (the (rank+1)-th eigenvalue): [lambda_max / lambda_cut] — the
    Ritz-compressed spectrum CG actually sees. *)

val deflation_iteration_ratio : kappa:float -> kappa_deflated:float -> float
(** Predicted iteration fraction [sqrt(kappa_deflated / kappa)] from
    the classical CG bound ([Solver.Eigen.cg_iteration_bound]; the
    tolerance factor cancels in the ratio). *)

val deflation_break_even_solves :
  setup_s:float -> t_undeflated_s:float -> t_deflated_s:float -> float
(** Solves before the setup pays for itself:
    [setup_s / (t_undeflated_s − t_deflated_s)], or [infinity] when
    deflation does not reduce the per-solve cost. *)

type breakdown = {
  grid : int array;
  local_sites : float;
  t_stencil : float;
  t_comm_intra : float;
  t_comm_inter : float;
  t_latency : float;
  t_overhead : float;
  t_sync : float;
      (** host pool fork/join + per-chunk dispatch for the (domains,
          chunk) geometry passed as [?pool]; zero when none is priced *)
  t_copy : float;
      (** transport extra-copy time ([Transport.Double_buffered] pays
          one rotation copy of the halo payload at GPU memory
          bandwidth; zero for [Staged]/[Zero_copy]) *)
  blas1_sweeps_per_iter : float;
      (** CG BLAS-1 tail sweeps per iteration under the priced fusion
          mode (5 unfused / 2 fused); 0 when [?fusion] is omitted *)
  blas1_bytes : float;
      (** bytes those sweeps move per iteration; 0 when [?fusion] is
          omitted *)
  t_blas1 : float;
      (** [blas1_bytes] at solver bandwidth plus one kernel launch per
          sweep; included in [t_total] only when [?fusion] is passed *)
  t_total : float;
  halo_bytes_intra : float;
  halo_bytes_inter : float;
  face_times : (int * float) list;
      (** Per posted face [(id, seconds)], ids 0–7 for decomposed dims
          only: message time including per-message latency. This is the
          completion schedule the fine-grained policy pipelines its
          boundary sub-stencils against; the times sum to
          [t_comm_intra + t_comm_inter + t_latency] under a fine
          policy. *)
}

type result = {
  machine : Spec.t;
  n_gpus : int;
  policy : Policy.t;
  transport : Transport.t;
  tflops_total : float;
  tflops_per_gpu : float;
  percent_peak : float;
  bw_per_gpu_gbs : float;
  breakdown : breakdown;
}

val stencil_breakdown :
  ?transport:Transport.t ->
  ?pool:int * int ->
  ?fusion:bool ->
  ?compress:bool ->
  Spec.t ->
  Policy.t ->
  problem ->
  n_gpus:int ->
  breakdown option
(** [transport] (default [Staged]) prices the halo buffer management
    into [t_copy]; [pool] (a [(domains, chunk)] geometry) prices the
    host pool's fork/join into [t_sync]; [fusion] prices the CG
    iteration's BLAS-1 memory traffic into [t_blas1] at the fused
    ([Some true], 2 sweeps) or unfused ([Some false], 5 sweeps) rate.
    [compress] prices the halo wire format: omitted keeps the
    calibrated numbers (the paper's achieved bandwidths already absorb
    its compressed wire); [Some true] keeps the compressed face bytes
    but charges the codec explicitly ([compress_codec_passes] over the
    double-precision face stream at GPU memory bandwidth, into
    [t_copy]); [Some false] ships faces uncompressed
    ([halo_bytes_per_face_site_double], no codec). [Some true] with
    [Zero_copy] raises [Invalid_argument] — no staging buffer to
    compress, the constraint [Vrank.Comm.create] enforces. The
    defaults leave the calibrated numbers unchanged. *)

val solver_performance :
  ?transport:Transport.t ->
  ?pool:int * int ->
  ?fusion:bool ->
  ?compress:bool ->
  Spec.t ->
  Policy.t ->
  problem ->
  n_gpus:int ->
  result option

val best_policy :
  ?transport:Transport.t ->
  ?compress:bool ->
  Spec.t ->
  problem ->
  n_gpus:int ->
  result option
(** What the communication autotuner would pick. *)

type mpi_stack = Spectrum | Open_mpi | Mvapich2 | Metaq_jsrun

val stack_name : mpi_stack -> string
val application_efficiency : float
val stack_factor : mpi_stack -> float

val group_performance :
  Spec.t -> problem -> group_gpus:int -> stack:mpi_stack -> float option
(** Whole-application sustained TFlops of one solve group. *)

val weak_scaling_point :
  Spec.t -> problem -> group_gpus:int -> stack:mpi_stack -> n_gpus:int -> float option
(** Aggregate TFlops of [n_gpus] running independent groups. *)
