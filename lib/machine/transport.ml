(* Halo transport modes: how the send side of a nonblocking exchange
   treats the face data between post and complete. This is the
   buffer-management axis of the communication-policy space — distinct
   from Policy.transfer (which wire the bytes cross) and from
   Policy.granularity (when completions are consumed):

   - Staged: pack each face into a fresh staging buffer at post time.
     A later local write cannot change the bytes in flight, but the
     classic send-buffer race is still flagged, because a staged model
     standing in for a real zero-copy path hides the corruption that
     path would suffer.
   - Zero_copy: the in-flight message aliases the sender's field; the
     bytes are only read at completion time. A write between post and
     complete genuinely corrupts the delivered ghosts — the honest
     model of Policy.Zero_copy / Policy.Gdr transfers.
   - Double_buffered: pack into one of two rotating per-face staging
     buffers. Write-after-post is safe by construction (the writer
     never touches a buffer still in flight), at the price of one
     extra copy per message, which Perf_model charges against memory
     bandwidth. *)

type t = Staged | Zero_copy | Double_buffered

let all = [ Staged; Zero_copy; Double_buffered ]

let name = function
  | Staged -> "staged"
  | Zero_copy -> "zero-copy"
  | Double_buffered -> "double-buffered"

(* Copies per message beyond what every transport pays to move the
   payload itself. Staged's post-time pack is the baseline the model
   is calibrated against; zero-copy skips it but reads the live field;
   double-buffering adds one rotation copy on top of the baseline. *)
let extra_copies = function Staged | Zero_copy -> 0 | Double_buffered -> 1

(* Can a local write between post and complete corrupt the delivered
   ghosts? Only under zero-copy, where the payload aliases the field. *)
let write_after_post_safe = function
  | Zero_copy -> false
  | Staged | Double_buffered -> true
