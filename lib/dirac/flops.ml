(* Floating-point operation accounting, in two flavours:

   - [actual_*]: what this OCaml implementation really executes per
     site, derived from the kernel structure (half-spinor Wilson
     stencil, M5d recursions, BLAS-1).

   - [paper_*]: the conventional LQCD counts the paper reports against
     ("10,000-12,000 flops per five-dimensional lattice point" for the
     red-black preconditioned Mobius normal operator, arithmetic
     intensity 1.8-1.9). The performance model uses these so figure
     reproductions are in the paper's own units. *)

(* Wilson half-spinor stencil per output site:
   8 direction-sides x (projection 6 cadd + 2 SU(3) matvecs + 12
   reconstruct/accumulate cadds) with cadd = 2 flops, cmul = 6 flops.
   SU(3) matvec on a half-spinor row pair: handled as 2 matvecs of
   66 flops each. *)
let matvec = 66
let wilson_hop_per_site = 8 * ((6 * 2) + (2 * matvec) + (12 * 2))

(* Full Wilson op adds axpy-like diagonal: 2 flops per float. *)
let wilson_apply_per_site = wilson_hop_per_site + (2 * 24)

(* M5d: per float, one multiply-add pair for diagonal + one for the
   s-neighbour = 4 flops. *)
let m5_per_5d_site = 4 * 24

(* M5inv: substitution (2 flops/float) + corner correction (2) ~ 4. *)
let m5inv_per_5d_site = 4 * 24

(* combine_slice: 4 flops per float. *)
let combine_per_5d_site = 4 * 24

(* One hop_eo application per 5D site: combine + wilson hop + scale. *)
let hop5_per_5d_site = combine_per_5d_site + wilson_hop_per_site + 24

(* Schur S = M5 - Hop M5inv Hop: 2 hops + m5inv + m5 + subtract. *)
let schur_per_5d_site =
  (2 * hop5_per_5d_site) + m5inv_per_5d_site + m5_per_5d_site + 24

(* Normal operator = S^dag S = 2 Schur + 2 G5R5 copies (0 flops). *)
let schur_normal_per_5d_site = 2 * schur_per_5d_site

(* BLAS-1 in CG per iteration per 5D site, unfused (dot p.Ap, axpy x,
   axpy r, norm2 r, xpay p — five kernels, each 2 flops per float over
   24 floats): the paper quotes 50-100 flops per site for these. *)
let cg_blas1_per_5d_site = 5 * 2 * 24

(* Fused path (Solver.Cg ~fused / Linalg.Fused): same updates plus the
   p.r orthogonality monitor riding the xpay sweep, 2 extra flops per
   float. More flops, fewer bytes — the fused trade. *)
let cg_blas1_fused_per_5d_site = cg_blas1_per_5d_site + (2 * 24)

(* Double-precision bytes the CG BLAS-1 tail moves per iteration per
   5D site in this implementation. Unfused, 5 kernels: dot (2 reads) +
   axpy x (2r+1w) + axpy r (2r+1w) + norm2 (1r) + xpay (2r+1w) = 12
   float-passes. Fused, 2 kernels: cg_update (4r+2w) + xpay_dot
   (2r+1w; q = r is one of the reads) = 9 — the p·Ap reads ride the
   stencil's tail (Wilson.hop_tail / Mobius.apply_schur_normal_tail),
   so they are priced with the stencil traffic, not the BLAS-1 tail.
   There is no whitelisted gap between this accounting and
   Machine.Perf_model's sweep pricing any more: Check.Plan_check
   PLAN005 derives the gap from the extracted plan and errors on any
   nonzero value. *)
let cg_blas1_bytes_per_5d_site ~fused =
  (if fused then 9 else 12) * 24 * 8

let cg_iteration_per_5d_site = schur_normal_per_5d_site + cg_blas1_per_5d_site

(* ---- Paper conventions ---- *)

(* "between 10,000-12,000 floating point operations per
   five-dimensional lattice point" for the preconditioned stencil. *)
let paper_stencil_per_5d_site = 11_000.

(* Arithmetic intensity of the half-precision CG (flops per byte). *)
let paper_arithmetic_intensity = 1.9

(* Percent-of-peak correction: not all ops issue as FMA and reductions
   run in double, a 1.675x scaling on the raw solver flops (Sec VI). *)
let paper_peak_scaling = 1.675

(* Bytes touched per 5D site per stencil application in half precision:
   derived from the paper's own numbers (flops / intensity). *)
let paper_bytes_per_5d_site =
  paper_stencil_per_5d_site /. paper_arithmetic_intensity

(* Our implementation's memory traffic per 5D site for the Schur
   stencil in double precision: spinor in (9 pt stencil, 24 floats) +
   gauge (8 links x 18) + write, x8 bytes — a rough effective number
   used only for reporting the OCaml kernels' bandwidth. *)
let actual_bytes_per_5d_site_double =
  (* two wilson hops within the Schur op dominate *)
  float_of_int (2 * (((9 * 24) + (8 * 18) + 24) * 8))
