(** Floating-point operation accounting: [actual_*]/structural counts
    of the OCaml kernels per (5D) site, and the paper's conventional
    LQCD counts ([paper_*]) the performance model reports against. *)

val matvec : int
val wilson_hop_per_site : int
val wilson_apply_per_site : int
val m5_per_5d_site : int
val m5inv_per_5d_site : int
val combine_per_5d_site : int
val hop5_per_5d_site : int
val schur_per_5d_site : int
val schur_normal_per_5d_site : int
val cg_blas1_per_5d_site : int
(** Unfused CG BLAS-1 flops per iteration per 5D site (5 kernels). *)

val cg_blas1_fused_per_5d_site : int
(** Fused-path flops: the unfused count plus the p·r orthogonality
    monitor riding the xpay sweep (2 extra flops per float). *)

val cg_blas1_bytes_per_5d_site : fused:bool -> int
(** Double-precision bytes the CG BLAS-1 tail moves per iteration per
    5D site: 12 float-passes unfused, 9 fused — the p·Ap reads ride
    the stencil tail ([Dirac.Wilson.hop_tail]), so they are priced
    with the stencil traffic. *)

val cg_iteration_per_5d_site : int

val paper_stencil_per_5d_site : float
(** "10,000–12,000 flops per five-dimensional lattice point". *)

val paper_arithmetic_intensity : float
val paper_peak_scaling : float
val paper_bytes_per_5d_site : float
val actual_bytes_per_5d_site_double : float
