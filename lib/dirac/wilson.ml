(* Wilson hopping term — the radius-one stencil at the heart of the
   paper's solver. One kernel serves three callers through flat index
   tables: the full-volume operator (tables from Lattice.Geometry), the
   domain-decomposed operator (tables from Lattice.Domain, pointing
   into ghost slots), and the even-odd checkerboarded operator used by
   the red-black preconditioned Mobius solve.

   The kernel uses the half-spinor (spin projection) trick: (1 -+
   gamma_mu) has rank two, and in the DeGrand-Rossi basis spins {0,1}
   always project onto {2,3}, so two SU(3) mat-vecs per direction-side
   suffice; the other two spin components are reconstructed by a phase.

   dst(x) = sum_mu [ U_mu(x) (1-g_mu) src(x+mu)
                   + U_mu(x-mu)^dag (1+g_mu) src(x-mu) ]

   Gauge storage is behind a link-fetch: the tables name links (site·4
   + mu), and each site body materializes the link into an 18-float
   scratch before the mat-vec — a plain float64 copy for the full
   store (same values, so bit-identical to the pre-codec kernel), or a
   Su3_codec reconstruction for a packed store (Lattice.Recon), which
   is how the reconstruct-12/8 compression reaches every hop flavor
   (hop, hop_tail, hop_multi, and the Mobius Schur chain built on
   them) through the one kernel body. *)

open Bigarray
module Cplx = Linalg.Cplx
module Codec = Linalg.Su3_codec

type store =
  | Full of Linalg.Field.t  (* shared Gauge.data, 18 reals per link *)
  | Packed of Lattice.Recon.t

type t = {
  n_sites : int;  (* sites the kernel writes *)
  src_fwd : int array;  (* 4*i + mu -> source index of the forward hop *)
  src_bwd : int array;
  gauge_fwd : int array;  (* 4*i + mu -> link index of U_mu(x) *)
  gauge_bwd : int array;  (* 4*i + mu -> link index of U_mu(x - mu) *)
  store : store;
  recon : Codec.codec;
}

let floats_per_site = Gamma.floats_per_site
let recon t = t.recon

let make_store recon gauge_data =
  match recon with
  | Codec.Full18 -> Full gauge_data
  | Codec.Recon12 | Codec.Recon8 ->
    Packed (Lattice.Recon.pack_field recon gauge_data)

let of_geometry ?(recon = Codec.Full18) geom gauge_field =
  if not (Lattice.Gauge.geom gauge_field == geom) then
    invalid_arg "Wilson.of_geometry: gauge field on different geometry";
  let n = Lattice.Geometry.volume geom in
  let fwd = Lattice.Geometry.fwd_table geom in
  let bwd = Lattice.Geometry.bwd_table geom in
  {
    n_sites = n;
    src_fwd = fwd;
    src_bwd = bwd;
    gauge_fwd = Array.init (n * 4) (fun e -> e);
    gauge_bwd = Array.init (n * 4) (fun e -> (bwd.(e) * 4) + (e mod 4));
    store = make_store recon (Lattice.Gauge.data gauge_field);
    recon;
  }

let of_domain_rank ?(recon = Codec.Full18) (rg : Lattice.Domain.rank_geometry)
    gauge_ext =
  let n = rg.Lattice.Domain.local_volume in
  let fwd = rg.Lattice.Domain.fwd and bwd = rg.Lattice.Domain.bwd in
  {
    n_sites = n;
    src_fwd = fwd;
    src_bwd = bwd;
    gauge_fwd = Array.init (n * 4) (fun e -> e);
    gauge_bwd = Array.init (n * 4) (fun e -> (bwd.(e) * 4) + (e mod 4));
    store = make_store recon gauge_ext;
    recon;
  }

(* Checkerboarded hopping: writes sites of [parity], reads a source
   field indexed by the eo-index of the opposite parity. *)
let of_checkerboard ?(recon = Codec.Full18) geom gauge_field ~parity =
  if not (Lattice.Gauge.geom gauge_field == geom) then
    invalid_arg "Wilson.of_checkerboard: gauge field on different geometry";
  let half = Lattice.Geometry.half_volume geom in
  let src_fwd = Array.make (half * 4) 0 in
  let src_bwd = Array.make (half * 4) 0 in
  let gauge_fwd = Array.make (half * 4) 0 in
  let gauge_bwd = Array.make (half * 4) 0 in
  for i = 0 to half - 1 do
    let x = Lattice.Geometry.site_of_eo geom ~parity ~index:i in
    for mu = 0 to 3 do
      let xf = Lattice.Geometry.fwd geom x mu in
      let xb = Lattice.Geometry.bwd geom x mu in
      src_fwd.((i * 4) + mu) <- Lattice.Geometry.eo_index geom xf;
      src_bwd.((i * 4) + mu) <- Lattice.Geometry.eo_index geom xb;
      gauge_fwd.((i * 4) + mu) <- (x * 4) + mu;
      gauge_bwd.((i * 4) + mu) <- (xb * 4) + mu
    done
  done;
  {
    n_sites = half;
    src_fwd;
    src_bwd;
    gauge_fwd;
    gauge_bwd;
    store = make_store recon (Lattice.Gauge.data gauge_field);
    recon;
  }

(* The link-fetch a site body uses: fills the closure's 18-float
   scratch from the store. Built inside make_do_site* so pooled ranges
   never share the packed-codec scratch. The full-store fetch is a
   float64 copy — identical values, so the kernel's float operations
   (and results) are bit-for-bit those of the direct-indexing kernel
   it replaced. *)
let make_fetch t =
  match t.store with
  | Full g ->
    fun link (uf : float array) ->
      let base = link * 18 in
      for j = 0 to 17 do
        Array.unsafe_set uf j (Array1.unsafe_get g (base + j))
      done
  | Packed p ->
    let packed = Array.make (Codec.reals (Lattice.Recon.codec p)) 0. in
    fun link uf -> Lattice.Recon.decode_sub p ~link ~packed uf

(* Per-direction projection data: for all four gammas, spins {0,1}
   partner with {2,3}; (1 - sign*gamma) component s in {0,1} is
   src_s - sign*phase_s*src_{partner_s}, and after the mat-vec the
   partner component is -sign*conj(phase_s) times the result. *)
let partner =
  Array.init 4 (fun mu -> (Gamma.gammas.(mu).Gamma.perm.(0), Gamma.gammas.(mu).Gamma.perm.(1)))

let phases =
  Array.init 4 (fun mu ->
      let p0 = Gamma.gammas.(mu).Gamma.phase.(0)
      and p1 = Gamma.gammas.(mu).Gamma.phase.(1) in
      (p0.Cplx.re, p0.Cplx.im, p1.Cplx.re, p1.Cplx.im))

(* The site body closes over freshly allocated scratch (acc, half-
   spinors, mat-vec results): each pooled range builds its own closure,
   so concurrent ranges never share mutable state. Writes land only in
   dst[x*fps, (x+1)*fps) of the written site and all reads are of the
   source field — site-partitioned execution is race-free. *)
let make_do_site t ~(src : Linalg.Field.t) ~(dst : Linalg.Field.t) =
  let acc = Array.make floats_per_site 0. in
  let h0 = Array.make 6 0. and h1 = Array.make 6 0. in
  let g0 = Array.make 6 0. and g1 = Array.make 6 0. in
  let uf = Array.make 18 0. in
  let fetch = make_fetch t in
  let do_site x =
    Array.fill acc 0 floats_per_site 0.;
    let xb4 = x * 4 in
    for mu = 0 to 3 do
      let pa, pb = partner.(mu) in
      let p0r, p0i, p1r, p1i = phases.(mu) in
      for side = 0 to 1 do
        (* side 0: forward, project (1-gamma), multiply by U_mu(x).
           side 1: backward, project (1+gamma), multiply by U^dag. *)
        let sign = if side = 0 then -1. else 1. in
        let nb =
          (if side = 0 then Array.unsafe_get t.src_fwd (xb4 + mu)
           else Array.unsafe_get t.src_bwd (xb4 + mu))
          * floats_per_site
        in
        fetch
          (if side = 0 then Array.unsafe_get t.gauge_fwd (xb4 + mu)
           else Array.unsafe_get t.gauge_bwd (xb4 + mu))
          uf;
        for c = 0 to 2 do
          let o0 = nb + (c * 2) in
          let opa = nb + (((pa * 3) + c) * 2) in
          let s0r = Array1.unsafe_get src o0
          and s0i = Array1.unsafe_get src (o0 + 1) in
          let sar = Array1.unsafe_get src opa
          and sai = Array1.unsafe_get src (opa + 1) in
          h0.(c * 2) <- s0r +. (sign *. ((p0r *. sar) -. (p0i *. sai)));
          h0.((c * 2) + 1) <- s0i +. (sign *. ((p0r *. sai) +. (p0i *. sar)));
          let o1 = nb + ((3 + c) * 2) in
          let opb = nb + (((pb * 3) + c) * 2) in
          let s1r = Array1.unsafe_get src o1
          and s1i = Array1.unsafe_get src (o1 + 1) in
          let sbr = Array1.unsafe_get src opb
          and sbi = Array1.unsafe_get src (opb + 1) in
          h1.(c * 2) <- s1r +. (sign *. ((p1r *. sbr) -. (p1i *. sbi)));
          h1.((c * 2) + 1) <- s1i +. (sign *. ((p1r *. sbi) +. (p1i *. sbr)))
        done;
        for row = 0 to 2 do
          let r0 = ref 0. and i0 = ref 0. and r1 = ref 0. and i1 = ref 0. in
          for k = 0 to 2 do
            let e =
              if side = 0 then 2 * ((3 * row) + k) else 2 * ((3 * k) + row)
            in
            let ur = Array.unsafe_get uf e in
            let ui =
              if side = 0 then Array.unsafe_get uf (e + 1)
              else -.Array.unsafe_get uf (e + 1)
            in
            let h0r = h0.(k * 2) and h0i = h0.((k * 2) + 1) in
            r0 := !r0 +. ((ur *. h0r) -. (ui *. h0i));
            i0 := !i0 +. ((ur *. h0i) +. (ui *. h0r));
            let h1r = h1.(k * 2) and h1i = h1.((k * 2) + 1) in
            r1 := !r1 +. ((ur *. h1r) -. (ui *. h1i));
            i1 := !i1 +. ((ur *. h1i) +. (ui *. h1r))
          done;
          g0.(row * 2) <- !r0;
          g0.((row * 2) + 1) <- !i0;
          g1.(row * 2) <- !r1;
          g1.((row * 2) + 1) <- !i1
        done;
        (* Reconstruct: spin0 += g0, spin1 += g1,
           spin pa += sign*conj(p0)*g0, spin pb += sign*conj(p1)*g1
           (for b = (1 + sign*gamma) a, b_partner = sign*conj(ph)*b). *)
        let rs = sign in
        for c = 0 to 2 do
          let gr = g0.(c * 2) and gi = g0.((c * 2) + 1) in
          acc.(c * 2) <- acc.(c * 2) +. gr;
          acc.((c * 2) + 1) <- acc.((c * 2) + 1) +. gi;
          let oa = ((pa * 3) + c) * 2 in
          acc.(oa) <- acc.(oa) +. (rs *. ((p0r *. gr) +. (p0i *. gi)));
          acc.(oa + 1) <- acc.(oa + 1) +. (rs *. ((p0r *. gi) -. (p0i *. gr)));
          let hr = g1.(c * 2) and hi = g1.((c * 2) + 1) in
          let o1 = (3 + c) * 2 in
          acc.(o1) <- acc.(o1) +. hr;
          acc.(o1 + 1) <- acc.(o1 + 1) +. hi;
          let ob = ((pb * 3) + c) * 2 in
          acc.(ob) <- acc.(ob) +. (rs *. ((p1r *. hr) +. (p1i *. hi)));
          acc.(ob + 1) <- acc.(ob + 1) +. (rs *. ((p1r *. hi) -. (p1i *. hr)))
        done
      done
    done;
    let db = x * floats_per_site in
    for k = 0 to floats_per_site - 1 do
      Array1.unsafe_set dst (db + k) acc.(k)
    done
  in
  do_site

let check_dst t (dst : Linalg.Field.t) =
  if Linalg.Field.length dst < t.n_sites * floats_per_site then
    invalid_arg "Wilson.hop: dst too short"

let hop_sites t ?(sites : int array option) ~(src : Linalg.Field.t)
    ~(dst : Linalg.Field.t) () =
  check_dst t dst;
  let do_site = make_do_site t ~src ~dst in
  match sites with
  | None ->
    for x = 0 to t.n_sites - 1 do
      do_site x
    done
  | Some sites -> Array.iter do_site sites

(* [lo, hi) in sites; fresh scratch per range. *)
let hop_range t ~src ~dst lo hi =
  let do_site = make_do_site t ~src ~dst in
  for x = lo to hi - 1 do
    do_site x
  done

let hop_with pool ?chunk t ~src ~dst =
  check_dst t dst;
  Util.Pool.parallel_for pool ?chunk ~n:t.n_sites (hop_range t ~src ~dst)

let hop t ~src ~dst =
  check_dst t dst;
  let pool = Util.Pool.get_default () in
  if
    Util.Pool.size pool > 1
    && t.n_sites * floats_per_site >= Linalg.Field.parallel_cutoff
  then Util.Pool.parallel_for pool ~n:t.n_sites (hop_range t ~src ~dst)
  else hop_range t ~src ~dst 0 t.n_sites

(* ---- batched multi-RHS hop: k spinors per gauge-link load ----
   The whole point of the batch is traffic amortization: the gauge
   element (ur, ui) of each (site, mu, side, row, column) is loaded
   once and applied to every RHS's half-spinor before the next element
   is touched, so the link field streams once per site instead of once
   per solve. Per RHS the float operations — operands, order,
   association — are exactly [make_do_site]'s, only interleaved across
   the batch, so each dst is bit-identical to the independent [hop]'s
   (serial or pooled; site partitioning is race-free exactly as for
   the single-RHS kernel, every range closing over fresh scratch). *)
let make_do_site_multi t ~(srcs : Linalg.Field.t array)
    ~(dsts : Linalg.Field.t array) =
  let k = Array.length srcs in
  let accs = Array.init k (fun _ -> Array.make floats_per_site 0.) in
  let h0s = Array.init k (fun _ -> Array.make 6 0.) in
  let h1s = Array.init k (fun _ -> Array.make 6 0.) in
  let g0s = Array.init k (fun _ -> Array.make 6 0.) in
  let g1s = Array.init k (fun _ -> Array.make 6 0.) in
  let r0s = Array.make k 0. and i0s = Array.make k 0. in
  let r1s = Array.make k 0. and i1s = Array.make k 0. in
  let uf = Array.make 18 0. in
  let fetch = make_fetch t in
  let do_site x =
    for v = 0 to k - 1 do
      Array.fill accs.(v) 0 floats_per_site 0.
    done;
    let xb4 = x * 4 in
    for mu = 0 to 3 do
      let pa, pb = partner.(mu) in
      let p0r, p0i, p1r, p1i = phases.(mu) in
      for side = 0 to 1 do
        let sign = if side = 0 then -1. else 1. in
        let nb =
          (if side = 0 then Array.unsafe_get t.src_fwd (xb4 + mu)
           else Array.unsafe_get t.src_bwd (xb4 + mu))
          * floats_per_site
        in
        (* one link fetch (and, packed, one reconstruction) per k RHS *)
        fetch
          (if side = 0 then Array.unsafe_get t.gauge_fwd (xb4 + mu)
           else Array.unsafe_get t.gauge_bwd (xb4 + mu))
          uf;
        for v = 0 to k - 1 do
          let src = Array.unsafe_get srcs v in
          let h0 = h0s.(v) and h1 = h1s.(v) in
          for c = 0 to 2 do
            let o0 = nb + (c * 2) in
            let opa = nb + (((pa * 3) + c) * 2) in
            let s0r = Array1.unsafe_get src o0
            and s0i = Array1.unsafe_get src (o0 + 1) in
            let sar = Array1.unsafe_get src opa
            and sai = Array1.unsafe_get src (opa + 1) in
            h0.(c * 2) <- s0r +. (sign *. ((p0r *. sar) -. (p0i *. sai)));
            h0.((c * 2) + 1) <- s0i +. (sign *. ((p0r *. sai) +. (p0i *. sar)));
            let o1 = nb + ((3 + c) * 2) in
            let opb = nb + (((pb * 3) + c) * 2) in
            let s1r = Array1.unsafe_get src o1
            and s1i = Array1.unsafe_get src (o1 + 1) in
            let sbr = Array1.unsafe_get src opb
            and sbi = Array1.unsafe_get src (opb + 1) in
            h1.(c * 2) <- s1r +. (sign *. ((p1r *. sbr) -. (p1i *. sbi)));
            h1.((c * 2) + 1) <- s1i +. (sign *. ((p1r *. sbi) +. (p1i *. sbr)))
          done
        done;
        for row = 0 to 2 do
          for v = 0 to k - 1 do
            r0s.(v) <- 0.;
            i0s.(v) <- 0.;
            r1s.(v) <- 0.;
            i1s.(v) <- 0.
          done;
          for col = 0 to 2 do
            let e =
              if side = 0 then 2 * ((3 * row) + col)
              else 2 * ((3 * col) + row)
            in
            (* the amortized load: one gauge element, k RHS *)
            let ur = Array.unsafe_get uf e in
            let ui =
              if side = 0 then Array.unsafe_get uf (e + 1)
              else -.Array.unsafe_get uf (e + 1)
            in
            for v = 0 to k - 1 do
              let h0 = h0s.(v) and h1 = h1s.(v) in
              let h0r = h0.(col * 2) and h0i = h0.((col * 2) + 1) in
              r0s.(v) <- r0s.(v) +. ((ur *. h0r) -. (ui *. h0i));
              i0s.(v) <- i0s.(v) +. ((ur *. h0i) +. (ui *. h0r));
              let h1r = h1.(col * 2) and h1i = h1.((col * 2) + 1) in
              r1s.(v) <- r1s.(v) +. ((ur *. h1r) -. (ui *. h1i));
              i1s.(v) <- i1s.(v) +. ((ur *. h1i) +. (ui *. h1r))
            done
          done;
          for v = 0 to k - 1 do
            g0s.(v).(row * 2) <- r0s.(v);
            g0s.(v).((row * 2) + 1) <- i0s.(v);
            g1s.(v).(row * 2) <- r1s.(v);
            g1s.(v).((row * 2) + 1) <- i1s.(v)
          done
        done;
        let rs = sign in
        for v = 0 to k - 1 do
          let acc = accs.(v) and g0 = g0s.(v) and g1 = g1s.(v) in
          for c = 0 to 2 do
            let gr = g0.(c * 2) and gi = g0.((c * 2) + 1) in
            acc.(c * 2) <- acc.(c * 2) +. gr;
            acc.((c * 2) + 1) <- acc.((c * 2) + 1) +. gi;
            let oa = ((pa * 3) + c) * 2 in
            acc.(oa) <- acc.(oa) +. (rs *. ((p0r *. gr) +. (p0i *. gi)));
            acc.(oa + 1) <- acc.(oa + 1) +. (rs *. ((p0r *. gi) -. (p0i *. gr)));
            let hr = g1.(c * 2) and hi = g1.((c * 2) + 1) in
            let o1 = (3 + c) * 2 in
            acc.(o1) <- acc.(o1) +. hr;
            acc.(o1 + 1) <- acc.(o1 + 1) +. hi;
            let ob = ((pb * 3) + c) * 2 in
            acc.(ob) <- acc.(ob) +. (rs *. ((p1r *. hr) +. (p1i *. hi)));
            acc.(ob + 1) <- acc.(ob + 1) +. (rs *. ((p1r *. hi) -. (p1i *. hr)))
          done
        done
      done
    done;
    let db = x * floats_per_site in
    for v = 0 to k - 1 do
      let dst = Array.unsafe_get dsts v and acc = accs.(v) in
      for c = 0 to floats_per_site - 1 do
        Array1.unsafe_set dst (db + c) acc.(c)
      done
    done
  in
  do_site

let check_multi name t (srcs : Linalg.Field.t array)
    (dsts : Linalg.Field.t array) =
  let k = Array.length srcs in
  if k = 0 then invalid_arg (name ^ ": empty batch");
  if Array.length dsts <> k then invalid_arg (name ^ ": batch width mismatch");
  Array.iter (fun dst -> check_dst t dst) dsts;
  k

let hop_multi_range t ~srcs ~dsts lo hi =
  let do_site = make_do_site_multi t ~srcs ~dsts in
  for x = lo to hi - 1 do
    do_site x
  done

let hop_multi_with pool ?chunk t ~srcs ~dsts =
  ignore (check_multi "Wilson.hop_multi" t srcs dsts : int);
  Util.Pool.parallel_for pool ?chunk ~n:t.n_sites
    (hop_multi_range t ~srcs ~dsts)

let hop_multi t ~srcs ~dsts =
  let k = check_multi "Wilson.hop_multi" t srcs dsts in
  let pool = Util.Pool.get_default () in
  if
    Util.Pool.size pool > 1
    && k * t.n_sites * floats_per_site >= Linalg.Field.parallel_cutoff
  then
    Util.Pool.parallel_for pool ~n:t.n_sites (hop_multi_range t ~srcs ~dsts)
  else hop_multi_range t ~srcs ~dsts 0 t.n_sites

(* ---- tail-fused hop: stencil + output tail in one pass ----
   The tail (optional xpay + dot, Linalg.Fused.tail) runs per tile
   right after the stencil writes it, while the tile is hot — the QUDA
   move of fusing trailing linear algebra into the dslash, which is
   what lets the CG p·Ap reduction stop being a separate full-vector
   sweep. Bit-identity with hop-then-xpay_dot/dot_re needs the
   canonical reduction association, so the tail is tiled at the
   smallest site count whose float span is a whole number of
   [Field.reduce_block]s (lcm(24, 2048)/24 = 256 sites = 3 blocks):
   chunk boundaries rounded to tiles can never split a reduction
   block, each block partial is accumulated serially in index order by
   exactly one worker, and the partials fold in block order on the
   caller — [Field.block_fold]'s association for every geometry. *)

let tail_tile_sites =
  let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
  Linalg.Field.reduce_block / gcd floats_per_site Linalg.Field.reduce_block

let hop_tail_range t ~src ~dst ~tail ~(partials : float array) lo hi =
  let do_site = make_do_site t ~src ~dst in
  let block = Linalg.Field.reduce_block in
  let s = ref lo in
  while !s < hi do
    let s1 = min hi (!s + tail_tile_sites) in
    for x = !s to s1 - 1 do
      do_site x
    done;
    let f1 = s1 * floats_per_site in
    let b = ref (!s * floats_per_site / block) in
    while !b * block < f1 do
      let blo = !b * block in
      partials.(!b) <-
        Linalg.Fused.tail_term tail ~dst blo (min f1 ((!b + 1) * block));
      incr b
    done;
    s := s1
  done

(* Fold the block partials in index order on the calling domain —
   including block_fold's single-block shortcut (the raw partial, no
   0-seeded fold), so the result is the standalone reduction's bits. *)
let tail_fold (partials : float array) n_blocks =
  if n_blocks <= 1 then partials.(0)
  else begin
    let acc = ref 0. in
    for b = 0 to n_blocks - 1 do
      acc := !acc +. partials.(b)
    done;
    !acc
  end

let round_to_tiles c = (max 1 c + tail_tile_sites - 1) / tail_tile_sites * tail_tile_sites

let hop_tail_launch pool chunk t ~src ~dst ~tail =
  check_dst t dst;
  let n_floats = t.n_sites * floats_per_site in
  Linalg.Fused.tail_check "Wilson.hop_tail" ~n:n_floats ~dst tail;
  let n_blocks =
    max 1 ((n_floats + Linalg.Field.reduce_block - 1) / Linalg.Field.reduce_block)
  in
  let partials = Array.make n_blocks 0. in
  (match pool with
  | Some pool ->
    let chunk =
      round_to_tiles
        (match chunk with
        | Some c -> c
        | None -> Util.Pool.default_chunk pool t.n_sites)
    in
    Util.Pool.parallel_for pool ~chunk ~n:t.n_sites
      (hop_tail_range t ~src ~dst ~tail ~partials)
  | None -> hop_tail_range t ~src ~dst ~tail ~partials 0 t.n_sites);
  let s = tail_fold partials n_blocks in
  Linalg.Field.Sanitize.check_vec "Wilson.hop_tail" dst;
  (match tail.Linalg.Fused.t_xpay with
  | Some (out, _) -> Linalg.Field.Sanitize.check_vec "Wilson.hop_tail" out
  | None -> ());
  Linalg.Field.Sanitize.check_scalar "Wilson.hop_tail" s

let hop_tail_with pool ?chunk t ~src ~dst ~tail =
  hop_tail_launch (Some pool) chunk t ~src ~dst ~tail

let hop_tail t ~src ~dst ~tail =
  let pool = Util.Pool.get_default () in
  let pooled =
    if
      Util.Pool.size pool > 1
      && t.n_sites * floats_per_site >= Linalg.Field.parallel_cutoff
    then Some pool
    else None
  in
  hop_tail_launch pooled None t ~src ~dst ~tail

(* Full Wilson operator: M psi = (4 + mass) psi - (1/2) H psi.
   src and dst must not alias. *)
let apply t ~mass ~(src : Linalg.Field.t) ~(dst : Linalg.Field.t) =
  hop t ~src ~dst;
  let d = 4. +. mass in
  for i = 0 to (t.n_sites * floats_per_site) - 1 do
    Array1.unsafe_set dst i
      ((d *. Array1.unsafe_get src i) -. (0.5 *. Array1.unsafe_get dst i))
  done

(* M^dag = gamma5 M gamma5 (gamma5-hermiticity of the Wilson operator). *)
let apply_dagger t ~mass ~src ~dst =
  let tmp = Linalg.Field.create (Linalg.Field.length src) in
  Gamma.apply_gamma5 src tmp;
  let out = Linalg.Field.create (Linalg.Field.length dst) in
  apply t ~mass ~src:tmp ~dst:out;
  Gamma.apply_gamma5 out dst

(* Batched full operator: one hop_multi sweep, then the per-RHS
   diagonal — the closing loop is [apply]'s, so dst v is bit-identical
   to the independent [apply] on srcs.(v). *)
let apply_multi t ~mass ~(srcs : Linalg.Field.t array)
    ~(dsts : Linalg.Field.t array) =
  hop_multi t ~srcs ~dsts;
  let d = 4. +. mass in
  Array.iteri
    (fun v (dst : Linalg.Field.t) ->
      let src = srcs.(v) in
      for i = 0 to (t.n_sites * floats_per_site) - 1 do
        Array1.unsafe_set dst i
          ((d *. Array1.unsafe_get src i) -. (0.5 *. Array1.unsafe_get dst i))
      done)
    dsts

let apply_dagger_multi t ~mass ~(srcs : Linalg.Field.t array)
    ~(dsts : Linalg.Field.t array) =
  let k = Array.length srcs in
  let tmps =
    Array.init k (fun v -> Linalg.Field.create (Linalg.Field.length srcs.(v)))
  in
  Array.iteri (fun v src -> Gamma.apply_gamma5 src tmps.(v)) srcs;
  let outs =
    Array.init k (fun v -> Linalg.Field.create (Linalg.Field.length dsts.(v)))
  in
  apply_multi t ~mass ~srcs:tmps ~dsts:outs;
  Array.iteri (fun v out -> Gamma.apply_gamma5 out dsts.(v)) outs
