(* Mobius domain-wall fermion operator. With D_W the Wilson kernel at
   mass -M5, P± = (1 ± gamma5)/2 and s the fifth dimension (s-outer
   field layout: slice s is a contiguous 4D spinor field):

     D psi_s = (b5 D_W + 1) psi_s
             + (c5 D_W - 1) (P- psi_{s+1} + P+ psi_{s-1})

   with the chiral boundary conditions psi_{L5} -> -m psi_0 (P- side)
   and psi_{-1} -> -m psi_{L5-1} (P+ side). Shamir domain wall is
   b5 = 1, c5 = 0; Mobius scales b5 + c5 = alpha with b5 - c5 = 1.

   Splitting D_W = (4 - M5) - H/2 into its site-diagonal and hopping
   parts separates D into

     D = M5d + Hop,   M5d = a + b (P- d_{s+1} + P+ d_{s-1}),
                      Hop = -(1/2) H (b5 + c5 (P- d_{s+1} + P+ d_{s-1}))

   with a = b5 (4 - M5) + 1 and b = c5 (4 - M5) - 1. M5d is diagonal in
   4D space and bidiagonal-cyclic in s per chirality, so it inverts in
   closed form (the m5inv below) — this is what makes the red-black
   (4D even/odd) Schur complement S = M5d - Hop_oe M5d^{-1} Hop_eo
   cheap, exactly as in the paper's production solver. *)

open Bigarray

type params = {
  l5 : int;
  m5 : float;  (* domain-wall height, in (0, 2) *)
  b5 : float;
  c5 : float;
  mass : float;  (* input quark mass m *)
}

let shamir ~l5 ~m5 ~mass = { l5; m5; b5 = 1.; c5 = 0.; mass }

let mobius ~l5 ~m5 ~alpha ~mass =
  { l5; m5; b5 = (alpha +. 1.) /. 2.; c5 = (alpha -. 1.) /. 2.; mass }

let diag_a p = (p.b5 *. (4. -. p.m5)) +. 1.
let diag_b p = (p.c5 *. (4. -. p.m5)) -. 1.

let fps = Gamma.floats_per_site

(* The code below hard-wires gamma5 = diag(1,1,-1,-1): spins 0,1 are
   the + chirality (coupled to s-1), spins 2,3 the - chirality
   (coupled to s+1). Checked here against the computed algebra. *)
let () =
  assert (Gamma.gamma5_diag = [| 1.; 1.; -1.; -1. |])

(* ---- M5d: the 4D-site-diagonal, s-coupled part ---- *)

(* dst_s = a src_s + b (P- src_{s+1} + P+ src_{s-1}), corner factors -m.
   [n4] is the number of 4D sites per slice. No aliasing. *)
let apply_m5 p ~n4 ~(src : Linalg.Field.t) ~(dst : Linalg.Field.t) =
  let a = diag_a p and b = diag_b p in
  let m = p.mass in
  let l5 = p.l5 in
  for s = 0 to l5 - 1 do
    let base = s * n4 * fps in
    (* + chirality: source slice s-1 (corner: -m * slice l5-1) *)
    let up_base, up_scale =
      if s = 0 then ((l5 - 1) * n4 * fps, -.m *. b) else ((s - 1) * n4 * fps, b)
    in
    (* - chirality: source slice s+1 (corner: -m * slice 0) *)
    let dn_base, dn_scale =
      if s = l5 - 1 then (0, -.m *. b) else ((s + 1) * n4 * fps, b)
    in
    for site = 0 to n4 - 1 do
      let o = base + (site * fps) in
      let ou = up_base + (site * fps) in
      let od = dn_base + (site * fps) in
      (* spins 0,1 = 12 floats of + chirality *)
      for k = 0 to 11 do
        Array1.unsafe_set dst (o + k)
          ((a *. Array1.unsafe_get src (o + k))
          +. (up_scale *. Array1.unsafe_get src (ou + k)))
      done;
      for k = 12 to 23 do
        Array1.unsafe_set dst (o + k)
          ((a *. Array1.unsafe_get src (o + k))
          +. (dn_scale *. Array1.unsafe_get src (od + k)))
      done
    done
  done

(* Adjoint of M5d. With U the up-shift (reads s+1, corner -m at
   s = L-1 from slice 0) and D the down-shift (reads s-1, corner -m at
   s = 0 from slice L-1), M5d = a + b (P- U + P+ D) and U^dag = D, so
   M5d^dag = a + b (P- D + P+ U): the chirality-to-shift association
   swaps. *)
let apply_m5_dagger p ~n4 ~(src : Linalg.Field.t) ~(dst : Linalg.Field.t) =
  let a = diag_a p and b = diag_b p in
  let m = p.mass in
  let l5 = p.l5 in
  for s = 0 to l5 - 1 do
    let base = s * n4 * fps in
    (* + chirality now couples to slice s+1 (corner: -m * slice 0) *)
    let up_base, up_scale =
      if s = l5 - 1 then (0, -.m *. b) else ((s + 1) * n4 * fps, b)
    in
    (* - chirality now couples to slice s-1 (corner: -m * slice l5-1) *)
    let dn_base, dn_scale =
      if s = 0 then ((l5 - 1) * n4 * fps, -.m *. b) else ((s - 1) * n4 * fps, b)
    in
    for site = 0 to n4 - 1 do
      let o = base + (site * fps) in
      let ou = up_base + (site * fps) in
      let od = dn_base + (site * fps) in
      for k = 0 to 11 do
        Array1.unsafe_set dst (o + k)
          ((a *. Array1.unsafe_get src (o + k))
          +. (up_scale *. Array1.unsafe_get src (ou + k)))
      done;
      for k = 12 to 23 do
        Array1.unsafe_set dst (o + k)
          ((a *. Array1.unsafe_get src (o + k))
          +. (dn_scale *. Array1.unsafe_get src (od + k)))
      done
    done
  done

(* Closed-form inverse of M5d: per chirality and per component, solve
   the bidiagonal-cyclic system (a I + b C) x = y by forward (or
   backward) substitution plus a rank-one Sherman-Morrison correction
   for the -m corner. [chirality_swap] inverts M5d^dag instead. *)
let apply_m5inv_gen ~chirality_swap p ~n4 ~(src : Linalg.Field.t)
    ~(dst : Linalg.Field.t) =
  let a = diag_a p and b = diag_b p in
  let m = p.mass in
  let l5 = p.l5 in
  let r = -.b /. a in
  (* w_s = r^s / a solves (aI + bN) w = e_0 for the lower-shift N. *)
  let w = Array.make l5 0. in
  w.(0) <- 1. /. a;
  for s = 1 to l5 - 1 do
    w.(s) <- w.(s - 1) *. r
  done;
  let denom_plus = 1. -. (m *. b *. w.(l5 - 1)) in
  let denom_minus = denom_plus in
  let stride = n4 * fps in
  (* Which 12 floats couple to s-1 (forward substitution) vs s+1:
     for M5d it is the + chirality (spins 0,1 = floats 0..11); for
     M5d^dag the roles swap. *)
  let fwd_lo, bwd_lo = if chirality_swap then (12, 0) else (0, 12) in
  for site = 0 to n4 - 1 do
    let sb = site * fps in
    (* forward substitution in s *)
    for k = fwd_lo to fwd_lo + 11 do
      let o = sb + k in
      (* z_0 = y_0/a ; z_s = (y_s - b z_{s-1})/a, stored into dst *)
      Array1.unsafe_set dst o (Array1.unsafe_get src o /. a);
      for s = 1 to l5 - 1 do
        let cur = (s * stride) + o in
        let prev = ((s - 1) * stride) + o in
        Array1.unsafe_set dst cur
          ((Array1.unsafe_get src cur -. (b *. Array1.unsafe_get dst prev)) /. a)
      done;
      (* corner: x_{L-1} = z_{L-1}/denom; x_s = z_s + m b x_{L-1} w_s *)
      let x_last = Array1.unsafe_get dst (((l5 - 1) * stride) + o) /. denom_plus in
      let corr = m *. b *. x_last in
      for s = 0 to l5 - 2 do
        let cur = (s * stride) + o in
        Array1.unsafe_set dst cur (Array1.unsafe_get dst cur +. (corr *. w.(s)))
      done;
      Array1.unsafe_set dst (((l5 - 1) * stride) + o) x_last
    done;
    (* backward substitution in s *)
    for k = bwd_lo to bwd_lo + 11 do
      let o = sb + k in
      Array1.unsafe_set dst (((l5 - 1) * stride) + o)
        (Array1.unsafe_get src (((l5 - 1) * stride) + o) /. a);
      for s = l5 - 2 downto 0 do
        let cur = (s * stride) + o in
        let next = ((s + 1) * stride) + o in
        Array1.unsafe_set dst cur
          ((Array1.unsafe_get src cur -. (b *. Array1.unsafe_get dst next)) /. a)
      done;
      (* corner at row L-1 couples to x_0; w'_s = r^{L-1-s}/a *)
      let x_first = Array1.unsafe_get dst o /. denom_minus in
      let corr = m *. b *. x_first in
      for s = 1 to l5 - 1 do
        let cur = (s * stride) + o in
        Array1.unsafe_set dst cur
          (Array1.unsafe_get dst cur +. (corr *. w.(l5 - 1 - s)))
      done;
      Array1.unsafe_set dst o x_first
    done
  done

let apply_m5inv p ~n4 ~src ~dst =
  apply_m5inv_gen ~chirality_swap:false p ~n4 ~src ~dst

let apply_m5inv_dagger p ~n4 ~src ~dst =
  apply_m5inv_gen ~chirality_swap:true p ~n4 ~src ~dst

(* ---- Hop: the parity-changing (or full) hopping part ---- *)

(* phi_s = b5 src_s + c5 (P- src_{s+1} + P+ src_{s-1}) with corners;
   written for one slice [s] into [phi] (n4 sites). *)
let combine_slice p ~n4 ~s ~(src : Linalg.Field.t) ~(phi : Linalg.Field.t) =
  let l5 = p.l5 in
  let m = p.mass in
  let base = s * n4 * fps in
  let up_base, up_scale =
    if s = 0 then ((l5 - 1) * n4 * fps, -.m *. p.c5)
    else ((s - 1) * n4 * fps, p.c5)
  in
  let dn_base, dn_scale =
    if s = l5 - 1 then (0, -.m *. p.c5) else ((s + 1) * n4 * fps, p.c5)
  in
  for site = 0 to n4 - 1 do
    let o = base + (site * fps) in
    let ou = up_base + (site * fps) in
    let od = dn_base + (site * fps) in
    let po = site * fps in
    for k = 0 to 11 do
      Array1.unsafe_set phi (po + k)
        ((p.b5 *. Array1.unsafe_get src (o + k))
        +. (up_scale *. Array1.unsafe_get src (ou + k)))
    done;
    for k = 12 to 23 do
      Array1.unsafe_set phi (po + k)
        ((p.b5 *. Array1.unsafe_get src (o + k))
        +. (dn_scale *. Array1.unsafe_get src (od + k)))
    done
  done

(* s-slices make a natural parallel axis: slice s writes only
   dst[s·n4_dst·fps, (s+1)·n4_dst·fps) and reads only src, so slice-
   partitioned execution is race-free. Each pooled range gets its own
   phi/scratch slice buffers; the Wilson.hop inside runs serially on a
   worker (the pool's re-entrancy guard), so there is exactly one
   level of parallelism. Chunk is one slice: l5 is small (8–32) and a
   slice is a full 4D stencil application. *)
let slice_pool p ~n4_dst =
  let pool = Util.Pool.get_default () in
  if
    Util.Pool.size pool > 1 && p.l5 > 1
    && p.l5 * n4_dst * fps >= Linalg.Field.parallel_cutoff
  then Some pool
  else None

let run_slices p ~n4_dst range =
  match slice_pool p ~n4_dst with
  | Some pool -> Util.Pool.parallel_for pool ~chunk:1 ~n:p.l5 range
  | None -> range 0 p.l5

(* dst_s += -(1/2) H phi_s for every slice, using the given 4D kernel.
   [src] has n4_src-site slices (the kernel's source index space),
   [dst] has n4_dst-site slices (= kernel.n_sites). *)
let apply_hop p kernel ~n4_src ~n4_dst ~(src : Linalg.Field.t)
    ~(dst : Linalg.Field.t) ~accumulate =
  let range lo hi =
    let phi = Linalg.Field.create (n4_src * fps) in
    let scratch = Linalg.Field.create (n4_dst * fps) in
    for s = lo to hi - 1 do
      combine_slice p ~n4:n4_src ~s ~src ~phi;
      Wilson.hop kernel ~src:phi ~dst:scratch;
      let base = s * n4_dst * fps in
      if accumulate then
        for k = 0 to (n4_dst * fps) - 1 do
          Array1.unsafe_set dst (base + k)
            (Array1.unsafe_get dst (base + k)
            -. (0.5 *. Array1.unsafe_get scratch k))
        done
      else
        for k = 0 to (n4_dst * fps) - 1 do
          Array1.unsafe_set dst (base + k) (-0.5 *. Array1.unsafe_get scratch k)
        done
    done
  in
  run_slices p ~n4_dst range

(* Adjoint s-combination: phi_s = b5 chi_s + c5 (P- chi_{s-1} + P+
   chi_{s+1}) with the swapped corners (see apply_m5_dagger). *)
let combine_slice_dagger p ~n4 ~s ~(src : Linalg.Field.t) ~(phi : Linalg.Field.t) =
  let l5 = p.l5 in
  let m = p.mass in
  let base = s * n4 * fps in
  let up_base, up_scale =
    if s = l5 - 1 then (0, -.m *. p.c5) else ((s + 1) * n4 * fps, p.c5)
  in
  let dn_base, dn_scale =
    if s = 0 then ((l5 - 1) * n4 * fps, -.m *. p.c5)
    else ((s - 1) * n4 * fps, p.c5)
  in
  for site = 0 to n4 - 1 do
    let o = base + (site * fps) in
    let ou = up_base + (site * fps) in
    let od = dn_base + (site * fps) in
    let po = site * fps in
    for k = 0 to 11 do
      Array1.unsafe_set phi (po + k)
        ((p.b5 *. Array1.unsafe_get src (o + k))
        +. (up_scale *. Array1.unsafe_get src (ou + k)))
    done;
    for k = 12 to 23 do
      Array1.unsafe_set phi (po + k)
        ((p.b5 *. Array1.unsafe_get src (o + k))
        +. (dn_scale *. Array1.unsafe_get src (od + k)))
    done
  done

(* Adjoint hopping: Hop^dag = -(1/2) Phi^dag (g5 H g5). First apply the
   gamma5-conjugated 4D stencil to every slice, then the adjoint
   s-combination (order matters: the projectors do not commute with
   the stencil's spin structure, which is why G5R5 alone is not the
   Mobius adjoint). *)
let apply_hop_dagger p kernel ~n4_src ~n4_dst ~(src : Linalg.Field.t)
    ~(dst : Linalg.Field.t) ~accumulate =
  let ht = Linalg.Field.create (p.l5 * n4_dst * fps) in
  let stencil_range lo hi =
    let slice_in = Linalg.Field.create (n4_src * fps) in
    let slice_out = Linalg.Field.create (n4_dst * fps) in
    for s = lo to hi - 1 do
      let sb = s * n4_src * fps in
      for k = 0 to (n4_src * fps) - 1 do
        Array1.unsafe_set slice_in k (Array1.unsafe_get src (sb + k))
      done;
      Gamma.apply_gamma5 slice_in slice_in;
      Wilson.hop kernel ~src:slice_in ~dst:slice_out;
      Gamma.apply_gamma5 slice_out slice_out;
      let db = s * n4_dst * fps in
      for k = 0 to (n4_dst * fps) - 1 do
        Array1.unsafe_set ht (db + k) (Array1.unsafe_get slice_out k)
      done
    done
  in
  run_slices p ~n4_dst stencil_range;
  (* the s-combination reads ht across slice boundaries, so it starts
     only after every stencil slice has landed (the pool join above) *)
  let combine_range lo hi =
    let phi = Linalg.Field.create (n4_dst * fps) in
    for s = lo to hi - 1 do
      combine_slice_dagger p ~n4:n4_dst ~s ~src:ht ~phi;
      let base = s * n4_dst * fps in
      if accumulate then
        for k = 0 to (n4_dst * fps) - 1 do
          Array1.unsafe_set dst (base + k)
            (Array1.unsafe_get dst (base + k) -. (0.5 *. Array1.unsafe_get phi k))
        done
      else
        for k = 0 to (n4_dst * fps) - 1 do
          Array1.unsafe_set dst (base + k) (-0.5 *. Array1.unsafe_get phi k)
        done
    done
  in
  run_slices p ~n4_dst combine_range

(* ---- Full (unpreconditioned) operator ---- *)

type t = { p : params; kernel : Wilson.t; n4 : int }

let of_geometry ?recon p geom gauge =
  {
    p;
    kernel = Wilson.of_geometry ?recon geom gauge;
    n4 = Lattice.Geometry.volume geom;
  }

let field_length t = t.p.l5 * t.n4 * fps
let create_field t = Linalg.Field.create (field_length t)

let apply t ~src ~dst =
  apply_m5 t.p ~n4:t.n4 ~src ~dst;
  apply_hop t.p t.kernel ~n4_src:t.n4 ~n4_dst:t.n4 ~src ~dst ~accumulate:true

(* G5R5: slice s of dst = gamma5 (slice L5-1-s of src). Distinct fields. *)
let apply_g5r5 ~l5 ~n4 ~(src : Linalg.Field.t) ~(dst : Linalg.Field.t) =
  let stride = n4 * fps in
  for s = 0 to l5 - 1 do
    let sb = (l5 - 1 - s) * stride and db = s * stride in
    for site = 0 to n4 - 1 do
      let so = sb + (site * fps) and dlo = db + (site * fps) in
      for k = 0 to 11 do
        Array1.unsafe_set dst (dlo + k) (Array1.unsafe_get src (so + k))
      done;
      for k = 12 to 23 do
        Array1.unsafe_set dst (dlo + k) (-.Array1.unsafe_get src (so + k))
      done
    done
  done

(* D^dag built piecewise: M5d^dag + Hop^dag. (For c5 = 0 this equals
   G5R5 D G5R5; with c5 <> 0 the projectors do not commute with the
   stencil spin structure and the explicit adjoint is required.) *)
let apply_dagger t ~src ~dst =
  apply_m5_dagger t.p ~n4:t.n4 ~src ~dst;
  apply_hop_dagger t.p t.kernel ~n4_src:t.n4 ~n4_dst:t.n4 ~src ~dst
    ~accumulate:true

(* Normal operator D^dag D for CG. *)
let apply_normal t ~src ~dst =
  let tmp = create_field t in
  apply t ~src ~dst:tmp;
  apply_dagger t ~src:tmp ~dst

(* ---- Red-black preconditioned operator ----
   4D even/odd decomposition: S = M5d - Hop_oe M5d^{-1} Hop_eo acting
   on odd-parity 5D fields (checkerboard-indexed slices). *)

type eo = {
  p : params;
  geom : Lattice.Geometry.t;
  kern_to_even : Wilson.t;  (* reads odd cb field, writes even cb field *)
  kern_to_odd : Wilson.t;
  half : int;
}

let of_geometry_eo ?recon p geom gauge =
  (* one packed store per checkerboard kernel: the whole Schur chain
     (hop_eo, apply_schur*, the batched multi-RHS twins) reconstructs
     links through Wilson's fetch, bit-identically for a fixed codec
     across pool geometries *)
  {
    p;
    geom;
    kern_to_even = Wilson.of_checkerboard ?recon geom gauge ~parity:0;
    kern_to_odd = Wilson.of_checkerboard ?recon geom gauge ~parity:1;
    half = Lattice.Geometry.half_volume geom;
  }

let eo_field_length eo = eo.p.l5 * eo.half * fps
let create_eo_field eo = Linalg.Field.create (eo_field_length eo)

(* dst (parity p fields) = Hop_{p <- 1-p} src. *)
let hop_eo eo ~to_parity ~src ~dst =
  let kernel = if to_parity = 0 then eo.kern_to_even else eo.kern_to_odd in
  apply_hop eo.p kernel ~n4_src:eo.half ~n4_dst:eo.half ~src ~dst
    ~accumulate:false

(* Schur complement on odd fields: dst = M5 src - Hop_oe M5inv Hop_eo src *)
let apply_schur eo ~src ~dst =
  let t1 = create_eo_field eo in
  let t2 = create_eo_field eo in
  hop_eo eo ~to_parity:0 ~src ~dst:t1;
  apply_m5inv eo.p ~n4:eo.half ~src:t1 ~dst:t2;
  hop_eo eo ~to_parity:1 ~src:t2 ~dst:t1;
  apply_m5 eo.p ~n4:eo.half ~src ~dst;
  for k = 0 to eo_field_length eo - 1 do
    Array1.unsafe_set dst k (Array1.unsafe_get dst k -. Array1.unsafe_get t1 k)
  done

(* S^dag = M5d^dag - Hop_eo^dag M5d^{-dag} Hop_oe^dag, each adjoint
   taken explicitly. Hop_{p <- 1-p}^dag maps parity p back to 1-p and
   uses the opposite checkerboard kernel. *)
let hop_eo_dagger eo ~from_parity ~src ~dst =
  (* adjoint of the map (from 1-from_parity to from_parity): reads a
     field of parity [from_parity], writes parity [1-from_parity] *)
  let kernel = if from_parity = 0 then eo.kern_to_odd else eo.kern_to_even in
  apply_hop_dagger eo.p kernel ~n4_src:eo.half ~n4_dst:eo.half ~src ~dst
    ~accumulate:false

(* The dagger's finishing pass (dst <- M5d^dag src - t1), with the
   optional output tail fused into the same sweep: the subtraction and
   the tail's xpay/dot run per canonical [Field.reduce_block] while
   the block is hot, partials folded in index order — the exact
   association of the standalone [Field.dot_re], so the fused chain is
   bit-identical to apply_schur_dagger-then-dot for any geometry (the
   subtraction itself is element-local and unchanged). This is the 5d
   analogue of [Wilson.hop_tail]: it is where the CG p·Ap reduction
   rides the Schur-normal stencil instead of costing its own
   full-vector sweep. *)
let schur_dagger_finish ?tail (dst : Linalg.Field.t) (t1 : Linalg.Field.t) len =
  match tail with
  | None ->
    for k = 0 to len - 1 do
      Array1.unsafe_set dst k
        (Array1.unsafe_get dst k -. Array1.unsafe_get t1 k)
    done;
    0.
  | Some tl ->
    Linalg.Fused.tail_check "Mobius.apply_schur_dagger_tail" ~n:len ~dst tl;
    let block = Linalg.Field.reduce_block in
    let n_blocks = max 1 ((len + block - 1) / block) in
    let partials = Array.make n_blocks 0. in
    for b = 0 to n_blocks - 1 do
      let lo = b * block and hi = min len ((b + 1) * block) in
      for k = lo to hi - 1 do
        Array1.unsafe_set dst k
          (Array1.unsafe_get dst k -. Array1.unsafe_get t1 k)
      done;
      partials.(b) <- Linalg.Fused.tail_term tl ~dst lo hi
    done;
    let s =
      if n_blocks <= 1 then partials.(0)
      else begin
        let acc = ref 0. in
        for b = 0 to n_blocks - 1 do
          acc := !acc +. partials.(b)
        done;
        !acc
      end
    in
    Linalg.Field.Sanitize.check_scalar "Mobius.apply_schur_dagger_tail" s

let apply_schur_dagger_gen ?tail eo ~src ~dst =
  let t1 = create_eo_field eo in
  let t2 = create_eo_field eo in
  (* (Hop_oe)^dag : odd -> even *)
  hop_eo_dagger eo ~from_parity:1 ~src ~dst:t1;
  apply_m5inv_dagger eo.p ~n4:eo.half ~src:t1 ~dst:t2;
  (* (Hop_eo)^dag : even -> odd *)
  hop_eo_dagger eo ~from_parity:0 ~src:t2 ~dst:t1;
  apply_m5_dagger eo.p ~n4:eo.half ~src ~dst;
  schur_dagger_finish ?tail dst t1 (eo_field_length eo)

let apply_schur_dagger eo ~src ~dst =
  ignore (apply_schur_dagger_gen eo ~src ~dst : float)

let apply_schur_dagger_tail eo ~src ~dst ~tail =
  apply_schur_dagger_gen ~tail eo ~src ~dst

let apply_schur_normal eo ~src ~dst =
  let tmp = create_eo_field eo in
  apply_schur eo ~src ~dst:tmp;
  apply_schur_dagger eo ~src:tmp ~dst

(* S^dag S with the tail riding the closing dagger sweep — what
   [Solver.Dwf_solve] hands [Solver.Cg]'s [apply_dot] so the fused CG
   iteration executes the 2-sweep BLAS-1 plan the model prices. *)
let apply_schur_normal_tail eo ~src ~dst ~tail =
  let tmp = create_eo_field eo in
  apply_schur eo ~src ~dst:tmp;
  apply_schur_dagger_tail eo ~src:tmp ~dst ~tail

(* ---- batched multi-RHS Schur chain ----
   The 5d wrapper of [Wilson.hop_multi]: per slice, every RHS's
   s-combination lands in its own phi buffer and one batched 4D hop
   streams the gauge links once for all k of them. Everything that is
   per-RHS (combine, M5d/M5d⁻¹, the closing subtractions) runs
   per-RHS with [apply_hop]'s own loops, so each dst in the batch is
   bit-identical to the independent single-RHS chain for any batch
   width and pool geometry. *)

let apply_hop_multi p kernel ~n4_src ~n4_dst ~(srcs : Linalg.Field.t array)
    ~(dsts : Linalg.Field.t array) ~accumulate =
  let kw = Array.length srcs in
  let range lo hi =
    let phis = Array.init kw (fun _ -> Linalg.Field.create (n4_src * fps)) in
    let scratch =
      Array.init kw (fun _ -> Linalg.Field.create (n4_dst * fps))
    in
    for s = lo to hi - 1 do
      for v = 0 to kw - 1 do
        combine_slice p ~n4:n4_src ~s ~src:srcs.(v) ~phi:phis.(v)
      done;
      Wilson.hop_multi kernel ~srcs:phis ~dsts:scratch;
      let base = s * n4_dst * fps in
      for v = 0 to kw - 1 do
        let dst = dsts.(v) and sc = scratch.(v) in
        if accumulate then
          for k = 0 to (n4_dst * fps) - 1 do
            Array1.unsafe_set dst (base + k)
              (Array1.unsafe_get dst (base + k)
              -. (0.5 *. Array1.unsafe_get sc k))
          done
        else
          for k = 0 to (n4_dst * fps) - 1 do
            Array1.unsafe_set dst (base + k) (-0.5 *. Array1.unsafe_get sc k)
          done
      done
    done
  in
  run_slices p ~n4_dst range

let apply_hop_dagger_multi p kernel ~n4_src ~n4_dst
    ~(srcs : Linalg.Field.t array) ~(dsts : Linalg.Field.t array) ~accumulate =
  let kw = Array.length srcs in
  let hts =
    Array.init kw (fun _ -> Linalg.Field.create (p.l5 * n4_dst * fps))
  in
  let stencil_range lo hi =
    let slice_ins =
      Array.init kw (fun _ -> Linalg.Field.create (n4_src * fps))
    in
    let slice_outs =
      Array.init kw (fun _ -> Linalg.Field.create (n4_dst * fps))
    in
    for s = lo to hi - 1 do
      let sb = s * n4_src * fps in
      for v = 0 to kw - 1 do
        let src = srcs.(v) and slice_in = slice_ins.(v) in
        for k = 0 to (n4_src * fps) - 1 do
          Array1.unsafe_set slice_in k (Array1.unsafe_get src (sb + k))
        done;
        Gamma.apply_gamma5 slice_in slice_in
      done;
      Wilson.hop_multi kernel ~srcs:slice_ins ~dsts:slice_outs;
      let db = s * n4_dst * fps in
      for v = 0 to kw - 1 do
        let slice_out = slice_outs.(v) and ht = hts.(v) in
        Gamma.apply_gamma5 slice_out slice_out;
        for k = 0 to (n4_dst * fps) - 1 do
          Array1.unsafe_set ht (db + k) (Array1.unsafe_get slice_out k)
        done
      done
    done
  in
  run_slices p ~n4_dst stencil_range;
  let combine_range lo hi =
    let phi = Linalg.Field.create (n4_dst * fps) in
    for s = lo to hi - 1 do
      for v = 0 to kw - 1 do
        combine_slice_dagger p ~n4:n4_dst ~s ~src:hts.(v) ~phi;
        let dst = dsts.(v) in
        let base = s * n4_dst * fps in
        if accumulate then
          for k = 0 to (n4_dst * fps) - 1 do
            Array1.unsafe_set dst (base + k)
              (Array1.unsafe_get dst (base + k)
              -. (0.5 *. Array1.unsafe_get phi k))
          done
        else
          for k = 0 to (n4_dst * fps) - 1 do
            Array1.unsafe_set dst (base + k) (-0.5 *. Array1.unsafe_get phi k)
          done
      done
    done
  in
  run_slices p ~n4_dst combine_range

let hop_eo_multi eo ~to_parity ~srcs ~dsts =
  let kernel = if to_parity = 0 then eo.kern_to_even else eo.kern_to_odd in
  apply_hop_multi eo.p kernel ~n4_src:eo.half ~n4_dst:eo.half ~srcs ~dsts
    ~accumulate:false

let hop_eo_dagger_multi eo ~from_parity ~srcs ~dsts =
  let kernel = if from_parity = 0 then eo.kern_to_odd else eo.kern_to_even in
  apply_hop_dagger_multi eo.p kernel ~n4_src:eo.half ~n4_dst:eo.half ~srcs
    ~dsts ~accumulate:false

let apply_schur_multi eo ~(srcs : Linalg.Field.t array)
    ~(dsts : Linalg.Field.t array) =
  let kw = Array.length srcs in
  if kw = 0 || Array.length dsts <> kw then
    invalid_arg "Mobius.apply_schur_multi: batch width mismatch";
  let t1s = Array.init kw (fun _ -> create_eo_field eo) in
  let t2s = Array.init kw (fun _ -> create_eo_field eo) in
  hop_eo_multi eo ~to_parity:0 ~srcs ~dsts:t1s;
  Array.iteri
    (fun v t1 -> apply_m5inv eo.p ~n4:eo.half ~src:t1 ~dst:t2s.(v))
    t1s;
  hop_eo_multi eo ~to_parity:1 ~srcs:t2s ~dsts:t1s;
  Array.iteri (fun v src -> apply_m5 eo.p ~n4:eo.half ~src ~dst:dsts.(v)) srcs;
  let len = eo_field_length eo in
  Array.iteri
    (fun v (dst : Linalg.Field.t) ->
      let t1 = t1s.(v) in
      for k = 0 to len - 1 do
        Array1.unsafe_set dst k
          (Array1.unsafe_get dst k -. Array1.unsafe_get t1 k)
      done)
    dsts

let apply_schur_dagger_multi eo ~(srcs : Linalg.Field.t array)
    ~(dsts : Linalg.Field.t array) =
  let kw = Array.length srcs in
  if kw = 0 || Array.length dsts <> kw then
    invalid_arg "Mobius.apply_schur_dagger_multi: batch width mismatch";
  let t1s = Array.init kw (fun _ -> create_eo_field eo) in
  let t2s = Array.init kw (fun _ -> create_eo_field eo) in
  hop_eo_dagger_multi eo ~from_parity:1 ~srcs ~dsts:t1s;
  Array.iteri
    (fun v t1 -> apply_m5inv_dagger eo.p ~n4:eo.half ~src:t1 ~dst:t2s.(v))
    t1s;
  hop_eo_dagger_multi eo ~from_parity:0 ~srcs:t2s ~dsts:t1s;
  Array.iteri
    (fun v src -> apply_m5_dagger eo.p ~n4:eo.half ~src ~dst:dsts.(v))
    srcs;
  Array.iteri
    (fun v dst ->
      ignore (schur_dagger_finish dst t1s.(v) (eo_field_length eo) : float))
    dsts

let apply_schur_normal_multi eo ~(srcs : Linalg.Field.t array)
    ~(dsts : Linalg.Field.t array) =
  let tmps = Array.init (Array.length srcs) (fun _ -> create_eo_field eo) in
  apply_schur_multi eo ~srcs ~dsts:tmps;
  apply_schur_dagger_multi eo ~srcs:tmps ~dsts

(* ---- full <-> checkerboard field conversion ---- *)

let split_eo geom ~l5 (full : Linalg.Field.t) =
  let vol = Lattice.Geometry.volume geom in
  let half = Lattice.Geometry.half_volume geom in
  let even = Linalg.Field.create (l5 * half * fps) in
  let odd = Linalg.Field.create (l5 * half * fps) in
  for s = 0 to l5 - 1 do
    for site = 0 to vol - 1 do
      let p = Lattice.Geometry.parity geom site in
      let i = Lattice.Geometry.eo_index geom site in
      let src_o = ((s * vol) + site) * fps in
      let dst_o = ((s * half) + i) * fps in
      let dst = if p = 0 then even else odd in
      for k = 0 to fps - 1 do
        Array1.unsafe_set dst (dst_o + k) (Array1.unsafe_get full (src_o + k))
      done
    done
  done;
  (even, odd)

let merge_eo geom ~l5 ~(even : Linalg.Field.t) ~(odd : Linalg.Field.t) =
  let vol = Lattice.Geometry.volume geom in
  let half = Lattice.Geometry.half_volume geom in
  let full = Linalg.Field.create (l5 * vol * fps) in
  for s = 0 to l5 - 1 do
    for site = 0 to vol - 1 do
      let p = Lattice.Geometry.parity geom site in
      let i = Lattice.Geometry.eo_index geom site in
      let dst_o = ((s * vol) + site) * fps in
      let src_o = ((s * half) + i) * fps in
      let src = if p = 0 then even else odd in
      for k = 0 to fps - 1 do
        Array1.unsafe_set full (dst_o + k) (Array1.unsafe_get src (src_o + k))
      done
    done
  done;
  full

(* Schur right-hand side: y'_o = y_o - Hop_oe M5inv y_e. *)
let prepare_rhs eo ~(rhs_even : Linalg.Field.t) ~(rhs_odd : Linalg.Field.t) =
  let t1 = create_eo_field eo in
  let t2 = create_eo_field eo in
  apply_m5inv eo.p ~n4:eo.half ~src:rhs_even ~dst:t1;
  hop_eo eo ~to_parity:1 ~src:t1 ~dst:t2;
  let out = Linalg.Field.copy rhs_odd in
  for k = 0 to eo_field_length eo - 1 do
    Array1.unsafe_set out k (Array1.unsafe_get out k -. Array1.unsafe_get t2 k)
  done;
  out

(* Even-parity reconstruction: x_e = M5inv (y_e - Hop_eo x_o). *)
let reconstruct_even eo ~(rhs_even : Linalg.Field.t) ~(x_odd : Linalg.Field.t) =
  let t1 = create_eo_field eo in
  hop_eo eo ~to_parity:0 ~src:x_odd ~dst:t1;
  let t2 = Linalg.Field.copy rhs_even in
  for k = 0 to eo_field_length eo - 1 do
    Array1.unsafe_set t2 k (Array1.unsafe_get t2 k -. Array1.unsafe_get t1 k)
  done;
  let out = create_eo_field eo in
  apply_m5inv eo.p ~n4:eo.half ~src:t2 ~dst:out;
  out
