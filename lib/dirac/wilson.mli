(** Wilson hopping stencil and operator. One table-driven kernel serves
    the full-volume, domain-decomposed and checkerboarded cases.

    Every constructor takes [?recon] (default [Full18]): the gauge
    codec of the link store. Packed codecs ([Recon12]/[Recon8],
    [Lattice.Recon]) store 12/8 reals per link and reconstruct the
    full matrix into a per-closure scratch at the point of use — every
    hop flavor (plain, tail-fused, multi-RHS, and the Mobius chain on
    top) decodes through the one kernel body, and for a fixed codec
    the results are bit-identical across pool geometries. [Full18]
    fetches are exact float64 copies, bit-identical to the
    direct-indexing kernel they replaced. *)

type t

val floats_per_site : int

val recon : t -> Linalg.Su3_codec.codec
(** The codec this operator's link store was built with. *)

val of_geometry :
  ?recon:Linalg.Su3_codec.codec -> Lattice.Geometry.t -> Lattice.Gauge.t -> t
(** Full-volume operator; source and destination are volume×24 floats. *)

val of_domain_rank :
  ?recon:Linalg.Su3_codec.codec ->
  Lattice.Domain.rank_geometry ->
  Linalg.Field.t ->
  t
(** Rank-local operator; the source must cover the extended volume
    (ghost slots filled by halo exchange), gauge from
    [Lattice.Domain.gather_gauge]. *)

val of_checkerboard :
  ?recon:Linalg.Su3_codec.codec ->
  Lattice.Geometry.t ->
  Lattice.Gauge.t ->
  parity:int ->
  t
(** Hopping from the opposite parity onto sites of [parity]; fields are
    indexed by checkerboard (eo) index, half_volume×24 floats. *)

val hop : t -> src:Linalg.Field.t -> dst:Linalg.Field.t -> unit
(** dst <- H src (the full hopping sum). No aliasing. Dispatches to the
    default pool ([Util.Pool.get_default]) when it has more than one
    lane and the field clears [Linalg.Field.parallel_cutoff];
    site-partitioned, so pooled and serial results are bit-identical. *)

val hop_with :
  Util.Pool.t -> ?chunk:int -> t -> src:Linalg.Field.t -> dst:Linalg.Field.t -> unit
(** [hop] on an explicit pool with an explicit chunk (in sites) — the
    autotuner's pooled hop candidates. *)

val hop_multi :
  t -> srcs:Linalg.Field.t array -> dsts:Linalg.Field.t array -> unit
(** Batched multi-RHS hop: [dsts.(v) <- H srcs.(v)] for every v, with
    each gauge-link element loaded once per site and applied to all k
    half-spinors before the next — the k-fold link-traffic
    amortization [Machine.Perf_model.mrhs_bytes_per_site] prices. Per
    RHS the float operations are exactly [hop]'s (same operands, same
    order), so every dst is bit-identical to the independent [hop] for
    any batch width and pool geometry. Batch must be non-empty, srcs
    and dsts the same width, dsts pairwise distinct and non-aliasing
    with the srcs (unchecked, like [hop]'s no-aliasing contract).
    Dispatches to the default pool when the *batch* float count clears
    [Linalg.Field.parallel_cutoff]. *)

val hop_multi_with :
  Util.Pool.t ->
  ?chunk:int ->
  t ->
  srcs:Linalg.Field.t array ->
  dsts:Linalg.Field.t array ->
  unit
(** [hop_multi] on an explicit pool with an explicit chunk (in sites)
    — the batch-width autotuner's pooled candidates
    ([Autotune.Variants.tune_hop_multi]). *)

val hop_tail :
  t ->
  src:Linalg.Field.t ->
  dst:Linalg.Field.t ->
  tail:Linalg.Fused.tail ->
  float
(** [hop] with the output tail fused into the stencil pass: per
    site-tile, right after the stencil result is written, the tail's
    optional xpay ([out <- dst + beta·out]) and dot accumulation run
    while the tile is hot — the QUDA move of folding trailing linear
    algebra into the dslash, which removes the separate full-vector
    sweep the p·Ap reduction otherwise costs ([Check.Plan_check]
    PLAN005). Returns the dot. Bit-identical to
    [hop; Fused.xpay_dot dst beta out q] (resp. [hop; Field.dot_re q
    dst] without the xpay) for any pool geometry: the tail is tiled at
    whole [Field.reduce_block]s and the block partials fold in index
    order — the canonical reduction association. The tail output must
    not alias [dst] ([Invalid_argument], probed through the data). *)

val hop_tail_with :
  Util.Pool.t ->
  ?chunk:int ->
  t ->
  src:Linalg.Field.t ->
  dst:Linalg.Field.t ->
  tail:Linalg.Fused.tail ->
  float
(** [hop_tail] on an explicit pool; [chunk] (in sites) is rounded up
    to whole reduction tiles (256 sites) so a chunk boundary can never
    split a canonical block. *)

val hop_sites :
  t -> ?sites:int array -> src:Linalg.Field.t -> dst:Linalg.Field.t -> unit -> unit
(** Restrict the stencil to [sites] (interior/boundary split for
    communication overlap). *)

val apply : t -> mass:float -> src:Linalg.Field.t -> dst:Linalg.Field.t -> unit
(** Full Wilson operator M = (4 + mass) − H/2. No aliasing. *)

val apply_dagger :
  t -> mass:float -> src:Linalg.Field.t -> dst:Linalg.Field.t -> unit
(** M† = gamma5·M·gamma5. *)

val apply_multi :
  t ->
  mass:float ->
  srcs:Linalg.Field.t array ->
  dsts:Linalg.Field.t array ->
  unit
(** Batched full operator over [hop_multi]: per RHS bit-identical to
    [apply]. Same batch contract as [hop_multi]. *)

val apply_dagger_multi :
  t ->
  mass:float ->
  srcs:Linalg.Field.t array ->
  dsts:Linalg.Field.t array ->
  unit
(** Batched M†: per RHS bit-identical to [apply_dagger]. *)
