(** Möbius domain-wall fermion operator (Shamir when c5 = 0), with the
    red-black (4D even/odd) Schur-complement preconditioning used by the
    paper's production solver. 5D fields are s-outer: slice s is a
    contiguous 4D spinor field. *)

type params = {
  l5 : int;
  m5 : float;  (** domain-wall height, in (0,2) *)
  b5 : float;
  c5 : float;
  mass : float;  (** input quark mass *)
}

val shamir : l5:int -> m5:float -> mass:float -> params
val mobius : l5:int -> m5:float -> alpha:float -> mass:float -> params
(** b5 + c5 = alpha, b5 − c5 = 1. *)

val diag_a : params -> float
(** a = b5·(4 − M5) + 1. *)

val diag_b : params -> float
(** b = c5·(4 − M5) − 1. *)

val apply_m5 :
  params -> n4:int -> src:Linalg.Field.t -> dst:Linalg.Field.t -> unit
(** The 4D-site-diagonal, s-coupled part M5d. No aliasing. *)

val apply_m5_dagger :
  params -> n4:int -> src:Linalg.Field.t -> dst:Linalg.Field.t -> unit
(** M5d† — the chirality-to-shift association swaps. *)

val apply_m5inv :
  params -> n4:int -> src:Linalg.Field.t -> dst:Linalg.Field.t -> unit
(** Closed-form inverse of M5d (bidiagonal-cyclic solve per chirality).
    No aliasing. *)

val apply_m5inv_dagger :
  params -> n4:int -> src:Linalg.Field.t -> dst:Linalg.Field.t -> unit
(** Inverse of M5d†. No aliasing. *)

val apply_g5r5 :
  l5:int -> n4:int -> src:Linalg.Field.t -> dst:Linalg.Field.t -> unit
(** Gamma5 × s-reflection — the domain-wall hermiticity conjugation.
    No aliasing. *)

(** Full (unpreconditioned) operator. *)
type t

val of_geometry :
  ?recon:Linalg.Su3_codec.codec ->
  params ->
  Lattice.Geometry.t ->
  Lattice.Gauge.t ->
  t
(** [recon] (default [Full18]) is the gauge codec of the underlying
    [Wilson] kernel — the packed link store every stencil sweep of the
    5D chain reconstructs from. *)

val field_length : t -> int
val create_field : t -> Linalg.Field.t
val apply : t -> src:Linalg.Field.t -> dst:Linalg.Field.t -> unit
val apply_dagger : t -> src:Linalg.Field.t -> dst:Linalg.Field.t -> unit
(** D† = G5R5·D·G5R5. *)

val apply_normal : t -> src:Linalg.Field.t -> dst:Linalg.Field.t -> unit
(** D†D — the CG operator. *)

(** Red-black preconditioned operator on odd-parity fields. *)
type eo

val of_geometry_eo :
  ?recon:Linalg.Su3_codec.codec ->
  params ->
  Lattice.Geometry.t ->
  Lattice.Gauge.t ->
  eo
(** [recon] as in {!of_geometry}: both checkerboard kernels share the
    codec, so the whole Schur chain (and its batched multi-RHS twins)
    runs on the packed store. *)

val eo_field_length : eo -> int
val create_eo_field : eo -> Linalg.Field.t

val hop_eo :
  eo -> to_parity:int -> src:Linalg.Field.t -> dst:Linalg.Field.t -> unit

val apply_schur : eo -> src:Linalg.Field.t -> dst:Linalg.Field.t -> unit
(** S = M5d − Hop_oe·M5d⁻¹·Hop_eo. *)

val apply_schur_dagger : eo -> src:Linalg.Field.t -> dst:Linalg.Field.t -> unit
val apply_schur_normal : eo -> src:Linalg.Field.t -> dst:Linalg.Field.t -> unit

val apply_schur_dagger_tail :
  eo ->
  src:Linalg.Field.t ->
  dst:Linalg.Field.t ->
  tail:Linalg.Fused.tail ->
  float
(** [apply_schur_dagger] with the output tail (optional xpay + dot,
    [Linalg.Fused.tail]) fused into the closing
    [dst <- M5d† src − hop-chain] sweep, per canonical
    [Field.reduce_block] while each block is hot. Returns the dot —
    bit-identical to running the dagger then [Field.dot_re q dst]
    (resp. [Fused.xpay_dot dst beta out q]) for any pool geometry.
    The tail output must not alias [dst] ([Invalid_argument]). *)

val apply_schur_normal_tail :
  eo ->
  src:Linalg.Field.t ->
  dst:Linalg.Field.t ->
  tail:Linalg.Fused.tail ->
  float
(** S†S with the tail riding the closing dagger sweep — with
    [~tail:(Fused.tail ~dot:src ())] this returns src·(S†S src), the
    CG p·Ap, without the separate full-vector reduction sweep
    ([Solver.Cg]'s [apply_dot]). *)

(** {2 Batched multi-RHS chain}

    The 5d wrappers of [Wilson.hop_multi]: per s-slice one batched 4D
    hop streams the gauge links once for all k right-hand sides, while
    every per-RHS stage (s-combination, M5d/M5d⁻¹, closing
    subtractions) runs the single-RHS loops — so each dst in the batch
    is bit-identical to the independent single-RHS application, for
    any batch width and pool geometry. Batches must be non-empty with
    matching widths; aliasing contract as the single-RHS twins. *)

val hop_eo_multi :
  eo ->
  to_parity:int ->
  srcs:Linalg.Field.t array ->
  dsts:Linalg.Field.t array ->
  unit
(** Batched [hop_eo]: per RHS bit-identical. *)

val apply_schur_multi :
  eo -> srcs:Linalg.Field.t array -> dsts:Linalg.Field.t array -> unit
(** Batched [apply_schur]: per RHS bit-identical. *)

val apply_schur_dagger_multi :
  eo -> srcs:Linalg.Field.t array -> dsts:Linalg.Field.t array -> unit
(** Batched [apply_schur_dagger]: per RHS bit-identical. *)

val apply_schur_normal_multi :
  eo -> srcs:Linalg.Field.t array -> dsts:Linalg.Field.t array -> unit
(** Batched S†S — the operator a batched solve hands
    [Solver.Cg.solve_multi]. Per RHS bit-identical to
    [apply_schur_normal]. *)

val split_eo :
  Lattice.Geometry.t -> l5:int -> Linalg.Field.t -> Linalg.Field.t * Linalg.Field.t
(** Full field → (even, odd) checkerboard fields. *)

val merge_eo :
  Lattice.Geometry.t ->
  l5:int ->
  even:Linalg.Field.t ->
  odd:Linalg.Field.t ->
  Linalg.Field.t

val prepare_rhs :
  eo -> rhs_even:Linalg.Field.t -> rhs_odd:Linalg.Field.t -> Linalg.Field.t
(** y'_o = y_o − Hop_oe·M5d⁻¹·y_e (the Schur system right-hand side). *)

val reconstruct_even :
  eo -> rhs_even:Linalg.Field.t -> x_odd:Linalg.Field.t -> Linalg.Field.t
(** x_e = M5d⁻¹·(y_e − Hop_eo·x_o). *)
