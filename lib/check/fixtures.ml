(* Seeded defect fixtures: thirty-four artifacts, each carrying
   exactly the class of bug its pass exists to catch (six of them
   nonblocking-halo defects: early boundary read, send-buffer race,
   lost completion, zero-copy corruption, wasted double-buffering,
   transport/policy mismatch; three pool-determinism defects:
   completion-order reduction, broken chunk partition, under-cutoff
   pooled launch; four fused-kernel defects: non-canonical reduction
   block, aliased output operand, stencil-tail output aliasing the
   hop dst, untuned launch geometry; three batched multi-RHS defects:
   converged RHS left active, mask width mismatching the batch,
   stale single-RHS tuner winner aliased onto a batched plan; seven
   plan-level defects caught statically from the IR alone: partition
   overlap, aliased fused output, tail output aliasing the stencil
   dst, zero-copy window write, model/IR sweep mismatch, half-codec
   range violation, stale-precision read; three compressed gauge-link
   defects: non-unitary source link beyond the codec tolerance, codec
   mismatch against the tuned winner, stale compressed halo; three
   low-mode deflation defects: space stale against the live gauge
   configuration, basis drifted beyond its build bound, executed rank
   aliasing a tuner winner of another rank). The
   CLI's --selftest and the test suite assert every one is detected,
   which keeps the checker honest — a pass that silently stops firing
   fails CI. *)

module P = Jobman.Pipeline
module F = Linalg.Field

type t = {
  name : string;
  defect : string;  (* what is wrong with the artifact *)
  expect : string;  (* rule id family expected to fire *)
  run : unit -> Diagnostic.t list;
}

let task ?(nodes = 1) ?(duration = 60.) ?(deps = []) ?(cpu_only = false) id =
  { P.id; nodes; duration; deps; cpu_only }

(* 1. A campaign whose tail contraction closes a dependency cycle. *)
let dag_cycle () =
  let tasks =
    [
      task 0 ~deps:[ 2 ];
      task 1 ~deps:[ 0 ];
      task 2 ~deps:[ 1 ];
      task 3;  (* innocent bystander, must still be schedulable *)
    ]
  in
  Dag_check.verify ~n_nodes:8 tasks

(* 2. A propagator task wider than the whole allocation. *)
let oversubscribed () =
  let tasks = [ task 0 ~nodes:64; task 1 ~deps:[ 0 ] ] in
  Dag_check.verify ~n_nodes:32 tasks

(* 3. An overlapped stencil schedule that only exchanges the x and y
   faces before a full stencil read: z/t ghosts are read stale. *)
let halo_domain () =
  let geom = Lattice.Geometry.create [| 4; 4; 4; 4 |] in
  Lattice.Domain.create geom [| 2; 2; 1; 1 |]

let stale_ghost () =
  Halo_check.verify_schedule (halo_domain ())
    [
      Halo_check.Scatter;
      Halo_check.Exchange (Some [| 0; 1; 2; 3 |]);
      Halo_check.Stencil Halo_check.Full;
    ]

(* 3a. A fine-grained overlapped schedule whose boundary sub-stencil
   for the x faces runs before those faces completed: the classic
   "forgot the wait" interleaving bug. *)
let early_boundary_read () =
  Halo_check.verify_schedule (halo_domain ())
    [
      Halo_check.Scatter;
      Halo_check.Post None;
      Halo_check.Stencil Halo_check.Interior;
      Halo_check.Stencil_faces [| 0; 1 |];  (* x faces still in flight *)
      Halo_check.Complete None;
      Halo_check.Stencil Halo_check.Boundary;
    ]

(* 3b. A rank rewrites its local sites while its posted messages are
   still in flight: the nonblocking send-buffer race. *)
let send_buffer_race () =
  Halo_check.verify_schedule (halo_domain ())
    [
      Halo_check.Scatter;
      Halo_check.Post None;
      Halo_check.Write [ 0 ];
      Halo_check.Complete None;
      Halo_check.Stencil Halo_check.Full;
    ]

(* 3c. A post whose z/t completions never happen: the receivers' ghosts
   wait forever (an MPI_Wait that was never issued). *)
let lost_completion () =
  Halo_check.verify_schedule (halo_domain ())
    [
      Halo_check.Scatter;
      Halo_check.Post None;
      Halo_check.Stencil Halo_check.Interior;
      Halo_check.Complete (Some [| 0; 1; 2; 3 |]);
      Halo_check.Stencil_faces [| 0; 1; 2; 3 |];
    ]

(* 3d. The same write-after-post pattern as 3b, but under the
   zero-copy transport, where the in-flight payload aliases the
   writer's field: the delivered ghosts are corrupt for real, and the
   diagnostic names the first racing site's global coordinate. The
   trailing exchange refreshes the ghosts so only the corruption
   fires, not a stale read. *)
let zero_copy_race () =
  Halo_check.verify_schedule ~transport:Machine.Transport.Zero_copy
    (halo_domain ())
    [
      Halo_check.Scatter;
      Halo_check.Post None;
      Halo_check.Write [ 0 ];
      Halo_check.Complete None;
      Halo_check.Exchange None;
      Halo_check.Stencil Halo_check.Full;
    ]

(* 3e. A double-buffered schedule where no write ever lands between a
   post and its completion: every rotation copy was paid for nothing —
   the staged transport would deliver the same data cheaper. *)
let wasted_double_buffer () =
  Halo_check.verify_schedule ~transport:Machine.Transport.Double_buffered
    (halo_domain ())
    [
      Halo_check.Scatter;
      Halo_check.Post None;
      Halo_check.Stencil Halo_check.Interior;
      Halo_check.Complete None;
      Halo_check.Stencil Halo_check.Boundary;
    ]

(* 3f. A GDR policy modeled with the staged transport: the real wire
   is zero-copy, so the staging model hides the send-buffer race the
   hardware path actually has. *)
let transport_mismatch () =
  Halo_check.verify_schedule ~transport:Machine.Transport.Staged
    ~policy:
      { Machine.Policy.transfer = Machine.Policy.Gdr;
        granularity = Machine.Policy.Fine }
    (halo_domain ())
    [
      Halo_check.Scatter;
      Halo_check.Exchange None;
      Halo_check.Stencil Halo_check.Full;
    ]

(* 4. A mixed-precision solve whose operator manufactures a NaN — the
   half codec would silently launder it to zero; the instrumented
   kernels trap it at the encode boundary. *)
let nan_solve () =
  let n = 2 * 24 in
  let apply (x : F.t) (y : F.t) =
    for i = 0 to n - 1 do
      Bigarray.Array1.unsafe_set y i (2.5 *. Bigarray.Array1.unsafe_get x i)
    done;
    Bigarray.Array1.unsafe_set y 0 Float.nan
  in
  let b = F.create n in
  F.gaussian (Util.Rng.create 7) b;
  Numeric_check.probe_mixed_solve ~apply ~b ()

(* 5. A field whose half-codec blocks are invalid: one block loses
   23/24 values to the int16 mantissa floor, the next underflows the
   float32 norm entirely. *)
let bad_half_block () =
  let v = F.create 48 in
  F.fill v 1e-9;
  Bigarray.Array1.set v 0 1.0;  (* block 0: dynamic range 1e9 >> 32767 *)
  for i = 24 to 47 do
    Bigarray.Array1.set v i 1e-40  (* block 1: norm below float32 *)
  done;
  Numeric_check.half_blocks ~block:24 v

(* 6. A multi-domain norm2 whose partials are combined in completion
   order: the exact nondeterminism Pool.parallel_reduce ~ordered:false
   has, and the reason the engine defaults to the ordered combine. *)
let unordered_reduce () =
  Pool_check.verify_plan
    (Pool_check.plan ~reduction:Pool_check.Completion_order ~kernel:"norm2"
       ~n:(1 lsl 17) ~domains:4 ~chunk:8192 ())

(* 6a. A hand-scheduled partition that drops a range and double-covers
   another: chunk 2 was never launched and chunk 1 launched twice (the
   classic off-by-one in a custom scheduler). *)
let bad_partition () =
  Pool_check.verify_plan
    {
      Pool_check.kernel = "axpy";
      n = 4096;
      domains = 2;
      chunk = 1024;
      partition = [| (0, 1024); (1024, 2048); (1024, 2048); (3072, 4096) |];
      reduction = None;
    }

(* 6b. A 512-element axpy forked across 4 domains: bit-identical but
   slower than the serial loop — the geometry the tuner must reject. *)
let tiny_pooled () =
  Pool_check.verify_plan
    (Pool_check.plan ~kernel:"axpy" ~n:512 ~domains:4 ~chunk:128 ())

(* 7. A fused axpy_norm2 accumulating 4096-float blocks: every partial
   sums twice the canonical span, so the fused |y|2 associates
   differently from the standalone norm2 — the bit-drift the fusion
   layer exists to rule out. *)
let fused_wrong_block () =
  Fuse_check.verify_plan
    (Fuse_check.plan ~kernel:"axpy_norm2" ~n:(1 lsl 20) ~block:4096
       ~buffers:[ ("x", Fuse_check.Read); ("y", Fuse_check.Update) ]
       ())

(* 7a. A tripleCGUpdate whose solution output x is handed the same
   buffer as the stencil result Ap: the single pass updates x while
   the r-recurrence still reads Ap from it. *)
let fused_aliased_output () =
  Fuse_check.verify_plan
    (Fuse_check.plan ~kernel:"cg_update" ~n:(1 lsl 20)
       ~block:Linalg.Field.reduce_block
       ~buffers:
         [
           ("p", Fuse_check.Read);
           ("ap", Fuse_check.Read);
           ("ap", Fuse_check.Update);  (* x given the ap buffer *)
           ("r", Fuse_check.Update);
         ]
       ())

(* 7a'. A tail-fused hop whose xpay output is handed the same buffer
   as the stencil dst: the tail's closing loop reads the freshly
   written stencil block while overwriting it in place — the runtime
   guard (Fused.tail_check's same_data probe) rejects the call, and
   this static plan carries the same duplicate-Update hazard. *)
let fused_tail_aliased () =
  Fuse_check.verify_plan
    (Fuse_check.plan ~kernel:"hop_tail" ~n:(256 * 24)
       ~block:Linalg.Field.reduce_block
       ~buffers:
         [
           ("u", Fuse_check.Read);
           ("src", Fuse_check.Read);
           ("dst", Fuse_check.Update);
           ("dst", Fuse_check.Update);  (* tail out given the dst buffer *)
           ("q", Fuse_check.Read);
         ]
       ())

(* 7b. A fused launch on a 4-domain geometry when the tuner's recorded
   winner for this kernel and shape is 2 domains: running a plan the
   autotuner never priced. *)
let fused_untuned_geometry () =
  Fuse_check.verify_plan
    (Fuse_check.plan ~kernel:"cg_update" ~n:(1 lsl 20)
       ~block:Linalg.Field.reduce_block
       ~geometry:(4, 131072)
       ~tuned:(Some (2, 524288))
       ~buffers:
         [
           ("p", Fuse_check.Read);
           ("ap", Fuse_check.Read);
           ("x", Fuse_check.Update);
           ("r", Fuse_check.Update);
         ]
       ())

(* ---- 7'. batched multi-RHS defects ---- *)

(* 7c. A batched CG update whose RHS 1 met its stopping criterion but
   was never dropped from the active set: the batched kernels keep
   advancing an iterate the independent solve froze — the trajectory
   silently diverges from the k-independent-solves reference. *)
let mrhs_masked_update () =
  Mrhs_check.verify_plan
    (Mrhs_check.plan ~kernel:"multi_cg_update" ~k:4 ~n:(1 lsl 16)
       ~block:Linalg.Field.reduce_block
       ~active:[| true; true; true; false |]
       ~converged:[| false; true; false; true |]
       ())

(* 7d. A width-4 batched hop carrying width-3 masks: the RHS at the
   batch boundary is silently dropped (or invented) by every masked
   loop. *)
let mrhs_block_mismatch () =
  Mrhs_check.verify_plan
    (Mrhs_check.plan ~kernel:"wilson_hop_multi" ~k:4 ~n:(1 lsl 16)
       ~block:Linalg.Field.reduce_block
       ~active:[| true; true; true |]
       ~converged:[| false; false; false |]
       ())

(* 7e. A width-4 batched launch running under the tuner winner that
   was recorded for the single-RHS space: the batched plan was never
   priced, so bench rows and the amortized-traffic model describe a
   different launch. *)
let mrhs_stale_tuned () =
  Mrhs_check.verify_plan
    (Mrhs_check.plan ~kernel:"wilson_hop_multi" ~k:4 ~n:(1 lsl 16)
       ~block:Linalg.Field.reduce_block ~tuned_k:1
       ~active:[| true; true; true; true |]
       ~converged:[| false; false; false; false |]
       ())

(* ---- 8. plan-level defects: the same bug classes caught statically,
   from the IR alone, before any kernel runs ---- *)

(* 8a. A pooled launch whose explicit partition double-covers a range:
   two domains would race on [512, 1024). *)
let plan_partition_overlap () =
  let open Plan_ir in
  let k =
    kernel
      ~partition:[| (0, 1024); (512, 2048); (2048, 4096) |]
      ~args:[ ("x", Read); ("y", Update) ]
      "axpy"
  in
  Plan_check.verify
    (plan ~n:4096
       ~buffers:[ buffer ~prec:Double "x"; buffer ~prec:Double "y" ]
       ~steps:[ Launch k ] "overlap-fixture")

(* 8b. The fused CG tail with the solution output aliasing the Ap
   input — FUSE002's bug class, caught from the plan. *)
let plan_aliased_output () =
  let open Plan_ir in
  let p = Plan_extract.cg_tail ~fused:true () in
  let alias = function
    | Launch k when k.kname = "cg_update" ->
      Launch
        {
          k with
          args =
            List.map
              (fun (name, role) ->
                if name = "x" then ("ap", role) else (name, role))
              k.args;
        }
    | s -> s
  in
  Plan_check.verify { p with steps = List.map alias p.steps }

(* 8b'. The tail-fused Wilson hop with the tail's xpay output renamed
   onto the stencil dst — the plan-level twin of 7a': PLAN002 catches
   the duplicate name with a writing role from the IR alone. *)
let plan_tail_aliased () =
  let open Plan_ir in
  let p = Plan_extract.wilson_hop_tail () in
  let alias = function
    | Launch k when k.kname = "wilson_hop_tail" ->
      Launch
        {
          k with
          args =
            List.map
              (fun (name, role) ->
                if name = "out" then ("dst", role) else (name, role))
              k.args;
        }
    | s -> s
  in
  Plan_check.verify { p with steps = List.map alias p.steps }

(* 8c. The zero-copy halo schedule with a kernel writing the posted
   buffer inside the open window — HALO011/DET002's corruption, from
   the schedule alone. *)
let plan_zero_copy_write () =
  let open Plan_ir in
  let p = Plan_extract.dd_zero_copy () in
  let inject = function
    | Complete _ as s ->
      [
        Launch
          (kernel ~args:[ ("x", Read); ("spinor", Update) ] "axpy");
        s;
      ]
    | s -> [ s ]
  in
  let p =
    {
      p with
      buffers = buffer ~prec:Double "x" :: p.buffers;
      steps = List.concat_map inject p.steps;
    }
  in
  Plan_check.verify p

(* 8d. A fused-tagged plan executing a sweep count the model does not
   price: an extra residual norm snuck into the tail, a nonzero
   Plan_check.sweep_gap. *)
let plan_sweep_mismatch () =
  let open Plan_ir in
  let p = Plan_extract.cg_tail ~fused:true () in
  let extra = Launch (kernel ~args:[ ("r", Read); ("r2x", Reduce) ] "norm2") in
  Plan_check.verify { p with steps = p.steps @ [ extra ] }

(* 8e. The mixed solve fed a source whose declared magnitude interval
   spans 60 decades: the first quantize point cannot represent it in
   an int16 mantissa. *)
let plan_half_range () =
  Plan_check.verify (Plan_extract.mixed ~range:(1e-30, 1e30) ~fused:true ())

(* 8f. The mixed inner iteration with the quantize of Ap dropped after
   the stencil: dot_re reads stale full-precision data alongside the
   quantized p. *)
let plan_stale_precision () =
  let open Plan_ir in
  let p = Plan_extract.mixed ~fused:true () in
  let steps =
    List.filter
      (function Quantize { qbuf = "ap"; _ } -> false | _ -> true)
      p.steps
  in
  Plan_check.verify { p with steps }

(* ---- 9. compressed gauge-link (reconstruct) defects ---- *)

(* 9a. A hot gauge field with its first link scaled by 1.3: U†U =
   1.69·1 on that link, so Recon12's rebuilt third row s·conj(r0×r1)
   is a different matrix than was stored — the unitarity contract the
   codecs rest on, RECON001's bug class. *)
let recon_nonunitary_link () =
  let geom = Lattice.Geometry.create [| 4; 4; 4; 4 |] in
  let g = Lattice.Gauge.random geom (Util.Rng.create 11) in
  let d = Lattice.Gauge.data g in
  for k = 0 to 17 do
    Bigarray.Array1.set d k (1.3 *. Bigarray.Array1.get d k)
  done;
  Recon_check.verify_gauge ~recon:Linalg.Su3_codec.Recon12 g

(* 9b. A recon12 launch under the tuner winner recorded for full18:
   the launch was never priced at this link-traffic point, so bench
   rows and the model's recon term describe a different kernel. *)
let recon_tuned_mismatch () =
  Recon_check.verify_plan
    (Recon_check.plan ~kernel:"wilson_hop_recon"
       ~recon:Linalg.Su3_codec.Recon12
       ~tuned_recon:Linalg.Su3_codec.Full18 ~max_violation:1e-15 ())

(* 9c. A compressed halo packed two gauge epochs before the live
   field: ghost links decode to mutated-away values — the gauge twin
   of the stale-halo spinor race. *)
let recon_stale_halo () =
  Recon_check.verify_plan
    (Recon_check.plan ~kernel:"wilson_hop_recon"
       ~recon:Linalg.Su3_codec.Recon8 ~max_violation:1e-15 ~gauge_epoch:3
       ~halo_epoch:1 ~halo_compressed:true ())

(* Shared scaffolding of the deflation fixtures: a small SPD diagonal
   operator with a separated low mode, and a genuinely converged
   Lanczos space built on it. *)
let deflate_scaffold () =
  let n = 64 in
  let diag =
    Array.init n (fun i ->
        if i < 2 then 0.02 *. float_of_int (i + 1)
        else 1. +. (float_of_int i /. float_of_int n))
  in
  let apply (x : F.t) (y : F.t) =
    for i = 0 to n - 1 do
      Bigarray.Array1.set y i (diag.(i) *. Bigarray.Array1.get x i)
    done
  in
  let res =
    Solver.Lanczos.lowest ~tol:1e-8 ~rank:2 ~basis_size:8 ~apply ~n
      ~rng:(Util.Rng.create 13) ()
  in
  (apply, res)

(* 10a. A deflation space audited against a configuration it was not
   built from: the basis is perfectly orthonormal and converged — for
   the WRONG operator. Nothing numerical ever trips; only the hash
   comparison catches it (DEF001's bug class). *)
let deflate_stale_space () =
  let apply, res = deflate_scaffold () in
  let space = Solver.Deflate.of_lanczos ~config_hash:0x01d ~bound:1e-6 res in
  Deflate_check.verify_space ~config_hash:0x0dd ~apply space

(* 10b. A basis one vector of which was rescaled after the build —
   the in-place-mutation bug: v·v = 1.1² breaks orthonormality and
   |A v − λ v| grows with it, both beyond the space's bound. *)
let deflate_drifted_basis () =
  let apply, (values, basis, stats) = deflate_scaffold () in
  F.scale 1.1 basis.(0);
  let space =
    Solver.Deflate.of_lanczos ~config_hash:0x5eed ~bound:1e-6
      (values, basis, stats)
  in
  Deflate_check.verify_space ~config_hash:0x5eed ~apply space

(* 10c. A rank-8 deflated solve under the tuner winner recorded for
   rank 4: the setup amortization was priced at another point of the
   rank axis, so bench rows and the break-even count describe a
   different campaign. *)
let deflate_rank_mismatch () =
  Deflate_check.verify_plan
    (Deflate_check.plan ~kernel:"cg_deflate" ~rank:8 ~n:(1 lsl 16)
       ~space_hash:0x5eed ~config_hash:0x5eed ~ortho_drift:1e-14
       ~max_residual:1e-9 ~bound:1e-6 ~tuned_rank:4 ())

let all =
  [
    {
      name = "dag-cycle";
      defect = "campaign with a 3-task dependency cycle";
      expect = "CAMP003";
      run = dag_cycle;
    };
    {
      name = "oversubscribed";
      defect = "64-node task on a 32-node allocation";
      expect = "CAMP005";
      run = oversubscribed;
    };
    {
      name = "stale-ghost";
      defect = "full stencil after exchanging only the x/y faces";
      expect = "HALO003";
      run = stale_ghost;
    };
    {
      name = "early-boundary-read";
      defect = "boundary sub-stencil runs before its faces completed";
      expect = "HALO007";
      run = early_boundary_read;
    };
    {
      name = "send-buffer-race";
      defect = "rank 0 writes local sites between post and complete";
      expect = "HALO008";
      run = send_buffer_race;
    };
    {
      name = "lost-completion";
      defect = "posted z/t faces never completed";
      expect = "HALO009";
      run = lost_completion;
    };
    {
      name = "zero-copy-race";
      defect = "write between post and complete under the zero-copy transport";
      expect = "HALO011";
      run = zero_copy_race;
    };
    {
      name = "wasted-double-buffer";
      defect = "double-buffered schedule where no write ever races a post";
      expect = "HALO012";
      run = wasted_double_buffer;
    };
    {
      name = "transport-mismatch";
      defect = "GDR transfer policy modeled with the staged transport";
      expect = "HALO013";
      run = transport_mismatch;
    };
    {
      name = "nan-solve";
      defect = "mixed solve against a NaN-producing operator";
      expect = "NUM001";
      run = nan_solve;
    };
    {
      name = "bad-half-block";
      defect = "half codec blocks with unrepresentable dynamic range";
      expect = "NUM003";
      run = bad_half_block;
    };
    {
      name = "det-unordered-reduce";
      defect = "multi-domain norm2 combining partials in completion order";
      expect = "DET001";
      run = unordered_reduce;
    };
    {
      name = "det-bad-partition";
      defect = "chunk partition with a dropped range and a double-covered one";
      expect = "DET002";
      run = bad_partition;
    };
    {
      name = "det-tiny-pooled";
      defect = "512-element axpy forked across 4 domains (under the cutoff)";
      expect = "DET003";
      run = tiny_pooled;
    };
    {
      name = "fuse-wrong-block";
      defect = "fused axpy_norm2 reducing 4096-float blocks (canonical is 2048)";
      expect = "FUSE001";
      run = fused_wrong_block;
    };
    {
      name = "fuse-aliased-output";
      defect = "cg_update with the solution output aliasing the Ap input";
      expect = "FUSE002";
      run = fused_aliased_output;
    };
    {
      name = "fuse-tail-aliased";
      defect = "tail-fused hop with the xpay output aliasing the stencil dst";
      expect = "FUSE002";
      run = fused_tail_aliased;
    };
    {
      name = "fuse-untuned-geometry";
      defect = "fused launch on a geometry the tuner's winner disagrees with";
      expect = "FUSE003";
      run = fused_untuned_geometry;
    };
    {
      name = "mrhs-masked-update";
      defect = "batched CG update with a converged RHS still active";
      expect = "MRHS001";
      run = mrhs_masked_update;
    };
    {
      name = "mrhs-block-mismatch";
      defect = "width-4 batched hop carrying width-3 per-RHS masks";
      expect = "MRHS002";
      run = mrhs_block_mismatch;
    };
    {
      name = "mrhs-stale-tuned";
      defect = "width-4 batched launch under a single-RHS tuner winner";
      expect = "MRHS003";
      run = mrhs_stale_tuned;
    };
    {
      name = "plan-partition-overlap";
      defect = "pooled plan whose partition double-covers [512, 1024)";
      expect = "PLAN001";
      run = plan_partition_overlap;
    };
    {
      name = "plan-aliased-output";
      defect = "CG tail plan with the solution output aliasing the Ap input";
      expect = "PLAN002";
      run = plan_aliased_output;
    };
    {
      name = "plan-tail-aliased";
      defect = "hop-tail plan with the xpay output aliasing the stencil dst";
      expect = "PLAN002";
      run = plan_tail_aliased;
    };
    {
      name = "plan-zero-copy-write";
      defect = "zero-copy plan writing the posted buffer inside the window";
      expect = "PLAN003";
      run = plan_zero_copy_write;
    };
    {
      name = "plan-sweep-mismatch";
      defect = "fused plan executing a sweep count the model does not price";
      expect = "PLAN005";
      run = plan_sweep_mismatch;
    };
    {
      name = "plan-half-range";
      defect = "mixed plan whose source range overflows the int16 mantissa";
      expect = "PREC001";
      run = plan_half_range;
    };
    {
      name = "plan-stale-precision";
      defect = "mixed plan reading Ap past a dropped quantize point";
      expect = "PREC003";
      run = plan_stale_precision;
    };
    {
      name = "recon-nonunitary-link";
      defect = "link scaled by 1.3 packed through the recon12 codec";
      expect = "RECON001";
      run = recon_nonunitary_link;
    };
    {
      name = "recon-tuned-mismatch";
      defect = "recon12 launch under a tuner winner recorded for full18";
      expect = "RECON002";
      run = recon_tuned_mismatch;
    };
    {
      name = "recon-stale-halo";
      defect = "compressed halo packed two gauge epochs before the field";
      expect = "RECON003";
      run = recon_stale_halo;
    };
    {
      name = "deflate-stale-space";
      defect = "converged deflation space audited against another configuration";
      expect = "DEF001";
      run = deflate_stale_space;
    };
    {
      name = "deflate-drifted-basis";
      defect = "basis vector rescaled by 1.1 after the Lanczos build";
      expect = "DEF002";
      run = deflate_drifted_basis;
    };
    {
      name = "deflate-rank-mismatch";
      defect = "rank-8 deflated solve under a tuner winner recorded for rank 4";
      expect = "DEF003";
      run = deflate_rank_mismatch;
    };
  ]

let find name = List.find_opt (fun f -> f.name = name) all
