(** Determinism checker for the multicore kernel engine: verifies that
    a pooled launch plan tiles its index space exactly, combines
    reduction partials in a deterministic order, and clears the
    parallel cutoff. Rule ids [DET001]–[DET003]. *)

type reduction = Ordered | Completion_order

type plan = {
  kernel : string;
  n : int;  (** elements the launch must cover *)
  domains : int;
  chunk : int;
  partition : (int * int) array;  (** [lo, hi) ranges, launch order *)
  reduction : reduction option;  (** [None] for map-only kernels *)
}

val rules : (string * string) list

val plan :
  ?reduction:reduction ->
  kernel:string ->
  n:int ->
  domains:int ->
  chunk:int ->
  unit ->
  plan
(** The honest constructor: the partition is [Util.Pool.chunks ~n
    ~chunk] — exactly what [Pool.parallel_for] executes. Build the
    record directly to describe a custom (or defective) partition. *)

val verify_plan : plan -> Diagnostic.t list
val verify_plans : plan list -> Diagnostic.t list
