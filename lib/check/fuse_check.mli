(** Static checker for fused BLAS-1 kernel plans ([Linalg.Fused]):
    verifies that a fused launch keeps the canonical reduction
    association (bit-identity with the unfused kernels), that no
    output operand aliases another role, and that the geometry agrees
    with the autotuner's recorded winner. Rule ids [FUSE001]–[FUSE003]. *)

type role = Read | Update

type plan = {
  kernel : string;  (** fused kernel name, e.g. ["cg_update"] *)
  n : int;  (** vector length in floats *)
  block : int;  (** reduction block the fused term accumulates over *)
  geometry : (int * int) option;  (** (domains, chunk); [None] = serial *)
  buffers : (string * role) list;  (** operand name → role *)
  tuned : (int * int) option option;
      (** [Some g]: the tuner's winner geometry for this kernel and
          shape ([None] = serial won); [None]: no tuning record,
          FUSE003 is skipped *)
}

val rules : (string * string) list

val plan :
  ?geometry:int * int ->
  ?tuned:(int * int) option ->
  kernel:string ->
  n:int ->
  block:int ->
  buffers:(string * role) list ->
  unit ->
  plan

val verify_plan : plan -> Diagnostic.t list
val verify_plans : plan list -> Diagnostic.t list
