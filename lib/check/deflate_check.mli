(** Static checker for low-mode deflation executions ([Solver.Lanczos]
    / [Solver.Deflate] through the [?deflate] solver hooks): verifies
    the space matches the live gauge configuration, that the basis
    still honors the orthonormality/residual bound it was built to,
    and that the executed rank matches the tuner's recorded winner.
    Rule ids [DEF001]–[DEF003]. *)

type plan = {
  kernel : string;  (** deflated solver kernel, e.g. ["cg_deflate"] *)
  rank : int;  (** executed deflation rank *)
  n : int;  (** vector length in floats *)
  space_hash : int;
      (** configuration hash the space was built from
          ([Solver.Deflate.config_hash]) *)
  config_hash : int;  (** live configuration hash *)
  ortho_drift : float;  (** measured max |vᵢ·vⱼ − δᵢⱼ| over the basis *)
  max_residual : float;  (** measured worst |A v − λ v| over the basis *)
  bound : float;  (** drift/residual bound the space was built to *)
  tuned_rank : int option;
      (** rank of the tuner's recorded winner for this kernel and
          shape; [None]: no tuning record, DEF003 is skipped *)
}

val rules : (string * string) list

val plan :
  ?tuned_rank:int ->
  kernel:string ->
  rank:int ->
  n:int ->
  space_hash:int ->
  config_hash:int ->
  ortho_drift:float ->
  max_residual:float ->
  bound:float ->
  unit ->
  plan

val verify_plan : plan -> Diagnostic.t list
val verify_plans : plan list -> Diagnostic.t list

val verify_space :
  ?tuned_rank:int ->
  ?kernel:string ->
  config_hash:int ->
  apply:(Linalg.Field.t -> Linalg.Field.t -> unit) ->
  Solver.Deflate.t ->
  Diagnostic.t list
(** Live audit of a real space: the drift and eigen-residual are
    measured here against the given operator
    ([Solver.Deflate.ortho_drift] / [max_residual]) and the resulting
    plan verified — a caller cannot report stale audit numbers. *)
