(* Halo-exchange race detector. The paper's overlapped stencil (pack /
   exchange / interior / boundary) is only correct when every ghost
   zone a stencil reads was refreshed after the last write to the
   sites it mirrors. This pass verifies a communication schedule
   statically — replaying write/ghost epochs over a Lattice.Domain
   without touching field data — and can also audit a live Vrank.Comm
   for the same property via its epoch counters. *)

module D = Lattice.Domain

type stencil = Full | Interior | Boundary

type op =
  | Scatter  (* distribute a global field: every rank's sites rewritten *)
  | Write of int list  (* local-site writes on these ranks ([] = all) *)
  | Exchange of int array option  (* halo_exchange ?faces *)
  | Stencil of stencil  (* Full/Boundary read ghosts; Interior does not *)

let rules =
  [
    ("HALO001", "stencil reads a stale ghost zone");
    ("HALO002", "unmatched send/recv: a face exchanged without its opposite");
    ("HALO003", "ghost face not covered by the ?faces subset");
    ("HALO004", "face id outside 0..7");
    ("HALO005", "duplicate face id in an exchange");
    ("HALO006", "exchange before any write: refreshes zero-initialized data");
  ]

let face_name fid =
  let mu = fid / 2 and dir = fid mod 2 in
  Printf.sprintf "%c%c" "xyzt".[mu] (if dir = 0 then '+' else '-')

let op_name = function
  | Scatter -> "scatter"
  | Write _ -> "write"
  | Exchange None -> "exchange(all)"
  | Exchange (Some fs) ->
    Printf.sprintf "exchange(%s)"
      (String.concat "," (Array.to_list (Array.map face_name fs)))
  | Stencil Full -> "stencil(full)"
  | Stencil Interior -> "stencil(interior)"
  | Stencil Boundary -> "stencil(boundary)"

let all_faces = [| 0; 1; 2; 3; 4; 5; 6; 7 |]

let verify_schedule dom (ops : op list) =
  let n = D.n_ranks dom in
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let write_epoch = Array.make n 0 in
  let ghost_epoch = Array.init n (fun _ -> Array.make 8 (-1)) in
  let last_subset = ref None in  (* faces of the most recent exchange *)
  let filler rank face =
    (D.rank_geometry dom rank).D.faces.(face).D.neighbor
  in
  let fresh rank face =
    write_epoch.(filler rank face) = 0
    || ghost_epoch.(rank).(face) >= write_epoch.(filler rank face)
  in
  List.iteri
    (fun i op ->
      let loc = Printf.sprintf "op#%d %s" i (op_name op) in
      match op with
      | Scatter -> Array.iteri (fun r e -> write_epoch.(r) <- e + 1) write_epoch
      | Write [] -> Array.iteri (fun r e -> write_epoch.(r) <- e + 1) write_epoch
      | Write ranks ->
        List.iter
          (fun r ->
            if r < 0 || r >= n then
              add
                (Diagnostic.error ~rule:"HALO004" ~loc
                   (Printf.sprintf "rank %d outside 0..%d" r (n - 1)))
            else write_epoch.(r) <- write_epoch.(r) + 1)
          ranks
      | Exchange faces ->
        let fids =
          match faces with
          | None -> all_faces
          | Some fs ->
            (* validate the subset itself *)
            let seen = Hashtbl.create 8 in
            Array.iter
              (fun f ->
                if f < 0 || f > 7 then
                  add
                    (Diagnostic.error ~rule:"HALO004" ~loc
                       (Printf.sprintf "face id %d outside 0..7" f))
                else begin
                  if Hashtbl.mem seen f then
                    add
                      (Diagnostic.warning ~rule:"HALO005" ~loc
                         (Printf.sprintf "face %s exchanged twice" (face_name f)))
                  else Hashtbl.add seen f ();
                  let opposite = (2 * (f / 2)) + (1 - (f mod 2)) in
                  if not (Array.exists (( = ) opposite) fs) then
                    add
                      (Diagnostic.warning ~rule:"HALO002" ~loc
                         (Printf.sprintf
                            "face %s exchanged without its opposite %s"
                            (face_name f) (face_name opposite))
                         ~hint:
                           "one direction's ghosts stay stale; exchange both \
                            faces of the dimension")
                end)
              fs;
            Array.of_list
              (List.filter (fun f -> f >= 0 && f <= 7) (Array.to_list fs))
        in
        if Array.for_all (( = ) 0) write_epoch then
          add
            (Diagnostic.info ~rule:"HALO006" ~loc
               "exchange before any scatter/write: ghosts refresh zero data");
        for r = 0 to n - 1 do
          let rg = D.rank_geometry dom r in
          Array.iter
            (fun fid ->
              let face = rg.D.faces.(fid) in
              let nb = face.D.neighbor in
              ghost_epoch.(nb).((2 * face.D.mu) + (1 - face.D.dir)) <-
                write_epoch.(r))
            fids
        done;
        last_subset :=
          Some (match faces with None -> Array.to_list all_faces | Some fs -> Array.to_list fs)
      | Stencil Interior -> ()  (* interior sites never touch ghosts *)
      | Stencil (Full | Boundary) ->
        (* every rank reads all 8 ghost faces; aggregate per face id *)
        for fid = 0 to 7 do
          let stale = ref 0 in
          for r = 0 to n - 1 do
            if not (fresh r fid) then incr stale
          done;
          if !stale > 0 then
            let covered_by_last =
              match !last_subset with
              | Some fs -> List.mem fid fs
              | None -> false
            in
            if (not covered_by_last) && !last_subset <> None then
              add
                (Diagnostic.error ~rule:"HALO003"
                   ~loc:(Printf.sprintf "%s face %s" loc (face_name fid))
                   (Printf.sprintf
                      "stale ghost read on %d/%d ranks: face missing from \
                       the ?faces subset"
                      !stale n)
                   ~hint:"add the face to the subset or exchange all faces")
            else
              add
                (Diagnostic.error ~rule:"HALO001"
                   ~loc:(Printf.sprintf "%s face %s" loc (face_name fid))
                   (Printf.sprintf
                      "stale ghost read on %d/%d ranks: sites were written \
                       after the last exchange"
                      !stale n)
                   ~hint:"insert a halo exchange between the write and the read")
        done)
    ops;
  Diagnostic.sort (List.rev !ds)

(* Runtime audit of a live Comm: flag every currently-stale ghost face
   (same freshness rule, read from the epoch counters the instrumented
   Comm maintains). *)
let audit (c : Vrank.Comm.t) =
  let n = Vrank.Comm.n_ranks c in
  let ds = ref [] in
  for fid = 0 to 7 do
    let stale = ref 0 in
    for r = 0 to n - 1 do
      if not (Vrank.Comm.ghost_fresh c ~rank:r ~face:fid) then incr stale
    done;
    if !stale > 0 then
      ds :=
        Diagnostic.error ~rule:"HALO001"
          ~loc:(Printf.sprintf "comm face %s" (face_name fid))
          (Printf.sprintf "ghosts stale on %d/%d ranks" !stale n)
          ~hint:"a halo exchange is required before the next ghost read"
        :: !ds
  done;
  Diagnostic.sort (List.rev !ds)
