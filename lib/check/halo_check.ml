(* Halo-exchange race detector. The paper's overlapped stencil (pack /
   post / interior / per-face complete + boundary) is only correct when
   every ghost zone a stencil reads was refreshed after the last write
   to the sites it mirrors — and, for the nonblocking protocol, only
   after the face actually completed. This pass verifies a
   communication schedule statically — replaying write/ghost epochs and
   the in-flight message set over a Lattice.Domain without touching
   field data — and can also audit a live Vrank.Comm for the freshness
   property via its epoch counters. *)

module D = Lattice.Domain

type stencil = Full | Interior | Boundary

type op =
  | Scatter  (* distribute a global field: every rank's sites rewritten *)
  | Write of int list  (* local-site writes on these ranks ([] = all) *)
  | Exchange of int array option  (* blocking halo_exchange ?faces *)
  | Post of int array option  (* nonblocking pack + send (Comm.post) *)
  | Complete of int array option
      (* deliver posted recv faces (Comm.complete); None = all pending *)
  | Stencil of stencil  (* Full/Boundary read ghosts; Interior does not *)
  | Stencil_faces of int array
      (* boundary sub-stencil reading only these ghost faces — the
         fine-grained groups Dd_wilson runs between completions *)

let rules =
  [
    ("HALO001", "stencil reads a stale ghost zone");
    ("HALO002", "unmatched send/recv: a face exchanged without its opposite");
    ("HALO003", "ghost face not covered by the ?faces subset");
    ("HALO004", "face id outside 0..7");
    ("HALO005", "duplicate face id in an exchange");
    ("HALO006", "exchange before any write: refreshes zero-initialized data");
    ("HALO007", "stencil reads a ghost face still in flight (posted, not completed)");
    ("HALO008", "local write between post and complete: the in-flight send buffer races");
    ("HALO009", "posted face never completed");
    ("HALO010", "complete without a matching post");
    ("HALO011", "write under the zero-copy transport corrupts an in-flight payload");
    ("HALO012", "double-buffered transport pays copies no write ever needed");
    ("HALO013", "communication policy's transfer path mismatches the halo transport");
  ]

let face_name fid =
  let mu = fid / 2 and dir = fid mod 2 in
  Printf.sprintf "%c%c" "xyzt".[mu] (if dir = 0 then '+' else '-')

let faces_name fs =
  String.concat "," (Array.to_list (Array.map face_name fs))

let op_name = function
  | Scatter -> "scatter"
  | Write _ -> "write"
  | Exchange None -> "exchange(all)"
  | Exchange (Some fs) -> Printf.sprintf "exchange(%s)" (faces_name fs)
  | Post None -> "post(all)"
  | Post (Some fs) -> Printf.sprintf "post(%s)" (faces_name fs)
  | Complete None -> "complete(pending)"
  | Complete (Some fs) -> Printf.sprintf "complete(%s)" (faces_name fs)
  | Stencil Full -> "stencil(full)"
  | Stencil Interior -> "stencil(interior)"
  | Stencil Boundary -> "stencil(boundary)"
  | Stencil_faces fs -> Printf.sprintf "stencil(faces %s)" (faces_name fs)

let all_faces = [| 0; 1; 2; 3; 4; 5; 6; 7 |]

(* One in-flight message in the replay: who posted it and at which
   write epoch (the epoch of the data the staging buffer carries). *)
type in_flight = { src : int; epoch : int }

let verify_schedule ?(transport = Machine.Transport.Staged) ?policy dom
    (ops : op list) =
  let n = D.n_ranks dom in
  let ds = ref [] in
  let add d = ds := d :: !ds in
  (* HALO013: the transport must model the policy's transfer path
     honestly — staging under a zero-copy/GDR wire hides the real
     race, zero-copy under the staged-MPI wire invents one. *)
  (match policy with
  | Some pol when not (Machine.Policy.transport_ok pol transport) ->
    add
      (Diagnostic.error ~rule:"HALO013" ~loc:"schedule"
         (Printf.sprintf "policy %s modeled with the %s transport: %s"
            (Machine.Policy.name pol)
            (Machine.Transport.name transport)
            (match transport with
            | Machine.Transport.Staged ->
              "the zero-copy/GDR wire races for real; the staged model hides it"
            | Machine.Transport.Zero_copy | Machine.Transport.Double_buffered ->
              "the staged-MPI wire always copies; this model invents a race \
               the copy prevents"))
         ~hint:
           "pair zero-copy/GDR transfers with the zero-copy or \
            double-buffered transport, and staged-mpi with staged or \
            double-buffered")
  | _ -> ());
  let write_epoch = Array.make n 0 in
  let ghost_epoch = Array.init n (fun _ -> Array.make 8 (-1)) in
  let pending : in_flight option array array =
    Array.init n (fun _ -> Array.make 8 None)
  in
  let last_subset = ref None in  (* faces of the most recent delivery *)
  let filler rank face =
    (D.rank_geometry dom rank).D.faces.(face).D.neighbor
  in
  let fresh rank face =
    write_epoch.(filler rank face) = 0
    || ghost_epoch.(rank).(face) >= write_epoch.(filler rank face)
  in
  (* Validate a ?faces subset: ids in range, duplicates, and (for
     exchange/post subsets — not per-face completions or sub-stencils,
     where singletons are the point) unmatched send/recv pairs.
     Returns the in-range ids. *)
  let validate_subset ?(pairs = true) loc fs =
    let seen = Hashtbl.create 8 in
    Array.iter
      (fun f ->
        if f < 0 || f > 7 then
          add
            (Diagnostic.error ~rule:"HALO004" ~loc
               (Printf.sprintf "face id %d outside 0..7" f))
        else begin
          if Hashtbl.mem seen f then
            add
              (Diagnostic.warning ~rule:"HALO005" ~loc
                 (Printf.sprintf "face %s listed twice" (face_name f)))
          else Hashtbl.add seen f ();
          let opposite = (2 * (f / 2)) + (1 - (f mod 2)) in
          if pairs && not (Array.exists (( = ) opposite) fs) then
            add
              (Diagnostic.warning ~rule:"HALO002" ~loc
                 (Printf.sprintf "face %s exchanged without its opposite %s"
                    (face_name f) (face_name opposite))
                 ~hint:
                   "one direction's ghosts stay stale; exchange both faces \
                    of the dimension")
        end)
      fs;
    Array.of_list (List.filter (fun f -> f >= 0 && f <= 7) (Array.to_list fs))
  in
  (* Sender-side coordinate of the first racing site: the message
     landing in recv face [recv_fid] was packed from the opposite face
     of the sender — name its first send site in global coordinates so
     the diagnostic points at lattice data, not just a face id. *)
  let describe_site src recv_fid =
    let send_fid = (2 * (recv_fid / 2)) + (1 - (recv_fid mod 2)) in
    let rg = D.rank_geometry dom src in
    let face = rg.D.faces.(send_fid) in
    if Array.length face.D.send_sites = 0 then ""
    else
      let g = rg.D.local_to_global.(face.D.send_sites.(0)) in
      let c = Lattice.Geometry.coords (D.global dom) g in
      Printf.sprintf "; first racing site: rank %d face %s site %d = (%d,%d,%d,%d)"
        src (face_name send_fid) g c.(0) c.(1) c.(2) c.(3)
  in
  (* A write on [r] races every message r posted that is still in
     flight. What that means depends on the transport: staged ships
     the old data but the pattern is still wrong (HALO008); zero-copy
     ships the new data — the delivered ghosts are corrupt for real
     (HALO011); double-buffered is immune (counted, so HALO012 can
     tell a useful buffer from a wasted one). *)
  let protected_races = ref 0 in
  let check_send_buffer_race loc ranks =
    let count = ref 0 and first = ref None in
    for rank = 0 to n - 1 do
      for fid = 0 to 7 do
        match pending.(rank).(fid) with
        | Some m when List.mem m.src ranks ->
          incr count;
          if !first = None then first := Some (m.src, fid)
        | _ -> ()
      done
    done;
    if !count > 0 then begin
      let site =
        match !first with None -> "" | Some (src, fid) -> describe_site src fid
      in
      match transport with
      | Machine.Transport.Double_buffered ->
        protected_races := !protected_races + !count
      | Machine.Transport.Staged ->
        add
          (Diagnostic.error ~rule:"HALO008" ~loc
             (Printf.sprintf
                "%d in-flight message(s) posted by the written rank(s): the \
                 send buffer races with the write%s"
                !count site)
             ~hint:
               "complete the posted faces before writing local sites, or \
                double-buffer the sends")
      | Machine.Transport.Zero_copy ->
        add
          (Diagnostic.error ~rule:"HALO011" ~loc
             (Printf.sprintf
                "%d in-flight zero-copy payload(s) alias the written rank(s)' \
                 field: the delivered ghosts are corrupt%s"
                !count site)
             ~hint:
               "complete the posted faces before writing, or switch to the \
                double-buffered transport")
    end
  in
  let bump_writes loc ranks =
    check_send_buffer_race loc ranks;
    List.iter (fun r -> write_epoch.(r) <- write_epoch.(r) + 1) ranks
  in
  let all_ranks = List.init n Fun.id in
  (* Ghost-face reads shared by Full/Boundary stencils (all 8 faces)
     and fine-grained sub-stencils (a subset). In-flight faces get the
     crisper HALO007; otherwise the stale logic of HALO001/HALO003. *)
  let check_ghost_reads loc fids =
    Array.iter
      (fun fid ->
        let in_flight = ref 0 and stale = ref 0 in
        for r = 0 to n - 1 do
          if pending.(r).(fid) <> None then incr in_flight
          else if not (fresh r fid) then incr stale
        done;
        if !in_flight > 0 then
          add
            (Diagnostic.error ~rule:"HALO007"
               ~loc:(Printf.sprintf "%s face %s" loc (face_name fid))
               (Printf.sprintf
                  "ghost face read on %d/%d ranks while still in flight \
                   (posted, not completed)"
                  !in_flight n)
               ~hint:"complete the face before its boundary sub-stencil runs")
        else if !stale > 0 then
          let covered_by_last =
            match !last_subset with
            | Some fs -> List.mem fid fs
            | None -> false
          in
          if (not covered_by_last) && !last_subset <> None then
            add
              (Diagnostic.error ~rule:"HALO003"
                 ~loc:(Printf.sprintf "%s face %s" loc (face_name fid))
                 (Printf.sprintf
                    "stale ghost read on %d/%d ranks: face missing from the \
                     ?faces subset"
                    !stale n)
                 ~hint:"add the face to the subset or exchange all faces")
          else
            add
              (Diagnostic.error ~rule:"HALO001"
                 ~loc:(Printf.sprintf "%s face %s" loc (face_name fid))
                 (Printf.sprintf
                    "stale ghost read on %d/%d ranks: sites were written \
                     after the last exchange"
                    !stale n)
                 ~hint:"insert a halo exchange between the write and the read"))
      fids
  in
  (* Deliver ghost face [fid] on every rank where it is in flight;
     returns how many ranks had nothing pending. Stamps ghost_epoch
     with the posting epoch — completion time, posted data. *)
  let deliver fid =
    let missing = ref 0 in
    for r = 0 to n - 1 do
      match pending.(r).(fid) with
      | Some m ->
        ghost_epoch.(r).(fid) <- m.epoch;
        pending.(r).(fid) <- None
      | None -> incr missing
    done;
    !missing
  in
  let posted_msgs = ref 0 in
  let post_faces fids =
    Array.iter
      (fun fid ->
        for r = 0 to n - 1 do
          let face = (D.rank_geometry dom r).D.faces.(fid) in
          let nb = face.D.neighbor in
          let recv = (2 * face.D.mu) + (1 - face.D.dir) in
          pending.(nb).(recv) <- Some { src = r; epoch = write_epoch.(r) };
          incr posted_msgs
        done)
      fids
  in
  List.iteri
    (fun i op ->
      let loc = Printf.sprintf "op#%d %s" i (op_name op) in
      match op with
      | Scatter -> bump_writes loc all_ranks
      | Write [] -> bump_writes loc all_ranks
      | Write ranks ->
        let valid =
          List.filter
            (fun r ->
              if r < 0 || r >= n then begin
                add
                  (Diagnostic.error ~rule:"HALO004" ~loc
                     (Printf.sprintf "rank %d outside 0..%d" r (n - 1)));
                false
              end
              else true)
            ranks
        in
        bump_writes loc valid
      | Exchange faces ->
        let fids =
          match faces with None -> all_faces | Some fs -> validate_subset loc fs
        in
        if Array.for_all (( = ) 0) write_epoch then
          add
            (Diagnostic.info ~rule:"HALO006" ~loc
               "exchange before any scatter/write: ghosts refresh zero data");
        (* blocking = post + complete fused *)
        post_faces fids;
        let recv_fids =
          Array.map (fun f -> (2 * (f / 2)) + (1 - (f mod 2))) fids
        in
        Array.iter (fun fid -> ignore (deliver fid)) recv_fids;
        last_subset :=
          Some
            (match faces with
            | None -> Array.to_list all_faces
            | Some fs -> Array.to_list fs)
      | Post faces ->
        let fids =
          match faces with None -> all_faces | Some fs -> validate_subset loc fs
        in
        if Array.for_all (( = ) 0) write_epoch then
          add
            (Diagnostic.info ~rule:"HALO006" ~loc
               "post before any scatter/write: ghosts will refresh zero data");
        Array.iter
          (fun fid ->
            let recv = (2 * (fid / 2)) + (1 - (fid mod 2)) in
            if Array.exists (fun row -> row.(recv) <> None) pending then
              add
                (Diagnostic.warning ~rule:"HALO005" ~loc
                   (Printf.sprintf
                      "face %s re-posted while the previous post is in flight"
                      (face_name fid))))
          fids;
        post_faces fids;
        (* a new round began: completions accumulate from scratch *)
        last_subset := None
      | Complete faces ->
        let fids =
          match faces with
          | Some fs -> validate_subset ~pairs:false loc fs
          | None ->
            (* every face any rank still has in flight *)
            Array.of_list
              (List.filter
                 (fun fid ->
                   Array.exists (fun row -> row.(fid) <> None) pending)
                 (Array.to_list all_faces))
        in
        Array.iter
          (fun fid ->
            let missing = deliver fid in
            if missing = n && faces <> None then
              add
                (Diagnostic.warning ~rule:"HALO010"
                   ~loc:(Printf.sprintf "%s face %s" loc (face_name fid))
                   "complete of a face that was never posted"
                   ~hint:"post the face first, or drop the completion"))
          fids;
        if Array.length fids > 0 then
          last_subset :=
            (match !last_subset with
            | Some prev when faces <> None ->
              (* accumulate per-face completions of one post *)
              Some
                (List.sort_uniq compare (prev @ Array.to_list fids))
            | _ -> Some (Array.to_list fids))
      | Stencil Interior -> ()  (* interior sites never touch ghosts *)
      | Stencil (Full | Boundary) -> check_ghost_reads loc all_faces
      | Stencil_faces fs ->
        check_ghost_reads loc (validate_subset ~pairs:false loc fs))
    ops;
  (* a message still in flight at the end of the schedule was lost:
     its receiver's ghosts never got the posted data *)
  Array.iter
    (fun fid ->
      let lost = ref 0 in
      for r = 0 to n - 1 do
        if pending.(r).(fid) <> None then incr lost
      done;
      if !lost > 0 then
        add
          (Diagnostic.error ~rule:"HALO009"
             ~loc:(Printf.sprintf "end of schedule, face %s" (face_name fid))
             (Printf.sprintf "posted face never completed on %d/%d ranks" !lost n)
             ~hint:"complete every posted face (or don't post it)"))
    all_faces;
  (* HALO012: the double buffer earns its extra copy only if some
     write actually raced a post somewhere in the schedule. A schedule
     that never writes between post and complete paid every rotation
     copy for nothing — the staged transport is strictly cheaper. *)
  if
    transport = Machine.Transport.Double_buffered
    && !posted_msgs > 0
    && !protected_races = 0
  then
    add
      (Diagnostic.warning ~rule:"HALO012" ~loc:"end of schedule"
         (Printf.sprintf
            "double-buffered transport paid %d rotation cop%s but no write \
             ever raced a post"
            !posted_msgs
            (if !posted_msgs = 1 then "y" else "ies"))
         ~hint:
           "this schedule is already write-after-post free: the staged \
            transport delivers the same data without the extra copy");
  Diagnostic.sort (List.rev !ds)

(* Runtime audit of a live Comm: flag every currently-stale ghost face
   (same freshness rule, read from the epoch counters the instrumented
   Comm maintains), plus any zero-copy corruption its checksum witness
   already caught. *)
let audit (c : Vrank.Comm.t) =
  let n = Vrank.Comm.n_ranks c in
  let ds = ref [] in
  let corruptions = (Vrank.Comm.stats c).Vrank.Comm.corruptions in
  if corruptions > 0 then
    ds :=
      Diagnostic.error ~rule:"HALO011" ~loc:"comm stats"
        (Printf.sprintf
           "%d zero-copy payload(s) changed between post and delivery: the \
            received ghosts are corrupt"
           corruptions)
        ~hint:"complete in-flight faces before writing local sites"
      :: !ds;
  for fid = 0 to 7 do
    let stale = ref 0 in
    for r = 0 to n - 1 do
      if not (Vrank.Comm.ghost_fresh c ~rank:r ~face:fid) then incr stale
    done;
    if !stale > 0 then
      ds :=
        Diagnostic.error ~rule:"HALO001"
          ~loc:(Printf.sprintf "comm face %s" (face_name fid))
          (Printf.sprintf "ghosts stale on %d/%d ranks" !stale n)
          ~hint:"a halo exchange is required before the next ghost read"
        :: !ds
  done;
  Diagnostic.sort (List.rev !ds)
