(** Seeded defect fixtures — one artifact per pass, each carrying
    exactly the bug class that pass detects. The CLI [--selftest] and
    the test suite assert every fixture yields at least one error. *)

type t = {
  name : string;
  defect : string;
  expect : string;  (** rule id expected to fire *)
  run : unit -> Diagnostic.t list;
}

val dag_cycle : unit -> Diagnostic.t list
val oversubscribed : unit -> Diagnostic.t list
val stale_ghost : unit -> Diagnostic.t list
val early_boundary_read : unit -> Diagnostic.t list
val send_buffer_race : unit -> Diagnostic.t list
val lost_completion : unit -> Diagnostic.t list
val nan_solve : unit -> Diagnostic.t list
val bad_half_block : unit -> Diagnostic.t list
val fused_wrong_block : unit -> Diagnostic.t list
val fused_aliased_output : unit -> Diagnostic.t list
val fused_tail_aliased : unit -> Diagnostic.t list
val fused_untuned_geometry : unit -> Diagnostic.t list
val plan_partition_overlap : unit -> Diagnostic.t list
val plan_aliased_output : unit -> Diagnostic.t list
val plan_tail_aliased : unit -> Diagnostic.t list
val plan_zero_copy_write : unit -> Diagnostic.t list
val plan_sweep_mismatch : unit -> Diagnostic.t list
val plan_half_range : unit -> Diagnostic.t list
val plan_stale_precision : unit -> Diagnostic.t list
val recon_nonunitary_link : unit -> Diagnostic.t list
val recon_tuned_mismatch : unit -> Diagnostic.t list
val recon_stale_halo : unit -> Diagnostic.t list
val deflate_stale_space : unit -> Diagnostic.t list
val deflate_drifted_basis : unit -> Diagnostic.t list
val deflate_rank_mismatch : unit -> Diagnostic.t list

val all : t list
val find : string -> t option
