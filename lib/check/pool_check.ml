(* Determinism checker for the multicore kernel engine (Util.Pool).
   A pooled kernel launch is summarized as a [plan] — kernel name,
   element count, (domains, chunk) geometry, the chunk partition it
   will execute, and how it combines reduction partials — and the pass
   verifies the properties the engine's bit-stability contract rests
   on:

   DET001  a reduction combined in completion order on a multi-domain
           launch: the result depends on scheduling, so repeated runs
           of norm2/cdot disagree in the last bits (the defect class
           Pool.parallel_reduce ~ordered:false exists to seed)
   DET002  a chunk partition that overlaps or leaves a gap: overlap
           means racing writes to the same elements, a gap means
           silently unprocessed elements
   DET003  a pooled launch under the parallel cutoff (warning): the
           fork/join costs more than the parallelism recovers — the
           tuner should have picked the serial variant *)

type reduction = Ordered | Completion_order

type plan = {
  kernel : string;
  n : int;  (* elements the launch must cover *)
  domains : int;
  chunk : int;
  partition : (int * int) array;  (* [lo, hi) ranges, launch order *)
  reduction : reduction option;  (* None for map-only kernels *)
}

let rules =
  [
    ("DET001", "reduction partials combined in nondeterministic (completion) order");
    ("DET002", "chunk partition overlaps or leaves a gap in [0, n)");
    ("DET003", "pooled launch below the parallel cutoff (wasted fork/join)");
  ]

(* The honest constructor: the partition is what Pool.parallel_for
   will actually execute for this (n, chunk). Hand-built partitions
   (the DET002 fixture, or a future custom scheduler) go through the
   record directly. *)
let plan ?reduction ~kernel ~n ~domains ~chunk () =
  {
    kernel;
    n;
    domains;
    chunk;
    partition = Util.Pool.chunks ~n ~chunk;
    reduction;
  }

let loc p = Printf.sprintf "%s[n=%d,d=%d,c=%d]" p.kernel p.n p.domains p.chunk

let check_reduction p =
  match p.reduction with
  | Some Completion_order when p.domains > 1 ->
    [
      Diagnostic.error ~rule:"DET001" ~loc:(loc p)
        ~hint:
          "use Pool.parallel_reduce ~ordered:true (the default): partials land \
           in chunk-index slots and combine on the calling domain"
        "reduction partials combined in completion order: the result depends \
         on worker scheduling and is not bit-stable run to run";
    ]
  | _ -> []

(* The partition must tile [0, n) exactly: sorted by lo, each range
   nonempty and in bounds, consecutive ranges meeting with neither
   overlap (racing writes) nor gap (unprocessed elements). *)
let check_partition p =
  let ds = ref [] in
  let err msg =
    ds :=
      Diagnostic.error ~rule:"DET002" ~loc:(loc p)
        ~hint:"derive the partition with Pool.chunks ~n ~chunk" msg
      :: !ds
  in
  let parts = Array.copy p.partition in
  Array.sort (fun (a, _) (b, _) -> compare a b) parts;
  let expected = ref 0 in
  Array.iter
    (fun (plo, phi) ->
      if plo < 0 || phi > p.n then
        err (Printf.sprintf "range [%d,%d) falls outside [0,%d)" plo phi p.n)
      else if phi <= plo then
        err (Printf.sprintf "empty or inverted range [%d,%d)" plo phi)
      else if plo < !expected then
        err
          (Printf.sprintf "range [%d,%d) overlaps the previous range ending at %d"
             plo phi !expected)
      else if plo > !expected then
        err
          (Printf.sprintf "gap: elements [%d,%d) are covered by no chunk" !expected
             plo);
      expected := max !expected phi)
    parts;
  if p.n > 0 && !expected < p.n then
    err (Printf.sprintf "gap: elements [%d,%d) are covered by no chunk" !expected p.n);
  List.rev !ds

let check_cutoff p =
  if p.domains > 1 && p.n < Linalg.Field.parallel_cutoff then
    [
      Diagnostic.warning ~rule:"DET003" ~loc:(loc p)
        ~hint:
          (Printf.sprintf
             "below %d elements the serial variant wins; let the tuner pick it"
             Linalg.Field.parallel_cutoff)
        (Printf.sprintf
           "pooled launch of %d elements is under the parallel cutoff: the \
            fork/join overhead exceeds the recovered parallelism"
           p.n);
    ]
  else []

let verify_plan p = check_reduction p @ check_partition p @ check_cutoff p

let verify_plans ps = List.concat_map verify_plan ps
