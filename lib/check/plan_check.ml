(* Static analyses over the plan IR: every rule here fires from the
   plan alone, before a single kernel runs. Three pass families:

   - PLAN001/002/006: effect and aliasing — pooled partitions must
     tile [0, n) disjointly, a kernel's outputs must never alias its
     inputs (the static counterpart of FUSE002's runtime probe), every
     step must reference declared buffers.

   - PLAN003/004: transport windows — no write into a buffer whose
     halo post window is open (under zero-copy the payload aliases the
     field in flight: the static counterpart of HALO011/DET002), and
     the post/complete protocol must balance.

   - PLAN005: model consistency — the IR's BLAS-1 sweep total must
     equal what Machine.Perf_model prices, exactly. The old
     stencil-tail exemption (model 2 fused sweeps, host executed 3) is
     gone: Wilson.hop_tail / Mobius.apply_schur_normal_tail ride the
     p·Ap reduction on the stencil's closing sweep, so any nonzero gap
     (sweep_gap below) is a live regression and errors.

   - PREC001-004: precision flow — an abstract interpretation over a
     magnitude-interval x quantization-error state per buffer,
     propagated through launches and quantize points, flagging
     half-codec overflow/underflow/dynamic-range violations and
     stale-precision reads. *)

open Plan_ir
module D = Diagnostic

let rules =
  [
    ("PLAN001", "pooled partition must tile [0, n) disjointly");
    ("PLAN002", "kernel output must not alias another operand");
    ("PLAN003", "no write into a buffer with an open halo post window");
    ("PLAN004", "halo post/complete windows must balance");
    ("PLAN005", "IR BLAS-1 sweeps must match the performance model");
    ("PLAN006", "steps must reference declared buffers");
    ("PREC001", "half-codec dynamic range must fit the int16 mantissa");
    ("PREC002", "half-codec block norm must not underflow float32");
    ("PREC003", "no kernel may mix stale and quantized half operands");
    ("PREC004", "quantize points must agree with declared half blocks");
  ]

(* Mirrors of Numeric_check's private codec bounds (the dynamic NUM004
   / NUM005 thresholds), applied here to abstract intervals. *)
let float32_max = 3.4028234e38
let float32_min_normal = 1.1754944e-38

let loc_of_step p i =
  match List.nth p.steps i with
  | Launch k -> Printf.sprintf "%s step %d (launch %s)" p.pname i k.kname
  | Post { pbuf; _ } -> Printf.sprintf "%s step %d (post %s)" p.pname i pbuf
  | Complete { cbuf; _ } ->
    Printf.sprintf "%s step %d (complete %s)" p.pname i cbuf
  | Quantize { qbuf; _ } ->
    Printf.sprintf "%s step %d (quantize %s)" p.pname i qbuf

(* ---- PLAN006: declared buffers ---- *)

let check_declared p =
  let declared name = Option.is_some (find_buffer p name) in
  (* reduction scalars are not vector buffers; they need no declaration *)
  let step_refs = function
    | Launch k ->
      List.filter_map
        (fun (name, role) -> if role = Reduce then None else Some name)
        k.args
    | Post { pbuf; _ } -> [ pbuf ]
    | Complete { cbuf; _ } -> [ cbuf ]
    | Quantize { qbuf; _ } -> [ qbuf ]
  in
  List.concat
    (List.mapi
       (fun i step ->
         List.filter_map
           (fun name ->
             if declared name then None
             else
               Some
                 (D.error ~rule:"PLAN006" ~loc:(loc_of_step p i)
                    (Printf.sprintf "references undeclared buffer %s" name)
                    ~hint:"declare the buffer in the plan header"))
           (step_refs step))
       p.steps)

(* ---- PLAN001: partition geometry ---- *)

let effective_partition p k =
  match k.partition with
  | Some parts -> Some (Array.to_list parts)
  | None -> (
    match k.geometry with
    | None -> None
    | Some (_, chunk) ->
      if chunk <= 0 then Some [ (0, chunk) ] (* degenerate; flagged below *)
      else Some (Array.to_list (Util.Pool.chunks ~n:p.n ~chunk)))

let check_partitions p =
  List.concat
    (List.mapi
       (fun i step ->
         match step with
         | Launch k -> (
           match effective_partition p k with
           | None -> []
           | Some parts ->
             let loc = loc_of_step p i in
             let bad =
               List.filter_map
                 (fun (lo, hi) ->
                   if lo < 0 || hi <= lo || hi > p.n then
                     Some
                       (D.error ~rule:"PLAN001" ~loc
                          (Printf.sprintf
                             "chunk [%d, %d) is not a valid slice of [0, %d)"
                             lo hi p.n)
                          ~hint:"chunk bounds must satisfy 0 <= lo < hi <= n")
                   else None)
                 parts
             in
             if bad <> [] then bad
             else begin
               let sorted =
                 List.sort (fun (a, _) (b, _) -> compare a b) parts
               in
               let rec tile pos = function
                 | [] ->
                   if pos = p.n then []
                   else
                     [
                       D.error ~rule:"PLAN001" ~loc
                         (Printf.sprintf
                            "partition leaves [%d, %d) uncovered" pos p.n)
                         ~hint:"chunks must tile the full index range";
                     ]
                 | (lo, hi) :: rest ->
                   if lo < pos then
                     [
                       D.error ~rule:"PLAN001" ~loc
                         (Printf.sprintf
                            "chunk [%d, %d) overlaps the previous chunk \
                             ending at %d"
                            lo hi pos)
                         ~hint:
                           "two pool domains would race on the overlap: \
                            make the chunks disjoint";
                     ]
                   else if lo > pos then
                     [
                       D.error ~rule:"PLAN001" ~loc
                         (Printf.sprintf "partition leaves [%d, %d) uncovered"
                            pos lo)
                         ~hint:"chunks must tile the full index range";
                     ]
                   else tile hi rest
               in
               tile 0 sorted
             end)
         | _ -> [])
       p.steps)

(* ---- PLAN002: output aliasing ---- *)

let writes role = role = Write || role = Update

let check_aliasing p =
  List.concat
    (List.mapi
       (fun i step ->
         match step with
         | Launch k ->
           let loc = loc_of_step p i in
           let names = List.sort_uniq compare (List.map fst k.args) in
           List.filter_map
             (fun name ->
               let roles =
                 List.filter_map
                   (fun (a, r) -> if a = name then Some r else None)
                   k.args
               in
               if List.length roles > 1 && List.exists writes roles then
                 Some
                   (D.error ~rule:"PLAN002" ~loc
                      (Printf.sprintf
                         "buffer %s appears as both an output and another \
                          operand"
                         name)
                      ~hint:
                        "an in-place alias makes the fused result depend on \
                         evaluation order (FUSE002's static counterpart)")
               else None)
             names
         | _ -> [])
       p.steps)

(* ---- PLAN003/PLAN004: transport windows ---- *)

let check_windows p =
  let open_faces : (string, int list) Hashtbl.t = Hashtbl.create 7 in
  let faces_of buf =
    Option.value ~default:[] (Hashtbl.find_opt open_faces buf)
  in
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let write_in_window ~what i buf =
    if faces_of buf <> [] then begin
      let loc = loc_of_step p i in
      match p.transport with
      | Machine.Transport.Zero_copy ->
        add
          (D.error ~rule:"PLAN003" ~loc
             (Printf.sprintf
                "%s writes %s while its zero-copy post window is open" what
                buf)
             ~hint:
               "the transport aliases the payload in flight: the neighbour \
                reads torn data (HALO011/DET002 at plan level)")
      | Machine.Transport.Staged ->
        add
          (D.warning ~rule:"PLAN003" ~loc
             (Printf.sprintf "%s writes %s while its post window is open" what
                buf)
             ~hint:
               "safe only because the staged transport copies at post time; \
                the same plan breaks under zero-copy")
      | Machine.Transport.Double_buffered -> ()
    end
  in
  List.iteri
    (fun i step ->
      match step with
      | Post { pbuf; faces } ->
        let cur = faces_of pbuf in
        let dup = List.filter (fun f -> List.mem f cur) (Array.to_list faces) in
        if dup <> [] then
          add
            (D.warning ~rule:"PLAN004" ~loc:(loc_of_step p i)
               (Printf.sprintf "face %d of %s is posted twice"
                  (List.hd dup) pbuf)
               ~hint:"a double post leaks a request handle");
        Hashtbl.replace open_faces pbuf
          (List.sort_uniq compare (cur @ Array.to_list faces))
      | Complete { cbuf; faces } ->
        let cur = faces_of cbuf in
        let missing =
          List.filter (fun f -> not (List.mem f cur)) (Array.to_list faces)
        in
        if missing <> [] then
          add
            (D.error ~rule:"PLAN004" ~loc:(loc_of_step p i)
               (Printf.sprintf "face %d of %s completed without a post"
                  (List.hd missing) cbuf)
               ~hint:"completion would block forever or poll garbage");
        Hashtbl.replace open_faces cbuf
          (List.filter (fun f -> not (Array.exists (( = ) f) faces)) cur)
      | Launch k ->
        List.iter
          (fun (name, role) ->
            if writes role then
              write_in_window ~what:("kernel " ^ k.kname) i name)
          k.args
      | Quantize { qbuf; _ } -> write_in_window ~what:"quantize" i qbuf)
    p.steps;
  let leftovers =
    Hashtbl.fold
      (fun buf faces acc -> if faces <> [] then (buf, faces) :: acc else acc)
      open_faces []
  in
  List.iter
    (fun (buf, faces) ->
      add
        (D.error ~rule:"PLAN004" ~loc:p.pname
           (Printf.sprintf "%d face window(s) of %s never completed"
              (List.length faces) buf)
           ~hint:"every post needs a matching complete before the plan ends"))
    (List.sort compare leftovers);
  List.rev !ds

(* ---- PLAN005: sweep consistency against the performance model ---- *)

(* Derived, not hardcoded: IR sweep total minus the model's price for
   the plan's declared fusion mode. None when the plan is not
   model-priced. The stencil-tail fusion closed the one historically
   whitelisted gap, so the check below errors on ANY nonzero value —
   and neutron_check --plan fails the run on it too. *)
let sweep_gap p =
  match p.fusion with
  | None -> None
  | Some fused ->
    let ir =
      List.fold_left
        (fun acc -> function Launch k -> acc + k.sweeps | _ -> acc)
        0 p.steps
    in
    let model = int_of_float (Machine.Perf_model.blas1_sweeps ~fused) in
    Some (ir - model)

let check_sweeps p =
  match (p.fusion, sweep_gap p) with
  | None, _ | _, None | _, Some 0 -> []
  | Some fused, Some gap ->
    let model = int_of_float (Machine.Perf_model.blas1_sweeps ~fused) in
    [
      D.error ~rule:"PLAN005" ~loc:p.pname
        (Printf.sprintf
           "IR executes %d full-vector sweeps but the model prices %d (%s)"
           (model + gap) model
           (if fused then "fused" else "unfused"))
        ~hint:
          "the autotuner would mis-rank this plan: align the kernel sweeps \
           with Perf_model.blas1_sweeps (fused p·Ap must ride the stencil \
           tail, not run as a separate dot_re)";
    ]

(* ---- PREC001-004: precision flow ---- *)

type absval = {
  lo : float;  (* smallest nonzero magnitude bound *)
  hi : float;  (* largest magnitude bound *)
  err : float; (* accumulated quantization error bound *)
}

type bufstate = { interval : absval option; dirty : bool }

let check_precision p =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let state : (string, bufstate) Hashtbl.t = Hashtbl.create 7 in
  List.iter
    (fun b ->
      Hashtbl.replace state b.bname
        {
          interval =
            Option.map (fun (lo, hi) -> { lo; hi; err = 0. }) b.range;
          dirty = false;
        })
    p.buffers;
  let get name =
    Option.value ~default:{ interval = None; dirty = false }
      (Hashtbl.find_opt state name)
  in
  let is_half name =
    match find_buffer p name with
    | Some { prec = Half _; _ } -> true
    | _ -> false
  in
  List.iteri
    (fun i step ->
      match step with
      | Launch k ->
        let loc = loc_of_step p i in
        let reads =
          List.filter (fun (_, r) -> r = Read || r = Update) k.args
        in
        (* PREC003: a kernel mixing a half buffer that missed its codec
           pass with freshly quantized half data breaks the inner
           recurrence's invariant (all operands through the codec). A
           launch touching only unquantized data is a legal exact
           phase — the reliable update. *)
        let half_reads = List.filter (fun (name, _) -> is_half name) reads in
        let stale = List.filter (fun (name, _) -> (get name).dirty) half_reads
        and fresh =
          List.filter (fun (name, _) -> not (get name).dirty) half_reads
        in
        if stale <> [] && fresh <> [] then
          add
            (D.error ~rule:"PREC003" ~loc
               (Printf.sprintf
                  "half buffer %s is read past its quantize point alongside \
                   quantized operand %s"
                  (fst (List.hd stale))
                  (fst (List.hd fresh)))
               ~hint:
                 "insert the missing quantize before the kernel (the inner \
                  recurrence assumes every operand went through the codec)");
        (* interval propagation: outputs get a no-cancellation
           magnitude bound from the inputs they consume *)
        let in_ivs =
          List.filter_map (fun (name, _) -> (get name).interval)
            (List.filter (fun (_, r) -> r = Read) k.args)
        in
        let combined =
          match in_ivs with
          | [] -> None
          | _ ->
            Some
              {
                lo = List.fold_left (fun a v -> min a v.lo) infinity in_ivs;
                hi =
                  abs_float k.coeff
                  *. List.fold_left (fun a v -> a +. v.hi) 0. in_ivs;
                err = List.fold_left (fun a v -> max a v.err) 0. in_ivs;
              }
        in
        List.iter
          (fun (name, role) ->
            if writes role then begin
              let prev = get name in
              let interval =
                match (role, prev.interval, combined) with
                | Write, _, c -> c
                | Update, Some old, Some c ->
                  Some
                    {
                      lo = min old.lo c.lo;
                      hi = old.hi +. c.hi;
                      err = max old.err c.err;
                    }
                | Update, _, _ -> None
                | (Read | Reduce), _, _ -> assert false
              in
              Hashtbl.replace state name
                { interval; dirty = prev.dirty || is_half name }
            end)
          k.args
      | Quantize { qbuf; qblock } ->
        let loc = loc_of_step p i in
        (match find_buffer p qbuf with
        | None -> () (* PLAN006 already fired *)
        | Some { prec = Double | Single; _ } ->
          add
            (D.error ~rule:"PREC004" ~loc
               (Printf.sprintf "%s is not declared half-precision" qbuf)
               ~hint:"quantize points only apply to half-codec buffers")
        | Some { prec = Su3 codec; _ } ->
          add
            (D.error ~rule:"PREC004" ~loc
               (Printf.sprintf
                  "%s is a compressed gauge-link store (su3:%s), not a \
                   half-codec buffer"
                  qbuf
                  (Linalg.Su3_codec.name codec))
               ~hint:
                 "recon streams are reconstructed in registers, never \
                  quantized — drop the quantize point or retag the buffer")
        | Some { prec = Half declared; _ } ->
          if qblock <> declared then
            add
              (D.error ~rule:"PREC004" ~loc
                 (Printf.sprintf
                    "quantize block %d disagrees with %s's declared block %d"
                    qblock qbuf declared)
                 ~hint:"decode would use the wrong norm stride")
          else if qblock <= 0 || p.n mod qblock <> 0 then
            add
              (D.error ~rule:"PREC004" ~loc
                 (Printf.sprintf "block %d does not divide the plan length %d"
                    qblock p.n)
                 ~hint:"choose a block that tiles the field (24 = one site)"));
        let prev = get qbuf in
        (match prev.interval with
        | Some { lo; hi; _ } when hi > 0. ->
          if hi > float32_max then
            add
              (D.error ~rule:"PREC001" ~loc
                 (Printf.sprintf
                    "magnitude bound %g overflows the float32 block norm" hi)
                 ~hint:"rescale before quantizing (NUM004 at plan level)")
          else if hi < float32_min_normal *. 10. then
            add
              (D.error ~rule:"PREC002" ~loc
                 (Printf.sprintf
                    "magnitude bound %g underflows the float32 block norm: \
                     blocks decode to zeros"
                    hi)
                 ~hint:"rescale before quantizing (NUM005 at plan level)")
          else if lo > 0. && hi /. lo > 2. *. Linalg.Field.Half.max_q then
            add
              (D.error ~rule:"PREC001" ~loc
                 (Printf.sprintf
                    "dynamic range %g exceeds the int16 mantissa (%g): \
                     values near %g quantize to zero in a block whose norm \
                     is %g"
                    (hi /. lo)
                    (2. *. Linalg.Field.Half.max_q)
                    lo hi)
                 ~hint:
                   "assumes no cancellation: if the range is real, shrink \
                    the block or keep this buffer in single precision")
        | _ -> ());
        let interval =
          Option.map
            (fun v ->
              { v with err = v.hi /. (2. *. Linalg.Field.Half.max_q) })
            prev.interval
        in
        Hashtbl.replace state qbuf { interval; dirty = false }
      | Post _ | Complete _ -> ())
    p.steps;
  List.rev !ds

let verify p =
  D.sort
    (check_declared p @ check_partitions p @ check_aliasing p
   @ check_windows p @ check_sweeps p @ check_precision p)

let verify_plans plans =
  List.concat_map (fun p -> verify p) plans

(* Lint one fusion-axis candidate (the CG vector tail under a
   mode/geometry choice) and keep only the errors — stylistic warnings
   must not reject a legitimate plan. The three modes map to three
   extracted tails: Unfused = the 5-sweep classic tail, Tail_fused =
   the 2-sweep model-priced tail (PLAN005 strict), Fused = the 3-sweep
   separate-dot fallback (not model-priced; PLAN001/002 still vet the
   fused kernels). Autotune.Variants.tune_fusion runs this over its
   candidate space BEFORE Tuner.tune prices and caches a winner, so a
   plan the analyzer rejects can never be cached. (The dependency
   points this way — autotune cannot link check without a cycle
   through core, so the tuner takes the linter as a callback.) *)
let lint_fusion ~n ~(mode : Linalg.Fused.mode) ~geometry =
  let plan =
    match mode with
    | Linalg.Fused.Unfused -> Plan_extract.cg_tail ~n ?geometry ~fused:false ()
    | Linalg.Fused.Tail_fused -> Plan_extract.cg_tail ~n ?geometry ~fused:true ()
    | Linalg.Fused.Fused -> Plan_extract.cg_tail_separate ~n ?geometry ()
  in
  List.filter D.is_error (verify plan)

(* The standard-suite pass: every catalog plan must verify. Since the
   stencil-tail fusion closed the PLAN005 gap, a clean catalog means
   zero diagnostics — the fused CG plans no longer carry a documented
   warning. *)
let catalog_diagnostics () =
  verify_plans (List.map (fun (_, build) -> build ()) Plan_extract.catalog)
