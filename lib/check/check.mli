(** Umbrella entry point of the static verification & sanitizer
    subsystem: per-artifact passes ([Dag_check], [Halo_check],
    [Numeric_check], [Spec_check]), the standard suite over the
    repo's shipped example artifacts, and the seeded-defect selftest.
    Driven by [bin/neutron_check] and the [@check] dune alias. *)

module Diagnostic : module type of Diagnostic
module Dag_check : module type of Dag_check
module Halo_check : module type of Halo_check
module Numeric_check : module type of Numeric_check
module Spec_check : module type of Spec_check
module Pool_check : module type of Pool_check
module Fuse_check : module type of Fuse_check
module Mrhs_check : module type of Mrhs_check
module Recon_check : module type of Recon_check
module Deflate_check : module type of Deflate_check
module Plan_ir : module type of Plan_ir
module Plan_extract : module type of Plan_extract
module Plan_check : module type of Plan_check
module Fixtures : module type of Fixtures

val campaign : ?n_nodes:int -> Jobman.Pipeline.task list -> Diagnostic.t list
val halo_schedule :
  ?transport:Machine.Transport.t ->
  ?policy:Machine.Policy.t ->
  Lattice.Domain.t ->
  Halo_check.op list ->
  Diagnostic.t list
val halo_audit : Vrank.Comm.t -> Diagnostic.t list
val field_finite : what:string -> Linalg.Field.t -> Diagnostic.t list
val half_blocks : block:int -> Linalg.Field.t -> Diagnostic.t list

val probe_mixed_solve :
  ?config:Solver.Mixed.config ->
  apply:(Linalg.Field.t -> Linalg.Field.t -> unit) ->
  b:Linalg.Field.t ->
  unit ->
  Diagnostic.t list

val workflow_spec : Core.Workflow.spec -> Diagnostic.t list
val mixed_config : n:int -> Solver.Mixed.config -> Diagnostic.t list
val pool_plan : Pool_check.plan -> Diagnostic.t list
val fused_plan : Fuse_check.plan -> Diagnostic.t list
val mrhs_plan : Mrhs_check.plan -> Diagnostic.t list
val recon_plan : Recon_check.plan -> Diagnostic.t list

val recon_gauge :
  recon:Linalg.Su3_codec.codec -> Lattice.Gauge.t -> Diagnostic.t list
(** Direct RECON001 audit ({!Recon_check.verify_gauge}). *)

val deflate_plan : Deflate_check.plan -> Diagnostic.t list

val deflate_space :
  ?tuned_rank:int ->
  ?kernel:string ->
  config_hash:int ->
  apply:(Linalg.Field.t -> Linalg.Field.t -> unit) ->
  Solver.Deflate.t ->
  Diagnostic.t list
(** Live DEF001–003 audit of a real deflation space
    ({!Deflate_check.verify_space}). *)

val solver_plan : Plan_ir.plan -> Diagnostic.t list
(** The full static analyzer ({!Plan_check.verify}) over one plan. *)

val all_rules : (string * (string * string) list) list
(** Pass name → its rule catalog. *)

val standard_suite : ?seed:int -> unit -> Diagnostic.report
(** Verify the shipped example artifacts: the co-scheduling campaign,
    the simple and overlapped halo schedules, a live Comm audit, the
    default workflow specs (double and mixed), an instrumented clean
    mixed solve, the pool launch plans, the fused BLAS-1 kernel
    plans the [~fused] solvers run, the compressed gauge-link (recon)
    audits and launches, a live low-mode deflation space audited
    against its operator and configuration hash, and every plan in
    {!Plan_extract.catalog} through the static analyzer. Must report
    zero errors (the fused CG plans carry the documented PLAN005
    stencil-tail warning). *)

val selftest : unit -> (Fixtures.t * string list * bool) list
(** Run every seeded defect fixture; each row is (fixture, error and
    warning rule ids fired, expected rule detected?). Warnings count
    because some defect classes (wasted double-buffer copies, HALO012)
    are warnings by design. *)
