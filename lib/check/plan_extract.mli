(** Extraction of {!Plan_ir.plan}s from the real front-ends.

    Each builder mirrors the step sequence its front-end executes,
    with the kernel rows taken from the front-ends' own exports
    ([Solver.Cg.tail_kernels], [Solver.Mixed.inner_quantizes] /
    [reliable_update_kernels], [Solver.Bicgstab.tail_kernels],
    [Linalg.Fused.operand_roles]) so the IR cannot silently drift from
    the code. Stencil launches carry [sweeps = 0]: the performance
    model prices their traffic per site, not as BLAS-1 sweeps. *)

val cg_tail :
  ?n:int -> ?geometry:int * int -> fused:bool -> unit -> Plan_ir.plan
(** The BLAS-1 tail of one CG iteration on buffers p/ap/x/r — what
    [Autotune.Variants.tune_fusion] candidates execute and what the
    PLAN005 sweep cross-check diffs against
    [Machine.Perf_model.blas1_sweeps]. *)

val cg_iteration :
  ?n:int -> ?geometry:int * int -> fused:bool -> unit -> Plan_ir.plan
(** Full CG iteration: Schur-normal stencil followed by the tail. *)

val mixed :
  ?n:int ->
  ?range:float * float ->
  ?block:int ->
  fused:bool ->
  unit ->
  Plan_ir.plan
(** Double-half solve with reliable updates: outer residual init,
    inner-cycle seed, one inner iteration with quantize points exactly
    where [Solver.Mixed.solve] places them, one reliable update (an
    exact phase — deliberately unquantized). [range] is the abstract
    magnitude interval of the source at entry, the seed of the
    precision-flow pass. *)

val bicgstab_iteration : ?n:int -> fused:bool -> unit -> Plan_ir.plan
(** One full BiCGStab iteration, both stabilizer halves, stencil
    applies inserted where [Solver.Bicgstab.solve] runs them. *)

val dwf :
  ?n:int -> ?mixed_precision:bool -> fused:bool -> unit -> Plan_ir.plan
(** Domain-wall solve as the Schur composition [Solver.Dwf_solve]
    executes: split, prepare RHS, Schur-dagger, inner solve (plain CG
    or mixed), reconstruct even sites, merge. *)

val wilson_hop : ?sites:int -> ?geometry:int * int -> unit -> Plan_ir.plan
val mobius_hop : ?l5:int -> unit -> Plan_ir.plan
(** Pooled stencil launches; [mobius_hop] parallelizes over s-slices
    ([n] counts slices, one chunk per slice). *)

val pooled_axpy : ?n:int -> ?geometry:int * int -> unit -> Plan_ir.plan

val dd_overlapped : ?transport:Machine.Transport.t -> unit -> Plan_ir.plan
(** The fine-grained overlapped hop: post all faces, interior stencil
    while in flight, per-face-group completes each followed by the
    boundary sub-stencil reading only landed faces. *)

val dd_zero_copy : unit -> Plan_ir.plan
(** Zero-copy discipline: window closes before the boundary pass and
    the posted buffer is never written while in flight. *)

val catalog : (string * (unit -> Plan_ir.plan)) list
(** Every named plan the analyzer knows how to extract, as exposed by
    [neutron_check --plan]. *)

val find : string -> (unit -> Plan_ir.plan) option
