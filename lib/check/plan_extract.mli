(** Extraction of {!Plan_ir.plan}s from the real front-ends.

    Each builder mirrors the step sequence its front-end executes,
    with the kernel rows taken from the front-ends' own exports
    ([Solver.Cg.tail_kernels], [Solver.Mixed.inner_quantizes] /
    [reliable_update_kernels], [Solver.Bicgstab.tail_kernels],
    [Linalg.Fused.operand_roles]) so the IR cannot silently drift from
    the code. Stencil launches carry [sweeps = 0]: the performance
    model prices their traffic per site, not as BLAS-1 sweeps. *)

val cg_tail :
  ?n:int -> ?geometry:int * int -> fused:bool -> unit -> Plan_ir.plan
(** The BLAS-1 tail of one CG iteration on buffers p/ap/x/r — what
    [Autotune.Variants.tune_fusion] candidates execute and what the
    PLAN005 sweep cross-check diffs against
    [Machine.Perf_model.blas1_sweeps] (strict equality: fused is
    cg_update + xpay_dot, 2 sweeps — the p·Ap reduction rides the
    stencil). *)

val cg_tail_separate : ?n:int -> ?geometry:int * int -> unit -> Plan_ir.plan
(** The separate-dot fallback tail (dot_re + cg_update + xpay_dot,
    3 sweeps): what a fused solve without a tail-capable operator
    executes, and [Autotune.Variants]' [Fused] candidate. Not
    model-priced ([fusion = None]); PLAN001/002 still vet it. *)

val cg_iteration :
  ?n:int -> ?geometry:int * int -> fused:bool -> unit -> Plan_ir.plan
(** Full CG iteration: Schur-normal stencil followed by the tail.
    Fused, the stencil launch is the tail-capable [schur_normal_tail]
    carrying the p·Ap [Reduce] operand and the canonical reduction
    block. *)

val mixed :
  ?n:int ->
  ?range:float * float ->
  ?block:int ->
  fused:bool ->
  unit ->
  Plan_ir.plan
(** Double-half solve with reliable updates: outer residual init,
    inner-cycle seed, one inner iteration with quantize points exactly
    where [Solver.Mixed.solve] places them, one reliable update (an
    exact phase — deliberately unquantized). [range] is the abstract
    magnitude interval of the source at entry, the seed of the
    precision-flow pass. *)

val bicgstab_iteration : ?n:int -> fused:bool -> unit -> Plan_ir.plan
(** One full BiCGStab iteration, both stabilizer halves, stencil
    applies inserted where [Solver.Bicgstab.solve] runs them. *)

val dwf :
  ?n:int -> ?mixed_precision:bool -> fused:bool -> unit -> Plan_ir.plan
(** Domain-wall solve as the Schur composition [Solver.Dwf_solve]
    executes: split, prepare RHS, Schur-dagger, inner solve (plain CG
    or mixed), reconstruct even sites, merge. *)

val wilson_hop : ?sites:int -> ?geometry:int * int -> unit -> Plan_ir.plan

val wilson_hop_tail : ?sites:int -> ?geometry:int * int -> unit -> Plan_ir.plan
(** The tail-fused Wilson hop ([Dirac.Wilson.hop_tail]): stencil write
    plus per-tile xpay into a separate [out] buffer and a dot against
    [q] reduced through the canonical blocks. [out] aliasing [dst] is
    the seeded [Fixtures.plan_tail_aliased] hazard. *)

val wilson_hop_multi :
  ?k:int -> ?sites:int -> ?geometry:int * int -> unit -> Plan_ir.plan
(** The batched multi-RHS hop ([Dirac.Wilson.hop_multi]): one launch
    reading the gauge field once for [k] (default 4) src/dst spinor
    pairs, each declared as its own buffer so the aliasing pass vets
    the whole batch. Traffic is priced per site by
    [Machine.Perf_model.mrhs_bytes_per_site]. *)

val wilson_hop_recon :
  ?recon:Linalg.Su3_codec.codec ->
  ?k:int ->
  ?sites:int ->
  ?geometry:int * int ->
  unit ->
  Plan_ir.plan
(** The compressed-gauge batched hop ([Dirac.Wilson.hop_multi] on a
    [Lattice.Recon] store, default codec [Recon12], default [k] 4):
    the gauge buffer carries its codec as a [Su3] precision tag with a
    seeded magnitude range — the precision pass treats it as a
    register-reconstructed stream, so a [Quantize] step against it is
    a PREC004 error. Traffic is priced per site by
    [Machine.Perf_model.mrhs_bytes_per_site_recon]. *)

val cg_tail_multi :
  ?n:int -> ?geometry:int * int -> fused:bool -> unit -> Plan_ir.plan
(** The per-iteration BLAS-1 tail of [Solver.Cg.solve_multi], rows
    from [Solver.Cg.multi_tail_kernels]: fused it is the two
    [Linalg.Multi_blas] batch kernels (2 sweeps per vector — the
    PLAN005 cross-check against [Machine.Perf_model.blas1_sweeps]
    must report [sweep_gap = Some 0]), unfused the five scalar
    kernels per RHS. *)

val cg_deflate : ?n:int -> ?rank:int -> ?geometry:int * int -> unit -> Plan_ir.plan
(** The once-per-solve deflation prologue of [Solver.Cg.solve ?deflate]
    ([Solver.Deflate.augment] plus the exact residual refresh): [rank]
    (default 4) Galerkin coefficient dots through the canonical blocked
    reduction, one [Linalg.Multi_blas.block_axpy] launch folding the
    corrections into [x], then the stencil apply and [b − Ax]
    subtraction. Not model-priced ([fusion = None] — the prologue
    amortizes over the campaign, not per iteration); PLAN001/002 still
    vet the basis reads and the apply's dst. *)

val mobius_hop : ?l5:int -> unit -> Plan_ir.plan
(** Pooled stencil launches; [mobius_hop] parallelizes over s-slices
    ([n] counts slices, one chunk per slice). *)

val pooled_axpy : ?n:int -> ?geometry:int * int -> unit -> Plan_ir.plan

val dd_overlapped : ?transport:Machine.Transport.t -> unit -> Plan_ir.plan
(** The fine-grained overlapped hop: post all faces, interior stencil
    while in flight, per-face-group completes each followed by the
    boundary sub-stencil reading only landed faces. *)

val dd_zero_copy : unit -> Plan_ir.plan
(** Zero-copy discipline: window closes before the boundary pass and
    the posted buffer is never written while in flight. *)

val catalog : (string * (unit -> Plan_ir.plan)) list
(** Every named plan the analyzer knows how to extract, as exposed by
    [neutron_check --plan]. *)

val find : string -> (unit -> Plan_ir.plan) option
