(** Static analyses over the plan IR — every rule fires from the plan
    alone, before a single kernel runs.

    - [PLAN001/002/006] effect and aliasing: pooled partitions must
      tile [0, n) disjointly, kernel outputs must never alias another
      operand (static counterpart of FUSE002), steps must reference
      declared buffers.
    - [PLAN003/004] transport windows: no write into a buffer whose
      halo post window is open (an error under zero-copy, where the
      payload aliases the field in flight — HALO011/DET002 at plan
      level; a warning under staged), and post/complete must balance.
    - [PLAN005] model consistency: the IR's BLAS-1 sweep total vs
      [Machine.Perf_model.blas1_sweeps], with the known stencil-tail
      gap ([Dirac.Flops.stencil_tail_gap_sweeps]) recognized and
      reported as a warning instead of a silent mispricing.
    - [PREC001-004] precision flow: abstract interpretation over a
      magnitude-interval × quantization-error state per buffer,
      flagging half-codec overflow, underflow, dynamic-range
      violations, stale-precision reads and malformed quantize
      points. The interval propagation assumes no catastrophic
      cancellation (the reliable-update scheme exists to bound exactly
      that). *)

val rules : (string * string) list

val verify : Plan_ir.plan -> Diagnostic.t list
(** All passes over one plan, sorted errors-first. *)

val verify_plans : Plan_ir.plan list -> Diagnostic.t list

val lint_fusion :
  n:int -> fused:bool -> geometry:(int * int) option -> Diagnostic.t list
(** Static lint of one fusion-axis candidate: the CG vector tail under
    the given fused/geometry choice, errors only (the documented
    PLAN005 stencil-tail warning on fused candidates does not reject).
    Pass as [Autotune.Variants.tune_fusion ~lint] so no plan the
    analyzer rejects can be priced or cached. *)

val catalog_diagnostics : unit -> Diagnostic.t list
(** Verify every plan in {!Plan_extract.catalog} — the standard-suite
    pass. The fused CG plans carry the documented PLAN005
    stencil-tail warning; that is the intended "reported as
    diagnostic" behaviour, not a failure. *)
