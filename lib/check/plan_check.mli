(** Static analyses over the plan IR — every rule fires from the plan
    alone, before a single kernel runs.

    - [PLAN001/002/006] effect and aliasing: pooled partitions must
      tile [0, n) disjointly, kernel outputs must never alias another
      operand (static counterpart of FUSE002), steps must reference
      declared buffers.
    - [PLAN003/004] transport windows: no write into a buffer whose
      halo post window is open (an error under zero-copy, where the
      payload aliases the field in flight — HALO011/DET002 at plan
      level; a warning under staged), and post/complete must balance.
    - [PLAN005] model consistency: the IR's BLAS-1 sweep total must
      equal [Machine.Perf_model.blas1_sweeps] exactly. The historical
      stencil-tail exemption is gone — [Dirac.Wilson.hop_tail] /
      [Dirac.Mobius.apply_schur_normal_tail] ride the p·Ap reduction
      on the stencil's closing sweep, so any nonzero {!sweep_gap} is a
      live regression and errors.
    - [PREC001-004] precision flow: abstract interpretation over a
      magnitude-interval × quantization-error state per buffer,
      flagging half-codec overflow, underflow, dynamic-range
      violations, stale-precision reads and malformed quantize
      points. The interval propagation assumes no catastrophic
      cancellation (the reliable-update scheme exists to bound exactly
      that). *)

val rules : (string * string) list

val sweep_gap : Plan_ir.plan -> int option
(** IR BLAS-1 sweep total minus [Machine.Perf_model.blas1_sweeps]'s
    price for the plan's declared fusion mode; [None] when the plan is
    not model-priced ([fusion = None]). Derived from the plan, never a
    hardcoded constant — zero for every catalog plan now that the
    stencil-tail fusion landed, and [neutron_check --plan] fails the
    run on any nonzero value. *)

val verify : Plan_ir.plan -> Diagnostic.t list
(** All passes over one plan, sorted errors-first. *)

val verify_plans : Plan_ir.plan list -> Diagnostic.t list

val lint_fusion :
  n:int ->
  mode:Linalg.Fused.mode ->
  geometry:(int * int) option ->
  Diagnostic.t list
(** Static lint of one fusion-axis candidate: the CG vector tail under
    the given mode/geometry choice, errors only. [Unfused] lints the
    5-sweep classic tail, [Tail_fused] the 2-sweep model-priced tail
    (strict PLAN005), [Fused] the 3-sweep separate-dot fallback (not
    model-priced; PLAN001/002 still vet). Pass as
    [Autotune.Variants.tune_fusion ~lint] so no plan the analyzer
    rejects can be priced or cached. *)

val catalog_diagnostics : unit -> Diagnostic.t list
(** Verify every plan in {!Plan_extract.catalog} — the standard-suite
    pass. Clean since the stencil-tail fusion: zero diagnostics,
    warnings included. *)
