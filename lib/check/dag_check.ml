(* Campaign/DAG verifier: static analysis of Jobman.Pipeline task
   graphs before they reach a scheduler. At paper scale a malformed
   campaign (a cycle introduced by a bad generator, a task wider than
   the allocation) wastes a 4000-node reservation discovering what
   this pass finds in microseconds — plus a dynamic lost-wakeup check
   that replays the graph through the DES scheduler and flags tasks
   that never start. *)

module P = Jobman.Pipeline

let rules =
  [
    ("CAMP001", "duplicate task id");
    ("CAMP002", "dependency on a task id that does not exist");
    ("CAMP003", "dependency cycle");
    ("CAMP004", "duplicate entries in a dependency list");
    ("CAMP005", "task wider than the allocation (resource infeasible)");
    ("CAMP006", "non-positive node count");
    ("CAMP007", "negative, zero or non-finite duration");
    ("CAMP008", "starved: depends transitively on a task that can never run");
    ("CAMP009", "DES deadlock: scheduler replay left tasks unstarted");
  ]

let loc_task id = Printf.sprintf "task %d" id

(* Find one representative cycle through iterative DFS (white/grey/
   black), returning the ids on it, and the set of all grey-reachable
   offenders for tainting. *)
let find_cycles (tbl : (int, P.task) Hashtbl.t) (tasks : P.task list) =
  let color = Hashtbl.create (List.length tasks) in
  (* 0 = white (implicit), 1 = grey, 2 = black *)
  let cyclic = Hashtbl.create 8 in
  let cycles = ref [] in
  let rec visit path id =
    match Hashtbl.find_opt color id with
    | Some 2 -> ()
    | Some 1 ->
      (* back edge: the cycle is the path suffix from [id] *)
      let rec suffix = function
        | [] -> []
        | x :: _ when x = id -> [ x ]
        | x :: rest -> x :: suffix rest
      in
      let cyc = List.rev (suffix path) in
      List.iter (fun i -> Hashtbl.replace cyclic i ()) cyc;
      if List.length !cycles < 8 then cycles := cyc :: !cycles
    | _ -> (
      Hashtbl.replace color id 1;
      (match Hashtbl.find_opt tbl id with
      | None -> ()
      | Some t -> List.iter (fun d -> visit (id :: path) d) t.P.deps);
      Hashtbl.replace color id 2)
  in
  List.iter (fun t -> visit [] t.P.id) tasks;
  (!cycles, cyclic)

let verify ?n_nodes (tasks : P.task list) =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  (* -- CAMP001: duplicate ids; build the id table (first wins) -- *)
  let tbl = Hashtbl.create (List.length tasks) in
  List.iter
    (fun t ->
      if Hashtbl.mem tbl t.P.id then
        add
          (Diagnostic.error ~rule:"CAMP001" ~loc:(loc_task t.P.id)
             "task id appears more than once"
             ~hint:"task ids must be unique; renumber the campaign")
      else Hashtbl.add tbl t.P.id t)
    tasks;
  (* -- CAMP002/CAMP004: dangling and duplicate deps -- *)
  List.iter
    (fun t ->
      let seen = Hashtbl.create 8 in
      List.iter
        (fun d ->
          if not (Hashtbl.mem tbl d) then
            add
              (Diagnostic.error ~rule:"CAMP002" ~loc:(loc_task t.P.id)
                 (Printf.sprintf "depends on non-existent task %d" d)
                 ~hint:"the task will wait forever; drop or fix the dependency");
          if Hashtbl.mem seen d then
            add
              (Diagnostic.warning ~rule:"CAMP004" ~loc:(loc_task t.P.id)
                 (Printf.sprintf "dependency %d listed more than once" d))
          else Hashtbl.add seen d ())
        t.P.deps)
    tasks;
  (* -- CAMP005/006/007: per-task resource sanity -- *)
  let infeasible = Hashtbl.create 8 in
  List.iter
    (fun t ->
      if t.P.nodes <= 0 then begin
        Hashtbl.replace infeasible t.P.id ();
        add
          (Diagnostic.error ~rule:"CAMP006" ~loc:(loc_task t.P.id)
             (Printf.sprintf "node count %d is not positive" t.P.nodes))
      end;
      (match n_nodes with
      | Some n when t.P.nodes > n ->
        Hashtbl.replace infeasible t.P.id ();
        add
          (Diagnostic.error ~rule:"CAMP005" ~loc:(loc_task t.P.id)
             (Printf.sprintf "needs %d nodes but the allocation has only %d"
                t.P.nodes n)
             ~hint:"shrink the task or grow the allocation; it can never start")
      | _ -> ());
      if not (Float.is_finite t.P.duration) || t.P.duration < 0. then begin
        Hashtbl.replace infeasible t.P.id ();
        add
          (Diagnostic.error ~rule:"CAMP007" ~loc:(loc_task t.P.id)
             (Printf.sprintf "duration %g is negative or non-finite" t.P.duration))
      end
      else if t.P.duration = 0. then
        add
          (Diagnostic.warning ~rule:"CAMP007" ~loc:(loc_task t.P.id)
             "zero duration: task completes instantaneously"))
    tasks;
  (* -- CAMP003: cycles -- *)
  let cycles, cyclic = find_cycles tbl tasks in
  List.iter
    (fun cyc ->
      let path = String.concat " -> " (List.map string_of_int (cyc @ [ List.hd cyc ])) in
      add
        (Diagnostic.error ~rule:"CAMP003"
           ~loc:(loc_task (List.hd cyc))
           (Printf.sprintf "dependency cycle: %s" path)
           ~hint:"no task on the cycle can ever start; break one edge"))
    cycles;
  (* -- CAMP008: starvation by transitive taint. A task is doomed when
     it is on a cycle, is itself infeasible, depends on a missing id,
     or (fixpoint) depends on a doomed task. Report only the
     propagated victims — the root causes already have their own
     diagnostics. -- *)
  let doomed = Hashtbl.create 16 in
  let directly_bad t =
    Hashtbl.mem cyclic t.P.id || Hashtbl.mem infeasible t.P.id
    || List.exists (fun d -> not (Hashtbl.mem tbl d)) t.P.deps
  in
  List.iter (fun t -> if directly_bad t then Hashtbl.replace doomed t.P.id ()) tasks;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun t ->
        if
          (not (Hashtbl.mem doomed t.P.id))
          && List.exists (Hashtbl.mem doomed) t.P.deps
        then begin
          Hashtbl.replace doomed t.P.id ();
          changed := true;
          add
            (Diagnostic.error ~rule:"CAMP008" ~loc:(loc_task t.P.id)
               "starved: a transitive dependency can never run"
               ~hint:"fix the root-cause task it depends on")
        end)
      tasks
  done;
  (* -- CAMP009: dynamic lost-wakeup check. Replay the graph through
     the DES scheduler in both execution modes; with a statically
     clean graph every task must start and finish. Skipped when static
     errors exist (the replay would only echo them). -- *)
  (match n_nodes with
  | Some n when not (Diagnostic.has_errors !ds) ->
    List.iter
      (fun mode ->
        let o = P.run ~mode ~n_nodes:n ~tasks in
        if o.P.stuck > 0 then
          add
            (Diagnostic.error ~rule:"CAMP009" ~loc:(Printf.sprintf "%s replay" o.P.mode)
               (Printf.sprintf
                  "scheduler deadlock: %d of %d tasks never started" o.P.stuck
                  (List.length tasks))
               ~hint:"a wakeup was lost or capacity is unreachable at runtime"))
      [ `Separate; `Coscheduled ]
  | _ -> ());
  Diagnostic.sort (List.rev !ds)
