(* Lift the real front-ends into the plan IR. Each builder mirrors the
   step sequence its front-end executes — kernel rows come from the
   front-ends' own exported ground truth (Solver.Cg.tail_kernels,
   Solver.Mixed.inner_quantizes / reliable_update_kernels,
   Solver.Bicgstab.tail_kernels, Linalg.Fused.operand_roles) so the IR
   cannot silently drift from the code: the test suite asserts the
   extracted kernel sequences equal the exports, and Plan_check's
   sweep-consistency pass diffs the sweep totals against
   Machine.Perf_model. Stencil launches carry sweeps=0 because the
   model prices their traffic separately (bytes_per_site), not as
   BLAS-1 sweeps. *)

open Plan_ir

let r_ = Read
let w_ = Write
let u_ = Update
let red = Reduce

(* Zip front-end kernel rows with hand-written operand effects; a
   length or name mismatch means extraction drifted from the
   front-end — fail loudly, the fixtures and tests run every builder. *)
let zip_args what rows argss =
  if List.length rows <> List.length argss then
    invalid_arg
      (Printf.sprintf "Plan_extract.%s: %d kernel rows vs %d arg rows" what
         (List.length rows) (List.length argss))
  else
    List.map2
      (fun (name, sweeps) (args, coeff) -> kernel ~sweeps ~coeff ~args name)
      rows argss

(* Effects of the fused kernels come from the operand-role table, with
   plan-level buffer names substituted positionally and the reduction
   scalar appended. *)
let fused_args name ~buffers ~reduce =
  match Linalg.Fused.operand_roles name with
  | None -> invalid_arg ("Plan_extract.fused_args: unknown kernel " ^ name)
  | Some roles ->
    if List.length roles <> List.length buffers then
      invalid_arg ("Plan_extract.fused_args: arity mismatch for " ^ name)
    else
      List.map2
        (fun (_, is_out) buf -> (buf, if is_out then u_ else r_))
        roles buffers
      @ [ (reduce, red) ]

(* ---- CG ---- *)

(* The BLAS-1 tail of one CG iteration on buffers p/ap/x/r, driven by
   Cg.tail_kernels. Fused, the p·Ap reduction is NOT a tail row: it
   rides the stencil's closing sweep (Cg.solve's apply_dot), so the
   fused tail is exactly cg_update + xpay_dot. *)
let cg_tail_launches ~fused ?geometry () =
  let rows = Solver.Cg.tail_kernels ~fused in
  let argss =
    if fused then
      [
        (fused_args "cg_update" ~buffers:[ "p"; "ap"; "x"; "r" ] ~reduce:"r2", 1.0);
        (fused_args "xpay_dot" ~buffers:[ "r"; "p"; "r" ] ~reduce:"pr", 1.0);
      ]
    else
      [
        ([ ("p", r_); ("ap", r_); ("pap", red) ], 1.0);
        ([ ("p", r_); ("x", u_) ], 1.0);
        ([ ("ap", r_); ("r", u_) ], 1.0);
        ([ ("r", r_); ("r2", red) ], 1.0);
        ([ ("r", r_); ("p", u_) ], 1.0);
      ]
  in
  List.map
    (fun k -> Launch { k with geometry })
    (zip_args "cg_tail" rows argss)

let cg_buffers =
  [
    buffer ~prec:Double "p";
    buffer ~prec:Double "ap";
    buffer ~prec:Double "x";
    buffer ~prec:Double "r";
  ]

(* Just the vector tail, model-priced: what Autotune.Variants.tune_fusion
   candidates execute, and what the PLAN005 sweep cross-check diffs
   against Perf_model.blas1_sweeps — strict equality, both columns. *)
let cg_tail ?(n = 1 lsl 16) ?geometry ~fused () =
  plan ~fusion:fused ~n ~buffers:cg_buffers
    ~steps:(cg_tail_launches ~fused ?geometry ())
    (if fused then "cg-tail-fused" else "cg-tail")

(* The separate-dot fallback tail Autotune.Variants runs as its Fused
   (3-sweep) candidate: a fused solve without a tail-capable operator
   keeps the p·Ap dot as its own sweep. Not model-priced (fusion =
   None — Perf_model has no 3-sweep column), but PLAN001/002 still vet
   the fused kernels' aliasing and association. *)
let cg_tail_separate ?(n = 1 lsl 16) ?geometry () =
  let rows =
    [ ("dot_re", 1); ("cg_update", 1); ("xpay_dot", 1) ]
  in
  let argss =
    [
      ([ ("p", r_); ("ap", r_); ("pap", red) ], 1.0);
      (fused_args "cg_update" ~buffers:[ "p"; "ap"; "x"; "r" ] ~reduce:"r2", 1.0);
      (fused_args "xpay_dot" ~buffers:[ "r"; "p"; "r" ] ~reduce:"pr", 1.0);
    ]
  in
  let steps =
    List.map
      (fun k -> Launch { k with geometry })
      (zip_args "cg_tail_separate" rows argss)
  in
  plan ~n ~buffers:cg_buffers ~steps "cg-tail-separate"

(* One full CG iteration: the Schur-normal stencil (sweeps=0 — its
   traffic is priced per site by the model, not as a BLAS-1 sweep)
   followed by the tail. Fused, the stencil is the tail-capable
   variant: it additionally reduces p·Ap through the canonical blocked
   reduction in its closing sweep (Mobius.apply_schur_normal_tail). *)
let cg_stencil ~fused =
  if fused then
    Launch
      (kernel ~sweeps:0 ~block:Linalg.Field.reduce_block
         ~args:[ ("p", r_); ("ap", w_); ("pap", red) ]
         "schur_normal_tail")
  else Launch (kernel ~sweeps:0 ~args:[ ("p", r_); ("ap", w_) ] "schur_normal")

let cg_iteration ?(n = 1 lsl 16) ?geometry ~fused () =
  plan ~fusion:fused ~n ~buffers:cg_buffers
    ~steps:(cg_stencil ~fused :: cg_tail_launches ~fused ?geometry ())
    (if fused then "cg-fused" else "cg")

(* ---- Mixed (double-half with reliable updates) ---- *)

let mixed_buffers ~range ~block =
  [
    buffer ~prec:Double ~range "b";
    buffer ~prec:Double "x";
    buffer ~prec:Double "r";
    buffer ~prec:Double "xs";
    buffer ~prec:(Half block) "p";
    buffer ~prec:(Half block) "ap";
    buffer ~prec:(Half block) "rs";
  ]

(* One inner sloppy iteration, quantize points exactly where
   Mixed.solve places them (Mixed.inner_quantizes = p, ap, rs). *)
let mixed_inner_steps ~fused ~block =
  let q buf = Quantize { qbuf = buf; qblock = block } in
  let update =
    if fused then
      [
        Launch
          (kernel ~sweeps:1
             ~args:(fused_args "cg_update" ~buffers:[ "p"; "ap"; "xs"; "rs" ] ~reduce:"r2_pre")
             "cg_update");
      ]
    else
      [
        Launch (kernel ~sweeps:1 ~args:[ ("p", r_); ("xs", u_) ] "axpy");
        Launch (kernel ~sweeps:1 ~args:[ ("ap", r_); ("rs", u_) ] "axpy");
      ]
  in
  let close =
    if fused then
      [
        Launch
          (kernel ~sweeps:1
             ~args:(fused_args "xpay_dot" ~buffers:[ "rs"; "p"; "rs" ] ~reduce:"pr")
             "xpay_dot");
      ]
    else [ Launch (kernel ~sweeps:1 ~args:[ ("rs", r_); ("p", u_) ] "xpay") ]
  in
  [
    q "p";
    Launch (kernel ~sweeps:0 ~args:[ ("p", r_); ("ap", w_) ] "schur_normal");
    q "ap";
    Launch (kernel ~sweeps:1 ~args:[ ("p", r_); ("ap", r_); ("pap", red) ] "dot_re");
  ]
  @ update
  @ [
      q "rs";
      Launch (kernel ~sweeps:1 ~args:[ ("rs", r_); ("rs2", red) ] "norm2");
    ]
  @ close

(* The reliable update: promote the sloppy solution, recompute the
   residual exactly in double — deliberately no quantize (ap is used
   as plain double scratch here; the precision-flow pass understands
   an exact phase that does not mix with quantized reads). *)
let mixed_reliable_steps ~fused =
  let rows = Solver.Mixed.reliable_update_kernels ~fused in
  let argss =
    if fused then
      [
        ([ ("xs", r_); ("x", u_) ], 1.0);
        ([ ("b", r_); ("r", w_) ], 1.0);
        (fused_args "axpy_norm2" ~buffers:[ "ap"; "r" ] ~reduce:"r2", 1.0);
      ]
    else
      [
        ([ ("xs", r_); ("x", u_) ], 1.0);
        ([ ("b", r_); ("ap", r_); ("r", w_) ], 1.0);
        ([ ("r", r_); ("r2", red) ], 1.0);
      ]
  in
  let blas1 = List.map (fun k -> Launch k) (zip_args "mixed_reliable" rows argss) in
  match blas1 with
  | promote :: rest ->
    promote
    :: Launch (kernel ~sweeps:0 ~args:[ ("x", r_); ("ap", w_) ] "schur_normal")
    :: rest
  | [] -> []

(* Full mixed plan: outer residual init, inner-cycle seed (copy +
   quantize), one inner iteration, one reliable update. [range] is the
   abstract magnitude interval of the source at entry — the seed of
   the precision-flow pass. *)
let mixed ?(n = 24 * 4096) ?(range = (1e-2, 1e1))
    ?(block = Solver.Mixed.default_config.Solver.Mixed.block) ~fused () =
  let steps =
    [
      Launch (kernel ~sweeps:1 ~args:[ ("b", r_); ("r", w_) ] "blit");
      Launch (kernel ~sweeps:1 ~args:[ ("r", r_); ("rs", w_) ] "blit");
      Quantize { qbuf = "rs"; qblock = block };
      Launch (kernel ~sweeps:1 ~args:[ ("rs", r_); ("p", w_) ] "blit");
      Launch (kernel ~sweeps:1 ~args:[ ("rs", r_); ("rs2", red) ] "norm2");
    ]
    @ mixed_inner_steps ~fused ~block
    @ mixed_reliable_steps ~fused
  in
  plan ~n ~buffers:(mixed_buffers ~range ~block) ~steps
    (if fused then "mixed-fused" else "mixed")

(* ---- BiCGStab ---- *)

let bicgstab_buffers =
  List.map
    (fun name -> buffer ~prec:Double name)
    [ "b"; "x"; "r"; "r_hat"; "p"; "v"; "s"; "t" ]

(* One full iteration, both stabilizer halves; the BLAS-1 rows come
   from Bicgstab.tail_kernels, the two stencil applies are inserted
   where Bicgstab.solve runs them. *)
let bicgstab_iteration ?(n = 1 lsl 16) ~fused () =
  let rows = Solver.Bicgstab.tail_kernels ~fused in
  let update_args out =
    if fused then [ (fused_args "caxpy_norm2" ~buffers:[ (if out = "s" then "v" else "t"); out ] ~reduce:(out ^ "2"), 1.0) ]
    else
      [
        ([ ((if out = "s" then "v" else "t"), r_); (out, u_) ], 1.0);
        ([ (out, r_); (out ^ "2", red) ], 1.0);
      ]
  in
  let argss =
    [
      ([ ("r_hat", r_); ("v", r_); ("rhv", red) ], 1.0);
      ([ ("r", r_); ("s", w_) ], 1.0);
    ]
    @ update_args "s"
    @ [
        ([ ("t", r_); ("tt", red) ], 1.0);
        ([ ("t", r_); ("s", r_); ("ts", red) ], 1.0);
        ([ ("p", r_); ("x", u_) ], 1.0);
        ([ ("s", r_); ("x", u_) ], 1.0);
        ([ ("s", r_); ("r", w_) ], 1.0);
      ]
    @ update_args "r"
    @ [
        ([ ("r_hat", r_); ("r", r_); ("rho", red) ], 1.0);
        ([ ("v", r_); ("p", u_) ], 1.0);
        ([ ("r", r_); ("p", u_) ], 1.0);
      ]
  in
  let blas1 = List.map (fun k -> Launch k) (zip_args "bicgstab" rows argss) in
  let apply src dst =
    Launch (kernel ~sweeps:0 ~args:[ (src, r_); (dst, w_) ] "apply")
  in
  (* apply p v before the r_hat·v dot; apply s t before |t|² *)
  let rec insert_applies = function
    | Launch k :: rest when k.kname = "cdot" && List.mem_assoc "v" k.args ->
      apply "p" "v" :: Launch k :: insert_applies rest
    | Launch k :: rest when k.kname = "norm2" && List.mem_assoc "t" k.args ->
      apply "s" "t" :: Launch k :: insert_applies rest
    | s :: rest -> s :: insert_applies rest
    | [] -> []
  in
  plan ~n ~buffers:bicgstab_buffers ~steps:(insert_applies blas1)
    (if fused then "bicgstab-fused" else "bicgstab")

(* ---- Domain-wall solve (Schur composition) ---- *)

let dwf ?(n = 24 * 4096) ?(mixed_precision = false) ~fused () =
  let pre =
    [
      Launch
        (kernel ~sweeps:1
           ~args:[ ("rhs", r_); ("rhs_even", w_); ("rhs_odd", w_) ]
           "split_eo");
      Launch
        (kernel ~sweeps:1
           ~args:[ ("rhs_even", r_); ("rhs_odd", r_); ("yprime", w_) ]
           "prepare_rhs");
      Launch
        (kernel ~sweeps:1 ~args:[ ("yprime", r_); ("b", w_) ]
           "apply_schur_dagger");
    ]
  in
  let inner =
    if mixed_precision then
      let block = Solver.Mixed.default_config.Solver.Mixed.block in
      [
        Launch (kernel ~sweeps:1 ~args:[ ("b", r_); ("r", w_) ] "blit");
        Launch (kernel ~sweeps:1 ~args:[ ("r", r_); ("rs", w_) ] "blit");
        Quantize { qbuf = "rs"; qblock = block };
        Launch (kernel ~sweeps:1 ~args:[ ("rs", r_); ("p", w_) ] "blit");
      ]
      @ mixed_inner_steps ~fused ~block
      @ mixed_reliable_steps ~fused
    else cg_stencil ~fused :: cg_tail_launches ~fused ()
  in
  let post =
    [
      Launch
        (kernel ~sweeps:1
           ~args:[ ("rhs_even", r_); ("x", r_); ("x_even", w_) ]
           "reconstruct_even");
      Launch
        (kernel ~sweeps:1
           ~args:[ ("x_even", r_); ("x", r_); ("x_full", w_) ]
           "merge_eo");
    ]
  in
  let block = Solver.Mixed.default_config.Solver.Mixed.block in
  let buffers =
    List.map
      (fun name -> buffer ~prec:Double name)
      [ "rhs"; "rhs_even"; "rhs_odd"; "yprime"; "x_even"; "x_full" ]
    @ (if mixed_precision then mixed_buffers ~range:(1e-2, 1e1) ~block
       else buffer ~prec:Double ~range:(1e-2, 1e1) "b" :: cg_buffers)
  in
  plan ~n ~buffers ~steps:(pre @ inner @ post)
    (if mixed_precision then "dwf-mixed" else "dwf")

(* ---- Stencil hop launches (pooled Field/Dirac kernels) ---- *)

let wilson_hop ?(sites = 256) ?(geometry = (4, 1536)) () =
  let n = sites * 24 in
  plan ~n
    ~buffers:
      [
        buffer ~prec:Double "u";
        buffer ~prec:Double "src";
        buffer ~prec:Double "dst";
      ]
    ~steps:
      [
        Launch
          (kernel ~geometry ~sweeps:1
             ~args:[ ("u", r_); ("src", r_); ("dst", w_) ]
             "wilson_hop");
      ]
    "wilson-hop"

(* The tail-fused Wilson hop (Wilson.hop_tail): one launch that writes
   the stencil result and, per 256-site tile, applies the optional
   xpay to a separate output buffer and reduces the dot against q
   through the canonical 2048-float blocks — sweeps stay 0 (stencil
   traffic is priced per site; the tail reads ride its closing sweep).
   [out] must be a distinct buffer from [dst]: the fused loop reads
   the freshly written stencil block while updating out, so aliasing
   them is a read-write hazard (the seeded plan_tail_aliased fixture,
   PLAN002). *)
let wilson_hop_tail ?(sites = 256) ?(geometry = (4, 6144)) () =
  let n = sites * 24 in
  plan ~n
    ~buffers:
      [
        buffer ~prec:Double "u";
        buffer ~prec:Double "src";
        buffer ~prec:Double "dst";
        buffer ~prec:Double "out";
        buffer ~prec:Double "q";
      ]
    ~steps:
      [
        Launch
          (kernel ~geometry ~sweeps:0 ~block:Linalg.Field.reduce_block
             ~args:
               [
                 ("u", r_);
                 ("src", r_);
                 ("dst", w_);
                 ("out", u_);
                 ("q", r_);
                 ("dot", red);
               ]
             "wilson_hop_tail");
      ]
    "wilson-hop-tail"

(* The batched multi-RHS hop (Wilson.hop_multi): one launch reads the
   gauge field once and streams k src/dst spinor pairs through it —
   the per-RHS buffers are declared individually so the aliasing pass
   vets every dst against every src and the other dsts. Stencil
   traffic is priced per site by Perf_model.mrhs_bytes_per_site (the
   link term amortized k-fold), not as BLAS-1 sweeps. *)
let wilson_hop_multi ?(k = 4) ?(sites = 256) ?geometry () =
  if k < 1 then invalid_arg "Plan_extract.wilson_hop_multi: k must be >= 1";
  let n = sites * 24 in
  let srcs = List.init k (Printf.sprintf "src%d") in
  let dsts = List.init k (Printf.sprintf "dst%d") in
  plan ~n
    ~buffers:
      (buffer ~prec:Double "u"
      :: List.map (fun b -> buffer ~prec:Double b) (srcs @ dsts))
    ~steps:
      [
        Launch
          (kernel ?geometry ~sweeps:1
             ~args:
               (("u", r_)
               :: (List.map (fun s -> (s, r_)) srcs
                  @ List.map (fun d -> (d, w_)) dsts))
             "wilson_hop_multi");
      ]
    "wilson-hop-multi"

(* The compressed-gauge batched hop (Wilson.hop_multi on a
   Lattice.Recon store): identical effect shape to wilson_hop_multi,
   but the gauge buffer carries its codec as a precision tag — the
   precision pass knows it is a register-reconstructed stream, never a
   quantize target (PREC004 fires on a Quantize step against it). The
   range seeds the magnitude interval: SU(3) entries are bounded by 1,
   and the codec's round-trip bound is the floor of meaningful
   magnitudes. *)
let wilson_hop_recon ?(recon = Linalg.Su3_codec.Recon12) ?(k = 4)
    ?(sites = 256) ?geometry () =
  if k < 1 then invalid_arg "Plan_extract.wilson_hop_recon: k must be >= 1";
  let n = sites * 24 in
  let srcs = List.init k (Printf.sprintf "src%d") in
  let dsts = List.init k (Printf.sprintf "dst%d") in
  plan ~n
    ~buffers:
      (buffer ~prec:(Su3 recon)
         ~range:(max 1e-30 (Linalg.Su3_codec.round_trip_bound recon), 1.)
         "u"
      :: List.map (fun b -> buffer ~prec:Double b) (srcs @ dsts))
    ~steps:
      [
        Launch
          (kernel ?geometry ~sweeps:1
             ~args:
               (("u", r_)
               :: (List.map (fun s -> (s, r_)) srcs
                  @ List.map (fun d -> (d, w_)) dsts))
             "wilson_hop_recon");
      ]
    "wilson-hop-recon"

(* Effects of the batched BLAS-1 kernels from Multi_blas's own
   operand-role table — same discipline as [fused_args]. *)
let multi_args name ~buffers ~reduce =
  match Linalg.Multi_blas.operand_roles name with
  | None -> invalid_arg ("Plan_extract.multi_args: unknown kernel " ^ name)
  | Some roles ->
    if List.length roles <> List.length buffers then
      invalid_arg ("Plan_extract.multi_args: arity mismatch for " ^ name)
    else
      List.map2
        (fun (_, is_out) buf -> (buf, if is_out then u_ else r_))
        roles buffers
      @ [ (reduce, red) ]

(* The per-iteration BLAS-1 tail of Cg.solve_multi, driven by
   Cg.multi_tail_kernels: fused it is the two Multi_blas batch kernels
   (2 sweeps per vector — matching Perf_model.blas1_sweeps ~fused:true,
   so the PLAN005 cross-check must report a zero gap), unfused the
   five scalar kernels per RHS. Buffers name the per-RHS quadruple;
   the batch width multiplies volume, not sweep count. *)
let cg_tail_multi ?(n = 1 lsl 16) ?geometry ~fused () =
  let rows = Solver.Cg.multi_tail_kernels ~fused in
  let argss =
    if fused then
      [
        ( multi_args "multi_cg_update" ~buffers:[ "p"; "ap"; "x"; "r" ]
            ~reduce:"r2",
          1.0 );
        (multi_args "multi_xpay_dot" ~buffers:[ "r"; "p"; "r" ] ~reduce:"pr", 1.0);
      ]
    else
      [
        ([ ("p", r_); ("ap", r_); ("pap", red) ], 1.0);
        ([ ("p", r_); ("x", u_) ], 1.0);
        ([ ("ap", r_); ("r", u_) ], 1.0);
        ([ ("r", r_); ("r2", red) ], 1.0);
        ([ ("r", r_); ("p", u_) ], 1.0);
      ]
  in
  let steps =
    List.map
      (fun kr -> Launch { kr with geometry })
      (zip_args "cg_tail_multi" rows argss)
  in
  plan ~fusion:fused ~n ~buffers:cg_buffers ~steps
    (if fused then "cg-tail-multi-fused" else "cg-tail-multi")

(* ---- Deflated CG entry (Cg.solve ?deflate) ---- *)

(* The once-per-solve deflation prologue Deflate.augment + the exact
   residual refresh that follows it in Cg.solve: rank Galerkin
   coefficients v_i·r through the canonical blocked reduction, one
   Multi_blas.block_axpy launch folding all rank corrections into x in
   index order, then the stencil apply and the b − Ax subtraction that
   restart the residual. Not model-priced (fusion = None — the
   prologue is amortized over the campaign, not per iteration), but
   PLAN001/002 still vet the basis reads against the x update and the
   dst of the apply. *)
let cg_deflate ?(n = 1 lsl 16) ?(rank = 4) ?geometry () =
  if rank < 1 then invalid_arg "Plan_extract.cg_deflate: rank must be >= 1";
  let basis = List.init rank (Printf.sprintf "basis%d") in
  let dots =
    List.map
      (fun v ->
        Launch
          (kernel ~sweeps:1 ~block:Linalg.Field.reduce_block ?geometry
             ~args:[ (v, r_); ("r", r_); ("g_" ^ v, red) ]
             "dot_re"))
      basis
  in
  let axpy =
    Launch
      (kernel ~sweeps:1 ?geometry
         ~args:(List.map (fun v -> (v, r_)) basis @ [ ("x", u_) ])
         "block_axpy")
  in
  let refresh =
    [
      Launch (kernel ~sweeps:0 ~args:[ ("x", r_); ("ap", w_) ] "schur_normal");
      Launch
        (kernel ~sweeps:1 ~args:[ ("b", r_); ("ap", r_); ("r", w_) ] "sub");
    ]
  in
  plan ~n
    ~buffers:
      (List.map (fun v -> buffer ~prec:Double v) basis
      @ [
          buffer ~prec:Double "b";
          buffer ~prec:Double "x";
          buffer ~prec:Double "r";
          buffer ~prec:Double "ap";
        ])
    ~steps:(dots @ (axpy :: refresh))
    "deflate"

(* The Mobius 5D hop parallelizes over s-slices: n counts slices, the
   canonical launch is one chunk per slice. *)
let mobius_hop ?(l5 = 16) () =
  plan ~n:l5
    ~buffers:
      [
        buffer ~prec:Double "u";
        buffer ~prec:Double "src";
        buffer ~prec:Double "dst";
      ]
    ~steps:
      [
        Launch
          (kernel ~geometry:(1, 1) ~sweeps:1
             ~args:[ ("u", r_); ("src", r_); ("dst", w_) ]
             "mobius_hop_slices");
      ]
    "mobius-hop"

let pooled_axpy ?(n = 1 lsl 16) ?(geometry = (4, 4096)) () =
  plan ~n
    ~buffers:[ buffer ~prec:Double "x"; buffer ~prec:Double "y" ]
    ~steps:
      [
        Launch (kernel ~geometry ~sweeps:1 ~args:[ ("x", r_); ("y", u_) ] "axpy");
      ]
    "pooled-axpy"

(* ---- Vrank.Comm transport schedules ---- *)

let all_faces = Array.init 8 Fun.id

(* The fine-grained overlapped hop Dd_wilson.hop_overlapped runs: post
   all faces, interior while in flight, per-face-group completes each
   followed by the boundary sub-stencil reading only landed faces. *)
let dd_overlapped ?(transport = Machine.Transport.Staged) () =
  plan ~transport ~n:(256 * 24)
    ~buffers:[ buffer ~prec:Double "spinor"; buffer ~prec:Double "dst" ]
    ~steps:
      [
        Post { pbuf = "spinor"; faces = all_faces };
        Launch
          (kernel ~sweeps:1
             ~args:[ ("spinor", r_); ("dst", w_) ]
             "stencil_interior");
        Complete { cbuf = "spinor"; faces = [| 0; 1 |] };
        Launch
          (kernel ~sweeps:1
             ~args:[ ("spinor", r_); ("dst", u_) ]
             "stencil_faces_x");
        Complete { cbuf = "spinor"; faces = [| 2; 3; 4; 5; 6; 7 |] };
        Launch
          (kernel ~sweeps:1
             ~args:[ ("spinor", r_); ("dst", u_) ]
             "stencil_boundary");
      ]
    "dd-overlapped"

(* The zero-copy discipline: the payload aliases the sender's field
   until completion, so the window must close before any local write —
   this schedule completes everything before the boundary pass and
   never writes the posted buffer. *)
let dd_zero_copy () =
  plan ~transport:Machine.Transport.Zero_copy ~n:(256 * 24)
    ~buffers:[ buffer ~prec:Double "spinor"; buffer ~prec:Double "dst" ]
    ~steps:
      [
        Post { pbuf = "spinor"; faces = all_faces };
        Launch
          (kernel ~sweeps:1
             ~args:[ ("spinor", r_); ("dst", w_) ]
             "stencil_interior");
        Complete { cbuf = "spinor"; faces = all_faces };
        Launch
          (kernel ~sweeps:1
             ~args:[ ("spinor", r_); ("dst", u_) ]
             "stencil_boundary");
      ]
    "dd-zero-copy"

(* ---- Catalog ---- *)

let catalog : (string * (unit -> plan)) list =
  [
    ("cg", fun () -> cg_iteration ~fused:false ());
    ("cg-fused", fun () -> cg_iteration ~fused:true ());
    ("cg-tail", fun () -> cg_tail ~fused:false ());
    ("cg-tail-fused", fun () -> cg_tail ~fused:true ());
    ("cg-tail-separate", fun () -> cg_tail_separate ());
    ("mixed", fun () -> mixed ~fused:false ());
    ("mixed-fused", fun () -> mixed ~fused:true ());
    ("bicgstab", fun () -> bicgstab_iteration ~fused:false ());
    ("bicgstab-fused", fun () -> bicgstab_iteration ~fused:true ());
    ("dwf", fun () -> dwf ~fused:false ());
    ("dwf-mixed", fun () -> dwf ~mixed_precision:true ~fused:true ());
    ("wilson-hop", fun () -> wilson_hop ());
    ("wilson-hop-tail", fun () -> wilson_hop_tail ());
    ("wilson-hop-multi", fun () -> wilson_hop_multi ());
    ("wilson-hop-recon", fun () -> wilson_hop_recon ());
    ("cg-tail-multi", fun () -> cg_tail_multi ~fused:false ());
    ("deflate", fun () -> cg_deflate ());
    ("cg-tail-multi-fused", fun () -> cg_tail_multi ~fused:true ());
    ("mobius-hop", fun () -> mobius_hop ());
    ("pooled-axpy", fun () -> pooled_axpy ());
    ("dd-overlapped", fun () -> dd_overlapped ());
    ("dd-zero-copy", fun () -> dd_zero_copy ());
  ]

let find name = List.assoc_opt name catalog
