(* Umbrella entry point: one call per artifact class, plus the
   standard suite that verifies the repo's shipped example artifacts —
   the campaign the examples build, the overlapped halo schedules the
   domain-decomposed solver runs, the default workflow spec, and an
   instrumented mixed-precision solve. bin/neutron_check drives this;
   `dune build @check` and the test suite gate on it. *)

module F = Linalg.Field

(* check.ml is the library's main module: re-export the passes so
   users see Check.Diagnostic, Check.Dag_check, ... *)
module Diagnostic = Diagnostic
module Dag_check = Dag_check
module Halo_check = Halo_check
module Numeric_check = Numeric_check
module Spec_check = Spec_check
module Pool_check = Pool_check
module Fuse_check = Fuse_check
module Mrhs_check = Mrhs_check
module Recon_check = Recon_check
module Deflate_check = Deflate_check
module Plan_ir = Plan_ir
module Plan_extract = Plan_extract
module Plan_check = Plan_check
module Fixtures = Fixtures

(* ---- pass aliases ---- *)

let campaign = Dag_check.verify
let halo_schedule = Halo_check.verify_schedule
let halo_audit = Halo_check.audit
let field_finite = Numeric_check.check_finite
let half_blocks = Numeric_check.half_blocks
let probe_mixed_solve = Numeric_check.probe_mixed_solve
let workflow_spec = Spec_check.workflow_spec
let mixed_config = Spec_check.mixed_config
let pool_plan = Pool_check.verify_plan
let fused_plan = Fuse_check.verify_plan
let mrhs_plan = Mrhs_check.verify_plan
let recon_plan = Recon_check.verify_plan
let recon_gauge = Recon_check.verify_gauge
let deflate_plan = Deflate_check.verify_plan
let deflate_space = Deflate_check.verify_space
let solver_plan = Plan_check.verify

let all_rules =
  [
    ("campaign", Dag_check.rules);
    ("halo", Halo_check.rules);
    ("numeric", Numeric_check.rules);
    ("spec", Spec_check.rules);
    ("pool", Pool_check.rules);
    ("fuse", Fuse_check.rules);
    ("mrhs", Mrhs_check.rules);
    ("recon", Recon_check.rules);
    ("deflate", Deflate_check.rules);
    ("plan", Plan_check.rules);
  ]

(* ---- the shipped-example artifacts, verified ---- *)

let standard_suite ?(seed = 20_180_920) () : Diagnostic.report =
  let rng = Util.Rng.create seed in
  (* the co-scheduling campaign of examples/job_manager and Fig 6 *)
  let tasks =
    Jobman.Pipeline.campaign ~batch:4 ~n_props:64 ~prop_nodes:4 ~duration:600.
      rng
  in
  let campaign_ds = Dag_check.verify ~n_nodes:32 tasks in
  (* the halo-exchange patterns Dd_wilson runs: simple and overlapped *)
  let geom = Lattice.Geometry.create [| 4; 4; 4; 4 |] in
  let dom = Lattice.Domain.create geom [| 2; 2; 1; 1 |] in
  let halo_ds =
    Halo_check.verify_schedule dom
      [
        Halo_check.Scatter;
        Halo_check.Exchange None;
        Halo_check.Stencil Halo_check.Full;
      ]
    @ Halo_check.verify_schedule dom
        [
          Halo_check.Scatter;
          Halo_check.Stencil Halo_check.Interior;
          Halo_check.Exchange None;
          Halo_check.Stencil Halo_check.Boundary;
        ]
    @ (* the fine-grained interleaving Dd_wilson.hop_overlapped runs:
         post all, interior while in flight, then per-face complete +
         boundary sub-stencils reading only completed faces *)
    Halo_check.verify_schedule dom
      [
        Halo_check.Scatter;
        Halo_check.Post None;
        Halo_check.Stencil Halo_check.Interior;
        Halo_check.Complete (Some [| 0 |]);
        Halo_check.Complete (Some [| 1 |]);
        Halo_check.Stencil_faces [| 0; 1 |];
        Halo_check.Complete (Some [| 2; 3 |]);
        Halo_check.Stencil_faces [| 0; 1; 2; 3 |];
        Halo_check.Complete (Some [| 4; 5; 6; 7 |]);
        Halo_check.Stencil Halo_check.Boundary;
      ]
    @ (* the transport dimension, used honestly: a double-buffered
         schedule whose write really races a post (the copy earns its
         keep — no HALO008/011/012), and a zero-copy schedule that
         completes before writing (no corruption window) *)
    Halo_check.verify_schedule ~transport:Machine.Transport.Double_buffered dom
      [
        Halo_check.Scatter;
        Halo_check.Post None;
        Halo_check.Write [ 0 ];
        Halo_check.Complete None;
        Halo_check.Exchange None;
        Halo_check.Stencil Halo_check.Full;
      ]
    @ Halo_check.verify_schedule ~transport:Machine.Transport.Zero_copy
        ~policy:
          { Machine.Policy.transfer = Machine.Policy.Zero_copy;
            granularity = Machine.Policy.Fine }
        dom
        [
          Halo_check.Scatter;
          Halo_check.Post None;
          Halo_check.Stencil Halo_check.Interior;
          Halo_check.Complete None;
          Halo_check.Stencil Halo_check.Boundary;
        ]
  in
  (* a live Comm run through scatter + exchange must audit clean *)
  let audit_ds =
    let comm = Vrank.Comm.create dom ~dof:24 in
    let global = F.create (Lattice.Geometry.volume geom * 24) in
    F.gaussian rng global;
    let fields = Vrank.Comm.create_fields comm in
    Vrank.Comm.scatter comm global fields;
    Vrank.Comm.halo_exchange comm fields;
    Halo_check.audit comm
  in
  (* the default workflow spec, in double and mixed precision *)
  let spec_ds =
    Spec_check.workflow_spec Core.Workflow.default_spec
    @ Spec_check.workflow_spec
        {
          Core.Workflow.default_spec with
          Core.Workflow.precision =
            Solver.Dwf_solve.Mixed Solver.Mixed.default_config;
        }
  in
  (* numeric: a gaussian field through the codec analysis, and an
     instrumented mixed solve against a clean SPD operator *)
  let numeric_ds =
    let n = 16 * 24 in
    let v = F.create n in
    F.gaussian rng v;
    let codec_ds = Numeric_check.half_blocks ~block:24 v in
    let apply (x : F.t) (y : F.t) =
      for i = 0 to n - 1 do
        Bigarray.Array1.unsafe_set y i
          ((2.5 +. (float_of_int (i mod 24) /. 100.))
          *. Bigarray.Array1.unsafe_get x i)
      done
    in
    let b = F.create n in
    F.gaussian rng b;
    codec_ds @ Numeric_check.probe_mixed_solve ~apply ~b ()
  in
  (* the launch plans the multicore kernel engine actually runs: the
     default-chunk BLAS-1 geometry and the Mobius slice launch, both
     with the deterministic ordered reduction *)
  let pool_ds =
    let pool = Util.Pool.get_default () in
    let d = Util.Pool.size pool in
    let n = 1 lsl 16 in
    Pool_check.verify_plans
      [
        Pool_check.plan ~kernel:"axpy" ~n ~domains:d
          ~chunk:(Util.Pool.default_chunk pool n) ();
        Pool_check.plan ~reduction:Pool_check.Ordered ~kernel:"norm2" ~n
          ~domains:d ~chunk:(Util.Pool.default_chunk pool n) ();
        Pool_check.plan ~kernel:"mobius_hop_slices" ~n:16 ~domains:1 ~chunk:1 ();
      ]
  in
  (* the fused BLAS-1 plans the ~fused solvers actually run: the CG
     tail kernels on the canonical reduction block, serial and on the
     default-pool geometry, operand roles as Cg.solve passes them
     (xpay_dot's q = r read/read repetition included — it must verify
     clean). Static plans only: live tuning here would make the
     standard suite timing-dependent. *)
  let fuse_ds =
    let pool = Util.Pool.get_default () in
    let d = Util.Pool.size pool in
    let n = 1 lsl 16 in
    let geometry =
      if d > 1 then Some (d, Util.Pool.default_chunk pool n) else None
    in
    let blk = Linalg.Field.reduce_block in
    Fuse_check.verify_plans
      [
        Fuse_check.plan ~kernel:"cg_update" ~n ~block:blk ?geometry
          ~buffers:
            [
              ("p", Fuse_check.Read);
              ("ap", Fuse_check.Read);
              ("x", Fuse_check.Update);
              ("r", Fuse_check.Update);
            ]
          ();
        Fuse_check.plan ~kernel:"xpay_dot" ~n ~block:blk ?geometry
          ~buffers:
            [
              ("r", Fuse_check.Read);
              ("p", Fuse_check.Update);
              ("r", Fuse_check.Read);  (* q = r: the free monitor *)
            ]
          ();
        Fuse_check.plan ~kernel:"axpy_norm2" ~n ~block:blk
          ~buffers:[ ("ap", Fuse_check.Read); ("r", Fuse_check.Update) ]
          ();
        Fuse_check.plan ~kernel:"caxpy_norm2" ~n ~block:blk
          ~buffers:[ ("v", Fuse_check.Read); ("s", Fuse_check.Update) ]
          ();
        (* the tail-fused hop: stencil dst written, tail xpay output
           and dot operand distinct — the clean twin of the
           fuse-tail-aliased fixture *)
        Fuse_check.plan ~kernel:"hop_tail" ~n ~block:blk
          ~buffers:
            [
              ("u", Fuse_check.Read);
              ("src", Fuse_check.Read);
              ("dst", Fuse_check.Update);
              ("out", Fuse_check.Update);
              ("q", Fuse_check.Read);
            ]
          ();
      ]
    @
    (* the batched multi-RHS launches the solve_multi path runs: a
       width-4 hop with correct masking bookkeeping and a batched CG
       tail mid-solve with one RHS already retired — both must verify
       clean (the seeded-defect twins live in Fixtures) *)
    Mrhs_check.verify_plans
      [
        Mrhs_check.plan ~kernel:"wilson_hop_multi" ~k:4 ~n ~block:blk
          ~tuned_k:4
          ~active:[| true; true; true; true |]
          ~converged:[| false; false; false; false |]
          ();
        Mrhs_check.plan ~kernel:"multi_cg_update" ~k:4 ~n ~block:blk
          ~active:[| true; false; true; true |]
          ~converged:[| false; true; false; false |]
          ();
      ]
  in
  (* every extractable solver/transport plan through the static
     analyzer — effects, windows, sweep pricing, precision flow. Clean
     since the stencil-tail fusion closed the PLAN005 gap: the fused
     CG plans execute exactly the 2 sweeps the model prices, so any
     diagnostic here (warnings included) is a regression. *)
  let plan_ds = Plan_check.catalog_diagnostics () in
  (* the compressed gauge-link executions the recon path runs: a
     reunitarized hot field audited at every codec, a correctly tuned
     recon12 launch with a freshly packed compressed halo, and an
     untuned recon8 launch — the clean twins of the recon-* fixtures *)
  let recon_ds =
    let g = Lattice.Gauge.random geom rng in
    Lattice.Gauge.reunitarize g;
    let v = Lattice.Gauge.max_unitarity_violation g in
    List.concat_map
      (fun c -> Recon_check.verify_gauge ~recon:c g)
      Linalg.Su3_codec.all
    @ Recon_check.verify_plans
        [
          Recon_check.plan ~kernel:"wilson_hop_recon"
            ~recon:Linalg.Su3_codec.Recon12
            ~tuned_recon:Linalg.Su3_codec.Recon12 ~max_violation:v
            ~gauge_epoch:5 ~halo_epoch:5 ~halo_compressed:true ();
          Recon_check.plan ~kernel:"wilson_hop_recon"
            ~recon:Linalg.Su3_codec.Recon8 ~max_violation:v ();
        ]
  in
  (* the deflated-solve path the ?deflate hooks run: a real Lanczos
     space on a small-eigenvalue SPD operator, audited live against
     the operator and the configuration hash it was built from, plus
     a correctly tuned static plan — the clean twins of the deflate-*
     fixtures. Must verify silent. *)
  let deflate_ds =
    let n = 96 in
    let diag =
      Array.init n (fun i ->
          if i < 4 then 0.01 *. float_of_int (i + 1)
          else 1. +. (float_of_int i /. float_of_int n))
    in
    let apply (x : F.t) (y : F.t) =
      for i = 0 to n - 1 do
        Bigarray.Array1.unsafe_set y i
          (diag.(i) *. Bigarray.Array1.unsafe_get x i)
      done
    in
    let lrng = Util.Rng.create (seed + 1) in
    let res =
      Solver.Lanczos.lowest ~tol:1e-8 ~rank:2 ~basis_size:10 ~apply ~n
        ~rng:lrng ()
    in
    let hash =
      let probe = F.create n in
      F.gaussian lrng probe;
      Solver.Deflate.field_hash probe
    in
    let space = Solver.Deflate.of_lanczos ~bound:1e-6 ~config_hash:hash res in
    Deflate_check.verify_space ~tuned_rank:2 ~config_hash:hash ~apply space
    @ Deflate_check.verify_plans
        [
          Deflate_check.plan ~kernel:"cg_deflate" ~rank:4 ~n:(1 lsl 16)
            ~space_hash:0x5eed ~config_hash:0x5eed ~ortho_drift:1e-14
            ~max_residual:1e-9 ~bound:1e-6 ~tuned_rank:4 ();
        ]
  in
  [
    ("campaign DAG (Jobman.Pipeline)", campaign_ds);
    ("halo schedules (Vrank.Comm)", halo_ds);
    ("halo runtime audit", audit_ds);
    ("workflow + solver specs", spec_ds);
    ("numeric sanitizer + half codec", numeric_ds);
    ("pool launch plans", pool_ds);
    ("fused kernel plans", fuse_ds);
    ("compressed gauge links (recon)", recon_ds);
    ("deflated solves (low-mode spaces)", deflate_ds);
    ("solver plans (static analyzer)", plan_ds);
  ]

(* Selftest: every seeded defect fixture must be detected. Returns
   (fixture, fired rule ids, detected?) rows. Warnings count as fired:
   some defect classes (wasted double-buffer copies, HALO012) are
   warnings by design, and a fixture must still prove they trigger. *)
let selftest () =
  List.map
    (fun (f : Fixtures.t) ->
      let ds = f.Fixtures.run () in
      let fired =
        List.sort_uniq compare
          (List.filter_map
             (fun (d : Diagnostic.t) ->
               match d.Diagnostic.severity with
               | Diagnostic.Error | Diagnostic.Warning -> Some d.Diagnostic.rule
               | Diagnostic.Info -> None)
             ds)
      in
      (f, fired, List.mem f.Fixtures.expect fired))
    Fixtures.all
