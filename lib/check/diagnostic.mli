(** The unified diagnostic type every checker pass reports through:
    severity + stable rule id + artifact location + message + fix
    hint. Rule id families: [CAMP*] campaign/DAG, [HALO*] halo
    exchange, [NUM*] numeric sanitizer, [SPEC*] spec validation. *)

type severity = Error | Warning | Info

type t = {
  severity : severity;
  rule : string;
  location : string;
  message : string;
  hint : string option;
}

val make : ?hint:string -> severity -> rule:string -> loc:string -> string -> t
val error : ?hint:string -> rule:string -> loc:string -> string -> t
val warning : ?hint:string -> rule:string -> loc:string -> string -> t
val info : ?hint:string -> rule:string -> loc:string -> string -> t

val severity_label : severity -> string
val is_error : t -> bool
val count_errors : t list -> int
val count_warnings : t list -> int
val has_errors : t list -> bool

val sort : t list -> t list
(** Errors first, then warnings, then info; by rule id within a
    severity; stable otherwise. *)

val to_string : t -> string
(** ["error[CAMP003] task 12: dependency cycle ... (hint: ...)"]. *)

type report = (string * t list) list
(** Pass name × its diagnostics. *)

val report_errors : report -> int
val report_warnings : report -> int
val summary : report -> string

val exit_code : report -> int
(** 1 when any pass reported an error, 0 otherwise. *)

val print_report : ?out:out_channel -> ?verbose:bool -> report -> unit
(** Per-pass listing ([verbose] also shows info-level findings) plus a
    summary line. *)
