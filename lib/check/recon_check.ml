(* Static checker for compressed gauge-link (reconstruct) executions
   (Linalg.Su3_codec / Lattice.Recon / Dirac.Wilson's packed stores and
   Vrank.Comm's compressed halo payloads). An execution is summarized
   as a [plan] — which kernel, the codec it streams links through, the
   worst source-link unitarity violation, the codec of the tuner's
   recorded winner, and the epoch bookkeeping of any compressed halo —
   and the pass verifies the contract the reconstruction rests on:

   RECON001  a source link violates unitarity beyond the codec's
             tolerance: Recon12 rebuilds row 2 as s·conj(row0 × row1)
             and Recon8 re-derives six of nine entries from
             unitarity, so a non-unitary link decodes to a different
             matrix than was stored — the stencil silently applies the
             wrong gauge field (Full18's tolerance is infinite: it
             copies bits)
   RECON002  the executed codec disagrees with the codec of the
             tuner's recorded winner: a full18 winner aliased onto a
             compressed launch (or vice versa) means the launch was
             never priced at this link-traffic point, so bench rows
             and the Perf_model recon traffic term
             (Machine.Perf_model.link_bytes_per_site_recon) do not
             describe what runs
   RECON003  a compressed halo face (or packed link store) built at an
             older gauge epoch than the live field: the wire delivered
             links that were since mutated (smearing, HMC update), so
             ghost links decode stale — the gauge-field twin of the
             halo data race Halo_check hunts on spinors *)

type plan = {
  kernel : string;  (* e.g. "wilson_hop_recon" *)
  recon : Linalg.Su3_codec.codec;  (* codec the execution streams *)
  max_violation : float;
      (* worst Frobenius unitarity violation over the source links
         (Lattice.Gauge.max_unitarity_violation) *)
  tuned_recon : Linalg.Su3_codec.codec option;
      (* codec of the tuner's recorded winner for this kernel and
         shape; [None]: no tuning record, RECON002 is skipped *)
  gauge_epoch : int;  (* write epoch of the live gauge field *)
  halo_epoch : int;
      (* gauge epoch at which the packed store / compressed halo was
         built; equal to [gauge_epoch] when freshly packed *)
  halo_compressed : bool;
      (* whether ghost links arrive through a compressed payload;
         false skips RECON003 (an uncompressed exchange re-reads the
         live field every post) *)
}

let rules =
  [
    ("RECON001", "source links must be unitary within the codec tolerance");
    ("RECON002", "executed codec must match the tuned winner's codec");
    ("RECON003", "compressed halo must be repacked after gauge mutation");
  ]

let plan ?tuned_recon ?(gauge_epoch = 0) ?(halo_epoch = 0)
    ?(halo_compressed = false) ~kernel ~recon ~max_violation () =
  {
    kernel;
    recon;
    max_violation;
    tuned_recon;
    gauge_epoch;
    halo_epoch;
    halo_compressed;
  }

let loc p =
  Printf.sprintf "%s[%s]" p.kernel (Linalg.Su3_codec.name p.recon)

let check_unitarity p =
  let tol = Linalg.Su3_codec.tolerance p.recon in
  if p.max_violation > tol then
    [
      Diagnostic.error ~rule:"RECON001" ~loc:(loc p)
        ~hint:
          "reunitarize the field (Lattice.Gauge.reunitarize) before \
           packing, or fall back to full18 for fields that must carry \
           non-unitary links"
        (Printf.sprintf
           "source link violates unitarity by %.3g where codec %s \
            tolerates %.3g: the reconstructed link is a different matrix \
            than was stored, so the stencil applies the wrong gauge field"
           p.max_violation
           (Linalg.Su3_codec.name p.recon)
           tol);
    ]
  else []

let check_tuned p =
  match p.tuned_recon with
  | None -> []
  | Some c when c = p.recon -> []
  | Some c ->
    [
      Diagnostic.error ~rule:"RECON002" ~loc:(loc p)
        ~hint:
          "key the tuner cache on the codec (Variants.tune_hop_recon puts \
           the codec in the label and the label-space hash in the \
           signature) and re-tune at this codec"
        (Printf.sprintf
           "execution streams %s under a tuner winner recorded for %s: \
            the launch was never priced at this link-traffic point, so \
            bench rows and the Perf_model recon term do not describe it"
           (Linalg.Su3_codec.name p.recon)
           (Linalg.Su3_codec.name c));
    ]

let check_halo p =
  if p.halo_compressed && p.halo_epoch < p.gauge_epoch then
    [
      Diagnostic.error ~rule:"RECON003" ~loc:(loc p)
        ~hint:
          "repack the link store and re-exchange compressed halo faces \
           after every gauge update (smearing, HMC step) — the packed \
           stream is a snapshot, not a view"
        (Printf.sprintf
           "compressed halo was packed at gauge epoch %d but the field is \
            at epoch %d: ghost links decode to mutated-away values — the \
            gauge twin of the stale-halo spinor race"
           p.halo_epoch p.gauge_epoch);
    ]
  else []

(* Direct gauge audit for RECON001: measure the field's worst
   unitarity violation against the codec's documented tolerance. *)
let verify_gauge ~recon gauge =
  let v = Lattice.Gauge.max_unitarity_violation gauge in
  check_unitarity
    {
      kernel = "gauge_audit";
      recon;
      max_violation = v;
      tuned_recon = None;
      gauge_epoch = 0;
      halo_epoch = 0;
      halo_compressed = false;
    }

let verify_plan p = check_unitarity p @ check_tuned p @ check_halo p
let verify_plans ps = List.concat_map verify_plan ps
