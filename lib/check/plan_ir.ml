(* Kernel-effect intermediate representation of a solve plan: the
   static artifact Plan_check verifies *without running a solve*. A
   plan is a vector length, a set of named buffers with storage
   precision tags (and optional abstract magnitude ranges for the
   precision-flow pass), and a step sequence — kernel launches with
   per-operand effects, halo post/complete windows, and half-codec
   quantize points. Plan_extract lifts the real front-ends (Cg.solve,
   Mixed.solve, Bicgstab.solve, Dwf_solve.solve, the Wilson/Mobius hop
   paths, Vrank.Comm transport schedules and the pooled Field/Fused
   launches) into this IR; the printer/parser pair below is exact
   (round-trip asserted by a qcheck property), so plans can be dumped
   by `neutron_check --plan-dump`, diffed, and re-linted offline. *)

type precision =
  | Double
  | Single
  | Half of int  (* floats per codec block *)
  | Su3 of Linalg.Su3_codec.codec
      (* compressed gauge-link store (Lattice.Recon): reconstructed in
         registers at the point of use, never quantized *)

type role = Read | Write | Update | Reduce
(* [Read]/[Write] are whole-buffer stream effects; [Update] is a
   read-modify-write; [Reduce] names the scalar a reduction kernel
   produces (a register/allreduce value, not a vector buffer). *)

type buffer = {
  bname : string;
  prec : precision;
  range : (float * float) option;
      (* abstract magnitude interval [lo, hi] of the data this buffer
         carries at plan entry — the seed of the precision-flow pass;
         [None] = unknown (the pass starts from the other buffers) *)
}

type kernel = {
  kname : string;
  args : (string * role) list;  (* operand name -> effect, call order *)
  geometry : (int * int) option;  (* pooled (domains, chunk); None = serial *)
  partition : (int * int) array option;
      (* explicit chunk partition when the launch hand-schedules one;
         [None] with a geometry means the canonical [Util.Pool.chunks] *)
  block : int option;  (* reduction block for Reduce-bearing kernels *)
  sweeps : int;
      (* full-vector memory sweeps this launch costs; 0 for kernels
         whose traffic the model prices elsewhere (the stencil) *)
  coeff : float;
      (* static bound on the scalar coefficient magnitude the kernel
         applies (alpha/beta/omega); 1.0 when the kernel has none —
         the precision-flow pass scales ranges by it *)
}

type step =
  | Launch of kernel
  | Post of { pbuf : string; faces : int array }
      (* the named buffer's listed faces go in flight (a zero-copy
         transport aliases the payload until the matching Complete) *)
  | Complete of { cbuf : string; faces : int array }
  | Quantize of { qbuf : string; qblock : int }
      (* half-codec encode/decode point: the buffer's contents are
         forced through int16 mantissas against a float32 block norm *)

type plan = {
  pname : string;
  n : int;  (* vector length in floats *)
  transport : Machine.Transport.t;
  fusion : bool option;
      (* when the plan is a CG BLAS-1 tail, the fusion mode
         [Machine.Perf_model.blas1_sweeps] prices it at — the
         consistency pass diffs the IR sweep count against the model;
         [None] = the plan is not model-priced *)
  buffers : buffer list;
  steps : step list;
}

(* ---- constructors ---- *)

let buffer ?range ~prec bname = { bname; prec; range }

let kernel ?geometry ?partition ?block ?(sweeps = 1) ?(coeff = 1.0) ~args kname
    =
  { kname; args; geometry; partition; block; sweeps; coeff }

let plan ?(transport = Machine.Transport.Staged) ?fusion ~n ~buffers ~steps
    pname =
  { pname; n; transport; fusion; buffers; steps }

let find_buffer p name = List.find_opt (fun b -> b.bname = name) p.buffers

let launches p =
  List.filter_map (function Launch k -> Some k | _ -> None) p.steps

(* ---- printer (exact, parseable) ----
   One step per line; floats in hex (%h) so the round-trip is
   bit-exact. Names must match [a-zA-Z0-9_.+-]+ (no spaces, ':' or
   ','), which every extracted plan satisfies and the parser enforces. *)

let name_ok s =
  s <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = '.' || c = '+' || c = '-')
       s

let string_of_precision = function
  | Double -> "double"
  | Single -> "single"
  | Half b -> Printf.sprintf "half:%d" b
  | Su3 c -> Printf.sprintf "su3:%s" (Linalg.Su3_codec.name c)

let string_of_role = function
  | Read -> "read"
  | Write -> "write"
  | Update -> "update"
  | Reduce -> "reduce"

let string_of_transport = function
  | Machine.Transport.Staged -> "staged"
  | Machine.Transport.Zero_copy -> "zero_copy"
  | Machine.Transport.Double_buffered -> "double_buffered"

let faces_str faces =
  String.concat "," (Array.to_list (Array.map string_of_int faces))

let string_of_kernel k =
  let b = Buffer.create 64 in
  Buffer.add_string b (Printf.sprintf "launch %s sweeps=%d" k.kname k.sweeps);
  if k.coeff <> 1.0 then
    Buffer.add_string b (Printf.sprintf " coeff=%h" k.coeff);
  (match k.block with
  | Some blk -> Buffer.add_string b (Printf.sprintf " block=%d" blk)
  | None -> ());
  (match k.geometry with
  | Some (d, c) -> Buffer.add_string b (Printf.sprintf " geom=d%d_c%d" d c)
  | None -> ());
  (match k.partition with
  | Some parts ->
    Buffer.add_string b " partition=";
    Buffer.add_string b
      (String.concat ","
         (Array.to_list
            (Array.map (fun (lo, hi) -> Printf.sprintf "%d-%d" lo hi) parts)))
  | None -> ());
  Buffer.add_string b " args=";
  Buffer.add_string b
    (String.concat ","
       (List.map
          (fun (name, role) -> name ^ ":" ^ string_of_role role)
          k.args));
  Buffer.contents b

let string_of_step = function
  | Launch k -> string_of_kernel k
  | Post { pbuf; faces } ->
    Printf.sprintf "post %s faces=%s" pbuf (faces_str faces)
  | Complete { cbuf; faces } ->
    Printf.sprintf "complete %s faces=%s" cbuf (faces_str faces)
  | Quantize { qbuf; qblock } ->
    Printf.sprintf "quantize %s block=%d" qbuf qblock

let to_string (p : plan) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "plan %s n=%d transport=%s" p.pname p.n
       (string_of_transport p.transport));
  (match p.fusion with
  | Some fused ->
    Buffer.add_string b
      (Printf.sprintf " fusion=%s" (if fused then "fused" else "unfused"))
  | None -> ());
  Buffer.add_char b '\n';
  List.iter
    (fun bf ->
      Buffer.add_string b
        (Printf.sprintf "buffer %s %s" bf.bname (string_of_precision bf.prec));
      (match bf.range with
      | Some (lo, hi) -> Buffer.add_string b (Printf.sprintf " range=%h:%h" lo hi)
      | None -> ());
      Buffer.add_char b '\n')
    p.buffers;
  List.iter
    (fun s ->
      Buffer.add_string b (string_of_step s);
      Buffer.add_char b '\n')
    p.steps;
  Buffer.add_string b "end\n";
  Buffer.contents b

(* ---- human-oriented pretty printer (not parseable) ---- *)

let pretty (p : plan) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "plan %-16s n=%d  transport=%s%s\n" p.pname p.n
       (string_of_transport p.transport)
       (match p.fusion with
       | Some true -> "  [priced fused]"
       | Some false -> "  [priced unfused]"
       | None -> ""));
  Buffer.add_string b
    (Printf.sprintf "  buffers: %s\n"
       (String.concat ", "
          (List.map
             (fun bf ->
               Printf.sprintf "%s:%s%s" bf.bname
                 (string_of_precision bf.prec)
                 (match bf.range with
                 | Some (lo, hi) -> Printf.sprintf "[%g,%g]" lo hi
                 | None -> ""))
             p.buffers)));
  List.iteri
    (fun i s ->
      Buffer.add_string b
        (Printf.sprintf "  %2d. %s\n" (i + 1)
           (match s with
           | Launch k ->
             Printf.sprintf "%-12s %s%s  (%d sweep%s)" k.kname
               (String.concat " "
                  (List.map
                     (fun (name, role) ->
                       name ^ ":" ^ string_of_role role)
                     k.args))
               (match k.geometry with
               | Some (d, c) -> Printf.sprintf "  pooled d%d c%d" d c
               | None -> "")
               k.sweeps
               (if k.sweeps = 1 then "" else "s")
           | Post { pbuf; faces } ->
             Printf.sprintf "post     %s faces {%s}" pbuf (faces_str faces)
           | Complete { cbuf; faces } ->
             Printf.sprintf "complete %s faces {%s}" cbuf (faces_str faces)
           | Quantize { qbuf; qblock } ->
             Printf.sprintf "quantize %s (half codec, block %d)" qbuf qblock)))
    p.steps;
  Buffer.contents b

(* ---- parser ---- *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let parse_int what s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> fail "%s: expected an integer, got %S" what s

let parse_float what s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail "%s: expected a float, got %S" what s

let parse_precision s =
  match String.split_on_char ':' s with
  | [ "double" ] -> Double
  | [ "single" ] -> Single
  | [ "half"; b ] -> Half (parse_int "half block" b)
  | [ "su3"; c ] -> (
    match Linalg.Su3_codec.of_name c with
    | Some codec -> Su3 codec
    | None -> fail "bad su3 codec %S" c)
  | _ -> fail "bad precision %S" s

let parse_role = function
  | "read" -> Read
  | "write" -> Write
  | "update" -> Update
  | "reduce" -> Reduce
  | s -> fail "bad role %S" s

let parse_transport = function
  | "staged" -> Machine.Transport.Staged
  | "zero_copy" -> Machine.Transport.Zero_copy
  | "double_buffered" -> Machine.Transport.Double_buffered
  | s -> fail "bad transport %S" s

let parse_faces s =
  if s = "" then [||]
  else
    Array.of_list
      (List.map (parse_int "face id") (String.split_on_char ',' s))

(* "key=value" tokens after the positional head of a line. *)
let kv tok =
  match String.index_opt tok '=' with
  | Some i ->
    (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))
  | None -> fail "expected key=value, got %S" tok

let parse_args s =
  if s = "" then []
  else
    List.map
      (fun pair ->
        match String.split_on_char ':' pair with
        | [ name; role ] when name_ok name -> (name, parse_role role)
        | _ -> fail "bad arg %S" pair)
      (String.split_on_char ',' s)

let parse_partition s =
  if s = "" then [||]
  else
    Array.of_list
      (List.map
         (fun pair ->
           match String.split_on_char '-' pair with
           | [ lo; hi ] ->
             (parse_int "partition lo" lo, parse_int "partition hi" hi)
           | _ -> fail "bad partition range %S" pair)
         (String.split_on_char ',' s))

let parse_geometry s =
  (* "d<domains>_c<chunk>" *)
  match String.split_on_char '_' s with
  | [ d; c ]
    when String.length d > 1 && d.[0] = 'd' && String.length c > 1
         && c.[0] = 'c' ->
    ( parse_int "geometry domains" (String.sub d 1 (String.length d - 1)),
      parse_int "geometry chunk" (String.sub c 1 (String.length c - 1)) )
  | _ -> fail "bad geometry %S" s

let parse_kernel = function
  | name :: rest when name_ok name ->
    let sweeps = ref 1 and coeff = ref 1.0 in
    let block = ref None and geometry = ref None in
    let partition = ref None and args = ref [] in
    List.iter
      (fun tok ->
        match kv tok with
        | "sweeps", v -> sweeps := parse_int "sweeps" v
        | "coeff", v -> coeff := parse_float "coeff" v
        | "block", v -> block := Some (parse_int "block" v)
        | "geom", v -> geometry := Some (parse_geometry v)
        | "partition", v -> partition := Some (parse_partition v)
        | "args", v -> args := parse_args v
        | k, _ -> fail "unknown launch field %S" k)
      rest;
    {
      kname = name;
      args = !args;
      geometry = !geometry;
      partition = !partition;
      block = !block;
      sweeps = !sweeps;
      coeff = !coeff;
    }
  | toks -> fail "bad launch line %S" (String.concat " " toks)

let split_ws line =
  List.filter (fun s -> s <> "") (String.split_on_char ' ' line)

let of_string s =
  try
    let lines =
      List.filter
        (fun l -> String.trim l <> "")
        (String.split_on_char '\n' s)
    in
    match lines with
    | [] -> Error "empty plan text"
    | head :: rest ->
      let pname, n, transport, fusion =
        match split_ws head with
        | "plan" :: name :: fields when name_ok name ->
          let n = ref (-1) and transport = ref Machine.Transport.Staged in
          let fusion = ref None in
          List.iter
            (fun tok ->
              match kv tok with
              | "n", v -> n := parse_int "n" v
              | "transport", v -> transport := parse_transport v
              | "fusion", v ->
                fusion :=
                  Some
                    (match v with
                    | "fused" -> true
                    | "unfused" -> false
                    | _ -> fail "bad fusion %S" v)
              | k, _ -> fail "unknown plan field %S" k)
            fields;
          if !n < 0 then fail "plan line missing n=";
          (name, !n, !transport, !fusion)
        | _ -> fail "expected 'plan <name> n=... ...', got %S" head
      in
      let buffers = ref [] and steps = ref [] in
      let ended = ref false in
      List.iter
        (fun line ->
          if !ended then fail "content after 'end'"
          else
            match split_ws line with
            | [ "end" ] -> ended := true
            | "buffer" :: name :: prec :: rest when name_ok name ->
              let range =
                match rest with
                | [] -> None
                | [ tok ] -> (
                  match kv tok with
                  | "range", v -> (
                    match String.split_on_char ':' v with
                    | [ lo; hi ] ->
                      Some (parse_float "range lo" lo, parse_float "range hi" hi)
                    | _ -> fail "bad range %S" v)
                  | k, _ -> fail "unknown buffer field %S" k)
                | _ -> fail "bad buffer line %S" line
              in
              buffers :=
                { bname = name; prec = parse_precision prec; range } :: !buffers
            | "launch" :: rest -> steps := Launch (parse_kernel rest) :: !steps
            | [ "post"; name; faces ] when name_ok name -> (
              match kv faces with
              | "faces", v -> steps := Post { pbuf = name; faces = parse_faces v } :: !steps
              | k, _ -> fail "unknown post field %S" k)
            | [ "complete"; name; faces ] when name_ok name -> (
              match kv faces with
              | "faces", v ->
                steps := Complete { cbuf = name; faces = parse_faces v } :: !steps
              | k, _ -> fail "unknown complete field %S" k)
            | [ "quantize"; name; block ] when name_ok name -> (
              match kv block with
              | "block", v ->
                steps := Quantize { qbuf = name; qblock = parse_int "block" v } :: !steps
              | k, _ -> fail "unknown quantize field %S" k)
            | _ -> fail "unparseable line %S" line)
        rest;
      if not !ended then fail "missing 'end'";
      Ok
        {
          pname;
          n;
          transport;
          fusion;
          buffers = List.rev !buffers;
          steps = List.rev !steps;
        }
  with Parse_error msg -> Error msg
