(* Static checker for fused BLAS-1 kernel plans (Linalg.Fused). A
   fused launch is summarized as a [plan] — which fused kernel, the
   vector length, the reduction block its single-pass term accumulates
   over, the pool geometry it will run on, the operand roles — and the
   pass verifies the contract the fused≡unfused bit-identity and the
   autotuner's bookkeeping rest on:

   FUSE001  the fused reduction accumulates over a block size other
            than the canonical Field.reduce_block: partials associate
            differently from the standalone norm2/dot_re, so the fused
            result silently diverges from the unfused one in the last
            bits — exactly the drift the fusion layer promises away
   FUSE002  an output (read-modify-write) operand aliases an operand
            of a different role: a fused kernel caches operands in
            registers across the update+reduce pass, so the aliased
            reader observes half-updated data (the host fallback
            happens to agree element-wise; an accelerator build does
            not)
   FUSE003  the plan's pool geometry disagrees with the geometry the
            tuner recorded for this kernel and shape: someone is
            running a fusion plan the autotuner never priced, so the
            bench rows and the Perf_model traffic term no longer
            describe the launch *)

type role = Read | Update

type plan = {
  kernel : string;  (* fused kernel name, e.g. "cg_update" *)
  n : int;  (* vector length in floats *)
  block : int;  (* reduction block the fused term accumulates over *)
  geometry : (int * int) option;  (* (domains, chunk); None = serial *)
  buffers : (string * role) list;  (* operand name -> role *)
  tuned : (int * int) option option;
      (* [Some g]: the tuner's recorded winner geometry for this
         kernel and shape ([None] = the serial plan won); [None]: no
         tuning record to compare against, FUSE003 is skipped *)
}

let rules =
  [
    ( "FUSE001",
      "fused reduction block diverges from the canonical unfused association" );
    ("FUSE002", "output operand of a fused kernel aliases a different role");
    ("FUSE003", "fusion plan geometry inconsistent with the tuned winner");
  ]

let plan ?geometry ?tuned ~kernel ~n ~block ~buffers () =
  { kernel; n; block; geometry; buffers; tuned }

let geom_str = function
  | None -> "serial"
  | Some (d, c) -> Printf.sprintf "d%d_c%d" d c

let loc p =
  Printf.sprintf "%s[n=%d,block=%d,%s]" p.kernel p.n p.block
    (geom_str p.geometry)

let check_association p =
  if p.block <> Linalg.Field.reduce_block then
    [
      Diagnostic.error ~rule:"FUSE001" ~loc:(loc p)
        ~hint:
          (Printf.sprintf
             "fold through Field.block_fold with ~block:Field.reduce_block \
              (%d floats) — the association of the standalone reductions"
             Linalg.Field.reduce_block)
        (Printf.sprintf
           "fused reduction accumulates %d-float blocks where the unfused \
            kernels accumulate %d: partials associate differently and the \
            fused result is not bit-identical to the unfused sequence"
           p.block Linalg.Field.reduce_block);
    ]
  else []

(* An Update operand must not share a buffer with any *other* operand
   position: another reader sees half-updated data mid-pass, a second
   writer races it. Read/Read repetition is fine (and load-bearing:
   xpay_dot's p·r monitor passes r as both x and q). *)
let check_aliasing p =
  let arr = Array.of_list p.buffers in
  let ds = ref [] in
  Array.iteri
    (fun i (name_i, role_i) ->
      if role_i = Update then
        Array.iteri
          (fun j (name_j, role_j) ->
            if j > i && name_i = name_j then
              let what =
                if role_j = Update then "a second output operand"
                else "a read operand"
              in
              ds :=
                Diagnostic.error ~rule:"FUSE002" ~loc:(loc p)
                  ~hint:
                    "give the fused kernel distinct buffers per role; the \
                     runtime guard (Invalid_argument) only catches physical \
                     equality"
                  (Printf.sprintf
                     "output operand %S aliases %s: the fused single pass \
                      updates it while the other role still reads or writes \
                      it"
                     name_i what)
                :: !ds)
          arr)
    arr;
  (* symmetric case: a later Update aliasing an earlier Read *)
  Array.iteri
    (fun i (name_i, role_i) ->
      if role_i = Read then
        Array.iteri
          (fun j (name_j, role_j) ->
            if j > i && role_j = Update && name_i = name_j then
              ds :=
                Diagnostic.error ~rule:"FUSE002" ~loc:(loc p)
                  ~hint:
                    "give the fused kernel distinct buffers per role; the \
                     runtime guard (Invalid_argument) only catches physical \
                     equality"
                  (Printf.sprintf
                     "output operand %S aliases a read operand: the fused \
                      single pass updates it while the other role still \
                      reads it"
                     name_j)
                :: !ds)
          arr)
    arr;
  List.rev !ds

let check_tuned p =
  match p.tuned with
  | None -> []
  | Some tuned when tuned = p.geometry -> []
  | Some tuned ->
    [
      Diagnostic.error ~rule:"FUSE003" ~loc:(loc p)
        ~hint:
          "run the geometry the tuner picked for this kernel and shape (or \
           re-tune with the new shape in the cache signature)"
        (Printf.sprintf
           "fusion plan runs geometry %s but the tuner's winner for this \
            shape is %s: the launch was never priced, so bench rows and the \
            Perf_model traffic term do not describe it"
           (geom_str p.geometry) (geom_str tuned));
    ]

let verify_plan p = check_association p @ check_aliasing p @ check_tuned p
let verify_plans ps = List.concat_map verify_plan ps
