(** Campaign/DAG verifier for [Jobman.Pipeline] task graphs: duplicate
    ids, dangling/duplicate dependencies, cycles, resource
    infeasibility against an allocation width, starvation taint, and a
    dynamic lost-wakeup/deadlock replay through the DES scheduler.
    Rule ids [CAMP001]–[CAMP009]. *)

val rules : (string * string) list
(** Rule id → one-line description. *)

val verify : ?n_nodes:int -> Jobman.Pipeline.task list -> Diagnostic.t list
(** Static passes always run; [n_nodes] additionally enables the
    resource-infeasibility rule (CAMP005) and, when the graph is
    statically clean, the DES deadlock replay (CAMP009). *)
