(* Static checker for low-mode deflation executions (Solver.Lanczos /
   Solver.Deflate threaded through Cg.solve / Cg.solve_multi /
   Mixed.solve). A deflated solve is summarized as a [plan] — which
   solver kernel, the executed rank, the hash of the configuration the
   space was built from vs the live one, the basis's measured
   orthonormality drift and worst eigen-residual against the bound it
   was built to, and the rank of the tuner's recorded winner — and the
   pass verifies the contract a deflated guess rests on:

   DEF001  the space was built from a different gauge configuration
           than the one being solved: a stale basis is not a low-mode
           space of the live operator, so the "deflated" guess
           silently degrades to noise (the solve still converges —
           slower — which is exactly why this never trips a residual
           check on its own)
   DEF002  the basis has drifted beyond the bound it was built to:
           non-orthonormal vectors double-count modes in the Galerkin
           coefficients, and a large |A v − λ v| means the stored
           Ritz value misprices its mode's contribution 1/λ
   DEF003  the executed rank disagrees with the tuner's recorded
           winner: the setup-vs-iteration trade was priced at another
           rank, so the bench rows and the Perf_model amortization
           (deflation_setup_flops / deflation_break_even_solves) do
           not describe what runs *)

type plan = {
  kernel : string;  (* deflated solver kernel, e.g. "cg_deflate" *)
  rank : int;  (* executed deflation rank *)
  n : int;  (* vector length in floats *)
  space_hash : int;  (* configuration hash the space was built from *)
  config_hash : int;  (* live configuration hash *)
  ortho_drift : float;  (* measured max |v_i·v_j − δ_ij| *)
  max_residual : float;  (* measured worst |A v − λ v| over the basis *)
  bound : float;  (* the drift/residual bound the space was built to *)
  tuned_rank : int option;
      (* rank of the tuner's recorded winner for this kernel and
         shape; [None]: no tuning record, DEF003 is skipped *)
}

let rules =
  [
    ("DEF001", "deflation space is stale against the live gauge configuration");
    ("DEF002", "deflation basis drifted beyond its orthonormality/residual bound");
    ("DEF003", "deflated plan aliases a tuner winner of another rank");
  ]

let plan ?tuned_rank ~kernel ~rank ~n ~space_hash ~config_hash ~ortho_drift
    ~max_residual ~bound () =
  {
    kernel;
    rank;
    n;
    space_hash;
    config_hash;
    ortho_drift;
    max_residual;
    bound;
    tuned_rank;
  }

let loc p = Printf.sprintf "%s[rank=%d,n=%d]" p.kernel p.rank p.n

let check_stale p =
  if p.space_hash = p.config_hash then []
  else
    [
      Diagnostic.error ~rule:"DEF001" ~loc:(loc p)
        ~hint:
          "rebuild the space on the live configuration (Lanczos.lowest, \
           warm-started from the previous basis) or key it by \
           Deflate.gauge_hash of the links it was computed from"
        (Printf.sprintf
           "deflation space was built from configuration %#x but the solve \
            runs on %#x: a stale basis is not a low-mode space of the live \
            operator, so the deflated guess silently degrades to noise"
           p.space_hash p.config_hash);
    ]

let check_drift p =
  let bad what value =
    Diagnostic.error ~rule:"DEF002" ~loc:(loc p)
      ~hint:
        "tighten Lanczos.lowest's tol (the space's bound is its build \
         tolerance) or re-orthonormalize before reuse — a drifted basis \
         double-counts modes in the Galerkin coefficients"
      (Printf.sprintf
         "deflation basis %s is %.3e against the %.3e bound the space was \
          built to: the stored Ritz data misprices the low-mode correction"
         what value p.bound)
  in
  (if p.ortho_drift > p.bound then
     [ bad "orthonormality drift max |v_i·v_j − δ_ij|" p.ortho_drift ]
   else [])
  @
  if p.max_residual > p.bound then
    [ bad "eigen-residual max |A v − λ v|" p.max_residual ]
  else []

let check_tuned p =
  match p.tuned_rank with
  | None -> []
  | Some rt when rt = p.rank -> []
  | Some rt ->
    [
      Diagnostic.error ~rule:"DEF003" ~loc:(loc p)
        ~hint:
          "key the tuner cache on the rank (Variants.tune_deflation puts \
           the rank in the label and the solve count in the signature) and \
           re-tune at this rank"
        (Printf.sprintf
           "deflated plan of rank %d runs under a tuner winner recorded for \
            rank %d: the setup-vs-iteration trade was never priced at this \
            rank, so bench rows and the Perf_model amortization do not \
            describe it"
           p.rank rt);
    ]

let verify_plan p = check_stale p @ check_drift p @ check_tuned p
let verify_plans ps = List.concat_map verify_plan ps

(* Live audit: measure a real space against a live operator and
   configuration hash, then verify the resulting plan. The drift and
   residual are computed here (Deflate.ortho_drift / max_residual), so
   a caller cannot accidentally report stale audit numbers. *)
let verify_space ?tuned_rank ?(kernel = "cg_deflate") ~config_hash ~apply
    (d : Solver.Deflate.t) =
  let basis = Solver.Deflate.basis d in
  verify_plan
    (plan ?tuned_rank ~kernel ~rank:(Solver.Deflate.rank d)
       ~n:(Linalg.Field.length basis.(0))
       ~space_hash:(Solver.Deflate.config_hash d)
       ~config_hash
       ~ortho_drift:(Solver.Deflate.ortho_drift d)
       ~max_residual:(Solver.Deflate.max_residual d ~apply)
       ~bound:(Solver.Deflate.bound d) ())
