(** Spec validator for [Core.Workflow] specs and mixed-precision
    solver configurations: geometry structure, parity, physics
    parameter ranges, run counts, tolerance ordering against the
    double- and half-precision noise floors, block divisibility. Rule
    ids [SPEC001]–[SPEC008]. *)

val rules : (string * string) list

val half_noise_floor : float
(** Relative resolution of the int16 mantissa, 1/32767. *)

val double_noise_floor : float

val workflow_spec : Core.Workflow.spec -> Diagnostic.t list

val mixed_config : n:int -> Solver.Mixed.config -> Diagnostic.t list
(** [n] is the vector length the inner solve runs on (the
    half-checkerboard 5D field). *)
