(* Numeric sanitizer: the checker arm of Field.Sanitize plus static
   range analysis of the half fixed-point block codec. The paper's
   inner solver stores fields as int16 mantissas against a float32
   per-block norm; a block whose dynamic range exceeds the 15
   representable bits — or whose norm falls outside float32 — is
   silently destroyed by [quantize]. This pass finds such blocks
   before the codec does, and converts runtime NaN/Inf traps from the
   instrumented BLAS-1 kernels into diagnostics. *)

module F = Linalg.Field

let rules =
  [
    ("NUM001", "NaN present or produced in a kernel");
    ("NUM002", "Inf present or produced in a kernel");
    ("NUM003", "block dynamic range exceeds representable bits (values quantize to zero)");
    ("NUM004", "block norm overflows float32 storage");
    ("NUM005", "block norm underflows float32 (block decodes to zeros)");
    ("NUM006", "instrumented solve aborted");
  ]

let float32_max = 3.4028234e38
let float32_min_normal = 1.1754944e-38

let classify_rule x = if Float.is_nan x then "NUM001" else "NUM002"

let max_reported = 16

(* Scan a vector for non-finite entries. *)
let check_finite ~what (v : F.t) =
  let ds = ref [] in
  let seen = ref 0 in
  for i = 0 to F.length v - 1 do
    let x = Bigarray.Array1.unsafe_get v i in
    if not (Float.is_finite x) then begin
      incr seen;
      if !seen <= max_reported then
        ds :=
          Diagnostic.error ~rule:(classify_rule x)
            ~loc:(Printf.sprintf "%s[%d]" what i)
            (Printf.sprintf "non-finite value %h" x)
            ~hint:"trace the producing kernel with Field.Sanitize"
          :: !ds
    end
  done;
  if !seen > max_reported then
    ds :=
      Diagnostic.info ~rule:"NUM001" ~loc:what
        (Printf.sprintf "%d further non-finite entries suppressed"
           (!seen - max_reported))
      :: !ds;
  Diagnostic.sort (List.rev !ds)

(* Static range analysis of one field against the half codec's block
   structure: per block, the ratio between the largest and smallest
   nonzero magnitudes must stay within the int16 mantissa (values
   below max/(2·max_q) round to zero), and the block max-norm must be
   representable in float32. *)
let half_blocks ~block (v : F.t) =
  let n = F.length v in
  if block <= 0 || n mod block <> 0 then
    [
      Diagnostic.error ~rule:"NUM003" ~loc:"codec"
        (Printf.sprintf "block %d does not divide the vector length %d" block n)
        ~hint:"choose a block that tiles the field (24 = one site)";
    ]
  else begin
    let ds = ref [] in
    let add d = ds := d :: !ds in
    let flagged = ref 0 in
    let loc b = Printf.sprintf "block %d (floats %d..%d)" b (b * block) (((b + 1) * block) - 1) in
    for b = 0 to (n / block) - 1 do
      let base = b * block in
      let max_abs = ref 0. in
      let finite = ref true in
      for i = 0 to block - 1 do
        let x = Bigarray.Array1.unsafe_get v (base + i) in
        if not (Float.is_finite x) then finite := false;
        let a = abs_float x in
        if a > !max_abs then max_abs := a
      done;
      if not !finite then begin
        incr flagged;
        if !flagged <= max_reported then
          add
            (Diagnostic.error ~rule:"NUM004" ~loc:(loc b)
               "non-finite value poisons the block norm"
               ~hint:"the whole block decodes as garbage")
      end
      else if !max_abs > float32_max then begin
        incr flagged;
        if !flagged <= max_reported then
          add
            (Diagnostic.error ~rule:"NUM004" ~loc:(loc b)
               (Printf.sprintf "block max %g overflows the float32 norm" !max_abs)
               ~hint:"rescale the field before quantizing")
      end
      else if !max_abs > 0. && !max_abs < float32_min_normal *. 10. then begin
        incr flagged;
        if !flagged <= max_reported then
          add
            (Diagnostic.error ~rule:"NUM005" ~loc:(loc b)
               (Printf.sprintf
                  "block max %g underflows the float32 norm; the block \
                   decodes to zeros"
                  !max_abs)
               ~hint:"rescale the field before quantizing")
      end
      else if !max_abs > 0. then begin
        (* sub-resolution census: elements that round to mantissa 0 *)
        let floor_ = !max_abs /. (2. *. F.Half.max_q) in
        let lost = ref 0 and nonzero = ref 0 in
        for i = 0 to block - 1 do
          let a = abs_float (Bigarray.Array1.unsafe_get v (base + i)) in
          if a > 0. then begin
            incr nonzero;
            if a < floor_ then incr lost
          end
        done;
        if !nonzero > 0 then begin
          let frac = float_of_int !lost /. float_of_int !nonzero in
          if frac >= 0.5 then begin
            incr flagged;
            if !flagged <= max_reported then
              add
                (Diagnostic.error ~rule:"NUM003" ~loc:(loc b)
                   (Printf.sprintf
                      "dynamic range exceeds representable bits: %d/%d \
                       nonzero values quantize to zero"
                      !lost !nonzero)
                   ~hint:
                     "shrink the block so fewer floats share one norm, or \
                      rescale the data")
          end
          else if frac >= 0.25 then begin
            incr flagged;
            if !flagged <= max_reported then
              add
                (Diagnostic.warning ~rule:"NUM003" ~loc:(loc b)
                   (Printf.sprintf "%d/%d nonzero values quantize to zero"
                      !lost !nonzero))
          end
        end
      end
    done;
    if !flagged > max_reported then
      add
        (Diagnostic.info ~rule:"NUM003" ~loc:"codec"
           (Printf.sprintf "%d further flagged blocks suppressed"
              (!flagged - max_reported)));
    Diagnostic.sort (List.rev !ds)
  end

(* Run [f] with the instrumented Field kernels recording (not raising)
   and convert every trap into a diagnostic. *)
let sanitized ~what f =
  let v = F.Sanitize.scoped ~raise_on_trap:false f in
  (* one diagnostic per (kernel, rule): the first trap plus a count —
     a poisoned operator otherwise floods every later kernel call *)
  let order = ref [] and by_kernel = Hashtbl.create 8 in
  List.iter
    (fun (kernel, index, value) ->
      let rule = classify_rule value in
      let key = (kernel, rule) in
      match Hashtbl.find_opt by_kernel key with
      | Some (first_index, first_value, count) ->
        Hashtbl.replace by_kernel key (first_index, first_value, count + 1)
      | None ->
        Hashtbl.add by_kernel key (index, value, 1);
        order := key :: !order)
    (List.rev !F.Sanitize.recorded);
  let ds =
    List.rev_map
      (fun ((kernel, rule) as key) ->
        let index, value, count = Hashtbl.find by_kernel key in
        Diagnostic.error ~rule
          ~loc:
            (if index < 0 then Printf.sprintf "%s: %s" what kernel
             else Printf.sprintf "%s: %s[%d]" what kernel index)
          (Printf.sprintf "kernel produced non-finite value %h%s" value
             (if count > 1 then Printf.sprintf " (%d traps in this kernel)" count
              else ""))
          ~hint:"first offending kernel listed; upstream data or operator is bad")
      !order
  in
  let recorded = List.length !F.Sanitize.recorded in
  let ds =
    if !F.Sanitize.trap_count > recorded then
      Diagnostic.info ~rule:"NUM001" ~loc:what
        (Printf.sprintf "%d further traps unrecorded"
           (!F.Sanitize.trap_count - recorded))
      :: ds
    else ds
  in
  (v, Diagnostic.sort ds)

(* Instrumented mixed-precision solve: run the double-half CG with the
   sanitizer armed, trapping the first kernel that manufactures a
   NaN/Inf (e.g. an operator with a poisoned gauge link). *)
let probe_mixed_solve ?(config = Solver.Mixed.default_config) ~apply ~(b : F.t) () =
  try
    let _, ds =
      sanitized ~what:"mixed solve" (fun () ->
          Solver.Mixed.solve ~config ~apply ~b ~flops_per_apply:0. ())
    in
    ds
  with Invalid_argument msg ->
    [ Diagnostic.error ~rule:"NUM006" ~loc:"mixed solve" msg ]
