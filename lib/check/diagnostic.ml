(* The unified diagnostic currency of the checker: every pass (DAG
   verifier, halo race detector, numeric sanitizer, spec validator)
   reports findings as values of this one type, so the CLI driver,
   tests and CI alias can aggregate, render and gate on them
   uniformly. *)

type severity = Error | Warning | Info

type t = {
  severity : severity;
  rule : string;  (* stable rule id, e.g. "CAMP003" *)
  location : string;  (* artifact coordinates, e.g. "task 17", "rank 3 face x-" *)
  message : string;
  hint : string option;  (* how to fix it *)
}

let make ?hint severity ~rule ~loc message =
  { severity; rule; location = loc; message; hint }

let error ?hint ~rule ~loc message = make ?hint Error ~rule ~loc message
let warning ?hint ~rule ~loc message = make ?hint Warning ~rule ~loc message
let info ?hint ~rule ~loc message = make ?hint Info ~rule ~loc message

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let is_error d = d.severity = Error

let count_errors ds = List.length (List.filter is_error ds)
let count_warnings ds = List.length (List.filter (fun d -> d.severity = Warning) ds)
let has_errors ds = List.exists is_error ds

(* Errors first, then by rule id, stable within a rule. *)
let sort ds =
  List.stable_sort
    (fun a b ->
      match compare (severity_rank a.severity) (severity_rank b.severity) with
      | 0 -> compare a.rule b.rule
      | c -> c)
    ds

let to_string d =
  Printf.sprintf "%s[%s] %s: %s%s" (severity_label d.severity) d.rule d.location
    d.message
    (match d.hint with None -> "" | Some h -> " (hint: " ^ h ^ ")")

(* A named collection of pass results, as produced by Check.run_all. *)
type report = (string * t list) list

let report_errors (r : report) =
  List.fold_left (fun acc (_, ds) -> acc + count_errors ds) 0 r

let report_warnings (r : report) =
  List.fold_left (fun acc (_, ds) -> acc + count_warnings ds) 0 r

let summary (r : report) =
  let passes = List.length r in
  Printf.sprintf "%d pass%s, %d error%s, %d warning%s" passes
    (if passes = 1 then "" else "es")
    (report_errors r)
    (if report_errors r = 1 then "" else "s")
    (report_warnings r)
    (if report_warnings r = 1 then "" else "s")

let exit_code (r : report) = if report_errors r > 0 then 1 else 0

let print_report ?(out = stdout) ?(verbose = false) (r : report) =
  List.iter
    (fun (pass, ds) ->
      let shown =
        if verbose then sort ds
        else sort (List.filter (fun d -> d.severity <> Info) ds)
      in
      Printf.fprintf out "== %s: %d error%s, %d warning%s\n" pass
        (count_errors ds)
        (if count_errors ds = 1 then "" else "s")
        (count_warnings ds)
        (if count_warnings ds = 1 then "" else "s");
      List.iter (fun d -> Printf.fprintf out "   %s\n" (to_string d)) shown)
    r;
  Printf.fprintf out "%s\n" (summary r)
