(** Static checker for batched multi-RHS launch plans
    ([Dirac.Wilson.hop_multi], [Linalg.Multi_blas],
    [Solver.Cg.solve_multi]): verifies the per-RHS convergence masking
    (a converged system must leave the active set), that masks and
    reduction partitions match the batch width, and that the batch
    width agrees with the tuner's recorded winner. Rule ids
    [MRHS001]–[MRHS003]. *)

type plan = {
  kernel : string;  (** batched kernel name, e.g. ["wilson_hop_multi"] *)
  k : int;  (** batch width: right-hand sides per gauge stream *)
  n : int;  (** per-RHS vector length in floats *)
  block : int;  (** reduction block of the per-RHS folds *)
  active : bool array;  (** per-RHS: still contributing updates *)
  converged : bool array;  (** per-RHS: met its stopping criterion *)
  tuned_k : int option;
      (** batch width of the tuner's recorded winner for this kernel
          and shape; [None]: no tuning record, MRHS003 is skipped *)
}

val rules : (string * string) list

val plan :
  ?tuned_k:int ->
  kernel:string ->
  k:int ->
  n:int ->
  block:int ->
  active:bool array ->
  converged:bool array ->
  unit ->
  plan

val verify_plan : plan -> Diagnostic.t list
val verify_plans : plan list -> Diagnostic.t list
