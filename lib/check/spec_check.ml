(* Spec validator: static analysis of Core.Workflow specs and solver
   configurations before any cycles are spent. Hard structural errors
   overlap with Workflow.validate_spec (which gates run) but are
   reported here with stable rule ids, locations and hints; advisory
   rules (parity, thermalization, tolerance ordering against the
   half-precision noise floor) only the checker knows about. *)

module W = Core.Workflow

let rules =
  [
    ("SPEC001", "dims arity/extent/volume invalid");
    ("SPEC002", "odd lattice extent or odd L5 (checkerboard/parity hazard)");
    ("SPEC003", "physics parameter out of range");
    ("SPEC004", "run counts invalid or ensemble unthermalized");
    ("SPEC005", "tolerance out of the double-precision trust region");
    ("SPEC006", "mixed-precision configuration invalid");
    ("SPEC007", "tolerance below the half fixed-point noise floor");
    ("SPEC008", "I/O path invalid");
  ]

(* Relative resolution of the int16 mantissa: one part in 32767 — the
   per-element noise floor of the half codec. *)
let half_noise_floor = 1. /. 32767.

let double_noise_floor = 1e-14

let mixed_config ~n (c : Solver.Mixed.config) =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let loc = "mixed config" in
  (match Solver.Mixed.validate_config ~n c with
  | Ok () -> ()
  | Error msg ->
    add
      (Diagnostic.error ~rule:"SPEC006" ~loc msg
         ~hint:"Mixed.solve raises Invalid_argument on this configuration"));
  if c.Solver.Mixed.block > 0 && c.Solver.Mixed.block mod 24 <> 0 then
    add
      (Diagnostic.warning ~rule:"SPEC006" ~loc
         (Printf.sprintf
            "block %d is not a multiple of 24 (one site); blocks straddle \
             site boundaries"
            c.Solver.Mixed.block));
  if c.Solver.Mixed.delta > 0. && c.Solver.Mixed.delta < 0.01 then
    add
      (Diagnostic.warning ~rule:"SPEC006" ~loc
         (Printf.sprintf
            "delta %g leaves very long inner cycles between reliable \
             updates; the iterated residual can drift far from the truth"
            c.Solver.Mixed.delta));
  if c.Solver.Mixed.tol > 0. && c.Solver.Mixed.tol < half_noise_floor /. 100. then
    add
      (Diagnostic.info ~rule:"SPEC007" ~loc
         (Printf.sprintf
            "tol %g is far below the half-precision noise floor (~%.1e); \
             convergence relies on reliable updates and the double polish"
            c.Solver.Mixed.tol half_noise_floor));
  Diagnostic.sort (List.rev !ds)

let workflow_spec (s : W.spec) =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let loc = "workflow spec" in
  (* SPEC001: geometry structure *)
  if Array.length s.W.dims <> 4 then
    add
      (Diagnostic.error ~rule:"SPEC001" ~loc
         (Printf.sprintf "dims must have 4 extents (got %d)"
            (Array.length s.W.dims)))
  else begin
    Array.iteri
      (fun mu d ->
        if d < 2 then
          add
            (Diagnostic.error ~rule:"SPEC001" ~loc
               (Printf.sprintf "dims.(%d) = %d below the minimum extent 2" mu d))
        else if d mod 2 <> 0 then
          add
            (Diagnostic.warning ~rule:"SPEC002" ~loc
               (Printf.sprintf
                  "odd extent %d in direction %c breaks even/odd \
                   checkerboard symmetry"
                  d "xyzt".[mu])))
      s.W.dims;
    let volume = Array.fold_left ( * ) 1 s.W.dims in
    if volume mod 2 <> 0 then
      add
        (Diagnostic.error ~rule:"SPEC001" ~loc
           (Printf.sprintf "volume %d must be even for checkerboarding" volume))
  end;
  (* SPEC001/SPEC002: fifth dimension *)
  if s.W.l5 < 1 then
    add
      (Diagnostic.error ~rule:"SPEC001" ~loc
         (Printf.sprintf "l5 = %d must be >= 1" s.W.l5))
  else if s.W.l5 mod 2 <> 0 then
    add
      (Diagnostic.warning ~rule:"SPEC002" ~loc
         (Printf.sprintf "odd l5 = %d; domain-wall spectra prefer even walls"
            s.W.l5));
  (* SPEC003: physics parameters *)
  if not (s.W.mass > 0.) then
    add
      (Diagnostic.error ~rule:"SPEC003" ~loc
         (Printf.sprintf "quark mass %g must be positive" s.W.mass));
  if not (s.W.beta > 0.) then
    add
      (Diagnostic.error ~rule:"SPEC003" ~loc
         (Printf.sprintf "beta %g must be positive" s.W.beta));
  if not (s.W.m5 > 0.) then
    add
      (Diagnostic.error ~rule:"SPEC003" ~loc
         (Printf.sprintf "domain-wall height m5 = %g must be positive" s.W.m5))
  else if s.W.m5 >= 2. then
    add
      (Diagnostic.warning ~rule:"SPEC003" ~loc
         (Printf.sprintf
            "m5 = %g outside (0,2): no single-particle domain-wall mode" s.W.m5));
  if not (s.W.alpha > 0.) then
    add
      (Diagnostic.error ~rule:"SPEC003" ~loc
         (Printf.sprintf "Mobius alpha = %g must be positive" s.W.alpha))
  else if s.W.alpha < 1. then
    add
      (Diagnostic.warning ~rule:"SPEC003" ~loc
         (Printf.sprintf "Mobius alpha = %g < 1 (Shamir limit is 1)" s.W.alpha));
  (* SPEC004: run counts *)
  if s.W.n_configs < 1 then
    add
      (Diagnostic.error ~rule:"SPEC004" ~loc
         (Printf.sprintf "n_configs = %d must be >= 1" s.W.n_configs));
  if s.W.n_thermalize < 0 then
    add (Diagnostic.error ~rule:"SPEC004" ~loc "n_thermalize must be >= 0")
  else if s.W.n_thermalize = 0 then
    add
      (Diagnostic.warning ~rule:"SPEC004" ~loc
         "n_thermalize = 0: measurements start from a cold, unthermalized \
          ensemble");
  if s.W.n_decorrelate < 0 then
    add (Diagnostic.error ~rule:"SPEC004" ~loc "n_decorrelate must be >= 0");
  (* SPEC005: tolerance trust region *)
  if not (s.W.tol > 0. && Float.is_finite s.W.tol) then
    add
      (Diagnostic.error ~rule:"SPEC005" ~loc
         (Printf.sprintf "tol = %g must be positive and finite" s.W.tol))
  else begin
    if s.W.tol < double_noise_floor then
      add
        (Diagnostic.warning ~rule:"SPEC005" ~loc
           (Printf.sprintf
              "tol = %g is below the double-precision noise floor (~%g); \
               the solver cannot certify it"
              s.W.tol double_noise_floor));
    if s.W.tol >= 1e-2 then
      add
        (Diagnostic.warning ~rule:"SPEC005" ~loc
           (Printf.sprintf "tol = %g is too loose for propagator physics" s.W.tol))
  end;
  (* SPEC006/SPEC007: mixed-precision configuration, against the
     half-checkerboard 5D field length the inner solve actually sees *)
  (match s.W.precision with
  | Solver.Dwf_solve.Double -> ()
  | Solver.Dwf_solve.Mixed c ->
    if Array.length s.W.dims = 4 && s.W.l5 >= 1 then begin
      let n = Array.fold_left ( * ) 1 s.W.dims / 2 * s.W.l5 * 24 in
      List.iter add (mixed_config ~n c)
    end);
  (* SPEC008: io path *)
  (match s.W.io_path with
  | Some "" ->
    add
      (Diagnostic.error ~rule:"SPEC008" ~loc "io_path is the empty string")
  | _ -> ());
  Diagnostic.sort (List.rev !ds)
