(** Numeric sanitizer: NaN/Inf detection through the instrumented
    [Linalg.Field] kernels, and static range analysis of the half
    fixed-point block codec (blocks whose dynamic range exceeds the
    int16 mantissa, or whose float32 norm over/underflows, are
    destroyed by [quantize]). Rule ids [NUM001]–[NUM006]. *)

val rules : (string * string) list

val check_finite : what:string -> Linalg.Field.t -> Diagnostic.t list
(** Scan a vector; NaN → NUM001, Inf → NUM002 (capped reporting). *)

val half_blocks : block:int -> Linalg.Field.t -> Diagnostic.t list
(** Static codec range analysis: per block of [block] floats, flag
    non-finite/overflowing norms (NUM004), norms underflowing float32
    (NUM005), and blocks where ≥25% (warning) or ≥50% (error) of the
    nonzero values quantize to zero (NUM003). *)

val sanitized : what:string -> (unit -> 'a) -> 'a * Diagnostic.t list
(** Run with [Field.Sanitize] recording; every trap becomes a
    diagnostic naming the offending kernel. *)

val probe_mixed_solve :
  ?config:Solver.Mixed.config ->
  apply:(Linalg.Field.t -> Linalg.Field.t -> unit) ->
  b:Linalg.Field.t ->
  unit ->
  Diagnostic.t list
(** Instrumented double-half CG run: diagnostics for every kernel trap
    (or NUM006 if the solver rejects its inputs). *)
