(** Kernel-effect intermediate representation of a solve plan.

    A plan is the static artifact [Plan_check] verifies {e without
    running a solve}: a vector length, named buffers carrying a storage
    precision tag (and optionally an abstract magnitude range seeding
    the precision-flow pass), and a step sequence of kernel launches
    with per-operand effects, halo post/complete windows, and
    half-codec quantize points. [Plan_extract] lifts the real
    front-ends into this IR; the printer/parser pair is exact
    (round-trip asserted by a qcheck property), so plans can be dumped
    with [neutron_check --plan-dump], diffed, and re-linted offline. *)

type precision =
  | Double
  | Single
  | Half of int  (** half codec with the given floats-per-block *)
  | Su3 of Linalg.Su3_codec.codec
      (** compressed gauge-link store ([Lattice.Recon]): reconstructed
          in registers at the point of use, never quantized —
          [Plan_check] PREC004 flags a [Quantize] step on such a
          buffer *)

type role =
  | Read
  | Write
  | Update  (** read-modify-write *)
  | Reduce
      (** the scalar a reduction kernel produces (a register/allreduce
          value, not a vector buffer) *)

type buffer = {
  bname : string;
  prec : precision;
  range : (float * float) option;
      (** abstract magnitude interval [lo, hi] at plan entry; [None] =
          unknown *)
}

type kernel = {
  kname : string;
  args : (string * role) list;  (** operand name -> effect, call order *)
  geometry : (int * int) option;
      (** pooled (domains, chunk); [None] = serial *)
  partition : (int * int) array option;
      (** explicit chunk partition; [None] with a geometry means the
          canonical [Util.Pool.chunks] *)
  block : int option;  (** reduction block for [Reduce]-bearing kernels *)
  sweeps : int;
      (** full-vector memory sweeps this launch costs (0 = priced
          elsewhere, e.g. riding the stencil) *)
  coeff : float;
      (** static bound on the scalar coefficient magnitude applied
          (1.0 when the kernel has none) *)
}

type step =
  | Launch of kernel
  | Post of { pbuf : string; faces : int array }
      (** the buffer's faces go in flight; a zero-copy transport
          aliases the payload until the matching [Complete] *)
  | Complete of { cbuf : string; faces : int array }
  | Quantize of { qbuf : string; qblock : int }
      (** half-codec encode/decode point *)

type plan = {
  pname : string;
  n : int;  (** vector length in floats *)
  transport : Machine.Transport.t;
  fusion : bool option;
      (** for model-priced BLAS-1 tails: the fusion mode
          [Machine.Perf_model.blas1_sweeps] prices the plan at; [None]
          = not model-priced *)
  buffers : buffer list;
  steps : step list;
}

(** {2 Constructors} *)

val buffer : ?range:float * float -> prec:precision -> string -> buffer

val kernel :
  ?geometry:int * int ->
  ?partition:(int * int) array ->
  ?block:int ->
  ?sweeps:int ->
  ?coeff:float ->
  args:(string * role) list ->
  string ->
  kernel
(** [sweeps] defaults to 1, [coeff] to 1.0. *)

val plan :
  ?transport:Machine.Transport.t ->
  ?fusion:bool ->
  n:int ->
  buffers:buffer list ->
  steps:step list ->
  string ->
  plan
(** [transport] defaults to [Staged]. *)

val find_buffer : plan -> string -> buffer option
val launches : plan -> kernel list

(** {2 Printing and parsing} *)

val name_ok : string -> bool
(** Plan/buffer/kernel names the textual format can carry:
    [[a-zA-Z0-9_.+-]+]. *)

val string_of_precision : precision -> string
val string_of_role : role -> string
val string_of_transport : Machine.Transport.t -> string
val string_of_step : step -> string

val to_string : plan -> string
(** Exact textual form (floats printed in [%h] hex so the round-trip
    through {!of_string} is bit-identical). *)

val of_string : string -> (plan, string) result

val pretty : plan -> string
(** Human-oriented rendering (numbered steps, decimal ranges); not
    parseable. *)
