(* Static checker for batched multi-RHS launch plans (Wilson.hop_multi
   / Multi_blas / Cg.solve_multi). A batched launch is summarized as a
   [plan] — which batched kernel, the batch width k, the per-RHS
   vector length, the reduction block, the per-RHS masking state, the
   batch width of the tuner's recorded winner — and the pass verifies
   the contract the per-RHS bit-identity rests on:

   MRHS001  a converged right-hand side is still in the active set:
            the batched update kernels keep advancing an iterate the
            independent solve would have frozen, so that RHS's
            trajectory silently diverges from the k-independent-solves
            reference — the masking bug class
   MRHS002  the per-RHS mask width or the reduction partition
            disagrees with the batch: a mask narrower or wider than k
            silently drops or invents systems at the batch boundary,
            and a per-RHS fold on a non-canonical block associates
            partials differently from the single-RHS reductions
   MRHS003  the plan's batch width disagrees with the batch width of
            the tuner's recorded winner: a single-RHS (or other-width)
            winner is aliased onto this batched launch, so the bench
            rows and the Perf_model mrhs traffic term
            ([Machine.Perf_model.mrhs_bytes_per_site]) no longer
            describe what runs *)

type plan = {
  kernel : string;  (* batched kernel name, e.g. "wilson_hop_multi" *)
  k : int;  (* batch width: right-hand sides per gauge stream *)
  n : int;  (* per-RHS vector length in floats *)
  block : int;  (* reduction block of the per-RHS folds *)
  active : bool array;  (* per-RHS: still contributing updates *)
  converged : bool array;  (* per-RHS: met its stopping criterion *)
  tuned_k : int option;
      (* batch width of the tuner's recorded winner for this kernel
         and shape; [None]: no tuning record, MRHS003 is skipped *)
}

let rules =
  [
    ("MRHS001", "converged right-hand side still in the batched active set");
    ("MRHS002", "per-RHS mask or reduction partition mismatches the batch");
    ("MRHS003", "batched plan aliases a tuner winner of another batch width");
  ]

let plan ?tuned_k ~kernel ~k ~n ~block ~active ~converged () =
  { kernel; k; n; block; active; converged; tuned_k }

let loc p = Printf.sprintf "%s[k=%d,n=%d,block=%d]" p.kernel p.k p.n p.block

let check_masking p =
  let ds = ref [] in
  let w = min (Array.length p.active) (Array.length p.converged) in
  for i = 0 to w - 1 do
    if p.converged.(i) && p.active.(i) then
      ds :=
        Diagnostic.error ~rule:"MRHS001" ~loc:(loc p)
          ~hint:
            "drop a converged system from the active set before the next \
             batched update (Cg.solve_multi's masking) — its iterate must \
             freeze exactly where the independent solve froze it"
          (Printf.sprintf
             "right-hand side %d is converged but still active: the batched \
              kernels keep updating an iterate the independent solve would \
              have frozen, so its trajectory diverges from the k independent \
              solves"
             i)
        :: !ds
  done;
  List.rev !ds

let check_partition p =
  let mask_ds =
    let bad name len =
      Diagnostic.error ~rule:"MRHS002" ~loc:(loc p)
        ~hint:
          "size every per-RHS mask exactly to the batch width k — the \
           batched kernels index masks by RHS slot"
        (Printf.sprintf
           "per-RHS %s mask has width %d for a batch of %d: systems at the \
            batch boundary are silently dropped or invented"
           name len p.k)
    in
    (if Array.length p.active <> p.k then
       [ bad "active" (Array.length p.active) ]
     else [])
    @
    if Array.length p.converged <> p.k then
      [ bad "converged" (Array.length p.converged) ]
    else []
  in
  let block_ds =
    if p.block <> Linalg.Field.reduce_block then
      [
        Diagnostic.error ~rule:"MRHS002" ~loc:(loc p)
          ~hint:
            (Printf.sprintf
               "fold each RHS through the canonical %d-float blocks \
                (Field.reduce_block / Multi_blas.batch_fold) — the \
                association of the single-RHS reductions"
               Linalg.Field.reduce_block)
          (Printf.sprintf
             "batched per-RHS reduction partitions %d-float blocks where \
              the single-RHS kernels partition %d: partials associate \
              differently and the batch is not bit-identical to k \
              independent reductions"
             p.block Linalg.Field.reduce_block);
      ]
    else []
  in
  mask_ds @ block_ds

let check_tuned p =
  match p.tuned_k with
  | None -> []
  | Some kt when kt = p.k -> []
  | Some kt ->
    [
      Diagnostic.error ~rule:"MRHS003" ~loc:(loc p)
        ~hint:
          "key the tuner cache on the batch width (Variants.tune_hop_multi \
           puts k in the label and kmax in the signature) and re-tune at \
           this width"
        (Printf.sprintf
           "batched plan of width %d runs under a tuner winner recorded for \
            width %d: the launch was never priced at this batch shape, so \
            bench rows and the Perf_model mrhs traffic term do not describe \
            it"
           p.k kt);
    ]

let verify_plan p = check_masking p @ check_partition p @ check_tuned p
let verify_plans ps = List.concat_map verify_plan ps
