(** Halo-exchange race detector: replays a communication schedule's
    write/ghost epochs over a [Lattice.Domain] and flags stencil reads
    of stale ghost zones, unmatched send/recv face pairs, and
    incomplete [?faces] coverage — without touching field data. Rule
    ids [HALO001]–[HALO006]. *)

type stencil = Full | Interior | Boundary

type op =
  | Scatter  (** distribute a global field: every rank's sites rewritten *)
  | Write of int list  (** local-site writes on these ranks ([[]] = all) *)
  | Exchange of int array option  (** [Comm.halo_exchange ?faces] *)
  | Stencil of stencil  (** [Full]/[Boundary] read ghosts; [Interior] never *)

val rules : (string * string) list

val face_name : int -> string
(** Face id 0–7 → ["x+"], ["x-"], …, ["t-"]. *)

val op_name : op -> string

val verify_schedule : Lattice.Domain.t -> op list -> Diagnostic.t list

val audit : Vrank.Comm.t -> Diagnostic.t list
(** Flag every currently-stale ghost face of a live instrumented
    [Vrank.Comm] (its epoch counters are the evidence). *)
