(** Halo-exchange race detector: replays a communication schedule's
    write/ghost epochs and in-flight message set over a
    [Lattice.Domain] and flags stencil reads of stale or still-in-flight
    ghost zones, send-buffer races between post and complete (staged:
    HALO008; zero-copy, where the write genuinely corrupts the
    delivered ghosts: HALO011), lost completions, unmatched send/recv
    face pairs, incomplete [?faces] coverage, wasted double-buffer
    copies (HALO012) and transport/policy modeling mismatches
    (HALO013) — without touching field data. Rule ids
    [HALO001]–[HALO013]. *)

type stencil = Full | Interior | Boundary

type op =
  | Scatter  (** distribute a global field: every rank's sites rewritten *)
  | Write of int list  (** local-site writes on these ranks ([[]] = all) *)
  | Exchange of int array option
      (** blocking [Comm.halo_exchange ?faces] (post + complete fused) *)
  | Post of int array option  (** nonblocking [Comm.post ?faces] *)
  | Complete of int array option
      (** [Comm.complete] of these recv-side faces; [None] = all pending *)
  | Stencil of stencil  (** [Full]/[Boundary] read ghosts; [Interior] never *)
  | Stencil_faces of int array
      (** fine-grained boundary sub-stencil reading only these ghost
          faces — what [Vrank.Dd_wilson.hop_overlapped] runs between
          completions *)

val rules : (string * string) list

val face_name : int -> string
(** Face id 0–7 → ["x+"], ["x-"], …, ["t-"]. *)

val op_name : op -> string

val verify_schedule :
  ?transport:Machine.Transport.t ->
  ?policy:Machine.Policy.t ->
  Lattice.Domain.t ->
  op list ->
  Diagnostic.t list
(** Replay [ops] under a halo [transport] (default [Staged]).
    Write-after-post fires HALO008 under [Staged], HALO011 (with the
    first racing site's global coordinate) under [Zero_copy], and
    nothing under [Double_buffered] — but a [Double_buffered] schedule
    where no write ever races a post gets the HALO012 warning (every
    rotation copy was wasted). When [policy] is given, a transport
    that models its transfer path dishonestly fires HALO013. *)

val audit : Vrank.Comm.t -> Diagnostic.t list
(** Flag every currently-stale ghost face of a live instrumented
    [Vrank.Comm] (its epoch counters are the evidence). *)
