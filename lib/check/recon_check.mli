(** Static checker for compressed gauge-link (reconstruct) executions
    ([Linalg.Su3_codec] / [Lattice.Recon] packed stores and
    [Vrank.Comm] compressed halo payloads): verifies source links are
    unitary within the codec's tolerance, that the executed codec
    matches the tuner's recorded winner, and that compressed halos are
    repacked after gauge mutation. Rule ids [RECON001]–[RECON003]. *)

type plan = {
  kernel : string;  (** e.g. ["wilson_hop_recon"] *)
  recon : Linalg.Su3_codec.codec;  (** codec the execution streams *)
  max_violation : float;
      (** worst Frobenius unitarity violation over the source links
          ([Lattice.Gauge.max_unitarity_violation]) *)
  tuned_recon : Linalg.Su3_codec.codec option;
      (** codec of the tuner's recorded winner for this kernel and
          shape; [None]: no tuning record, RECON002 is skipped *)
  gauge_epoch : int;  (** write epoch of the live gauge field *)
  halo_epoch : int;
      (** gauge epoch at which the packed store / compressed halo was
          built *)
  halo_compressed : bool;
      (** whether ghost links arrive through a compressed payload;
          [false] skips RECON003 *)
}

val rules : (string * string) list

val plan :
  ?tuned_recon:Linalg.Su3_codec.codec ->
  ?gauge_epoch:int ->
  ?halo_epoch:int ->
  ?halo_compressed:bool ->
  kernel:string ->
  recon:Linalg.Su3_codec.codec ->
  max_violation:float ->
  unit ->
  plan

val verify_gauge :
  recon:Linalg.Su3_codec.codec -> Lattice.Gauge.t -> Diagnostic.t list
(** Direct RECON001 audit: the field's worst unitarity violation
    against [Su3_codec.tolerance recon]. Empty for [Full18] (infinite
    tolerance — bit-copies). *)

val verify_plan : plan -> Diagnostic.t list
val verify_plans : plan list -> Diagnostic.t list
