(** The application workflow of Fig 2, run for real at laptop scale:
    gauge generation → domain-wall solves (plus FH solves) →
    contractions → I/O → analysis, with per-stage timing to reproduce
    the paper's 96.5/3/0.5 budget. *)

type spec = {
  dims : int array;
  l5 : int;
  m5 : float;
  alpha : float;
  mass : float;
  beta : float;
  n_configs : int;
  n_thermalize : int;
  n_decorrelate : int;
  tol : float;
  precision : Solver.Dwf_solve.precision;
  seed : int;
  io_path : string option;
}

val default_spec : spec

val validate_spec : spec -> string list
(** Structural problems making the spec unrunnable (empty = valid):
    dims arity/extents/even volume, positive physics parameters, run
    counts, tolerance, mixed-precision block divisibility. [run]
    raises [Invalid_argument] listing them when non-empty. *)

type timing = {
  mutable gauge_s : float;
  mutable propagator_s : float;
  mutable contraction_s : float;
  mutable io_s : float;
}

type config_measurement = {
  plaquette : float;
  pion : float array;
  proton : float array;
  proton_fh : float array;
  solver_iterations : int;
  solver_flops : float;
}

type result = {
  spec : spec;
  measurements : config_measurement array;
  timing : timing;
  pion_mass : float * float;
  geff : float array;
  total_flops : float;
  ocaml_flops_per_s : float;
}

val run : ?spec:spec -> unit -> result

val time_fractions : timing -> float * float * float
(** (propagators, contractions, I/O) fractions of the measured budget
    (gauge generation excluded, as in the paper). *)
