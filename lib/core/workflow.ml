(* The application workflow of Fig 2, run for real at laptop scale:

     load/generate gluonic field -> solve propagators (and the extra
     Feynman-Hellmann solves) -> write propagators -> contract ->
     write results -> analyze

   Every stage is timed so the bench can reproduce the paper's budget
   (propagators ~96.5%, contractions ~3%, I/O ~0.5% — Sec. VI/VII). *)

module Geometry = Lattice.Geometry
module Gauge = Lattice.Gauge
module Mobius = Dirac.Mobius

type spec = {
  dims : int array;
  l5 : int;
  m5 : float;
  alpha : float;  (* Mobius scale; 1.0 = Shamir *)
  mass : float;
  beta : float;
  n_configs : int;
  n_thermalize : int;
  n_decorrelate : int;
  tol : float;
  precision : Solver.Dwf_solve.precision;
  seed : int;
  io_path : string option;  (* write an H5lite archive per run *)
}

let default_spec =
  {
    dims = [| 4; 4; 4; 8 |];
    l5 = 6;
    m5 = 1.8;
    alpha = 1.5;
    mass = 0.1;
    beta = 5.7;
    n_configs = 3;
    n_thermalize = 20;
    n_decorrelate = 5;
    tol = 1e-8;
    precision = Solver.Dwf_solve.Double;
    seed = 20_180_920;
    io_path = None;
  }

type timing = {
  mutable gauge_s : float;
  mutable propagator_s : float;
  mutable contraction_s : float;
  mutable io_s : float;
}

type config_measurement = {
  plaquette : float;
  pion : float array;
  proton : float array;
  proton_fh : float array;
  solver_iterations : int;
  solver_flops : float;
}

type result = {
  spec : spec;
  measurements : config_measurement array;
  timing : timing;
  pion_mass : float * float;  (* effective mass plateau and spread *)
  geff : float array;  (* ensemble-mean effective axial coupling *)
  total_flops : float;
  ocaml_flops_per_s : float;
}

(* Basic structural validity of a spec — the invariants the stages
   below assume (Geometry.create, Heatbath.generate, the mixed-solver
   codec). Returns human-readable problems, empty when the spec is
   runnable; [run] refuses invalid specs. Richer, advisory checking
   (parity warnings, tolerance ordering) lives in [Check.Spec_check]. *)
let validate_spec s =
  let problems = ref [] in
  let add m = problems := m :: !problems in
  if Array.length s.dims <> 4 then
    add (Printf.sprintf "dims must have 4 extents (got %d)" (Array.length s.dims))
  else begin
    Array.iteri
      (fun mu d -> if d < 2 then add (Printf.sprintf "dims.(%d) = %d < 2" mu d))
      s.dims;
    let volume = Array.fold_left ( * ) 1 s.dims in
    if volume mod 2 <> 0 then
      add (Printf.sprintf "lattice volume %d must be even (checkerboarding)" volume)
  end;
  if s.l5 < 1 then add (Printf.sprintf "l5 = %d must be >= 1" s.l5);
  if not (s.m5 > 0.) then add (Printf.sprintf "m5 = %g must be positive" s.m5);
  if not (s.alpha > 0.) then add (Printf.sprintf "alpha = %g must be positive" s.alpha);
  if not (s.mass > 0.) then add (Printf.sprintf "mass = %g must be positive" s.mass);
  if not (s.beta > 0.) then add (Printf.sprintf "beta = %g must be positive" s.beta);
  if s.n_configs < 1 then add (Printf.sprintf "n_configs = %d must be >= 1" s.n_configs);
  if s.n_thermalize < 0 then add "n_thermalize must be >= 0";
  if s.n_decorrelate < 0 then add "n_decorrelate must be >= 0";
  if not (s.tol > 0. && Float.is_finite s.tol) then
    add (Printf.sprintf "tol = %g must be positive and finite" s.tol);
  (match s.io_path with
  | Some "" -> add "io_path must not be empty"
  | _ -> ());
  (match s.precision with
  | Solver.Dwf_solve.Double -> ()
  | Solver.Dwf_solve.Mixed c ->
    if Array.length s.dims = 4 then begin
      (* the mixed inner solve runs on half-checkerboard 5D fields *)
      let n = Array.fold_left ( * ) 1 s.dims / 2 * s.l5 * 24 in
      match Solver.Mixed.validate_config ~n c with
      | Ok () -> ()
      | Error m -> add ("mixed-precision config: " ^ m)
    end);
  List.rev !problems

let time_into acc f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  acc := !acc +. (Unix.gettimeofday () -. t0);
  v

(* Measure one configuration: 24 solves + contractions. *)
let measure_config spec ~timing gauge =
  let geom = Gauge.geom gauge in
  let params = Mobius.mobius ~l5:spec.l5 ~m5:spec.m5 ~alpha:spec.alpha ~mass:spec.mass in
  let fermion_gauge = Gauge.with_antiperiodic_time gauge in
  let solver = Solver.Dwf_solve.create params geom fermion_gauge in
  let t_prop = ref 0. and t_contract = ref 0. in
  let prop =
    time_into t_prop (fun () ->
        Physics.Propagator.point_propagator ~precision:spec.precision
          ~tol:spec.tol solver ~src_site:0)
  in
  let fh_prop =
    time_into t_prop (fun () ->
        Physics.Fh.fh_propagator ~precision:spec.precision ~tol:spec.tol solver prop)
  in
  let pion = time_into t_contract (fun () -> Physics.Contract.pion prop) in
  let proton =
    time_into t_contract (fun () -> Physics.Contract.proton ~up:prop ~down:prop ())
  in
  let proton_fh =
    time_into t_contract (fun () ->
        Physics.Fh.fh_proton_correlator ~up:prop ~down:prop ~fh_up:fh_prop
          ~fh_down:fh_prop)
  in
  timing.propagator_s <- timing.propagator_s +. !t_prop;
  timing.contraction_s <- timing.contraction_s +. !t_contract;
  {
    plaquette = Gauge.average_plaquette gauge;
    pion;
    proton;
    proton_fh;
    solver_iterations =
      Physics.Propagator.total_iterations prop
      + Physics.Propagator.total_iterations fh_prop;
    solver_flops =
      Physics.Propagator.total_flops prop +. Physics.Propagator.total_flops fh_prop;
  }

let run ?(spec = default_spec) () =
  (match validate_spec spec with
  | [] -> ()
  | ps -> invalid_arg ("Workflow.run: invalid spec: " ^ String.concat "; " ps));
  let rng = Util.Rng.create spec.seed in
  let geom = Geometry.create spec.dims in
  let timing = { gauge_s = 0.; propagator_s = 0.; contraction_s = 0.; io_s = 0. } in
  (* 1. gluonic field configurations (Monte Carlo) *)
  let t_gauge = ref 0. in
  let configs, _history =
    time_into t_gauge (fun () ->
        Lattice.Heatbath.generate rng
          {
            Lattice.Heatbath.beta = spec.beta;
            n_thermalize = spec.n_thermalize;
            n_decorrelate = spec.n_decorrelate;
            n_overrelax = 2;
          }
          geom ~n_configs:spec.n_configs)
  in
  timing.gauge_s <- !t_gauge;
  (* 2-4. per-configuration solves and contractions *)
  let measurements =
    Array.map (fun g -> measure_config spec ~timing g) configs
  in
  (* 5. I/O: archive correlators (and optionally reload to verify) *)
  (match spec.io_path with
  | None -> ()
  | Some path ->
    let t_io = ref 0. in
    time_into t_io (fun () ->
        let h5 = Qio.H5lite.create () in
        Array.iteri
          (fun i m ->
            Qio.H5lite.write_correlator h5
              ~path:(Printf.sprintf "cfg%d/pion" i)
              m.pion;
            Qio.H5lite.write_correlator h5
              ~path:(Printf.sprintf "cfg%d/proton" i)
              m.proton;
            Qio.H5lite.write_correlator h5
              ~path:(Printf.sprintf "cfg%d/proton_fh" i)
              m.proton_fh)
          measurements;
        Qio.H5lite.save h5 path);
    timing.io_s <- timing.io_s +. !t_io);
  (* analysis *)
  let nt = Geometry.time_extent geom in
  let pion_mean =
    Array.init nt (fun t ->
        Util.Stats.mean (Array.map (fun m -> m.pion.(t)) measurements))
  in
  let m_eff = Physics.Analysis.effective_mass pion_mean in
  let mid = Array.sub m_eff (nt / 4) (max 1 (nt / 4)) in
  let pion_mass = (Util.Stats.mean mid, Util.Stats.std ~ddof:0 mid) in
  let c2_mean =
    Array.init nt (fun t ->
        Util.Stats.mean (Array.map (fun m -> m.proton.(t)) measurements))
  in
  let cfh_mean =
    Array.init nt (fun t ->
        Util.Stats.mean (Array.map (fun m -> m.proton_fh.(t)) measurements))
  in
  let geff = Physics.Fh.effective_coupling ~c2:c2_mean ~c_fh:cfh_mean in
  let total_flops =
    Array.fold_left (fun acc m -> acc +. m.solver_flops) 0. measurements
  in
  {
    spec;
    measurements;
    timing;
    pion_mass;
    geff;
    total_flops;
    ocaml_flops_per_s =
      (if timing.propagator_s > 0. then total_flops /. timing.propagator_s else 0.);
  }

let time_fractions timing =
  let total =
    timing.propagator_s +. timing.contraction_s +. timing.io_s
  in
  if total <= 0. then (0., 0., 0.)
  else
    ( timing.propagator_s /. total,
      timing.contraction_s /. total,
      timing.io_s /. total )
