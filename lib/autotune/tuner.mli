(** QUDA-style run-time kernel autotuner: brute-force search through a
    candidate space on first encounter of a (kernel, signature) key,
    cached winner afterwards, with backup/restore hooks around trials
    of data-destructive kernels and tunecache-style persistence. *)

type entry = {
  kernel : string;
  signature : string;  (** problem shape: volume, precision, … *)
  winner : string;  (** label of the chosen launch configuration *)
  time_s : float;  (** measured time of the winner *)
  candidates_tried : int;
  tuned_at : float;  (** wall-clock, metadata only *)
}

type t

val create : ?repeats:int -> unit -> t
(** [repeats] timing repetitions per candidate (default 3, median). *)

type 'a candidate = { label : string; run : 'a }

val candidate : string -> 'a -> 'a candidate

val tune :
  ?backup:(unit -> unit) ->
  ?restore:(unit -> unit) ->
  t ->
  kernel:string ->
  signature:string ->
  (unit -> unit) candidate list ->
  string
(** Winning label: measured on first encounter, cache hit after. A
    cached winner whose label no longer names a live candidate (a
    stale tunecache from before a variant-space change) is not served:
    the search re-runs and overwrites the entry.
    @raise Invalid_argument on an empty candidate list. *)

val lookup : t -> kernel:string -> signature:string -> entry option
val entries : t -> entry list
val tune_count : t -> int
val hit_count : t -> int

val save : t -> string -> unit
(** Persist the cache (QUDA's tunecache file). *)

val load : t -> string -> unit
