(** Launch-parameter spaces for the real OCaml kernels — the analogue
    of CUDA block/grid shape: BLAS-1 unroll depth and stencil
    site-traversal orderings, each a verified drop-in replacement. *)

val axpy_plain : float -> Linalg.Field.t -> Linalg.Field.t -> unit
val axpy_unroll4 : float -> Linalg.Field.t -> Linalg.Field.t -> unit
val axpy_unroll8 : float -> Linalg.Field.t -> Linalg.Field.t -> unit

val axpy_variants :
  (string * (float -> Linalg.Field.t -> Linalg.Field.t -> unit)) list

val site_order_natural : int -> int array
val site_order_tiled : tile:int -> int -> int array
val site_order_strided : stride:int -> int -> int array

val hop_orders : int -> (string * int array) list
(** The candidate traversal orders for [n] sites. *)

val pool_geometries :
  ?max_domains:int -> ?chunk_floor:int -> n:int -> unit -> (int * int) list
(** The multicore launch axis: (ndomains, chunk) candidates for a
    problem of [n] elements. Domain counts are powers of two capped by
    [Domain.recommended_domain_count] (or [max_domains]); chunks are
    the per-lane share and a quarter of it, floored at [chunk_floor]
    (default 1024). Empty on a single-core cap. *)

val geom_label : string -> int * int -> string
(** ["prefix_d<domains>_c<chunk>"] — the label a pooled candidate is
    cached under. *)

(** Winning hop execution plan: a serial traversal order or a pooled
    site-partitioned launch. *)
type hop_plan =
  | Serial_order of int array
  | Pooled of { domains : int; chunk : int }

val tune_hop :
  ?max_domains:int ->
  Tuner.t ->
  Dirac.Wilson.t ->
  src:Linalg.Field.t ->
  dst:Linalg.Field.t ->
  signature:string ->
  string * hop_plan
(** Tune the Wilson hop on a concrete field pair over serial traversal
    orders and pooled geometries; returns the winning label and plan.
    The cache signature is extended with [":n<sites>:dmax<cap>"] so a
    winner never leaks across problem shapes or machine widths. *)

(** The batch-width launch axis opened by [Dirac.Wilson.hop_multi]:
    how many right-hand sides ride one gauge-link stream, crossed
    with the pool geometries. [geometry = None] is a serial plan. *)
type mrhs_plan = {
  k : int;
  geometry : (int * int) option;
}

val mrhs_label : mrhs_plan -> string
(** ["k<k>_serial"] or ["k<k>_d<d>_c<c>"] — the batch width is part
    of every label, so cached winners name their k and can never
    alias across widths. *)

val mrhs_widths : int list
(** The candidate batch widths: [[1; 2; 4; 8]]. *)

val mrhs_space :
  ?max_domains:int ->
  ?widths:int list ->
  sites:int ->
  unit ->
  (string * mrhs_plan) list
(** All (label, plan) candidates for a stencil of [sites] sites:
    every width crossed with serial + the pool geometries. The
    width-1 serial single-RHS baseline is present whenever [1] is in
    [widths] (the default). *)

val tune_hop_multi :
  ?max_domains:int ->
  Tuner.t ->
  Dirac.Wilson.t ->
  srcs:Linalg.Field.t array ->
  dsts:Linalg.Field.t array ->
  signature:string ->
  string * mrhs_plan
(** Tune batch width × pool geometry on a concrete batch of field
    pairs (kernel ["wilson_hop_multi"]). Every candidate processes
    the full batch — a width-k plan as ceil(kmax/k) sub-batches — so
    narrow widths are priced on the gauge re-streaming they cost.
    The cache signature is extended with
    [":sites<n>:kmax<w>:dmax<cap>:v<space-hash>"]: the batch ceiling
    and the label-space hash keep a winner tuned for one batch shape
    from ever being served for another, and [Tuner.tune]
    independently refuses a cached winner absent from the live
    space — the aliasing [Check.Mrhs_check] rule MRHS003 audits on
    extracted plans. *)

(** The gauge-codec (reconstruct) launch axis opened by the compressed
    link stores ([Linalg.Su3_codec] / [Lattice.Recon]): which codec
    the hop streams links through, crossed with batch width and pool
    geometry. [rgeometry = None] is a serial plan. *)
type recon_plan = {
  recon : Linalg.Su3_codec.codec;
  rk : int;
  rgeometry : (int * int) option;
}

val recon_label : recon_plan -> string
(** ["<codec>_k<k>_serial"] or ["<codec>_k<k>_d<d>_c<c>"] (e.g.
    ["recon12_k4_d2_c4096"]) — the codec is part of every label, so
    cached winners name their codec and can never alias across the
    axis ([Check.Recon_check] rule RECON002 audits executed plans
    against the tuned winner's codec). *)

val recon_space :
  ?max_domains:int ->
  ?codecs:Linalg.Su3_codec.codec list ->
  ?widths:int list ->
  sites:int ->
  unit ->
  (string * recon_plan) list
(** All (label, plan) candidates: every codec (default
    [Su3_codec.all]) × every width × serial + pool geometries. The
    uncompressed single-RHS serial baseline ([full18_k1_serial]) is
    present under the defaults — the tuner can refuse compression
    wholesale. *)

val tune_hop_recon :
  ?max_domains:int ->
  ?codecs:Linalg.Su3_codec.codec list ->
  Tuner.t ->
  Lattice.Geometry.t ->
  Lattice.Gauge.t ->
  srcs:Linalg.Field.t array ->
  dsts:Linalg.Field.t array ->
  signature:string ->
  string * recon_plan
(** Tune codec × batch width × pool geometry on a concrete batch
    (kernel ["wilson_hop_recon"]). One Wilson operator is built per
    codec from the same geometry and gauge (each owns its packed
    store); every candidate processes the full batch as sub-batches of
    its width — the [tune_hop_multi] fairness rule, so compressed
    codecs pay their reconstruction flops on the whole batch. The
    cache signature is extended with
    [":sites<n>:kmax<w>:dmax<cap>:v<space-hash>"]. [codecs] restricts
    the axis (e.g. dropping [Recon8] for a gauge with degenerate
    links — [Recon8] packing raises [Su3_codec.Degenerate] on such
    fields). *)

val tune_axpy :
  ?max_domains:int ->
  Tuner.t ->
  n:int ->
  string * (float -> Linalg.Field.t -> Linalg.Field.t -> unit)
(** Tune axpy on vectors of [n] floats over unroll variants and pooled
    geometries (pools drawn from [Util.Pool.shared]). The cache
    signature is ["n<n>:dmax<cap>"]. *)

(** The fusion launch axis: the [Linalg.Fused.mode] of the BLAS-1
    tail ([Unfused] classic 5-sweep / [Fused] separate-dot 3-sweep /
    [Tail_fused] 2-sweep with p·Ap riding the stencil), crossed with
    the pool geometries. [geometry = None] is a serial plan. *)
type fusion_plan = {
  mode : Linalg.Fused.mode;
  geometry : (int * int) option;
}

val fusion_label : fusion_plan -> string
(** ["<mode>_serial"] or ["<mode>_d<d>_c<c>"] with the
    [Linalg.Fused.mode_name] prefix (["unfused"], ["fused"],
    ["tailfused"]) — the three modes are labelled disjointly, so
    cached winners can never alias across the axis. *)

val fusion_space :
  ?max_domains:int ->
  ?chunk_floor:int ->
  n:int ->
  unit ->
  (string * fusion_plan) list
(** All (label, plan) candidates for vectors of [n] floats, all three
    modes. The serial-unfused baseline is always present (tuner
    honesty: the search may refuse every pooled/fused candidate). *)

val run_fusion_plan :
  fusion_plan ->
  p:Linalg.Field.t ->
  ap:Linalg.Field.t ->
  x:Linalg.Field.t ->
  r:Linalg.Field.t ->
  float
(** Execute one CG BLAS-1 tail iteration under the plan, returning
    |r|² — sized to what each mode runs per iteration on the host:
    [Unfused] dot_re + axpy + axpy + norm2 + xpay (5 sweeps), [Fused]
    dot_re + cg_update + xpay_dot (3), [Tail_fused] cg_update +
    xpay_dot (2; p·Ap rides the stencil). All plans are bit-identical
    in the recurrence; only traffic differs. *)

val tune_fusion :
  ?max_domains:int ->
  ?lint:
    (mode:Linalg.Fused.mode ->
    geometry:(int * int) option ->
    string option) ->
  Tuner.t ->
  n:int ->
  string * fusion_plan
(** Tune the mode × geometry space on the CG vector tail for vectors
    of [n] floats (kernel ["cg_blas1"], signature
    ["n<n>:dmax<cap>:v<space-hash>"] — the hash of the candidate label
    space invalidates cache entries when the space changes shape, and
    [Tuner.tune] independently refuses a cached winner absent from the
    live candidates). Returns the winning label and its plan.

    [lint] vets every candidate before the search: a candidate for
    which it returns [Some reason] is dropped, so it can never be
    priced — or cached as a winner by [Tuner.tune], which caches on
    first encounter. Callers close the library-graph loop with
    [Check.Plan_check.lint_fusion]. The serial-unfused baseline is
    exempt (it must always be searchable — tuner honesty). *)

(** The deflation-rank axis opened by [Solver.Deflate]: how many low
    modes to compute once per configuration ([Solver.Lanczos]) and
    deflate out of every solve on it. The trade is setup cost vs
    per-solve iteration reduction, priced over a campaign slice. *)
type deflation_plan = {
  rank : int;
  solves : int;  (** campaign solves the setup amortizes over *)
}

val deflation_ranks : int list
(** The candidate ranks: [[0; 2; 4; 8]] (0 = undeflated). *)

val deflation_label : deflation_plan -> string
(** ["defl_r<rank>_s<solves>"] — the rank is part of every label, so
    cached winners name their rank and can never alias across the
    axis ([Check.Deflate_check] rule DEF003 audits executed plans
    against the tuned winner's rank). *)

val deflation_space :
  ?ranks:int list -> solves:int -> unit -> (string * deflation_plan) list
(** All (label, plan) candidates. The rank-0 undeflated baseline is
    always present, whatever [ranks] says — the tuner can refuse
    deflation wholesale (tuner honesty). *)

val tune_deflation :
  ?ranks:int list ->
  ?solves:int ->
  ?tol:float ->
  ?lanczos_tol:float ->
  ?seed:int ->
  Tuner.t ->
  apply:(Linalg.Field.t -> Linalg.Field.t -> unit) ->
  n:int ->
  signature:string ->
  string * deflation_plan
(** Tune the deflation rank for an operator (kernel ["cg_deflate"]).
    Every candidate is priced on a whole campaign slice — Lanczos
    setup for its rank (inside the timed region: the amortization IS
    the trade) plus [solves] (default 24, the paper's 12 spin-color
    columns × 2 sources) CG solves to [tol] on one fixed
    right-hand-side stream shared by all candidates. The cache
    signature is extended with [":n<n>:s<solves>:v<space-hash>"], so
    a winner tuned for one campaign length or candidate space is
    never served for another, and [Tuner.tune] independently refuses
    a cached winner absent from the live space. *)
