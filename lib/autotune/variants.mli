(** Launch-parameter spaces for the real OCaml kernels — the analogue
    of CUDA block/grid shape: BLAS-1 unroll depth and stencil
    site-traversal orderings, each a verified drop-in replacement. *)

val axpy_plain : float -> Linalg.Field.t -> Linalg.Field.t -> unit
val axpy_unroll4 : float -> Linalg.Field.t -> Linalg.Field.t -> unit
val axpy_unroll8 : float -> Linalg.Field.t -> Linalg.Field.t -> unit

val axpy_variants :
  (string * (float -> Linalg.Field.t -> Linalg.Field.t -> unit)) list

val site_order_natural : int -> int array
val site_order_tiled : tile:int -> int -> int array
val site_order_strided : stride:int -> int -> int array

val hop_orders : int -> (string * int array) list
(** The candidate traversal orders for [n] sites. *)

val tune_hop :
  Tuner.t ->
  Dirac.Wilson.t ->
  src:Linalg.Field.t ->
  dst:Linalg.Field.t ->
  signature:string ->
  string * int array
(** Tune the Wilson hop traversal on a concrete field pair; returns
    the winning order's label and site array. *)

val tune_axpy :
  Tuner.t -> n:int -> string * (float -> Linalg.Field.t -> Linalg.Field.t -> unit)
(** Tune axpy on vectors of [n] floats. *)
