(* Communication-policy autotuning (Sec. V): extend the autotuner "to
   include the concept of communication-policy tuning to pick the
   optimum communication approach for a given problem, at a given node
   count on a given target machine". The policy space is
   Machine.Policy.all — transfer path x halo-completion granularity
   (coarse: wait for all faces, one update kernel; fine: per-face
   completion pipelined against boundary sub-stencils). The measurement
   is the machine model's per-application time; outcomes are cached per
   (machine, problem, n_gpus) exactly like kernel launch parameters —
   including the negative outcome that a GPU count admits no process
   grid, so an infeasible configuration is only surveyed once. *)

module Spec = Machine.Spec
module Policy = Machine.Policy
module Perf_model = Machine.Perf_model

type t = {
  cache : (string, (Policy.t * Perf_model.result) option) Hashtbl.t;
  mutable tune_count : int;
  mutable hit_count : int;
}

let create () = { cache = Hashtbl.create 32; tune_count = 0; hit_count = 0 }

let key (m : Spec.t) (p : Perf_model.problem) ~n_gpus =
  Printf.sprintf "%s|%s|l5=%d|g=%d" m.Spec.name
    (String.concat "x" (Array.to_list (Array.map string_of_int p.Perf_model.dims)))
    p.Perf_model.l5 n_gpus

(* Best policy for a configuration; cached, [None] included. Returns
   None if the GPU count admits no process grid — and caches that, so
   repeated picks of an infeasible configuration cost one tune, not
   one per call. *)
let pick t (m : Spec.t) (p : Perf_model.problem) ~n_gpus =
  let k = key m p ~n_gpus in
  match Hashtbl.find_opt t.cache k with
  | Some outcome ->
    t.hit_count <- t.hit_count + 1;
    outcome
  | None ->
    t.tune_count <- t.tune_count + 1;
    let candidates = List.filter (fun pol -> Policy.available pol m) Policy.all in
    let results =
      List.filter_map
        (fun pol ->
          Option.map (fun r -> (pol, r)) (Perf_model.solver_performance m pol p ~n_gpus))
        candidates
    in
    let outcome =
      match results with
      | [] -> None
      | first :: rest ->
        Some
          (List.fold_left
             (fun ((_, br) as b) ((_, r) as c) ->
               if r.Perf_model.tflops_total > br.Perf_model.tflops_total then c else b)
             first rest)
    in
    Hashtbl.replace t.cache k outcome;
    outcome

(* Best policy restricted to one halo-completion granularity — the
   fine-vs-coarse axis of the survey, isolated. Uncached (it reuses the
   model directly); the winning granularity overall comes from [pick]. *)
let pick_granularity (m : Spec.t) (p : Perf_model.problem) ~n_gpus gran =
  let candidates =
    List.filter
      (fun pol -> pol.Policy.granularity = gran && Policy.available pol m)
      Policy.all
  in
  let results =
    List.filter_map (fun pol -> Perf_model.solver_performance m pol p ~n_gpus) candidates
  in
  match results with
  | [] -> None
  | first :: rest ->
    Some
      (List.fold_left
         (fun b r ->
           if r.Perf_model.tflops_total > b.Perf_model.tflops_total then r else b)
         first rest)

type survey_row = {
  n_gpus : int;
  winner : Policy.t;
  tflops : float;
  coarse_tflops : float option;  (* best coarse-granularity policy *)
  fine_tflops : float option;  (* best fine-granularity policy *)
}

(* Survey: winning policy for each (machine, gpu count), with the best
   coarse- and fine-grained completions shown side by side — the halo
   granularity is an explicit tuning dimension, not a footnote of the
   winner's name. Infeasible GPU counts are skipped (and negatively
   cached by [pick]). *)
let survey t (m : Spec.t) (p : Perf_model.problem) ~gpu_counts =
  List.filter_map
    (fun n ->
      Option.map
        (fun (pol, r) ->
          let gt g =
            Option.map
              (fun (gr : Perf_model.result) -> gr.Perf_model.tflops_total)
              (pick_granularity m p ~n_gpus:n g)
          in
          {
            n_gpus = n;
            winner = pol;
            tflops = r.Perf_model.tflops_total;
            coarse_tflops = gt Policy.Coarse;
            fine_tflops = gt Policy.Fine;
          })
        (pick t m p ~n_gpus:n))
    gpu_counts

let tune_count t = t.tune_count
let hit_count t = t.hit_count
