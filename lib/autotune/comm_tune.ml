(* Communication-policy autotuning (Sec. V): extend the autotuner "to
   include the concept of communication-policy tuning to pick the
   optimum communication approach for a given problem, at a given node
   count on a given target machine". The search space is
   Machine.Policy.all x Machine.Transport.all — transfer path x
   halo-completion granularity x halo buffer transport (staged /
   zero-copy / double-buffered), restricted to honest pairings
   (Policy.transport_ok). The measurement is the machine model's
   per-application time; outcomes are cached per
   (machine, problem, n_gpus) — and per transport x granularity combo —
   exactly like kernel launch parameters, including the negative
   outcome that a GPU count admits no process grid, so an infeasible
   configuration is only surveyed once. *)

module Spec = Machine.Spec
module Policy = Machine.Policy
module Transport = Machine.Transport
module Perf_model = Machine.Perf_model

type t = {
  cache : (string, (Policy.t * Perf_model.result) option) Hashtbl.t;
  combo_cache : (string, Perf_model.result option) Hashtbl.t;
      (* per transport x granularity cell of the survey *)
  mutable tune_count : int;
  mutable hit_count : int;
  mutable combo_tune_count : int;
  mutable combo_hit_count : int;
}

let create () =
  {
    cache = Hashtbl.create 32;
    combo_cache = Hashtbl.create 64;
    tune_count = 0;
    hit_count = 0;
    combo_tune_count = 0;
    combo_hit_count = 0;
  }

let key (m : Spec.t) (p : Perf_model.problem) ~n_gpus =
  Printf.sprintf "%s|%s|l5=%d|g=%d" m.Spec.name
    (String.concat "x" (Array.to_list (Array.map string_of_int p.Perf_model.dims)))
    p.Perf_model.l5 n_gpus

(* Best policy for one cell of the transport x granularity grid:
   among the policies with that granularity, available on the machine,
   and honestly modeled by that transport, priced with the transport's
   extra copy. [compress] (when passed) additionally prices the halo
   wire format explicitly (Perf_model's tri-state knob) and becomes
   part of the cache key — the compressed-halo survey dimension.
   Compressing Zero_copy is dishonest (no staging buffer), so that
   cell is a cached [None]. Cached, [None] (no honest policy, or no
   process grid) included. *)
let pick_combo ?compress t (m : Spec.t) (p : Perf_model.problem) ~n_gpus
    ~transport ~granularity =
  let k =
    Printf.sprintf "%s|tr=%s|gran=%s%s" (key m p ~n_gpus)
      (Transport.name transport)
      (Policy.granularity_name granularity)
      (match compress with
      | None -> ""
      | Some true -> "|cmp=on"
      | Some false -> "|cmp=off")
  in
  match Hashtbl.find_opt t.combo_cache k with
  | Some outcome ->
    t.combo_hit_count <- t.combo_hit_count + 1;
    outcome
  | None ->
    t.combo_tune_count <- t.combo_tune_count + 1;
    let candidates =
      if compress = Some true && transport = Transport.Zero_copy then []
      else
        List.filter
          (fun pol ->
            pol.Policy.granularity = granularity
            && Policy.available pol m
            && Policy.transport_ok pol transport)
          Policy.all
    in
    let results =
      List.filter_map
        (fun pol ->
          Perf_model.solver_performance ~transport ?compress m pol p ~n_gpus)
        candidates
    in
    let outcome =
      match results with
      | [] -> None
      | first :: rest ->
        Some
          (List.fold_left
             (fun b (r : Perf_model.result) ->
               if r.Perf_model.tflops_total > b.Perf_model.tflops_total then r
               else b)
             first rest)
    in
    Hashtbl.replace t.combo_cache k outcome;
    outcome

(* Best configuration over the whole honest grid; cached, [None]
   included. [require_safe] restricts to transports where a
   write-after-post can never corrupt delivered ghosts (drops
   Zero_copy) — the race-freedom-vs-extra-copy trade the survey
   surfaces. Returns None if the GPU count admits no process grid —
   and caches that, so repeated picks of an infeasible configuration
   cost one tune, not one per call. *)
let pick ?(require_safe = false) t (m : Spec.t) (p : Perf_model.problem)
    ~n_gpus =
  let k = key m p ~n_gpus ^ if require_safe then "|safe" else "" in
  match Hashtbl.find_opt t.cache k with
  | Some outcome ->
    t.hit_count <- t.hit_count + 1;
    outcome
  | None ->
    t.tune_count <- t.tune_count + 1;
    (* zero-copy first: its combos carry the direct-wire policies
       (gdr, zero-copy transfers), so performance ties keep resolving
       toward the more direct path, as before the transport axis *)
    let transports =
      List.filter
        (fun tr -> (not require_safe) || Transport.write_after_post_safe tr)
        [ Transport.Zero_copy; Transport.Staged; Transport.Double_buffered ]
    in
    let results =
      List.concat_map
        (fun transport ->
          List.filter_map
            (fun granularity ->
              pick_combo t m p ~n_gpus ~transport ~granularity)
            Policy.all_granularities)
        transports
    in
    let outcome =
      match results with
      | [] -> None
      | first :: rest ->
        let best =
          List.fold_left
            (fun (b : Perf_model.result) (r : Perf_model.result) ->
              if r.Perf_model.tflops_total > b.Perf_model.tflops_total then r
              else b)
            first rest
        in
        Some (best.Perf_model.policy, best)
    in
    Hashtbl.replace t.cache k outcome;
    outcome

(* Best configuration restricted to one halo-completion granularity —
   the fine-vs-coarse axis of the survey, isolated. Uncached (it reuses
   the model directly); the winning granularity overall comes from
   [pick]. *)
let pick_granularity (m : Spec.t) (p : Perf_model.problem) ~n_gpus gran =
  let candidates =
    List.filter
      (fun pol -> pol.Policy.granularity = gran && Policy.available pol m)
      Policy.all
  in
  let results =
    List.concat_map
      (fun pol ->
        List.filter_map
          (fun tr ->
            if Policy.transport_ok pol tr then
              Perf_model.solver_performance ~transport:tr m pol p ~n_gpus
            else None)
          Transport.all)
      candidates
  in
  match results with
  | [] -> None
  | first :: rest ->
    Some
      (List.fold_left
         (fun b (r : Perf_model.result) ->
           if r.Perf_model.tflops_total > b.Perf_model.tflops_total then r else b)
         first rest)

(* Best configuration with the halo wire format priced explicitly —
   the compressed-faces survey axis. Compression needs a staging
   buffer, so the grid drops Zero_copy; cells come from [pick_combo]
   and are cached per compress flag. *)
let pick_compress t (m : Spec.t) (p : Perf_model.problem) ~n_gpus ~compress =
  let results =
    List.concat_map
      (fun transport ->
        List.filter_map
          (fun granularity ->
            pick_combo ~compress t m p ~n_gpus ~transport ~granularity)
          Policy.all_granularities)
      [ Transport.Staged; Transport.Double_buffered ]
  in
  match results with
  | [] -> None
  | first :: rest ->
    Some
      (List.fold_left
         (fun b (r : Perf_model.result) ->
           if r.Perf_model.tflops_total > b.Perf_model.tflops_total then r
           else b)
         first rest)

type survey_row = {
  n_gpus : int;
  winner : Policy.t;
  transport : Transport.t;  (* the winner's halo transport *)
  tflops : float;
  coarse_tflops : float option;  (* best coarse-granularity configuration *)
  fine_tflops : float option;  (* best fine-granularity configuration *)
  safe_tflops : float option;
      (* best write-after-post-safe configuration (no Zero_copy): what
         race-freedom costs at this point *)
  compressed_tflops : float option;
      (* best staged configuration with the halo codec priced
         explicitly (compressed wire + encode/decode passes) *)
  uncompressed_tflops : float option;
      (* same grid shipping double-precision faces: what skipping the
         codec costs in wire bytes *)
}

(* Survey: winning configuration for each (machine, gpu count), with
   the best coarse- and fine-grained completions and the best race-free
   transport shown side by side — halo granularity and transport are
   explicit tuning dimensions, not footnotes of the winner's name.
   Infeasible GPU counts are skipped (and negatively cached by
   [pick]). *)
let survey t (m : Spec.t) (p : Perf_model.problem) ~gpu_counts =
  List.filter_map
    (fun n ->
      Option.map
        (fun (pol, (r : Perf_model.result)) ->
          let gt g =
            Option.map
              (fun (gr : Perf_model.result) -> gr.Perf_model.tflops_total)
              (pick_granularity m p ~n_gpus:n g)
          in
          {
            n_gpus = n;
            winner = pol;
            transport = r.Perf_model.transport;
            tflops = r.Perf_model.tflops_total;
            coarse_tflops = gt Policy.Coarse;
            fine_tflops = gt Policy.Fine;
            safe_tflops =
              Option.map
                (fun ((_ : Policy.t), (sr : Perf_model.result)) ->
                  sr.Perf_model.tflops_total)
                (pick ~require_safe:true t m p ~n_gpus:n);
            compressed_tflops =
              Option.map
                (fun (cr : Perf_model.result) -> cr.Perf_model.tflops_total)
                (pick_compress t m p ~n_gpus:n ~compress:true);
            uncompressed_tflops =
              Option.map
                (fun (cr : Perf_model.result) -> cr.Perf_model.tflops_total)
                (pick_compress t m p ~n_gpus:n ~compress:false);
          })
        (pick t m p ~n_gpus:n))
    gpu_counts

let tune_count t = t.tune_count
let hit_count t = t.hit_count
let combo_tune_count t = t.combo_tune_count
let combo_hit_count t = t.combo_hit_count
