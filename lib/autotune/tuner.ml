(* QUDA-style run-time kernel autotuner (Sec. IV):

   "a brute-force search through launch parameter space is performed
    the first time an un-tuned kernel or algorithm is encountered.
    Once the optimum launch configuration is known, this is stored in
    a std::map, and is subsequently looked up on demand."

   This is exactly that, for OCaml kernels: candidates are measured
   once per (kernel, signature) key, the winner is cached with its
   performance metadata, and data-destructive kernels get a
   backup/restore hook around each trial. The cache can be saved to
   and restored from disk, like QUDA's tunecache. *)

type entry = {
  kernel : string;
  signature : string;  (* problem shape: volume, precision, ... *)
  winner : string;  (* label of the chosen launch configuration *)
  time_s : float;  (* measured time of the winner *)
  candidates_tried : int;
  tuned_at : float;  (* wall-clock, metadata only *)
}

type t = {
  cache : (string * string, entry) Hashtbl.t;
  mutable tune_count : int;  (* brute-force searches performed *)
  mutable hit_count : int;  (* cache lookups that avoided a search *)
  repeats : int;  (* timing repetitions per candidate *)
}

let create ?(repeats = 3) () = { cache = Hashtbl.create 64; tune_count = 0; hit_count = 0; repeats }

type 'a candidate = { label : string; run : 'a }

let candidate label run = { label; run }

(* Median-of-repeats timing of one candidate. *)
let time_candidate t ~backup ~restore (c : (unit -> unit) candidate) =
  let samples =
    Array.init t.repeats (fun _ ->
        backup ();
        let t0 = Unix.gettimeofday () in
        c.run ();
        let dt = Unix.gettimeofday () -. t0 in
        restore ();
        dt)
  in
  Array.sort compare samples;
  samples.(t.repeats / 2)

let default_hook () = ()

(* [tune t ~kernel ~signature candidates] returns the label of the best
   candidate, measuring on first encounter and hitting the cache after.
   [backup]/[restore] bracket each trial for data-destructive kernels.
   A cached winner is only served if its label still names a live
   candidate: a cache loaded from disk (or kept across a variant-space
   change) may hold a winner the space no longer contains — serving it
   would hand the caller a label List.assoc cannot resolve. Such stale
   entries are re-tuned and overwritten, not trusted. *)
let tune ?(backup = default_hook) ?(restore = default_hook) t ~kernel ~signature
    (candidates : (unit -> unit) candidate list) =
  if candidates = [] then invalid_arg "Tuner.tune: no candidates";
  let key = (kernel, signature) in
  match Hashtbl.find_opt t.cache key with
  | Some e when List.exists (fun c -> c.label = e.winner) candidates ->
    t.hit_count <- t.hit_count + 1;
    e.winner
  | Some _ | None ->
    t.tune_count <- t.tune_count + 1;
    let timed =
      List.map (fun c -> (c.label, time_candidate t ~backup ~restore c)) candidates
    in
    let winner, time_s =
      List.fold_left
        (fun (bl, bt) (l, dt) -> if dt < bt then (l, dt) else (bl, bt))
        (List.hd timed) (List.tl timed)
    in
    Hashtbl.replace t.cache key
      {
        kernel;
        signature;
        winner;
        time_s;
        candidates_tried = List.length candidates;
        tuned_at = Unix.gettimeofday ();
      };
    winner

let lookup t ~kernel ~signature = Hashtbl.find_opt t.cache (kernel, signature)
let entries t = Hashtbl.fold (fun _ e acc -> e :: acc) t.cache []
let tune_count t = t.tune_count
let hit_count t = t.hit_count

(* ---- persistence (QUDA's tunecache file) ---- *)

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Hashtbl.iter
        (fun _ e ->
          Printf.fprintf oc "%s\t%s\t%s\t%.9e\t%d\t%.3f\n" e.kernel e.signature
            e.winner e.time_s e.candidates_tried e.tuned_at)
        t.cache)

let load t path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        while true do
          let line = input_line ic in
          match String.split_on_char '\t' line with
          | [ kernel; signature; winner; time_s; tried; tuned_at ] ->
            Hashtbl.replace t.cache (kernel, signature)
              {
                kernel;
                signature;
                winner;
                time_s = float_of_string time_s;
                candidates_tried = int_of_string tried;
                tuned_at = float_of_string tuned_at;
              }
          | _ -> ()
        done
      with End_of_file -> ())
