(** Communication-policy autotuning (Sec. V): pick the optimum
    communication approach for a problem at a node count on a machine,
    measured through the performance model and cached per
    (machine, problem, GPU count) like kernel launch parameters. *)

type t

val create : unit -> t

val key : Machine.Spec.t -> Machine.Perf_model.problem -> n_gpus:int -> string

val pick :
  t ->
  Machine.Spec.t ->
  Machine.Perf_model.problem ->
  n_gpus:int ->
  (Machine.Policy.t * Machine.Perf_model.result) option
(** Best policy for a configuration; cached. [None] when the GPU count
    admits no process grid. *)

val survey :
  t ->
  Machine.Spec.t ->
  Machine.Perf_model.problem ->
  gpu_counts:int list ->
  (int * Machine.Policy.t * float) list
(** Winning policy and TFlops for each GPU count. *)

val tune_count : t -> int
val hit_count : t -> int
