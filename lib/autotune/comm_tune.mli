(** Communication-policy autotuning (Sec. V): pick the optimum
    communication approach — transfer path x halo-completion
    granularity — for a problem at a node count on a machine, measured
    through the performance model and cached per
    (machine, problem, GPU count) like kernel launch parameters.
    Negative outcomes (no valid process grid) are cached too. *)

type t

val create : unit -> t

val key : Machine.Spec.t -> Machine.Perf_model.problem -> n_gpus:int -> string

val pick :
  t ->
  Machine.Spec.t ->
  Machine.Perf_model.problem ->
  n_gpus:int ->
  (Machine.Policy.t * Machine.Perf_model.result) option
(** Best policy for a configuration; cached. [None] when the GPU count
    admits no process grid — that outcome is cached as well, so a
    repeated infeasible pick is a cache hit, not a re-tune. *)

val pick_granularity :
  Machine.Spec.t ->
  Machine.Perf_model.problem ->
  n_gpus:int ->
  Machine.Policy.granularity ->
  Machine.Perf_model.result option
(** Best policy restricted to one halo-completion granularity
    (uncached); isolates the fine-vs-coarse axis of the survey. *)

type survey_row = {
  n_gpus : int;
  winner : Machine.Policy.t;
  tflops : float;
  coarse_tflops : float option;
      (** best policy forced to coarse halo completion *)
  fine_tflops : float option;
      (** best policy forced to fine (per-face) completion *)
}

val survey :
  t ->
  Machine.Spec.t ->
  Machine.Perf_model.problem ->
  gpu_counts:int list ->
  survey_row list
(** Winning policy per GPU count, with best-coarse and best-fine
    completion times side by side. *)

val tune_count : t -> int
(** Configurations actually tuned (cache misses, feasible or not). *)

val hit_count : t -> int
(** Picks served from cache, including cached [None] outcomes. *)
