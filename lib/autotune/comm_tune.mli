(** Communication-policy autotuning (Sec. V): pick the optimum
    communication approach — transfer path x halo-completion
    granularity x halo buffer transport (staged / zero-copy /
    double-buffered, restricted to honest pairings per
    [Machine.Policy.transport_ok]) — for a problem at a node count on a
    machine, measured through the performance model and cached per
    (machine, problem, GPU count) like kernel launch parameters.
    Negative outcomes (no valid process grid, or no honest policy for a
    combo) are cached too. *)

type t

val create : unit -> t

val key : Machine.Spec.t -> Machine.Perf_model.problem -> n_gpus:int -> string

val pick :
  ?require_safe:bool ->
  t ->
  Machine.Spec.t ->
  Machine.Perf_model.problem ->
  n_gpus:int ->
  (Machine.Policy.t * Machine.Perf_model.result) option
(** Best configuration over the honest transport x granularity grid;
    cached. [require_safe] (default false) drops transports where a
    write-after-post can corrupt delivered ghosts (i.e. [Zero_copy]) —
    the result's [transport] field then carries the race-free winner.
    [None] when the GPU count admits no process grid — that outcome is
    cached as well, so a repeated infeasible pick is a cache hit, not a
    re-tune. *)

val pick_combo :
  ?compress:bool ->
  t ->
  Machine.Spec.t ->
  Machine.Perf_model.problem ->
  n_gpus:int ->
  transport:Machine.Transport.t ->
  granularity:Machine.Policy.granularity ->
  Machine.Perf_model.result option
(** Best policy for one transport x granularity cell, priced with that
    transport's extra copy. [compress] (when passed) prices the halo
    wire format explicitly ([Machine.Perf_model]'s tri-state knob) and
    joins the cache key — compressing [Zero_copy] is dishonest (no
    staging buffer) and yields a cached [None]. Cached per cell,
    [None] (infeasible GPU count, or no honest available policy)
    included. *)

val pick_compress :
  t ->
  Machine.Spec.t ->
  Machine.Perf_model.problem ->
  n_gpus:int ->
  compress:bool ->
  Machine.Perf_model.result option
(** Best configuration with the halo wire format priced explicitly
    over the staging transports ([Staged]/[Double_buffered]) x
    granularity grid: [~compress:true] ships the codec wire and pays
    encode/decode passes, [~compress:false] ships double-precision
    faces. The compressed-halo tuning dimension of {!survey}. *)

val pick_granularity :
  Machine.Spec.t ->
  Machine.Perf_model.problem ->
  n_gpus:int ->
  Machine.Policy.granularity ->
  Machine.Perf_model.result option
(** Best configuration restricted to one halo-completion granularity
    (uncached); isolates the fine-vs-coarse axis of the survey. *)

type survey_row = {
  n_gpus : int;
  winner : Machine.Policy.t;
  transport : Machine.Transport.t;  (** the winner's halo transport *)
  tflops : float;
  coarse_tflops : float option;
      (** best configuration forced to coarse halo completion *)
  fine_tflops : float option;
      (** best configuration forced to fine (per-face) completion *)
  safe_tflops : float option;
      (** best write-after-post-safe configuration (no [Zero_copy]):
          what race-freedom costs at this point *)
  compressed_tflops : float option;
      (** best staged configuration with the halo codec priced
          explicitly (compressed wire + encode/decode passes) *)
  uncompressed_tflops : float option;
      (** the same grid shipping double-precision faces — what
          skipping the codec costs in wire bytes *)
}

val survey :
  t ->
  Machine.Spec.t ->
  Machine.Perf_model.problem ->
  gpu_counts:int list ->
  survey_row list
(** Winning configuration per GPU count, with best-coarse, best-fine
    and best-race-free shown side by side. *)

val tune_count : t -> int
(** Whole-grid configurations actually tuned (cache misses, feasible
    or not). *)

val hit_count : t -> int
(** Picks served from cache, including cached [None] outcomes. *)

val combo_tune_count : t -> int
(** Transport x granularity cells actually evaluated. *)

val combo_hit_count : t -> int
(** Cell lookups served from cache, including cached [None]s. *)
