(* Launch-parameter spaces for the real OCaml kernels, so the
   autotuner has genuine knobs to search — the analogue of CUDA block
   size / grid shape for this implementation:

   - BLAS-1 kernels: manual unroll depth.
   - Wilson stencil: site-traversal tile size (temporal blocking of
     the site loop changes the cache behaviour of neighbour reads).

   Each variant is a drop-in replacement verified identical by the
   test suite; only speed differs. *)

module Field = Linalg.Field
open Bigarray

(* ---- axpy unroll variants ---- *)

let axpy_plain alpha (x : Field.t) (y : Field.t) =
  for i = 0 to Field.length x - 1 do
    Array1.unsafe_set y i (Array1.unsafe_get y i +. (alpha *. Array1.unsafe_get x i))
  done

let axpy_unroll4 alpha (x : Field.t) (y : Field.t) =
  let n = Field.length x in
  let n4 = n - (n mod 4) in
  let i = ref 0 in
  while !i < n4 do
    let i0 = !i in
    Array1.unsafe_set y i0 (Array1.unsafe_get y i0 +. (alpha *. Array1.unsafe_get x i0));
    Array1.unsafe_set y (i0 + 1)
      (Array1.unsafe_get y (i0 + 1) +. (alpha *. Array1.unsafe_get x (i0 + 1)));
    Array1.unsafe_set y (i0 + 2)
      (Array1.unsafe_get y (i0 + 2) +. (alpha *. Array1.unsafe_get x (i0 + 2)));
    Array1.unsafe_set y (i0 + 3)
      (Array1.unsafe_get y (i0 + 3) +. (alpha *. Array1.unsafe_get x (i0 + 3)));
    i := i0 + 4
  done;
  for j = n4 to n - 1 do
    Array1.unsafe_set y j (Array1.unsafe_get y j +. (alpha *. Array1.unsafe_get x j))
  done

let axpy_unroll8 alpha (x : Field.t) (y : Field.t) =
  let n = Field.length x in
  let n8 = n - (n mod 8) in
  let i = ref 0 in
  while !i < n8 do
    for k = 0 to 7 do
      let j = !i + k in
      Array1.unsafe_set y j (Array1.unsafe_get y j +. (alpha *. Array1.unsafe_get x j))
    done;
    i := !i + 8
  done;
  for j = n8 to n - 1 do
    Array1.unsafe_set y j (Array1.unsafe_get y j +. (alpha *. Array1.unsafe_get x j))
  done

let axpy_variants : (string * (float -> Field.t -> Field.t -> unit)) list =
  [ ("plain", axpy_plain); ("unroll4", axpy_unroll4); ("unroll8", axpy_unroll8) ]

(* ---- stencil traversal variants ---- *)

(* Site orderings for the Wilson hop: natural lexicographic, or tiles
   of [tile] consecutive sites interleaved across the volume (a poor
   man's launch-geometry knob). *)
let site_order_natural n = Array.init n Fun.id

let site_order_tiled ~tile n =
  let out = Array.make n 0 in
  let idx = ref 0 in
  let n_tiles = (n + tile - 1) / tile in
  for t = 0 to n_tiles - 1 do
    let lo = t * tile in
    let hi = min n (lo + tile) in
    for s = lo to hi - 1 do
      out.(!idx) <- s;
      incr idx
    done
  done;
  out

let site_order_strided ~stride n =
  let out = Array.make n 0 in
  let idx = ref 0 in
  for r = 0 to stride - 1 do
    let s = ref r in
    while !s < n do
      out.(!idx) <- !s;
      incr idx;
      s := !s + stride
    done
  done;
  out

let hop_orders n =
  [
    ("natural", site_order_natural n);
    ("tile256", site_order_tiled ~tile:256 n);
    ("tile1024", site_order_tiled ~tile:1024 n);
    ("stride2", site_order_strided ~stride:2 n);
  ]

(* ---- pool launch geometries ----
   The multicore launch axis: (ndomains, chunk) pairs, the laptop
   analogue of CUDA block/grid shape. Domain counts are powers of two
   up to the machine (capped by [Domain.recommended_domain_count], or
   the explicit [max_domains] the tests use to exercise the space on
   any box); chunks are one and a quarter of the per-lane share,
   floored so tiny problems do not degenerate to per-element dispatch.
   Pooled candidates draw their pool from [Util.Pool.shared], so a
   tuning sweep spawns each width once. *)
let pool_geometries ?max_domains ?(chunk_floor = 1024) ~n () =
  let dmax =
    match max_domains with
    | Some d -> min d Util.Pool.max_domains
    | None -> min (Domain.recommended_domain_count ()) Util.Pool.max_domains
  in
  let rec widths d acc = if d > dmax then List.rev acc else widths (d * 2) (d :: acc) in
  List.concat_map
    (fun d ->
      let per_lane = max 1 (n / d) in
      let cands =
        List.sort_uniq compare
          [ max chunk_floor (per_lane / 4); max chunk_floor per_lane ]
      in
      List.map (fun c -> (d, c)) cands)
    (widths 2 [])

let geom_label prefix (d, c) = Printf.sprintf "%s_d%d_c%d" prefix d c

(* Execution plan a hop tuning run settles on: a serial traversal
   order, or a pooled site-partitioned launch. *)
type hop_plan =
  | Serial_order of int array
  | Pooled of { domains : int; chunk : int }

(* Tune the hop traversal for a kernel on a concrete field pair,
   returning the winning label and its execution plan. The caller's
   [signature] is extended with the site count and the domain cap so a
   winner tuned for one problem shape or machine width can never be
   served for another. *)
let tune_hop ?max_domains tuner (w : Dirac.Wilson.t) ~(src : Field.t)
    ~(dst : Field.t) ~signature =
  let n = Field.length dst / Dirac.Wilson.floats_per_site in
  let dmax =
    match max_domains with
    | Some d -> min d Util.Pool.max_domains
    | None -> min (Domain.recommended_domain_count ()) Util.Pool.max_domains
  in
  let plans =
    List.map (fun (label, sites) -> (label, Serial_order sites)) (hop_orders n)
    @ List.map
        (fun (d, c) -> (geom_label "pool" (d, c), Pooled { domains = d; chunk = c }))
        (pool_geometries ~max_domains:dmax ~chunk_floor:16 ~n ())
  in
  let run = function
    | Serial_order sites -> Dirac.Wilson.hop_sites w ~sites ~src ~dst ()
    | Pooled { domains; chunk } ->
      Dirac.Wilson.hop_with (Util.Pool.shared ~domains) ~chunk w ~src ~dst
  in
  let signature = Printf.sprintf "%s:n%d:dmax%d" signature n dmax in
  let winner =
    Tuner.tune tuner ~kernel:"wilson_hop" ~signature
      (List.map
         (fun (label, plan) -> Tuner.candidate label (fun () -> run plan))
         plans)
  in
  (winner, List.assoc winner plans)

(* ---- fusion axis ----
   The second launch dimension of the BLAS-1 tail: the Fused.mode
   (unfused / fused separate-dot / tail-fused), crossed with the pool
   geometries. A fusion plan is what the tuner settles on for the
   whole CG vector tail of one iteration; [run_fusion_plan] executes
   exactly the tail each mode's solve runs — including the p·Ap dot
   where the mode pays for it as a tail sweep (Unfused and Fused; in
   Tail_fused it rides the stencil, so the tail is just cg_update +
   xpay_dot) — so candidates are priced on the traffic that matters.
   The serial-unfused baseline is always in the space — the tuner can
   refuse every "optimisation" (see the tuner-honesty regression
   test), and bench rows get an honest 1.0 denominator. *)

type fusion_plan = {
  mode : Linalg.Fused.mode;
  geometry : (int * int) option;
}

let fusion_label (plan : fusion_plan) =
  let prefix = Linalg.Fused.mode_name plan.mode in
  match plan.geometry with
  | None -> prefix ^ "_serial"
  | Some g -> geom_label prefix g

let fusion_space ?max_domains ?(chunk_floor = 1024) ~n () =
  let geoms = pool_geometries ?max_domains ~chunk_floor ~n () in
  let plans mode =
    { mode; geometry = None }
    :: List.map (fun g -> { mode; geometry = Some g }) geoms
  in
  List.map
    (fun p -> (fusion_label p, p))
    (plans Linalg.Fused.Unfused
    @ plans Linalg.Fused.Fused
    @ plans Linalg.Fused.Tail_fused)

(* One CG BLAS-1 tail iteration under a fusion plan, sized to what
   each mode actually executes per iteration on the host: Unfused =
   dot_re + axpy + axpy + norm2 + xpay (5 sweeps); Fused = dot_re +
   cg_update + xpay_dot (3 sweeps, the separate-dot fallback);
   Tail_fused = cg_update + xpay_dot (2 sweeps — p·Ap rode the
   stencil). alpha/beta are fixed small scalars so repeated timing
   runs do not drift the data towards overflow. *)
let run_fusion_plan (plan : fusion_plan) ~(p : Field.t) ~(ap : Field.t)
    ~(x : Field.t) ~(r : Field.t) =
  let alpha = 1e-3 and beta = 0.5 in
  match (plan.mode, plan.geometry) with
  | Linalg.Fused.Unfused, None ->
    ignore (Field.dot_re p ap : float);
    Field.axpy alpha p x;
    Field.axpy (-.alpha) ap r;
    let r2 = Field.norm2 r in
    Field.xpay r beta p;
    r2
  | Linalg.Fused.Fused, None ->
    ignore (Field.dot_re p ap : float);
    let r2 = Linalg.Fused.cg_update alpha p ap x r in
    ignore (Linalg.Fused.xpay_dot r beta p r : float);
    r2
  | Linalg.Fused.Tail_fused, None ->
    let r2 = Linalg.Fused.cg_update alpha p ap x r in
    ignore (Linalg.Fused.xpay_dot r beta p r : float);
    r2
  | Linalg.Fused.Unfused, Some (domains, chunk) ->
    let pool = Util.Pool.shared ~domains in
    ignore (Field.dot_re_with pool ~chunk p ap : float);
    Field.axpy_with pool ~chunk alpha p x;
    Field.axpy_with pool ~chunk (-.alpha) ap r;
    let r2 = Field.norm2_with pool ~chunk r in
    Field.xpay_with pool ~chunk r beta p;
    r2
  | Linalg.Fused.Fused, Some (domains, chunk) ->
    let pool = Util.Pool.shared ~domains in
    ignore (Field.dot_re_with pool ~chunk p ap : float);
    let r2 = Linalg.Fused.cg_update_with pool ~chunk alpha p ap x r in
    ignore (Linalg.Fused.xpay_dot_with pool ~chunk r beta p r : float);
    r2
  | Linalg.Fused.Tail_fused, Some (domains, chunk) ->
    let pool = Util.Pool.shared ~domains in
    let r2 = Linalg.Fused.cg_update_with pool ~chunk alpha p ap x r in
    ignore (Linalg.Fused.xpay_dot_with pool ~chunk r beta p r : float);
    r2

(* Tune the mode × geometry space on the CG vector tail. Same
   signature discipline as the other axes — and because the three
   modes live under distinct label prefixes in ONE search for the
   "cg_blas1" kernel, a winner can never be read back across the axis:
   the label is the plan. The signature additionally carries a hash of
   the candidate label space ("v%x"): when the space itself changes
   shape (as it did when the tail-fused mode landed), cache entries
   keyed to the old space go stale instead of serving a winner the
   space no longer contains — and Tuner.tune independently refuses a
   cached winner whose label is absent from the live candidates.

   [lint] vets each candidate BEFORE it enters the search: Tuner.tune
   caches its winner on first encounter, so this is the only point
   where a statically invalid plan can be kept out of the cache. The
   callback shape (rather than a direct Check.Plan_check call) is
   forced by the library graph — check links core links autotune — and
   callers close the loop with Check.Plan_check.lint_fusion. The
   serial-unfused baseline is exempt: it must always be in the space
   (tuner honesty), and a linter rejecting the reference plan is a
   linter bug, not a tuning outcome. *)
let tune_fusion ?max_domains ?lint tuner ~n =
  let p = Field.create n and ap = Field.create n in
  let x = Field.create n and r = Field.create n in
  Field.fill p 1e-3;
  Field.fill ap 1e-3;
  Field.fill r 1e-3;
  let dmax =
    match max_domains with
    | Some d -> min d Util.Pool.max_domains
    | None -> min (Domain.recommended_domain_count ()) Util.Pool.max_domains
  in
  let all = fusion_space ~max_domains:dmax ~n () in
  let plans =
    match lint with
    | None -> all
    | Some vet ->
      List.filter
        (fun (_, (plan : fusion_plan)) ->
          (plan = { mode = Linalg.Fused.Unfused; geometry = None })
          || vet ~mode:plan.mode ~geometry:plan.geometry = None)
        all
  in
  let signature =
    Printf.sprintf "n%d:dmax%d:v%x" n dmax
      (Hashtbl.hash (List.map fst all))
  in
  let winner =
    Tuner.tune tuner ~kernel:"cg_blas1" ~signature
      (List.map
         (fun (label, plan) ->
           Tuner.candidate label (fun () ->
               ignore (run_fusion_plan plan ~p ~ap ~x ~r : float)))
         plans)
  in
  (winner, List.assoc winner plans)

(* ---- batch-width (multi-RHS) axis ----
   The launch dimension opened by Wilson.hop_multi: how many
   right-hand sides ride one gauge-link stream, crossed with the pool
   geometries. The width is part of BOTH the label (so a winner names
   its k) and the cache signature (the batch ceiling kmax plus the
   label-space hash) — a single-RHS winner can never be served for a
   batched space or vice versa; Check.Mrhs_check rule MRHS003 audits
   exactly that aliasing on extracted plans. *)

type mrhs_plan = {
  k : int;
  geometry : (int * int) option;
}

let mrhs_label (plan : mrhs_plan) =
  match plan.geometry with
  | None -> Printf.sprintf "k%d_serial" plan.k
  | Some g -> geom_label (Printf.sprintf "k%d" plan.k) g

let mrhs_widths = [ 1; 2; 4; 8 ]

let mrhs_space ?max_domains ?(widths = mrhs_widths) ~sites () =
  let geoms = pool_geometries ?max_domains ~chunk_floor:16 ~n:sites () in
  List.concat_map
    (fun k ->
      { k; geometry = None }
      :: List.map (fun g -> { k; geometry = Some g }) geoms)
    widths
  |> List.map (fun p -> (mrhs_label p, p))

(* Tune the batch width × pool geometry on a concrete batch of field
   pairs. Fairness: every candidate processes the full [kmax]-wide
   batch, a width-k plan as ceil(kmax/k) sub-batches — so a narrow
   width is priced on the gauge re-streaming it actually costs, not
   handed fewer vectors. A width-1 serial plan is always in the space
   (the single-RHS baseline the tuner may keep). *)
let tune_hop_multi ?max_domains tuner (w : Dirac.Wilson.t)
    ~(srcs : Field.t array) ~(dsts : Field.t array) ~signature =
  let kmax = Array.length srcs in
  if kmax = 0 || Array.length dsts <> kmax then
    invalid_arg "Variants.tune_hop_multi: batch width mismatch";
  let n = Field.length dsts.(0) / Dirac.Wilson.floats_per_site in
  let dmax =
    match max_domains with
    | Some d -> min d Util.Pool.max_domains
    | None -> min (Domain.recommended_domain_count ()) Util.Pool.max_domains
  in
  let widths = List.filter (fun k -> k <= kmax) mrhs_widths in
  let widths = if widths = [] then [ kmax ] else widths in
  let all = mrhs_space ~max_domains:dmax ~widths ~sites:n () in
  let run (plan : mrhs_plan) =
    let off = ref 0 in
    while !off < kmax do
      let width = min plan.k (kmax - !off) in
      let ss = Array.sub srcs !off width and ds = Array.sub dsts !off width in
      (match plan.geometry with
      | None ->
        Dirac.Wilson.hop_multi_with (Util.Pool.shared ~domains:1) w ~srcs:ss
          ~dsts:ds
      | Some (d, c) ->
        Dirac.Wilson.hop_multi_with (Util.Pool.shared ~domains:d) ~chunk:c w
          ~srcs:ss ~dsts:ds);
      off := !off + width
    done
  in
  let signature =
    Printf.sprintf "%s:sites%d:kmax%d:dmax%d:v%x" signature n kmax dmax
      (Hashtbl.hash (List.map fst all))
  in
  let winner =
    Tuner.tune tuner ~kernel:"wilson_hop_multi" ~signature
      (List.map
         (fun (label, plan) -> Tuner.candidate label (fun () -> run plan))
         all)
  in
  (winner, List.assoc winner all)

(* ---- gauge-codec (reconstruct) axis ----
   The launch dimension opened by the compressed link stores
   (Linalg.Su3_codec / Lattice.Recon): which codec the hop streams its
   links through, crossed with batch width and pool geometry. The
   codec is part of BOTH the label (a winner names its codec) and the
   cache signature (via the label-space hash) — a full18 winner can
   never be served for a compressed space or vice versa;
   Check.Recon_check rule RECON002 audits exactly that aliasing on
   executed plans. *)

type recon_plan = {
  recon : Linalg.Su3_codec.codec;
  rk : int;
  rgeometry : (int * int) option;
}

let recon_label (plan : recon_plan) =
  Printf.sprintf "%s_%s"
    (Linalg.Su3_codec.name plan.recon)
    (mrhs_label { k = plan.rk; geometry = plan.rgeometry })

let recon_space ?max_domains ?(codecs = Linalg.Su3_codec.all)
    ?(widths = mrhs_widths) ~sites () =
  let geoms = pool_geometries ?max_domains ~chunk_floor:16 ~n:sites () in
  List.concat_map
    (fun recon ->
      List.concat_map
        (fun rk ->
          { recon; rk; rgeometry = None }
          :: List.map (fun g -> { recon; rk; rgeometry = Some g }) geoms)
        widths)
    codecs
  |> List.map (fun p -> (recon_label p, p))

(* Tune codec × batch width × pool geometry on a concrete batch. One
   Wilson operator is built per codec from the same geometry and gauge
   (each owns its packed store); every candidate processes the full
   [kmax]-wide batch as sub-batches of its width — the same fairness
   rule as [tune_hop_multi], so a narrow width pays its gauge
   re-streaming and a compressed codec pays its reconstruction flops
   on the full batch. The uncompressed single-RHS serial baseline
   (full18_k1_serial) is always in the space: the tuner can refuse
   compression wholesale. [codecs] restricts the axis (e.g. dropping
   Recon8 for a gauge with degenerate links). *)
let tune_hop_recon ?max_domains ?codecs tuner geom gauge
    ~(srcs : Field.t array) ~(dsts : Field.t array) ~signature =
  let kmax = Array.length srcs in
  if kmax = 0 || Array.length dsts <> kmax then
    invalid_arg "Variants.tune_hop_recon: batch width mismatch";
  let n = Field.length dsts.(0) / Dirac.Wilson.floats_per_site in
  let dmax =
    match max_domains with
    | Some d -> min d Util.Pool.max_domains
    | None -> min (Domain.recommended_domain_count ()) Util.Pool.max_domains
  in
  let widths = List.filter (fun k -> k <= kmax) mrhs_widths in
  let widths = if widths = [] then [ kmax ] else widths in
  let all = recon_space ~max_domains:dmax ?codecs ~widths ~sites:n () in
  let ops =
    List.map
      (fun recon -> (recon, Dirac.Wilson.of_geometry ~recon geom gauge))
      (match codecs with None -> Linalg.Su3_codec.all | Some cs -> cs)
  in
  let run (plan : recon_plan) =
    let w = List.assoc plan.recon ops in
    let off = ref 0 in
    while !off < kmax do
      let width = min plan.rk (kmax - !off) in
      let ss = Array.sub srcs !off width and ds = Array.sub dsts !off width in
      (match plan.rgeometry with
      | None ->
        Dirac.Wilson.hop_multi_with (Util.Pool.shared ~domains:1) w ~srcs:ss
          ~dsts:ds
      | Some (d, c) ->
        Dirac.Wilson.hop_multi_with (Util.Pool.shared ~domains:d) ~chunk:c w
          ~srcs:ss ~dsts:ds);
      off := !off + width
    done
  in
  let signature =
    Printf.sprintf "%s:sites%d:kmax%d:dmax%d:v%x" signature n kmax dmax
      (Hashtbl.hash (List.map fst all))
  in
  let winner =
    Tuner.tune tuner ~kernel:"wilson_hop_recon" ~signature
      (List.map
         (fun (label, plan) -> Tuner.candidate label (fun () -> run plan))
         all)
  in
  (winner, List.assoc winner all)

(* Tune axpy on vectors of a given size: serial unroll variants plus
   pooled geometries in one search space. The signature carries both
   the length and the domain cap (the cache-key audit: a winner tuned
   at one (n, machine width) is never served for another). *)
let tune_axpy ?max_domains tuner ~n =
  let x = Field.create n and y = Field.create n in
  Field.fill x 1.;
  let dmax =
    match max_domains with
    | Some d -> min d Util.Pool.max_domains
    | None -> min (Domain.recommended_domain_count ()) Util.Pool.max_domains
  in
  let pooled =
    List.map
      (fun (d, c) ->
        ( geom_label "pool" (d, c),
          fun alpha x y ->
            Field.axpy_with (Util.Pool.shared ~domains:d) ~chunk:c alpha x y ))
      (pool_geometries ~max_domains:dmax ~n ())
  in
  let variants = axpy_variants @ pooled in
  let signature = Printf.sprintf "n%d:dmax%d" n dmax in
  let winner =
    Tuner.tune tuner ~kernel:"axpy" ~signature
      (List.map
         (fun (label, f) -> Tuner.candidate label (fun () -> f 0.5 x y))
         variants)
  in
  (winner, List.assoc winner variants)

(* ---- deflation-rank axis ----
   The iteration-count axis opened by Solver.Deflate: how many low
   modes to compute once per gauge configuration and deflate out of
   every solve on it. Unlike the traffic axes above, the trade here is
   setup cost vs per-solve iteration reduction, so a candidate is
   priced on a whole campaign slice: Lanczos setup for its rank PLUS
   [solves] deflated solves on the same right-hand-side stream — the
   rank only wins if its setup amortizes within the campaign's solve
   count. The rank is part of BOTH the label (a winner names its r;
   Check.Deflate_check rule DEF003 audits executed plans against it)
   and the cache signature (solve count + label-space hash). The
   rank-0 undeflated baseline is always in the space — the tuner can
   refuse deflation wholesale (e.g. heavy quark masses, where the low
   modes are not separated and setup never pays). *)

type deflation_plan = {
  rank : int;
  solves : int;  (* campaign solves the setup amortizes over *)
}

let deflation_ranks = [ 0; 2; 4; 8 ]

let deflation_label (plan : deflation_plan) =
  Printf.sprintf "defl_r%d_s%d" plan.rank plan.solves

let deflation_space ?(ranks = deflation_ranks) ~solves () =
  let ranks = List.sort_uniq compare (0 :: ranks) in
  List.map (fun rank -> (deflation_label { rank; solves }, { rank; solves })) ranks

let tune_deflation ?ranks ?(solves = 24) ?(tol = 1e-8) ?(lanczos_tol = 1e-6)
    ?(seed = 11) tuner ~apply ~n ~signature =
  if solves < 1 then invalid_arg "Variants.tune_deflation: solves >= 1";
  let all = deflation_space ?ranks ~solves () in
  (* the campaign's right-hand-side stream: one fixed deterministic
     draw, identical for every candidate (fairness) *)
  let bs =
    let rng = Util.Rng.create seed in
    Array.init solves (fun _ ->
        let b = Field.create n in
        Field.gaussian rng b;
        b)
  in
  let max_iter = 200 * n in
  let run (plan : deflation_plan) =
    (* setup is INSIDE the timed region: that is the amortization
       being tuned *)
    let deflate =
      if plan.rank = 0 then None
      else begin
        let rng = Util.Rng.create (seed + plan.rank) in
        let res =
          Solver.Lanczos.lowest ~tol:lanczos_tol ~rank:plan.rank ~apply ~n
            ~rng ()
        in
        Some (Solver.Deflate.of_lanczos ~config_hash:0 res)
      end
    in
    Array.iter
      (fun b ->
        ignore
          (Solver.Cg.solve ?deflate ~apply ~b ~tol ~max_iter
             ~flops_per_apply:1. ()
            : Field.t * Solver.Cg.stats))
      bs
  in
  let signature =
    Printf.sprintf "%s:n%d:s%d:v%x" signature n solves
      (Hashtbl.hash (List.map fst all))
  in
  let winner =
    Tuner.tune tuner ~kernel:"cg_deflate" ~signature
      (List.map
         (fun (label, plan) -> Tuner.candidate label (fun () -> run plan))
         all)
  in
  (winner, List.assoc winner all)
