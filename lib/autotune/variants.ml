(* Launch-parameter spaces for the real OCaml kernels, so the
   autotuner has genuine knobs to search — the analogue of CUDA block
   size / grid shape for this implementation:

   - BLAS-1 kernels: manual unroll depth.
   - Wilson stencil: site-traversal tile size (temporal blocking of
     the site loop changes the cache behaviour of neighbour reads).

   Each variant is a drop-in replacement verified identical by the
   test suite; only speed differs. *)

module Field = Linalg.Field
open Bigarray

(* ---- axpy unroll variants ---- *)

let axpy_plain alpha (x : Field.t) (y : Field.t) =
  for i = 0 to Field.length x - 1 do
    Array1.unsafe_set y i (Array1.unsafe_get y i +. (alpha *. Array1.unsafe_get x i))
  done

let axpy_unroll4 alpha (x : Field.t) (y : Field.t) =
  let n = Field.length x in
  let n4 = n - (n mod 4) in
  let i = ref 0 in
  while !i < n4 do
    let i0 = !i in
    Array1.unsafe_set y i0 (Array1.unsafe_get y i0 +. (alpha *. Array1.unsafe_get x i0));
    Array1.unsafe_set y (i0 + 1)
      (Array1.unsafe_get y (i0 + 1) +. (alpha *. Array1.unsafe_get x (i0 + 1)));
    Array1.unsafe_set y (i0 + 2)
      (Array1.unsafe_get y (i0 + 2) +. (alpha *. Array1.unsafe_get x (i0 + 2)));
    Array1.unsafe_set y (i0 + 3)
      (Array1.unsafe_get y (i0 + 3) +. (alpha *. Array1.unsafe_get x (i0 + 3)));
    i := i0 + 4
  done;
  for j = n4 to n - 1 do
    Array1.unsafe_set y j (Array1.unsafe_get y j +. (alpha *. Array1.unsafe_get x j))
  done

let axpy_unroll8 alpha (x : Field.t) (y : Field.t) =
  let n = Field.length x in
  let n8 = n - (n mod 8) in
  let i = ref 0 in
  while !i < n8 do
    for k = 0 to 7 do
      let j = !i + k in
      Array1.unsafe_set y j (Array1.unsafe_get y j +. (alpha *. Array1.unsafe_get x j))
    done;
    i := !i + 8
  done;
  for j = n8 to n - 1 do
    Array1.unsafe_set y j (Array1.unsafe_get y j +. (alpha *. Array1.unsafe_get x j))
  done

let axpy_variants : (string * (float -> Field.t -> Field.t -> unit)) list =
  [ ("plain", axpy_plain); ("unroll4", axpy_unroll4); ("unroll8", axpy_unroll8) ]

(* ---- stencil traversal variants ---- *)

(* Site orderings for the Wilson hop: natural lexicographic, or tiles
   of [tile] consecutive sites interleaved across the volume (a poor
   man's launch-geometry knob). *)
let site_order_natural n = Array.init n Fun.id

let site_order_tiled ~tile n =
  let out = Array.make n 0 in
  let idx = ref 0 in
  let n_tiles = (n + tile - 1) / tile in
  for t = 0 to n_tiles - 1 do
    let lo = t * tile in
    let hi = min n (lo + tile) in
    for s = lo to hi - 1 do
      out.(!idx) <- s;
      incr idx
    done
  done;
  out

let site_order_strided ~stride n =
  let out = Array.make n 0 in
  let idx = ref 0 in
  for r = 0 to stride - 1 do
    let s = ref r in
    while !s < n do
      out.(!idx) <- !s;
      incr idx;
      s := !s + stride
    done
  done;
  out

let hop_orders n =
  [
    ("natural", site_order_natural n);
    ("tile256", site_order_tiled ~tile:256 n);
    ("tile1024", site_order_tiled ~tile:1024 n);
    ("stride2", site_order_strided ~stride:2 n);
  ]

(* ---- pool launch geometries ----
   The multicore launch axis: (ndomains, chunk) pairs, the laptop
   analogue of CUDA block/grid shape. Domain counts are powers of two
   up to the machine (capped by [Domain.recommended_domain_count], or
   the explicit [max_domains] the tests use to exercise the space on
   any box); chunks are one and a quarter of the per-lane share,
   floored so tiny problems do not degenerate to per-element dispatch.
   Pooled candidates draw their pool from [Util.Pool.shared], so a
   tuning sweep spawns each width once. *)
let pool_geometries ?max_domains ?(chunk_floor = 1024) ~n () =
  let dmax =
    match max_domains with
    | Some d -> min d Util.Pool.max_domains
    | None -> min (Domain.recommended_domain_count ()) Util.Pool.max_domains
  in
  let rec widths d acc = if d > dmax then List.rev acc else widths (d * 2) (d :: acc) in
  List.concat_map
    (fun d ->
      let per_lane = max 1 (n / d) in
      let cands =
        List.sort_uniq compare
          [ max chunk_floor (per_lane / 4); max chunk_floor per_lane ]
      in
      List.map (fun c -> (d, c)) cands)
    (widths 2 [])

let geom_label prefix (d, c) = Printf.sprintf "%s_d%d_c%d" prefix d c

(* Execution plan a hop tuning run settles on: a serial traversal
   order, or a pooled site-partitioned launch. *)
type hop_plan =
  | Serial_order of int array
  | Pooled of { domains : int; chunk : int }

(* Tune the hop traversal for a kernel on a concrete field pair,
   returning the winning label and its execution plan. The caller's
   [signature] is extended with the site count and the domain cap so a
   winner tuned for one problem shape or machine width can never be
   served for another. *)
let tune_hop ?max_domains tuner (w : Dirac.Wilson.t) ~(src : Field.t)
    ~(dst : Field.t) ~signature =
  let n = Field.length dst / Dirac.Wilson.floats_per_site in
  let dmax =
    match max_domains with
    | Some d -> min d Util.Pool.max_domains
    | None -> min (Domain.recommended_domain_count ()) Util.Pool.max_domains
  in
  let plans =
    List.map (fun (label, sites) -> (label, Serial_order sites)) (hop_orders n)
    @ List.map
        (fun (d, c) -> (geom_label "pool" (d, c), Pooled { domains = d; chunk = c }))
        (pool_geometries ~max_domains:dmax ~chunk_floor:16 ~n ())
  in
  let run = function
    | Serial_order sites -> Dirac.Wilson.hop_sites w ~sites ~src ~dst ()
    | Pooled { domains; chunk } ->
      Dirac.Wilson.hop_with (Util.Pool.shared ~domains) ~chunk w ~src ~dst
  in
  let signature = Printf.sprintf "%s:n%d:dmax%d" signature n dmax in
  let winner =
    Tuner.tune tuner ~kernel:"wilson_hop" ~signature
      (List.map
         (fun (label, plan) -> Tuner.candidate label (fun () -> run plan))
         plans)
  in
  (winner, List.assoc winner plans)

(* Tune axpy on vectors of a given size: serial unroll variants plus
   pooled geometries in one search space. The signature carries both
   the length and the domain cap (the cache-key audit: a winner tuned
   at one (n, machine width) is never served for another). *)
let tune_axpy ?max_domains tuner ~n =
  let x = Field.create n and y = Field.create n in
  Field.fill x 1.;
  let dmax =
    match max_domains with
    | Some d -> min d Util.Pool.max_domains
    | None -> min (Domain.recommended_domain_count ()) Util.Pool.max_domains
  in
  let pooled =
    List.map
      (fun (d, c) ->
        ( geom_label "pool" (d, c),
          fun alpha x y ->
            Field.axpy_with (Util.Pool.shared ~domains:d) ~chunk:c alpha x y ))
      (pool_geometries ~max_domains:dmax ~n ())
  in
  let variants = axpy_variants @ pooled in
  let signature = Printf.sprintf "n%d:dmax%d" n dmax in
  let winner =
    Tuner.tune tuner ~kernel:"axpy" ~signature
      (List.map
         (fun (label, f) -> Tuner.candidate label (fun () -> f 0.5 x y))
         variants)
  in
  (winner, List.assoc winner variants)
