(* neutron_check — CLI driver for the static verification & sanitizer
   subsystem (lib/check). Modes:

     neutron_check                 verify the shipped example artifacts
                                   (exit 1 on any error)
     neutron_check --fixture NAME  run one seeded defect fixture; the
                                   defect must be found, so the exit
                                   code is 1 when diagnostics contain
                                   errors (the expected outcome)
     neutron_check --selftest      run all seeded fixtures and require
                                   every one to be detected (exit 2 on
                                   a missed defect)
     neutron_check --rules         print the rule catalog
     neutron_check --list          list the seeded fixtures
     neutron_check --plan NAME     extract a named solver/transport plan,
                                   pretty-print it and run the static
                                   analyzer (exit 1 on errors); NAME=list
                                   lists the catalog
     neutron_check --plan-dump NAME  print the plan's exact IR text
                                   (round-trips through Plan_ir.of_string)

   `dune build @check` runs the first and third modes over the build. *)

let quiet = ref false
let verbose = ref false
let mode = ref `Suite

let usage =
  "neutron_check [--fixture NAME | --selftest | --rules | --list | --plan \
   NAME | --plan-dump NAME] [--quiet] [--verbose]"

let spec =
  [
    ("--fixture", Arg.String (fun n -> mode := `Fixture n), "NAME run one seeded defect fixture");
    ("--selftest", Arg.Unit (fun () -> mode := `Selftest), " verify every seeded fixture is detected");
    ("--rules", Arg.Unit (fun () -> mode := `Rules), " print the rule catalog");
    ("--list", Arg.Unit (fun () -> mode := `List), " list the seeded fixtures");
    ("--plan", Arg.String (fun n -> mode := `Plan n), "NAME lint a named plan (NAME=list for the catalog)");
    ("--plan-dump", Arg.String (fun n -> mode := `Plan_dump n), "NAME print a plan's exact IR text");
    ("--quiet", Arg.Set quiet, " only print the summary and failures");
    ("--verbose", Arg.Set verbose, " also print info-level findings");
  ]

let print_diags ds =
  if not !quiet then
    List.iter
      (fun d -> print_endline ("   " ^ Check.Diagnostic.to_string d))
      (Check.Diagnostic.sort
         (if !verbose then ds
          else List.filter (fun d -> d.Check.Diagnostic.severity <> Check.Diagnostic.Info) ds))

let run_suite () =
  let report = Check.standard_suite () in
  if !quiet then begin
    List.iter
      (fun (pass, ds) ->
        List.iter
          (fun d ->
            if Check.Diagnostic.is_error d then
              Printf.printf "%s: %s\n" pass (Check.Diagnostic.to_string d))
          ds)
      report;
    print_endline (Check.Diagnostic.summary report)
  end
  else Check.Diagnostic.print_report ~verbose:!verbose report;
  exit (Check.Diagnostic.exit_code report)

let run_fixture name =
  match Check.Fixtures.find name with
  | None ->
    Printf.eprintf "unknown fixture %S; try --list\n" name;
    exit 2
  | Some f ->
    Printf.printf "fixture %s: %s\n" f.Check.Fixtures.name f.Check.Fixtures.defect;
    let ds = f.Check.Fixtures.run () in
    print_diags ds;
    Printf.printf "%d error(s), %d warning(s)\n" (Check.Diagnostic.count_errors ds)
      (Check.Diagnostic.count_warnings ds);
    (* finding the seeded defect is the point: the expected rule firing
       (as error or warning — some defect classes, like HALO012's
       wasted copies, are warnings by design) → exit 1 *)
    let fired =
      List.exists
        (fun (d : Check.Diagnostic.t) ->
          d.Check.Diagnostic.rule = f.Check.Fixtures.expect
          && d.Check.Diagnostic.severity <> Check.Diagnostic.Info)
        ds
    in
    exit (if fired then 1 else 0)

let run_selftest () =
  let rows = Check.selftest () in
  let missed = ref 0 in
  List.iter
    (fun ((f : Check.Fixtures.t), fired, detected) ->
      if not detected then incr missed;
      if (not !quiet) || not detected then
        Printf.printf "%-16s %-8s expects %-8s fired [%s]  %s\n" f.Check.Fixtures.name
          (if detected then "DETECTED" else "MISSED")
          f.Check.Fixtures.expect
          (String.concat " " fired)
          f.Check.Fixtures.defect)
    rows;
  Printf.printf "selftest: %d/%d seeded defects detected\n"
    (List.length rows - !missed)
    (List.length rows);
  exit (if !missed > 0 then 2 else 0)

let plan_catalog () =
  List.iter
    (fun (name, build) ->
      let p = build () in
      Printf.printf "%-16s %3d step(s), %d buffer(s), n=%d\n" name
        (List.length p.Check.Plan_ir.steps)
        (List.length p.Check.Plan_ir.buffers)
        p.Check.Plan_ir.n)
    Check.Plan_extract.catalog;
  exit 0

let find_plan name =
  match Check.Plan_extract.find name with
  | Some build -> build ()
  | None ->
    Printf.eprintf "unknown plan %S; try --plan list\n" name;
    exit 2

let run_plan name =
  if name = "list" then plan_catalog ();
  let p = find_plan name in
  if not !quiet then print_string (Check.Plan_ir.pretty p);
  let ds = Check.solver_plan p in
  print_diags ds;
  (* Belt and braces on PLAN005: even if the diagnostic pass were ever
     softened, a model-priced plan whose sweep total disagrees with
     Perf_model fails the run outright — the gap is derived from the
     plan, never whitelisted. *)
  let gap = Check.Plan_check.sweep_gap p in
  (match gap with
  | Some g when g <> 0 ->
    Printf.printf "plan %s: sweep gap %+d vs Perf_model.blas1_sweeps\n" name g
  | _ -> ());
  Printf.printf "plan %s: %d error(s), %d warning(s)\n" name
    (Check.Diagnostic.count_errors ds)
    (Check.Diagnostic.count_warnings ds);
  exit
    (if Check.Diagnostic.has_errors ds || gap <> None && gap <> Some 0 then 1
     else 0)

let run_plan_dump name =
  if name = "list" then plan_catalog ();
  let p = find_plan name in
  let text = Check.Plan_ir.to_string p in
  (* the dump must round-trip: it is the interchange format *)
  (match Check.Plan_ir.of_string text with
  | Ok p' when Check.Plan_ir.to_string p' = text -> ()
  | Ok _ ->
    Printf.eprintf "internal error: %s does not round-trip exactly\n" name;
    exit 2
  | Error e ->
    Printf.eprintf "internal error: %s does not parse back: %s\n" name e;
    exit 2);
  print_string text;
  exit 0

let run_rules () =
  List.iter
    (fun (pass, rules) ->
      Printf.printf "%s:\n" pass;
      List.iter (fun (id, desc) -> Printf.printf "  %-8s %s\n" id desc) rules)
    Check.all_rules;
  exit 0

let run_list () =
  List.iter
    (fun (f : Check.Fixtures.t) ->
      Printf.printf "%-16s %-8s %s\n" f.Check.Fixtures.name f.Check.Fixtures.expect
        f.Check.Fixtures.defect)
    Check.Fixtures.all;
  exit 0

let () =
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    usage;
  match !mode with
  | `Suite -> run_suite ()
  | `Fixture n -> run_fixture n
  | `Selftest -> run_selftest ()
  | `Rules -> run_rules ()
  | `List -> run_list ()
  | `Plan n -> run_plan n
  | `Plan_dump n -> run_plan_dump n
