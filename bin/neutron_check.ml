(* neutron_check — CLI driver for the static verification & sanitizer
   subsystem (lib/check). Modes:

     neutron_check                 verify the shipped example artifacts
                                   (exit 1 on any error)
     neutron_check --fixture NAME  run one seeded defect fixture; the
                                   defect must be found, so the exit
                                   code is 1 when diagnostics contain
                                   errors (the expected outcome)
     neutron_check --selftest      run all seeded fixtures and require
                                   every one to be detected (exit 2 on
                                   a missed defect)
     neutron_check --rules         print the rule catalog
     neutron_check --list          list the seeded fixtures

   `dune build @check` runs the first and third modes over the build. *)

let quiet = ref false
let verbose = ref false
let mode = ref `Suite

let usage =
  "neutron_check [--fixture NAME | --selftest | --rules | --list] [--quiet] \
   [--verbose]"

let spec =
  [
    ("--fixture", Arg.String (fun n -> mode := `Fixture n), "NAME run one seeded defect fixture");
    ("--selftest", Arg.Unit (fun () -> mode := `Selftest), " verify every seeded fixture is detected");
    ("--rules", Arg.Unit (fun () -> mode := `Rules), " print the rule catalog");
    ("--list", Arg.Unit (fun () -> mode := `List), " list the seeded fixtures");
    ("--quiet", Arg.Set quiet, " only print the summary and failures");
    ("--verbose", Arg.Set verbose, " also print info-level findings");
  ]

let print_diags ds =
  if not !quiet then
    List.iter
      (fun d -> print_endline ("   " ^ Check.Diagnostic.to_string d))
      (Check.Diagnostic.sort
         (if !verbose then ds
          else List.filter (fun d -> d.Check.Diagnostic.severity <> Check.Diagnostic.Info) ds))

let run_suite () =
  let report = Check.standard_suite () in
  if !quiet then begin
    List.iter
      (fun (pass, ds) ->
        List.iter
          (fun d ->
            if Check.Diagnostic.is_error d then
              Printf.printf "%s: %s\n" pass (Check.Diagnostic.to_string d))
          ds)
      report;
    print_endline (Check.Diagnostic.summary report)
  end
  else Check.Diagnostic.print_report ~verbose:!verbose report;
  exit (Check.Diagnostic.exit_code report)

let run_fixture name =
  match Check.Fixtures.find name with
  | None ->
    Printf.eprintf "unknown fixture %S; try --list\n" name;
    exit 2
  | Some f ->
    Printf.printf "fixture %s: %s\n" f.Check.Fixtures.name f.Check.Fixtures.defect;
    let ds = f.Check.Fixtures.run () in
    print_diags ds;
    Printf.printf "%d error(s), %d warning(s)\n" (Check.Diagnostic.count_errors ds)
      (Check.Diagnostic.count_warnings ds);
    (* finding the seeded defect is the point: the expected rule firing
       (as error or warning — some defect classes, like HALO012's
       wasted copies, are warnings by design) → exit 1 *)
    let fired =
      List.exists
        (fun (d : Check.Diagnostic.t) ->
          d.Check.Diagnostic.rule = f.Check.Fixtures.expect
          && d.Check.Diagnostic.severity <> Check.Diagnostic.Info)
        ds
    in
    exit (if fired then 1 else 0)

let run_selftest () =
  let rows = Check.selftest () in
  let missed = ref 0 in
  List.iter
    (fun ((f : Check.Fixtures.t), fired, detected) ->
      if not detected then incr missed;
      if (not !quiet) || not detected then
        Printf.printf "%-16s %-8s expects %-8s fired [%s]  %s\n" f.Check.Fixtures.name
          (if detected then "DETECTED" else "MISSED")
          f.Check.Fixtures.expect
          (String.concat " " fired)
          f.Check.Fixtures.defect)
    rows;
  Printf.printf "selftest: %d/%d seeded defects detected\n"
    (List.length rows - !missed)
    (List.length rows);
  exit (if !missed > 0 then 2 else 0)

let run_rules () =
  List.iter
    (fun (pass, rules) ->
      Printf.printf "%s:\n" pass;
      List.iter (fun (id, desc) -> Printf.printf "  %-8s %s\n" id desc) rules)
    Check.all_rules;
  exit 0

let run_list () =
  List.iter
    (fun (f : Check.Fixtures.t) ->
      Printf.printf "%-16s %-8s %s\n" f.Check.Fixtures.name f.Check.Fixtures.expect
        f.Check.Fixtures.defect)
    Check.Fixtures.all;
  exit 0

let () =
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    usage;
  match !mode with
  | `Suite -> run_suite ()
  | `Fixture n -> run_fixture n
  | `Selftest -> run_selftest ()
  | `Rules -> run_rules ()
  | `List -> run_list ()
