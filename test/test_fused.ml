(* Fused BLAS-1 solver kernel tests: the central contract is that
   every Linalg.Fused kernel — and every solver running with ~fused —
   is bit-identical to the unfused sequence it replaces, for any pool
   geometry. That now includes the stencil tail: Wilson.hop_tail and
   Cg.solve's ~apply_dot ride the p·Ap reduction on the stencil's own
   sweep and must match hop-then-xpay_dot bit-for-bit. Plus the fusion
   autotuner's bookkeeping (winner honesty, cache-key isolation, stale
   tunecache refusal) and the Perf_model's 5->2 sweep pricing. Pools
   come from Pool.shared so the file spawns each width once. *)

module Pool = Util.Pool
module Field = Linalg.Field
module Fused = Linalg.Fused
module Cg = Solver.Cg
module Mixed = Solver.Mixed
module Bicgstab = Solver.Bicgstab
module Variants = Autotune.Variants

let exact = Alcotest.(check (float 0.))

let mk_vec seed n =
  let v = Field.create n in
  Field.gaussian (Util.Rng.create seed) v;
  v

let bytes_equal a b = Field.to_array a = Field.to_array b

(* ---- kernel-level bit-identity over random geometries ---- *)

let geometry_gen = QCheck.(pair (int_range 1 8) (int_range 1 5000))

(* Every fused kernel vs its unfused definition, serial implicit path
   and explicit pooled path, on the same random data. *)
let prop_fused_kernels_bit_identical =
  QCheck.Test.make ~name:"fused kernels bit-identical to unfused sequences"
    ~count:40
    QCheck.(pair geometry_gen (int_range 1 4000))
    (fun ((domains, chunk), n) ->
      let pool = Pool.shared ~domains in
      let run_both fused_serial fused_pooled unfused =
        (* each closure gets fresh copies of the same random data and
           returns (output bytes, scalar) *)
        let s_ref, v_ref = unfused () in
        let s_f, v_f = fused_serial () in
        let s_p, v_p = fused_pooled pool chunk in
        s_ref = s_f && s_ref = s_p && bytes_equal v_ref v_f
        && bytes_equal v_ref v_p
      in
      let alpha = 0.37 and beta = -1.21 in
      let ok_axpy =
        let x = mk_vec 1 n in
        let mk () = (Field.copy (mk_vec 2 n) : Field.t) in
        run_both
          (fun () ->
            let y = mk () in
            (Fused.axpy_norm2 alpha x y, y))
          (fun pool chunk ->
            let y = mk () in
            (Fused.axpy_norm2_with pool ~chunk alpha x y, y))
          (fun () ->
            let y = mk () in
            Field.axpy alpha x y;
            (Field.norm2 y, y))
      in
      let ok_xpay =
        let x = mk_vec 3 n and q = mk_vec 4 n in
        run_both
          (fun () ->
            let p = mk_vec 5 n in
            (Fused.xpay_dot x beta p q, p))
          (fun pool chunk ->
            let p = mk_vec 5 n in
            (Fused.xpay_dot_with pool ~chunk x beta p q, p))
          (fun () ->
            let p = mk_vec 5 n in
            Field.xpay x beta p;
            (Field.dot_re p q, p))
      in
      let ok_cg =
        let p = mk_vec 6 n and ap = mk_vec 7 n in
        run_both
          (fun () ->
            let x = mk_vec 8 n and r = mk_vec 9 n in
            let s = Fused.cg_update alpha p ap x r in
            (s +. Field.norm2 x, r))
          (fun pool chunk ->
            let x = mk_vec 8 n and r = mk_vec 9 n in
            let s = Fused.cg_update_with pool ~chunk alpha p ap x r in
            (s +. Field.norm2 x, r))
          (fun () ->
            let x = mk_vec 8 n and r = mk_vec 9 n in
            Field.axpy alpha p x;
            Field.axpy (-.alpha) ap r;
            (Field.norm2 r +. Field.norm2 x, r))
      in
      let ok_caxpy =
        let x = mk_vec 10 n in
        run_both
          (fun () ->
            let y = mk_vec 11 n in
            (Fused.caxpy_norm2 (0.3, -0.8) x y, y))
          (fun pool chunk ->
            let y = mk_vec 11 n in
            (Fused.caxpy_norm2_with pool ~chunk (0.3, -0.8) x y, y))
          (fun () ->
            let y = mk_vec 11 n in
            Field.caxpy (0.3, -0.8) x y;
            (Field.norm2 y, y))
      in
      ok_axpy && ok_xpay && ok_cg && ok_caxpy)

(* ---- the stencil tail: hop_tail vs hop-then-xpay_dot ---- *)

(* The tail-fused Wilson hop against the unfused sequence it replaces,
   over random pool widths and chunk sizes (in sites, deliberately not
   tile-aligned — hop_tail_with must round them itself), with and
   without the xpay half of the tail. The dot must come out
   bit-identical because the tail folds through the same canonical
   2048-float blocked reduction Field.dot_re runs. *)
let prop_hop_tail_bit_identical =
  let geom = Lattice.Geometry.create [| 8; 8; 4; 4 |] in
  let gauge = Lattice.Gauge.warm geom (Util.Rng.create 91) ~eps:0.3 in
  let w = Dirac.Wilson.of_geometry geom gauge in
  let nf = Lattice.Geometry.volume geom * Dirac.Wilson.floats_per_site in
  QCheck.Test.make ~name:"tail-fused hop bit-identical to hop + xpay_dot"
    ~count:24
    QCheck.(triple (int_range 1 8) (int_range 1 2000) bool)
    (fun (domains, chunk, with_xpay) ->
      let pool = Pool.shared ~domains in
      let src = mk_vec 92 nf and q = mk_vec 93 nf in
      let dst_ref = Field.create nf and dst = Field.create nf in
      Dirac.Wilson.hop w ~src ~dst:dst_ref;
      if with_xpay then begin
        let beta = 0.37 in
        let out_ref = mk_vec 94 nf and out = mk_vec 94 nf in
        let s_ref = Fused.xpay_dot dst_ref beta out_ref q in
        let s =
          Dirac.Wilson.hop_tail_with pool ~chunk w ~src ~dst
            ~tail:(Fused.tail ~xpay:(out, beta) ~dot:q ())
        in
        s = s_ref && bytes_equal dst dst_ref && bytes_equal out out_ref
      end
      else begin
        let s_ref = Field.dot_re q dst_ref in
        let s =
          Dirac.Wilson.hop_tail_with pool ~chunk w ~src ~dst
            ~tail:(Fused.tail ~dot:q ())
        in
        s = s_ref && bytes_equal dst dst_ref
      end)

(* the runtime twin of the FUSE002/PLAN002 tail-alias fixtures: a tail
   whose xpay output is the stencil dst must be rejected before launch *)
let test_hop_tail_alias_guard () =
  let geom = Lattice.Geometry.create [| 4; 4; 4; 4 |] in
  let gauge = Lattice.Gauge.warm geom (Util.Rng.create 95) ~eps:0.3 in
  let w = Dirac.Wilson.of_geometry geom gauge in
  let nf = Lattice.Geometry.volume geom * Dirac.Wilson.floats_per_site in
  let src = mk_vec 96 nf and dst = Field.create nf in
  Alcotest.check_raises "tail out == dst rejected"
    (Invalid_argument "Wilson.hop_tail: tail output aliases the stencil dst")
    (fun () ->
      ignore
        (Dirac.Wilson.hop_tail w ~src ~dst
           ~tail:(Fused.tail ~xpay:(dst, 0.5) ~dot:src ())
          : float))

(* ---- solver-level bit-identity over random operators ---- *)

(* diagonal SPD operator (componentwise-real): spectrum in [1.5, 2.5] *)
let diag_apply n (src : Field.t) (dst : Field.t) =
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set dst i
      ((1.5 +. (float_of_int (i mod 97) /. 100.))
      *. Bigarray.Array1.unsafe_get src i)
  done

(* complex-diagonal operator for BiCGStab: multiplies pair k by
   (1.5 + k mod 7 / 10, 0.2) — complex-linear, well-conditioned *)
let cdiag_apply n (src : Field.t) (dst : Field.t) =
  for k = 0 to (n / 2) - 1 do
    let cr = 1.5 +. (float_of_int (k mod 7) /. 10.) and ci = 0.2 in
    let sr = Bigarray.Array1.unsafe_get src (2 * k) in
    let si = Bigarray.Array1.unsafe_get src ((2 * k) + 1) in
    Bigarray.Array1.unsafe_set dst (2 * k) ((cr *. sr) -. (ci *. si));
    Bigarray.Array1.unsafe_set dst ((2 * k) + 1) ((cr *. si) +. (ci *. sr))
  done

let with_default_pool domains f =
  let saved = Pool.get_default () in
  Fun.protect
    ~finally:(fun () -> Pool.set_default saved)
    (fun () ->
      Pool.set_default (Pool.shared ~domains);
      f ())

let trace_of f =
  let tr = ref [] in
  let r = f (fun r2 -> tr := r2 :: !tr) in
  (r, List.rev !tr)

(* fused CG/Mixed/BiCGStab vs unfused: same iteration count, same
   reliable-update count, bit-identical residual trajectory and
   solution, over random rhs, n and 1-8 domain default-pool widths
   (n spans the parallel cutoff so the implicit pooled path is hit) *)
let prop_fused_solvers_bit_identical =
  QCheck.Test.make ~name:"fused solvers bit-identical to unfused" ~count:8
    QCheck.(pair (int_range 1 8) (int_range 8 2200))
    (fun (domains, k) ->
      let n = 24 * k in
      let b = mk_vec 31 n in
      with_default_pool domains (fun () ->
          let solve_cg fused =
            trace_of (fun trace ->
                Cg.solve ~fused ~trace ~apply:(diag_apply n) ~b ~tol:1e-10
                  ~max_iter:300 ~flops_per_apply:1. ())
          in
          let (xu, su), tru = solve_cg false in
          let (xf, sf), trf = solve_cg true in
          let cg_ok =
            su.Cg.iterations = sf.Cg.iterations
            && tru = trf && bytes_equal xu xf
            && su.Cg.relative_residual = sf.Cg.relative_residual
          in
          let solve_mixed fused =
            trace_of (fun trace ->
                Mixed.solve ~fused ~trace ~apply:(diag_apply n) ~b
                  ~flops_per_apply:1. ())
          in
          let (mu, smu), trmu = solve_mixed false in
          let (mf, smf), trmf = solve_mixed true in
          let mixed_ok =
            smu.Cg.iterations = smf.Cg.iterations
            && smu.Cg.reliable_updates = smf.Cg.reliable_updates
            && trmu = trmf && bytes_equal mu mf
          in
          let solve_bi fused =
            trace_of (fun trace ->
                Bicgstab.solve ~fused ~trace ~apply:(cdiag_apply n) ~b
                  ~tol:1e-10 ~max_iter:300 ~flops_per_apply:1. ())
          in
          let (bu, sbu), trbu = solve_bi false in
          let (bf, sbf), trbf = solve_bi true in
          let bi_ok =
            sbu.Cg.iterations = sbf.Cg.iterations
            && trbu = trbf && bytes_equal bu bf
          in
          cg_ok && mixed_ok && bi_ok))

(* fused trajectories are also invariant across pool geometry: the
   same solve at n >= parallel_cutoff under widths 1/2/4/8 produces
   one bit-identical trajectory (the canonical blocked reduction at
   work through the fused terms) *)
let test_fused_geometry_invariance () =
  let n = 65536 in
  Alcotest.(check bool) "n clears the cutoff" true
    (n >= Field.parallel_cutoff);
  let b = mk_vec 41 n in
  let run domains =
    with_default_pool domains (fun () ->
        trace_of (fun trace ->
            let _, s =
              Cg.solve ~fused:true ~trace ~apply:(diag_apply n) ~b ~tol:1e-10
                ~max_iter:300 ~flops_per_apply:1. ()
            in
            s))
  in
  let s1, tr1 = run 1 in
  List.iter
    (fun d ->
      let sd, trd = run d in
      Alcotest.(check int)
        (Printf.sprintf "iterations d=%d" d)
        s1.Cg.iterations sd.Cg.iterations;
      Alcotest.(check bool)
        (Printf.sprintf "trajectory d=%d" d)
        true (tr1 = trd))
    [ 2; 4; 8 ]

(* The CG trajectory is invariant across all three tail modes:
   unfused, fused with the separate monitor dot, and tail-fused with
   p·Ap riding the operator's own sweep (~apply_dot). The apply_dot
   here folds the dot through the canonical reduce_block partials —
   exactly what the Wilson/Möbius tails do — so all three solves are
   one bit-identical trajectory, serial and pooled. *)
let test_cg_tail_fused_trajectory () =
  let n = 1 lsl 16 in
  let b = mk_vec 45 n in
  let apply = diag_apply n in
  let block = Field.reduce_block in
  let apply_dot (src : Field.t) (dst : Field.t) =
    apply src dst;
    let n_blocks = (n + block - 1) / block in
    let partials = Array.make n_blocks 0. in
    for bi = 0 to n_blocks - 1 do
      let lo = bi * block and hi = min n ((bi + 1) * block) in
      let acc = ref 0. in
      for i = lo to hi - 1 do
        acc :=
          !acc
          +. (Bigarray.Array1.unsafe_get src i
             *. Bigarray.Array1.unsafe_get dst i)
      done;
      partials.(bi) <- !acc
    done;
    let acc = ref 0. in
    Array.iter (fun v -> acc := !acc +. v) partials;
    !acc
  in
  List.iter
    (fun domains ->
      with_default_pool domains (fun () ->
          let run ?apply_dot fused =
            trace_of (fun trace ->
                Cg.solve ~fused ?apply_dot ~trace ~apply ~b ~tol:1e-10
                  ~max_iter:300 ~flops_per_apply:1. ())
          in
          let (xu, su), tru = run false in
          let (xf, sf), trf = run true in
          let (xt, st), trt = run ~apply_dot true in
          Alcotest.(check int)
            (Printf.sprintf "fused iterations d=%d" domains)
            su.Cg.iterations sf.Cg.iterations;
          Alcotest.(check int)
            (Printf.sprintf "tail-fused iterations d=%d" domains)
            su.Cg.iterations st.Cg.iterations;
          Alcotest.(check bool)
            (Printf.sprintf "fused trajectory d=%d" domains)
            true (tru = trf);
          Alcotest.(check bool)
            (Printf.sprintf "tail-fused trajectory d=%d" domains)
            true (tru = trt);
          Alcotest.(check bool)
            (Printf.sprintf "solutions bit-identical d=%d" domains)
            true
            (bytes_equal xu xf && bytes_equal xu xt);
          Alcotest.(check bool)
            (Printf.sprintf "residuals identical d=%d" domains)
            true
            (sf.Cg.relative_residual = st.Cg.relative_residual
            && su.Cg.relative_residual = st.Cg.relative_residual)))
    [ 1; 4 ]

(* Mixed reliable-update count is an invariant of the fusion mode *)
let test_mixed_reliable_updates_invariant () =
  let n = 24 * 512 in
  let b = mk_vec 51 n in
  (* a stiffer operator so the half-precision inner loop actually
     triggers several reliable updates *)
  let apply (src : Field.t) (dst : Field.t) =
    for i = 0 to n - 1 do
      Bigarray.Array1.unsafe_set dst i
        ((0.5 +. (4.5 *. float_of_int (i mod 53) /. 53.))
        *. Bigarray.Array1.unsafe_get src i)
    done
  in
  let _, su = Mixed.solve ~apply ~b ~flops_per_apply:1. () in
  let _, sf = Mixed.solve ~fused:true ~apply ~b ~flops_per_apply:1. () in
  Alcotest.(check bool) "several reliable updates" true
    (su.Cg.reliable_updates >= 2);
  Alcotest.(check int) "reliable updates invariant" su.Cg.reliable_updates
    sf.Cg.reliable_updates;
  Alcotest.(check int) "iterations invariant" su.Cg.iterations
    sf.Cg.iterations

(* ---- aliasing contract ---- *)

let test_alias_guards () =
  let n = 256 in
  let x = mk_vec 61 n and y = mk_vec 62 n in
  Alcotest.check_raises "axpy_norm2 y == x"
    (Invalid_argument
       "Fused.axpy_norm2: output aliases an input of a different role")
    (fun () -> ignore (Fused.axpy_norm2 1. x x : float));
  Alcotest.check_raises "cg_update x == ap"
    (Invalid_argument
       "Fused.cg_update: output aliases an input of a different role")
    (fun () -> ignore (Fused.cg_update 1. x y y x : float));
  Alcotest.check_raises "cg_update x == r"
    (Invalid_argument
       "Fused.cg_update: output aliases an input of a different role")
    (fun () -> ignore (Fused.cg_update 1. x y x x : float));
  (* the spec'd repetition is allowed: q = x read-only roles *)
  let p = mk_vec 63 n in
  ignore (Fused.xpay_dot x 0.5 p x : float)

(* ---- autotuner: fusion axis ---- *)

(* the winner the tuner picks must not lose to the always-present
   serial-unfused baseline (1.5x noise margin: these are real timings
   on a shared box) *)
let test_tuner_honesty () =
  let n = 1 lsl 18 in
  let tuner = Autotune.Tuner.create () in
  let winner, plan = Variants.tune_fusion tuner ~n in
  Alcotest.(check bool) "winner is in the space" true
    (List.mem_assoc winner (Variants.fusion_space ~n ()));
  let p = mk_vec 71 n and ap = mk_vec 72 n in
  let x = mk_vec 73 n and r = mk_vec 74 n in
  let time f =
    f ();
    let best = ref infinity in
    for _ = 1 to 5 do
      let t0 = Unix.gettimeofday () in
      f ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let baseline = { Variants.mode = Fused.Unfused; geometry = None } in
  let t_base =
    time (fun () -> ignore (Variants.run_fusion_plan baseline ~p ~ap ~x ~r : float))
  in
  let t_win =
    time (fun () -> ignore (Variants.run_fusion_plan plan ~p ~ap ~x ~r : float))
  in
  Alcotest.(check bool)
    (Printf.sprintf "winner %s (%.0fns) not slower than baseline (%.0fns) \
                     beyond noise" winner (t_win *. 1e9) (t_base *. 1e9))
    true
    (t_win <= t_base *. 1.5)

let test_fusion_space_and_cache_keys () =
  (* all three serial modes are always present, labels are unique, and
     every label leads with its plan's mode_name — the three modes are
     labelled disjointly so cached winners can never alias *)
  let space = Variants.fusion_space ~max_domains:4 ~n:(1 lsl 16) () in
  let labels = List.map fst space in
  List.iter
    (fun l ->
      Alcotest.(check bool) (l ^ " present") true (List.mem l labels))
    [ "unfused_serial"; "fused_serial"; "tailfused_serial" ];
  Alcotest.(check int) "labels unique" (List.length labels)
    (List.length (List.sort_uniq compare labels));
  List.iter
    (fun (label, (plan : Variants.fusion_plan)) ->
      let prefix = Fused.mode_name plan.Variants.mode in
      let plen = String.length prefix in
      Alcotest.(check bool) (label ^ " label encodes its mode") true
        (String.length label > plen
        && String.sub label 0 plen = prefix
        && label.[plen] = '_'))
    space;
  (* distinct shapes tune under distinct cache keys: two sizes, two
     entries, and re-tuning the first is a cache hit *)
  let tuner = Autotune.Tuner.create () in
  let w1, _ = Variants.tune_fusion ~max_domains:2 tuner ~n:4096 in
  let _ = Variants.tune_fusion ~max_domains:2 tuner ~n:8192 in
  Alcotest.(check int) "two cache entries" 2
    (List.length (Autotune.Tuner.entries tuner));
  let hits_before = Autotune.Tuner.hit_count tuner in
  let w1', _ = Variants.tune_fusion ~max_domains:2 tuner ~n:4096 in
  Alcotest.(check string) "stable winner on re-tune" w1 w1';
  Alcotest.(check int) "cache hit" (hits_before + 1)
    (Autotune.Tuner.hit_count tuner);
  (* the signature carries the variant-space hash (":v<hex>") so a
     cache persisted before a space change never keys the same *)
  List.iter
    (fun (e : Autotune.Tuner.entry) ->
      let has_v =
        let s = e.Autotune.Tuner.signature in
        let rec scan i =
          i + 1 < String.length s
          && ((s.[i] = ':' && s.[i + 1] = 'v') || scan (i + 1))
        in
        scan 0
      in
      Alcotest.(check bool)
        (e.Autotune.Tuner.signature ^ " carries the space hash") true has_v)
    (Autotune.Tuner.entries tuner)

(* a stale tunecache — an entry cached under the same key before the
   variant space changed shape — must never serve a winner label that
   no longer names a live candidate; the search re-runs and overwrites *)
let test_tuner_stale_cache_refused () =
  let tuner = Autotune.Tuner.create ~repeats:1 () in
  let cand l = Autotune.Tuner.candidate l (fun () -> ()) in
  let old_space = [ cand "old_a"; cand "old_b" ] in
  let w = Autotune.Tuner.tune tuner ~kernel:"k" ~signature:"s" old_space in
  Alcotest.(check bool) "first winner from the old space" true
    (List.mem w [ "old_a"; "old_b" ]);
  (* same key, renamed candidates: the cached winner is now stale *)
  let new_space = [ cand "new_a"; cand "new_b" ] in
  let tunes = Autotune.Tuner.tune_count tuner in
  let w' = Autotune.Tuner.tune tuner ~kernel:"k" ~signature:"s" new_space in
  Alcotest.(check bool) "stale winner not served" true
    (List.mem w' [ "new_a"; "new_b" ]);
  Alcotest.(check int) "a fresh search ran" (tunes + 1)
    (Autotune.Tuner.tune_count tuner);
  (* the overwritten entry is live again: next lookup is a cache hit *)
  let hits = Autotune.Tuner.hit_count tuner in
  let w'' = Autotune.Tuner.tune tuner ~kernel:"k" ~signature:"s" new_space in
  Alcotest.(check string) "refreshed winner served" w' w'';
  Alcotest.(check int) "cache hit after refresh" (hits + 1)
    (Autotune.Tuner.hit_count tuner)

(* ---- flops/bytes accounting and the Perf_model traffic term ---- *)

let test_flops_accounting () =
  exact "unfused 10n" 240. (Cg.blas1_flops 24);
  exact "fused 12n" 288. (Cg.blas1_flops ~fused:true 24);
  Alcotest.(check int) "per-site flops agree with Dirac.Flops" 240
    Dirac.Flops.cg_blas1_per_5d_site;
  Alcotest.(check int) "fused per-site flops" 288
    Dirac.Flops.cg_blas1_fused_per_5d_site;
  Alcotest.(check bool) "fused moves fewer bytes" true
    (Dirac.Flops.cg_blas1_bytes_per_5d_site ~fused:true
    < Dirac.Flops.cg_blas1_bytes_per_5d_site ~fused:false)

let test_perf_model_fusion_pricing () =
  let module PM = Machine.Perf_model in
  let module Spec = Machine.Spec in
  let module Policy = Machine.Policy in
  let p = PM.problem ~dims:[| 48; 48; 48; 64 |] ~l5:20 in
  let pol =
    { Policy.transfer = Policy.Staged_mpi; granularity = Policy.Coarse }
  in
  let get fusion =
    match PM.stencil_breakdown ?fusion Spec.sierra pol p ~n_gpus:16 with
    | Some b -> b
    | None -> Alcotest.fail "no grid"
  in
  let plain = get None in
  let unfused = get (Some false) in
  let fused = get (Some true) in
  (* omitting ?fusion leaves the calibrated model untouched: the
     BLAS-1 fields are zero and t_total is the bare stencil sum
     (t_copy/t_sync are zero under the default transport and no pool,
     and adding the zero t_blas1 is exact) *)
  exact "no fusion: zero sweeps" 0. plain.PM.blas1_sweeps_per_iter;
  exact "no fusion: zero bytes" 0. plain.PM.blas1_bytes;
  exact "no fusion: zero t_blas1" 0. plain.PM.t_blas1;
  exact "no fusion: t_total is the bare stencil sum"
    (plain.PM.t_stencil
    +. (plain.PM.t_comm_inter +. plain.PM.t_comm_intra +. plain.PM.t_latency)
    +. plain.PM.t_copy +. plain.PM.t_sync +. plain.PM.t_overhead)
    plain.PM.t_total;
  (* the 5->2 sweep reduction and its byte ratio *)
  exact "unfused sweeps" 5. unfused.PM.blas1_sweeps_per_iter;
  exact "fused sweeps" 2. fused.PM.blas1_sweeps_per_iter;
  exact "bytes scale with sweeps" (unfused.PM.blas1_bytes /. 5.)
    (fused.PM.blas1_bytes /. 2.);
  exact "bytes = sweeps x sites x 48"
    (5. *. unfused.PM.local_sites *. PM.blas1_bytes_per_site_sweep)
    unfused.PM.blas1_bytes;
  Alcotest.(check bool) "fused t_blas1 smaller" true
    (fused.PM.t_blas1 < unfused.PM.t_blas1);
  Alcotest.(check bool) "t_blas1 in t_total" true
    (fused.PM.t_total < unfused.PM.t_total);
  (* t_blas1 is the last addend of t_total, so the priced totals are
     exactly the unpriced total plus the traffic term *)
  exact "unfused total = bare + t_blas1"
    (plain.PM.t_total +. unfused.PM.t_blas1)
    unfused.PM.t_total;
  exact "fused total = bare + t_blas1"
    (plain.PM.t_total +. fused.PM.t_blas1)
    fused.PM.t_total

(* ---- dwf end-to-end smoke: fused schur solve equals unfused ---- *)

let test_dwf_fused_identical () =
  let geom = Lattice.Geometry.create [| 4; 4; 4; 4 |] in
  let gauge =
    Lattice.Gauge.with_antiperiodic_time
      (Lattice.Gauge.warm geom (Util.Rng.create 81) ~eps:0.2)
  in
  let params = Dirac.Mobius.mobius ~l5:4 ~m5:1.2 ~alpha:2.0 ~mass:0.05 in
  let t = Solver.Dwf_solve.create params geom gauge in
  let rhs = mk_vec 82 (Solver.Dwf_solve.field_length t) in
  let xu, su = Solver.Dwf_solve.solve ~tol:1e-8 t ~rhs in
  let xf, sf = Solver.Dwf_solve.solve ~fused:true ~tol:1e-8 t ~rhs in
  Alcotest.(check int) "iterations" su.Cg.iterations sf.Cg.iterations;
  Alcotest.(check bool) "solutions bit-identical" true (bytes_equal xu xf);
  Alcotest.(check bool) "converged" true sf.Cg.converged

let test_shutdown () = Pool.shutdown_shared ()

let suite =
  [
    QCheck_alcotest.to_alcotest prop_fused_kernels_bit_identical;
    QCheck_alcotest.to_alcotest prop_hop_tail_bit_identical;
    Alcotest.test_case "hop tail alias guard" `Quick test_hop_tail_alias_guard;
    QCheck_alcotest.to_alcotest prop_fused_solvers_bit_identical;
    Alcotest.test_case "fused trajectory invariant across geometries" `Quick
      test_fused_geometry_invariance;
    Alcotest.test_case "CG trajectory invariant across tail modes" `Quick
      test_cg_tail_fused_trajectory;
    Alcotest.test_case "Mixed reliable-update count invariant" `Quick
      test_mixed_reliable_updates_invariant;
    Alcotest.test_case "aliasing guards" `Quick test_alias_guards;
    Alcotest.test_case "tuner honesty: winner beats or ties baseline" `Quick
      test_tuner_honesty;
    Alcotest.test_case "fusion space labels and cache keys" `Quick
      test_fusion_space_and_cache_keys;
    Alcotest.test_case "stale tunecache winner refused" `Quick
      test_tuner_stale_cache_refused;
    Alcotest.test_case "flops/bytes accounting" `Quick test_flops_accounting;
    Alcotest.test_case "Perf_model 5->2 sweep pricing" `Quick
      test_perf_model_fusion_pricing;
    Alcotest.test_case "dwf solve fused == unfused" `Quick
      test_dwf_fused_identical;
    Alcotest.test_case "shutdown shared registry" `Quick test_shutdown;
  ]
