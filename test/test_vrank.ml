(* Tests for Vrank: halo exchange correctness and the domain-decomposed
   Wilson operator against the single-domain oracle. *)

module Geometry = Lattice.Geometry
module Gauge = Lattice.Gauge
module Domain = Lattice.Domain
module Field = Linalg.Field
module Comm = Vrank.Comm
module Dd = Vrank.Dd_wilson

let rng () = Util.Rng.create 44_100

let test_exchange_fills_ghosts () =
  (* After an exchange, every ghost slot holds the value of its global
     site (checked through local_to_global). *)
  let geom = Geometry.create [| 4; 4; 2; 2 |] in
  let dom = Domain.create geom [| 2; 2; 1; 1 |] in
  let comm = Comm.create dom ~dof:1 in
  (* global field = site index as a float *)
  let global = Field.of_array (Array.init (Geometry.volume geom) float_of_int) in
  let fields = Comm.create_fields comm in
  Comm.scatter comm global fields;
  Comm.halo_exchange comm fields;
  for r = 0 to Domain.n_ranks dom - 1 do
    let rg = Domain.rank_geometry dom r in
    for e = 0 to rg.Domain.ext_volume - 1 do
      Alcotest.(check (float 0.))
        (Printf.sprintf "rank %d ext %d" r e)
        (float_of_int rg.Domain.local_to_global.(e))
        (Bigarray.Array1.get fields.(r) e)
    done
  done

let test_exchange_byte_accounting () =
  let geom = Geometry.create [| 4; 4; 4; 4 |] in
  let dom = Domain.create geom [| 2; 1; 1; 2 |] in
  let dof = 24 in
  let comm = Comm.create dom ~dof in
  let fields = Comm.create_fields comm in
  Comm.halo_exchange comm fields;
  let stats = Comm.stats comm in
  Alcotest.(check int) "one full exchange" 1 stats.Comm.full_exchanges;
  Alcotest.(check int) "no partial exchange" 0 stats.Comm.partial_exchanges;
  Alcotest.(check int) "8 faces x 4 ranks" 32 stats.Comm.messages;
  (* total bytes = sum over ranks of halo bytes *)
  let expect = ref 0. in
  for r = 0 to Domain.n_ranks dom - 1 do
    expect := !expect +. Comm.halo_bytes_per_rank comm r
  done;
  Alcotest.(check (float 1e-6)) "byte accounting" !expect stats.Comm.bytes

let dd_matches_oracle grid dims =
  let geom = Geometry.create dims in
  let gauge = Gauge.random geom (rng ()) in
  let dom = Domain.create geom grid in
  let dd = Dd.create dom gauge in
  let w = Dirac.Wilson.of_geometry geom gauge in
  let n = Geometry.volume geom * 24 in
  let src = Field.create n in
  Field.gaussian (rng ()) src;
  let oracle = Field.create n in
  Dirac.Wilson.hop w ~src ~dst:oracle;
  let dd_result = Dd.hop_global dd src in
  Field.max_abs_diff oracle dd_result

let test_dd_wilson_grids () =
  List.iter
    (fun (grid, dims) ->
      let diff = dd_matches_oracle grid dims in
      Alcotest.(check bool)
        (Printf.sprintf "grid [%s] diff %g"
           (String.concat ";" (Array.to_list (Array.map string_of_int grid)))
           diff)
        true (diff < 1e-12))
    [
      ([| 1; 1; 1; 1 |], [| 4; 4; 2; 2 |]);
      ([| 2; 1; 1; 1 |], [| 4; 4; 2; 2 |]);
      ([| 2; 2; 1; 1 |], [| 4; 4; 2; 2 |]);
      ([| 1; 1; 2; 2 |], [| 2; 2; 4; 4 |]);
      ([| 2; 2; 2; 2 |], [| 4; 4; 4; 4 |]);
      ([| 1; 2; 1; 4 |], [| 4; 4; 4; 8 |]);
    ]

let test_dd_overlapped_equals_simple () =
  let geom = Geometry.create [| 4; 4; 4; 4 |] in
  let gauge = Gauge.random geom (rng ()) in
  let dom = Domain.create geom [| 2; 2; 1; 1 |] in
  let dd = Dd.create dom gauge in
  let src = Field.create (Geometry.volume geom * 24) in
  Field.gaussian (rng ()) src;
  let simple = Dd.hop_global ~overlapped:false dd src in
  let overlapped = Dd.hop_global ~overlapped:true dd src in
  Alcotest.(check (float 0.)) "overlap split exact" 0.
    (Field.max_abs_diff simple overlapped)

let test_dd_full_wilson_apply () =
  let geom = Geometry.create [| 4; 2; 2; 4 |] in
  let gauge = Gauge.random geom (rng ()) in
  let dom = Domain.create geom [| 2; 1; 1; 2 |] in
  let dd = Dd.create dom gauge in
  let w = Dirac.Wilson.of_geometry geom gauge in
  let n = Geometry.volume geom * 24 in
  let src = Field.create n in
  Field.gaussian (rng ()) src;
  let oracle = Field.create n in
  Dirac.Wilson.apply w ~mass:0.3 ~src ~dst:oracle;
  let got = Dd.apply_global dd ~mass:0.3 src in
  Alcotest.(check bool) "full operator matches" true
    (Field.max_abs_diff oracle got < 1e-12)

let test_dd_solve_matches_single_domain () =
  (* the full distributed CG path: halo exchange inside every operator
     application, allreduce for every inner product *)
  let geom = Geometry.create [| 4; 4; 2; 4 |] in
  let gauge = Gauge.warm geom (rng ()) ~eps:0.4 in
  let dom = Domain.create geom [| 2; 2; 1; 1 |] in
  let dd = Dd.create dom gauge in
  let solver = Vrank.Dd_solve.create dd ~mass:0.3 in
  let n = Geometry.volume geom * 24 in
  let b = Field.create n in
  Field.gaussian (rng ()) b;
  let x_dd, st, `Exchanges ex, `Allreduces ar =
    Vrank.Dd_solve.solve_normal ~tol:1e-10 solver ~b_global:b
  in
  Alcotest.(check bool) "converged" true st.Solver.Cg.converged;
  Alcotest.(check bool) "exchanges happened" true (ex >= st.Solver.Cg.iterations);
  (* two distributed dots per CG iteration plus setup reductions *)
  Alcotest.(check bool) "allreduces happened" true (ar >= 2 * st.Solver.Cg.iterations);
  (* single-domain oracle: CGNE on the same system *)
  let w = Dirac.Wilson.of_geometry geom gauge in
  let apply src dst = Dirac.Wilson.apply w ~mass:0.3 ~src ~dst in
  let rhs = Field.create n in
  let t1 = Field.create n in
  Dirac.Gamma.apply_gamma5 b t1;
  let t2 = Field.create n in
  apply t1 t2;
  Dirac.Gamma.apply_gamma5 t2 rhs;
  let apply_normal src dst =
    let u1 = Field.create n in
    apply src u1;
    let u2 = Field.create n in
    Dirac.Gamma.apply_gamma5 u1 u2;
    let u3 = Field.create n in
    apply u2 u3;
    Dirac.Gamma.apply_gamma5 u3 dst
  in
  let x_single, _ =
    Solver.Cg.solve ~apply:apply_normal ~b:rhs ~tol:1e-10 ~max_iter:5000
      ~flops_per_apply:1. ()
  in
  let d = Field.create n in
  Field.sub x_dd x_single d;
  let rel = sqrt (Field.norm2 d /. Field.norm2 x_single) in
  Alcotest.(check bool) (Printf.sprintf "dd = single (rel %g)" rel) true (rel < 1e-7)

let test_dd_solve_trivial_grid () =
  (* 1-rank decomposition must agree exactly too (self-exchange path) *)
  let geom = Geometry.create [| 2; 2; 2; 4 |] in
  let gauge = Gauge.warm geom (rng ()) ~eps:0.3 in
  let dom = Domain.create geom [| 1; 1; 1; 1 |] in
  let dd = Dd.create dom gauge in
  let solver = Vrank.Dd_solve.create dd ~mass:0.5 in
  let n = Geometry.volume geom * 24 in
  let b = Field.create n in
  Field.gaussian (rng ()) b;
  let x, st, _, _ = Vrank.Dd_solve.solve_normal ~tol:1e-10 solver ~b_global:b in
  Alcotest.(check bool) "converged" true st.Solver.Cg.converged;
  (* verify M^dag M x = M^dag b in the single-domain picture *)
  let w = Dirac.Wilson.of_geometry geom gauge in
  let mx = Field.create n in
  Dirac.Wilson.apply w ~mass:0.5 ~src:x ~dst:mx;
  let diff = Field.create n in
  Field.sub mx b diff;
  (* x solves the normal equations; M x = b because M is invertible *)
  Alcotest.(check bool) "M x = b" true
    (sqrt (Field.norm2 diff /. Field.norm2 b) < 1e-7)

let test_comm_stats_accumulate () =
  let geom = Geometry.create [| 4; 4; 2; 2 |] in
  let dom = Domain.create geom [| 2; 1; 1; 1 |] in
  let comm = Comm.create dom ~dof:2 in
  let fields = Comm.create_fields comm in
  Comm.halo_exchange comm fields;
  Comm.halo_exchange comm fields;
  Alcotest.(check int) "2 full exchanges" 2 (Comm.stats comm).Comm.full_exchanges

let test_partial_exchange_counted_separately () =
  (* a ?faces-subset exchange must not inflate the full-exchange count
     that halo_bytes_per_rank estimates are compared against *)
  let geom = Geometry.create [| 4; 4; 2; 2 |] in
  let dom = Domain.create geom [| 2; 2; 1; 1 |] in
  let comm = Comm.create dom ~dof:2 in
  let fields = Comm.create_fields comm in
  Comm.halo_exchange ~faces:[| 0; 1 |] comm fields;
  Comm.halo_exchange comm fields;
  let st = Comm.stats comm in
  Alcotest.(check int) "1 full" 1 st.Comm.full_exchanges;
  Alcotest.(check int) "1 partial" 1 st.Comm.partial_exchanges

let test_post_stages_complete_delivers () =
  (* between post and complete the ghosts must still hold the OLD data;
     completing a face delivers exactly that face's ghosts *)
  let geom = Geometry.create [| 4; 4; 2; 2 |] in
  let dom = Domain.create geom [| 2; 2; 1; 1 |] in
  let comm = Comm.create dom ~dof:1 in
  let global = Field.of_array (Array.init (Geometry.volume geom) float_of_int) in
  let fields = Comm.create_fields comm in
  Comm.scatter comm global fields;
  let h = Comm.post comm fields in
  Alcotest.(check bool) "not finished" false (Comm.finished h);
  Alcotest.(check (list int)) "all faces pending" [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    (Comm.pending_faces h);
  (* ghosts still zero: post stages into message payloads, not ghosts *)
  for r = 0 to Domain.n_ranks dom - 1 do
    let rg = Domain.rank_geometry dom r in
    for e = rg.Domain.local_volume to rg.Domain.ext_volume - 1 do
      Alcotest.(check (float 0.))
        (Printf.sprintf "rank %d ghost %d untouched" r e)
        0.
        (Bigarray.Array1.get fields.(r) e)
    done
  done;
  (* complete face by face in a scrambled order; each completion makes
     exactly that face fresh *)
  Array.iter
    (fun face ->
      Comm.complete h ~face;
      for r = 0 to Domain.n_ranks dom - 1 do
        Alcotest.(check bool)
          (Printf.sprintf "rank %d face %s fresh" r (Comm.face_label face))
          true
          (Comm.ghost_fresh comm ~rank:r ~face)
      done)
    [| 5; 0; 3; 7; 1; 6; 2; 4 |];
  Alcotest.(check bool) "finished" true (Comm.finished h);
  (* and the delivered values are the global sites *)
  for r = 0 to Domain.n_ranks dom - 1 do
    let rg = Domain.rank_geometry dom r in
    for e = 0 to rg.Domain.ext_volume - 1 do
      Alcotest.(check (float 0.))
        (Printf.sprintf "rank %d ext %d" r e)
        (float_of_int rg.Domain.local_to_global.(e))
        (Bigarray.Array1.get fields.(r) e)
    done
  done

let test_double_complete_raises () =
  let geom = Geometry.create [| 4; 4; 2; 2 |] in
  let dom = Domain.create geom [| 2; 1; 1; 1 |] in
  let comm = Comm.create dom ~dof:1 in
  let fields = Comm.create_fields comm in
  let h = Comm.post comm fields in
  Comm.complete h ~face:0;
  Alcotest.check_raises "double complete"
    (Invalid_argument "Comm.complete: face x+ is not in flight") (fun () ->
      Comm.complete h ~face:0);
  Comm.complete_all h

let test_send_buffer_race_detected () =
  (* writing local sites between post and complete is the nonblocking
     send-buffer race: counted always, fatal in strict mode *)
  let geom = Geometry.create [| 4; 4; 2; 2 |] in
  let dom = Domain.create geom [| 2; 1; 1; 1 |] in
  let comm = Comm.create dom ~dof:1 in
  let fields = Comm.create_fields comm in
  let h = Comm.post comm fields in
  Comm.mark_written comm 0;
  Comm.complete_all h;
  Alcotest.(check bool) "races counted" true
    ((Comm.stats comm).Comm.send_buffer_races > 0);
  (* ghosts filled from rank 0's in-flight data are stale against its
     new epoch *)
  Alcotest.(check bool) "stale faces exist" true
    (List.exists (fun r -> Comm.stale_faces comm r <> []) [ 0; 1 ]);
  let h2 = Comm.post comm fields in
  Comm.mark_written comm 0;
  Comm.strict := true;
  let raised =
    try
      Comm.complete_all h2;
      false
    with Invalid_argument _ -> true
  in
  Comm.strict := false;
  Alcotest.(check bool) "strict mode raises" true raised

let test_overlapped_orders_and_granularities () =
  (* fine and coarse completion, in default and scrambled face orders,
     all bit-for-bit equal to the blocking path *)
  let geom = Geometry.create [| 4; 4; 4; 4 |] in
  let gauge = Gauge.random geom (rng ()) in
  let dom = Domain.create geom [| 2; 2; 2; 1 |] in
  let dd = Dd.create dom gauge in
  let src = Field.create (Geometry.volume geom * 24) in
  Field.gaussian (rng ()) src;
  let simple = Dd.hop_global ~overlapped:false dd src in
  List.iter
    (fun (label, granularity, order) ->
      let got = Dd.hop_global ~overlapped:true ~granularity ~order dd src in
      Alcotest.(check (float 0.)) label 0. (Field.max_abs_diff simple got))
    [
      ("fine default order", Machine.Policy.Fine, Dd.default_order);
      ("fine reversed", Machine.Policy.Fine, [| 7; 6; 5; 4; 3; 2; 1; 0 |]);
      ("fine scrambled", Machine.Policy.Fine, [| 3; 6; 0; 5; 2; 7; 1; 4 |]);
      ("coarse default order", Machine.Policy.Coarse, Dd.default_order);
      ("coarse scrambled", Machine.Policy.Coarse, [| 4; 1; 7; 2; 0; 5; 3; 6 |]);
    ]

let test_overlapped_strict_mode_clean () =
  (* satellite check: the per-face freshness asserts in hop_overlapped
     must NOT fire on a correct schedule, in strict mode *)
  let geom = Geometry.create [| 4; 4; 2; 2 |] in
  let gauge = Gauge.random geom (rng ()) in
  let dom = Domain.create geom [| 2; 2; 1; 1 |] in
  let dd = Dd.create dom gauge in
  let src = Field.create (Geometry.volume geom * 24) in
  Field.gaussian (rng ()) src;
  Comm.strict := true;
  let finish () = Comm.strict := false in
  (try
     ignore (Dd.hop_global ~overlapped:true ~granularity:Machine.Policy.Fine dd src);
     ignore (Dd.hop_global ~overlapped:true ~granularity:Machine.Policy.Coarse dd src)
   with e ->
     finish ();
     raise e);
  finish ()

let suite =
  [
    Alcotest.test_case "exchange fills ghosts" `Quick test_exchange_fills_ghosts;
    Alcotest.test_case "byte accounting" `Quick test_exchange_byte_accounting;
    Alcotest.test_case "dd wilson = oracle (6 grids)" `Quick test_dd_wilson_grids;
    Alcotest.test_case "overlapped = simple" `Quick test_dd_overlapped_equals_simple;
    Alcotest.test_case "dd full operator" `Quick test_dd_full_wilson_apply;
    Alcotest.test_case "dd CG = single-domain" `Quick test_dd_solve_matches_single_domain;
    Alcotest.test_case "dd CG trivial grid" `Quick test_dd_solve_trivial_grid;
    Alcotest.test_case "stats accumulate" `Quick test_comm_stats_accumulate;
    Alcotest.test_case "partial vs full exchanges" `Quick
      test_partial_exchange_counted_separately;
    Alcotest.test_case "post stages, complete delivers" `Quick
      test_post_stages_complete_delivers;
    Alcotest.test_case "double complete raises" `Quick test_double_complete_raises;
    Alcotest.test_case "send-buffer race" `Quick test_send_buffer_race_detected;
    Alcotest.test_case "orders x granularities = blocking" `Quick
      test_overlapped_orders_and_granularities;
    Alcotest.test_case "strict mode clean overlap" `Quick
      test_overlapped_strict_mode_clean;
  ]
