(* Tests for Qio.H5lite: roundtrips, CRC integrity, group listing. *)

module H5 = Qio.H5lite
module Field = Linalg.Field

let temp () = Filename.temp_file "h5lite" ".nfh5"

let test_roundtrip_all_types () =
  let t = H5.create () in
  H5.write t ~path:"run/corr" (H5.Float_array [| 1.5; -2.25; 3.75e-300; 0. |]);
  H5.write t ~path:"run/dims" (H5.Int_array [| 4; 4; 4; 8 |]);
  H5.write t ~path:"run/meta" (H5.Str "a09m310");
  let path = temp () in
  H5.save t path;
  let t2 = H5.load path in
  Sys.remove path;
  (match H5.read t2 ~path:"run/corr" with
  | Some (H5.Float_array a) ->
    Alcotest.(check (array (float 0.))) "floats exact" [| 1.5; -2.25; 3.75e-300; 0. |] a
  | _ -> Alcotest.fail "corr lost");
  (match H5.read t2 ~path:"run/dims" with
  | Some (H5.Int_array a) -> Alcotest.(check (array int)) "ints" [| 4; 4; 4; 8 |] a
  | _ -> Alcotest.fail "dims lost");
  match H5.read t2 ~path:"run/meta" with
  | Some (H5.Str s) -> Alcotest.(check string) "string" "a09m310" s
  | _ -> Alcotest.fail "meta lost"

let test_special_floats () =
  let t = H5.create () in
  H5.write t ~path:"x" (H5.Float_array [| infinity; neg_infinity; 1e-323 |]);
  let path = temp () in
  H5.save t path;
  let t2 = H5.load path in
  Sys.remove path;
  match H5.read t2 ~path:"x" with
  | Some (H5.Float_array a) ->
    Alcotest.(check bool) "inf" true (a.(0) = infinity);
    Alcotest.(check bool) "-inf" true (a.(1) = neg_infinity);
    Alcotest.(check (float 0.)) "subnormal" 1e-323 a.(2)
  | _ -> Alcotest.fail "lost"

let test_path_order_preserved () =
  let t = H5.create () in
  H5.write t ~path:"b" (H5.Str "1");
  H5.write t ~path:"a" (H5.Str "2");
  H5.write t ~path:"c" (H5.Str "3");
  Alcotest.(check (list string)) "insertion order" [ "b"; "a"; "c" ] (H5.paths t)

let test_overwrite_no_duplicate () =
  let t = H5.create () in
  H5.write t ~path:"x" (H5.Str "old");
  H5.write t ~path:"x" (H5.Str "new");
  Alcotest.(check int) "single entry" 1 (List.length (H5.paths t));
  match H5.read t ~path:"x" with
  | Some (H5.Str s) -> Alcotest.(check string) "latest wins" "new" s
  | _ -> Alcotest.fail "lost"

let test_group_listing () =
  let t = H5.create () in
  H5.write t ~path:"cfg0/pion" (H5.Str "");
  H5.write t ~path:"cfg0/proton" (H5.Str "");
  H5.write t ~path:"cfg1/pion" (H5.Str "");
  Alcotest.(check (list string)) "cfg0 members" [ "cfg0/pion"; "cfg0/proton" ]
    (H5.list_group t ~group:"cfg0")

let test_crc_detects_corruption () =
  let t = H5.create () in
  H5.write t ~path:"payload" (H5.Float_array (Array.init 64 float_of_int));
  let path = temp () in
  H5.save t path;
  (* flip one byte in the middle of the payload *)
  let ic = open_in_bin path in
  let s = Bytes.of_string (really_input_string ic (in_channel_length ic)) in
  close_in ic;
  let mid = Bytes.length s / 2 in
  Bytes.set s mid (Char.chr (Char.code (Bytes.get s mid) lxor 0xFF));
  let oc = open_out_bin path in
  output_bytes oc s;
  close_out oc;
  (try
     ignore (H5.load path);
     Sys.remove path;
     Alcotest.fail "corruption not detected"
   with H5.Corrupt _ | Invalid_argument _ ->
     Sys.remove path)

let test_bad_magic_rejected () =
  let path = temp () in
  let oc = open_out_bin path in
  output_string oc "NOTAFILE";
  close_out oc;
  (try
     ignore (H5.load path);
     Sys.remove path;
     Alcotest.fail "bad magic accepted"
   with H5.Corrupt _ -> Sys.remove path)

let test_invalid_path_rejected () =
  let t = H5.create () in
  Alcotest.check_raises "absolute path" (Invalid_argument "H5lite.write: bad path")
    (fun () -> H5.write t ~path:"/abs" (H5.Str ""));
  Alcotest.check_raises "empty path" (Invalid_argument "H5lite.write: bad path")
    (fun () -> H5.write t ~path:"" (H5.Str ""))

let test_field_helpers () =
  let rng = Util.Rng.create 3 in
  let f = Field.create 96 in
  Field.gaussian rng f;
  let t = H5.create () in
  H5.write_field t ~path:"prop/col0" f;
  let path = temp () in
  H5.save t path;
  let t2 = H5.load path in
  Sys.remove path;
  match H5.read_field t2 ~path:"prop/col0" with
  | Some g -> Alcotest.(check (float 0.)) "field exact" 0. (Field.max_abs_diff f g)
  | None -> Alcotest.fail "field lost"

let test_crc32_known_value () =
  (* standard test vector: crc32("123456789") = 0xCBF43926 *)
  Alcotest.(check int32) "crc32 vector" 0xCBF43926l (H5.crc32 "123456789")

let test_empty_archive () =
  let t = H5.create () in
  let path = temp () in
  H5.save t path;
  let t2 = H5.load path in
  Sys.remove path;
  Alcotest.(check (list string)) "no paths" [] (H5.paths t2)

let test_read_exn_and_mem () =
  let t = H5.create () in
  H5.write t ~path:"run/meta" (H5.Str "a09m310");
  Alcotest.(check bool) "mem finds" true (H5.mem t ~path:"run/meta");
  Alcotest.(check bool) "mem misses" false (H5.mem t ~path:"run/absent");
  (match H5.read_exn t ~path:"run/meta" with
  | H5.Str s -> Alcotest.(check string) "read_exn value" "a09m310" s
  | _ -> Alcotest.fail "wrong value");
  Alcotest.check_raises "read_exn on a missing path" Not_found (fun () ->
      ignore (H5.read_exn t ~path:"run/absent"))

let test_correlator_roundtrip () =
  let c = Array.init 48 (fun i -> cos (0.3 *. float_of_int i)) in
  let t = H5.create () in
  H5.write_correlator t ~path:"corr/proton" c;
  let path = temp () in
  H5.save t path;
  let t2 = H5.load path in
  Sys.remove path;
  (match H5.read_correlator t2 ~path:"corr/proton" with
  | Some c2 -> Alcotest.(check (array (float 0.))) "correlator exact" c c2
  | None -> Alcotest.fail "correlator lost");
  (* wrong-type and missing reads answer None, not an exception *)
  H5.write t ~path:"corr/note" (H5.Str "not numbers");
  Alcotest.(check bool) "wrong type is None" true
    (H5.read_correlator t ~path:"corr/note" = None);
  Alcotest.(check bool) "missing is None" true
    (H5.read_correlator t ~path:"corr/absent" = None);
  Alcotest.(check bool) "read_field wrong type is None" true
    (H5.read_field t ~path:"corr/note" = None)

let test_truncated_record_rejected () =
  let t = H5.create () in
  H5.write t ~path:"payload" (H5.Float_array (Array.init 64 float_of_int));
  let path = temp () in
  H5.save t path;
  let ic = open_in_bin path in
  let full = really_input_string ic (in_channel_length ic) in
  close_in ic;
  (* cut the file at several depths: mid-header, mid-path, mid-payload,
     and inside the trailing CRC — every cut must answer Corrupt *)
  List.iter
    (fun keep ->
      let oc = open_out_bin path in
      output_string oc (String.sub full 0 keep);
      close_out oc;
      match H5.load path with
      | _ -> Alcotest.fail (Printf.sprintf "truncation at %d accepted" keep)
      | exception H5.Corrupt msg ->
        Alcotest.(check string) (Printf.sprintf "cut at %d" keep)
          "truncated record" msg)
    [ 13; 16; 40; String.length full - 2 ];
  Sys.remove path

let test_version_mismatch_rejected () =
  let t = H5.create () in
  H5.write t ~path:"x" (H5.Str "v");
  let path = temp () in
  H5.save t path;
  let ic = open_in_bin path in
  let s = Bytes.of_string (really_input_string ic (in_channel_length ic)) in
  close_in ic;
  Bytes.set s 4 '\xFF';  (* version field follows the 4-byte magic *)
  let oc = open_out_bin path in
  output_bytes oc s;
  close_out oc;
  (try
     ignore (H5.load path);
     Sys.remove path;
     Alcotest.fail "future version accepted"
   with H5.Corrupt _ -> Sys.remove path)

let suite =
  [
    Alcotest.test_case "roundtrip all types" `Quick test_roundtrip_all_types;
    Alcotest.test_case "special floats" `Quick test_special_floats;
    Alcotest.test_case "path order" `Quick test_path_order_preserved;
    Alcotest.test_case "overwrite" `Quick test_overwrite_no_duplicate;
    Alcotest.test_case "group listing" `Quick test_group_listing;
    Alcotest.test_case "crc detects corruption" `Quick test_crc_detects_corruption;
    Alcotest.test_case "bad magic" `Quick test_bad_magic_rejected;
    Alcotest.test_case "invalid paths" `Quick test_invalid_path_rejected;
    Alcotest.test_case "field helpers" `Quick test_field_helpers;
    Alcotest.test_case "crc32 vector" `Quick test_crc32_known_value;
    Alcotest.test_case "empty archive" `Quick test_empty_archive;
    Alcotest.test_case "read_exn and mem" `Quick test_read_exn_and_mem;
    Alcotest.test_case "correlator roundtrip" `Quick test_correlator_roundtrip;
    Alcotest.test_case "truncated record" `Quick test_truncated_record_rejected;
    Alcotest.test_case "version mismatch" `Quick test_version_mismatch_rejected;
  ]
