(* Tests for Jobman: event engine, cluster accounting, and the three
   scheduling strategies' qualitative claims from the paper. *)

module Des = Jobman.Des
module Cluster = Jobman.Cluster
module Task = Jobman.Task
module Sched = Jobman.Schedulers
module Startup = Jobman.Startup
module Placement = Jobman.Placement

let rng () = Util.Rng.create 1999

let test_des_ordering () =
  let des = Des.create () in
  let log = ref [] in
  Des.schedule des ~delay:2. (fun () -> log := "b" :: !log);
  Des.schedule des ~delay:1. (fun () -> log := "a" :: !log);
  Des.schedule des ~delay:3. (fun () -> log := "c" :: !log);
  Des.run des;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check (float 0.)) "clock at last event" 3. (Des.now des)

let test_des_fifo_ties () =
  let des = Des.create () in
  let log = ref [] in
  Des.schedule des ~delay:1. (fun () -> log := "first" :: !log);
  Des.schedule des ~delay:1. (fun () -> log := "second" :: !log);
  Des.run des;
  Alcotest.(check (list string)) "insertion order on ties" [ "first"; "second" ]
    (List.rev !log)

let test_des_nested_scheduling () =
  let des = Des.create () in
  let count = ref 0 in
  let rec tick n = if n > 0 then Des.schedule des ~delay:1. (fun () -> incr count; tick (n - 1)) in
  tick 5;
  Des.run des;
  Alcotest.(check int) "5 ticks" 5 !count;
  Alcotest.(check (float 0.)) "clock 5" 5. (Des.now des)

let test_des_rejects_past () =
  let des = Des.create () in
  Alcotest.check_raises "negative delay" (Invalid_argument "Des.schedule: negative delay")
    (fun () -> Des.schedule des ~delay:(-1.) (fun () -> ()))

let test_cluster_accounting () =
  let c = Cluster.create ~n_nodes:4 ~gpus_per_node:4 ~cpus_per_node:16 (rng ()) in
  Cluster.allocate_nodes c ~time:0. [| 0; 1 |];
  Cluster.release_nodes c ~time:10. [| 0; 1 |];
  (* 2 nodes busy for 10 s on a 4-node cluster over 10 s -> 50% *)
  Alcotest.(check (float 1e-9)) "utilization" 0.5 (Cluster.utilization c ~makespan:10.)

let test_cluster_contiguous_allocation () =
  let c = Cluster.create ~n_nodes:8 ~gpus_per_node:1 ~cpus_per_node:4 (rng ()) in
  Cluster.allocate_nodes c ~time:0. [| 2; 3 |];
  (match Cluster.find_free_nodes ~contiguous:true c 4 with
  | Some ids -> Alcotest.(check (array int)) "first free run" [| 4; 5; 6; 7 |] ids
  | None -> Alcotest.fail "should find a contiguous run");
  match Cluster.find_free_nodes ~contiguous:true c 7 with
  | Some _ -> Alcotest.fail "no 7-run available"
  | None -> ()

let test_cluster_double_allocation_rejected () =
  let c = Cluster.create ~n_nodes:2 ~gpus_per_node:1 ~cpus_per_node:4 (rng ()) in
  Cluster.allocate_nodes c ~time:0. [| 0 |];
  Alcotest.check_raises "busy node"
    (Invalid_argument "Cluster.allocate_nodes: busy node") (fun () ->
      Cluster.allocate_nodes c ~time:1. [| 0 |])

let test_locality_factor () =
  let c = Cluster.create ~n_nodes:64 ~gpus_per_node:1 ~cpus_per_node:4 (rng ()) in
  let dense = Cluster.locality_factor c [| 4; 5; 6; 7 |] in
  let scattered = Cluster.locality_factor c [| 0; 20; 40; 60 |] in
  Alcotest.(check (float 1e-9)) "dense is free" 1.0 dense;
  Alcotest.(check bool) "scatter penalized" true (scattered < 1.0);
  Alcotest.(check bool) "penalty bounded" true (scattered >= 0.75)

let make_workload ?(spread = 0.18) n =
  Task.campaign ~spread ~n ~nodes:4 ~duration:600. (rng ())

let test_naive_bundling_wastes () =
  (* the paper: naive bundling idles 20-25% with heterogeneous tasks *)
  let cluster = Cluster.create ~n_nodes:32 ~gpus_per_node:4 ~cpus_per_node:16 ~jitter:0.05 (rng ()) in
  let tasks = make_workload 64 in
  let o = Sched.naive ~cluster ~tasks in
  Alcotest.(check bool)
    (Printf.sprintf "idle fraction %.3f in [0.08, 0.40]" o.Sched.idle_fraction)
    true
    (o.Sched.idle_fraction > 0.08 && o.Sched.idle_fraction < 0.40)

let test_metaq_recovers_idle () =
  let mk () = Cluster.create ~n_nodes:32 ~gpus_per_node:4 ~cpus_per_node:16 ~jitter:0.05 (rng ()) in
  let tasks = make_workload 64 in
  let naive = Sched.naive ~cluster:(mk ()) ~tasks in
  let metaq = Sched.metaq ~cluster:(mk ()) ~tasks () in
  Alcotest.(check bool)
    (Printf.sprintf "metaq %.3f > naive %.3f utilization" metaq.Sched.utilization
       naive.Sched.utilization)
    true
    (metaq.Sched.utilization > naive.Sched.utilization);
  Alcotest.(check bool) "metaq speedup >= 15%" true
    (naive.Sched.makespan /. metaq.Sched.makespan > 1.15)

let test_mpi_jm_beats_metaq_locality () =
  let mk () = Cluster.create ~n_nodes:32 ~gpus_per_node:4 ~cpus_per_node:16 ~jitter:0.05 (rng ()) in
  let tasks = make_workload 64 in
  let metaq = Sched.metaq ~cluster:(mk ()) ~tasks () in
  let jm = Sched.mpi_jm ~block_nodes:8 ~cluster:(mk ()) ~tasks () in
  Alcotest.(check bool)
    (Printf.sprintf "mpi_jm %.0f <= metaq %.0f makespan" jm.Sched.makespan
       metaq.Sched.makespan)
    true
    (jm.Sched.makespan <= metaq.Sched.makespan *. 1.02)

let test_all_strategies_complete_work () =
  let tasks = make_workload 16 in
  let mk () = Cluster.create ~n_nodes:16 ~gpus_per_node:4 ~cpus_per_node:16 (rng ()) in
  let naive = Sched.naive ~cluster:(mk ()) ~tasks in
  let metaq = Sched.metaq ~cluster:(mk ()) ~tasks () in
  let jm = Sched.mpi_jm ~block_nodes:8 ~cluster:(mk ()) ~tasks () in
  List.iter
    (fun o ->
      Alcotest.(check bool) (o.Sched.strategy ^ " finishes") true (o.Sched.makespan > 0.);
      Alcotest.(check bool) (o.Sched.strategy ^ " not over unity") true
        (o.Sched.utilization <= 1.0 +. 1e-9);
      Alcotest.(check bool) (o.Sched.strategy ^ " above ideal bound") true
        (o.Sched.makespan >= o.Sched.ideal_time *. 0.99))
    [ naive; metaq; jm ]

let test_startup_lumps_beat_monolithic () =
  let mono_t, _ = Startup.monolithic Startup.default ~nodes:4224 in
  let lump = Startup.mpi_jm ~nodes:4224 ~lump_nodes:128 (rng ()) in
  Alcotest.(check bool)
    (Printf.sprintf "lumps %.0f s << monolithic %.0f s" lump.Startup.total_s mono_t)
    true
    (lump.Startup.total_s < mono_t /. 2.);
  (* the paper: 4224 nodes in 3-5 minutes *)
  Alcotest.(check bool)
    (Printf.sprintf "startup %.0f s in [120, 330]" lump.Startup.total_s)
    true
    (lump.Startup.total_s > 120. && lump.Startup.total_s < 330.)

let test_startup_failed_lumps_dropped () =
  let params = { Startup.default with Startup.node_failure_prob = 0.002 } in
  let r = Startup.mpi_jm ~params ~nodes:2048 ~lump_nodes:64 (rng ()) in
  Alcotest.(check bool) "some lumps failed" true (r.Startup.lumps_failed > 0);
  Alcotest.(check int) "nodes lost = failed x lump size"
    (r.Startup.lumps_failed * 64) r.Startup.nodes_lost;
  Alcotest.(check bool) "most nodes usable" true
    (r.Startup.usable_nodes > 2048 * 7 / 10)

let test_failures_small_lumps_resilient () =
  (* the paper's rationale: an MPI_Abort kills the whole lump, so small
     lumps preserve more capacity on flaky systems *)
  let r = rng () in
  let sweep =
    Jobman.Failures.lump_size_sweep ~abort_prob:0.05 ~n_nodes:256 ~job_nodes:4
      ~n_tasks:256 ~duration:600. ~lump_sizes:[ 8; 64; 256 ] r
  in
  (match sweep with
  | [ small; medium; big ] ->
    Alcotest.(check bool)
      (Printf.sprintf "capacity: small %.2f >= big %.2f" small.Jobman.Failures.capacity_left
         big.Jobman.Failures.capacity_left)
      true
      (small.Jobman.Failures.capacity_left >= big.Jobman.Failures.capacity_left);
    Alcotest.(check bool) "medium between or equal" true
      (medium.Jobman.Failures.capacity_left >= big.Jobman.Failures.capacity_left -. 1e-9)
  | _ -> Alcotest.fail "expected 3 outcomes")

let test_failures_no_aborts_completes () =
  let r = rng () in
  let o =
    Jobman.Failures.run ~abort_prob:0. ~n_nodes:64 ~lump_nodes:16 ~job_nodes:4
      ~n_tasks:64 ~duration:100. r
  in
  Alcotest.(check int) "all complete" 64 o.Jobman.Failures.completed;
  Alcotest.(check int) "no lumps lost" 0 o.Jobman.Failures.lumps_lost;
  Alcotest.(check (float 1e-9)) "full capacity" 1. o.Jobman.Failures.capacity_left

let test_failures_requeue_accounting () =
  let r = rng () in
  let o =
    Jobman.Failures.run ~abort_prob:0.2 ~n_nodes:64 ~lump_nodes:32 ~job_nodes:4
      ~n_tasks:128 ~duration:100. r
  in
  Alcotest.(check bool) "lumps lost" true (o.Jobman.Failures.lumps_lost > 0);
  Alcotest.(check int) "nodes lost consistent"
    (o.Jobman.Failures.lumps_lost * 32) o.Jobman.Failures.nodes_lost;
  Alcotest.(check bool) "requeues happened" true (o.Jobman.Failures.tasks_requeued > 0)

let test_pipeline_coscheduling_wins () =
  let r = rng () in
  let tasks = Jobman.Pipeline.campaign ~batch:4 ~n_props:128 ~prop_nodes:4 ~duration:600. r in
  let sep, cos = Jobman.Pipeline.compare_modes ~n_nodes:32 ~tasks in
  Alcotest.(check bool)
    (Printf.sprintf "co-scheduled %.0f <= separate %.0f" cos.Jobman.Pipeline.makespan
       sep.Jobman.Pipeline.makespan)
    true
    (cos.Jobman.Pipeline.makespan <= sep.Jobman.Pipeline.makespan);
  Alcotest.(check int) "separate completes all" (List.length tasks) sep.Jobman.Pipeline.completed;
  Alcotest.(check int) "co-scheduled completes all" (List.length tasks) cos.Jobman.Pipeline.completed

let test_pipeline_dependencies_gate () =
  (* a contraction cannot finish before its propagators: with one node
     batch=1, the contraction must start strictly after its dep *)
  let tasks =
    [
      { Jobman.Pipeline.id = 0; nodes = 1; duration = 100.; deps = []; cpu_only = false };
      { Jobman.Pipeline.id = 1; nodes = 1; duration = 10.; deps = [ 0 ]; cpu_only = true };
    ]
  in
  let o = Jobman.Pipeline.run ~mode:`Coscheduled ~n_nodes:4 ~tasks in
  Alcotest.(check int) "both complete" 2 o.Jobman.Pipeline.completed;
  Alcotest.(check bool) "makespan = prop + contraction" true
    (abs_float (o.Jobman.Pipeline.makespan -. 110.) < 1e-6)

let test_placement_summit_example () =
  (* Sec. VII: three 16-GPU jobs on 8 Summit nodes (48 GPUs) *)
  match Placement.place ~n_jobs:3 ~gpus_per_job:16 ~nodes:8 ~gpus_per_node:6 with
  | None -> Alcotest.fail "placement should exist"
  | Some ps ->
    Alcotest.(check int) "3 jobs placed" 3 (List.length ps);
    let total_gpus =
      List.fold_left
        (fun a p -> a + (p.Placement.nodes_used * p.Placement.gpus_per_node_used))
        0 ps
    in
    Alcotest.(check int) "48 GPUs used" 48 total_gpus;
    (* at least one job had to take a sparse placement *)
    Alcotest.(check bool) "someone pays a penalty" true
      (List.exists (fun p -> p.Placement.efficiency < 1.0) ps);
    Alcotest.(check bool) "penalty mild" true
      (Placement.aggregate_efficiency ps > 0.85)

let test_placement_capacity_limit () =
  match Placement.place ~n_jobs:4 ~gpus_per_job:16 ~nodes:8 ~gpus_per_node:6 with
  | None -> ()
  | Some _ -> Alcotest.fail "64 GPUs cannot fit on 48"

let test_placement_dense_when_room () =
  match Placement.place ~n_jobs:1 ~gpus_per_job:12 ~nodes:8 ~gpus_per_node:6 with
  | Some [ p ] ->
    Alcotest.(check int) "dense: 2 nodes x 6" 2 p.Placement.nodes_used;
    Alcotest.(check (float 0.)) "no penalty" 1.0 p.Placement.efficiency
  | _ -> Alcotest.fail "expected one placement"

let test_des_schedule_at () =
  let des = Des.create () in
  Alcotest.(check (float 0.)) "clock starts at zero" 0. (Des.now des);
  let log = ref [] in
  Des.schedule_at des ~time:5. (fun () -> log := 5 :: !log);
  Des.schedule_at des ~time:2. (fun () -> log := 2 :: !log);
  Alcotest.(check int) "two pending" 2 (Des.pending des);
  Alcotest.(check int) "none run yet" 0 (Des.events_run des);
  Alcotest.(check bool) "step runs one" true (Des.step des);
  Alcotest.(check (float 0.)) "clock at first event" 2. (Des.now des);
  Alcotest.(check int) "one pending" 1 (Des.pending des);
  Des.run des;
  Alcotest.(check (list int)) "absolute-time order" [ 2; 5 ] (List.rev !log);
  Alcotest.(check int) "both counted" 2 (Des.events_run des);
  Alcotest.(check bool) "step on empty queue" false (Des.step des);
  Alcotest.check_raises "past time rejected"
    (Invalid_argument "Des.schedule_at: time in the past") (fun () ->
      Des.schedule_at des ~time:1. (fun () -> ()))

let test_cluster_speed_and_account () =
  let c = Cluster.create ~n_nodes:6 ~gpus_per_node:4 ~cpus_per_node:16 ~jitter:0.2 (rng ()) in
  Alcotest.(check int) "n_nodes" 6 (Cluster.n_nodes c);
  (* a tightly-coupled allocation runs at its slowest member's speed *)
  let all = [| 0; 1; 2; 3; 4; 5 |] in
  let s_all = Cluster.allocation_speed c all in
  Alcotest.(check bool) "speed positive" true (s_all > 0.);
  let singles = Array.map (fun i -> Cluster.allocation_speed c [| i |]) all in
  Alcotest.(check (float 1e-12)) "gated by the slowest node"
    (Array.fold_left min singles.(0) singles)
    s_all;
  Alcotest.(check bool) "jitter spreads speeds" true
    (Array.fold_left max singles.(0) singles > s_all);
  (* account is idempotent at a fixed time: the integral only grows
     with elapsed busy time *)
  Cluster.allocate_nodes c ~time:0. [| 0 |];
  Cluster.account c ~time:5.;
  Cluster.account c ~time:5.;
  Cluster.release_nodes c ~time:10. [| 0 |];
  Alcotest.(check (float 1e-9)) "1 of 6 nodes for the whole window"
    (1. /. 6.)
    (Cluster.utilization c ~makespan:10.);
  (* non-contiguous search skips busy nodes *)
  Cluster.allocate_nodes c ~time:10. [| 1; 3 |];
  match Cluster.find_free_nodes c 3 with
  | Some ids -> Alcotest.(check (array int)) "first three free" [| 0; 2; 4 |] ids
  | None -> Alcotest.fail "three nodes are free"

let test_task_campaign_shape () =
  let tasks = Task.campaign ~spread:0.1 ~contraction_every:4 ~n:8 ~nodes:4 ~duration:600. (rng ()) in
  let props = List.filter (fun t -> t.Task.kind = Task.Propagator) tasks in
  let cons = List.filter (fun t -> t.Task.kind = Task.Contraction) tasks in
  Alcotest.(check int) "8 propagators" 8 (List.length props);
  Alcotest.(check int) "one contraction per 4 props" 2 (List.length cons);
  Alcotest.(check string) "propagator name" "propagator" (Task.kind_name Task.Propagator);
  Alcotest.(check string) "contraction name" "contraction" (Task.kind_name Task.Contraction);
  List.iter
    (fun t -> Alcotest.(check bool) "contractions are 1-node CPU work" true (t.Task.nodes = 1))
    cons;
  let total = Task.total_work tasks in
  let by_hand =
    List.fold_left
      (fun a t -> a +. (t.Task.base_duration *. float_of_int t.Task.nodes))
      0. tasks
  in
  Alcotest.(check (float 1e-9)) "total_work = sum duration x nodes" by_hand total;
  Alcotest.(check bool) "spread stays near nominal" true
    (total > 8. *. 4. *. 600. *. 0.8 && total < 8. *. 4. *. 600. *. 1.5)

let test_startup_monolithic_attempt () =
  let a1k = Startup.monolithic_attempt Startup.default ~nodes:1024 in
  let a4k = Startup.monolithic_attempt Startup.default ~nodes:4096 in
  Alcotest.(check bool) "attempt time positive" true (a1k > 0.);
  (* super-linear wireup: 4x the nodes costs more than 4x the time *)
  Alcotest.(check bool)
    (Printf.sprintf "super-linear: %.0f s vs 4 x %.0f s" a4k a1k)
    true (a4k > 4. *. a1k);
  let expected, attempts = Startup.monolithic Startup.default ~nodes:1024 in
  Alcotest.(check bool) "restarts only add time" true (expected >= a1k);
  Alcotest.(check bool) "at least one attempt" true (attempts >= 1.)

let test_placement_efficiency_points () =
  Alcotest.(check (float 0.)) "dense placement is free" 1.0
    (Placement.placement_efficiency ~gpus_per_node_used:6 ~gpus_per_node:6);
  let sparse = Placement.placement_efficiency ~gpus_per_node_used:3 ~gpus_per_node:6 in
  Alcotest.(check bool) "sparse placement penalized" true (sparse < 1.0);
  let sparser = Placement.placement_efficiency ~gpus_per_node_used:1 ~gpus_per_node:6 in
  Alcotest.(check bool) "penalty monotone in sparseness" true (sparser < sparse);
  Alcotest.(check bool) "penalty bounded" true (sparser > 0.)

let test_pipeline_dangling_dep_stuck () =
  let tasks =
    [
      { Jobman.Pipeline.id = 0; nodes = 1; duration = 10.; deps = []; cpu_only = false };
      (* dep 99 never exists: the contraction can never start *)
      { Jobman.Pipeline.id = 1; nodes = 1; duration = 5.; deps = [ 99 ]; cpu_only = true };
    ]
  in
  let o = Jobman.Pipeline.run ~mode:`Coscheduled ~n_nodes:4 ~tasks in
  Alcotest.(check int) "only the propagator completes" 1 o.Jobman.Pipeline.completed;
  Alcotest.(check int) "dangling dep counted stuck" 1 o.Jobman.Pipeline.stuck;
  Alcotest.(check (float 1e-9)) "makespan stops at the runnable work" 10.
    o.Jobman.Pipeline.makespan

let test_pipeline_duplicate_id () =
  (* two tasks sharing an id: both run (ids gate dependencies, not
     execution), and the dependent fires as soon as the first holder of
     the id lands in the done set *)
  let tasks =
    [
      { Jobman.Pipeline.id = 7; nodes = 1; duration = 10.; deps = []; cpu_only = false };
      { Jobman.Pipeline.id = 7; nodes = 1; duration = 20.; deps = []; cpu_only = false };
      { Jobman.Pipeline.id = 8; nodes = 1; duration = 1.; deps = [ 7 ]; cpu_only = false };
    ]
  in
  let o = Jobman.Pipeline.run ~mode:`Separate ~n_nodes:4 ~tasks in
  Alcotest.(check int) "all three complete" 3 o.Jobman.Pipeline.completed;
  Alcotest.(check int) "nothing stuck" 0 o.Jobman.Pipeline.stuck;
  (* dependent started after the 10 s twin, not the 20 s one *)
  Alcotest.(check (float 1e-9)) "makespan set by the slower twin" 20.
    o.Jobman.Pipeline.makespan

let suite =
  [
    Alcotest.test_case "des ordering" `Quick test_des_ordering;
    Alcotest.test_case "des fifo ties" `Quick test_des_fifo_ties;
    Alcotest.test_case "des nested" `Quick test_des_nested_scheduling;
    Alcotest.test_case "des rejects past" `Quick test_des_rejects_past;
    Alcotest.test_case "cluster accounting" `Quick test_cluster_accounting;
    Alcotest.test_case "contiguous allocation" `Quick test_cluster_contiguous_allocation;
    Alcotest.test_case "double allocation" `Quick test_cluster_double_allocation_rejected;
    Alcotest.test_case "locality factor" `Quick test_locality_factor;
    Alcotest.test_case "naive bundling wastes" `Quick test_naive_bundling_wastes;
    Alcotest.test_case "metaq recovers idle" `Quick test_metaq_recovers_idle;
    Alcotest.test_case "mpi_jm beats metaq" `Quick test_mpi_jm_beats_metaq_locality;
    Alcotest.test_case "strategies complete" `Quick test_all_strategies_complete_work;
    Alcotest.test_case "startup lumps fast" `Quick test_startup_lumps_beat_monolithic;
    Alcotest.test_case "failed lumps dropped" `Quick test_startup_failed_lumps_dropped;
    Alcotest.test_case "failures: small lumps win" `Quick test_failures_small_lumps_resilient;
    Alcotest.test_case "failures: clean run" `Quick test_failures_no_aborts_completes;
    Alcotest.test_case "failures: requeue accounting" `Quick test_failures_requeue_accounting;
    Alcotest.test_case "pipeline: co-scheduling" `Quick test_pipeline_coscheduling_wins;
    Alcotest.test_case "pipeline: dependencies" `Quick test_pipeline_dependencies_gate;
    Alcotest.test_case "summit 3x16 placement" `Quick test_placement_summit_example;
    Alcotest.test_case "placement capacity" `Quick test_placement_capacity_limit;
    Alcotest.test_case "dense placement" `Quick test_placement_dense_when_room;
    Alcotest.test_case "des schedule_at/step/pending" `Quick test_des_schedule_at;
    Alcotest.test_case "cluster speed + accounting" `Quick test_cluster_speed_and_account;
    Alcotest.test_case "task campaign shape" `Quick test_task_campaign_shape;
    Alcotest.test_case "startup monolithic attempt" `Quick test_startup_monolithic_attempt;
    Alcotest.test_case "placement efficiency points" `Quick test_placement_efficiency_points;
    Alcotest.test_case "pipeline: dangling dep stuck" `Quick test_pipeline_dangling_dep_stuck;
    Alcotest.test_case "pipeline: duplicate id" `Quick test_pipeline_duplicate_id;
  ]
