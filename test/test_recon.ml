(* Compressed gauge links (reconstruct-12/8) and compressed halo
   payloads: codec round-trips on Haar-random links within the
   documented bounds, the packed-store hop against the full18 hop,
   per-codec bit-identity across pool geometries, the det-sign plane
   on antiperiodic-time links, the Recon8 degenerate guard, the recon
   checker rules and seeded fixtures, the Perf_model recon/compress
   pricing, the codec tuning axis labels and the Comm compressed-wire
   accounting. *)

module Field = Linalg.Field
module Su3 = Linalg.Su3
module Codec = Linalg.Su3_codec
module Recon = Lattice.Recon
module Gauge = Lattice.Gauge
module Geometry = Lattice.Geometry
module Domain = Lattice.Domain
module Wilson = Dirac.Wilson
module Comm = Vrank.Comm
module PM = Machine.Perf_model

let rng () = Util.Rng.create 20260909

let check_bits name (a : Field.t) (b : Field.t) =
  Alcotest.(check (float 0.)) name 0. (Field.max_abs_diff a b)

let batch_of r k n =
  Array.init k (fun _ ->
      let v = Field.create n in
      Field.gaussian r v;
      v)

(* ---------- codec round-trips ---------- *)

let prop_round_trip codec =
  let bound = Codec.round_trip_bound codec in
  QCheck.Test.make
    ~name:
      (Printf.sprintf "%s: Haar round-trip within %.0e" (Codec.name codec)
         bound)
    ~count:300
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let u = Su3.random (Util.Rng.create seed) in
      Codec.round_trip_error codec u <= bound)

let prop_full18_exact =
  QCheck.Test.make ~name:"full18: round-trip is bit-exact" ~count:100
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let u = Su3.random (Util.Rng.create seed) in
      Codec.round_trip_error Codec.Full18 u = 0.)

(* the sign plane: det = −1 links (antiperiodic time) must survive the
   packed store on the whole field *)
let test_sign_plane_round_trip () =
  let geom = Geometry.create [| 2; 2; 2; 4 |] in
  let gauge = Gauge.with_antiperiodic_time (Gauge.random geom (rng ())) in
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Codec.name c ^ " antiperiodic field round-trips")
        true
        (Recon.max_round_trip_error c gauge <= Codec.round_trip_bound c))
    Codec.all

let test_recon8_degenerate_on_unit () =
  let geom = Geometry.create [| 2; 2; 2; 2 |] in
  (match Recon.pack Codec.Recon8 (Gauge.unit geom) with
  | exception Codec.Degenerate _ -> ()
  | (_ : Recon.t) -> Alcotest.fail "recon8 packed a unit field");
  (* the other codecs take the cold field fine *)
  List.iter
    (fun c -> ignore (Recon.pack c (Gauge.unit geom) : Recon.t))
    [ Codec.Full18; Codec.Recon12 ]

(* ---------- hop through the packed store ---------- *)

(* a full18 store is bit-copies: the hop must equal the seed path
   exactly; the lossy codecs must land within a small multiple of the
   per-link round-trip bound (8 link applications per site) *)
let test_hop_matches_full18 () =
  let geom = Geometry.create [| 4; 2; 2; 4 |] in
  let gauge = Gauge.random geom (rng ()) in
  let n = Geometry.volume geom * Wilson.floats_per_site in
  let src = Field.create n in
  Field.gaussian (rng ()) src;
  let hop_at c =
    let w = Wilson.of_geometry ~recon:c geom gauge in
    let dst = Field.create n in
    Wilson.hop w ~src ~dst;
    dst
  in
  let d_seed = Field.create n in
  Wilson.hop (Wilson.of_geometry geom gauge) ~src ~dst:d_seed;
  check_bits "full18 hop = seed hop" d_seed (hop_at Codec.Full18);
  List.iter
    (fun c ->
      let tol = 1e3 *. Codec.round_trip_bound c in
      let diff = Field.max_abs_diff d_seed (hop_at c) in
      Alcotest.(check bool)
        (Printf.sprintf "%s hop within %.0e (got %.3g)" (Codec.name c) tol
           diff)
        true (diff <= tol))
    [ Codec.Recon12; Codec.Recon8 ]

(* for a FIXED codec the decode is pure per-link: every pool geometry
   must produce bit-identical batched hops *)
let test_hop_bit_identical_across_pools () =
  let geom = Geometry.create [| 4; 2; 2; 4 |] in
  let gauge = Gauge.random geom (rng ()) in
  let n = Geometry.volume geom * Wilson.floats_per_site in
  let k = 3 in
  List.iter
    (fun c ->
      let w = Wilson.of_geometry ~recon:c geom gauge in
      let srcs = batch_of (rng ()) k n in
      let refs = Array.init k (fun _ -> Field.create n) in
      Wilson.hop_multi_with (Util.Pool.shared ~domains:1) w ~srcs ~dsts:refs;
      List.iter
        (fun (d, chunk) ->
          let dsts = Array.init k (fun _ -> Field.create n) in
          Wilson.hop_multi_with
            (Util.Pool.shared ~domains:d)
            ~chunk w ~srcs ~dsts;
          Array.iteri
            (fun i dst ->
              check_bits
                (Printf.sprintf "%s d%d_c%d rhs %d" (Codec.name c) d chunk i)
                refs.(i) dst)
            dsts)
        [ (2, 7); (4, 33) ])
    Codec.all

(* ---------- recon checker ---------- *)

let fired rule ds =
  List.exists (fun (d : Check.Diagnostic.t) -> d.Check.Diagnostic.rule = rule) ds

let test_recon_check_rules () =
  let module R = Check.Recon_check in
  let geom = Geometry.create [| 2; 2; 2; 4 |] in
  let g = Gauge.random geom (rng ()) in
  Gauge.reunitarize g;
  List.iter
    (fun c ->
      Alcotest.(check int)
        (Codec.name c ^ " clean gauge audits clean")
        0
        (List.length (R.verify_gauge ~recon:c g)))
    Codec.all;
  (* full18 copies bits: even a grossly non-unitary field is fine *)
  let bad = Gauge.random geom (rng ()) in
  let d = Gauge.data bad in
  for e = 0 to 17 do
    Bigarray.Array1.set d e (1.3 *. Bigarray.Array1.get d e)
  done;
  Alcotest.(check int) "full18 tolerates non-unitary links" 0
    (List.length (R.verify_gauge ~recon:Codec.Full18 bad));
  Alcotest.(check bool) "recon12 flags them" true
    (fired "RECON001" (R.verify_gauge ~recon:Codec.Recon12 bad));
  (* plan rules *)
  Alcotest.(check bool) "RECON002 fires" true
    (fired "RECON002"
       (R.verify_plan
          (R.plan ~kernel:"wilson_hop_recon" ~recon:Codec.Recon12
             ~tuned_recon:Codec.Full18 ~max_violation:0. ())));
  Alcotest.(check bool) "RECON003 fires" true
    (fired "RECON003"
       (R.verify_plan
          (R.plan ~kernel:"wilson_hop_recon" ~recon:Codec.Recon8
             ~max_violation:0. ~gauge_epoch:2 ~halo_epoch:1
             ~halo_compressed:true ())));
  Alcotest.(check int) "matching codec + fresh halo is clean" 0
    (List.length
       (R.verify_plan
          (R.plan ~kernel:"wilson_hop_recon" ~recon:Codec.Recon12
             ~tuned_recon:Codec.Recon12 ~max_violation:0. ~gauge_epoch:2
             ~halo_epoch:2 ~halo_compressed:true ())))

let test_recon_fixtures_fire () =
  List.iter
    (fun (name, rule) ->
      match Check.Fixtures.find name with
      | None -> Alcotest.fail (name ^ " fixture missing")
      | Some f ->
        Alcotest.(check string) (name ^ " expects") rule f.Check.Fixtures.expect;
        Alcotest.(check bool) (name ^ " fires") true
          (fired rule (f.Check.Fixtures.run ())))
    [
      ("recon-nonunitary-link", "RECON001");
      ("recon-tuned-mismatch", "RECON002");
      ("recon-stale-halo", "RECON003");
    ]

(* ---------- plan IR: Su3 precision tag ---------- *)

let test_recon_plan_ir () =
  let module PI = Check.Plan_ir in
  let module PC = Check.Plan_check in
  let module PE = Check.Plan_extract in
  (* printer/parser round-trip of the codec precision *)
  List.iter
    (fun c ->
      let s = PI.string_of_precision (PI.Su3 c) in
      Alcotest.(check string) "su3 precision prints" ("su3:" ^ Codec.name c) s)
    Codec.all;
  (* the catalog plan verifies clean *)
  let p = PE.wilson_hop_recon () in
  Alcotest.(check int) "wilson-hop-recon plan clean" 0
    (List.length (PC.verify p));
  (match PE.find "wilson-hop-recon" with
  | None -> Alcotest.fail "wilson-hop-recon missing from catalog"
  | Some f -> ignore (f () : PI.plan));
  (* a quantize step against the compressed link store is PREC004 *)
  let bad =
    { p with PI.steps = PI.Quantize { qbuf = "u"; qblock = 24 } :: p.PI.steps }
  in
  Alcotest.(check bool) "PREC004 on quantized su3 buffer" true
    (fired "PREC004" (PC.verify bad))

(* ---------- Perf_model pricing ---------- *)

let test_recon_pricing () =
  List.iter
    (fun (c, bytes) ->
      Alcotest.(check (float 0.))
        (Codec.name c ^ " link bytes/site")
        bytes
        (PM.link_bytes_per_site_recon ~recon:c))
    [ (Codec.Full18, 1152.); (Codec.Recon12, 768.); (Codec.Recon8, 512.) ];
  (* full18 recovers the plain mrhs pricing at every width *)
  List.iter
    (fun k ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "full18 k=%d = mrhs" k)
        (PM.mrhs_bytes_per_site ~k)
        (PM.mrhs_bytes_per_site_recon ~recon:Codec.Full18 ~k);
      Alcotest.(check (float 0.))
        (Printf.sprintf "ratio consistency k=%d" k)
        (PM.mrhs_bytes_per_site_recon ~recon:Codec.Recon8 ~k
        /. PM.mrhs_bytes_per_site ~k:1)
        (PM.recon_traffic_ratio ~recon:Codec.Recon8 ~k))
    [ 1; 2; 4; 8 ];
  (* compression strictly reduces the composed stream *)
  Alcotest.(check bool) "recon8 < recon12 < full18 at k=4" true
    (PM.mrhs_bytes_per_site_recon ~recon:Codec.Recon8 ~k:4
     < PM.mrhs_bytes_per_site_recon ~recon:Codec.Recon12 ~k:4
    && PM.mrhs_bytes_per_site_recon ~recon:Codec.Recon12 ~k:4
       < PM.mrhs_bytes_per_site_recon ~recon:Codec.Full18 ~k:4);
  (match PM.mrhs_bytes_per_site_recon ~recon:Codec.Recon12 ~k:0 with
  | exception Invalid_argument _ -> ()
  | (_ : float) -> Alcotest.fail "k=0 accepted")

let test_compress_breakdown () =
  let module Spec = Machine.Spec in
  let module Policy = Machine.Policy in
  let p = PM.problem ~dims:[| 48; 48; 48; 64 |] ~l5:20 in
  let fine =
    { Policy.transfer = Policy.Staged_mpi; granularity = Policy.Fine }
  in
  let at compress =
    match
      PM.stencil_breakdown ~compress Spec.sierra fine p ~n_gpus:16
    with
    | None -> Alcotest.fail "no grid"
    | Some b -> b
  in
  let legacy =
    Option.get (PM.stencil_breakdown Spec.sierra fine p ~n_gpus:16)
  in
  let comp = at true and unc = at false in
  (* omitted = calibrated numbers, untouched by the new axis *)
  Alcotest.(check (float 0.)) "legacy halo bytes unchanged"
    legacy.PM.halo_bytes_inter comp.PM.halo_bytes_inter;
  (* uncompressed double wire carries 4x the compressed face bytes *)
  Alcotest.(check (float 1e-6)) "double wire = 4x compressed"
    (4. *. comp.PM.halo_bytes_inter)
    unc.PM.halo_bytes_inter;
  (* the codec passes are charged into t_copy *)
  Alcotest.(check bool) "codec cost priced" true
    (comp.PM.t_copy > legacy.PM.t_copy);
  (* zero-copy has no staging buffer to compress *)
  let zc = { Policy.transfer = Policy.Zero_copy; granularity = Policy.Fine } in
  match
    PM.stencil_breakdown ~transport:Machine.Transport.Zero_copy ~compress:true
      Spec.sierra zc p ~n_gpus:16
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero-copy + compress accepted"

(* ---------- the codec tuning axis ---------- *)

let test_recon_space_and_labels () =
  let module V = Autotune.Variants in
  Alcotest.(check string) "pooled label" "recon12_k4_d2_c4096"
    (V.recon_label
       { V.recon = Codec.Recon12; rk = 4; rgeometry = Some (2, 4096) });
  Alcotest.(check string) "serial label" "recon8_k2_serial"
    (V.recon_label { V.recon = Codec.Recon8; rk = 2; rgeometry = None });
  let space = V.recon_space ~sites:4096 () in
  let labels = List.map fst space in
  Alcotest.(check bool) "uncompressed serial baseline present" true
    (List.mem "full18_k1_serial" labels);
  Alcotest.(check int) "labels distinct"
    (List.length labels)
    (List.length (List.sort_uniq compare labels));
  (* every codec appears: the space really crosses the axis *)
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Codec.name c ^ " in space")
        true
        (List.exists (fun (_, pl) -> pl.V.recon = c) space))
    Codec.all

(* ---------- compressed halo payloads ---------- *)

let test_compressed_halo_exchange () =
  let geom = Geometry.create [| 4; 4; 2; 2 |] in
  let dom = Domain.create geom [| 2; 2; 1; 1 |] in
  let dof = 24 in
  let comm_u = Comm.create dom ~dof in
  let comm_c = Comm.create ~compress:true dom ~dof in
  Alcotest.(check bool) "compress recorded" true (Comm.compress comm_c);
  let global = Field.create (Geometry.volume geom * dof) in
  Field.gaussian (rng ()) global;
  let fu = Comm.create_fields comm_u and fc = Comm.create_fields comm_c in
  Comm.scatter comm_u global fu;
  Comm.scatter comm_c global fc;
  Comm.halo_exchange comm_u fu;
  Comm.halo_exchange comm_c fc;
  (* ghosts land as half-codec round-trips of the same data: close to
     the exact wire, but not bit-equal (the payload really was
     compressed) *)
  let worst = ref 0. in
  Array.iteri
    (fun r f -> worst := max !worst (Field.max_abs_diff f fu.(r)))
    fc;
  Alcotest.(check bool)
    (Printf.sprintf "ghosts within half-codec error (got %.3g)" !worst)
    true
    (!worst > 0. && !worst < 1e-2);
  (* accounting: every message compressed, strictly fewer wire bytes *)
  let su = Comm.stats comm_u and sc = Comm.stats comm_c in
  Alcotest.(check int) "all messages compressed" sc.Comm.messages
    sc.Comm.compressed_messages;
  Alcotest.(check int) "no compressed messages uncompressed" 0
    su.Comm.compressed_messages;
  Alcotest.(check bool)
    (Printf.sprintf "wire bytes drop (%.0f < %.0f)" sc.Comm.bytes
       su.Comm.bytes)
    true
    (sc.Comm.bytes < su.Comm.bytes);
  (* zero-copy aliases the sender's field: nothing to compress *)
  match Comm.create ~transport:Comm.Zero_copy ~compress:true dom ~dof with
  | exception Invalid_argument _ -> ()
  | (_ : Comm.t) -> Alcotest.fail "zero-copy + compress accepted"

let test_shutdown () = Util.Pool.shutdown_shared ()

let suite =
  [
    QCheck_alcotest.to_alcotest (prop_round_trip Codec.Recon12);
    QCheck_alcotest.to_alcotest (prop_round_trip Codec.Recon8);
    QCheck_alcotest.to_alcotest prop_full18_exact;
    Alcotest.test_case "recon: antiperiodic sign plane round-trips" `Quick
      test_sign_plane_round_trip;
    Alcotest.test_case "recon8: degenerate on the unit field" `Quick
      test_recon8_degenerate_on_unit;
    Alcotest.test_case "wilson: packed-store hop vs full18" `Quick
      test_hop_matches_full18;
    Alcotest.test_case "wilson: per-codec bit-identity across pools" `Quick
      test_hop_bit_identical_across_pools;
    Alcotest.test_case "recon_check: rules fire, clean plans pass" `Quick
      test_recon_check_rules;
    Alcotest.test_case "recon_check: seeded fixtures fire" `Quick
      test_recon_fixtures_fire;
    Alcotest.test_case "plan: su3 precision tag and PREC004" `Quick
      test_recon_plan_ir;
    Alcotest.test_case "perf_model: recon link-byte pricing" `Quick
      test_recon_pricing;
    Alcotest.test_case "perf_model: compressed-wire breakdown" `Quick
      test_compress_breakdown;
    Alcotest.test_case "variants: codec axis labels and space" `Quick
      test_recon_space_and_labels;
    Alcotest.test_case "comm: compressed halo payloads" `Quick
      test_compressed_halo_exchange;
    Alcotest.test_case "pool shutdown" `Quick test_shutdown;
  ]
