(* Batched multi-RHS engine: bit-identity of the whole block path —
   Wilson.hop_multi vs k independent hops, the Multi_blas batch
   kernels vs the single-vector Fused kernels, Cg.solve_multi's
   masked trajectories vs k independent solves (early-converging RHS
   included), the Mobius batched Schur chain — plus the batch-width
   tuner-signature regression, the Perf_model amortized-traffic
   formulas and the multi-RHS plan catalog entries. Everything here
   checks EXACT float equality: the batch must be a pure traffic
   optimization, never a numerical one. *)

module Field = Linalg.Field
module Fused = Linalg.Fused
module Multi = Linalg.Multi_blas
module Wilson = Dirac.Wilson
module Mobius = Dirac.Mobius
module Gauge = Lattice.Gauge
module Cg = Solver.Cg

let rng () = Util.Rng.create 20260808

let check_bits name (a : Field.t) (b : Field.t) =
  Alcotest.(check (float 0.)) name 0. (Field.max_abs_diff a b)

let check_floats name (a : float array) (b : float array) =
  Alcotest.(check (array (float 0.))) name a b

(* ---------- Multi_blas vs Fused singles ---------- *)

let batch_of r k n = Array.init k (fun _ ->
    let v = Field.create n in
    Field.gaussian r v;
    v)

let copies vs = Array.map Field.copy vs

let test_multi_blas_matches_fused () =
  let r = rng () in
  let n = 24 * 512 in
  List.iter
    (fun k ->
      let alphas = Array.init k (fun i -> 1e-3 *. float_of_int (i + 1)) in
      let ps = batch_of r k n and aps = batch_of r k n in
      let xs = batch_of r k n and rs = batch_of r k n in
      (* cg_update: batch vs per-RHS Fused *)
      let xs2 = copies xs and rs2 = copies rs in
      let r2s = Multi.cg_update alphas ps aps xs rs in
      let r2s' =
        Array.init k (fun i -> Fused.cg_update alphas.(i) ps.(i) aps.(i) xs2.(i) rs2.(i))
      in
      check_floats (Printf.sprintf "cg_update |r|2 k=%d" k) r2s' r2s;
      Array.iteri (fun i x -> check_bits "cg_update x" x xs.(i)) xs2;
      Array.iteri (fun i rr -> check_bits "cg_update r" rr rs.(i)) rs2;
      (* xpay_dot with the q = x read/read repetition Cg uses *)
      let ps1 = copies ps and ps2 = copies ps in
      let betas = Array.init k (fun i -> 0.25 +. (0.125 *. float_of_int i)) in
      let prs = Multi.xpay_dot rs betas ps1 rs in
      let prs' =
        Array.init k (fun i -> Fused.xpay_dot rs.(i) betas.(i) ps2.(i) rs.(i))
      in
      check_floats (Printf.sprintf "xpay_dot p.r k=%d" k) prs' prs;
      Array.iteri (fun i p -> check_bits "xpay_dot p" p ps1.(i)) ps2;
      (* axpy_norm2 *)
      let ys1 = copies xs and ys2 = copies xs in
      let n2s = Multi.axpy_norm2 alphas aps ys1 in
      let n2s' =
        Array.init k (fun i -> Fused.axpy_norm2 alphas.(i) aps.(i) ys2.(i))
      in
      check_floats (Printf.sprintf "axpy_norm2 k=%d" k) n2s' n2s;
      Array.iteri (fun i y -> check_bits "axpy_norm2 y" y ys1.(i)) ys2)
    [ 1; 2; 3; 8 ]

let test_multi_blas_pooled_matches_serial () =
  let r = rng () in
  let n = 24 * 1024 and k = 4 in
  let alphas = Array.init k (fun i -> 1e-3 *. float_of_int (i + 1)) in
  let ps = batch_of r k n and aps = batch_of r k n in
  let xs = batch_of r k n and rs = batch_of r k n in
  let pool = Util.Pool.shared ~domains:4 in
  List.iter
    (fun chunk ->
      let xs1 = copies xs and rs1 = copies rs in
      let xs2 = copies xs and rs2 = copies rs in
      let a = Multi.cg_update alphas ps aps xs1 rs1 in
      let b = Multi.cg_update_with pool ~chunk alphas ps aps xs2 rs2 in
      check_floats (Printf.sprintf "pooled |r|2 chunk=%d" chunk) a b;
      Array.iteri (fun i x -> check_bits "pooled x" x xs2.(i)) xs1;
      Array.iteri (fun i rr -> check_bits "pooled r" rr rs2.(i)) rs1)
    [ 512; 2048; 4096; 16384 ]

let test_block_axpy_matches_sequential () =
  let r = rng () in
  let n = 24 * 256 in
  let kx = 3 and ky = 2 in
  let a =
    Array.init ky (fun i ->
        Array.init kx (fun j -> 1e-2 *. float_of_int ((i * kx) + j + 1)))
  in
  let xs = batch_of r kx n in
  let ys = batch_of r ky n in
  let ys2 = copies ys in
  Multi.block_axpy a xs ys;
  (* reference: the naive per-(i,j) axpy sequence would accumulate in
     a different order per element, so the reference is the same
     j-ascending per-element accumulation done one float at a time *)
  Array.iteri
    (fun i y ->
      let acc = Field.to_array y in
      let xarrs = Array.map Field.to_array xs in
      for e = 0 to n - 1 do
        let s = ref acc.(e) in
        for j = 0 to kx - 1 do
          s := !s +. (a.(i).(j) *. xarrs.(j).(e))
        done;
        acc.(e) <- !s
      done;
      check_bits "block_axpy y" (Field.of_array acc) ys.(i))
    ys2

(* ---------- Wilson.hop_multi ---------- *)

let wilson_setup dims =
  let geom = Lattice.Geometry.create dims in
  let gauge = Gauge.random geom (rng ()) in
  (geom, Wilson.of_geometry geom gauge)

let prop_hop_multi_bit_identical =
  QCheck.Test.make ~name:"hop_multi = k independent hops (any k, any pool)"
    ~count:12
    QCheck.(pair (int_range 1 8) (int_range 0 3))
    (fun (k, geom_idx) ->
      let geom, w = wilson_setup [| 4; 2; 2; 4 |] in
      let n = Lattice.Geometry.volume geom * Wilson.floats_per_site in
      let r = rng () in
      let srcs = batch_of r k n in
      let dsts = Array.init k (fun _ -> Field.create n) in
      let refs = Array.init k (fun _ -> Field.create n) in
      Array.iteri (fun v src -> Wilson.hop w ~src ~dst:refs.(v)) srcs;
      (match geom_idx with
      | 0 -> Wilson.hop_multi w ~srcs ~dsts
      | 1 ->
        Wilson.hop_multi_with (Util.Pool.shared ~domains:1) w ~srcs ~dsts
      | 2 ->
        Wilson.hop_multi_with (Util.Pool.shared ~domains:2) ~chunk:7 w ~srcs
          ~dsts
      | _ ->
        Wilson.hop_multi_with (Util.Pool.shared ~domains:4) ~chunk:33 w ~srcs
          ~dsts);
      Array.for_all2
        (fun d rf -> Field.max_abs_diff d rf = 0.)
        dsts refs)

let test_apply_multi_bit_identical () =
  let geom, w = wilson_setup [| 2; 2; 2; 4 |] in
  let n = Lattice.Geometry.volume geom * Wilson.floats_per_site in
  let r = rng () in
  let k = 3 and mass = 0.05 in
  let srcs = batch_of r k n in
  let dsts = Array.init k (fun _ -> Field.create n) in
  let refs = Array.init k (fun _ -> Field.create n) in
  Array.iteri (fun v src -> Wilson.apply w ~mass ~src ~dst:refs.(v)) srcs;
  Wilson.apply_multi w ~mass ~srcs ~dsts;
  Array.iteri (fun v d -> check_bits "apply_multi" d refs.(v)) dsts;
  Array.iteri (fun v src -> Wilson.apply_dagger w ~mass ~src ~dst:refs.(v)) srcs;
  Wilson.apply_dagger_multi w ~mass ~srcs ~dsts;
  Array.iteri (fun v d -> check_bits "apply_dagger_multi" d refs.(v)) dsts

(* ---------- Mobius batched Schur chain ---------- *)

let mobius_eo_setup () =
  let geom = Lattice.Geometry.create [| 2; 2; 2; 4 |] in
  let gauge = Gauge.warm geom (rng ()) ~eps:0.4 in
  let gauge = Gauge.with_antiperiodic_time gauge in
  let p = Mobius.mobius ~l5:4 ~m5:1.8 ~alpha:1.5 ~mass:0.1 in
  Mobius.of_geometry_eo p geom gauge

let test_mobius_schur_multi_bit_identical () =
  let eo = mobius_eo_setup () in
  let n = Mobius.eo_field_length eo in
  let r = rng () in
  let k = 3 in
  let srcs = batch_of r k n in
  let dsts = Array.init k (fun _ -> Field.create n) in
  let refs = Array.init k (fun _ -> Field.create n) in
  Array.iteri (fun v src -> Mobius.apply_schur eo ~src ~dst:refs.(v)) srcs;
  Mobius.apply_schur_multi eo ~srcs ~dsts;
  Array.iteri (fun v d -> check_bits "schur_multi" d refs.(v)) dsts;
  Array.iteri
    (fun v src -> Mobius.apply_schur_dagger eo ~src ~dst:refs.(v))
    srcs;
  Mobius.apply_schur_dagger_multi eo ~srcs ~dsts;
  Array.iteri (fun v d -> check_bits "schur_dagger_multi" d refs.(v)) dsts;
  Array.iteri
    (fun v src -> Mobius.apply_schur_normal eo ~src ~dst:refs.(v))
    srcs;
  Mobius.apply_schur_normal_multi eo ~srcs ~dsts;
  Array.iteri (fun v d -> check_bits "schur_normal_multi" d refs.(v)) dsts

(* ---------- Cg.solve_multi trajectory invariance ---------- *)

(* Diagonal SPD operator; RHS i supported only on elements with
   [e land 63 = 0] converges in one iteration — the early-converging
   system whose masked exit must not perturb the survivors. *)
let diag_coeff e = 1.5 +. (float_of_int (e land 63) /. 100.)

let diag_apply_one (x : Field.t) (y : Field.t) =
  for e = 0 to Field.length x - 1 do
    Bigarray.Array1.unsafe_set y e
      (diag_coeff e *. Bigarray.Array1.unsafe_get x e)
  done

let diag_apply_multi xs ys = Array.iteri (fun i x -> diag_apply_one x ys.(i)) xs

let solve_multi_case ~fused ~with_x0 () =
  let n = 24 * 256 in
  let r = rng () in
  let k = 4 in
  let bs = batch_of r k n in
  (* RHS 2: supported where diag_coeff is constant -> 1-iteration
     convergence; RHS 3: zero source -> immediate return *)
  let b2 = Field.to_array bs.(2) in
  Array.iteri (fun e _ -> if e land 63 <> 0 then b2.(e) <- 0.) b2;
  bs.(2) <- Field.of_array b2;
  Field.fill bs.(3) 0.;
  let x0s = if with_x0 then Some (batch_of r k n) else None in
  let tol = 1e-10 and max_iter = 200 in
  let flops_per_apply = float_of_int (2 * n) in
  let traces = Array.make k [] in
  let xs, stats =
    Cg.solve_multi ?x0s ~fused
      ~trace:(fun i r2 -> traces.(i) <- r2 :: traces.(i))
      ~apply:diag_apply_multi ~bs ~tol ~max_iter ~flops_per_apply ()
  in
  Array.iteri
    (fun i b ->
      let ref_traces = ref [] in
      let x0 = Option.map (fun a -> a.(i)) x0s in
      let x_ref, st_ref =
        Cg.solve ?x0 ~fused
          ~trace:(fun r2 -> ref_traces := r2 :: !ref_traces)
          ~apply:diag_apply_one ~b ~tol ~max_iter ~flops_per_apply ()
      in
      check_bits (Printf.sprintf "solve_multi x.(%d)" i) x_ref xs.(i);
      Alcotest.(check int)
        (Printf.sprintf "iterations.(%d)" i)
        st_ref.Cg.iterations stats.(i).Cg.iterations;
      Alcotest.(check bool)
        (Printf.sprintf "converged.(%d)" i)
        st_ref.Cg.converged stats.(i).Cg.converged;
      Alcotest.(check (float 0.))
        (Printf.sprintf "flops.(%d)" i)
        st_ref.Cg.flops stats.(i).Cg.flops;
      Alcotest.(check (list (float 0.)))
        (Printf.sprintf "residual trajectory.(%d)" i)
        !ref_traces traces.(i))
    bs;
  (* the early-converging RHS really did retire early (a random x0
     seeds the residual everywhere, so only the zero-guess case has
     the constant-coefficient support that converges in one step) *)
  if not with_x0 then
    Alcotest.(check bool) "RHS 2 converged early" true
      (stats.(2).Cg.iterations < stats.(0).Cg.iterations);
  Alcotest.(check int) "zero RHS returned immediately" 0
    stats.(3).Cg.iterations

let test_solve_multi_unfused () = solve_multi_case ~fused:false ~with_x0:false ()
let test_solve_multi_fused () = solve_multi_case ~fused:true ~with_x0:false ()
let test_solve_multi_x0 () = solve_multi_case ~fused:true ~with_x0:true ()

let test_solve_multi_wilson_normal () =
  (* the batched normal-equations solve on the real operator: the
     apply is one hop_multi-backed batched sweep, masking must keep
     every trajectory bit-identical to the singles *)
  let geom, w = wilson_setup [| 2; 2; 2; 4 |] in
  let n = Lattice.Geometry.volume geom * Wilson.floats_per_site in
  let r = rng () in
  let k = 2 and mass = 0.2 in
  let tmps = Array.init k (fun _ -> Field.create n) in
  let apply_multi xs ys =
    let kk = Array.length xs in
    let ts = Array.sub tmps 0 kk in
    Wilson.apply_multi w ~mass ~srcs:xs ~dsts:ts;
    Wilson.apply_dagger_multi w ~mass ~srcs:ts ~dsts:ys
  in
  let t1 = Field.create n in
  let apply_one x y =
    Wilson.apply w ~mass ~src:x ~dst:t1;
    Wilson.apply_dagger w ~mass ~src:t1 ~dst:y
  in
  let bs = batch_of r k n in
  let tol = 1e-8 and max_iter = 100 in
  let fpa =
    2. *. float_of_int (Dirac.Flops.wilson_apply_per_site * (n / 24))
  in
  let xs, stats =
    Cg.solve_multi ~apply:apply_multi ~bs ~tol ~max_iter ~flops_per_apply:fpa ()
  in
  Array.iteri
    (fun i b ->
      let x_ref, st_ref =
        Cg.solve ~apply:apply_one ~b ~tol ~max_iter ~flops_per_apply:fpa ()
      in
      check_bits "wilson normal x" x_ref xs.(i);
      Alcotest.(check int) "wilson normal iters" st_ref.Cg.iterations
        stats.(i).Cg.iterations)
    bs

let test_mixed_solve_multi_matches_singles () =
  let n = 24 * 64 in
  let r = rng () in
  let k = 3 in
  let bs = batch_of r k n in
  let xs, stats =
    Solver.Mixed.solve_multi ~apply:diag_apply_multi ~bs
      ~flops_per_apply:(float_of_int (2 * n))
      ()
  in
  Array.iteri
    (fun i b ->
      let x_ref, st_ref =
        Solver.Mixed.solve ~apply:diag_apply_one ~b
          ~flops_per_apply:(float_of_int (2 * n))
          ()
      in
      check_bits "mixed multi x" x_ref xs.(i);
      Alcotest.(check int) "mixed multi iters" st_ref.Cg.iterations
        stats.(i).Cg.iterations)
    bs

(* ---------- batch width in the tuner signature ---------- *)

let test_tuner_signature_includes_batch_width () =
  let geom, w = wilson_setup [| 2; 2; 2; 4 |] in
  let n = Lattice.Geometry.volume geom * Wilson.floats_per_site in
  let r = rng () in
  let t = Autotune.Tuner.create ~repeats:1 () in
  let tune kmax =
    Autotune.Variants.tune_hop_multi ~max_domains:2 t w
      ~srcs:(batch_of r kmax n)
      ~dsts:(Array.init kmax (fun _ -> Field.create n))
      ~signature:"test"
  in
  let w1, p1 = tune 1 in
  Alcotest.(check int) "single-RHS space tunes width 1" 1
    p1.Autotune.Variants.k;
  Alcotest.(check int) "first search" 1 (Autotune.Tuner.tune_count t);
  (* widening the batch must be a fresh search, never a cache hit of
     the single-RHS winner: kmax is in the signature and k in every
     label *)
  let w8, _ = tune 8 in
  Alcotest.(check int) "batched space re-tunes" 2
    (Autotune.Tuner.tune_count t);
  Alcotest.(check int) "no cross-width cache hit" 0
    (Autotune.Tuner.hit_count t);
  (* and repeating either shape IS a cache hit of its own winner *)
  let w1', _ = tune 1 in
  let w8', _ = tune 8 in
  Alcotest.(check int) "same-shape lookups hit" 2
    (Autotune.Tuner.hit_count t);
  Alcotest.(check string) "width-1 winner stable" w1 w1';
  Alcotest.(check string) "width-8 winner stable" w8 w8'

(* ---------- Perf_model amortized traffic ---------- *)

let test_perf_model_mrhs_formulas () =
  let module PM = Machine.Perf_model in
  Alcotest.(check (float 0.)) "link bytes/site" 1152. PM.link_bytes_per_site;
  Alcotest.(check (float 0.)) "spinor bytes/site" 1920. PM.spinor_bytes_per_site;
  List.iter
    (fun k ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "mrhs bytes k=%d" k)
        (PM.spinor_bytes_per_site
        +. (PM.link_bytes_per_site /. float_of_int k))
        (PM.mrhs_bytes_per_site ~k);
      Alcotest.(check (float 0.))
        (Printf.sprintf "traffic ratio k=%d" k)
        (PM.mrhs_bytes_per_site ~k /. PM.mrhs_bytes_per_site ~k:1)
        (PM.mrhs_traffic_ratio ~k))
    [ 1; 2; 4; 8; 16 ];
  (* k = 1 recovers the per-hop half of the model's 5d site bytes *)
  Alcotest.(check (float 0.)) "k=1 = single-RHS hop bytes"
    (Dirac.Flops.actual_bytes_per_5d_site_double /. 2.)
    (PM.mrhs_bytes_per_site ~k:1);
  (* strictly decreasing in k *)
  Alcotest.(check bool) "amortization monotone" true
    (PM.mrhs_bytes_per_site ~k:8 < PM.mrhs_bytes_per_site ~k:2);
  (match PM.mrhs_bytes_per_site ~k:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "k=0 accepted")

(* ---------- plan catalog entries ---------- *)

let test_mrhs_plans_clean_and_priced () =
  let module PE = Check.Plan_extract in
  let module PC = Check.Plan_check in
  (* the fused batched tail executes exactly the 2 sweeps the model
     prices: zero gap, clean verify *)
  let fused = PE.cg_tail_multi ~fused:true () in
  Alcotest.(check (option int)) "fused tail sweep gap" (Some 0)
    (PC.sweep_gap fused);
  let unfused = PE.cg_tail_multi ~fused:false () in
  Alcotest.(check (option int)) "unfused tail sweep gap" (Some 0)
    (PC.sweep_gap unfused);
  List.iter
    (fun p ->
      Alcotest.(check int)
        (p.Check.Plan_ir.pname ^ " verifies clean")
        0
        (List.length (PC.verify p)))
    [ fused; unfused; PE.wilson_hop_multi (); PE.wilson_hop_multi ~k:8 () ];
  (* catalog round-trip *)
  List.iter
    (fun name ->
      match PE.find name with
      | None -> Alcotest.fail (name ^ " missing from catalog")
      | Some f -> ignore (f () : Check.Plan_ir.plan))
    [ "wilson-hop-multi"; "cg-tail-multi"; "cg-tail-multi-fused" ]

let test_mrhs_check_rules () =
  let module M = Check.Mrhs_check in
  let clean =
    M.plan ~kernel:"wilson_hop_multi" ~k:4 ~n:1024
      ~block:Linalg.Field.reduce_block ~tuned_k:4
      ~active:[| true; false; true; true |]
      ~converged:[| false; true; false; false |]
      ()
  in
  Alcotest.(check int) "clean mrhs plan" 0 (List.length (M.verify_plan clean));
  let fired rule p =
    List.exists
      (fun (d : Check.Diagnostic.t) -> d.Check.Diagnostic.rule = rule)
      (M.verify_plan p)
  in
  Alcotest.(check bool) "MRHS001 fires" true
    (fired "MRHS001"
       (M.plan ~kernel:"multi_cg_update" ~k:2 ~n:1024
          ~block:Linalg.Field.reduce_block
          ~active:[| true; true |]
          ~converged:[| false; true |]
          ()));
  Alcotest.(check bool) "MRHS002 fires" true
    (fired "MRHS002"
       (M.plan ~kernel:"wilson_hop_multi" ~k:4 ~n:1024
          ~block:Linalg.Field.reduce_block
          ~active:[| true; true |]
          ~converged:[| false; false |]
          ()));
  Alcotest.(check bool) "MRHS003 fires" true
    (fired "MRHS003"
       (M.plan ~kernel:"wilson_hop_multi" ~k:8 ~n:1024
          ~block:Linalg.Field.reduce_block ~tuned_k:1
          ~active:(Array.make 8 true)
          ~converged:(Array.make 8 false)
          ()))

let test_shutdown () = Util.Pool.shutdown_shared ()

let suite =
  [
    Alcotest.test_case "multi_blas: batch = fused singles, bitwise" `Quick
      test_multi_blas_matches_fused;
    Alcotest.test_case "multi_blas: pooled = serial, bitwise" `Quick
      test_multi_blas_pooled_matches_serial;
    Alcotest.test_case "multi_blas: block_axpy accumulation order" `Quick
      test_block_axpy_matches_sequential;
    QCheck_alcotest.to_alcotest prop_hop_multi_bit_identical;
    Alcotest.test_case "wilson: apply_multi/apply_dagger_multi bitwise" `Quick
      test_apply_multi_bit_identical;
    Alcotest.test_case "mobius: batched Schur chain bitwise" `Quick
      test_mobius_schur_multi_bit_identical;
    Alcotest.test_case "cg: solve_multi = k solves (unfused)" `Quick
      test_solve_multi_unfused;
    Alcotest.test_case "cg: solve_multi = k solves (fused)" `Quick
      test_solve_multi_fused;
    Alcotest.test_case "cg: solve_multi = k solves (x0 seeded)" `Quick
      test_solve_multi_x0;
    Alcotest.test_case "cg: solve_multi on the Wilson normal op" `Quick
      test_solve_multi_wilson_normal;
    Alcotest.test_case "mixed: solve_multi = singles" `Quick
      test_mixed_solve_multi_matches_singles;
    Alcotest.test_case "tuner: batch width in cache signature" `Quick
      test_tuner_signature_includes_batch_width;
    Alcotest.test_case "perf_model: amortized link traffic formulas" `Quick
      test_perf_model_mrhs_formulas;
    Alcotest.test_case "plan: multi-RHS catalog entries priced clean" `Quick
      test_mrhs_plans_clean_and_priced;
    Alcotest.test_case "mrhs_check: rules fire and clean plan passes" `Quick
      test_mrhs_check_rules;
    Alcotest.test_case "pool shutdown" `Quick test_shutdown;
  ]
