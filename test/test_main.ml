let () =
  Alcotest.run "neutron_fall"
    [
      ("util", Test_util.suite);
      ("linalg", Test_linalg.suite);
      ("lattice", Test_lattice.suite);
      ("dirac", Test_dirac.suite);
      ("solver", Test_solver.suite);
      ("vrank", Test_vrank.suite);
      ("machine", Test_machine.suite);
      ("autotune", Test_autotune.suite);
      ("jobman", Test_jobman.suite);
      ("qio", Test_qio.suite);
      ("physics", Test_physics.suite);
      ("core", Test_core.suite);
      ("check", Test_check.suite);
      ("transport", Test_transport.suite);
      ("pool", Test_pool.suite);
      ("fused", Test_fused.suite);
      ("plan", Test_plan.suite);
      ("multirhs", Test_multirhs.suite);
      ("recon", Test_recon.suite);
      ("deflate", Test_deflate.suite);
      ("properties", Test_properties.suite);
    ]
