(* The static plan analyzer: IR round-trip (qcheck over random plans),
   extraction fidelity against the front-ends' own exported kernel
   sequences, the analysis rules on seeded-defect/clean plan pairs,
   the model/IR sweep cross-check, and the lint-before-cache contract
   of the fusion tuner. *)

module Ir = Check.Plan_ir
module Extract = Check.Plan_extract
module Pc = Check.Plan_check
module D = Check.Diagnostic

let errors ds = List.filter D.is_error ds
let rules ds = List.sort_uniq compare (List.map (fun (d : D.t) -> d.D.rule) ds)

let check_clean what ds =
  if errors ds <> [] then
    Alcotest.failf "%s should verify clean but fired: %s" what
      (String.concat "; " (List.map D.to_string (errors ds)))

let check_fires what rule ds =
  if not (List.mem rule (rules ds)) then
    Alcotest.failf "%s should fire %s but fired [%s]" what rule
      (String.concat " " (rules ds))

(* ---- IR round-trip ---- *)

(* Random syntactically valid plans: names from fixed pools exercising
   the full charset, floats built from (mantissa, exponent) so they
   are always finite, steps referencing declared buffers only. *)
let gen_plan : Ir.plan QCheck.Gen.t =
  let open QCheck.Gen in
  let buf_names = [ "alpha"; "b2"; "x_odd"; "r.hat"; "p+q" ] in
  let kernel_names = [ "axpy"; "norm2"; "dot_re"; "cg_update"; "a-b.c" ] in
  let pos_float =
    map2 (fun m e -> ldexp (float_of_int m) e) (int_range 1 1000)
      (int_range (-40) 40)
  in
  let precision =
    oneof
      [
        return Ir.Double;
        return Ir.Single;
        map (fun b -> Ir.Half b) (int_range 1 64);
        map (fun c -> Ir.Su3 c) (oneofl Linalg.Su3_codec.all);
      ]
  in
  let role =
    oneofl [ Ir.Read; Ir.Write; Ir.Update; Ir.Reduce ]
  in
  let* n = int_range 1 10_000 in
  let* n_bufs = int_range 1 (List.length buf_names) in
  let names = List.filteri (fun i _ -> i < n_bufs) buf_names in
  let* buffers =
    flatten_l
      (List.map
         (fun name ->
           let* prec = precision in
           let* range =
             option
               (map2 (fun a b -> (min a b, max a b)) pos_float pos_float)
           in
           return { Ir.bname = name; prec; range })
         names)
  in
  let buf = oneofl names in
  let faces = map Array.of_list (list_size (int_range 1 4) (int_range 0 7)) in
  let step =
    frequency
      [
        ( 5,
          let* kname = oneofl kernel_names in
          let* args =
            list_size (int_range 1 3) (pair buf role)
          in
          let* geometry = option (pair (int_range 1 8) (int_range 1 n)) in
          let* partition =
            option
              (map Array.of_list
                 (list_size (int_range 1 3)
                    (map2 (fun a b -> (min a b, max a b + 1)) (int_range 0 n)
                       (int_range 0 n))))
          in
          let* block = option (int_range 1 4096) in
          let* sweeps = int_range 0 3 in
          let* coeff = oneof [ return 1.0; pos_float ] in
          return
            (Ir.Launch
               { Ir.kname; args; geometry; partition; block; sweeps; coeff })
        );
        (1, map2 (fun pbuf faces -> Ir.Post { pbuf; faces }) buf faces);
        (1, map2 (fun cbuf faces -> Ir.Complete { cbuf; faces }) buf faces);
        ( 1,
          map2
            (fun qbuf qblock -> Ir.Quantize { qbuf; qblock })
            buf (int_range 1 100) );
      ]
  in
  let* steps = list_size (int_range 0 8) step in
  let* transport =
    oneofl
      Machine.Transport.[ Staged; Zero_copy; Double_buffered ]
  in
  let* fusion = option bool in
  let* pname = oneofl [ "plan-a"; "p_1"; "cg.tail+x" ] in
  return { Ir.pname; n; transport; fusion; buffers; steps }

let prop_roundtrip =
  QCheck.Test.make ~count:500
    ~name:"plan IR round-trips exactly through print/parse"
    (QCheck.make ~print:Ir.to_string gen_plan)
    (fun p ->
      let text = Ir.to_string p in
      match Ir.of_string text with
      | Error e -> QCheck.Test.fail_reportf "parse failed: %s\n%s" e text
      | Ok p' ->
        let text' = Ir.to_string p' in
        if text' <> text then
          QCheck.Test.fail_reportf "reprint differs:\n%s\n-- vs --\n%s" text
            text'
        else true)

let test_parse_rejects () =
  let bad what s =
    match Ir.of_string s with
    | Ok _ -> Alcotest.failf "%s should not parse" what
    | Error _ -> ()
  in
  bad "empty" "";
  bad "no header" "buffer x double\nend\n";
  bad "missing end" "plan p n=4 transport=staged\nbuffer x double\n";
  bad "bad transport" "plan p n=4 transport=warp\nend\n";
  bad "undeclared step garbage" "plan p n=4 transport=staged\nfrobnicate x\nend\n";
  bad "bad role" "plan p n=4 transport=staged\nbuffer x double\nlaunch k sweeps=1 args=x:borrow\nend\n";
  bad "bad float" "plan p n=4 transport=staged\nbuffer x double range=1.0:nope\nend\n"

(* ---- catalog: extraction + analysis ---- *)

let test_catalog_roundtrip () =
  List.iter
    (fun (name, build) ->
      let p = build () in
      let text = Ir.to_string p in
      match Ir.of_string text with
      | Error e -> Alcotest.failf "catalog plan %s does not parse back: %s" name e
      | Ok p' ->
        Alcotest.(check string)
          (name ^ " round-trips exactly") text (Ir.to_string p'))
    Extract.catalog

let test_catalog_verifies () =
  (* every catalog plan is fully silent — warnings included. The fused
     CG plans used to carry a permanent PLAN005 stencil-tail warning;
     since the tail fusion closed the gap, any diagnostic here is a
     regression. *)
  List.iter
    (fun (name, build) ->
      let ds = Pc.verify (build ()) in
      if ds <> [] then
        Alcotest.failf "%s should be silent but fired: %s" name
          (String.concat "; " (List.map D.to_string ds)))
    Extract.catalog

(* ---- extraction fidelity: the IR against the front-end exports ---- *)

let launch_names p =
  List.filter_map
    (function Ir.Launch k -> Some k.Ir.kname | _ -> None)
    p.Ir.steps

let test_cg_tail_matches_export () =
  List.iter
    (fun fused ->
      Alcotest.(check (list string))
        (Printf.sprintf "cg tail (fused=%b) = Cg.tail_kernels" fused)
        (List.map fst (Solver.Cg.tail_kernels ~fused))
        (launch_names (Extract.cg_tail ~fused ())))
    [ false; true ]

let test_mixed_quantizes_match_export () =
  let p = Extract.mixed ~fused:true () in
  let quantized =
    List.filter_map
      (function Ir.Quantize { qbuf; _ } -> Some qbuf | _ -> None)
      p.Ir.steps
  in
  (* the inner iteration hits exactly Mixed.inner_quantizes, in order;
     the preamble's seed quantize of rs comes first *)
  List.iter
    (fun b ->
      if not (List.mem b quantized) then
        Alcotest.failf "mixed plan never quantizes %s" b)
    Solver.Mixed.inner_quantizes;
  Alcotest.(check (list string))
    "inner quantize order = Mixed.inner_quantizes"
    Solver.Mixed.inner_quantizes
    (match quantized with _seed :: inner -> inner | [] -> [])

let test_bicgstab_matches_export () =
  List.iter
    (fun fused ->
      let names =
        List.filter (fun k -> k <> "apply")
          (launch_names (Extract.bicgstab_iteration ~fused ()))
      in
      Alcotest.(check (list string))
        (Printf.sprintf "bicgstab BLAS-1 (fused=%b) = Bicgstab.tail_kernels"
           fused)
        (List.map fst (Solver.Bicgstab.tail_kernels ~fused))
        names)
    [ false; true ]

(* ---- the model/IR sweep cross-check ---- *)

let test_sweep_accounting () =
  let ir_sweeps p =
    List.fold_left
      (fun acc -> function Ir.Launch k -> acc + k.Ir.sweeps | _ -> acc)
      0 p.Ir.steps
  in
  (* plan, model and host all agree, unfused (5) and fused (2): the
     stencil-tail gap is closed, so the derived gap is zero and the
     host executes exactly what the model prices *)
  List.iter
    (fun fused ->
      let plan = Extract.cg_tail ~fused () in
      let ir = ir_sweeps plan in
      Alcotest.(check int)
        (Printf.sprintf "IR sweeps = model (fused=%b)" fused)
        (int_of_float (Machine.Perf_model.blas1_sweeps ~fused))
        ir;
      Alcotest.(check int)
        (Printf.sprintf "host sweeps agree (fused=%b)" fused)
        (int_of_float (Machine.Perf_model.blas1_host_sweeps ~fused))
        ir;
      Alcotest.(check (option int))
        (Printf.sprintf "derived sweep gap is zero (fused=%b)" fused)
        (Some 0) (Pc.sweep_gap plan))
    [ false; true ];
  (* unpriced plans (no fusion tag) have no gap to derive *)
  Alcotest.(check (option int)) "separate-dot fallback is unpriced" None
    (Pc.sweep_gap (Extract.cg_tail_separate ()));
  (* and a plan drifting off the model is a live PLAN005 error with
     the gap derived from the plan itself, never a whitelisted gap *)
  let p = Extract.cg_tail ~fused:true () in
  let padded =
    {
      p with
      Ir.steps =
        List.map
          (function
            | Ir.Launch k when k.Ir.kname = "xpay_dot" ->
              Ir.Launch { k with Ir.sweeps = k.Ir.sweeps + 1 }
            | s -> s)
          p.Ir.steps;
    }
  in
  Alcotest.(check (option int)) "padded plan gap" (Some 1)
    (Pc.sweep_gap padded);
  check_fires "padded plan" "PLAN005" (errors (Pc.verify padded))

(* ---- seeded defects vs their clean counterparts ---- *)

let test_defect_fixture_pairs () =
  (* each plan fixture fires its rule while the clean plan it was
     derived from verifies silently — the analysis discriminates, it
     does not just complain *)
  let fires = [
    ("plan-partition-overlap", "PLAN001", Check.Fixtures.plan_partition_overlap,
     fun () -> Pc.verify (Extract.pooled_axpy ()));
    ("plan-aliased-output", "PLAN002", Check.Fixtures.plan_aliased_output,
     fun () -> Pc.verify (Extract.cg_tail ~fused:true ()));
    ("plan-tail-aliased", "PLAN002", Check.Fixtures.plan_tail_aliased,
     fun () -> Pc.verify (Extract.wilson_hop_tail ()));
    ("plan-zero-copy-write", "PLAN003", Check.Fixtures.plan_zero_copy_write,
     fun () -> Pc.verify (Extract.dd_zero_copy ()));
    ("plan-sweep-mismatch", "PLAN005", Check.Fixtures.plan_sweep_mismatch,
     fun () -> Pc.verify (Extract.cg_tail ~fused:true ()));
    ("plan-half-range", "PREC001", Check.Fixtures.plan_half_range,
     fun () -> Pc.verify (Extract.mixed ~fused:true ()));
    ("plan-stale-precision", "PREC003", Check.Fixtures.plan_stale_precision,
     fun () -> Pc.verify (Extract.mixed ~fused:true ()));
  ]
  in
  List.iter
    (fun (name, rule, defective, clean) ->
      check_fires ("fixture " ^ name) rule (defective ());
      check_clean ("clean counterpart of " ^ name) (clean ()))
    fires

let test_window_protocol () =
  (* the staged overlapped schedule is clean; dropping a complete
     leaves the window open at plan end *)
  let p = Extract.dd_overlapped () in
  check_clean "dd-overlapped" (Pc.verify p);
  let truncated =
    {
      p with
      Ir.steps =
        List.filter (function Ir.Complete _ -> false | _ -> true) p.Ir.steps;
    }
  in
  check_fires "never-completed window" "PLAN004" (Pc.verify truncated);
  (* completing a face that was never posted *)
  let orphan =
    {
      p with
      Ir.steps =
        Ir.Complete { cbuf = "spinor"; faces = [| 3 |] } :: p.Ir.steps;
    }
  in
  check_fires "complete without post" "PLAN004" (Pc.verify orphan)

let test_undeclared_buffer () =
  let open Ir in
  let p =
    plan ~n:64
      ~buffers:[ buffer ~prec:Double "x" ]
      ~steps:[ Launch (kernel ~args:[ ("x", Read); ("ghost", Write) ] "axpy") ]
      "undeclared-fixture"
  in
  check_fires "undeclared buffer" "PLAN006" (Pc.verify p)

let test_quantize_block_mismatch () =
  let open Ir in
  let p =
    plan ~n:96
      ~buffers:[ buffer ~prec:(Half 24) "p" ]
      ~steps:[ Quantize { qbuf = "p"; qblock = 48 } ]
      "block-mismatch-fixture"
  in
  check_fires "quantize block mismatch" "PREC004" (Pc.verify p)

(* ---- lint-before-cache ---- *)

let test_lint_fusion () =
  (* every real candidate — all three modes crossed with the pool
     geometries — lints clean *)
  List.iter
    (fun (label, (plan : Autotune.Variants.fusion_plan)) ->
      Alcotest.(check (list string))
        (Printf.sprintf "candidate %s lints clean" label)
        []
        (rules
           (Pc.lint_fusion ~n:65536 ~mode:plan.Autotune.Variants.mode
              ~geometry:plan.Autotune.Variants.geometry)))
    (Autotune.Variants.fusion_space ~max_domains:4 ~n:65536 ());
  (* a degenerate geometry is rejected by the analyzer, in every mode *)
  List.iter
    (fun mode ->
      check_fires "degenerate chunk rejected" "PLAN001"
        (Pc.lint_fusion ~n:65536 ~mode ~geometry:(Some (4, 0))))
    Linalg.Fused.[ Unfused; Fused; Tail_fused ]

let test_tune_fusion_lints_before_cache () =
  (* a lint that rejects every fused candidate (both fused modes): the
     tuner must settle on an unfused winner and cache it under that
     label — a rejected plan never enters the search, hence never the
     cache *)
  let tuner = Autotune.Tuner.create () in
  let lint ~mode ~geometry =
    ignore geometry;
    if mode <> Linalg.Fused.Unfused then Some "rejected by test lint"
    else None
  in
  let winner, plan = Autotune.Variants.tune_fusion ~max_domains:2 ~lint tuner ~n:4096 in
  if plan.Autotune.Variants.mode <> Linalg.Fused.Unfused then
    Alcotest.failf "lint rejected all fused candidates yet winner %s is fused"
      winner;
  (* the cached winner replayed on a second call is still unfused *)
  let winner', plan' =
    Autotune.Variants.tune_fusion ~max_domains:2 ~lint tuner ~n:4096
  in
  Alcotest.(check string) "cached winner stable" winner winner';
  if plan'.Autotune.Variants.mode <> Linalg.Fused.Unfused then
    Alcotest.failf "cached winner %s is fused" winner';
  (* a lint rejecting everything still leaves the serial-unfused
     baseline searchable (tuner honesty) *)
  let reject_all ~mode ~geometry =
    ignore mode;
    ignore geometry;
    Some "rejected"
  in
  let winner_base, plan_base =
    Autotune.Variants.tune_fusion ~max_domains:2 ~lint:reject_all
      (Autotune.Tuner.create ()) ~n:4096
  in
  Alcotest.(check string) "baseline survives a reject-all lint"
    "unfused_serial" winner_base;
  if
    plan_base.Autotune.Variants.mode <> Linalg.Fused.Unfused
    || plan_base.Autotune.Variants.geometry <> None
  then Alcotest.fail "reject-all winner is not the serial baseline"

(* ---- bench JSON merge (rides along: the dedup contract) ---- *)

let test_bench_json_rerun_overwrites () =
  let file = Filename.temp_file "bench_json_test" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let row kernel geometry ns =
        { Bench_json.kernel; n = 1024; geometry; ns_per_op = ns; speedup = 1. }
      in
      (* two experiments write disjoint kernels *)
      Bench_json.write ~file ~replacing:[ "axpy" ] [ row "axpy" "serial" 10. ];
      Bench_json.write ~file ~replacing:[ "norm2" ] [ row "norm2" "serial" 20. ];
      let count kernel =
        List.length
          (List.filter (( = ) (Some kernel))
             (List.map Bench_json.kernel_of_line
                (Bench_json.preserved_lines ~file ~replacing:[])))
      in
      Alcotest.(check int) "axpy row present" 1 (count "axpy");
      Alcotest.(check int) "norm2 row preserved" 1 (count "norm2");
      (* rerunning the axpy experiment with a stale replacing list must
         overwrite its own rows, not duplicate them *)
      Bench_json.write ~file ~replacing:[]
        [ row "axpy" "serial" 11.; row "axpy" "d2_c512" 6. ];
      Alcotest.(check int) "rerun overwrites, never duplicates" 2 (count "axpy");
      Alcotest.(check int) "other experiment untouched" 1 (count "norm2"))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_roundtrip;
    Alcotest.test_case "parser rejects malformed plans" `Quick test_parse_rejects;
    Alcotest.test_case "catalog round-trips exactly" `Quick test_catalog_roundtrip;
    Alcotest.test_case "catalog verifies clean" `Quick test_catalog_verifies;
    Alcotest.test_case "CG tail matches Cg.tail_kernels" `Quick
      test_cg_tail_matches_export;
    Alcotest.test_case "mixed quantize points match Mixed.inner_quantizes"
      `Quick test_mixed_quantizes_match_export;
    Alcotest.test_case "bicgstab matches Bicgstab.tail_kernels" `Quick
      test_bicgstab_matches_export;
    Alcotest.test_case "sweep accounting: IR vs model vs host" `Quick
      test_sweep_accounting;
    Alcotest.test_case "seeded defects fire, clean counterparts verify" `Quick
      test_defect_fixture_pairs;
    Alcotest.test_case "window protocol balance" `Quick test_window_protocol;
    Alcotest.test_case "undeclared buffer rejected" `Quick test_undeclared_buffer;
    Alcotest.test_case "quantize block mismatch rejected" `Quick
      test_quantize_block_mismatch;
    Alcotest.test_case "fusion candidates lint clean" `Quick test_lint_fusion;
    Alcotest.test_case "tune_fusion lints before caching" `Quick
      test_tune_fusion_lints_before_cache;
    Alcotest.test_case "bench JSON rerun overwrites its rows" `Quick
      test_bench_json_rerun_overwrites;
  ]
