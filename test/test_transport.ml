(* The halo-transport dimension end to end: Comm delivery semantics
   (staged vs zero-copy vs double-buffered), race/corruption/copy
   accounting, threading through the operator and solver, the perf
   model's extra-copy pricing, the policy-honesty matrix, the
   autotuner's transport x granularity combo cache, and the HALO011-013
   checker rules. *)

module Field = Linalg.Field
module Comm = Vrank.Comm
module Transport = Machine.Transport
module Policy = Machine.Policy
module Spec = Machine.Spec
module PM = Machine.Perf_model
module HC = Check.Halo_check
module D = Check.Diagnostic

let dof = 2

let make_domain () =
  let geom = Lattice.Geometry.create [| 4; 4; 4; 4 |] in
  Lattice.Domain.create geom [| 2; 2; 1; 1 |]

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Scatter a seeded gaussian field, post all faces, bump every local
   site of every rank by +1.0 (the racing write), then complete. The
   perturbation is identical across transports, so any difference in
   the final per-rank fields is ghost data. *)
let raced_round transport =
  let dom = make_domain () in
  let geom = Lattice.Domain.global dom in
  let comm = Comm.create ~transport dom ~dof in
  let global = Field.create (Lattice.Geometry.volume geom * dof) in
  Field.gaussian (Util.Rng.create 11) global;
  let fields = Comm.create_fields comm in
  Comm.scatter comm global fields;
  let h = Comm.post comm fields in
  for r = 0 to Comm.n_ranks comm - 1 do
    let rg = Lattice.Domain.rank_geometry dom r in
    for i = 0 to (rg.Lattice.Domain.local_volume * dof) - 1 do
      fields.(r).{i} <- fields.(r).{i} +. 1.0
    done;
    Comm.mark_written comm r
  done;
  Comm.complete_all h;
  (comm, fields)

(* The ghosts a fresh exchange of the post-write data delivers: what a
   zero-copy transport's raced messages really put on the wire. *)
let post_write_reference () =
  let dom = make_domain () in
  let geom = Lattice.Domain.global dom in
  let comm = Comm.create dom ~dof in
  let global = Field.create (Lattice.Geometry.volume geom * dof) in
  Field.gaussian (Util.Rng.create 11) global;
  let fields = Comm.create_fields comm in
  Comm.scatter comm global fields;
  for r = 0 to Comm.n_ranks comm - 1 do
    let rg = Lattice.Domain.rank_geometry dom r in
    for i = 0 to (rg.Lattice.Domain.local_volume * dof) - 1 do
      fields.(r).{i} <- fields.(r).{i} +. 1.0
    done;
    Comm.mark_written comm r
  done;
  Comm.halo_exchange comm fields;
  fields

let fields_equal a b =
  Array.for_all2 (fun x y -> Field.max_abs_diff x y = 0.) a b

let test_staged_race_flagged_data_safe () =
  let comm, staged = raced_round Transport.Staged in
  let s = Comm.stats comm in
  Alcotest.(check bool) "race counted" true (s.Comm.send_buffer_races > 0);
  Alcotest.(check int) "no corruption" 0 s.Comm.corruptions;
  Alcotest.(check int) "no extra copies" 0 s.Comm.extra_copies;
  (* delivered ghosts are the post-time data, not the written data *)
  let reference = post_write_reference () in
  Alcotest.(check bool) "ghosts differ from post-write data" false
    (fields_equal staged reference)

let test_zero_copy_race_corrupts () =
  let comm_st, staged = raced_round Transport.Staged in
  let comm_zc, zc = raced_round Transport.Zero_copy in
  let st = Comm.stats comm_st and sz = Comm.stats comm_zc in
  Alcotest.(check int) "same races as staged" st.Comm.send_buffer_races
    sz.Comm.send_buffer_races;
  Alcotest.(check bool) "corruptions counted" true (sz.Comm.corruptions > 0);
  Alcotest.(check int) "every raced message corrupt" sz.Comm.send_buffer_races
    sz.Comm.corruptions;
  Alcotest.(check bool) "delivered ghosts differ from staged" false
    (fields_equal staged zc);
  (* the corrupt ghosts are exactly the sender's live (written) data *)
  let reference = post_write_reference () in
  Alcotest.(check bool) "zero-copy delivered the written data" true
    (fields_equal zc reference);
  (* the live audit turns the corruption counter into HALO011 *)
  let ds = Check.halo_audit comm_zc in
  Alcotest.(check bool) "audit fires HALO011" true
    (List.exists (fun (d : D.t) -> d.D.rule = "HALO011") ds)

let test_double_buffered_race_free () =
  let comm_st, staged = raced_round Transport.Staged in
  let comm_db, db = raced_round Transport.Double_buffered in
  let st = Comm.stats comm_st and sd = Comm.stats comm_db in
  Alcotest.(check int) "no races counted" 0 sd.Comm.send_buffer_races;
  Alcotest.(check int) "no corruptions" 0 sd.Comm.corruptions;
  Alcotest.(check int) "one extra copy per message" sd.Comm.messages
    sd.Comm.extra_copies;
  Alcotest.(check int) "same messages as staged" st.Comm.messages
    sd.Comm.messages;
  Alcotest.(check bool) "bit-identical to staged delivery" true
    (fields_equal staged db)

let test_zero_copy_strict_raises () =
  Comm.strict := true;
  let raised =
    try
      let _ = raced_round Transport.Zero_copy in
      false
    with Invalid_argument _ -> true
  in
  Comm.strict := false;
  Alcotest.(check bool) "strict zero-copy race raises" true raised;
  (* double-buffered survives the same schedule under strict *)
  Comm.strict := true;
  let ok =
    try
      let _ = raced_round Transport.Double_buffered in
      true
    with e ->
      Comm.strict := false;
      raise e
  in
  Comm.strict := false;
  Alcotest.(check bool) "strict double-buffered clean" true ok

(* Three write/exchange rounds: the two rotating buffers alternate, so
   a rotation bug (reusing a still-posted slot, or delivering the
   other slot) shows up as stale ghosts vs the staged run. *)
let test_double_buffer_rotation () =
  let run transport =
    let dom = make_domain () in
    let geom = Lattice.Domain.global dom in
    let comm = Comm.create ~transport dom ~dof in
    let global = Field.create (Lattice.Geometry.volume geom * dof) in
    Field.gaussian (Util.Rng.create 5) global;
    let fields = Comm.create_fields comm in
    Comm.scatter comm global fields;
    for round = 1 to 3 do
      Comm.halo_exchange comm fields;
      for r = 0 to Comm.n_ranks comm - 1 do
        let rg = Lattice.Domain.rank_geometry dom r in
        for i = 0 to (rg.Lattice.Domain.local_volume * dof) - 1 do
          fields.(r).{i} <- fields.(r).{i} +. float_of_int round
        done;
        Comm.mark_written comm r
      done
    done;
    Comm.halo_exchange comm fields;
    (comm, fields)
  in
  let _, staged = run Transport.Staged in
  let comm_db, db = run Transport.Double_buffered in
  Alcotest.(check bool) "four rotations deliver staged data" true
    (fields_equal staged db);
  let s = Comm.stats comm_db in
  Alcotest.(check int) "extra copies track messages" s.Comm.messages
    s.Comm.extra_copies

let test_transport_threading () =
  let dom = make_domain () in
  let rng = Util.Rng.create 3 in
  let gauge = Lattice.Gauge.random (Lattice.Domain.global dom) rng in
  let dd = Vrank.Dd_wilson.create dom gauge in
  Alcotest.(check bool) "default transport is staged" true
    (Comm.transport (Vrank.Dd_wilson.comm dd) = Transport.Staged);
  List.iter
    (fun tr ->
      let dd = Vrank.Dd_wilson.create ~transport:tr dom gauge in
      Alcotest.(check bool)
        ("operator carries " ^ Transport.name tr)
        true
        (Comm.transport (Vrank.Dd_wilson.comm dd) = tr);
      let solver = Vrank.Dd_solve.create dd ~mass:0.1 in
      Alcotest.(check bool)
        ("solver reports " ^ Transport.name tr)
        true
        (Vrank.Dd_solve.transport solver = tr))
    Transport.all

(* With no writes between post and complete, every transport's
   overlapped hop is bit-identical to the blocking staged hop, at both
   completion granularities, with strict freshness asserts armed. *)
let test_hop_identical_across_transports () =
  let geom = Lattice.Geometry.create [| 4; 4; 2; 2 |] in
  let rng = Util.Rng.create 17 in
  let gauge = Lattice.Gauge.random geom rng in
  let dom = Lattice.Domain.create geom [| 2; 2; 1; 1 |] in
  let src = Field.create (Lattice.Geometry.volume geom * 24) in
  Field.gaussian rng src;
  let blocking =
    Vrank.Dd_wilson.hop_global ~overlapped:false
      (Vrank.Dd_wilson.create dom gauge)
      src
  in
  List.iter
    (fun tr ->
      List.iter
        (fun gran ->
          let dd = Vrank.Dd_wilson.create ~transport:tr dom gauge in
          Comm.strict := true;
          let hop =
            try Vrank.Dd_wilson.hop_global ~overlapped:true ~granularity:gran dd src
            with e ->
              Comm.strict := false;
              raise e
          in
          Comm.strict := false;
          Alcotest.(check (float 0.))
            (Transport.name tr ^ "/" ^ Policy.granularity_name gran
           ^ " = blocking")
            0.
            (Field.max_abs_diff blocking hop))
        [ Policy.Coarse; Policy.Fine ])
    Transport.all

let test_solve_identical_across_transports () =
  let geom = Lattice.Geometry.create [| 4; 4; 2; 2 |] in
  let rng = Util.Rng.create 23 in
  let gauge = Lattice.Gauge.random geom rng in
  let dom = Lattice.Domain.create geom [| 2; 1; 1; 1 |] in
  let b = Field.create (Lattice.Geometry.volume geom * 24) in
  Field.gaussian rng b;
  let solve tr =
    let dd = Vrank.Dd_wilson.create ~transport:tr dom gauge in
    let solver = Vrank.Dd_solve.create dd ~mass:0.1 in
    let x, _, `Exchanges ex, `Allreduces ar =
      Vrank.Dd_solve.solve_normal ~tol:1e-8 solver ~b_global:b
    in
    (x, ex, ar)
  in
  let x_st, ex_st, ar_st = solve Transport.Staged in
  List.iter
    (fun tr ->
      let x, ex, ar = solve tr in
      Alcotest.(check (float 0.))
        (Transport.name tr ^ " solution = staged")
        0. (Field.max_abs_diff x_st x);
      Alcotest.(check int) "same exchanges" ex_st ex;
      Alcotest.(check int) "same allreduces" ar_st ar)
    [ Transport.Zero_copy; Transport.Double_buffered ]

let test_perf_model_prices_extra_copy () =
  let m = Spec.sierra in
  let p = PM.problem ~dims:[| 16; 16; 16; 32 |] ~l5:8 in
  match PM.best_policy m p ~n_gpus:8 with
  | None -> Alcotest.fail "no feasible policy on sierra at 8 GPUs"
  | Some r ->
    let pol = r.PM.policy in
    let bd tr =
      match PM.stencil_breakdown ~transport:tr m pol p ~n_gpus:8 with
      | Some b -> b
      | None -> Alcotest.fail "breakdown vanished"
    in
    let st = bd Transport.Staged
    and zc = bd Transport.Zero_copy
    and db = bd Transport.Double_buffered in
    Alcotest.(check (float 0.)) "staged pays no copy" 0. st.PM.t_copy;
    Alcotest.(check (float 0.)) "zero-copy pays no copy" 0. zc.PM.t_copy;
    Alcotest.(check bool) "double-buffered copy costs time" true
      (db.PM.t_copy > 0.);
    Alcotest.(check bool) "copy lands in t_total" true
      (abs_float (db.PM.t_total -. st.PM.t_total -. db.PM.t_copy)
      < 1e-12 *. st.PM.t_total);
    (* the default transport leaves the calibrated model untouched *)
    (match PM.stencil_breakdown m pol p ~n_gpus:8 with
    | Some d -> Alcotest.(check (float 0.)) "default = staged" st.PM.t_total d.PM.t_total
    | None -> Alcotest.fail "default breakdown vanished");
    match PM.solver_performance ~transport:Transport.Double_buffered m pol p ~n_gpus:8 with
    | Some r2 ->
      Alcotest.(check bool) "result records its transport" true
        (r2.PM.transport = Transport.Double_buffered);
      Alcotest.(check bool) "extra copy never helps" true
        (r2.PM.tflops_total <= r.PM.tflops_total)
    | None -> Alcotest.fail "double-buffered result vanished"

let test_policy_transport_honesty () =
  List.iter
    (fun (pol : Policy.t) ->
      let ok tr = Policy.transport_ok pol tr in
      match pol.Policy.transfer with
      | Policy.Staged_mpi ->
        Alcotest.(check bool) (Policy.name pol ^ " staged ok") true (ok Transport.Staged);
        Alcotest.(check bool)
          (Policy.name pol ^ " zero-copy dishonest")
          false (ok Transport.Zero_copy);
        Alcotest.(check bool)
          (Policy.name pol ^ " double-buffered ok")
          true
          (ok Transport.Double_buffered)
      | Policy.Zero_copy | Policy.Gdr ->
        Alcotest.(check bool)
          (Policy.name pol ^ " staged dishonest")
          false (ok Transport.Staged);
        Alcotest.(check bool)
          (Policy.name pol ^ " zero-copy ok")
          true (ok Transport.Zero_copy);
        Alcotest.(check bool)
          (Policy.name pol ^ " double-buffered ok")
          true
          (ok Transport.Double_buffered))
    Policy.all

let test_pick_combo_cached () =
  let ct = Autotune.Comm_tune.create () in
  let m = Spec.ray in
  let p = PM.problem ~dims:[| 16; 16; 16; 32 |] ~l5:8 in
  let combo () =
    Autotune.Comm_tune.pick_combo ct m p ~n_gpus:8 ~transport:Transport.Staged
      ~granularity:Policy.Fine
  in
  (match combo () with
  | None -> Alcotest.fail "staged/fine combo should be feasible on ray"
  | Some r ->
    (* the only policy honestly modeled by Staged is the staged-MPI path *)
    Alcotest.(check bool) "staged transport picks staged-mpi" true
      (r.PM.policy.Policy.transfer = Policy.Staged_mpi);
    Alcotest.(check bool) "combo result priced as staged" true
      (r.PM.transport = Transport.Staged));
  Alcotest.(check int) "one combo tuned" 1
    (Autotune.Comm_tune.combo_tune_count ct);
  ignore (combo ());
  Alcotest.(check int) "second lookup is a hit" 1
    (Autotune.Comm_tune.combo_hit_count ct);
  Alcotest.(check int) "still one tune" 1
    (Autotune.Comm_tune.combo_tune_count ct);
  (* infeasible GPU count: the None outcome is cached too *)
  let bad () =
    Autotune.Comm_tune.pick_combo ct m p ~n_gpus:7
      ~transport:Transport.Zero_copy ~granularity:Policy.Fine
  in
  Alcotest.(check bool) "7 GPUs infeasible" true (bad () = None);
  let tunes = Autotune.Comm_tune.combo_tune_count ct in
  Alcotest.(check bool) "None came from a tune" true (tunes = 2);
  ignore (bad ());
  Alcotest.(check int) "cached None costs no tune" tunes
    (Autotune.Comm_tune.combo_tune_count ct)

let test_pick_require_safe () =
  let ct = Autotune.Comm_tune.create () in
  let m = Spec.ray in
  let p = PM.problem ~dims:[| 16; 16; 16; 32 |] ~l5:8 in
  match
    ( Autotune.Comm_tune.pick ct m p ~n_gpus:8,
      Autotune.Comm_tune.pick ~require_safe:true ct m p ~n_gpus:8 )
  with
  | Some (_, best), Some (_, safe) ->
    Alcotest.(check bool) "safe winner never zero-copy" true
      (safe.PM.transport <> Transport.Zero_copy);
    Alcotest.(check bool) "race-freedom cannot beat the open grid" true
      (safe.PM.tflops_total <= best.PM.tflops_total +. 1e-9);
    (* on ray the open grid's winner is the direct GDR wire *)
    Alcotest.(check bool) "ray winner is zero-copy transport" true
      (best.PM.transport = Transport.Zero_copy)
  | _ -> Alcotest.fail "8 GPUs should be feasible on ray"

let test_survey_safe_column () =
  let ct = Autotune.Comm_tune.create () in
  let m = Spec.ray in
  let p = PM.problem ~dims:[| 16; 16; 16; 32 |] ~l5:8 in
  let rows = Autotune.Comm_tune.survey ct m p ~gpu_counts:[ 4; 8 ] in
  Alcotest.(check int) "two feasible rows" 2 (List.length rows);
  List.iter
    (fun (row : Autotune.Comm_tune.survey_row) ->
      match row.Autotune.Comm_tune.safe_tflops with
      | None -> Alcotest.fail "safe column must be feasible when winner is"
      | Some s ->
        Alcotest.(check bool) "safe <= winner" true
          (s <= row.Autotune.Comm_tune.tflops +. 1e-9))
    rows

(* ---- checker rules ---- *)

let racing_schedule =
  [
    HC.Scatter;
    HC.Post None;
    HC.Write [ 0 ];
    HC.Complete None;
    HC.Exchange None;
    HC.Stencil HC.Full;
  ]

let quiet_schedule =
  [
    HC.Scatter;
    HC.Post None;
    HC.Stencil HC.Interior;
    HC.Complete None;
    HC.Stencil HC.Boundary;
  ]

let rules_of ds = List.map (fun (d : D.t) -> d.D.rule) ds

let test_halo011_zero_copy_write () =
  let ds =
    HC.verify_schedule ~transport:Transport.Zero_copy (make_domain ())
      racing_schedule
  in
  let rules = rules_of ds in
  Alcotest.(check bool) "HALO011 fires" true (List.mem "HALO011" rules);
  Alcotest.(check bool) "HALO008 stays quiet under zero-copy" false
    (List.mem "HALO008" rules);
  let d = List.find (fun (d : D.t) -> d.D.rule = "HALO011") ds in
  Alcotest.(check bool) "names the first racing site" true
    (contains d.D.message "first racing site");
  Alcotest.(check bool) "is an error" true (d.D.severity = D.Error)

let test_halo012_wasted_double_buffer () =
  (* a racing write makes every copy earn its keep: clean *)
  let earned =
    HC.verify_schedule ~transport:Transport.Double_buffered (make_domain ())
      racing_schedule
  in
  Alcotest.(check int) "racing double-buffered schedule is clean" 0
    (List.length earned);
  (* no write between any post and complete: the warning fires *)
  let wasted =
    HC.verify_schedule ~transport:Transport.Double_buffered (make_domain ())
      quiet_schedule
  in
  let d =
    match List.filter (fun (d : D.t) -> d.D.rule = "HALO012") wasted with
    | [ d ] -> d
    | ds -> Alcotest.fail (Printf.sprintf "expected one HALO012, got %d" (List.length ds))
  in
  Alcotest.(check bool) "wasted copies are a warning, not an error" true
    (d.D.severity = D.Warning);
  (* the staged transport never warns about copies it never rotated *)
  let staged = HC.verify_schedule (make_domain ()) quiet_schedule in
  Alcotest.(check bool) "no HALO012 under staged" false
    (List.mem "HALO012" (rules_of staged))

let test_halo013_transport_mismatch () =
  let dom = make_domain () in
  let schedule = [ HC.Scatter; HC.Exchange None; HC.Stencil HC.Full ] in
  let pol transfer = { Policy.transfer; granularity = Policy.Fine } in
  let fires transport policy =
    List.mem "HALO013"
      (rules_of (HC.verify_schedule ~transport ~policy dom schedule))
  in
  Alcotest.(check bool) "staged model of a GDR wire" true
    (fires Transport.Staged (pol Policy.Gdr));
  Alcotest.(check bool) "zero-copy model of staged MPI" true
    (fires Transport.Zero_copy (pol Policy.Staged_mpi));
  Alcotest.(check bool) "honest staged pairing" false
    (fires Transport.Staged (pol Policy.Staged_mpi));
  Alcotest.(check bool) "honest zero-copy pairing" false
    (fires Transport.Zero_copy (pol Policy.Zero_copy));
  Alcotest.(check bool) "double-buffered honest everywhere" false
    (fires Transport.Double_buffered (pol Policy.Gdr)
    || fires Transport.Double_buffered (pol Policy.Staged_mpi));
  (* no policy given: nothing to be dishonest about *)
  let ds = HC.verify_schedule ~transport:Transport.Zero_copy dom schedule in
  Alcotest.(check bool) "no policy, no HALO013" false
    (List.mem "HALO013" (rules_of ds))

let suite =
  [
    Alcotest.test_case "staged: race flagged, data safe" `Quick
      test_staged_race_flagged_data_safe;
    Alcotest.test_case "zero-copy: race corrupts delivered ghosts" `Quick
      test_zero_copy_race_corrupts;
    Alcotest.test_case "double-buffered: race-free, copies counted" `Quick
      test_double_buffered_race_free;
    Alcotest.test_case "strict mode: zero-copy raises, double-buffered clean"
      `Quick test_zero_copy_strict_raises;
    Alcotest.test_case "double-buffer rotation over many rounds" `Quick
      test_double_buffer_rotation;
    Alcotest.test_case "transport threads operator -> solver" `Quick
      test_transport_threading;
    Alcotest.test_case "hop identical across transports x granularities" `Quick
      test_hop_identical_across_transports;
    Alcotest.test_case "solve identical across transports" `Quick
      test_solve_identical_across_transports;
    Alcotest.test_case "perf model prices the extra copy" `Quick
      test_perf_model_prices_extra_copy;
    Alcotest.test_case "policy/transport honesty matrix" `Quick
      test_policy_transport_honesty;
    Alcotest.test_case "autotuner combo cache (incl. infeasible)" `Quick
      test_pick_combo_cached;
    Alcotest.test_case "pick ~require_safe drops zero-copy" `Quick
      test_pick_require_safe;
    Alcotest.test_case "survey safe column" `Quick test_survey_safe_column;
    Alcotest.test_case "HALO011: zero-copy write-after-post" `Quick
      test_halo011_zero_copy_write;
    Alcotest.test_case "HALO012: wasted double-buffer copies" `Quick
      test_halo012_wasted_double_buffer;
    Alcotest.test_case "HALO013: transport/policy mismatch" `Quick
      test_halo013_transport_mismatch;
  ]
