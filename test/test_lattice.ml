(* Tests for Lattice: geometry, gauge observables, gauge invariance,
   heatbath Monte Carlo, domain decomposition. *)

module Geometry = Lattice.Geometry
module Gauge = Lattice.Gauge
module Heatbath = Lattice.Heatbath
module Domain = Lattice.Domain
module Su3 = Linalg.Su3

let rng () = Util.Rng.create 7_777

let small_geom () = Geometry.create [| 4; 4; 4; 4 |]

let test_geometry_roundtrip () =
  let g = Geometry.create [| 2; 4; 6; 8 |] in
  Alcotest.(check int) "volume" (2 * 4 * 6 * 8) (Geometry.volume g);
  Geometry.iter_sites g (fun site ->
      let c = Geometry.coords g site in
      Alcotest.(check int) "site_of_coords inverse" site (Geometry.site g c))

let test_geometry_neighbors_inverse () =
  let g = small_geom () in
  Geometry.iter_sites g (fun site ->
      for mu = 0 to 3 do
        Alcotest.(check int) "bwd . fwd = id" site
          (Geometry.bwd g (Geometry.fwd g site mu) mu);
        Alcotest.(check int) "fwd . bwd = id" site
          (Geometry.fwd g (Geometry.bwd g site mu) mu)
      done)

let test_geometry_neighbor_parity_flips () =
  let g = small_geom () in
  Geometry.iter_sites g (fun site ->
      for mu = 0 to 3 do
        Alcotest.(check int) "fwd flips parity"
          (1 - Geometry.parity g site)
          (Geometry.parity g (Geometry.fwd g site mu))
      done)

let test_geometry_eo_roundtrip () =
  let g = small_geom () in
  Geometry.iter_sites g (fun site ->
      let p = Geometry.parity g site in
      let i = Geometry.eo_index g site in
      Alcotest.(check int) "eo roundtrip" site (Geometry.site_of_eo g ~parity:p ~index:i))

let test_geometry_parity_balanced () =
  let g = Geometry.create [| 2; 2; 4; 6 |] in
  let even = ref 0 in
  Geometry.iter_sites g (fun s -> if Geometry.parity g s = 0 then incr even);
  Alcotest.(check int) "half even" (Geometry.volume g / 2) !even

let test_geometry_wrap () =
  let g = Geometry.create [| 4; 4; 4; 4 |] in
  let origin = Geometry.site g [| 0; 0; 0; 0 |] in
  let wrapped = Geometry.bwd g origin 0 in
  Alcotest.(check int) "wraps to far edge" (Geometry.site g [| 3; 0; 0; 0 |]) wrapped;
  Alcotest.(check bool) "crosses boundary" true
    (Geometry.crosses_boundary_fwd g wrapped 0)

(* ---- Gauge observables ---- *)

let test_cold_plaquette () =
  let g = small_geom () in
  let u = Gauge.unit g in
  Alcotest.(check (float 1e-12)) "cold plaquette = 1" 1. (Gauge.average_plaquette u);
  Alcotest.(check (float 1e-9)) "cold action = 0" 0. (Gauge.wilson_action u ~beta:6.)

let test_hot_plaquette_small () =
  let g = small_geom () in
  let u = Gauge.random g (rng ()) in
  let p = Gauge.average_plaquette u in
  Alcotest.(check bool) (Printf.sprintf "hot plaquette ~ 0 (got %g)" p) true
    (abs_float p < 0.2)

let test_gauge_invariance_of_plaquette () =
  (* Apply a random gauge transformation g(x):
     U_mu(x) -> g(x) U_mu(x) g^dag(x + mu). The plaquette is invariant. *)
  let geom = small_geom () in
  let r = rng () in
  let u = Gauge.warm geom r ~eps:0.7 in
  let before = Gauge.average_plaquette u in
  let gs = Array.init (Geometry.volume geom) (fun _ -> Su3.random r) in
  let transformed = Gauge.copy u in
  Geometry.iter_sites geom (fun site ->
      for mu = 0 to 3 do
        let xf = Geometry.fwd geom site mu in
        Gauge.set transformed site mu
          (Su3.mul gs.(site) (Su3.mul (Gauge.get u site mu) (Su3.adj gs.(xf))))
      done);
  let after = Gauge.average_plaquette transformed in
  Alcotest.(check (float 1e-10)) "plaquette gauge invariant" before after

let test_unitarity_violation_tracking () =
  let geom = small_geom () in
  let u = Gauge.warm geom (rng ()) ~eps:0.3 in
  Alcotest.(check bool) "warm start unitary" true
    (Gauge.max_unitarity_violation u < 1e-9)

let test_reunitarize_accuracy () =
  (* the projection the recon codecs lean on (Check.Recon_check's
     RECON001 hint): a warm field drifted off the group by accumulated
     rounding-scale perturbations must come back to machine unitarity *)
  let geom = small_geom () in
  let u = Gauge.warm geom (rng ()) ~eps:0.3 in
  let d = Gauge.data u in
  for e = 0 to Linalg.Field.length d - 1 do
    Bigarray.Array1.set d e
      (Bigarray.Array1.get d e *. (1. +. (1e-6 *. float_of_int (e mod 7))))
  done;
  Alcotest.(check bool) "drifted off the group" true
    (Gauge.max_unitarity_violation u > 1e-7);
  Gauge.reunitarize u;
  Alcotest.(check bool) "projected back within 1e-12" true
    (Gauge.max_unitarity_violation u < 1e-12)

let test_antiperiodic_phases () =
  let geom = small_geom () in
  let u = Gauge.unit geom in
  let ap = Gauge.with_antiperiodic_time u in
  let flipped = ref 0 and same = ref 0 in
  Geometry.iter_sites geom (fun site ->
      let link = Gauge.get ap site 3 in
      let d_id = Su3.frobenius_dist link (Su3.id ()) in
      let d_mid = Su3.frobenius_dist link (Su3.scale (-1.) (Su3.id ())) in
      if d_mid < 1e-12 then incr flipped
      else if d_id < 1e-12 then incr same
      else Alcotest.fail "unexpected link");
  let vol = Geometry.volume geom in
  Alcotest.(check int) "one slice flipped" (vol / 4) !flipped;
  Alcotest.(check int) "rest unchanged" (vol * 3 / 4) !same

(* ---- Heatbath ---- *)

let test_kennedy_pendleton_distribution () =
  (* For alpha, <a0> = coth(...) analytic check is messy; use weak
     alpha: density ~ sqrt(1-x^2)(1 + alpha x), <a0> = alpha/4 + O(a^3). *)
  let r = rng () in
  let alpha = 0.3 in
  let n = 200_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Heatbath.kennedy_pendleton r ~alpha
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "<a0> ~ alpha/4 (got %g, want %g)" mean (alpha /. 4.))
    true
    (abs_float (mean -. (alpha /. 4.)) < 0.01)

let test_heatbath_preserves_group () =
  let geom = Geometry.create [| 2; 2; 2; 4 |] in
  let r = rng () in
  let u = Gauge.random geom r in
  for _ = 1 to 2 do
    Heatbath.sweep r ~beta:5.5 u
  done;
  Alcotest.(check bool) "links still SU(3)" true
    (Gauge.max_unitarity_violation u < 1e-9)

let test_overrelax_preserves_action () =
  let geom = Geometry.create [| 2; 2; 2; 4 |] in
  let r = rng () in
  let u = Gauge.warm geom r ~eps:0.5 in
  let beta = 5.5 in
  let s0 = Gauge.wilson_action u ~beta in
  Heatbath.overrelax_sweep u;
  let s1 = Gauge.wilson_action u ~beta in
  Alcotest.(check bool)
    (Printf.sprintf "action preserved (%g -> %g)" s0 s1)
    true
    (abs_float (s1 -. s0) /. Float.max 1. (abs_float s0) < 1e-8);
  (* but the configuration moved *)
  Alcotest.(check bool) "links changed" true (Gauge.average_plaquette u > 0.)

let test_heatbath_strong_coupling () =
  (* Strong-coupling expansion: <P> = beta/18 + O(beta^2) for SU(3). *)
  let geom = Geometry.create [| 4; 4; 4; 4 |] in
  let r = rng () in
  let beta = 0.5 in
  let u = Gauge.random geom r in
  for _ = 1 to 20 do
    Heatbath.sweep r ~beta u
  done;
  let samples =
    Array.init 20 (fun _ ->
        Heatbath.sweep r ~beta u;
        Gauge.average_plaquette u)
  in
  let p = Util.Stats.mean samples in
  let expect = beta /. 18. in
  Alcotest.(check bool)
    (Printf.sprintf "strong coupling plaquette (got %g, want %g)" p expect)
    true
    (abs_float (p -. expect) < 0.01)

let test_heatbath_orders_phases () =
  (* At beta = 5.7 the plaquette should be far from both 0 and 1
     (~0.55 in the literature); we check it thermalizes into (0.4, 0.7)
     from both hot and cold starts (a weak-but-real consistency test on
     a tiny lattice). *)
  let beta = 5.7 in
  let run start =
    let geom = Geometry.create [| 4; 4; 4; 4 |] in
    let r = rng () in
    let u = if start = `Hot then Gauge.random geom r else Gauge.unit geom in
    for _ = 1 to 30 do
      Heatbath.sweep r ~beta u
    done;
    Gauge.average_plaquette u
  in
  let ph = run `Hot and pc = run `Cold in
  Alcotest.(check bool) (Printf.sprintf "hot start plaquette %g" ph) true (ph > 0.4 && ph < 0.7);
  Alcotest.(check bool) (Printf.sprintf "cold start plaquette %g" pc) true (pc > 0.4 && pc < 0.7);
  Alcotest.(check bool)
    (Printf.sprintf "hot and cold agree (%g vs %g)" ph pc)
    true
    (abs_float (ph -. pc) < 0.05)

let test_generate_ensemble () =
  let geom = Geometry.create [| 2; 2; 2; 4 |] in
  let r = rng () in
  let sched = { (Heatbath.default_schedule ~beta:5.5) with
                Heatbath.n_thermalize = 5; n_decorrelate = 2; n_overrelax = 1 } in
  let configs, history = Heatbath.generate r sched geom ~n_configs:3 in
  Alcotest.(check int) "3 configs" 3 (Array.length configs);
  Alcotest.(check int) "history length" (5 + (3 * 2)) (Array.length history);
  Array.iter
    (fun c ->
      Alcotest.(check bool) "config on group" true
        (Gauge.max_unitarity_violation c < 1e-9))
    configs

(* ---- Stout smearing ---- *)

let test_stout_preserves_group () =
  let geom = Geometry.create [| 4; 4; 2; 2 |] in
  let u = Gauge.random geom (rng ()) in
  let s = Lattice.Smear.smear ~rho:0.1 ~steps:2 u in
  Alcotest.(check bool) "smeared links in SU(3)" true
    (Gauge.max_unitarity_violation s < 1e-9)

let test_stout_raises_plaquette () =
  let geom = Geometry.create [| 4; 4; 4; 4 |] in
  let r = rng () in
  let u = Gauge.warm geom r ~eps:0.6 in
  let p0 = Gauge.average_plaquette u in
  let s1 = Lattice.Smear.step ~rho:0.1 u in
  let p1 = Gauge.average_plaquette s1 in
  let s2 = Lattice.Smear.step ~rho:0.1 s1 in
  let p2 = Gauge.average_plaquette s2 in
  Alcotest.(check bool) (Printf.sprintf "P rises %g -> %g" p0 p1) true (p1 > p0);
  Alcotest.(check bool) (Printf.sprintf "and again %g -> %g" p1 p2) true (p2 > p1)

let test_stout_identity_on_cold () =
  (* the cold configuration is a fixed point: staples are unit-aligned
     and Q vanishes *)
  let geom = Geometry.create [| 2; 2; 2; 4 |] in
  let u = Gauge.unit geom in
  let s = Lattice.Smear.step ~rho:0.15 u in
  Geometry.iter_sites geom (fun site ->
      for mu = 0 to 3 do
        Alcotest.(check bool) "link unchanged" true
          (Su3.frobenius_dist (Gauge.get s site mu) (Su3.id ()) < 1e-12)
      done)

let test_stout_gauge_covariance () =
  (* smearing commutes with gauge transformations *)
  let geom = Geometry.create [| 2; 2; 2; 4 |] in
  let r = rng () in
  let u = Gauge.warm geom r ~eps:0.5 in
  let gs = Array.init (Geometry.volume geom) (fun _ -> Su3.random r) in
  let transform field =
    let out = Gauge.copy field in
    Geometry.iter_sites geom (fun site ->
        for mu = 0 to 3 do
          let xf = Geometry.fwd geom site mu in
          Gauge.set out site mu
            (Su3.mul gs.(site) (Su3.mul (Gauge.get field site mu) (Su3.adj gs.(xf))))
        done);
    out
  in
  let a = transform (Lattice.Smear.step ~rho:0.1 u) in
  let b = Lattice.Smear.step ~rho:0.1 (transform u) in
  let worst = ref 0. in
  Geometry.iter_sites geom (fun site ->
      for mu = 0 to 3 do
        let d = Su3.frobenius_dist (Gauge.get a site mu) (Gauge.get b site mu) in
        if d > !worst then worst := d
      done);
  Alcotest.(check bool) (Printf.sprintf "covariant (worst %g)" !worst) true
    (!worst < 1e-9)

(* ---- Hybrid Monte Carlo ---- *)

let test_hmc_reversibility () =
  let geom = Geometry.create [| 2; 2; 2; 4 |] in
  let r = rng () in
  let u = Gauge.warm geom r ~eps:0.5 in
  let dev = Lattice.Hmc.reversibility ~eps:0.05 ~steps:8 ~beta:5.7 r u in
  Alcotest.(check bool) (Printf.sprintf "reversible to roundoff (%g)" dev) true
    (dev < 1e-10)

let test_hmc_dh_scales_as_eps2 () =
  (* leapfrog is second order: halving eps quarters dH *)
  let geom = Geometry.create [| 2; 2; 2; 4 |] in
  let r = rng () in
  let u = Gauge.warm geom r ~eps:0.5 in
  let dh eps = abs_float (Lattice.Hmc.dh_at ~tau:0.4 ~beta:5.7 ~eps (Util.Rng.create 9) u) in
  let d1 = dh 0.1 and d2 = dh 0.05 in
  let ratio = d1 /. d2 in
  Alcotest.(check bool)
    (Printf.sprintf "dH ratio %.2f in [2.5, 6]" ratio)
    true
    (ratio > 2.5 && ratio < 6.)

let test_hmc_momentum_distribution () =
  (* <Tr P^2> = 8 per link by equipartition (8 generators, weight
     exp(-Tr P^2 / 2)) *)
  let r = rng () in
  let n = 3000 in
  let acc = ref 0. in
  for _ = 1 to n do
    let p = Lattice.Hmc.random_momentum r in
    acc := !acc +. Su3.re_trace (Su3.mul p p)
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "<Tr P^2> = %g ~ 8" mean) true
    (abs_float (mean -. 8.) < 0.3)

let test_hmc_momentum_traceless_hermitian () =
  let r = rng () in
  for _ = 1 to 10 do
    let p = Lattice.Hmc.random_momentum r in
    let tr = Su3.trace p in
    Alcotest.(check bool) "traceless" true (Linalg.Cplx.abs tr < 1e-12);
    (* hermitian: p = p^dag *)
    Alcotest.(check bool) "hermitian" true
      (Su3.frobenius_dist p (Su3.adj p) < 1e-12)
  done

let test_hmc_acceptance_and_exactness () =
  let geom = Geometry.create [| 2; 2; 2; 4 |] in
  let r = rng () in
  let u0 = Gauge.warm geom r ~eps:0.5 in
  let u, _, acc = Lattice.Hmc.run ~eps:0.05 ~steps:8 ~beta:5.7 ~n:40 r u0 in
  Alcotest.(check bool) (Printf.sprintf "acceptance %.2f > 0.5" acc) true (acc > 0.5);
  Alcotest.(check bool) "links stay in SU(3)" true
    (Gauge.max_unitarity_violation u < 1e-9);
  (* Creutz identity <exp(-dH)> = 1 on the equilibrated chain *)
  let u = ref u in
  let dhs = Array.init 60 (fun _ ->
      let t = Lattice.Hmc.trajectory ~eps:0.05 ~steps:8 ~beta:5.7 r !u in
      u := t.Lattice.Hmc.field;
      t.Lattice.Hmc.dh) in
  let e = Util.Stats.mean (Array.map (fun d -> exp (-.d)) dhs) in
  Alcotest.(check bool) (Printf.sprintf "<exp(-dH)> = %.3f ~ 1" e) true
    (abs_float (e -. 1.) < 0.4)

let test_hmc_matches_heatbath_weak_coupling () =
  (* two exact algorithms, one distribution: compare plaquettes at
     beta = 6.0 (away from the small-volume crossover) *)
  let beta = 6.0 in
  let geom = Geometry.create [| 4; 4; 4; 4 |] in
  let r = rng () in
  let u = ref (Gauge.warm geom r ~eps:0.4) in
  for _ = 1 to 80 do
    u := (Lattice.Hmc.trajectory ~eps:0.05 ~steps:10 ~beta r !u).Lattice.Hmc.field
  done;
  let hmc_samples =
    Array.init 80 (fun _ ->
        let t = Lattice.Hmc.trajectory ~eps:0.05 ~steps:10 ~beta r !u in
        u := t.Lattice.Hmc.field;
        t.Lattice.Hmc.plaquette)
  in
  let hb = Gauge.warm geom (Util.Rng.create 12) ~eps:0.4 in
  let hb_rng = Util.Rng.create 13 in
  for _ = 1 to 60 do
    Heatbath.sweep hb_rng ~beta hb
  done;
  let hb_samples =
    Array.init 80 (fun _ ->
        Heatbath.sweep hb_rng ~beta hb;
        Gauge.average_plaquette hb)
  in
  let m_hmc = Util.Stats.mean hmc_samples and m_hb = Util.Stats.mean hb_samples in
  Alcotest.(check bool)
    (Printf.sprintf "HMC %g ~ heatbath %g (lit ~0.594)" m_hmc m_hb)
    true
    (abs_float (m_hmc -. m_hb) < 0.012);
  Alcotest.(check bool) "both near literature" true
    (abs_float (m_hb -. 0.594) < 0.01 && abs_float (m_hmc -. 0.594) < 0.012)

(* ---- Observables and gradient flow ---- *)

let test_wilson_loop_cold () =
  let geom = Geometry.create [| 4; 4; 4; 4 |] in
  let u = Gauge.unit geom in
  Alcotest.(check (float 1e-12)) "cold 1x1" 1. (Lattice.Observables.average_wilson_loop u ~r:1 ~t:1);
  Alcotest.(check (float 1e-12)) "cold 2x2" 1. (Lattice.Observables.average_wilson_loop u ~r:2 ~t:2)

let test_wilson_loop_1x1_is_plaquette () =
  let geom = Geometry.create [| 4; 4; 2; 2 |] in
  let u = Gauge.warm geom (rng ()) ~eps:0.5 in
  (* the 1x1 loop in (mu,3) planes averages a subset of plaquettes;
     compare against a direct computation *)
  let direct = ref 0. and count = ref 0 in
  Geometry.iter_sites geom (fun site ->
      for mu = 0 to 2 do
        direct := !direct +. Su3.re_trace (Gauge.plaquette u site mu 3);
        incr count
      done);
  let direct = !direct /. (3. *. float_of_int !count) in
  Alcotest.(check (float 1e-10)) "W(1,1) = temporal plaquette" direct
    (Lattice.Observables.average_wilson_loop u ~r:1 ~t:1)

let test_wilson_loop_area_law_trend () =
  (* on a rough configuration, larger loops are smaller in magnitude *)
  let geom = Geometry.create [| 4; 4; 4; 4 |] in
  let u = Gauge.warm geom (rng ()) ~eps:0.8 in
  let w11 = abs_float (Lattice.Observables.average_wilson_loop u ~r:1 ~t:1) in
  let w22 = abs_float (Lattice.Observables.average_wilson_loop u ~r:2 ~t:2) in
  Alcotest.(check bool) (Printf.sprintf "W(2,2) %g < W(1,1) %g" w22 w11) true (w22 < w11)

let test_polyakov_cold () =
  let geom = Geometry.create [| 2; 2; 2; 4 |] in
  let u = Gauge.unit geom in
  let p = Lattice.Observables.polyakov_loop u in
  Alcotest.(check bool) "cold Polyakov = 1" true
    (Linalg.Cplx.abs (Linalg.Cplx.sub p Linalg.Cplx.one) < 1e-12)

let test_energy_density_gauge_invariant () =
  let geom = Geometry.create [| 2; 2; 2; 4 |] in
  let r = rng () in
  let u = Gauge.warm geom r ~eps:0.5 in
  let before = Lattice.Observables.average_energy_density u in
  let gs = Array.init (Geometry.volume geom) (fun _ -> Su3.random r) in
  let transformed = Gauge.copy u in
  Geometry.iter_sites geom (fun site ->
      for mu = 0 to 3 do
        let xf = Geometry.fwd geom site mu in
        Gauge.set transformed site mu
          (Su3.mul gs.(site) (Su3.mul (Gauge.get u site mu) (Su3.adj gs.(xf))))
      done);
  let after = Lattice.Observables.average_energy_density transformed in
  Alcotest.(check bool)
    (Printf.sprintf "E gauge invariant (%g vs %g)" before after)
    true
    (abs_float (before -. after) /. Float.max 1e-12 (abs_float before) < 1e-8)

let test_energy_density_cold_zero () =
  let geom = Geometry.create [| 2; 2; 2; 4 |] in
  let u = Gauge.unit geom in
  Alcotest.(check (float 1e-20)) "cold E = 0" 0.
    (Lattice.Observables.average_energy_density u)

let test_topological_charge_cold_zero () =
  let geom = Geometry.create [| 2; 2; 2; 4 |] in
  let u = Gauge.unit geom in
  Alcotest.(check (float 1e-12)) "cold Q = 0" 0.
    (Lattice.Observables.topological_charge u)

let test_flow_smooths () =
  let geom = Geometry.create [| 4; 4; 2; 2 |] in
  let u = Gauge.warm geom (rng ()) ~eps:0.6 in
  let p0 = Gauge.average_plaquette u in
  let e0 = Lattice.Observables.average_energy_density u in
  let v, hist = Lattice.Flow.flow ~eps:0.02 ~t_max:0.1 u in
  let p1 = Gauge.average_plaquette v in
  let e1 = Lattice.Observables.average_energy_density v in
  Alcotest.(check bool) (Printf.sprintf "plaquette rises %g -> %g" p0 p1) true (p1 > p0);
  Alcotest.(check bool) (Printf.sprintf "energy falls %g -> %g" e0 e1) true (e1 < e0);
  Alcotest.(check int) "history recorded" 5 (List.length hist);
  Alcotest.(check bool) "flowed links unitary" true (Gauge.max_unitarity_violation v < 1e-9)

let test_flow_monotone_history () =
  let geom = Geometry.create [| 4; 4; 2; 2 |] in
  let u = Gauge.warm geom (rng ()) ~eps:0.6 in
  let _, hist = Lattice.Flow.flow ~eps:0.02 ~t_max:0.08 u in
  let ps = List.map (fun h -> h.Lattice.Flow.plaquette) hist in
  let rec mono = function a :: b :: tl -> a <= b +. 1e-12 && mono (b :: tl) | _ -> true in
  Alcotest.(check bool) "plaquette monotone along flow" true (mono ps)

(* ---- Domain decomposition ---- *)

let test_domain_partition () =
  let g = Geometry.create [| 4; 4; 4; 8 |] in
  let d = Domain.create g [| 2; 1; 2; 2 |] in
  Alcotest.(check int) "8 ranks" 8 (Domain.n_ranks d);
  (* every global site owned exactly once *)
  let counts = Array.make (Geometry.volume g) 0 in
  for r = 0 to Domain.n_ranks d - 1 do
    let rg = Domain.rank_geometry d r in
    for s = 0 to rg.Domain.local_volume - 1 do
      counts.(rg.Domain.local_to_global.(s)) <- counts.(rg.Domain.local_to_global.(s)) + 1
    done
  done;
  Array.iter (fun c -> Alcotest.(check int) "owned once" 1 c) counts

let test_domain_neighbor_tables_consistent () =
  let g = Geometry.create [| 4; 4; 4; 4 |] in
  let d = Domain.create g [| 2; 2; 1; 1 |] in
  for r = 0 to Domain.n_ranks d - 1 do
    let rg = Domain.rank_geometry d r in
    for s = 0 to rg.Domain.local_volume - 1 do
      let gsite = rg.Domain.local_to_global.(s) in
      for mu = 0 to 3 do
        (* the extended index's global site must equal the global hop *)
        let f = Domain.fwd rg s mu in
        Alcotest.(check int) "fwd hop matches global"
          (Geometry.fwd g gsite mu)
          rg.Domain.local_to_global.(f);
        let b = Domain.bwd rg s mu in
        Alcotest.(check int) "bwd hop matches global"
          (Geometry.bwd g gsite mu)
          rg.Domain.local_to_global.(b)
      done
    done
  done

let test_domain_scatter_gather_roundtrip () =
  let g = Geometry.create [| 4; 4; 2; 2 |] in
  let d = Domain.create g [| 2; 2; 1; 1 |] in
  let dof = 3 in
  let r = rng () in
  let field = Linalg.Field.create (Geometry.volume g * dof) in
  Linalg.Field.gaussian r field;
  let locals =
    Array.init (Domain.n_ranks d) (fun rk -> Domain.scatter_field d ~dof field rk)
  in
  let back = Domain.gather_field d ~dof locals in
  Alcotest.(check (float 0.)) "roundtrip exact" 0. (Linalg.Field.max_abs_diff field back)

let test_domain_interior_boundary_split () =
  let g = Geometry.create [| 4; 4; 4; 4 |] in
  let d = Domain.create g [| 2; 1; 1; 1 |] in
  let rg = Domain.rank_geometry d 0 in
  Alcotest.(check int) "interior + boundary = volume"
    rg.Domain.local_volume
    (Array.length rg.Domain.interior_sites + Array.length rg.Domain.boundary_sites);
  (* interior sites never touch ghosts *)
  Array.iter
    (fun s ->
      for mu = 0 to 3 do
        Alcotest.(check bool) "interior fwd local" true
          (Domain.fwd rg s mu < rg.Domain.local_volume);
        Alcotest.(check bool) "interior bwd local" true
          (Domain.bwd rg s mu < rg.Domain.local_volume)
      done)
    rg.Domain.interior_sites

let test_domain_single_rank_grid () =
  (* trivial decomposition: all hops of boundary sites go to ghosts
     that mirror the same rank (self-exchange) *)
  let g = Geometry.create [| 2; 2; 2; 2 |] in
  let d = Domain.create g [| 1; 1; 1; 1 |] in
  let rg = Domain.rank_geometry d 0 in
  Alcotest.(check int) "local volume = global" (Geometry.volume g) rg.Domain.local_volume;
  Array.iter
    (fun (f : Domain.face) -> Alcotest.(check int) "self neighbor" 0 f.Domain.neighbor)
    rg.Domain.faces

let suite =
  [
    Alcotest.test_case "geometry coord roundtrip" `Quick test_geometry_roundtrip;
    Alcotest.test_case "geometry neighbors inverse" `Quick test_geometry_neighbors_inverse;
    Alcotest.test_case "geometry parity flips" `Quick test_geometry_neighbor_parity_flips;
    Alcotest.test_case "geometry eo roundtrip" `Quick test_geometry_eo_roundtrip;
    Alcotest.test_case "geometry parity balance" `Quick test_geometry_parity_balanced;
    Alcotest.test_case "geometry wrapping" `Quick test_geometry_wrap;
    Alcotest.test_case "cold plaquette" `Quick test_cold_plaquette;
    Alcotest.test_case "hot plaquette" `Quick test_hot_plaquette_small;
    Alcotest.test_case "plaquette gauge invariance" `Quick test_gauge_invariance_of_plaquette;
    Alcotest.test_case "unitarity tracking" `Quick test_unitarity_violation_tracking;
    Alcotest.test_case "reunitarize accuracy" `Quick test_reunitarize_accuracy;
    Alcotest.test_case "antiperiodic phases" `Quick test_antiperiodic_phases;
    Alcotest.test_case "kennedy-pendleton distribution" `Slow test_kennedy_pendleton_distribution;
    Alcotest.test_case "heatbath stays in group" `Quick test_heatbath_preserves_group;
    Alcotest.test_case "overrelax preserves action" `Quick test_overrelax_preserves_action;
    Alcotest.test_case "strong-coupling plaquette" `Slow test_heatbath_strong_coupling;
    Alcotest.test_case "thermalization hot=cold" `Slow test_heatbath_orders_phases;
    Alcotest.test_case "ensemble generation" `Quick test_generate_ensemble;
    Alcotest.test_case "stout stays in group" `Quick test_stout_preserves_group;
    Alcotest.test_case "stout raises plaquette" `Quick test_stout_raises_plaquette;
    Alcotest.test_case "stout fixes cold" `Quick test_stout_identity_on_cold;
    Alcotest.test_case "stout gauge covariant" `Quick test_stout_gauge_covariance;
    Alcotest.test_case "hmc reversibility" `Quick test_hmc_reversibility;
    Alcotest.test_case "hmc dH ~ eps^2" `Quick test_hmc_dh_scales_as_eps2;
    Alcotest.test_case "hmc momentum dist" `Quick test_hmc_momentum_distribution;
    Alcotest.test_case "hmc momentum algebra" `Quick test_hmc_momentum_traceless_hermitian;
    Alcotest.test_case "hmc exactness" `Slow test_hmc_acceptance_and_exactness;
    Alcotest.test_case "hmc = heatbath" `Slow test_hmc_matches_heatbath_weak_coupling;
    Alcotest.test_case "wilson loop cold" `Quick test_wilson_loop_cold;
    Alcotest.test_case "wilson loop = plaquette" `Quick test_wilson_loop_1x1_is_plaquette;
    Alcotest.test_case "wilson loop area trend" `Quick test_wilson_loop_area_law_trend;
    Alcotest.test_case "polyakov cold" `Quick test_polyakov_cold;
    Alcotest.test_case "energy density invariant" `Quick test_energy_density_gauge_invariant;
    Alcotest.test_case "energy density cold" `Quick test_energy_density_cold_zero;
    Alcotest.test_case "topological charge cold" `Quick test_topological_charge_cold_zero;
    Alcotest.test_case "gradient flow smooths" `Quick test_flow_smooths;
    Alcotest.test_case "flow monotone" `Quick test_flow_monotone_history;
    Alcotest.test_case "domain partition" `Quick test_domain_partition;
    Alcotest.test_case "domain neighbor tables" `Quick test_domain_neighbor_tables_consistent;
    Alcotest.test_case "domain scatter/gather" `Quick test_domain_scatter_gather_roundtrip;
    Alcotest.test_case "domain interior/boundary" `Quick test_domain_interior_boundary_split;
    Alcotest.test_case "domain single rank" `Quick test_domain_single_rank_grid;
  ]
