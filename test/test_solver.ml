(* Tests for Solver: CG, mixed-precision CG with reliable updates, and
   the end-to-end domain-wall solves (red-black vs full oracle). *)

module Geometry = Lattice.Geometry
module Gauge = Lattice.Gauge
module Field = Linalg.Field
module Mobius = Dirac.Mobius
module Cg = Solver.Cg
module Mixed = Solver.Mixed
module Dwf = Solver.Dwf_solve

let rng () = Util.Rng.create 90_210

(* A small SPD operator: A = I + B^T B for a random sparse-ish B,
   realized densely on vectors of length n. *)
let make_spd n seed =
  let r = Util.Rng.create seed in
  let bmat = Array.init (n * n) (fun _ -> Util.Rng.gaussian r /. float_of_int n) in
  fun (src : Field.t) (dst : Field.t) ->
    (* dst = src + B^T (B src) *)
    let tmp = Array.make n 0. in
    for i = 0 to n - 1 do
      let acc = ref 0. in
      for j = 0 to n - 1 do
        acc := !acc +. (bmat.((i * n) + j) *. Bigarray.Array1.get src j)
      done;
      tmp.(i) <- !acc
    done;
    for j = 0 to n - 1 do
      let acc = ref 0. in
      for i = 0 to n - 1 do
        acc := !acc +. (bmat.((i * n) + j) *. tmp.(i))
      done;
      Bigarray.Array1.set dst j (Bigarray.Array1.get src j +. !acc)
    done

let test_cg_solves_spd () =
  let n = 48 in
  let apply = make_spd n 1 in
  let r = rng () in
  let b = Field.create n in
  Field.gaussian r b;
  let x, stats = Cg.solve ~apply ~b ~tol:1e-12 ~max_iter:500 ~flops_per_apply:1. () in
  Alcotest.(check bool) "converged" true stats.Cg.converged;
  let ax = Field.create n in
  apply x ax;
  let d = Field.create n in
  Field.sub b ax d;
  Alcotest.(check bool) "true residual small" true
    (sqrt (Field.norm2 d /. Field.norm2 b) < 1e-10)

let test_cg_zero_rhs () =
  let apply = make_spd 8 2 in
  let b = Field.create 8 in
  let x, stats = Cg.solve ~apply ~b ~tol:1e-10 ~max_iter:10 ~flops_per_apply:1. () in
  Alcotest.(check bool) "converged" true stats.Cg.converged;
  Alcotest.(check int) "0 iterations" 0 stats.Cg.iterations;
  Alcotest.(check (float 0.)) "x = 0" 0. (Field.norm2 x)

let test_cg_initial_guess () =
  let n = 32 in
  let apply = make_spd n 3 in
  let r = rng () in
  let b = Field.create n in
  Field.gaussian r b;
  let x1, s1 = Cg.solve ~apply ~b ~tol:1e-12 ~max_iter:500 ~flops_per_apply:1. () in
  (* warm start from the solution: should converge immediately *)
  let _, s2 = Cg.solve ~x0:x1 ~apply ~b ~tol:1e-10 ~max_iter:500 ~flops_per_apply:1. () in
  Alcotest.(check bool) "warm start trivial" true (s2.Cg.iterations <= 1);
  Alcotest.(check bool) "cold start took iterations" true (s1.Cg.iterations > 1)

let test_cg_max_iter_respected () =
  let n = 64 in
  let apply = make_spd n 4 in
  let r = rng () in
  let b = Field.create n in
  Field.gaussian r b;
  let _, stats = Cg.solve ~apply ~b ~tol:1e-30 ~max_iter:3 ~flops_per_apply:1. () in
  Alcotest.(check bool) "stopped at max_iter" true (stats.Cg.iterations <= 3);
  Alcotest.(check bool) "not converged" true (not stats.Cg.converged)

let test_cg_flops_accounting () =
  let n = 16 in
  let apply = make_spd n 5 in
  let r = rng () in
  let b = Field.create n in
  Field.gaussian r b;
  let _, stats = Cg.solve ~apply ~b ~tol:1e-12 ~max_iter:100 ~flops_per_apply:1000. () in
  (* at least one apply per iteration plus the closing true-residual apply *)
  Alcotest.(check bool) "flops >= applies" true
    (stats.Cg.flops >= float_of_int (stats.Cg.iterations + 1) *. 1000.)

let test_mixed_cg_converges () =
  let n = 24 * 8 in
  (* block size must divide n *)
  let apply = make_spd n 6 in
  let r = rng () in
  let b = Field.create n in
  Field.gaussian r b;
  let x, stats = Mixed.solve ~apply ~b ~flops_per_apply:1. () in
  Alcotest.(check bool) "converged" true stats.Cg.converged;
  Alcotest.(check bool) "used reliable updates" true (stats.Cg.reliable_updates >= 1);
  let ax = Field.create n in
  apply x ax;
  let d = Field.create n in
  Field.sub b ax d;
  Alcotest.(check bool) "true residual meets tol" true
    (sqrt (Field.norm2 d /. Field.norm2 b) < 1e-7)

let test_mixed_matches_double () =
  let n = 24 * 4 in
  let apply = make_spd n 7 in
  let r = rng () in
  let b = Field.create n in
  Field.gaussian r b;
  let xd, _ = Cg.solve ~apply ~b ~tol:1e-10 ~max_iter:1000 ~flops_per_apply:1. () in
  let xm, _ =
    Mixed.solve
      ~config:{ Mixed.default_config with tol = 1e-10 }
      ~apply ~b ~flops_per_apply:1. ()
  in
  let d = Field.create n in
  Field.sub xd xm d;
  Alcotest.(check bool) "mixed = double within tolerance" true
    (sqrt (Field.norm2 d /. Field.norm2 xd) < 1e-6)

(* ---- BiCGStab ---- *)

(* BiCGStab uses complex inner products, so its operator must be
   complex-linear: a real matrix applied to the real and imaginary
   parts independently (interleaved layout, n complex components). *)
let make_spd_complex n seed =
  let r = Util.Rng.create seed in
  let bmat = Array.init (n * n) (fun _ -> Util.Rng.gaussian r /. float_of_int n) in
  fun (src : Field.t) (dst : Field.t) ->
    let tmp = Array.make (2 * n) 0. in
    for i = 0 to n - 1 do
      let re = ref 0. and im = ref 0. in
      for j = 0 to n - 1 do
        re := !re +. (bmat.((i * n) + j) *. Bigarray.Array1.get src (2 * j));
        im := !im +. (bmat.((i * n) + j) *. Bigarray.Array1.get src ((2 * j) + 1))
      done;
      tmp.(2 * i) <- !re;
      tmp.((2 * i) + 1) <- !im
    done;
    for j = 0 to n - 1 do
      let re = ref 0. and im = ref 0. in
      for i = 0 to n - 1 do
        re := !re +. (bmat.((i * n) + j) *. tmp.(2 * i));
        im := !im +. (bmat.((i * n) + j) *. tmp.((2 * i) + 1))
      done;
      Bigarray.Array1.set dst (2 * j) (Bigarray.Array1.get src (2 * j) +. !re);
      Bigarray.Array1.set dst ((2 * j) + 1)
        (Bigarray.Array1.get src ((2 * j) + 1) +. !im)
    done

let test_bicgstab_spd () =
  let n = 48 in
  let apply = make_spd_complex (n / 2) 31 in
  let r = rng () in
  let b = Field.create n in
  Field.gaussian r b;
  let x, st = Solver.Bicgstab.solve ~apply ~b ~tol:1e-10 ~max_iter:500 ~flops_per_apply:1. () in
  Alcotest.(check bool) "converged" true st.Cg.converged;
  let ax = Field.create n in
  apply x ax;
  let d = Field.create n in
  Field.sub b ax d;
  Alcotest.(check bool) "true residual" true (sqrt (Field.norm2 d /. Field.norm2 b) < 1e-8)

let test_bicgstab_nonhermitian () =
  (* BiCGStab's reason to exist: solve a genuinely non-hermitian system
     (a Wilson operator) directly. *)
  let geom = Geometry.create [| 4; 2; 2; 4 |] in
  let gauge = Gauge.random geom (rng ()) in
  let w = Dirac.Wilson.of_geometry geom gauge in
  let n = Geometry.volume geom * 24 in
  let apply src dst = Dirac.Wilson.apply w ~mass:0.3 ~src ~dst in
  let r = rng () in
  let b = Field.create n in
  Field.gaussian r b;
  let x, st = Solver.Bicgstab.solve ~apply ~b ~tol:1e-10 ~max_iter:2000 ~flops_per_apply:1. () in
  Alcotest.(check bool) "converged" true st.Cg.converged;
  let ax = Field.create n in
  apply x ax;
  let d = Field.create n in
  Field.sub b ax d;
  Alcotest.(check bool) "solves Wilson directly" true
    (sqrt (Field.norm2 d /. Field.norm2 b) < 1e-8)

let test_bicgstab_matches_cgne () =
  (* same Wilson system through CG on the normal equations *)
  let geom = Geometry.create [| 2; 2; 2; 4 |] in
  let gauge = Gauge.warm geom (rng ()) ~eps:0.3 in
  let w = Dirac.Wilson.of_geometry geom gauge in
  let n = Geometry.volume geom * 24 in
  let apply src dst = Dirac.Wilson.apply w ~mass:0.3 ~src ~dst in
  let apply_normal src dst =
    let tmp = Field.create n in
    apply src tmp;
    let tmp2 = Field.create n in
    Dirac.Gamma.apply_gamma5 tmp tmp2;
    let tmp3 = Field.create n in
    apply tmp2 tmp3;
    Dirac.Gamma.apply_gamma5 tmp3 dst
  in
  let r = rng () in
  let b = Field.create n in
  Field.gaussian r b;
  let x_bi, _ = Solver.Bicgstab.solve ~apply ~b ~tol:1e-12 ~max_iter:4000 ~flops_per_apply:1. () in
  (* CGNE: M^dag M x = M^dag b with M^dag = g5 M g5 *)
  let rhs = Field.create n in
  let t1 = Field.create n in
  Dirac.Gamma.apply_gamma5 b t1;
  let t2 = Field.create n in
  apply t1 t2;
  Dirac.Gamma.apply_gamma5 t2 rhs;
  let x_cg, _ = Cg.solve ~apply:apply_normal ~b:rhs ~tol:1e-12 ~max_iter:4000 ~flops_per_apply:1. () in
  let d = Field.create n in
  Field.sub x_bi x_cg d;
  Alcotest.(check bool) "BiCGStab = CGNE solution" true
    (sqrt (Field.norm2 d /. Field.norm2 x_cg) < 1e-7)

(* ---- chronological forecasting ---- *)

let test_forecast_exact_history () =
  let n = 32 in
  let apply = make_spd n 77 in
  let r = rng () in
  let b = Field.create n in
  Field.gaussian r b;
  let x, _ = Cg.solve ~apply ~b ~tol:1e-13 ~max_iter:500 ~flops_per_apply:1. () in
  let f = Solver.Forecast.create ~depth:3 () in
  Solver.Forecast.record f x;
  (match Solver.Forecast.guess f ~apply ~b with
  | None -> Alcotest.fail "no guess"
  | Some g ->
    let ag = Field.create n in
    apply g ag;
    let d = Field.create n in
    Field.sub b ag d;
    Alcotest.(check bool) "exact history -> exact guess" true
      (sqrt (Field.norm2 d /. Field.norm2 b) < 1e-9))

let test_forecast_reduces_iterations () =
  let n = 64 in
  let apply = make_spd n 78 in
  let r = rng () in
  let b1 = Field.create n in
  Field.gaussian r b1;
  let x1, s_cold = Cg.solve ~apply ~b:b1 ~tol:1e-10 ~max_iter:500 ~flops_per_apply:1. () in
  let f = Solver.Forecast.create () in
  Solver.Forecast.record f x1;
  (* a nearby RHS: b2 = b1 + small perturbation *)
  let b2 = Field.copy b1 in
  let noise = Field.create n in
  Field.gaussian r noise;
  Field.axpy 0.01 noise b2;
  let guess = Option.get (Solver.Forecast.guess f ~apply ~b:b2) in
  let _, s_warm = Cg.solve ~x0:guess ~apply ~b:b2 ~tol:1e-10 ~max_iter:500 ~flops_per_apply:1. () in
  Alcotest.(check bool)
    (Printf.sprintf "warm %d < cold %d iters" s_warm.Cg.iterations s_cold.Cg.iterations)
    true
    (s_warm.Cg.iterations < s_cold.Cg.iterations)

let test_forecast_initial_residual () =
  (* the guess is the minimizer of |b - A x|^2 over the history span, so
     its initial residual must beat the cold start x0 = 0 (residual
     |b|^2) whenever the history correlates with b at all *)
  let n = 48 in
  let apply = make_spd n 79 in
  let r = rng () in
  let b1 = Field.create n in
  Field.gaussian r b1;
  let x1, _ = Cg.solve ~apply ~b:b1 ~tol:1e-10 ~max_iter:500 ~flops_per_apply:1. () in
  let f = Solver.Forecast.create () in
  Solver.Forecast.record f x1;
  let b2 = Field.copy b1 in
  let noise = Field.create n in
  Field.gaussian r noise;
  Field.axpy 0.05 noise b2;
  let guess = Option.get (Solver.Forecast.guess f ~apply ~b:b2) in
  let ag = Field.create n in
  apply guess ag;
  let d = Field.create n in
  Field.sub b2 ag d;
  let warm = Field.norm2 d and cold = Field.norm2 b2 in
  Alcotest.(check bool)
    (Printf.sprintf "warm residual %g < cold %g" warm cold)
    true (warm < cold)

let test_forecast_depth_bounded () =
  let f = Solver.Forecast.create ~depth:2 () in
  let v = Field.create 4 in
  Solver.Forecast.record f v;
  Solver.Forecast.record f v;
  Solver.Forecast.record f v;
  Alcotest.(check int) "bounded history" 2 (Solver.Forecast.size f)

let test_forecast_rejects_nonfinite () =
  (* a diverged solve's solution must not poison the history: record
     refuses NaN/inf vectors, counts them, and later guesses still
     come from the finite history alone *)
  let n = 32 in
  let apply = make_spd n 81 in
  let b = Field.create n in
  Field.gaussian (rng ()) b;
  let x, _ = Cg.solve ~apply ~b ~tol:1e-12 ~max_iter:500 ~flops_per_apply:1. () in
  let f = Solver.Forecast.create () in
  Solver.Forecast.record f x;
  let bad_nan = Field.copy x and bad_inf = Field.copy x in
  Bigarray.Array1.set bad_nan 3 Float.nan;
  Bigarray.Array1.set bad_inf 7 Float.infinity;
  Solver.Forecast.record f bad_nan;
  Solver.Forecast.record f bad_inf;
  Alcotest.(check int) "refused vectors are not kept" 1 (Solver.Forecast.size f);
  Alcotest.(check int) "and are counted" 2 (Solver.Forecast.rejected f);
  match Solver.Forecast.guess f ~apply ~b with
  | None -> Alcotest.fail "finite history must still forecast"
  | Some g ->
    let ag = Field.create n in
    apply g ag;
    let d = Field.create n in
    Field.sub b ag d;
    Alcotest.(check bool) "guess from the surviving exact history" true
      (sqrt (Field.norm2 d /. Field.norm2 b) < 1e-9)

let test_forecast_colinear_history () =
  (* two colinear solutions make the Gram system singular up to
     rounding; the guess must either be refused or stay finite — never
     a NaN propagated out of the near-singular solve *)
  let n = 32 in
  let apply = make_spd n 82 in
  let b = Field.create n in
  Field.gaussian (rng ()) b;
  let x, _ = Cg.solve ~apply ~b ~tol:1e-12 ~max_iter:500 ~flops_per_apply:1. () in
  let x2 = Field.copy x in
  Field.scale 2.0 x2;
  let f = Solver.Forecast.create () in
  Solver.Forecast.record f x;
  Solver.Forecast.record f x2;
  match Solver.Forecast.guess f ~apply ~b with
  | None -> ()  (* refusing the singular Gram system is correct *)
  | Some g ->
    let finite = ref true in
    for i = 0 to n - 1 do
      if not (Float.is_finite (Bigarray.Array1.get g i)) then finite := false
    done;
    Alcotest.(check bool) "colinear-history guess is finite" true !finite;
    let ag = Field.create n in
    apply g ag;
    let d = Field.create n in
    Field.sub b ag d;
    Alcotest.(check bool) "and no worse than the cold start" true
      (Field.norm2 d <= Field.norm2 b *. (1. +. 1e-9))

(* ---- spectral estimates ---- *)

let test_eigen_known_matrix () =
  (* diagonal operator with known spectrum *)
  let n = 16 in
  let diag = Array.init n (fun i -> 1. +. float_of_int i) in
  let apply (src : Field.t) (dst : Field.t) =
    for i = 0 to n - 1 do
      Bigarray.Array1.set dst i (diag.(i) *. Bigarray.Array1.get src i)
    done
  in
  let est = Solver.Eigen.condition_number ~rng:(rng ()) ~apply ~n () in
  Alcotest.(check bool)
    (Printf.sprintf "lambda_max %g ~ 16" est.Solver.Eigen.lambda_max)
    true
    (abs_float (est.Solver.Eigen.lambda_max -. 16.) < 0.1);
  Alcotest.(check bool)
    (Printf.sprintf "lambda_min %g ~ 1" est.Solver.Eigen.lambda_min)
    true
    (abs_float (est.Solver.Eigen.lambda_min -. 1.) < 0.05);
  Alcotest.(check bool) "condition ~ 16" true
    (abs_float (est.Solver.Eigen.condition_number -. 16.) < 1.)

let test_eigen_power_iterations () =
  (* power_max / power_min individually against a known diagonal
     spectrum, including the iteration counts being live *)
  let n = 12 in
  let diag = Array.init n (fun i -> 0.5 +. 0.25 *. float_of_int i) in
  let apply (src : Field.t) (dst : Field.t) =
    for i = 0 to n - 1 do
      Bigarray.Array1.set dst i (diag.(i) *. Bigarray.Array1.get src i)
    done
  in
  let lmax, it_max = Solver.Eigen.power_max ~apply ~n ~rng:(rng ()) () in
  let lmin, it_min = Solver.Eigen.power_min ~apply ~n ~rng:(rng ()) () in
  Alcotest.(check bool)
    (Printf.sprintf "lambda_max %g ~ %g" lmax diag.(n - 1))
    true
    (abs_float (lmax -. diag.(n - 1)) < 0.05);
  Alcotest.(check bool)
    (Printf.sprintf "lambda_min %g ~ %g" lmin diag.(0))
    true
    (abs_float (lmin -. diag.(0)) < 0.05);
  Alcotest.(check bool) "iterations recorded" true (it_max > 0 && it_min > 0)

let test_eigen_power_min_warm_start () =
  let n = 12 in
  let diag = Array.init n (fun i -> 0.5 +. 0.25 *. float_of_int i) in
  let apply (src : Field.t) (dst : Field.t) =
    for i = 0 to n - 1 do
      Bigarray.Array1.set dst i (diag.(i) *. Bigarray.Array1.get src i)
    done
  in
  let _, it_cold = Solver.Eigen.power_min ~apply ~n ~rng:(rng ()) () in
  (* warm-start from the exact lowest mode (scaled: power_min
     normalizes its copy): one step confirms the eigenvalue *)
  let x0 = Field.create n in
  Field.fill x0 0.;
  Bigarray.Array1.set x0 0 5.0;
  let lmin, it_warm = Solver.Eigen.power_min ~x0 ~apply ~n ~rng:(rng ()) () in
  Alcotest.(check bool)
    (Printf.sprintf "warm lambda_min %g ~ %g" lmin diag.(0))
    true
    (abs_float (lmin -. diag.(0)) < 1e-6);
  Alcotest.(check bool)
    (Printf.sprintf "warm %d <= cold %d inverse iterations" it_warm it_cold)
    true (it_warm <= it_cold);
  Alcotest.check_raises "length mismatch rejected"
    (Invalid_argument "Eigen.power_min: x0 length") (fun () ->
      ignore (Solver.Eigen.power_min ~x0:(Field.create 3) ~apply ~n ~rng:(rng ()) ()))

let prop_eigen_condition_random_spd =
  (* the power/inverse estimate must land within a modest factor of
     the true condition number of random SPD diagonal operators across
     a spread of condition regimes *)
  QCheck.Test.make ~name:"eigen: condition estimate brackets random SPD"
    ~count:25
    QCheck.(pair (int_range 0 1_000_000) (int_range 8 48))
    (fun (seed, n) ->
      let r = Util.Rng.create seed in
      let diag =
        Array.init n (fun _ -> 10. ** (2. *. (Util.Rng.float r -. 0.5)))
      in
      let apply (src : Field.t) (dst : Field.t) =
        for i = 0 to n - 1 do
          Bigarray.Array1.set dst i (diag.(i) *. Bigarray.Array1.get src i)
        done
      in
      let lo = Array.fold_left min diag.(0) diag in
      let hi = Array.fold_left max diag.(0) diag in
      let true_kappa = hi /. lo in
      let est =
        Solver.Eigen.condition_number ~rng:(Util.Rng.create (seed + 1)) ~apply
          ~n ()
      in
      let k = est.Solver.Eigen.condition_number in
      Float.is_finite k && k > 0.
      && k >= true_kappa /. 3.
      && k <= true_kappa *. 3.)

let test_eigen_condition_predicts_cg () =
  (* CG iterations stay below the classical bound from the condition
     number *)
  let n = 64 in
  let apply = make_spd n 91 in
  let est = Solver.Eigen.condition_number ~rng:(rng ()) ~apply ~n () in
  let b = Field.create n in
  Field.gaussian (rng ()) b;
  let _, st = Cg.solve ~apply ~b ~tol:1e-8 ~max_iter:2000 ~flops_per_apply:1. () in
  let bound =
    Solver.Eigen.cg_iteration_bound
      ~condition_number:est.Solver.Eigen.condition_number ~tol:1e-8
  in
  Alcotest.(check bool)
    (Printf.sprintf "iters %d <= bound %.0f (+ slack)" st.Cg.iterations bound)
    true
    (float_of_int st.Cg.iterations <= (2. *. bound) +. 10.)

let test_eigen_mass_dependence () =
  (* the Mobius Schur normal operator gets worse-conditioned as the
     quark mass decreases: lattice QCD's critical slowing down *)
  let geom = Geometry.create [| 2; 2; 2; 4 |] in
  let gauge = Gauge.warm geom (rng ()) ~eps:0.3 in
  let fgauge = Gauge.with_antiperiodic_time gauge in
  let kappa mass =
    let p = Dirac.Mobius.mobius ~l5:4 ~m5:1.8 ~alpha:1.5 ~mass in
    let eo = Dirac.Mobius.of_geometry_eo p geom fgauge in
    let n = Dirac.Mobius.eo_field_length eo in
    let apply src dst = Dirac.Mobius.apply_schur_normal eo ~src ~dst in
    (Solver.Eigen.condition_number ~rng:(rng ()) ~apply ~n ()).Solver.Eigen.condition_number
  in
  let k_heavy = kappa 0.4 and k_light = kappa 0.05 in
  Alcotest.(check bool)
    (Printf.sprintf "kappa(m=0.05) %g > kappa(m=0.4) %g" k_light k_heavy)
    true (k_light > k_heavy)

(* ---- Domain-wall solves ---- *)

let dwf_setup () =
  let geom = Geometry.create [| 2; 2; 2; 4 |] in
  let gauge = Gauge.warm geom (rng ()) ~eps:0.4 in
  let gauge = Gauge.with_antiperiodic_time gauge in
  let p = Dirac.Mobius.mobius ~l5:4 ~m5:1.8 ~alpha:1.5 ~mass:0.1 in
  Dwf.create p geom gauge

let point_source t =
  let rhs = Field.create (Dwf.field_length t) in
  (* delta at 5D origin, spin 0, color 0 *)
  Bigarray.Array1.set rhs 0 1.;
  rhs

let test_dwf_eo_solve_residual () =
  let t = dwf_setup () in
  let rhs = point_source t in
  let x, stats = Dwf.solve t ~tol:1e-10 ~rhs in
  Alcotest.(check bool) "converged" true stats.Cg.converged;
  let res = Dwf.residual t ~x ~rhs in
  Alcotest.(check bool) (Printf.sprintf "residual %g < 1e-8" res) true (res < 1e-8)

let test_dwf_full_solve_residual () =
  let t = dwf_setup () in
  let rhs = point_source t in
  let x, stats = Dwf.solve_full t ~tol:1e-10 ~rhs in
  Alcotest.(check bool) "converged" true stats.Cg.converged;
  let res = Dwf.residual t ~x ~rhs in
  Alcotest.(check bool) (Printf.sprintf "residual %g < 1e-8" res) true (res < 1e-8)

let test_dwf_eo_matches_full () =
  (* D is nonsingular, so both paths must find the same solution. *)
  let t = dwf_setup () in
  let rhs = point_source t in
  let x_eo, _ = Dwf.solve t ~tol:1e-12 ~rhs in
  let x_full, _ = Dwf.solve_full t ~tol:1e-12 ~rhs in
  let d = Field.create (Field.length x_eo) in
  Field.sub x_eo x_full d;
  let rel = sqrt (Field.norm2 d /. Field.norm2 x_full) in
  Alcotest.(check bool) (Printf.sprintf "eo = full (rel %g)" rel) true (rel < 1e-8)

let test_dwf_mixed_precision_solve () =
  let t = dwf_setup () in
  let rhs = point_source t in
  let x, stats =
    Dwf.solve t ~precision:(Dwf.Mixed Mixed.default_config) ~tol:1e-8 ~rhs
  in
  let res = Dwf.residual t ~x ~rhs in
  Alcotest.(check bool) (Printf.sprintf "residual %g < 1e-6" res) true (res < 1e-6);
  Alcotest.(check bool) "reliable updates happened" true
    (stats.Cg.reliable_updates >= 1)

let test_dwf_eo_iterations_beat_full () =
  (* The red-black system is better conditioned; with the same
     tolerance it should not need more iterations than the
     unpreconditioned normal equations. *)
  let t = dwf_setup () in
  let rhs = point_source t in
  let _, s_eo = Dwf.solve t ~tol:1e-10 ~rhs in
  let _, s_full = Dwf.solve_full t ~tol:1e-10 ~rhs in
  Alcotest.(check bool)
    (Printf.sprintf "eo iters %d <= full iters %d" s_eo.Cg.iterations
       s_full.Cg.iterations)
    true
    (s_eo.Cg.iterations <= s_full.Cg.iterations)

let test_dwf_linearity () =
  let t = dwf_setup () in
  let r = rng () in
  let n = Dwf.field_length t in
  let rhs1 = Field.create n and rhs2 = Field.create n in
  Field.gaussian r rhs1;
  Field.gaussian r rhs2;
  let x1, _ = Dwf.solve t ~tol:1e-12 ~rhs:rhs1 in
  let x2, _ = Dwf.solve t ~tol:1e-12 ~rhs:rhs2 in
  (* solve for rhs1 + 2 rhs2 *)
  let rhs3 = Field.copy rhs1 in
  Field.axpy 2. rhs2 rhs3;
  let x3, _ = Dwf.solve t ~tol:1e-12 ~rhs:rhs3 in
  let expect = Field.copy x1 in
  Field.axpy 2. x2 expect;
  let d = Field.create n in
  Field.sub x3 expect d;
  let rel = sqrt (Field.norm2 d /. Field.norm2 x3) in
  Alcotest.(check bool) (Printf.sprintf "linear (rel %g)" rel) true (rel < 1e-7)

let suite =
  [
    Alcotest.test_case "cg solves SPD" `Quick test_cg_solves_spd;
    Alcotest.test_case "cg zero rhs" `Quick test_cg_zero_rhs;
    Alcotest.test_case "cg warm start" `Quick test_cg_initial_guess;
    Alcotest.test_case "cg max_iter" `Quick test_cg_max_iter_respected;
    Alcotest.test_case "cg flops accounting" `Quick test_cg_flops_accounting;
    Alcotest.test_case "mixed cg converges" `Quick test_mixed_cg_converges;
    Alcotest.test_case "mixed = double" `Quick test_mixed_matches_double;
    Alcotest.test_case "bicgstab SPD" `Quick test_bicgstab_spd;
    Alcotest.test_case "bicgstab non-hermitian" `Quick test_bicgstab_nonhermitian;
    Alcotest.test_case "bicgstab = CGNE" `Quick test_bicgstab_matches_cgne;
    Alcotest.test_case "forecast exact" `Quick test_forecast_exact_history;
    Alcotest.test_case "forecast warm start" `Quick test_forecast_reduces_iterations;
    Alcotest.test_case "forecast initial residual" `Quick test_forecast_initial_residual;
    Alcotest.test_case "forecast depth" `Quick test_forecast_depth_bounded;
    Alcotest.test_case "forecast rejects non-finite" `Quick
      test_forecast_rejects_nonfinite;
    Alcotest.test_case "forecast colinear history" `Quick
      test_forecast_colinear_history;
    Alcotest.test_case "eigen known spectrum" `Quick test_eigen_known_matrix;
    Alcotest.test_case "eigen power iterations" `Quick test_eigen_power_iterations;
    Alcotest.test_case "eigen power_min warm start" `Quick
      test_eigen_power_min_warm_start;
    QCheck_alcotest.to_alcotest prop_eigen_condition_random_spd;
    Alcotest.test_case "eigen CG bound" `Quick test_eigen_condition_predicts_cg;
    Alcotest.test_case "critical slowing down" `Slow test_eigen_mass_dependence;
    Alcotest.test_case "dwf eo solve" `Quick test_dwf_eo_solve_residual;
    Alcotest.test_case "dwf full solve" `Quick test_dwf_full_solve_residual;
    Alcotest.test_case "dwf eo = full" `Quick test_dwf_eo_matches_full;
    Alcotest.test_case "dwf mixed precision" `Quick test_dwf_mixed_precision_solve;
    Alcotest.test_case "dwf eo conditioning" `Quick test_dwf_eo_iterations_beat_full;
    Alcotest.test_case "dwf linearity" `Slow test_dwf_linearity;
  ]
