(* Cross-library qcheck property tests on core invariants. *)

module Field = Linalg.Field
module H5 = Qio.H5lite

let prop_h5lite_roundtrip =
  QCheck.Test.make ~name:"h5lite save/load roundtrips arbitrary datasets"
    ~count:30
    QCheck.(
      small_list
        (pair (string_gen_of_size (Gen.int_range 1 12) Gen.printable) (small_list float)))
    (fun entries ->
      let t = H5.create () in
      let valid =
        List.filter
          (fun (path, _) ->
            String.length path > 0 && path.[0] <> '/'
            && String.for_all (fun c -> c <> '\n' && c <> '\t') path)
          entries
      in
      List.iter
        (fun (path, data) -> H5.write t ~path (H5.Float_array (Array.of_list data)))
        valid;
      let file = Filename.temp_file "prop_h5" ".nfh5" in
      H5.save t file;
      let t2 = H5.load file in
      Sys.remove file;
      List.for_all
        (fun (path, _) ->
          match (H5.read t ~path, H5.read t2 ~path) with
          | Some (H5.Float_array a), Some (H5.Float_array b) -> a = b
          | None, None -> true
          | _ -> false)
        valid)

let prop_half_codec_bounded_error =
  QCheck.Test.make ~name:"half codec error bounded by block norm / 32767" ~count:50
    QCheck.(list_of_size (Gen.return 24) (float_range (-100.) 100.))
    (fun floats ->
      let v = Field.of_array (Array.of_list floats) in
      let w = Field.Half.round_trip v ~block:24 in
      let norm = Array.fold_left (fun a x -> Float.max a (abs_float x)) 0. (Field.to_array v) in
      let tol = (norm /. Field.Half.max_q /. 2.) +. (norm *. 3e-7) +. 1e-300 in
      Field.max_abs_diff v w <= tol)

let prop_geometry_neighbors_involutive =
  QCheck.Test.make ~name:"geometry fwd/bwd are inverse for random dims" ~count:20
    QCheck.(
      quad (int_range 1 3) (int_range 1 3) (int_range 1 3) (int_range 1 4))
    (fun (a, b, c, d) ->
      let dims = [| 2 * a; 2 * b; 2 * c; 2 * d |] in
      let g = Lattice.Geometry.create dims in
      let ok = ref true in
      Lattice.Geometry.iter_sites g (fun s ->
          for mu = 0 to 3 do
            if Lattice.Geometry.bwd g (Lattice.Geometry.fwd g s mu) mu <> s then
              ok := false
          done);
      !ok)

let prop_rng_split_streams_differ =
  QCheck.Test.make ~name:"rng split streams decorrelate" ~count:20 QCheck.int
    (fun seed ->
      let a = Util.Rng.create seed in
      let b = Util.Rng.split a in
      let xs = Array.init 64 (fun _ -> Util.Rng.float a) in
      let ys = Array.init 64 (fun _ -> Util.Rng.float b) in
      xs <> ys)

let prop_stats_jackknife_of_mean_is_stderr =
  QCheck.Test.make ~name:"jackknife error of the mean equals stderr" ~count:30
    QCheck.(list_of_size (Gen.int_range 4 40) (float_range (-10.) 10.))
    (fun data ->
      let a = Array.of_list data in
      if Util.Stats.std a = 0. then true
      else begin
        let _, jk = Util.Stats.jackknife ~estimator:Util.Stats.mean a in
        abs_float (jk -. Util.Stats.standard_error a)
        <= 1e-9 *. (1. +. Util.Stats.standard_error a)
      end)

let prop_field_caxpy_linear =
  QCheck.Test.make ~name:"caxpy distributes over addition" ~count:30
    QCheck.(pair (pair (float_range (-2.) 2.) (float_range (-2.) 2.)) int)
    (fun ((ar, ai), seed) ->
      let rng = Util.Rng.create seed in
      let n = 48 in
      let x = Field.create n and y1 = Field.create n and y2 = Field.create n in
      Field.gaussian rng x;
      Field.gaussian rng y1;
      Field.blit y1 y2;
      (* apply a then b vs (a+b) in one step *)
      Field.caxpy (ar, ai) x y1;
      Field.caxpy (2. *. ar, 2. *. ai) x y1;
      Field.caxpy (3. *. ar, 3. *. ai) x y2;
      Field.max_abs_diff y1 y2 < 1e-10)

let prop_placement_capacity_respected =
  QCheck.Test.make ~name:"placement never exceeds node GPU capacity" ~count:50
    QCheck.(
      quad (int_range 1 6) (int_range 1 24) (int_range 1 12) (int_range 1 6))
    (fun (n_jobs, gpus_per_job, nodes, gpus_per_node) ->
      match Jobman.Placement.place ~n_jobs ~gpus_per_job ~nodes ~gpus_per_node with
      | None -> true
      | Some ps ->
        let total =
          List.fold_left
            (fun a p ->
              a + (p.Jobman.Placement.nodes_used * p.Jobman.Placement.gpus_per_node_used))
            0 ps
        in
        total <= nodes * gpus_per_node
        && List.for_all
             (fun p -> p.Jobman.Placement.gpus_per_node_used <= gpus_per_node)
             ps)

let prop_des_monotone_time =
  QCheck.Test.make ~name:"DES clock is monotone for random delays" ~count:30
    QCheck.(small_list (float_range 0. 100.))
    (fun delays ->
      let des = Jobman.Des.create () in
      let times = ref [] in
      List.iter
        (fun d -> Jobman.Des.schedule des ~delay:d (fun () -> times := Jobman.Des.now des :: !times))
        delays;
      Jobman.Des.run des;
      let rec mono = function
        | a :: b :: tl -> a >= b -. 1e-12 && mono (b :: tl)
        | _ -> true
      in
      mono !times)

let prop_su3_exp_unitary =
  QCheck.Test.make ~name:"exp(iQ) of random hermitian Q lands in SU(3)" ~count:30
    QCheck.int
    (fun seed ->
      let rng = Util.Rng.create seed in
      let q = Lattice.Hmc.random_momentum rng in
      let u = Lattice.Smear.exp_i_herm (Linalg.Su3.scale 0.3 q) in
      Linalg.Su3.is_special_unitary ~eps:1e-8 u)

(* Random decompositions, sources, and face-completion orders: the
   fine-grained overlapped hop (interior while in flight, per-face
   boundary sub-stencils as completions land) must be bit-for-bit equal
   to the blocking exchange + full stencil, with the per-face strict
   freshness asserts armed. *)
let prop_overlapped_hop_matches_blocking =
  QCheck.Test.make
    ~name:"fine-grained overlapped hop = blocking hop, any completion order"
    ~count:25
    QCheck.(pair (int_range 0 5) int)
    (fun (config, seed) ->
      let dims, grid =
        match config with
        | 0 -> ([| 4; 4; 2; 2 |], [| 2; 1; 1; 1 |])
        | 1 -> ([| 4; 4; 2; 2 |], [| 2; 2; 1; 1 |])
        | 2 -> ([| 2; 2; 4; 4 |], [| 1; 1; 2; 2 |])
        | 3 -> ([| 4; 4; 4; 4 |], [| 2; 2; 2; 1 |])
        | 4 -> ([| 4; 2; 2; 4 |], [| 2; 1; 1; 2 |])
        | _ -> ([| 4; 4; 4; 4 |], [| 2; 2; 2; 2 |])
      in
      let rng = Util.Rng.create seed in
      let geom = Lattice.Geometry.create dims in
      let gauge = Lattice.Gauge.random geom rng in
      let dom = Lattice.Domain.create geom grid in
      let dd = Vrank.Dd_wilson.create dom gauge in
      let src = Field.create (Lattice.Geometry.volume geom * 24) in
      Field.gaussian rng src;
      (* Fisher–Yates shuffle of the face-completion order *)
      let order = Array.copy Vrank.Dd_wilson.default_order in
      for i = 7 downto 1 do
        let j = Util.Rng.int rng (i + 1) in
        let t = order.(i) in
        order.(i) <- order.(j);
        order.(j) <- t
      done;
      let blocking = Vrank.Dd_wilson.hop_global ~overlapped:false dd src in
      Vrank.Comm.strict := true;
      let finish () = Vrank.Comm.strict := false in
      let overlapped =
        try
          Vrank.Dd_wilson.hop_global ~overlapped:true
            ~granularity:Machine.Policy.Fine ~order dd src
        with e ->
          finish ();
          raise e
      in
      finish ();
      Field.max_abs_diff blocking overlapped = 0.)

(* ---- halo-transport schedule properties ----

   A small schedule language over one Comm instance: post all faces,
   then complete them in a random order with local-site writes to
   random ranks interleaved. Replaying the same schedule (and the same
   write noise) under two transports isolates the transport as the only
   difference, so the final per-rank fields are comparable
   bit-for-bit. *)

type sched_op = S_post | S_complete of int | S_write of int

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Util.Rng.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done

(* [rounds] post/complete-all cycles; before each completion a write to
   a random rank lands with probability 1/3 — sometimes racing an
   in-flight message, sometimes (after that rank's last completion)
   not, which is exactly the boundary the detector must get right. *)
let gen_schedule ~n_ranks ~rounds seed =
  let rng = Util.Rng.create seed in
  let ops = ref [] in
  for _ = 1 to rounds do
    ops := S_post :: !ops;
    let order = Array.init 8 (fun i -> i) in
    shuffle rng order;
    Array.iter
      (fun f ->
        if Util.Rng.int rng 3 = 0 then
          ops := S_write (Util.Rng.int rng n_ranks) :: !ops;
        ops := S_complete f :: !ops)
      order
  done;
  List.rev !ops

(* Writes add strictly positive noise, so every write really changes
   every local site; the noise stream is seeded per run, so two
   transports replaying one schedule write identical values. *)
let run_schedule transport dom ~dof ~seed ops =
  let geom = Lattice.Domain.global dom in
  let comm = Vrank.Comm.create ~transport dom ~dof in
  let global = Field.create (Lattice.Geometry.volume geom * dof) in
  Field.gaussian (Util.Rng.create seed) global;
  let fields = Vrank.Comm.create_fields comm in
  Vrank.Comm.scatter comm global fields;
  let noise = Util.Rng.create (seed lxor 0x5bd1e99) in
  let handle = ref None in
  List.iter
    (function
      | S_post -> handle := Some (Vrank.Comm.post comm fields)
      | S_complete f -> (
        match !handle with
        | Some h -> Vrank.Comm.complete h ~face:f
        | None -> ())
      | S_write r ->
        let rg = Lattice.Domain.rank_geometry dom r in
        for i = 0 to (rg.Lattice.Domain.local_volume * dof) - 1 do
          fields.(r).{i} <- fields.(r).{i} +. 0.5 +. Util.Rng.float noise
        done;
        Vrank.Comm.mark_written comm r)
    ops;
  (fields, Vrank.Comm.stats comm)

let sched_domain () =
  let geom = Lattice.Geometry.create [| 4; 4; 2; 2 |] in
  Lattice.Domain.create geom [| 2; 2; 1; 1 |]

let fields_equal a b =
  Array.for_all2 (fun x y -> Field.max_abs_diff x y = 0.) a b

(* The honesty property the transport model stands on: over random
   single-exchange schedules, the zero-copy delivery differs from the
   staged delivery exactly when the epoch-based race detector fired —
   no missed corruption, no false alarm. One round only: a later
   clean re-exchange would overwrite raced ghosts and mask the
   corruption the detector correctly reported. *)
let prop_zero_copy_corruption_iff_race =
  QCheck.Test.make
    ~name:"zero-copy differs from staged exactly when the race detector fires"
    ~count:1000 QCheck.int
    (fun seed ->
      let dom = sched_domain () in
      let ops = gen_schedule ~n_ranks:4 ~rounds:1 seed in
      let st_fields, st_stats = run_schedule Vrank.Comm.Staged dom ~dof:2 ~seed ops in
      let zc_fields, zc_stats =
        run_schedule Vrank.Comm.Zero_copy dom ~dof:2 ~seed ops
      in
      let differs = not (fields_equal st_fields zc_fields) in
      st_stats.Vrank.Comm.send_buffer_races
      = zc_stats.Vrank.Comm.send_buffer_races
      && st_stats.Vrank.Comm.corruptions = 0
      && zc_stats.Vrank.Comm.corruptions = zc_stats.Vrank.Comm.send_buffer_races
      && differs = (zc_stats.Vrank.Comm.corruptions > 0))

(* Double-buffered is race-free by construction: under arbitrary
   write/post/complete interleavings (multiple rotation rounds, strict
   mode armed) it never trips the detector, never corrupts, delivers
   bit-identically to the staged copy, and pays exactly one counted
   extra copy per posted message. *)
let prop_double_buffered_race_free =
  QCheck.Test.make
    ~name:"double-buffered is race-free under random interleavings" ~count:200
    QCheck.(pair (int_range 1 3) int)
    (fun (rounds, seed) ->
      let dom = sched_domain () in
      let ops = gen_schedule ~n_ranks:4 ~rounds seed in
      let st_fields, _ = run_schedule Vrank.Comm.Staged dom ~dof:2 ~seed ops in
      Vrank.Comm.strict := true;
      let finish () = Vrank.Comm.strict := false in
      let db_fields, db_stats =
        try run_schedule Vrank.Comm.Double_buffered dom ~dof:2 ~seed ops
        with e ->
          finish ();
          raise e
      in
      finish ();
      let posts =
        List.length (List.filter (function S_post -> true | _ -> false) ops)
      in
      db_stats.Vrank.Comm.send_buffer_races = 0
      && db_stats.Vrank.Comm.corruptions = 0
      && db_stats.Vrank.Comm.extra_copies = db_stats.Vrank.Comm.messages
      && db_stats.Vrank.Comm.messages = posts * 8 * 4
      && fields_equal st_fields db_fields)

(* With nothing writing between post and complete, the transport is
   unobservable: all three produce bit-identical overlapped hops on
   random decompositions and completion orders. *)
let prop_transports_agree_without_writes =
  QCheck.Test.make
    ~name:"all transports hop bit-identically when no write races" ~count:30
    QCheck.(pair (int_range 0 5) int)
    (fun (config, seed) ->
      let dims, grid =
        match config with
        | 0 -> ([| 4; 4; 2; 2 |], [| 2; 1; 1; 1 |])
        | 1 -> ([| 4; 4; 2; 2 |], [| 2; 2; 1; 1 |])
        | 2 -> ([| 2; 2; 4; 4 |], [| 1; 1; 2; 2 |])
        | 3 -> ([| 4; 4; 4; 4 |], [| 2; 2; 2; 1 |])
        | 4 -> ([| 4; 2; 2; 4 |], [| 2; 1; 1; 2 |])
        | _ -> ([| 4; 4; 4; 4 |], [| 2; 2; 2; 2 |])
      in
      let rng = Util.Rng.create seed in
      let geom = Lattice.Geometry.create dims in
      let gauge = Lattice.Gauge.random geom rng in
      let dom = Lattice.Domain.create geom grid in
      let src = Field.create (Lattice.Geometry.volume geom * 24) in
      Field.gaussian rng src;
      let order = Array.copy Vrank.Dd_wilson.default_order in
      shuffle rng order;
      let blocking =
        Vrank.Dd_wilson.hop_global ~overlapped:false
          (Vrank.Dd_wilson.create dom gauge)
          src
      in
      List.for_all
        (fun transport ->
          let dd = Vrank.Dd_wilson.create ~transport dom gauge in
          Vrank.Comm.strict := true;
          let finish () = Vrank.Comm.strict := false in
          let hop =
            try
              Vrank.Dd_wilson.hop_global ~overlapped:true
                ~granularity:Machine.Policy.Fine ~order dd src
            with e ->
              finish ();
              raise e
          in
          finish ();
          Field.max_abs_diff blocking hop = 0.)
        Machine.Transport.all)

let prop_crc_sensitive =
  QCheck.Test.make ~name:"crc32 differs for single-char changes" ~count:50
    QCheck.(pair (string_gen_of_size (Gen.int_range 1 64) Gen.printable) (int_range 0 255))
    (fun (s, byte) ->
      if String.length s = 0 then true
      else begin
        let b = Bytes.of_string s in
        let old = Bytes.get b 0 in
        Bytes.set b 0 (Char.chr ((Char.code old + 1 + (byte mod 255)) mod 256));
        let s' = Bytes.to_string b in
        s = s' || H5.crc32 s <> H5.crc32 s'
      end)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_h5lite_roundtrip;
      prop_half_codec_bounded_error;
      prop_geometry_neighbors_involutive;
      prop_rng_split_streams_differ;
      prop_stats_jackknife_of_mean_is_stderr;
      prop_field_caxpy_linear;
      prop_placement_capacity_respected;
      prop_des_monotone_time;
      prop_su3_exp_unitary;
      prop_overlapped_hop_matches_blocking;
      prop_zero_copy_corruption_iff_race;
      prop_double_buffered_race_free;
      prop_transports_agree_without_writes;
      prop_crc_sensitive;
    ]
