(* Multicore kernel engine tests: pool protocol correctness (chunking,
   nesting, failure propagation), and the central contract — every
   pooled kernel and the pooled Wilson/Mobius hop are bit-identical to
   the serial path for random geometries, with bit-stable reductions.
   Pools come from Pool.shared so the whole file spawns each width
   once. *)

module Pool = Util.Pool
module Field = Linalg.Field

let exact = Alcotest.(check (float 0.))

(* ---- protocol ---- *)

let test_chunks_tile () =
  List.iter
    (fun (n, chunk) ->
      let parts = Pool.chunks ~n ~chunk in
      let covered = ref 0 in
      Array.iteri
        (fun i (lo, hi) ->
          Alcotest.(check int) "contiguous" !covered lo;
          Alcotest.(check bool) "nonempty" true (hi > lo);
          Alcotest.(check bool) "in bounds" true (hi <= n);
          if i < Array.length parts - 1 then
            Alcotest.(check int) "full chunk" chunk (hi - lo);
          covered := hi)
        parts;
      Alcotest.(check int) "covers n" n !covered)
    [ (10, 3); (1, 1); (1024, 1024); (1025, 1024); (7, 100) ];
  Alcotest.(check int) "n=0 empty" 0 (Array.length (Pool.chunks ~n:0 ~chunk:4))

let test_parallel_for_runs_all () =
  List.iter
    (fun domains ->
      let pool = Pool.shared ~domains in
      let hits = Array.make 1000 0 in
      Pool.parallel_for pool ~chunk:17 ~n:1000 (fun lo hi ->
          for i = lo to hi - 1 do
            hits.(i) <- hits.(i) + 1
          done);
      Alcotest.(check bool)
        (Printf.sprintf "every index once (d=%d)" domains)
        true
        (Array.for_all (fun h -> h = 1) hits))
    [ 1; 2; 3; 4 ]

let test_nested_parallel_for () =
  (* a pooled body launching on the same pool must degrade to inline
     serial, not deadlock *)
  let pool = Pool.shared ~domains:4 in
  let hits = Array.make 64 0 in
  Pool.parallel_for pool ~chunk:8 ~n:8 (fun lo hi ->
      for outer = lo to hi - 1 do
        Pool.parallel_for pool ~chunk:2 ~n:8 (fun l h ->
            for inner = l to h - 1 do
              let i = (outer * 8) + inner in
              hits.(i) <- hits.(i) + 1
            done)
      done);
  Alcotest.(check bool) "all nested indices once" true
    (Array.for_all (fun h -> h = 1) hits)

let test_exception_propagates () =
  let pool = Pool.shared ~domains:2 in
  let raised =
    try
      Pool.parallel_for pool ~chunk:4 ~n:64 (fun lo _ ->
          if lo >= 32 then failwith "chunk blew up");
      false
    with Failure _ -> true
  in
  Alcotest.(check bool) "chunk exception re-raised on caller" true raised;
  (* and the pool still works afterwards *)
  let sum = ref 0 in
  Pool.parallel_for pool ~chunk:16 ~n:64 (fun lo hi ->
      for _ = lo to hi - 1 do
        incr sum
      done);
  ignore !sum

let test_parallel_reduce_ordered_deterministic () =
  (* the ordered combine is a pure function of (n, chunk) — identical
     across pool widths, and equal to the serial fold for the same
     blocking *)
  let n = 100_000 in
  let f lo hi =
    let acc = ref 0. in
    for i = lo to hi - 1 do
      acc := !acc +. (1. /. float_of_int (i + 1))
    done;
    !acc
  in
  let reference =
    Pool.parallel_reduce (Pool.shared ~domains:1) ~chunk:4096 ~n ~init:0. ~f
      ~combine:( +. ) ()
  in
  List.iter
    (fun domains ->
      let r =
        Pool.parallel_reduce (Pool.shared ~domains) ~chunk:4096 ~n ~init:0. ~f
          ~combine:( +. ) ()
      in
      exact (Printf.sprintf "d=%d bit-identical" domains) reference r)
    [ 2; 3; 4 ]

let test_parse_domains () =
  let ok = Alcotest.(check (result int string)) in
  ok "plain" (Ok 4) (Pool.parse_domains "4");
  ok "trimmed" (Ok 2) (Pool.parse_domains " 2 ");
  ok "capped" (Ok Pool.max_domains) (Pool.parse_domains "100000");
  (* rejections must explain themselves: the error names the variable
     and echoes the offending value, so a botched NEUTRON_DOMAINS in a
     job script is a one-line diagnosis *)
  let rejected label input fragment =
    match Pool.parse_domains input with
    | Ok d -> Alcotest.failf "%s: %S accepted as %d" label input d
    | Error msg ->
      let has needle =
        let nl = String.length needle and ml = String.length msg in
        let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
        go 0
      in
      if not (has "NEUTRON_DOMAINS" && has fragment) then
        Alcotest.failf "%s: error %S does not mention %S" label msg fragment
  in
  rejected "zero rejected" "0" "0";
  rejected "negative rejected" "-3" "-3";
  rejected "junk rejected" "fast" "fast";
  rejected "empty rejected" "" ""

(* ---- kernel equivalence: qcheck over random geometries ---- *)

(* random pool geometry: 1-8 domains, random chunk *)
let geometry_gen =
  QCheck.(pair (int_range 1 8) (int_range 1 5000))

let mk_vec seed n =
  let v = Field.create n in
  Field.gaussian (Util.Rng.create seed) v;
  v

let bytes_equal a b = Field.to_array a = Field.to_array b

let prop_elementwise_bit_identical =
  QCheck.Test.make ~name:"pooled axpy/xpay/scale/sub/caxpy bit-identical to serial"
    ~count:40
    QCheck.(pair geometry_gen (int_range 1 3000))
    (fun ((domains, chunk), half) ->
      let n = 2 * half in
      let pool = Pool.shared ~domains in
      let x = mk_vec 1 n in
      let y0 = mk_vec 2 n in
      let run_serial f = f (Pool.shared ~domains:1) in
      let run_pooled f = f pool in
      List.for_all
        (fun kern ->
          let ys = Field.copy y0 and yp = Field.copy y0 in
          run_serial (fun p -> kern p ~chunk:n x ys);
          run_pooled (fun p -> kern p ~chunk x yp);
          bytes_equal ys yp)
        [
          (fun p ~chunk x y -> Field.axpy_with p ~chunk 0.7 x y);
          (fun p ~chunk x y -> Field.xpay_with p ~chunk x (-0.3) y);
          (fun p ~chunk _ y -> Field.scale_with p ~chunk 1.1 y);
          (fun p ~chunk x y -> Field.sub_with p ~chunk x y y);
          (fun p ~chunk x y -> Field.caxpy_with p ~chunk (0.4, -0.9) x y);
        ])

let prop_reductions_bit_stable =
  QCheck.Test.make
    ~name:"pooled norm2/dot_re/cdot bit-identical to serial and run-to-run"
    ~count:40
    QCheck.(pair geometry_gen (int_range 1 4000))
    (fun ((domains, chunk), half) ->
      let n = 2 * half in
      let pool = Pool.shared ~domains in
      let serial = Pool.shared ~domains:1 in
      let x = mk_vec 3 n and y = mk_vec 4 n in
      let n2_s = Field.norm2_with serial x in
      let n2_p = Field.norm2_with pool ~chunk x in
      let n2_p2 = Field.norm2_with pool ~chunk x in
      let dr_s = Field.dot_re_with serial x y in
      let dr_p = Field.dot_re_with pool ~chunk x y in
      let cd_s = Field.cdot_with serial x y in
      let cd_p = Field.cdot_with pool ~chunk x y in
      let cd_p2 = Field.cdot_with pool ~chunk x y in
      n2_s = n2_p && n2_p = n2_p2 && dr_s = dr_p && cd_s = cd_p && cd_p = cd_p2)

let prop_reductions_geometry_independent =
  (* the canonical blocked combine: the same value for EVERY geometry,
     including the implicit serial path *)
  QCheck.Test.make ~name:"norm2 identical across all pool geometries" ~count:30
    QCheck.(pair geometry_gen (int_range 1 4000))
    (fun ((domains, chunk), half) ->
      let n = 2 * half in
      let x = mk_vec 5 n in
      Field.norm2 x = Field.norm2_with (Pool.shared ~domains) ~chunk x)

let prop_wilson_hop_bit_identical =
  QCheck.Test.make ~name:"pooled Wilson hop bit-identical to serial" ~count:10
    geometry_gen
    (fun (domains, chunk) ->
      let geom = Lattice.Geometry.create [| 4; 4; 2; 4 |] in
      let gauge = Lattice.Gauge.warm geom (Util.Rng.create 6) ~eps:0.3 in
      let w = Dirac.Wilson.of_geometry geom gauge in
      let n = Lattice.Geometry.volume geom * Dirac.Wilson.floats_per_site in
      let src = mk_vec 7 n in
      let ds = Field.create n and dp = Field.create n in
      Dirac.Wilson.hop_sites w ~src ~dst:ds ();
      Dirac.Wilson.hop_with (Pool.shared ~domains)
        ~chunk:(1 + (chunk mod Lattice.Geometry.volume geom))
        w ~src ~dst:dp;
      bytes_equal ds dp)

let prop_mobius_hop_bit_identical =
  (* the 5d operator dispatches on the default pool: route it through
     every width and compare against the serial default *)
  QCheck.Test.make ~name:"pooled Mobius apply bit-identical to serial" ~count:6
    QCheck.(int_range 1 8)
    (fun domains ->
      let geom = Lattice.Geometry.create [| 4; 4; 2; 2 |] in
      let gauge = Lattice.Gauge.warm geom (Util.Rng.create 8) ~eps:0.3 in
      let p = Dirac.Mobius.mobius ~l5:8 ~m5:1.2 ~alpha:1.5 ~mass:0.05 in
      let op = Dirac.Mobius.of_geometry p geom gauge in
      let n = Dirac.Mobius.field_length op in
      let src = mk_vec 9 n in
      let ds = Field.create n and dp = Field.create n in
      let saved = Pool.get_default () in
      Fun.protect
        ~finally:(fun () -> Pool.set_default saved)
        (fun () ->
          Pool.set_default (Pool.shared ~domains:1);
          Dirac.Mobius.apply op ~src ~dst:ds;
          Pool.set_default (Pool.shared ~domains);
          Dirac.Mobius.apply op ~src ~dst:dp);
      bytes_equal ds dp)

let test_smear_contract_pooled_identical () =
  (* Smear.step and Contract.pion also dispatch on the default pool *)
  let geom = Lattice.Geometry.create [| 4; 4; 4; 4 |] in
  let gauge = Lattice.Gauge.warm geom (Util.Rng.create 15) ~eps:0.3 in
  let saved = Pool.get_default () in
  Fun.protect
    ~finally:(fun () -> Pool.set_default saved)
    (fun () ->
      Pool.set_default (Pool.shared ~domains:1);
      let s_serial = Lattice.Smear.step ~rho:0.08 gauge in
      Pool.set_default (Pool.shared ~domains:4);
      let s_pooled = Lattice.Smear.step ~rho:0.08 gauge in
      exact "smeared links bit-identical" 0.
        (Field.max_abs_diff
           (Lattice.Gauge.data s_serial)
           (Lattice.Gauge.data s_pooled)))

let test_sanitize_on_pooled_path () =
  (* the NaN trap must keep firing when the kernel runs pooled *)
  let n = 4096 in
  let x = mk_vec 16 n in
  let y = mk_vec 17 n in
  Bigarray.Array1.set x 1234 Float.nan;
  let trapped =
    try
      Field.Sanitize.scoped (fun () ->
          Field.axpy_with (Pool.shared ~domains:4) ~chunk:256 2.0 x y);
      false
    with Field.Sanitize.Non_finite ("Field.axpy", _, _) -> true
  in
  Alcotest.(check bool) "Non_finite raised on pooled axpy" true trapped

let suite =
  [
    Alcotest.test_case "chunks tile [0,n)" `Quick test_chunks_tile;
    Alcotest.test_case "parallel_for covers" `Quick test_parallel_for_runs_all;
    Alcotest.test_case "nested launch inlines" `Quick test_nested_parallel_for;
    Alcotest.test_case "exceptions propagate" `Quick test_exception_propagates;
    Alcotest.test_case "ordered reduce deterministic" `Quick
      test_parallel_reduce_ordered_deterministic;
    Alcotest.test_case "NEUTRON_DOMAINS parser" `Quick test_parse_domains;
    QCheck_alcotest.to_alcotest prop_elementwise_bit_identical;
    QCheck_alcotest.to_alcotest prop_reductions_bit_stable;
    QCheck_alcotest.to_alcotest prop_reductions_geometry_independent;
    QCheck_alcotest.to_alcotest prop_wilson_hop_bit_identical;
    QCheck_alcotest.to_alcotest prop_mobius_hop_bit_identical;
    Alcotest.test_case "smear pooled identical" `Quick
      test_smear_contract_pooled_identical;
    Alcotest.test_case "sanitize on pooled path" `Quick
      test_sanitize_on_pooled_path;
    (* last on purpose: leaving idle worker domains alive would tax
       every stop-the-world GC in the suites that run after this one *)
    Alcotest.test_case "shutdown shared registry" `Quick (fun () ->
        Pool.shutdown_shared ();
        let sum = ref 0. in
        Pool.parallel_for (Pool.shared ~domains:2) ~chunk:8 ~n:32 (fun lo hi ->
            for i = lo to hi - 1 do
              sum := !sum +. float_of_int i
            done);
        ignore !sum;
        Pool.shutdown_shared ());
  ]
