(* Tests for Util: rng, stats, fit. *)

open Util

let check_float = Alcotest.(check (float 1e-9))

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let c = Rng.split a in
  (* child and parent should not produce the same next values *)
  let xa = Rng.next_int64 a and xc = Rng.next_int64 c in
  Alcotest.(check bool) "different streams" true (xa <> xc)

let test_rng_uniformity () =
  let rng = Rng.create 123 in
  let n = 100_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Rng.float rng
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (abs_float (mean -. 0.5) < 0.01)

let test_rng_gaussian_moments () =
  let rng = Rng.create 99 in
  let n = 100_000 in
  let xs = Array.init n (fun _ -> Rng.gaussian rng) in
  let m = Stats.mean xs and v = Stats.variance xs in
  Alcotest.(check bool) "mean ~ 0" true (abs_float m < 0.02);
  Alcotest.(check bool) "var ~ 1" true (abs_float (v -. 1.) < 0.03)

let test_rng_int_bounds () =
  let rng = Rng.create 5 in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 7 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 7)
  done

let test_rng_int_uniform () =
  let rng = Rng.create 17 in
  let counts = Array.make 5 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let x = Rng.int rng 5 in
    counts.(x) <- counts.(x) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int n in
      Alcotest.(check bool) "each bin ~ 1/5" true (abs_float (frac -. 0.2) < 0.01))
    counts

let test_rng_exponential () =
  let rng = Rng.create 31 in
  let xs = Array.init 50_000 (fun _ -> Rng.exponential rng ~mean:3.) in
  Alcotest.(check bool) "mean ~ 3" true (abs_float (Stats.mean xs -. 3.) < 0.1);
  Array.iter (fun x -> assert (x >= 0.)) xs

let test_stats_mean_var () =
  let a = [| 1.; 2.; 3.; 4.; 5. |] in
  check_float "mean" 3. (Stats.mean a);
  check_float "variance" 2.5 (Stats.variance a);
  check_float "population variance" 2. (Stats.variance ~ddof:0 a)

let test_stats_covariance () =
  let a = [| 1.; 2.; 3.; 4. |] in
  let b = [| 2.; 4.; 6.; 8. |] in
  check_float "cov(a, 2a)" (2. *. Stats.variance a) (Stats.covariance a b);
  check_float "corr = 1" 1. (Stats.correlation a b);
  (* zero-variance input: the coefficient is undefined; it must raise,
     not silently return NaN *)
  let flat = [| 3.; 3.; 3.; 3. |] in
  Alcotest.check_raises "corr of constant raises"
    (Invalid_argument "Stats.correlation: zero variance (undefined, would be NaN)")
    (fun () -> ignore (Stats.correlation flat b));
  Alcotest.check_raises "corr against constant raises"
    (Invalid_argument "Stats.correlation: zero variance (undefined, would be NaN)")
    (fun () -> ignore (Stats.correlation a flat))

let test_stats_percentile () =
  let a = [| 5.; 1.; 3.; 2.; 4. |] in
  check_float "median" 3. (Stats.median a);
  check_float "p0" 1. (Stats.percentile a 0.);
  check_float "p100" 5. (Stats.percentile a 100.);
  check_float "p25" 2. (Stats.percentile a 25.)

let test_jackknife_mean () =
  let a = [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let est, err = Stats.jackknife ~estimator:Stats.mean a in
  check_float "jk estimate = mean" (Stats.mean a) est;
  (* jackknife error of the mean equals the standard error *)
  Alcotest.(check (float 1e-9)) "jk error = stderr" (Stats.standard_error a) err

let test_bootstrap_mean () =
  let rng = Rng.create 11 in
  let data = Array.init 200 (fun _ -> Rng.gaussian_sigma rng ~mu:10. ~sigma:2.) in
  let est, err, _ = Stats.bootstrap ~rng ~n_boot:500 ~estimator:Stats.mean data in
  Alcotest.(check bool) "estimate near 10" true (abs_float (est -. 10.) < 0.5);
  let expected_err = 2. /. sqrt 200. in
  Alcotest.(check bool)
    "error near sigma/sqrt(n)" true
    (abs_float (err -. expected_err) < 0.05)

let test_autocorrelation_uncorrelated () =
  let rng = Rng.create 13 in
  let data = Array.init 5000 (fun _ -> Rng.gaussian rng) in
  let tau = Stats.autocorrelation_time data in
  Alcotest.(check bool) "tau ~ 0.5 for iid" true (abs_float (tau -. 0.5) < 0.3)

let test_autocorrelation_correlated () =
  (* AR(1) with phi = 0.8: tau_int = 0.5*(1+phi)/(1-phi) = 4.5 *)
  let rng = Rng.create 14 in
  let n = 40_000 in
  let data = Array.make n 0. in
  for i = 1 to n - 1 do
    data.(i) <- (0.8 *. data.(i - 1)) +. Rng.gaussian rng
  done;
  let tau = Stats.autocorrelation_time data in
  Alcotest.(check bool)
    (Printf.sprintf "tau ~ 4.5 for AR(0.8), got %g" tau)
    true
    (tau > 3. && tau < 6.5)

let test_histogram () =
  let h = Stats.histogram ~bins:4 [| 0.; 1.; 2.; 3.; 4. |] in
  Alcotest.(check int) "total" 5 h.Stats.n_total;
  Alcotest.(check int) "bins" 4 (Array.length h.Stats.counts);
  Alcotest.(check int) "sum of counts" 5 (Array.fold_left ( + ) 0 h.Stats.counts)

let test_weighted_mean () =
  let m, s = Stats.weighted_mean [| (1., 1.); (3., 1.) |] in
  check_float "equal weights -> mean" 2. m;
  check_float "error 1/sqrt(2)" (1. /. sqrt 2.) s;
  let m2, _ = Stats.weighted_mean [| (1., 0.001); (100., 10.) |] in
  Alcotest.(check bool) "dominated by precise point" true (abs_float (m2 -. 1.) < 0.01)

let test_solve_linear_system () =
  (* 2x + y = 5 ; x + 3y = 10 -> x = 1, y = 3 *)
  let x = Fit.solve_linear_system [| 2.; 1.; 1.; 3. |] [| 5.; 10. |] in
  check_float "x" 1. x.(0);
  check_float "y" 3. x.(1)

let test_invert_matrix () =
  let a = [| 4.; 1.; 1.; 3. |] in
  let inv = Fit.invert_matrix a 2 in
  (* A * A^-1 = I *)
  let prod i j =
    (a.((i * 2) + 0) *. inv.(j)) +. (a.((i * 2) + 1) *. inv.(2 + j))
  in
  check_float "00" 1. (prod 0 0);
  check_float "01" 0. (prod 0 1);
  check_float "10" 0. (prod 1 0);
  check_float "11" 1. (prod 1 1)

let test_singular_raises () =
  Alcotest.check_raises "singular" Fit.Singular (fun () ->
      ignore (Fit.solve_linear_system [| 1.; 2.; 2.; 4. |] [| 1.; 2. |]))

let test_linear_lsq_exact () =
  (* y = 2 + 3x fit through exact points *)
  let xs = [| 0.; 1.; 2.; 3. |] in
  let ys = Array.map (fun x -> 2. +. (3. *. x)) xs in
  let sigmas = Array.make 4 1. in
  let r = Fit.linear_lsq ~basis:[| (fun _ -> 1.); (fun x -> x) |] ~xs ~ys ~sigmas in
  check_float "intercept" 2. r.Fit.params.(0);
  check_float "slope" 3. r.Fit.params.(1);
  Alcotest.(check bool) "chi2 ~ 0" true (r.Fit.chi2 < 1e-18)

let test_lm_exponential () =
  (* Recover A e^{-E x} from noiseless data. *)
  let model p x = p.(0) *. exp (-.p.(1) *. x) in
  let xs = Array.init 12 float_of_int in
  let ys = Array.map (fun x -> 3.5 *. exp (-0.4 *. x)) xs in
  let sigmas = Array.map (fun y -> Float.max (0.01 *. y) 1e-6) ys in
  let r = Fit.levenberg_marquardt ~model ~xs ~ys ~sigmas [| 1.; 1. |] in
  Alcotest.(check bool) "converged" true r.Fit.converged;
  Alcotest.(check (float 1e-4)) "amplitude" 3.5 r.Fit.params.(0);
  Alcotest.(check (float 1e-5)) "energy" 0.4 r.Fit.params.(1)

let test_lm_noisy_two_state () =
  (* Two-exponential fit, the shape used for correlators. *)
  let rng = Rng.create 2024 in
  let model p x = (p.(0) *. exp (-.p.(1) *. x)) +. (p.(2) *. exp (-.p.(3) *. x)) in
  let truth = [| 1.0; 0.3; 0.5; 0.9 |] in
  let xs = Array.init 16 float_of_int in
  let sigmas = Array.map (fun x -> 0.002 *. exp (-0.3 *. x)) xs in
  let ys =
    Array.mapi (fun i x -> model truth x +. (sigmas.(i) *. Rng.gaussian rng)) xs
  in
  let r = Fit.levenberg_marquardt ~model ~xs ~ys ~sigmas [| 0.8; 0.25; 0.3; 1.2 |] in
  Alcotest.(check bool) "converged" true r.Fit.converged;
  Alcotest.(check bool)
    (Printf.sprintf "ground-state energy recovered (%g)" r.Fit.params.(1))
    true
    (abs_float (r.Fit.params.(1) -. 0.3) < 0.02);
  Alcotest.(check bool) "chi2/dof reasonable" true (r.Fit.chi2 /. float_of_int r.Fit.dof < 3.)

let test_constant_fit () =
  let ys = [| 2.1; 1.9; 2.0; 2.05; 1.95 |] in
  let sigmas = Array.make 5 0.1 in
  let r = Fit.constant_fit ~ys ~sigmas in
  Alcotest.(check (float 1e-9)) "plateau = mean" (Stats.mean ys) r.Fit.params.(0)

let test_si_format () =
  Alcotest.(check string) "tera" "1.500 TFlop/s" (Ascii.flops 1.5e12);
  Alcotest.(check string) "peta" "20.000 P" (Ascii.si_float 2e16);
  Alcotest.(check string) "unit" "3.000" (Ascii.si_float 3.)

let test_table_render () =
  let s = Ascii.render_table ~header:[ "a"; "b" ] [ [ "1"; "22" ]; [ "333"; "4" ] ] in
  Alcotest.(check bool) "contains cells" true
    (String.length s > 0
    && String.split_on_char '\n' s |> List.exists (fun l -> String.length l > 0));
  (* all rows same width *)
  let widths =
    String.split_on_char '\n' s
    |> List.filter (fun l -> String.length l > 0)
    |> List.map String.length
  in
  Alcotest.(check bool) "rectangular" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "rng uniform mean" `Quick test_rng_uniformity;
    Alcotest.test_case "rng gaussian moments" `Quick test_rng_gaussian_moments;
    Alcotest.test_case "rng int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng int uniform" `Quick test_rng_int_uniform;
    Alcotest.test_case "rng exponential" `Quick test_rng_exponential;
    Alcotest.test_case "stats mean/var" `Quick test_stats_mean_var;
    Alcotest.test_case "stats covariance" `Quick test_stats_covariance;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "jackknife of mean" `Quick test_jackknife_mean;
    Alcotest.test_case "bootstrap of mean" `Quick test_bootstrap_mean;
    Alcotest.test_case "autocorrelation iid" `Quick test_autocorrelation_uncorrelated;
    Alcotest.test_case "autocorrelation AR(1)" `Quick test_autocorrelation_correlated;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "weighted mean" `Quick test_weighted_mean;
    Alcotest.test_case "linear solve" `Quick test_solve_linear_system;
    Alcotest.test_case "matrix inverse" `Quick test_invert_matrix;
    Alcotest.test_case "singular detection" `Quick test_singular_raises;
    Alcotest.test_case "linear lsq exact" `Quick test_linear_lsq_exact;
    Alcotest.test_case "LM exponential" `Quick test_lm_exponential;
    Alcotest.test_case "LM two-state noisy" `Quick test_lm_noisy_two_state;
    Alcotest.test_case "constant fit" `Quick test_constant_fit;
    Alcotest.test_case "SI formatting" `Quick test_si_format;
    Alcotest.test_case "table rendering" `Quick test_table_render;
  ]
