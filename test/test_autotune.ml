(* Tests for Autotune: caching semantics, persistence, variant
   equivalence, and communication-policy tuning. *)

module Tuner = Autotune.Tuner
module Variants = Autotune.Variants
module Comm_tune = Autotune.Comm_tune
module Field = Linalg.Field

let test_tuner_caches () =
  let t = Tuner.create ~repeats:1 () in
  let calls = ref 0 in
  let candidates =
    [
      Tuner.candidate "a" (fun () -> incr calls);
      Tuner.candidate "b" (fun () -> incr calls);
    ]
  in
  let w1 = Tuner.tune t ~kernel:"k" ~signature:"v1" candidates in
  let calls_after_first = !calls in
  let w2 = Tuner.tune t ~kernel:"k" ~signature:"v1" candidates in
  Alcotest.(check string) "same winner" w1 w2;
  Alcotest.(check int) "no re-measurement" calls_after_first !calls;
  Alcotest.(check int) "one search" 1 (Tuner.tune_count t);
  Alcotest.(check int) "one hit" 1 (Tuner.hit_count t)

let test_tuner_distinguishes_signatures () =
  let t = Tuner.create ~repeats:1 () in
  let candidates = [ Tuner.candidate "only" (fun () -> ()) ] in
  ignore (Tuner.tune t ~kernel:"k" ~signature:"v1" candidates);
  ignore (Tuner.tune t ~kernel:"k" ~signature:"v2" candidates);
  Alcotest.(check int) "two searches" 2 (Tuner.tune_count t)

let test_tuner_picks_faster () =
  let t = Tuner.create ~repeats:3 () in
  let slow () =
    let acc = ref 0. in
    for i = 1 to 2_000_000 do
      acc := !acc +. float_of_int i
    done;
    ignore !acc
  in
  let fast () = () in
  let w =
    Tuner.tune t ~kernel:"speed" ~signature:"x"
      [ Tuner.candidate "slow" slow; Tuner.candidate "fast" fast ]
  in
  Alcotest.(check string) "fast wins" "fast" w

let test_tuner_backup_restore () =
  let t = Tuner.create ~repeats:2 () in
  let data = ref 0 in
  let snapshots = ref 0 in
  let backup () = incr snapshots in
  let restore () = data := 0 in
  ignore
    (Tuner.tune t ~backup ~restore ~kernel:"destructive" ~signature:"s"
       [ Tuner.candidate "only" (fun () -> data := !data + 1) ]);
  Alcotest.(check int) "data restored" 0 !data;
  Alcotest.(check int) "backup per trial" 2 !snapshots

let test_tuner_save_load () =
  let t = Tuner.create ~repeats:1 () in
  ignore
    (Tuner.tune t ~kernel:"k1" ~signature:"s1"
       [ Tuner.candidate "w" (fun () -> ()) ]);
  let path = Filename.temp_file "tunecache" ".tsv" in
  Tuner.save t path;
  let t2 = Tuner.create () in
  Tuner.load t2 path;
  Sys.remove path;
  (match Tuner.lookup t2 ~kernel:"k1" ~signature:"s1" with
  | Some e -> Alcotest.(check string) "winner persisted" "w" e.Tuner.winner
  | None -> Alcotest.fail "entry lost");
  (* a lookup over candidates that still contain the persisted winner
     hits the cache, no re-search *)
  ignore
    (Tuner.tune t2 ~kernel:"k1" ~signature:"s1"
       [ Tuner.candidate "w" (fun () -> ()) ]);
  Alcotest.(check int) "no search after load" 0 (Tuner.tune_count t2);
  (* but a persisted winner absent from the live candidates — a stale
     tunecache from before a variant-space change — is refused: the
     search re-runs instead of serving a label nothing can execute *)
  let w' =
    Tuner.tune t2 ~kernel:"k1" ~signature:"s1"
      [ Tuner.candidate "other" (fun () -> ()) ]
  in
  Alcotest.(check string) "stale winner re-tuned" "other" w';
  Alcotest.(check int) "stale entry forced a search" 1 (Tuner.tune_count t2)

let test_axpy_variants_agree () =
  let rng = Util.Rng.create 5 in
  let n = 1000 in
  let x = Field.create n in
  Field.gaussian rng x;
  let reference = Field.create n in
  Field.gaussian rng reference;
  List.iter
    (fun (label, f) ->
      let y1 = Field.copy reference in
      let y2 = Field.copy reference in
      Field.axpy 0.7 x y1;
      f 0.7 x y2;
      Alcotest.(check (float 0.)) (label ^ " equals Field.axpy") 0.
        (Field.max_abs_diff y1 y2))
    Variants.axpy_variants

let test_site_orders_are_permutations () =
  let n = 100 in
  List.iter
    (fun (label, order) ->
      let seen = Array.make n false in
      Array.iter (fun s -> seen.(s) <- true) order;
      Alcotest.(check int) (label ^ " length") n (Array.length order);
      Alcotest.(check bool) (label ^ " covers all sites") true
        (Array.for_all Fun.id seen))
    (Variants.hop_orders n)

let test_hop_orders_same_result () =
  let geom = Lattice.Geometry.create [| 4; 4; 2; 2 |] in
  let gauge = Lattice.Gauge.random geom (Util.Rng.create 9) in
  let w = Dirac.Wilson.of_geometry geom gauge in
  let n = Lattice.Geometry.volume geom * 24 in
  let src = Field.create n in
  Field.gaussian (Util.Rng.create 10) src;
  let reference = Field.create n in
  Dirac.Wilson.hop w ~src ~dst:reference;
  List.iter
    (fun (label, sites) ->
      let dst = Field.create n in
      Dirac.Wilson.hop_sites w ~sites ~src ~dst ();
      Alcotest.(check (float 0.)) (label ^ " matches") 0.
        (Field.max_abs_diff reference dst))
    (Variants.hop_orders (Lattice.Geometry.volume geom))

let test_tune_hop_returns_valid_order () =
  let tuner = Tuner.create ~repeats:1 () in
  let geom = Lattice.Geometry.create [| 4; 4; 2; 2 |] in
  let gauge = Lattice.Gauge.unit geom in
  let w = Dirac.Wilson.of_geometry geom gauge in
  let vol = Lattice.Geometry.volume geom in
  let n = vol * 24 in
  let src = Field.create n and dst = Field.create n in
  let label, plan = Variants.tune_hop tuner w ~src ~dst ~signature:"4422" in
  match plan with
  | Variants.Serial_order sites ->
    Alcotest.(check bool) "label known" true
      (List.mem_assoc label (Variants.hop_orders vol));
    Alcotest.(check int) "sites cover volume" vol (Array.length sites)
  | Variants.Pooled { domains; chunk } ->
    Alcotest.(check bool) "pooled label" true
      (label = Variants.geom_label "pool" (domains, chunk));
    Alcotest.(check bool) "sane geometry" true (domains >= 2 && chunk >= 1)

let test_pool_geometries_shape () =
  let geoms = Variants.pool_geometries ~max_domains:8 ~n:(1 lsl 20) () in
  Alcotest.(check bool) "non-empty with 8 lanes" true (geoms <> []);
  List.iter
    (fun (d, c) ->
      Alcotest.(check bool) "domains in [2, cap]" true (d >= 2 && d <= 8);
      Alcotest.(check bool) "power of two" true (d land (d - 1) = 0);
      Alcotest.(check bool) "chunk above floor" true (c >= 1024))
    geoms;
  let floored = Variants.pool_geometries ~max_domains:4 ~chunk_floor:64 ~n:512 () in
  List.iter
    (fun (_, c) -> Alcotest.(check bool) "custom floor" true (c >= 64))
    floored;
  Alcotest.(check (list (pair int int))) "empty on single-core cap" []
    (Variants.pool_geometries ~max_domains:1 ~n:(1 lsl 20) ())

let test_tune_axpy_key_isolation () =
  (* the cache-key audit: winners must never be served across vector
     lengths or machine widths, because the pooled geometry that wins
     at one shape loses at another *)
  let tuner = Tuner.create ~repeats:1 () in
  ignore (Variants.tune_axpy ~max_domains:2 tuner ~n:4096);
  Alcotest.(check int) "first shape searches" 1 (Tuner.tune_count tuner);
  ignore (Variants.tune_axpy ~max_domains:2 tuner ~n:65536);
  Alcotest.(check int) "different n searches again" 2 (Tuner.tune_count tuner);
  ignore (Variants.tune_axpy ~max_domains:4 tuner ~n:65536);
  Alcotest.(check int) "different dmax searches again" 3
    (Tuner.tune_count tuner);
  ignore (Variants.tune_axpy ~max_domains:2 tuner ~n:4096);
  Alcotest.(check int) "repeat shape served from cache" 3
    (Tuner.tune_count tuner);
  Alcotest.(check int) "cache hit recorded" 1 (Tuner.hit_count tuner)

let test_tune_hop_key_isolation () =
  (* identical caller signature, different lattice: the embedded
     ":n<sites>:dmax<cap>" suffix must force a fresh search *)
  let tuner = Tuner.create ~repeats:1 () in
  let tune dims =
    let geom = Lattice.Geometry.create dims in
    let gauge = Lattice.Gauge.unit geom in
    let w = Dirac.Wilson.of_geometry geom gauge in
    let n = Lattice.Geometry.volume geom * 24 in
    let src = Field.create n and dst = Field.create n in
    ignore (Variants.tune_hop tuner w ~src ~dst ~signature:"same")
  in
  tune [| 4; 4; 2; 2 |];
  tune [| 4; 4; 4; 2 |];
  Alcotest.(check int) "two volumes, two searches" 2 (Tuner.tune_count tuner);
  tune [| 4; 4; 2; 2 |];
  Alcotest.(check int) "repeat volume cached" 2 (Tuner.tune_count tuner)

let test_comm_tune_caches () =
  let ct = Comm_tune.create () in
  let p = Machine.Perf_model.problem ~dims:[| 48; 48; 48; 64 |] ~l5:20 in
  let r1 = Comm_tune.pick ct Machine.Spec.sierra p ~n_gpus:16 in
  let r2 = Comm_tune.pick ct Machine.Spec.sierra p ~n_gpus:16 in
  Alcotest.(check bool) "found" true (r1 <> None && r2 <> None);
  Alcotest.(check int) "one tune" 1 (Comm_tune.tune_count ct);
  Alcotest.(check int) "one hit" 1 (Comm_tune.hit_count ct)

let test_comm_tune_respects_availability () =
  let ct = Comm_tune.create () in
  let p = Machine.Perf_model.problem ~dims:[| 48; 48; 48; 64 |] ~l5:20 in
  match Comm_tune.pick ct Machine.Spec.sierra p ~n_gpus:64 with
  | None -> Alcotest.fail "no policy"
  | Some (pol, _) ->
    Alcotest.(check bool) "no GDR picked on Sierra" true
      (pol.Machine.Policy.transfer <> Machine.Policy.Gdr)

let test_comm_tune_survey () =
  let ct = Comm_tune.create () in
  let p = Machine.Perf_model.problem ~dims:[| 48; 48; 48; 64 |] ~l5:20 in
  let rows = Comm_tune.survey ct Machine.Spec.ray p ~gpu_counts:[ 4; 16; 64 ] in
  Alcotest.(check int) "3 rows" 3 (List.length rows);
  List.iter
    (fun (r : Comm_tune.survey_row) ->
      Alcotest.(check bool) "positive" true (r.Comm_tune.tflops > 0.);
      (* the halo-completion granularity axis is explicit: every row
         carries both the best-coarse and best-fine outcome, and the
         winner matches the better of the two *)
      match (r.Comm_tune.coarse_tflops, r.Comm_tune.fine_tflops) with
      | Some c, Some f ->
        let best = Float.max c f in
        Alcotest.(check (float 1e-9)) "winner = max(coarse, fine)" best
          r.Comm_tune.tflops;
        let expect_gran =
          if f >= c then Machine.Policy.Fine else Machine.Policy.Coarse
        in
        Alcotest.(check bool) "winner granularity consistent" true
          (r.Comm_tune.winner.Machine.Policy.granularity = expect_gran
          || Float.abs (c -. f) < 1e-9 *. best)
      | _ -> Alcotest.fail "granularity column missing")
    rows

let test_comm_tune_caches_negative () =
  (* an infeasible GPU count (no 4-factor grid divides the dims) must be
     tuned once and then served from cache — the regression for the
     None-not-cached bug *)
  let ct = Comm_tune.create () in
  let p = Machine.Perf_model.problem ~dims:[| 48; 48; 48; 64 |] ~l5:20 in
  Alcotest.(check bool) "infeasible" true
    (Comm_tune.pick ct Machine.Spec.sierra p ~n_gpus:7 = None);
  Alcotest.(check bool) "still infeasible" true
    (Comm_tune.pick ct Machine.Spec.sierra p ~n_gpus:7 = None);
  Alcotest.(check int) "one tune" 1 (Comm_tune.tune_count ct);
  Alcotest.(check int) "one hit" 1 (Comm_tune.hit_count ct)

let suite =
  [
    Alcotest.test_case "tuner caches" `Quick test_tuner_caches;
    Alcotest.test_case "tuner signatures" `Quick test_tuner_distinguishes_signatures;
    Alcotest.test_case "tuner picks faster" `Quick test_tuner_picks_faster;
    Alcotest.test_case "backup/restore" `Quick test_tuner_backup_restore;
    Alcotest.test_case "save/load" `Quick test_tuner_save_load;
    Alcotest.test_case "axpy variants agree" `Quick test_axpy_variants_agree;
    Alcotest.test_case "site orders permute" `Quick test_site_orders_are_permutations;
    Alcotest.test_case "hop orders same result" `Quick test_hop_orders_same_result;
    Alcotest.test_case "tune_hop valid" `Quick test_tune_hop_returns_valid_order;
    Alcotest.test_case "pool geometries" `Quick test_pool_geometries_shape;
    Alcotest.test_case "tune_axpy key isolation" `Quick test_tune_axpy_key_isolation;
    Alcotest.test_case "tune_hop key isolation" `Quick test_tune_hop_key_isolation;
    (* the tuning sweeps above spawn shared pools; quiesce them so the
       idle domains don't tax GC in the suites that run after this one *)
    Alcotest.test_case "quiesce shared pools" `Quick (fun () ->
        Util.Pool.shutdown_shared ());
    Alcotest.test_case "comm_tune caches" `Quick test_comm_tune_caches;
    Alcotest.test_case "comm_tune availability" `Quick test_comm_tune_respects_availability;
    Alcotest.test_case "comm_tune survey" `Quick test_comm_tune_survey;
    Alcotest.test_case "comm_tune caches None" `Quick test_comm_tune_caches_negative;
  ]
