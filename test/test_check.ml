(* Tests for the Check subsystem: each pass on a positive (clean) and
   negative (seeded-defect) artifact, the runtime sanitizers, the
   fixtures/selftest loop the CLI relies on, and a qcheck property
   that generated campaigns always pass the DAG verifier. *)

module D = Check.Diagnostic
module Dag = Check.Dag_check
module Halo = Check.Halo_check
module Num = Check.Numeric_check
module Spec = Check.Spec_check
module P = Jobman.Pipeline
module F = Linalg.Field

let rules_fired ds = List.map (fun (d : D.t) -> d.D.rule) ds

let error_rules ds =
  List.filter_map
    (fun (d : D.t) -> if D.is_error d then Some d.D.rule else None)
    ds

let fires rule ds = List.mem rule (rules_fired ds)
let fires_error rule ds = List.mem rule (error_rules ds)

let task ?(nodes = 1) ?(duration = 60.) ?(deps = []) ?(cpu_only = false) id =
  { P.id; nodes; duration; deps; cpu_only }

(* ---------- diagnostic plumbing ---------- *)

let test_diagnostic_sort_and_exit () =
  let ds =
    [
      D.info ~rule:"NUM006" ~loc:"solve" "converged";
      D.error ~rule:"CAMP003" ~loc:"task 1" "cycle";
      D.warning ~rule:"CAMP004" ~loc:"task 2" "duplicate dep";
    ]
  in
  let sorted = D.sort ds in
  Alcotest.(check (list string))
    "errors first, then warnings, then info"
    [ "CAMP003"; "CAMP004"; "NUM006" ]
    (rules_fired sorted);
  Alcotest.(check int) "error report exits 1" 1 (D.exit_code [ ("p", ds) ]);
  Alcotest.(check int) "warning-only report exits 0" 0
    (D.exit_code [ ("p", List.filter (fun d -> not (D.is_error d)) ds) ])

(* ---------- DAG / campaign verifier ---------- *)

let test_dag_clean_campaign () =
  let tasks =
    P.campaign ~batch:4 ~n_props:32 ~prop_nodes:4 ~duration:600.
      (Util.Rng.create 11)
  in
  let ds = Dag.verify ~n_nodes:32 tasks in
  Alcotest.(check int) "no errors on generated campaign" 0 (D.count_errors ds)

let test_dag_cycle_detected () =
  let ds =
    Dag.verify ~n_nodes:8
      [ task 0 ~deps:[ 2 ]; task 1 ~deps:[ 0 ]; task 2 ~deps:[ 1 ]; task 3 ]
  in
  Alcotest.(check bool) "CAMP003 fires" true (fires_error "CAMP003" ds)

let test_dag_dangling_and_duplicate () =
  let ds = Dag.verify [ task 0 ~deps:[ 9 ]; task 1 ~deps:[ 0; 0 ] ] in
  Alcotest.(check bool) "CAMP002 dangling dep" true (fires_error "CAMP002" ds);
  Alcotest.(check bool) "CAMP004 duplicate dep" true (fires "CAMP004" ds);
  let dup = Dag.verify [ task 0; task 0 ] in
  Alcotest.(check bool) "CAMP001 duplicate id" true (fires_error "CAMP001" dup)

let test_dag_oversubscription () =
  let ds = Dag.verify ~n_nodes:32 [ task 0 ~nodes:64; task 1 ~deps:[ 0 ] ] in
  Alcotest.(check bool) "CAMP005 fires" true (fires_error "CAMP005" ds);
  (* without an allocation bound the same campaign is statically fine *)
  let unbounded = Dag.verify [ task 0 ~nodes:64; task 1 ~deps:[ 0 ] ] in
  Alcotest.(check int) "no allocation, no error" 0 (D.count_errors unbounded)

let test_dag_starvation_propagates () =
  (* 2 depends on the cycle {0,1}: tainted transitively, not just the
     cycle members themselves *)
  let ds =
    Dag.verify [ task 0 ~deps:[ 1 ]; task 1 ~deps:[ 0 ]; task 2 ~deps:[ 1 ] ]
  in
  Alcotest.(check bool) "CAMP008 downstream starvation" true (fires "CAMP008" ds)

let prop_campaign_always_verifies =
  QCheck.Test.make ~name:"Pipeline.campaign output always passes the DAG verifier"
    ~count:60
    QCheck.(
      quad (int_range 1 8) (int_range 1 48) (int_range 1 8) (int_range 1 10_000))
    (fun (batch, n_props, prop_nodes, seed) ->
      let tasks =
        P.campaign ~batch ~n_props ~prop_nodes ~duration:600.
          (Util.Rng.create seed)
      in
      let ds = Dag.verify ~n_nodes:(prop_nodes * 8) tasks in
      D.count_errors ds = 0)

(* ---------- halo race detector ---------- *)

let domain () =
  let geom = Lattice.Geometry.create [| 4; 4; 4; 4 |] in
  Lattice.Domain.create geom [| 2; 2; 1; 1 |]

let test_halo_clean_schedule () =
  let ds =
    Halo.verify_schedule (domain ())
      [ Halo.Scatter; Halo.Exchange None; Halo.Stencil Halo.Full ]
  in
  Alcotest.(check int) "scatter/exchange/stencil is clean" 0 (D.count_errors ds)

let test_halo_missing_exchange () =
  let ds =
    Halo.verify_schedule (domain ()) [ Halo.Scatter; Halo.Stencil Halo.Full ]
  in
  Alcotest.(check bool) "HALO001 stale read" true (fires_error "HALO001" ds);
  let interior =
    Halo.verify_schedule (domain ()) [ Halo.Scatter; Halo.Stencil Halo.Interior ]
  in
  Alcotest.(check int) "interior stencil never reads ghosts" 0
    (D.count_errors interior)

let test_halo_partial_faces () =
  let ds =
    Halo.verify_schedule (domain ())
      [
        Halo.Scatter;
        Halo.Exchange (Some [| 0; 1; 2; 3 |]);
        Halo.Stencil Halo.Full;
      ]
  in
  Alcotest.(check bool) "HALO003 subset blamed" true (fires_error "HALO003" ds);
  (* x+/x- and y+/y- are matched pairs, so no unmatched warning ... *)
  Alcotest.(check bool) "matched subset has no HALO002" false (fires "HALO002" ds);
  (* ... but exchanging x+ alone leaves its opposite unmatched *)
  let lopsided =
    Halo.verify_schedule (domain ())
      [ Halo.Scatter; Halo.Exchange (Some [| 0 |]); Halo.Stencil Halo.Full ]
  in
  Alcotest.(check bool) "HALO002 unmatched pair warned" true
    (fires "HALO002" lopsided)

let test_halo_rewrite_invalidates () =
  let ds =
    Halo.verify_schedule (domain ())
      [
        Halo.Scatter;
        Halo.Exchange None;
        Halo.Write [];  (* every rank rewrites its local sites *)
        Halo.Stencil Halo.Full;
      ]
  in
  Alcotest.(check bool) "write after exchange goes stale" true
    (D.has_errors ds)

let test_halo_interleaved_clean () =
  (* a correct fine-grained post/interior/per-face-complete schedule has
     no diagnostics to give *)
  let ds =
    Halo.verify_schedule (domain ())
      [
        Halo.Scatter;
        Halo.Post None;
        Halo.Stencil Halo.Interior;
        Halo.Complete (Some [| 0 |]);
        Halo.Complete (Some [| 1 |]);
        Halo.Stencil_faces [| 0; 1 |];
        Halo.Complete (Some [| 2; 3; 4; 5; 6; 7 |]);
        Halo.Stencil Halo.Boundary;
      ]
  in
  Alcotest.(check int) "clean interleaving has no errors" 0 (D.count_errors ds)

let test_halo_early_boundary_read () =
  (* reading a ghost face that was posted but not yet completed is the
     "forgot the wait" bug: HALO007, distinct from plain staleness *)
  let ds =
    Halo.verify_schedule (domain ())
      [
        Halo.Scatter;
        Halo.Post None;
        Halo.Stencil_faces [| 0; 1 |];
        Halo.Complete None;
        Halo.Stencil Halo.Boundary;
      ]
  in
  Alcotest.(check bool) "HALO007 in-flight read" true (fires_error "HALO007" ds);
  Alcotest.(check bool) "not blamed as plain staleness" false
    (fires_error "HALO001" ds)

let test_halo_send_buffer_race () =
  let dom = domain () in
  let ds =
    Halo.verify_schedule dom
      [
        Halo.Scatter;
        Halo.Post None;
        Halo.Write [ 0 ];
        Halo.Complete None;
        Halo.Stencil Halo.Full;
      ]
  in
  Alcotest.(check bool) "HALO008 write between post and complete" true
    (fires_error "HALO008" ds);
  (* the diagnostic names the first racing site's global coordinate:
     scanning ranks then faces, the first in-flight message posted by
     rank 0 lands in its own z+ ghost face (z/t are undecomposed), so
     the racing send face is rank 0's z-, and the site is that face's
     first send site *)
  let msg =
    match List.find_opt (fun (d : D.t) -> d.D.rule = "HALO008") ds with
    | Some d -> d.D.message
    | None -> ""
  in
  let rg = Lattice.Domain.rank_geometry dom 0 in
  let send_face = rg.Lattice.Domain.faces.(5) in
  let g = rg.Lattice.Domain.local_to_global.(send_face.Lattice.Domain.send_sites.(0)) in
  let c = Lattice.Geometry.coords (Lattice.Domain.global dom) g in
  let expected =
    Printf.sprintf "first racing site: rank 0 face z- site %d = (%d,%d,%d,%d)" g
      c.(0) c.(1) c.(2) c.(3)
  in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool)
    (Printf.sprintf "HALO008 names the racing site (%s)" expected)
    true (contains msg expected)

let test_halo_lost_completion () =
  let ds =
    Halo.verify_schedule (domain ())
      [
        Halo.Scatter;
        Halo.Post None;
        Halo.Complete (Some [| 0; 1; 2; 3 |]);
        Halo.Stencil_faces [| 0; 1; 2; 3 |];
      ]
  in
  Alcotest.(check bool) "HALO009 never-completed faces" true
    (fires_error "HALO009" ds)

let test_halo_complete_without_post () =
  let ds =
    Halo.verify_schedule (domain ())
      [ Halo.Scatter; Halo.Complete (Some [| 0 |]); Halo.Stencil Halo.Interior ]
  in
  Alcotest.(check bool) "HALO010 complete without post" true (fires "HALO010" ds)

let test_halo_live_audit () =
  let dom = domain () in
  let comm = Vrank.Comm.create dom ~dof:2 in
  let n = Lattice.Geometry.volume (Lattice.Domain.global dom) * 2 in
  let global = F.create n in
  F.gaussian (Util.Rng.create 3) global;
  let locals = Vrank.Comm.create_fields comm in
  Vrank.Comm.scatter comm global locals;
  Alcotest.(check bool) "stale right after scatter" true
    (D.has_errors (Halo.audit comm));
  Vrank.Comm.halo_exchange comm locals;
  Alcotest.(check int) "fresh after full exchange" 0
    (D.count_errors (Halo.audit comm));
  Vrank.Comm.mark_written comm 0;
  let ds = Halo.audit comm in
  Alcotest.(check bool) "rewrite of rank 0 re-stales neighbors" true
    (D.has_errors ds)

(* ---------- numeric sanitizer ---------- *)

let test_finite_checks () =
  let v = F.create 24 in
  F.gaussian (Util.Rng.create 5) v;
  Alcotest.(check int) "gaussian field is clean" 0
    (List.length (Num.check_finite ~what:"v" v));
  Bigarray.Array1.set v 3 Float.nan;
  Alcotest.(check bool) "NUM001 on NaN" true
    (fires_error "NUM001" (Num.check_finite ~what:"v" v));
  Bigarray.Array1.set v 3 Float.infinity;
  Alcotest.(check bool) "NUM002 on Inf" true
    (fires_error "NUM002" (Num.check_finite ~what:"v" v))

let test_sanitizer_traps_axpy () =
  let n = 24 in
  let x = F.create n and y = F.create n in
  F.fill x Float.nan;
  (* check_raises compares with (=), which NaN payloads defeat *)
  (match F.Sanitize.scoped (fun () -> F.axpy 1.0 x y) with
  | () -> Alcotest.fail "sanitizer did not trap the NaN"
  | exception F.Sanitize.Non_finite (kernel, idx, value) ->
    Alcotest.(check string) "trapping kernel" "Field.axpy" kernel;
    Alcotest.(check int) "first bad index" 0 idx;
    Alcotest.(check bool) "NaN payload" true (Float.is_nan value));
  Alcotest.(check bool) "off by default" false !F.Sanitize.enabled;
  (* recording mode: keeps going, logs the traps *)
  F.Sanitize.scoped ~raise_on_trap:false (fun () -> F.axpy 1.0 x y);
  Alcotest.(check bool) "traps recorded" true (!F.Sanitize.trap_count > 0)

let test_half_block_analysis () =
  let clean = F.create 48 in
  F.gaussian (Util.Rng.create 9) clean;
  Alcotest.(check int) "gaussian blocks are representable" 0
    (D.count_errors (Num.half_blocks ~block:24 clean));
  let bad = F.create 48 in
  F.fill bad 1e-9;
  Bigarray.Array1.set bad 0 1.0;
  for i = 24 to 47 do
    Bigarray.Array1.set bad i 1e-40
  done;
  let ds = Num.half_blocks ~block:24 bad in
  Alcotest.(check bool) "NUM003 dynamic range" true (fires_error "NUM003" ds);
  Alcotest.(check bool) "NUM005 norm underflow" true (fires "NUM005" ds);
  let misblocked = Num.half_blocks ~block:7 clean in
  Alcotest.(check bool) "block must divide length" true (D.has_errors misblocked)

let test_probe_mixed_solve () =
  let n = 2 * 24 in
  let apply (x : F.t) (y : F.t) =
    for i = 0 to n - 1 do
      Bigarray.Array1.set y i ((2.5 +. (float_of_int (i mod 24) /. 100.)) *. Bigarray.Array1.get x i)
    done
  in
  let b = F.create n in
  F.gaussian (Util.Rng.create 13) b;
  Alcotest.(check int) "clean SPD solve probes clean" 0
    (D.count_errors (Num.probe_mixed_solve ~apply ~b ()));
  let apply_nan x y =
    apply x y;
    Bigarray.Array1.set y 0 Float.nan
  in
  let ds = Num.probe_mixed_solve ~apply:apply_nan ~b () in
  Alcotest.(check bool) "NUM001 trapped at encode boundary" true
    (fires_error "NUM001" ds)

(* ---------- spec validation ---------- *)

let test_spec_default_clean () =
  let ds = Spec.workflow_spec Core.Workflow.default_spec in
  Alcotest.(check int) "shipped default spec has no errors" 0 (D.count_errors ds)

let test_spec_structural_errors () =
  let s = { Core.Workflow.default_spec with dims = [| 4; 4; 4 |] } in
  Alcotest.(check bool) "SPEC001 bad dims arity" true
    (fires_error "SPEC001" (Spec.workflow_spec s));
  let s = { Core.Workflow.default_spec with tol = 0. } in
  Alcotest.(check bool) "SPEC005 family on bad tol" true
    (D.has_errors (Spec.workflow_spec s))

let test_spec_mixed_config () =
  let bad = { Solver.Mixed.default_config with block = 7 } in
  (* 7 does not divide the 4^3x8 / 2 * l5 * 24 inner length *)
  Alcotest.(check bool) "SPEC006 indivisible block" true
    (fires_error "SPEC006"
       (Spec.mixed_config ~n:(4 * 4 * 4 * 8 / 2 * 6 * 24) bad));
  match Solver.Mixed.validate_config ~n:48 { Solver.Mixed.default_config with block = 7 } with
  | Ok () -> Alcotest.fail "validate_config should reject block=7 for n=48"
  | Error _ -> ()

let test_workflow_run_rejects_invalid () =
  let s = { Core.Workflow.default_spec with l5 = 0 } in
  Alcotest.(check bool) "validate_spec reports l5" true
    (Core.Workflow.validate_spec s <> []);
  match Core.Workflow.run ~spec:s () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Workflow.run accepted an invalid spec"

(* ---------- fixtures, selftest, standard suite ---------- *)

let test_selftest_detects_all () =
  let rows = Check.selftest () in
  (* the expected defect-class count is wired here on purpose: a
     fixture silently dropped from the list (so --selftest would print
     n/n for a smaller n) fails the suite *)
  Alcotest.(check int) "34 seeded defect classes" 34 (List.length rows);
  List.iter
    (fun (rule : string) ->
      Alcotest.(check bool) (rule ^ " has a fixture") true
        (List.exists
           (fun ((f : Check.Fixtures.t), _, _) -> f.Check.Fixtures.expect = rule)
           rows))
    [
      "HALO011"; "HALO012"; "HALO013"; "DET001"; "DET002"; "DET003";
      "FUSE001"; "FUSE002"; "FUSE003";
      "MRHS001"; "MRHS002"; "MRHS003";
      "PLAN001"; "PLAN002"; "PLAN003"; "PLAN005"; "PREC001"; "PREC003";
      "RECON001"; "RECON002"; "RECON003";
      "DEF001"; "DEF002"; "DEF003";
    ];
  List.iter
    (fun ((f : Check.Fixtures.t), rules, detected) ->
      Alcotest.(check bool) (f.Check.Fixtures.name ^ " detected") true detected;
      Alcotest.(check bool)
        (f.Check.Fixtures.name ^ " fires " ^ f.Check.Fixtures.expect)
        true
        (List.mem f.Check.Fixtures.expect rules))
    rows

let test_standard_suite_clean () =
  let report = Check.standard_suite () in
  Alcotest.(check int) "ten passes" 10 (List.length report);
  Alcotest.(check int) "zero errors on shipped artifacts" 0
    (D.report_errors report);
  Alcotest.(check int) "exit code 0" 0 (D.exit_code report)

let suite =
  [
    Alcotest.test_case "diagnostic sort and exit code" `Quick
      test_diagnostic_sort_and_exit;
    Alcotest.test_case "dag: generated campaign clean" `Quick
      test_dag_clean_campaign;
    Alcotest.test_case "dag: cycle detected" `Quick test_dag_cycle_detected;
    Alcotest.test_case "dag: dangling and duplicate deps" `Quick
      test_dag_dangling_and_duplicate;
    Alcotest.test_case "dag: oversubscription" `Quick test_dag_oversubscription;
    Alcotest.test_case "dag: starvation propagates" `Quick
      test_dag_starvation_propagates;
    Alcotest.test_case "halo: clean schedule" `Quick test_halo_clean_schedule;
    Alcotest.test_case "halo: missing exchange" `Quick test_halo_missing_exchange;
    Alcotest.test_case "halo: partial faces" `Quick test_halo_partial_faces;
    Alcotest.test_case "halo: rewrite invalidates ghosts" `Quick
      test_halo_rewrite_invalidates;
    Alcotest.test_case "halo: clean interleaving" `Quick
      test_halo_interleaved_clean;
    Alcotest.test_case "halo: early boundary read" `Quick
      test_halo_early_boundary_read;
    Alcotest.test_case "halo: send-buffer race" `Quick test_halo_send_buffer_race;
    Alcotest.test_case "halo: lost completion" `Quick test_halo_lost_completion;
    Alcotest.test_case "halo: complete without post" `Quick
      test_halo_complete_without_post;
    Alcotest.test_case "halo: live comm audit" `Quick test_halo_live_audit;
    Alcotest.test_case "numeric: finite checks" `Quick test_finite_checks;
    Alcotest.test_case "numeric: sanitizer traps axpy" `Quick
      test_sanitizer_traps_axpy;
    Alcotest.test_case "numeric: half block analysis" `Quick
      test_half_block_analysis;
    Alcotest.test_case "numeric: probe mixed solve" `Quick test_probe_mixed_solve;
    Alcotest.test_case "spec: default clean" `Quick test_spec_default_clean;
    Alcotest.test_case "spec: structural errors" `Quick
      test_spec_structural_errors;
    Alcotest.test_case "spec: mixed config" `Quick test_spec_mixed_config;
    Alcotest.test_case "spec: run rejects invalid" `Quick
      test_workflow_run_rejects_invalid;
    Alcotest.test_case "fixtures: selftest detects all" `Quick
      test_selftest_detects_all;
    Alcotest.test_case "standard suite clean" `Quick test_standard_suite_clean;
    QCheck_alcotest.to_alcotest prop_campaign_always_verifies;
  ]
