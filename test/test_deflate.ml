(* Low-mode deflation: thick-restart Lanczos eigenpair correctness and
   determinism on operators with known spectra, the Deflate space's
   batched Galerkin kernels (bit-identical across pool geometries and
   between the single and multi-RHS entries), the measured iteration
   reduction through ?deflate on Cg/Mixed, the forecast composition,
   the configuration hashing, the rank tuning axis, the Perf_model
   amortization pricing, the DEF checker rules on clean/seeded pairs,
   the deflate plan-IR catalog entry and the sorted Bench_json merge. *)

module Field = Linalg.Field
module Lanczos = Solver.Lanczos
module Deflate = Solver.Deflate
module Cg = Solver.Cg
module Mixed = Solver.Mixed
module Pool = Util.Pool
module PM = Machine.Perf_model
module DC = Check.Deflate_check

let rng () = Util.Rng.create 20260808

let check_bits name (a : Field.t) (b : Field.t) =
  Alcotest.(check (float 0.)) name 0. (Field.max_abs_diff a b)

(* SPD diagonal operator with [nlow] separated low modes (geometric 4x
   spacing from [scale]) under a unit bulk — the spectrum shape every
   test in this file deflates. *)
let diag_op ?(nlow = 4) ?(scale = 1e-3) n =
  let diag =
    Array.init n (fun i ->
        if i < nlow then scale *. (4. ** float_of_int i)
        else 1. +. (float_of_int i /. float_of_int n))
  in
  let apply (x : Field.t) (y : Field.t) =
    for i = 0 to n - 1 do
      Bigarray.Array1.set y i (diag.(i) *. Bigarray.Array1.get x i)
    done
  in
  (diag, apply)

let gaussian n seed =
  let v = Field.create n in
  Field.gaussian (Util.Rng.create seed) v;
  v

let space_of ?(n = 192) ?(rank = 4) ?(seed = 5) ?(hash = 0x5eed) () =
  let _, apply = diag_op n in
  let space =
    Deflate.of_lanczos ~config_hash:hash
      (Lanczos.lowest ~tol:1e-8 ~rank ~apply ~n ~rng:(Util.Rng.create seed) ())
  in
  (apply, space)

(* ---------- Lanczos ---------- *)

let test_lanczos_eigenvalues () =
  let n = 192 in
  let diag, apply = diag_op n in
  let values, basis, stats =
    Lanczos.lowest ~tol:1e-8 ~rank:4 ~apply ~n ~rng:(rng ()) ()
  in
  Alcotest.(check bool) "converged" true stats.Lanczos.converged;
  Array.iteri
    (fun i v ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "lowest eigenvalue %d" i)
        diag.(i) v)
    values;
  (* the Ritz vectors of a diagonal operator are coordinate axes: the
     i-th vector is supported on entry i up to the residual bound *)
  Array.iteri
    (fun i v ->
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "vector %d on its axis" i)
        1.
        (abs_float (Bigarray.Array1.get v i)))
    basis

let test_lanczos_orthonormal () =
  let apply, space = space_of () in
  Alcotest.(check bool)
    "ortho drift under 1e-12" true
    (Deflate.ortho_drift space < 1e-12);
  Alcotest.(check bool)
    "eigen-residual under bound" true
    (Deflate.max_residual space ~apply < 1e-6)

let test_lanczos_deterministic () =
  let n = 192 in
  let _, apply = diag_op n in
  let run () = Lanczos.lowest ~tol:1e-8 ~rank:4 ~apply ~n ~rng:(rng ()) () in
  let v1, b1, s1 = run () in
  let v2, b2, s2 = run () in
  Alcotest.(check (array (float 0.))) "values bit-identical" v1 v2;
  Array.iteri (fun i v -> check_bits (Printf.sprintf "vector %d" i) v b2.(i)) b1;
  Alcotest.(check int) "same applies" s1.Lanczos.applies s2.Lanczos.applies

let test_sym_eig_diag () =
  let m =
    [| [| 4.; 0.; 0. |]; [| 0.; 1.; 0. |]; [| 0.; 0.; 9. |] |]
  in
  let vals, vecs = Lanczos.sym_eig m in
  Alcotest.(check (array (float 1e-12))) "ascending" [| 1.; 4.; 9. |] vals;
  Alcotest.(check (float 1e-12)) "eigvec of 1" 1. (abs_float vecs.(0).(1));
  Alcotest.(check (float 1e-12)) "eigvec of 9" 1. (abs_float vecs.(2).(2))

(* ---------- Deflate kernels ---------- *)

let prop_augment_pool_identity =
  QCheck.Test.make ~name:"augment: bit-identical for any pool geometry"
    ~count:30
    QCheck.(pair (int_range 1 4) (int_range 16 512))
    (fun (domains, chunk) ->
      let n = 192 in
      let _, space = space_of ~n () in
      let r = gaussian n 91 in
      let x1 = gaussian n 92 in
      let x2 = Field.copy x1 in
      Deflate.augment space ~r x1;
      Deflate.augment_with (Pool.shared ~domains) ~chunk space ~r x2;
      Field.max_abs_diff x1 x2 = 0.)

let test_augment_multi_rows () =
  let n = 192 in
  let _, space = space_of ~n () in
  let k = 3 in
  let rs = Array.init k (fun i -> gaussian n (40 + i)) in
  let singles = Array.init k (fun i -> gaussian n (50 + i)) in
  let batched = Array.map Field.copy singles in
  Array.iteri (fun i x -> Deflate.augment space ~r:rs.(i) x) singles;
  Deflate.augment_multi space ~rs batched;
  Array.iteri
    (fun i x -> check_bits (Printf.sprintf "row %d" i) x singles.(i))
    batched

let test_project_kills_span () =
  let n = 192 in
  let _, space = space_of ~n () in
  let r = Field.copy (Deflate.basis space).(0) in
  Field.axpy 0.5 (Deflate.basis space).(2) r;
  Deflate.project space r;
  Alcotest.(check bool)
    "projected span is numerically zero" true
    (Field.norm r < 1e-12)

let test_deflated_guess_solves_low_modes () =
  (* on a source living entirely in the deflated span, the Galerkin
     guess IS the solution up to the eigen-residual bound *)
  let n = 192 in
  let _, apply = diag_op n in
  let _, space = space_of ~n () in
  let b = Field.create n in
  Field.fill b 0.;
  Field.axpy 2.0 (Deflate.basis space).(0) b;
  Field.axpy (-3.0) (Deflate.basis space).(3) b;
  let x = Deflate.deflated_guess space ~b in
  let ax = Field.create n in
  apply x ax;
  Field.axpy (-1.) b ax;
  Alcotest.(check bool)
    "residual of the guess under 1e-4" true
    (Field.norm ax /. Field.norm b < 1e-4)

(* ---------- hashing ---------- *)

let test_field_hash () =
  let v = gaussian 192 7 in
  let h1 = Deflate.field_hash v in
  Alcotest.(check int) "deterministic" h1 (Deflate.field_hash (Field.copy v));
  Alcotest.(check bool) "nonnegative" true (h1 >= 0);
  Bigarray.Array1.set v 100 (Bigarray.Array1.get v 100 +. 1e-13);
  Alcotest.(check bool)
    "one-ulp-scale edit changes the hash" true
    (Deflate.field_hash v <> h1)

let test_gauge_hash () =
  let geom = Lattice.Geometry.create [| 2; 2; 2; 2 |] in
  let g1 = Lattice.Gauge.random geom (Util.Rng.create 3) in
  let g2 = Lattice.Gauge.random geom (Util.Rng.create 4) in
  Alcotest.(check bool)
    "distinct configurations hash apart" true
    (Deflate.gauge_hash g1 <> Deflate.gauge_hash g2);
  Alcotest.(check int)
    "stable on the same links" (Deflate.gauge_hash g1) (Deflate.gauge_hash g1)

(* ---------- deflated solves ---------- *)

let solve_iters ?deflate ~apply ~b n =
  let _, st =
    Cg.solve ?deflate ~apply ~b ~tol:1e-10 ~max_iter:(100 * n)
      ~flops_per_apply:(2. *. float_of_int n) ()
  in
  Alcotest.(check bool) "converged" true st.Cg.converged;
  st.Cg.iterations

let test_cg_deflated_fewer_iterations () =
  let n = 192 in
  let _, apply = diag_op n in
  let _, space = space_of ~n () in
  let b = gaussian n 77 in
  let plain = solve_iters ~apply ~b n in
  let deflated = solve_iters ~deflate:space ~apply ~b n in
  Alcotest.(check bool)
    (Printf.sprintf "deflated %d < undeflated %d iterations" deflated plain)
    true
    (deflated * 2 < plain)

let test_cg_multi_matches_single () =
  let n = 192 in
  let _, apply = diag_op n in
  let _, space = space_of ~n () in
  let bs = Array.init 3 (fun i -> gaussian n (80 + i)) in
  let apply_multi srcs dsts = Array.iteri (fun i s -> apply s dsts.(i)) srcs in
  let xs, sts =
    Cg.solve_multi ~deflate:space ~apply:apply_multi ~bs ~tol:1e-10
      ~max_iter:(100 * n)
      ~flops_per_apply:(2. *. float_of_int n)
      ()
  in
  Array.iteri
    (fun i b ->
      let x, st =
        Cg.solve ~deflate:space ~apply ~b ~tol:1e-10 ~max_iter:(100 * n)
          ~flops_per_apply:(2. *. float_of_int n)
          ()
      in
      check_bits (Printf.sprintf "solution %d bit-identical" i) x xs.(i);
      Alcotest.(check int)
        (Printf.sprintf "iterations %d" i)
        st.Cg.iterations
        sts.(i).Cg.iterations)
    bs

let test_mixed_deflated_fewer_iterations () =
  (* n divisible by the 24-float half-codec block; the low modes sit
     above the half noise floor so the sloppy loop still sees them *)
  let n = 240 in
  let _, apply = diag_op ~nlow:4 ~scale:1e-2 n in
  let _, space =
    let space =
      Deflate.of_lanczos ~config_hash:0
        (Lanczos.lowest ~tol:1e-8 ~rank:4
           ~apply ~n ~rng:(Util.Rng.create 5) ())
    in
    (apply, space)
  in
  let b = gaussian n 88 in
  let run ?deflate () =
    let _, st =
      Mixed.solve ?deflate ~apply ~b
        ~flops_per_apply:(2. *. float_of_int n)
        ()
    in
    st.Cg.iterations
  in
  let plain = run () in
  let deflated = run ~deflate:space () in
  Alcotest.(check bool)
    (Printf.sprintf "deflated %d < undeflated %d inner iterations" deflated
       plain)
    true (deflated < plain)

let test_combined_guess () =
  let n = 192 in
  let _, apply = diag_op n in
  let _, space = space_of ~n () in
  let b = gaussian n 99 in
  (match Deflate.combined_guess ~apply ~b () with
  | None -> ()
  | Some _ -> Alcotest.fail "neither deflation nor history: expected None");
  let fc = Solver.Forecast.create () in
  let x_defl =
    match Deflate.combined_guess ~deflate:space ~forecast:fc ~apply ~b () with
    | Some x -> x
    | None -> Alcotest.fail "deflation alone must contribute"
  in
  check_bits "empty history: combined = deflated guess" x_defl
    (Deflate.deflated_guess space ~b);
  (* with the exact solution on record, the composition starts at
     residual ~0 and the low-mode correction adds nothing *)
  let exact, _ =
    Cg.solve ~apply ~b ~tol:1e-12 ~max_iter:(100 * n)
      ~flops_per_apply:(2. *. float_of_int n)
      ()
  in
  Solver.Forecast.record fc exact;
  match Deflate.combined_guess ~deflate:space ~forecast:fc ~apply ~b () with
  | None -> Alcotest.fail "history must contribute"
  | Some x ->
    let ax = Field.create n in
    apply x ax;
    Field.axpy (-1.) b ax;
    Alcotest.(check bool)
      "forecast+deflation residual under 1e-8" true
      (Field.norm ax /. Field.norm b < 1e-8)

(* ---------- tuning axis ---------- *)

let test_deflation_space_baseline () =
  let labels =
    List.map fst (Autotune.Variants.deflation_space ~solves:24 ())
  in
  Alcotest.(check bool)
    "rank-0 undeflated baseline present" true
    (List.mem "defl_r0_s24" labels);
  let labels8 =
    List.map fst (Autotune.Variants.deflation_space ~ranks:[ 8 ] ~solves:6 ())
  in
  Alcotest.(check (list string))
    "baseline survives a custom rank list"
    [ "defl_r0_s6"; "defl_r8_s6" ]
    labels8

let test_tune_deflation () =
  let n = 192 in
  let _, apply = diag_op n in
  let tuner = Autotune.Tuner.create ~repeats:1 () in
  let winner, plan =
    Autotune.Variants.tune_deflation tuner ~solves:4 ~apply ~n
      ~signature:"test"
  in
  Alcotest.(check string)
    "winner label carries the plan's rank"
    (Autotune.Variants.deflation_label plan)
    winner;
  Alcotest.(check bool)
    "winner is in the candidate space" true
    (List.mem winner
       (List.map fst (Autotune.Variants.deflation_space ~solves:4 ())));
  (* the cache key names the campaign shape: same signature hits, a
     different solve count misses *)
  let w2, _ =
    Autotune.Variants.tune_deflation tuner ~solves:4 ~apply ~n
      ~signature:"test"
  in
  Alcotest.(check string) "cache hit returns the same winner" winner w2;
  Alcotest.(check int) "one hit recorded" 1 (Autotune.Tuner.hit_count tuner);
  let entry =
    Autotune.Tuner.entries tuner
    |> List.find (fun e -> e.Autotune.Tuner.kernel = "cg_deflate")
  in
  Alcotest.(check bool)
    "signature extended with n and solves" true
    (String.length entry.Autotune.Tuner.signature > String.length "test"
    && String.sub entry.Autotune.Tuner.signature 0 4 = "test")

(* ---------- Perf_model pricing ---------- *)

let test_perf_model_setup () =
  Alcotest.(check int)
    "applies: basis + restarts*(basis-rank)" 22
    (PM.deflation_setup_applies ~rank:4 ~basis:10 ~restarts:2);
  Alcotest.check_raises "rank >= basis rejected"
    (Invalid_argument "Perf_model.deflation_setup_applies: basis must exceed rank")
    (fun () -> ignore (PM.deflation_setup_applies ~rank:10 ~basis:10 ~restarts:0));
  let n = 100 and fpa = 1000. in
  let applies = float_of_int (PM.deflation_setup_applies ~rank:4 ~basis:10 ~restarts:2) in
  Alcotest.(check (float 1e-6))
    "setup flops formula"
    ((applies *. fpa)
    +. (applies *. 8. *. float_of_int n *. 10.)
    +. (3. *. 100. *. 2. *. float_of_int n))
    (PM.deflation_setup_flops ~rank:4 ~basis:10 ~restarts:2 ~n
       ~flops_per_apply:fpa);
  Alcotest.(check (float 1e-6))
    "guess flops 4rn" (4. *. 4. *. 100.)
    (PM.deflation_guess_flops ~rank:4 ~n:100)

let test_perf_model_amortization () =
  Alcotest.(check (float 1e-9))
    "amortized setup" 250.
    (PM.deflation_amortized_flops ~setup_flops:1000. ~solves:4);
  Alcotest.(check (float 1e-9))
    "deflated condition" 100.
    (PM.deflated_condition ~lambda_max:1. ~lambda_cut:1e-2);
  Alcotest.(check (float 1e-9))
    "iteration ratio sqrt(kd/k)" 0.1
    (PM.deflation_iteration_ratio ~kappa:1e4 ~kappa_deflated:1e2);
  Alcotest.(check (float 1e-9))
    "break-even solves" 5.
    (PM.deflation_break_even_solves ~setup_s:10. ~t_undeflated_s:3.
       ~t_deflated_s:1.);
  Alcotest.(check bool)
    "no per-solve gain: never breaks even" true
    (PM.deflation_break_even_solves ~setup_s:10. ~t_undeflated_s:1.
       ~t_deflated_s:1.
    = infinity)

(* ---------- checker ---------- *)

let clean_plan ?(rank = 4) ?tuned_rank () =
  DC.plan ?tuned_rank ~kernel:"cg_deflate" ~rank ~n:192 ~space_hash:0x5eed
    ~config_hash:0x5eed ~ortho_drift:1e-14 ~max_residual:1e-9 ~bound:1e-6 ()

let rules_of ds = List.map (fun d -> d.Check.Diagnostic.rule) ds

let test_deflate_check_rules () =
  Alcotest.(check (list string))
    "clean plan is silent" []
    (rules_of (DC.verify_plan (clean_plan ~tuned_rank:4 ())));
  Alcotest.(check (list string))
    "stale space fires DEF001" [ "DEF001" ]
    (rules_of
       (DC.verify_plan
          (DC.plan ~kernel:"cg_deflate" ~rank:4 ~n:192 ~space_hash:0x01d
             ~config_hash:0x5eed ~ortho_drift:1e-14 ~max_residual:1e-9
             ~bound:1e-6 ())));
  Alcotest.(check (list string))
    "drift and residual each fire DEF002" [ "DEF002"; "DEF002" ]
    (rules_of
       (DC.verify_plan
          (DC.plan ~kernel:"cg_deflate" ~rank:4 ~n:192 ~space_hash:0x5eed
             ~config_hash:0x5eed ~ortho_drift:1e-3 ~max_residual:1e-2
             ~bound:1e-6 ())));
  Alcotest.(check (list string))
    "rank mismatch fires DEF003" [ "DEF003" ]
    (rules_of (DC.verify_plan (clean_plan ~rank:8 ~tuned_rank:4 ())))

let test_verify_space_live () =
  let apply, space = space_of ~hash:0xfeed () in
  Alcotest.(check (list string))
    "live clean space is silent" []
    (rules_of
       (DC.verify_space ~tuned_rank:4 ~config_hash:0xfeed ~apply space));
  Alcotest.(check (list string))
    "live stale space fires DEF001" [ "DEF001" ]
    (rules_of (DC.verify_space ~config_hash:0xbad ~apply space))

let test_fixtures_detected () =
  List.iter
    (fun name ->
      match Check.Fixtures.find name with
      | None -> Alcotest.failf "fixture %s missing" name
      | Some f ->
        let fired = rules_of (f.Check.Fixtures.run ()) in
        Alcotest.(check bool)
          (Printf.sprintf "%s fires %s" name f.Check.Fixtures.expect)
          true
          (List.mem f.Check.Fixtures.expect fired))
    [ "deflate-stale-space"; "deflate-drifted-basis"; "deflate-rank-mismatch" ]

let test_plan_catalog_entry () =
  match Check.Plan_extract.find "deflate" with
  | None -> Alcotest.fail "deflate plan missing from the catalog"
  | Some build ->
    let plan = build () in
    let ds = Check.Plan_check.verify plan in
    Alcotest.(check (list string))
      "deflate prologue plan verifies silent" [] (rules_of ds)

(* ---------- Bench_json sorted merge ---------- *)

let test_bench_json_sorted () =
  let file = Filename.temp_file "bench_defl" ".json" in
  let row kernel geometry =
    { Bench_json.kernel; n = 8; geometry; ns_per_op = 1.; speedup = 1. }
  in
  Bench_json.write ~file ~replacing:[]
    [ row "zeta" "a"; row "alpha" "b"; row "mid" "c" ];
  Bench_json.write ~file ~replacing:[] [ row "beta" "d" ];
  let ic = open_in file in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let rows =
    List.rev !lines |> List.filter_map Bench_json.kernel_of_line
  in
  Sys.remove file;
  Alcotest.(check (list string))
    "merged rows in sorted order, preserved across reruns"
    [ "alpha"; "beta"; "mid"; "zeta" ]
    rows

let suite =
  [
    Alcotest.test_case "lanczos: known diag eigenpairs" `Quick
      test_lanczos_eigenvalues;
    Alcotest.test_case "lanczos: orthonormal within bound" `Quick
      test_lanczos_orthonormal;
    Alcotest.test_case "lanczos: deterministic rerun" `Quick
      test_lanczos_deterministic;
    Alcotest.test_case "sym_eig: diagonal matrix" `Quick test_sym_eig_diag;
    QCheck_alcotest.to_alcotest prop_augment_pool_identity;
    Alcotest.test_case "augment_multi: rows match single augment" `Quick
      test_augment_multi_rows;
    Alcotest.test_case "project removes the deflated span" `Quick
      test_project_kills_span;
    Alcotest.test_case "deflated guess solves in-span sources" `Quick
      test_deflated_guess_solves_low_modes;
    Alcotest.test_case "field_hash: deterministic, edit-sensitive" `Quick
      test_field_hash;
    Alcotest.test_case "gauge_hash keys configurations" `Quick test_gauge_hash;
    Alcotest.test_case "cg ?deflate: measured iteration reduction" `Quick
      test_cg_deflated_fewer_iterations;
    Alcotest.test_case "solve_multi ?deflate: bit-identical per RHS" `Quick
      test_cg_multi_matches_single;
    Alcotest.test_case "mixed ?deflate: fewer inner iterations" `Quick
      test_mixed_deflated_fewer_iterations;
    Alcotest.test_case "combined_guess: forecast then deflation" `Quick
      test_combined_guess;
    Alcotest.test_case "deflation_space keeps the rank-0 baseline" `Quick
      test_deflation_space_baseline;
    Alcotest.test_case "tune_deflation: labels, cache, signature" `Quick
      test_tune_deflation;
    Alcotest.test_case "perf model: setup pricing pins" `Quick
      test_perf_model_setup;
    Alcotest.test_case "perf model: amortization and break-even" `Quick
      test_perf_model_amortization;
    Alcotest.test_case "deflate_check: DEF001-003 on static plans" `Quick
      test_deflate_check_rules;
    Alcotest.test_case "verify_space: live audit" `Quick test_verify_space_live;
    Alcotest.test_case "seeded deflate fixtures detected" `Quick
      test_fixtures_detected;
    Alcotest.test_case "plan catalog: deflate prologue verifies" `Quick
      test_plan_catalog_entry;
    Alcotest.test_case "bench_json: sorted, rerun-stable merge" `Quick
      test_bench_json_sorted;
  ]
