(* Tests for Machine: Table II data, the performance model's
   calibration anchors and qualitative behaviours. *)

module Spec = Machine.Spec
module Policy = Machine.Policy
module PM = Machine.Perf_model

let p48 = PM.problem ~dims:[| 48; 48; 48; 64 |] ~l5:20
let p96 = PM.problem ~dims:[| 96; 96; 96; 144 |] ~l5:20

let test_table_ii_contents () =
  let rows = Spec.table_ii () in
  Alcotest.(check int) "8 attribute rows" 8 (List.length rows);
  List.iter
    (fun row -> Alcotest.(check int) "4 machines + label" 5 (List.length row))
    rows;
  (* spot checks against the paper *)
  Alcotest.(check int) "titan nodes" 18688 Spec.titan.Spec.nodes;
  Alcotest.(check int) "summit gpus/node" 6 Spec.summit.Spec.gpus_per_node;
  Alcotest.(check (float 0.)) "sierra fp32/node" 60. (Spec.fp32_tflops_per_node Spec.sierra);
  Alcotest.(check (float 0.)) "summit gpu bw/node" 5400. (Spec.gpu_bw_per_node Spec.summit)

let test_calibration_anchor_bandwidths () =
  (* At the 16-GPU production group the model must return the paper's
     achieved bandwidths (these are calibration inputs). *)
  List.iter
    (fun (m, expect) ->
      match PM.best_policy m p48 ~n_gpus:16 with
      | None -> Alcotest.fail "no grid at 16 GPUs"
      | Some r ->
        Alcotest.(check bool)
          (Printf.sprintf "%s bw %g ~ %g" m.Spec.name r.PM.bw_per_gpu_gbs expect)
          true
          (abs_float (r.PM.bw_per_gpu_gbs -. expect) /. expect < 0.05))
    [ (Spec.titan, 139.); (Spec.ray, 516.); (Spec.sierra, 975.) ]

let test_sierra_20_percent_at_low_count () =
  match PM.best_policy Spec.sierra p48 ~n_gpus:16 with
  | None -> Alcotest.fail "no grid"
  | Some r ->
    Alcotest.(check bool)
      (Printf.sprintf "sierra %%peak %g in [19, 22]" r.PM.percent_peak)
      true
      (r.PM.percent_peak > 19. && r.PM.percent_peak < 22.)

let test_strong_scaling_efficiency_declines () =
  (* per-GPU performance decreases monotonically with GPU count *)
  let counts = [ 8; 16; 32; 64; 128 ] in
  List.iter
    (fun m ->
      let perfs =
        List.filter_map
          (fun n ->
            Option.map (fun r -> r.PM.tflops_per_gpu) (PM.best_policy m p48 ~n_gpus:n))
          counts
      in
      let rec mono = function
        | a :: b :: rest -> a >= b -. 1e-9 && mono (b :: rest)
        | _ -> true
      in
      Alcotest.(check bool) (m.Spec.name ^ " per-GPU monotone") true (mono perfs))
    [ Spec.titan; Spec.ray; Spec.sierra ]

let test_total_performance_increases_then_saturates () =
  (* Fig 4 shape: total grows at small counts; the marginal gain
     collapses at large counts. *)
  let p r = r.PM.tflops_total in
  let get n = Option.get (PM.best_policy Spec.summit p96 ~n_gpus:n) in
  let t512 = p (get 512) and t2048 = p (get 2048) in
  let t8192 = p (get 8192) in
  Alcotest.(check bool) "grows 512 -> 2048" true (t2048 > t512 *. 1.3);
  Alcotest.(check bool) "saturates 2048 -> 8192" true (t8192 < t2048 *. 1.3)

let test_machine_ordering_matches_generations () =
  (* per-GPU and %peak order: Titan < Ray < Sierra at the same config *)
  let perf m = (Option.get (PM.best_policy m p48 ~n_gpus:16)).PM.percent_peak in
  Alcotest.(check bool) "titan < ray" true (perf Spec.titan < perf Spec.ray);
  Alcotest.(check bool) "ray < sierra" true (perf Spec.ray < perf Spec.sierra)

let test_gdr_availability () =
  let gdr = { Policy.transfer = Policy.Gdr; granularity = Policy.Fine } in
  Alcotest.(check bool) "no GDR on Sierra" false (Policy.available gdr Spec.sierra);
  Alcotest.(check bool) "no GDR on Summit" false (Policy.available gdr Spec.summit);
  Alcotest.(check bool) "GDR on Ray" true (Policy.available gdr Spec.ray)

let test_gdr_beats_staging_when_available () =
  let p = p48 in
  let fine t = { Policy.transfer = t; granularity = Policy.Fine } in
  let perf pol =
    (Option.get (PM.solver_performance Spec.ray pol p ~n_gpus:64)).PM.tflops_total
  in
  Alcotest.(check bool) "gdr >= staged" true
    (perf (fine Policy.Gdr) >= perf (fine Policy.Staged_mpi))

let test_face_times_sum_to_comm () =
  (* the per-face message schedule must account for exactly the
     aggregate communication time under a fine-grained policy: two
     faces per decomposed dim, summing to intra + inter + latency *)
  let fine = { Policy.transfer = Policy.Staged_mpi; granularity = Policy.Fine } in
  match PM.stencil_breakdown Spec.sierra fine p48 ~n_gpus:16 with
  | None -> Alcotest.fail "no grid"
  | Some b ->
    let decomposed =
      Array.to_list b.PM.grid |> List.filter (fun g -> g > 1) |> List.length
    in
    Alcotest.(check int) "two faces per decomposed dim" (2 * decomposed)
      (List.length b.PM.face_times);
    List.iter
      (fun (fid, tf) ->
        Alcotest.(check bool) "face id in range" true (fid >= 0 && fid < 8);
        Alcotest.(check bool) "face grid decomposed" true (b.PM.grid.(fid / 2) > 1);
        Alcotest.(check bool) "positive time" true (tf > 0.))
      b.PM.face_times;
    let sum = List.fold_left (fun a (_, tf) -> a +. tf) 0. b.PM.face_times in
    let t_comm = b.PM.t_comm_intra +. b.PM.t_comm_inter +. b.PM.t_latency in
    Alcotest.(check bool)
      (Printf.sprintf "face times sum %g ~ t_comm %g" sum t_comm)
      true
      (abs_float (sum -. t_comm) <= 1e-12 +. (1e-9 *. t_comm))

let test_fine_never_slower_than_coarse_model () =
  (* the pipelined per-face completion model must not make overlap look
     worse than waiting for everything (same transfer path) *)
  List.iter
    (fun n_gpus ->
      let t gran =
        Option.map
          (fun b -> b.PM.t_total)
          (PM.stencil_breakdown Spec.sierra
             { Policy.transfer = Policy.Staged_mpi; granularity = gran }
             p48 ~n_gpus)
      in
      match (t Policy.Fine, t Policy.Coarse) with
      | Some tf, Some tc ->
        (* fine pays more launches/messages in overhead, so compare the
           comm+compute part: strip each policy's own overhead *)
        let strip gran tt =
          let b =
            Option.get
              (PM.stencil_breakdown Spec.sierra
                 { Policy.transfer = Policy.Staged_mpi; granularity = gran }
                 p48 ~n_gpus)
          in
          tt -. b.PM.t_overhead
        in
        Alcotest.(check bool)
          (Printf.sprintf "overlap body <= blocking body at %d" n_gpus)
          true
          (strip Policy.Fine tf <= strip Policy.Coarse tc +. 1e-15)
      | _ -> ())
    [ 16; 64; 256 ]

let test_best_grid_divides () =
  match PM.best_grid p48 12 with
  | None -> Alcotest.fail "no grid for 12"
  | Some g ->
    Alcotest.(check int) "product" 12 (Array.fold_left ( * ) 1 g);
    Array.iteri
      (fun mu gm -> Alcotest.(check int) "divides" 0 (p48.PM.dims.(mu) mod gm))
      g

let test_grid_prefers_low_surface () =
  (* For 16 GPUs on 48^3 x 64, a 2x2x2x2 grid has a lower surface than
     16x1x1x1; the chosen grid must be at least as good as both. *)
  match PM.best_grid p48 16 with
  | None -> Alcotest.fail "no grid"
  | Some g ->
    let s = PM.surface_sites p48 g in
    Alcotest.(check bool) "beats pencil" true
      (s <= PM.surface_sites p48 [| 16; 1; 1; 1 |]);
    Alcotest.(check bool) "beats hypercube or ties" true
      (s <= PM.surface_sites p48 [| 2; 2; 2; 2 |])

let test_weak_scaling_linear () =
  let pt n =
    Option.get
      (PM.weak_scaling_point Spec.sierra p48 ~group_gpus:16 ~stack:PM.Mvapich2
         ~n_gpus:n)
  in
  let r = pt 3200 /. pt 1600 in
  Alcotest.(check bool) (Printf.sprintf "doubling GPUs doubles PFlops (%g)" r) true
    (abs_float (r -. 2.) < 1e-9)

let test_stack_ordering () =
  let pt stack =
    Option.get
      (PM.weak_scaling_point Spec.sierra p48 ~group_gpus:16 ~stack ~n_gpus:1600)
  in
  Alcotest.(check bool) "spectrum > openmpi" true (pt PM.Spectrum > pt PM.Open_mpi);
  Alcotest.(check bool) "openmpi > mvapich2" true (pt PM.Open_mpi > pt PM.Mvapich2)

let test_sustained_20pf_at_13500 () =
  (* the headline: ~20 PFlops sustained on 13500 Sierra GPUs *)
  let pf =
    Option.get
      (PM.weak_scaling_point Spec.sierra p48 ~group_gpus:16 ~stack:PM.Mvapich2
         ~n_gpus:13500)
    /. 1000.
  in
  Alcotest.(check bool) (Printf.sprintf "%g PF in [14, 22]" pf) true
    (pf > 14. && pf < 22.)

let suite =
  [
    Alcotest.test_case "table II contents" `Quick test_table_ii_contents;
    Alcotest.test_case "calibration bandwidths" `Quick test_calibration_anchor_bandwidths;
    Alcotest.test_case "sierra 20% at 16 GPUs" `Quick test_sierra_20_percent_at_low_count;
    Alcotest.test_case "strong scaling declines" `Quick test_strong_scaling_efficiency_declines;
    Alcotest.test_case "fig4 saturation shape" `Quick test_total_performance_increases_then_saturates;
    Alcotest.test_case "generation ordering" `Quick test_machine_ordering_matches_generations;
    Alcotest.test_case "GDR availability" `Quick test_gdr_availability;
    Alcotest.test_case "GDR beats staging" `Quick test_gdr_beats_staging_when_available;
    Alcotest.test_case "face times sum to t_comm" `Quick test_face_times_sum_to_comm;
    Alcotest.test_case "fine body <= coarse body" `Quick
      test_fine_never_slower_than_coarse_model;
    Alcotest.test_case "grid divides dims" `Quick test_best_grid_divides;
    Alcotest.test_case "grid minimizes surface" `Quick test_grid_prefers_low_surface;
    Alcotest.test_case "weak scaling linear" `Quick test_weak_scaling_linear;
    Alcotest.test_case "MPI stack ordering" `Quick test_stack_ordering;
    Alcotest.test_case "20 PF at 13500 GPUs" `Quick test_sustained_20pf_at_13500;
  ]
