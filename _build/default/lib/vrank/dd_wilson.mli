(** Domain-decomposed Wilson operator over virtual ranks: the paper's
    stencil communication recipe (pack → communicate → interior →
    boundary), verified against the single-domain oracle. *)

type t = {
  dom : Lattice.Domain.t;
  comm : Comm.t;
  kernels : Dirac.Wilson.t array;
  gauges : Linalg.Field.t array;
}

val create : Lattice.Domain.t -> Lattice.Gauge.t -> t
val comm : t -> Comm.t

val hop : t -> fields:Linalg.Field.t array -> dsts:Linalg.Field.t array -> unit
(** Exchange halos, then the full stencil on every rank. *)

val hop_overlapped :
  t -> fields:Linalg.Field.t array -> dsts:Linalg.Field.t array -> unit
(** Interior stencil from pre-exchange data, then exchange, then the
    boundary stencil — the overlap structure of Sec. IV. *)

val hop_global : ?overlapped:bool -> t -> Linalg.Field.t -> Linalg.Field.t
(** Convenience: scatter a global field, apply, gather. *)

val apply_global : ?overlapped:bool -> t -> mass:float -> Linalg.Field.t -> Linalg.Field.t
(** Full Wilson operator (4 + m) − H/2 across ranks. *)
