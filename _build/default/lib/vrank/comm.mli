(** Virtual-rank message passing: N ranks executed sequentially with
    real buffers, running the pack/exchange/unpack pattern of an MPI
    halo exchange with message and byte accounting. *)

type stats = {
  mutable exchanges : int;
  mutable messages : int;
  mutable bytes : float;
}

type t

val create : Lattice.Domain.t -> dof:int -> t
(** [dof] = floats per site. *)

val stats : t -> stats
val n_ranks : t -> int

val create_fields : t -> Linalg.Field.t array
(** One extended-volume (local + ghosts) field per rank, zeroed. *)

val scatter : t -> Linalg.Field.t -> Linalg.Field.t array -> unit
(** Global field → per-rank local portions (ghosts left stale). *)

val gather : t -> Linalg.Field.t array -> Linalg.Field.t

val halo_exchange : ?faces:int array -> t -> Linalg.Field.t array -> unit
(** Fill every rank's ghost slots from its neighbors' boundary sites
    (all 8 faces by default). *)

val halo_bytes_per_rank : t -> int -> float
