lib/vrank/dd_wilson.ml: Array Comm Dirac Lattice Linalg
