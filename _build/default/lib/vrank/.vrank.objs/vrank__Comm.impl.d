lib/vrank/comm.ml: Array Bigarray Fun Lattice Linalg
