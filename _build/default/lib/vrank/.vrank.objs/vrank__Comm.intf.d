lib/vrank/comm.mli: Lattice Linalg
