lib/vrank/dd_solve.ml: Array Bigarray Comm Dd_wilson Dirac Lattice Linalg Solver Unix
