lib/vrank/dd_wilson.mli: Comm Dirac Lattice Linalg
