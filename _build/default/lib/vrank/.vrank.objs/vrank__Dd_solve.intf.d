lib/vrank/dd_solve.mli: Dd_wilson Linalg Solver
