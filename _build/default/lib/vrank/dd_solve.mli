(** Distributed CG on the domain-decomposed Wilson normal operator:
    halo exchange inside every application, per-rank partial sums
    combined for every inner product (the all-reduce the machine model
    charges). Deterministic; checked against the single-domain CGNE. *)

type t

val create : Dd_wilson.t -> mass:float -> t

val solve_normal :
  ?tol:float ->
  ?max_iter:int ->
  t ->
  b_global:Linalg.Field.t ->
  Linalg.Field.t
  * Solver.Cg.stats
  * [ `Exchanges of int ]
  * [ `Allreduces of int ]
(** Solve M†M x = M†b with b given in global layout; returns the
    gathered global solution plus communication counts. *)
