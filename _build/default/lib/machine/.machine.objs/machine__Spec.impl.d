lib/machine/spec.ml: List Printf
