lib/machine/perf_model.mli: Policy Spec
