lib/machine/policy.ml: Float List Printf Spec
