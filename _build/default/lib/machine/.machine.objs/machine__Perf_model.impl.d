lib/machine/perf_model.ml: Array Dirac Float List Policy Spec
