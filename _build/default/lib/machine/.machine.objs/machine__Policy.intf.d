lib/machine/policy.mli: Spec
