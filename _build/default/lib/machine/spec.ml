(* Machine descriptions for the systems of Table II, plus the solver
   calibration constants the performance model needs. Specification
   rows come straight from the paper; the "achieved solver bandwidth"
   numbers (139 / 516 / 975 GB/s per GPU) are the paper's own Sec. VII
   measurements and are used as calibration inputs — never the figures
   the model is asked to reproduce. *)

type gpu = {
  gpu_name : string;
  fp32_tflops : float;  (* per GPU *)
  mem_bw_gbs : float;  (* per GPU, STREAM-like peak *)
  solver_bw_gbs : float;  (* achieved CG bandwidth at large local volume *)
  sat_sites : float;  (* 5D sites/GPU at which the solver bandwidth halves *)
}

type t = {
  name : string;
  nodes : int;
  gpus_per_node : int;
  gpu : gpu;
  cpu : string;
  cpu_gpu_gbs : float;  (* host link bandwidth per node *)
  nic_gbs : float;  (* injection bandwidth per node *)
  nvlink_gbs : float;  (* GPU-GPU intra-node, per GPU (0 = via PCIe) *)
  interconnect : string;
  has_gdr : bool;  (* GPU Direct RDMA usable (Sierra/Summit: not yet) *)
  launch_overhead_s : float;  (* fixed kernel-launch cost per stencil call *)
  msg_latency_s : float;  (* per halo message *)
  allreduce_base_s : float;  (* reduction latency per tree level *)
  contention_nodes : float;  (* nodes at which internode bw halves *)
  node_jitter : float;  (* relative sigma of per-node speed (Fig 7 width) *)
}

let k20x =
  {
    gpu_name = "NVIDIA K20X";
    fp32_tflops = 4.0;
    mem_bw_gbs = 250.;
    solver_bw_gbs = 139.;
    sat_sites = 3.0e6;
  }

let p100 =
  {
    gpu_name = "NVIDIA P100";
    fp32_tflops = 11.0;
    mem_bw_gbs = 720.;
    solver_bw_gbs = 516.;
    sat_sites = 2.5e6;
  }

let v100 =
  {
    gpu_name = "NVIDIA V100";
    fp32_tflops = 15.0;
    mem_bw_gbs = 900.;
    solver_bw_gbs = 975.;
    sat_sites = 3.0e6;
  }

let titan =
  {
    name = "Titan";
    nodes = 18_688;
    gpus_per_node = 1;
    gpu = k20x;
    cpu = "AMD Opteron";
    cpu_gpu_gbs = 6.;
    nic_gbs = 8.;
    nvlink_gbs = 0.;
    interconnect = "Cray Gemini (~8 GB/s)";
    has_gdr = false;
    launch_overhead_s = 40e-6;
    msg_latency_s = 15e-6;
    allreduce_base_s = 8e-6;
    contention_nodes = 400.;
    node_jitter = 0.05;
  }

let ray =
  {
    name = "Ray";
    nodes = 54;
    gpus_per_node = 4;
    gpu = p100;
    cpu = "IBM POWER8";
    cpu_gpu_gbs = 20.;
    nic_gbs = 23.;
    nvlink_gbs = 40.;
    interconnect = "Mellanox IB 2xEDR";
    has_gdr = true;
    launch_overhead_s = 25e-6;
    msg_latency_s = 8e-6;
    allreduce_base_s = 5e-6;
    contention_nodes = 2000.;
    node_jitter = 0.04;
  }

let sierra =
  {
    name = "Sierra";
    nodes = 4_200;
    gpus_per_node = 4;
    gpu = v100;
    cpu = "IBM POWER9";
    cpu_gpu_gbs = 75.;
    nic_gbs = 23.;
    nvlink_gbs = 75.;
    interconnect = "Mellanox IB 2xEDR";
    has_gdr = false;  (* "at the time of submission ... did not support this" *)
    launch_overhead_s = 20e-6;
    msg_latency_s = 8e-6;
    allreduce_base_s = 5e-6;
    contention_nodes = 300.;
    node_jitter = 0.06;
  }

let summit =
  {
    name = "Summit";
    nodes = 4_600;
    gpus_per_node = 6;
    gpu = v100;
    cpu = "IBM POWER9";
    cpu_gpu_gbs = 50.;
    nic_gbs = 23.;
    nvlink_gbs = 50.;
    interconnect = "Mellanox IB 2xEDR";
    has_gdr = false;
    launch_overhead_s = 20e-6;
    msg_latency_s = 8e-6;
    allreduce_base_s = 5e-6;
    contention_nodes = 300.;
    node_jitter = 0.06;
  }

let all = [ titan; ray; sierra; summit ]

let total_gpus t = t.nodes * t.gpus_per_node
let fp32_tflops_per_node t = float_of_int t.gpus_per_node *. t.gpu.fp32_tflops
let gpu_bw_per_node t = float_of_int t.gpus_per_node *. t.gpu.mem_bw_gbs
let nic_gbs_per_gpu t = t.nic_gbs /. float_of_int t.gpus_per_node

(* Table II rendering for the bench harness. *)
let table_ii () =
  let row label f = label :: List.map f all in
  [
    row "nodes" (fun m -> string_of_int m.nodes);
    row "GPUs / node" (fun m -> string_of_int m.gpus_per_node);
    row "CPU" (fun m -> m.cpu);
    row "GPU" (fun m -> m.gpu.gpu_name);
    row "FP32 TFLOPS / node" (fun m -> Printf.sprintf "%.0f" (fp32_tflops_per_node m));
    row "GPU bw / node GB/s" (fun m -> Printf.sprintf "%.0f" (gpu_bw_per_node m));
    row "CPU-GPU bw GB/s" (fun m -> Printf.sprintf "%.0f" m.cpu_gpu_gbs);
    row "Interconnect" (fun m -> m.interconnect);
  ]

let table_ii_header = "Attribute" :: List.map (fun m -> m.name) all
