(** BiCGStab on a (non-hermitian) complex-linear operator — the
    baseline alternative to CG on the normal equations. The operator
    must be complex-linear over the interleaved re/im layout (Dirac
    operators are; componentwise-real test matrices are not). *)

val solve :
  ?x0:Linalg.Field.t ->
  apply:(Linalg.Field.t -> Linalg.Field.t -> unit) ->
  b:Linalg.Field.t ->
  tol:float ->
  max_iter:int ->
  flops_per_apply:float ->
  unit ->
  Linalg.Field.t * Cg.stats
(** Converges when |r| ≤ tol·|b|; [converged = false] on breakdown
    (vanishing ρ or ω) or max_iter. *)
