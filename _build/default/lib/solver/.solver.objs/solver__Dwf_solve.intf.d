lib/solver/dwf_solve.mli: Cg Dirac Lattice Linalg Mixed
