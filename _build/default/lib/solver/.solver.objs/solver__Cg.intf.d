lib/solver/cg.mli: Format Linalg
