lib/solver/cg.ml: Format Linalg Printf Unix Util
