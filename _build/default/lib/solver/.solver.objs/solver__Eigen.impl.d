lib/solver/eigen.ml: Cg Float Linalg Util
