lib/solver/forecast.mli: Linalg
