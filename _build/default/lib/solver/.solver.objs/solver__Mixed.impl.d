lib/solver/mixed.ml: Cg Float Linalg Unix
