lib/solver/mixed.mli: Cg Linalg
