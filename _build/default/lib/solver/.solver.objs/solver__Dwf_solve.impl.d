lib/solver/dwf_solve.ml: Cg Dirac Lattice Linalg Mixed
