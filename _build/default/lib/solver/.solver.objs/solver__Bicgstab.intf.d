lib/solver/bicgstab.mli: Cg Linalg
