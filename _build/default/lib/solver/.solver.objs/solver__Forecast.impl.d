lib/solver/forecast.ml: Array Linalg List Util
