lib/solver/bicgstab.ml: Bigarray Cg Linalg Unix
