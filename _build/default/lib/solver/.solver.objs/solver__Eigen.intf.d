lib/solver/eigen.mli: Linalg Util
