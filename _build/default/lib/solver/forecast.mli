(** Chronological initial-guess forecasting: minimal-residual
    extrapolation from previous solutions of the same operator
    (Brower et al.). Cuts iteration counts across the 12 spin-color
    columns and source positions of a production stream. *)

type t

val create : ?depth:int -> unit -> t
(** Keep the last [depth] (default 4) solutions. *)

val record : t -> Linalg.Field.t -> unit
(** Push a converged solution (copied) into the history. *)

val size : t -> int

val guess :
  t ->
  apply:(Linalg.Field.t -> Linalg.Field.t -> unit) ->
  b:Linalg.Field.t ->
  Linalg.Field.t option
(** Minimizer of |b − A x|² over the (real) span of the history; [None]
    when the history is empty or the Gram system is singular. *)
