lib/core/workflow.ml: Array Dirac Lattice Linalg Physics Printf Qio Solver Unix Util
