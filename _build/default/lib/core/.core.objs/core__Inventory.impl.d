lib/core/inventory.ml: List
