lib/core/campaign.mli: Machine
