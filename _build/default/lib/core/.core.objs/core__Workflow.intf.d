lib/core/workflow.mli: Solver
