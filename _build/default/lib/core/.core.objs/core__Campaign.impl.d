lib/core/campaign.ml: Array Float Jobman Machine Util
