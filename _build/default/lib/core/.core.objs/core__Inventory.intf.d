lib/core/inventory.mli:
