(* At-scale production campaign, simulated: the bridge between the
   performance model (what one propagator group sustains) and the job
   manager (how thousands of groups share the machine). Drives the
   weak-scaling figures (5, 6), the solver-performance histogram
   (Fig 7) and the METAQ/mpi_jm claims. *)

module Spec = Machine.Spec
module Perf_model = Machine.Perf_model

type t = {
  machine : Spec.t;
  problem : Perf_model.problem;
  group_gpus : int;
  group_nodes : int;
  stack : Perf_model.mpi_stack;
  task_duration_s : float;  (* nominal wall time of one propagator task *)
}

let create ~machine ~problem ~group_gpus ~stack ?(task_duration_s = 1800.) () =
  {
    machine;
    problem;
    group_gpus;
    group_nodes = group_gpus / machine.Spec.gpus_per_node;
    stack;
    task_duration_s;
  }

(* Sustained TFlops of one group running the whole application. *)
let group_tflops t =
  match
    Perf_model.group_performance t.machine t.problem ~group_gpus:t.group_gpus
      ~stack:t.stack
  with
  | Some g -> g
  | None -> invalid_arg "Campaign.group_tflops: no decomposition for group"

type outcome = {
  n_gpus : int;
  n_tasks : int;
  sustained_pflops : float;
  utilization : float;
  makespan_s : float;
  scheduler : string;
}

(* Run [n_tasks] propagator tasks over [n_nodes] nodes under a
   scheduling strategy; sustained performance = group perf x GPU-level
   utilization. *)
let simulate ?(scheduler = `Mpi_jm) ?(seed = 7) ?(spread = 0.2) t ~n_nodes
    ~n_tasks =
  let rng = Util.Rng.create seed in
  let cluster =
    Jobman.Cluster.create ~n_nodes ~gpus_per_node:t.machine.Spec.gpus_per_node
      ~cpus_per_node:40 ~jitter:t.machine.Spec.node_jitter rng
  in
  let tasks =
    Jobman.Task.campaign ~spread ~n:n_tasks ~nodes:t.group_nodes
      ~duration:t.task_duration_s rng
  in
  let outcome =
    match scheduler with
    | `Naive -> Jobman.Schedulers.naive ~cluster ~tasks
    | `Metaq -> Jobman.Schedulers.metaq ~cluster ~tasks ()
    | `Mpi_jm ->
      Jobman.Schedulers.mpi_jm ~block_nodes:(t.group_nodes * 2) ~cluster ~tasks ()
  in
  let per_group = group_tflops t in
  let n_gpus = n_nodes * t.machine.Spec.gpus_per_node in
  let groups_capacity = float_of_int n_nodes /. float_of_int t.group_nodes in
  {
    n_gpus;
    n_tasks;
    sustained_pflops =
      per_group *. groups_capacity *. outcome.Jobman.Schedulers.utilization /. 1000.;
    utilization = outcome.Jobman.Schedulers.utilization;
    makespan_s = outcome.Jobman.Schedulers.makespan;
    scheduler = outcome.Jobman.Schedulers.strategy;
  }

(* Per-task achieved solver performance across a large run (Fig 7):
   node-speed heterogeneity plus placement locality spread the
   distribution. *)
let solver_performance_samples ?(seed = 11) t ~n_tasks =
  let rng = Util.Rng.create seed in
  let per_group = group_tflops t in
  Array.init n_tasks (fun _ ->
      (* slowest of the group's nodes gates the tightly-coupled solve *)
      let speed = ref infinity in
      for _ = 1 to t.group_nodes do
        let s =
          Float.max 0.6
            (Util.Rng.gaussian_sigma rng ~mu:1.0 ~sigma:t.machine.Spec.node_jitter)
        in
        if s < !speed then speed := s
      done;
      (* occasional placement/locality penalty *)
      let locality = if Util.Rng.float rng < 0.15 then 0.93 else 1.0 in
      per_group *. !speed *. locality)
