(** This repository's analogue of the paper's Table III: each
    production software component mapped to the subsystem built here. *)

type entry = { paper_component : string; role : string; here : string }

val table : entry list
val rows : unit -> string list list
val header : string list
