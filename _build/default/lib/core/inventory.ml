(* Application-software inventory: this repository's analogue of the
   paper's Table III (Lalibe / Chroma / QUDA / QDP++ / QMP / mpi_jm),
   mapping each of those components to the subsystem built here. *)

type entry = {
  paper_component : string;
  role : string;
  here : string;  (* library.module implementing the role *)
}

let table =
  [
    {
      paper_component = "Lalibe";
      role = "physics measurement layer (FH correlators)";
      here = "physics (Fh, Contract, Analysis, Synth)";
    };
    {
      paper_component = "Chroma";
      role = "application framework / workflow";
      here = "core (Workflow, Campaign)";
    };
    {
      paper_component = "QUDA";
      role = "GPU solver: mixed-precision red-black CG + autotuner";
      here = "dirac (Wilson, Mobius) + solver (Cg, Mixed) + autotune (Tuner, Comm_tune)";
    };
    {
      paper_component = "QDP++";
      role = "data-parallel lattice field layer";
      here = "linalg (Field, Su3) + lattice (Geometry, Gauge, Domain)";
    };
    {
      paper_component = "QMP";
      role = "message-passing layer for LQCD";
      here = "vrank (Comm, Dd_wilson)";
    };
    {
      paper_component = "mpi_jm / METAQ";
      role = "job management, backfilling, co-scheduling";
      here = "jobman (Des, Cluster, Schedulers, Startup, Placement)";
    };
    {
      paper_component = "HDF5";
      role = "parallel I/O for propagators and results";
      here = "qio (H5lite)";
    };
  ]

let rows () =
  List.map (fun e -> [ e.paper_component; e.role; e.here ]) table

let header = [ "Paper component"; "Role"; "This repository" ]
