(** At-scale production campaign, simulated: bridges the performance
    model (per-group sustained TFlops) and the job manager (how
    thousands of groups share the machine). Drives Figs. 5–7. *)

type t = {
  machine : Machine.Spec.t;
  problem : Machine.Perf_model.problem;
  group_gpus : int;
  group_nodes : int;
  stack : Machine.Perf_model.mpi_stack;
  task_duration_s : float;
}

val create :
  machine:Machine.Spec.t ->
  problem:Machine.Perf_model.problem ->
  group_gpus:int ->
  stack:Machine.Perf_model.mpi_stack ->
  ?task_duration_s:float ->
  unit ->
  t

val group_tflops : t -> float
(** Whole-application sustained TFlops of one group.
    @raise Invalid_argument if the group admits no decomposition. *)

type outcome = {
  n_gpus : int;
  n_tasks : int;
  sustained_pflops : float;
  utilization : float;
  makespan_s : float;
  scheduler : string;
}

val simulate :
  ?scheduler:[ `Naive | `Metaq | `Mpi_jm ] ->
  ?seed:int ->
  ?spread:float ->
  t ->
  n_nodes:int ->
  n_tasks:int ->
  outcome

val solver_performance_samples : ?seed:int -> t -> n_tasks:int -> float array
(** Per-task achieved TFlops across a large run (the Fig 7 histogram):
    slowest-node gating plus occasional placement penalties. *)
