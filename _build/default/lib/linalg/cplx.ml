(* Complex numbers as unboxed (re, im) float pairs. The stdlib Complex
   module boxes a record per value; in the hot kernels we instead pass
   the two components explicitly, and this module exists for the
   non-critical call sites (tests, analysis, contractions). *)

type t = { re : float; im : float }

let make re im = { re; im }
let zero = { re = 0.; im = 0. }
let one = { re = 1.; im = 0. }
let i = { re = 0.; im = 1. }
let re t = t.re
let im t = t.im
let add a b = { re = a.re +. b.re; im = a.im +. b.im }
let sub a b = { re = a.re -. b.re; im = a.im -. b.im }
let neg a = { re = -.a.re; im = -.a.im }
let conj a = { re = a.re; im = -.a.im }

let mul a b =
  { re = (a.re *. b.re) -. (a.im *. b.im); im = (a.re *. b.im) +. (a.im *. b.re) }

let scale s a = { re = s *. a.re; im = s *. a.im }
let norm2 a = (a.re *. a.re) +. (a.im *. a.im)
let abs a = sqrt (norm2 a)

let div a b =
  let d = norm2 b in
  if d = 0. then invalid_arg "Cplx.div: divide by zero";
  { re = ((a.re *. b.re) +. (a.im *. b.im)) /. d;
    im = ((a.im *. b.re) -. (a.re *. b.im)) /. d }

let inv a = div one a
let exp_i theta = { re = cos theta; im = sin theta }
let equal ?(eps = 1e-12) a b = abs (sub a b) <= eps
let pp ppf a = Format.fprintf ppf "(%g%+gi)" a.re a.im
let to_string a = Format.asprintf "%a" pp a
