(** Complex arithmetic for non-hot call sites (analysis, contractions). *)

type t = { re : float; im : float }

val make : float -> float -> t
val zero : t
val one : t
val i : t
val re : t -> float
val im : t -> float
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val conj : t -> t
val mul : t -> t -> t
val scale : float -> t -> t
val norm2 : t -> float
val abs : t -> float
val div : t -> t -> t
val inv : t -> t
val exp_i : float -> t
(** [exp_i theta] = e^{i theta}. *)

val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
