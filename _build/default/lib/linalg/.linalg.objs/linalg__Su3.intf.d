lib/linalg/su3.mli: Cplx Format Util
